// Property-based parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P)
// over the core invariants: encoder/decoder agreement, budget adherence,
// metric-specific optimality and reconstruction identities across a grid
// of geometries, metrics and budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/get_intervals.h"
#include "core/regression.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::core {
namespace {

// ------------------------------------------------ regression properties

// Sweep (length, scale) and assert kernel invariants on random data.
class RegressionProperty
    : public testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(RegressionProperty, KernelsAreOptimalAndConsistent) {
  const auto [len, scale] = GetParam();
  Rng rng(len * 31 + static_cast<uint64_t>(scale));
  std::vector<double> x(len), y(len);
  for (size_t i = 0; i < len; ++i) {
    x[i] = rng.Uniform(-1, 1);
    y[i] = scale * (0.7 * x[i] + rng.Gaussian(0, 0.3));
  }

  // SSE: reported err matches direct evaluation, gradient ~ 0.
  const RegressionResult sse = FitSse(x, y);
  EXPECT_NEAR(sse.err,
              EvaluateLine(ErrorMetric::kSse, x, y, sse.a, sse.b, 1.0),
              1e-6 * std::max(1.0, sse.err));
  const double eps = 1e-4 * std::max(1.0, std::abs(sse.a));
  EXPECT_GE(EvaluateLine(ErrorMetric::kSse, x, y, sse.a + eps, sse.b, 1.0),
            sse.err - 1e-9);
  EXPECT_GE(EvaluateLine(ErrorMetric::kSse, x, y, sse.a - eps, sse.b, 1.0),
            sse.err - 1e-9);

  // Relative: never worse than the SSE line under the relative metric.
  const RegressionResult rel = FitSseRelative(x, y, 1.0);
  EXPECT_LE(rel.err,
            EvaluateLine(ErrorMetric::kSseRelative, x, y, sse.a, sse.b, 1.0) +
                1e-9);

  // MaxAbs: never worse than either line under the max metric.
  const RegressionResult mm = FitMaxAbs(x, y);
  EXPECT_LE(mm.err,
            EvaluateLine(ErrorMetric::kMaxAbs, x, y, sse.a, sse.b, 1.0) +
                1e-9);
  EXPECT_LE(mm.err,
            EvaluateLine(ErrorMetric::kMaxAbs, x, y, rel.a, rel.b, 1.0) +
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegressionProperty,
    testing::Combine(testing::Values<size_t>(2, 3, 8, 33, 200),
                     testing::Values(0.01, 1.0, 1000.0)));

// --------------------------------------------- GetIntervals properties

// Sweep (num_signals, budget_fraction_percent, metric).
class GetIntervalsProperty
    : public testing::TestWithParam<std::tuple<size_t, size_t, ErrorMetric>> {
};

TEST_P(GetIntervalsProperty, TilingBudgetAndReconstruction) {
  const auto [num_signals, pct, metric] = GetParam();
  const size_t m = 192;
  Rng rng(num_signals * 1000 + pct + static_cast<size_t>(metric));

  std::vector<double> base(48);
  for (auto& v : base) v = rng.Uniform(-1, 1);
  std::vector<double> y(num_signals * m);
  for (size_t s = 0; s < num_signals; ++s) {
    for (size_t i = 0; i < m; ++i) {
      y[s * m + i] = std::sin(i * 0.15 + s) * 5 + rng.Gaussian(0, 0.4);
    }
  }

  GetIntervalsOptions opts;
  opts.best_map.metric = metric;
  const size_t budget =
      std::max<size_t>(4 * num_signals, y.size() * pct / 100);
  auto result = GetIntervals(base, y, num_signals, budget, /*w=*/16, opts);
  ASSERT_TRUE(result.ok());

  // Tiling invariant.
  size_t pos = 0;
  for (const Interval& iv : result->intervals) {
    ASSERT_EQ(iv.start, pos);
    ASSERT_GT(iv.length, 0u);
    pos += iv.length;
  }
  EXPECT_EQ(pos, y.size());

  // Budget invariant.
  EXPECT_LE(result->values_used, budget);
  EXPECT_GE(result->intervals.size(), num_signals);

  // Reported error equals the reconstruction error under the metric.
  const auto approx =
      ReconstructFromIntervals(base, y.size(), result->intervals);
  double direct = 0;
  switch (metric) {
    case ErrorMetric::kSse:
      direct = SumSquaredError(y, approx);
      break;
    case ErrorMetric::kSseRelative:
      direct = SumSquaredRelativeError(y, approx);
      break;
    case ErrorMetric::kMaxAbs:
      direct = MaxAbsoluteError(y, approx);
      break;
  }
  EXPECT_NEAR(result->total_error, direct,
              1e-6 * std::max(1.0, direct));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GetIntervalsProperty,
    testing::Combine(testing::Values<size_t>(1, 2, 5),
                     testing::Values<size_t>(5, 15, 40),
                     testing::Values(ErrorMetric::kSse,
                                     ErrorMetric::kSseRelative,
                                     ErrorMetric::kMaxAbs)));

// ------------------------------------------- encoder/decoder properties

// Sweep (num_signals, total_band_fraction, m_base_slots).
class PipelineProperty
    : public testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(PipelineProperty, EncoderDecoderAgreeForManyTransmissions) {
  const auto [num_signals, pct, slots] = GetParam();
  const size_t m = 160;
  const size_t n = num_signals * m;
  const size_t w = static_cast<size_t>(std::floor(std::sqrt(n)));

  EncoderOptions opts;
  opts.total_band = std::max<size_t>(4 * num_signals + w + 2, n * pct / 100);
  opts.m_base = slots * w;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});

  Rng rng(num_signals * 7919 + pct * 131 + slots);
  for (size_t c = 0; c < 5; ++c) {
    std::vector<double> y(n);
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t i = 0; i < m; ++i) {
        y[s * m + i] = std::sin(i * 0.2 + c * 0.5) * (1.0 + s) +
                       rng.Gaussian(0, 0.1);
      }
    }
    auto t = enc.EncodeChunk(y, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    // Budget invariant.
    ASSERT_LE(t->ValueCount(), opts.total_band);
    // Base buffer bound invariant.
    ASSERT_LE(enc.base_signal().used_slots(), slots);

    auto decoded = dec.DecodeChunk(*t);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    // Decoder output realizes exactly the encoder's claimed error.
    ASSERT_NEAR(SumSquaredError(y, *decoded), enc.last_stats().total_error,
                1e-6 * std::max(1.0, enc.last_stats().total_error));
    // Base mirrors stay bit-identical.
    const auto eb = enc.base_signal().values();
    const auto db = dec.base_signal().values();
    ASSERT_EQ(eb.size(), db.size());
    for (size_t i = 0; i < eb.size(); ++i) {
      ASSERT_DOUBLE_EQ(eb[i], db[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    testing::Combine(testing::Values<size_t>(1, 3, 6),
                     testing::Values<size_t>(12, 25),
                     testing::Values<size_t>(2, 6)));

// ------------------------------------------------- eviction properties

class EvictionProperty : public testing::TestWithParam<EvictionPolicy> {};

TEST_P(EvictionProperty, TinyBufferNeverDesyncsNorOverflows) {
  const EvictionPolicy policy = GetParam();
  const size_t num_signals = 2, m = 128;
  const size_t n = num_signals * m;
  const size_t w = static_cast<size_t>(std::floor(std::sqrt(n)));  // 16

  EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 2 * w;  // only two slots: constant eviction pressure
  opts.eviction = policy;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});

  Rng rng(static_cast<uint64_t>(policy) + 99);
  for (size_t c = 0; c < 10; ++c) {
    std::vector<double> y(n);
    const double freq = 8.0 + 4.0 * (c % 3);
    for (size_t i = 0; i < n; ++i) {
      y[i] = std::sin(2.0 * M_PI * i / freq) + rng.Gaussian(0, 0.05);
    }
    auto t = enc.EncodeChunk(y, num_signals);
    ASSERT_TRUE(t.ok());
    ASSERT_LE(enc.base_signal().used_slots(), 2u);
    auto decoded = dec.DecodeChunk(*t);
    ASSERT_TRUE(decoded.ok());
    const auto eb = enc.base_signal().values();
    const auto db = dec.base_signal().values();
    ASSERT_EQ(eb.size(), db.size());
    for (size_t i = 0; i < eb.size(); ++i) {
      ASSERT_DOUBLE_EQ(eb[i], db[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvictionProperty,
                         testing::Values(EvictionPolicy::kLfu,
                                         EvictionPolicy::kFifo,
                                         EvictionPolicy::kRandom));

// ----------------------------------------------- error-bound properties

// Strict error-bound mode (Section 4.5): sweep (metric, band_pct,
// achievable). The error target is derived from a baseline run of the
// same workload — a multiple above the baseline error when `achievable`,
// a small fraction of it otherwise — so both halves of the contract get
// exercised on every metric:
//   * achievable target  -> the reported error meets the target, the
//     decoder-side reconstruction realizes that error (no silent
//     violation), and bandwidth is saved relative to the baseline;
//   * unachievable target -> the encoder must not pretend: it reports an
//     error above the target, and because the stop-early check never
//     fires it spends exactly the baseline's budget and produces exactly
//     the baseline's error.
class ErrorBoundProperty
    : public testing::TestWithParam<std::tuple<ErrorMetric, size_t, bool>> {
};

TEST_P(ErrorBoundProperty, TargetRespectedOrReportedUnreachable) {
  const auto [metric, pct, achievable] = GetParam();
  const size_t num_signals = 3, m = 160;
  const size_t n = num_signals * m;

  Rng rng(static_cast<uint64_t>(metric) * 100003 + pct * 977 + achievable);
  std::vector<double> y(n);
  for (size_t s = 0; s < num_signals; ++s) {
    for (size_t i = 0; i < m; ++i) {
      y[s * m + i] = std::sin(i * (0.1 + 0.03 * s)) * (2.0 + s) +
                     rng.Gaussian(0, 0.3);
    }
  }

  EncoderOptions opts;
  opts.total_band = n * pct / 100;
  opts.m_base = 96;
  opts.metric = metric;

  // Baseline: no target, full budget spend.
  EncodeStats baseline;
  {
    SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    baseline = enc.last_stats();
  }
  ASSERT_GT(baseline.total_error, 0.0);

  opts.error_target =
      achievable ? baseline.total_error * 4.0 : baseline.total_error * 0.01;
  SbrEncoder enc(opts);
  auto t = enc.EncodeChunk(y, num_signals);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const EncodeStats& stats = enc.last_stats();

  // The reported error is honest in both halves: the decoder-side
  // reconstruction realizes it exactly (no silent bound violation).
  SbrDecoder dec(DecoderOptions{opts.m_base});
  auto decoded = dec.DecodeChunk(*t);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  double direct = 0.0;
  switch (metric) {
    case ErrorMetric::kSse:
      direct = SumSquaredError(y, *decoded);
      break;
    case ErrorMetric::kSseRelative:
      direct = SumSquaredRelativeError(y, *decoded);
      break;
    case ErrorMetric::kMaxAbs:
      direct = MaxAbsoluteError(y, *decoded);
      break;
  }
  EXPECT_NEAR(stats.total_error, direct, 1e-6 * std::max(1.0, direct));

  if (achievable) {
    // Bound met, and met frugally: stopping early can only save values.
    EXPECT_LE(stats.total_error,
              opts.error_target * (1.0 + 1e-9));
    EXPECT_LE(stats.values_used, baseline.values_used);
    EXPECT_LE(t->ValueCount(), opts.total_band);
  } else {
    // Unreachable: the encoder reports it cannot — the error stays above
    // the target — and the run is bit-identical to the unconstrained one
    // (the stop-early check never fired, nothing else differs).
    EXPECT_GT(stats.total_error, opts.error_target);
    EXPECT_EQ(stats.values_used, baseline.values_used);
    EXPECT_EQ(stats.num_intervals, baseline.num_intervals);
    EXPECT_DOUBLE_EQ(stats.total_error, baseline.total_error);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErrorBoundProperty,
    testing::Combine(testing::Values(ErrorMetric::kSse,
                                     ErrorMetric::kSseRelative,
                                     ErrorMetric::kMaxAbs),
                     testing::Values<size_t>(10, 25),
                     testing::Bool()));

}  // namespace
}  // namespace sbr::core
