// Unit tests for BestMap: shift selection over the base signal, the
// linear-in-time fall-back, the 2W length cutoff, optimality against
// brute-force scans, malformed-interval rejection, deterministic
// tie-breaks, and thread-count invariance of the parallel shift scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/best_map.h"
#include "core/regression.h"
#include "util/rng.h"

namespace sbr::core {
namespace {

TEST(BestMap, FindsExactEmbeddedPattern) {
  // Base signal contains a distinctive pattern at shift 7; the data
  // interval is an affine image of it, so the scan must locate shift 7 and
  // achieve ~zero error.
  Rng rng(1);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(16);
  for (size_t i = 0; i < 16; ++i) y[i] = 3.0 * x[7 + i] - 2.0;

  Interval iv;
  iv.start = 0;
  iv.length = 16;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/16, opts, &iv);
  EXPECT_EQ(iv.shift, 7);
  EXPECT_NEAR(iv.a, 3.0, 1e-9);
  EXPECT_NEAR(iv.b, -2.0, 1e-9);
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, ScansAllShiftsIncludingLast) {
  // The matching segment sits flush at the end of the base signal.
  Rng rng(2);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  const size_t len = 8;
  const size_t last_shift = x.size() - len;
  std::vector<double> y(len);
  for (size_t i = 0; i < len; ++i) y[i] = x[last_shift + i];

  Interval iv;
  iv.start = 0;
  iv.length = len;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/len, opts, &iv);
  EXPECT_EQ(iv.shift, static_cast<int64_t>(last_shift));
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, FallsBackToLinearWhenBaseEmpty) {
  std::vector<double> y{1, 2, 3, 4, 5};
  Interval iv;
  iv.start = 0;
  iv.length = 5;
  BestMapOptions opts;
  BestMap({}, y, /*w=*/4, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_NEAR(iv.a, 1.0, 1e-12);
  EXPECT_NEAR(iv.b, 1.0, 1e-12);
  EXPECT_NEAR(iv.err, 0.0, 1e-12);
}

TEST(BestMap, LongIntervalSkipsShiftScan) {
  // length > 2 * w: the scan is skipped even though the base could host it.
  Rng rng(3);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) y[i] = x[10 + i];  // perfect match exists

  Interval iv;
  iv.start = 0;
  iv.length = 50;
  BestMapOptions opts;  // max_shift_multiple = 2, w = 16 -> cutoff 32 < 50
  BestMap(x, y, /*w=*/16, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
}

TEST(BestMap, CutoffBoundaryExactlyTwoW) {
  Rng rng(4);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  const size_t w = 16;
  std::vector<double> y(2 * w);
  for (size_t i = 0; i < y.size(); ++i) y[i] = x[5 + i];

  Interval iv;
  iv.start = 0;
  iv.length = y.size();
  BestMapOptions opts;
  BestMap(x, y, w, opts, &iv);
  EXPECT_EQ(iv.shift, 5);  // length == 2W is still scanned
}

TEST(BestMap, DisallowedFallbackStillUsedAsLastResort) {
  // Fall-back disabled but the base is too short for this interval: the
  // interval must still get an encoding.
  std::vector<double> x(4, 1.0);
  std::vector<double> y{5, 6, 7, 8, 9, 10};
  Interval iv;
  iv.start = 0;
  iv.length = 6;
  BestMapOptions opts;
  opts.allow_linear_fallback = false;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_TRUE(std::isfinite(iv.err));
}

TEST(BestMap, DisallowedFallbackUsesBaseEvenWhenWorse) {
  // A perfect ramp would have zero fall-back error, but with the fall-back
  // disabled the best base mapping must be chosen instead.
  Rng rng(5);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y{1, 2, 3, 4, 5, 6, 7, 8};
  Interval iv;
  iv.start = 0;
  iv.length = 8;
  BestMapOptions opts;
  opts.allow_linear_fallback = false;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_GE(iv.shift, 0);
}

TEST(BestMap, MatchesBruteForceOverShifts) {
  Rng rng(6);
  std::vector<double> x(48), full_y(64);
  for (auto& v : x) v = rng.Uniform(-2, 2);
  for (auto& v : full_y) v = rng.Uniform(-2, 2);

  Interval iv;
  iv.start = 10;
  iv.length = 12;
  BestMapOptions opts;
  BestMap(x, full_y, /*w=*/12, opts, &iv);

  // Brute force: every shift plus the fall-back.
  std::span<const double> yseg(full_y.data() + 10, 12);
  double best = FitTime(ErrorMetric::kSse, yseg, 1.0).err;
  for (size_t s = 0; s + 12 <= x.size(); ++s) {
    best = std::min(
        best, FitSse(std::span<const double>(x.data() + s, 12), yseg).err);
  }
  EXPECT_NEAR(iv.err, best, 1e-9 * std::max(1.0, best));
}

TEST(BestMap, RelativeMetricMatchesBruteForce) {
  Rng rng(7);
  std::vector<double> x(32), full_y(32);
  for (auto& v : x) v = rng.Uniform(1, 3);
  for (auto& v : full_y) v = rng.Uniform(5, 50);

  Interval iv;
  iv.start = 4;
  iv.length = 8;
  BestMapOptions opts;
  opts.metric = ErrorMetric::kSseRelative;
  BestMap(x, full_y, /*w=*/8, opts, &iv);

  std::span<const double> yseg(full_y.data() + 4, 8);
  double best = FitTime(ErrorMetric::kSseRelative, yseg, 1.0).err;
  for (size_t s = 0; s + 8 <= x.size(); ++s) {
    best = std::min(best,
                    FitSseRelative(
                        std::span<const double>(x.data() + s, 8), yseg, 1.0)
                        .err);
  }
  EXPECT_NEAR(iv.err, best, 1e-9 * std::max(1.0, best));
}

TEST(BestMap, MaxAbsMetricSelectsSaneShift) {
  Rng rng(8);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(6);
  for (size_t i = 0; i < 6; ++i) y[i] = -2.0 * x[9 + i] + 1.0;

  Interval iv;
  iv.start = 0;
  iv.length = 6;
  BestMapOptions opts;
  opts.metric = ErrorMetric::kMaxAbs;
  BestMap(x, y, /*w=*/6, opts, &iv);
  EXPECT_EQ(iv.shift, 9);
  EXPECT_NEAR(iv.err, 0.0, 1e-8);
}

TEST(BestMap, ChoosesBetterOfBaseAndFallback) {
  // The data is a perfect ramp (fall-back error 0) and the base is random
  // noise: the fall-back must win.
  Rng rng(9);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(8);
  for (size_t i = 0; i < 8; ++i) y[i] = 5.0 * static_cast<double>(i) + 1.0;

  Interval iv;
  iv.start = 0;
  iv.length = 8;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, SingleValueInterval) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{42.0};
  Interval iv;
  iv.start = 0;
  iv.length = 1;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/2, opts, &iv);
  EXPECT_NEAR(iv.err, 0.0, 1e-12);
}

// ------------------------------------------------------------- edge grid

TEST(BestMap, LengthOneInteriorInterval) {
  // length == 1 in the middle of y: a single point is always exactly
  // representable, whichever encoding wins.
  std::vector<double> x{0.5, -1.5, 2.5, 3.5};
  std::vector<double> y{9.0, -7.0, 3.0};
  Interval iv;
  iv.start = 1;
  iv.length = 1;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/2, opts, &iv);
  EXPECT_NEAR(iv.err, 0.0, 1e-12);
}

TEST(BestMap, LengthEqualsBaseSizeHasSingleShift) {
  // length == x.size(): exactly one shift (0) is scannable, and it must
  // actually be scanned, not skipped.
  Rng rng(20);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(16);
  for (size_t i = 0; i < 16; ++i) y[i] = -4.0 * x[i] + 0.5;
  Interval iv;
  iv.start = 0;
  iv.length = 16;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/16, opts, &iv);
  EXPECT_EQ(iv.shift, 0);
  EXPECT_NEAR(iv.a, -4.0, 1e-9);
  EXPECT_NEAR(iv.b, 0.5, 1e-9);
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, ConstantBaseSegmentDegenerateDenominator) {
  // A constant base window makes the normal-equation denominator ~0: the
  // scan must fall into the mean-only branch (a = 0, b = mean(y)) instead
  // of dividing by (near) zero.
  std::vector<double> x(12, 3.0);
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  Interval iv;
  iv.start = 0;
  iv.length = 4;
  BestMapOptions opts;
  opts.allow_linear_fallback = false;  // force the base mapping
  BestMap(x, y, /*w=*/4, opts, &iv);
  ASSERT_GE(iv.shift, 0);
  EXPECT_DOUBLE_EQ(iv.a, 0.0);
  EXPECT_NEAR(iv.b, 5.0, 1e-12);  // mean of y
  double expect_err = 0.0;
  for (double v : y) expect_err += (v - 5.0) * (v - 5.0);
  EXPECT_NEAR(iv.err, expect_err, 1e-9);
  EXPECT_TRUE(std::isfinite(iv.err));
}

TEST(BestMap, RelativeMetricBelowFloorMatchesBruteForce) {
  // Every |y| is far below relative_floor, so all the weights clamp to
  // 1/floor^2; the scan must still agree with the brute-force fits.
  Rng rng(21);
  std::vector<double> x(32), full_y(16);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  for (auto& v : full_y) v = rng.Uniform(-0.01, 0.01);  // << floor of 1.0

  Interval iv;
  iv.start = 2;
  iv.length = 8;
  BestMapOptions opts;
  opts.metric = ErrorMetric::kSseRelative;
  opts.relative_floor = 1.0;
  BestMap(x, full_y, /*w=*/8, opts, &iv);

  std::span<const double> yseg(full_y.data() + 2, 8);
  double best = FitTime(ErrorMetric::kSseRelative, yseg, 1.0).err;
  for (size_t s = 0; s + 8 <= x.size(); ++s) {
    best = std::min(best,
                    FitSseRelative(
                        std::span<const double>(x.data() + s, 8), yseg, 1.0)
                        .err);
  }
  EXPECT_NEAR(iv.err, best, 1e-9 * std::max(1.0, best));
}

// ------------------------------------------------- malformed input guard

TEST(BestMap, MalformedIntervalRejectedNotRead) {
  // An interval overrunning y (e.g. decoded from a corrupted frame) must
  // come back as the infinite-error fall-back marker, not crash or scan
  // out of bounds — this used to be a debug-only assert.
  std::vector<double> x(16, 1.0);
  std::vector<double> y(8, 2.0);
  Interval iv;
  iv.start = 4;
  iv.length = 100;  // start + length far beyond y.size()
  BestMapOptions opts;
  BestMap(x, y, /*w=*/4, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_TRUE(std::isinf(iv.err));
  EXPECT_DOUBLE_EQ(iv.a, 0.0);
  EXPECT_DOUBLE_EQ(iv.b, 0.0);
  EXPECT_DOUBLE_EQ(iv.c, 0.0);
}

TEST(BestMap, ZeroLengthIntervalRejected) {
  std::vector<double> x(8, 1.0);
  std::vector<double> y(8, 2.0);
  Interval iv;
  iv.start = 3;
  iv.length = 0;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/4, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_TRUE(std::isinf(iv.err));
}

TEST(BestMap, StartBeyondSeriesRejected) {
  std::vector<double> y(8, 2.0);
  Interval iv;
  iv.start = 9;  // > y.size(); start + length would overflow a naive check
  iv.length = static_cast<uint64_t>(-2);
  BestMapOptions opts;
  BestMap({}, y, /*w=*/4, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_TRUE(std::isinf(iv.err));
}

// ----------------------------------------------- determinism / threading

TEST(BestMap, ExactTiePrefersLowestShift) {
  // A periodic integer-valued base makes shifts {0, 4, 8, ...} produce
  // bitwise-identical (zero) errors; the deterministic tie-break must pick
  // shift 0 regardless of scan order or thread count.
  std::vector<double> x;
  for (int r = 0; r < 16; ++r) {
    x.push_back(1.0);
    x.push_back(2.0);
    x.push_back(4.0);
    x.push_back(3.0);
  }
  std::vector<double> y(x.begin(), x.begin() + 8);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    Interval iv;
    iv.start = 0;
    iv.length = 8;
    BestMapOptions opts;
    opts.threads = threads;
    BestMap(x, y, /*w=*/8, opts, &iv);
    EXPECT_EQ(iv.shift, 0) << "threads=" << threads;
    EXPECT_NEAR(iv.err, 0.0, 1e-12);
  }
}

TEST(BestMap, ThreadCountsProduceBitwiseIdenticalIntervals) {
  // The determinism contract of the parallel scan: for every metric, the
  // interval selected with threads in {2, 4, 8} is bitwise identical to
  // the serial result over seeded random inputs.
  Rng rng(22);
  std::vector<double> x(512), y(4096);
  for (auto& v : x) v = rng.Uniform(-2, 2);
  for (auto& v : y) v = std::sin(v) + rng.Uniform(-0.5, 0.5);

  struct Case {
    ErrorMetric metric;
    bool quadratic;
  };
  const Case cases[] = {{ErrorMetric::kSse, false},
                        {ErrorMetric::kSseRelative, false},
                        {ErrorMetric::kMaxAbs, false},
                        {ErrorMetric::kSse, true}};
  for (const Case& c : cases) {
    for (size_t start : {0u, 777u, 4000u}) {
      for (size_t length : {1u, 33u, 96u}) {
        if (start + length > y.size()) continue;
        BestMapOptions opts;
        opts.metric = c.metric;
        opts.quadratic = c.quadratic;
        Interval serial;
        serial.start = start;
        serial.length = length;
        BestMap(x, y, /*w=*/64, opts, &serial);
        for (size_t threads : {2u, 4u, 8u}) {
          Interval iv;
          iv.start = start;
          iv.length = length;
          opts.threads = threads;
          BestMap(x, y, /*w=*/64, opts, &iv);
          EXPECT_EQ(iv.shift, serial.shift)
              << "metric=" << static_cast<int>(c.metric)
              << " quad=" << c.quadratic << " start=" << start
              << " len=" << length << " threads=" << threads;
          EXPECT_EQ(iv.a, serial.a);
          EXPECT_EQ(iv.b, serial.b);
          EXPECT_EQ(iv.c, serial.c);
          EXPECT_EQ(iv.err, serial.err);
        }
      }
    }
  }
}

}  // namespace
}  // namespace sbr::core
