// Unit tests for BestMap: shift selection over the base signal, the
// linear-in-time fall-back, the 2W length cutoff, and optimality against
// brute-force scans.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/best_map.h"
#include "core/regression.h"
#include "util/rng.h"

namespace sbr::core {
namespace {

TEST(BestMap, FindsExactEmbeddedPattern) {
  // Base signal contains a distinctive pattern at shift 7; the data
  // interval is an affine image of it, so the scan must locate shift 7 and
  // achieve ~zero error.
  Rng rng(1);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(16);
  for (size_t i = 0; i < 16; ++i) y[i] = 3.0 * x[7 + i] - 2.0;

  Interval iv;
  iv.start = 0;
  iv.length = 16;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/16, opts, &iv);
  EXPECT_EQ(iv.shift, 7);
  EXPECT_NEAR(iv.a, 3.0, 1e-9);
  EXPECT_NEAR(iv.b, -2.0, 1e-9);
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, ScansAllShiftsIncludingLast) {
  // The matching segment sits flush at the end of the base signal.
  Rng rng(2);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  const size_t len = 8;
  const size_t last_shift = x.size() - len;
  std::vector<double> y(len);
  for (size_t i = 0; i < len; ++i) y[i] = x[last_shift + i];

  Interval iv;
  iv.start = 0;
  iv.length = len;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/len, opts, &iv);
  EXPECT_EQ(iv.shift, static_cast<int64_t>(last_shift));
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, FallsBackToLinearWhenBaseEmpty) {
  std::vector<double> y{1, 2, 3, 4, 5};
  Interval iv;
  iv.start = 0;
  iv.length = 5;
  BestMapOptions opts;
  BestMap({}, y, /*w=*/4, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_NEAR(iv.a, 1.0, 1e-12);
  EXPECT_NEAR(iv.b, 1.0, 1e-12);
  EXPECT_NEAR(iv.err, 0.0, 1e-12);
}

TEST(BestMap, LongIntervalSkipsShiftScan) {
  // length > 2 * w: the scan is skipped even though the base could host it.
  Rng rng(3);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) y[i] = x[10 + i];  // perfect match exists

  Interval iv;
  iv.start = 0;
  iv.length = 50;
  BestMapOptions opts;  // max_shift_multiple = 2, w = 16 -> cutoff 32 < 50
  BestMap(x, y, /*w=*/16, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
}

TEST(BestMap, CutoffBoundaryExactlyTwoW) {
  Rng rng(4);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  const size_t w = 16;
  std::vector<double> y(2 * w);
  for (size_t i = 0; i < y.size(); ++i) y[i] = x[5 + i];

  Interval iv;
  iv.start = 0;
  iv.length = y.size();
  BestMapOptions opts;
  BestMap(x, y, w, opts, &iv);
  EXPECT_EQ(iv.shift, 5);  // length == 2W is still scanned
}

TEST(BestMap, DisallowedFallbackStillUsedAsLastResort) {
  // Fall-back disabled but the base is too short for this interval: the
  // interval must still get an encoding.
  std::vector<double> x(4, 1.0);
  std::vector<double> y{5, 6, 7, 8, 9, 10};
  Interval iv;
  iv.start = 0;
  iv.length = 6;
  BestMapOptions opts;
  opts.allow_linear_fallback = false;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_TRUE(std::isfinite(iv.err));
}

TEST(BestMap, DisallowedFallbackUsesBaseEvenWhenWorse) {
  // A perfect ramp would have zero fall-back error, but with the fall-back
  // disabled the best base mapping must be chosen instead.
  Rng rng(5);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y{1, 2, 3, 4, 5, 6, 7, 8};
  Interval iv;
  iv.start = 0;
  iv.length = 8;
  BestMapOptions opts;
  opts.allow_linear_fallback = false;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_GE(iv.shift, 0);
}

TEST(BestMap, MatchesBruteForceOverShifts) {
  Rng rng(6);
  std::vector<double> x(48), full_y(64);
  for (auto& v : x) v = rng.Uniform(-2, 2);
  for (auto& v : full_y) v = rng.Uniform(-2, 2);

  Interval iv;
  iv.start = 10;
  iv.length = 12;
  BestMapOptions opts;
  BestMap(x, full_y, /*w=*/12, opts, &iv);

  // Brute force: every shift plus the fall-back.
  std::span<const double> yseg(full_y.data() + 10, 12);
  double best = FitTime(ErrorMetric::kSse, yseg, 1.0).err;
  for (size_t s = 0; s + 12 <= x.size(); ++s) {
    best = std::min(
        best, FitSse(std::span<const double>(x.data() + s, 12), yseg).err);
  }
  EXPECT_NEAR(iv.err, best, 1e-9 * std::max(1.0, best));
}

TEST(BestMap, RelativeMetricMatchesBruteForce) {
  Rng rng(7);
  std::vector<double> x(32), full_y(32);
  for (auto& v : x) v = rng.Uniform(1, 3);
  for (auto& v : full_y) v = rng.Uniform(5, 50);

  Interval iv;
  iv.start = 4;
  iv.length = 8;
  BestMapOptions opts;
  opts.metric = ErrorMetric::kSseRelative;
  BestMap(x, full_y, /*w=*/8, opts, &iv);

  std::span<const double> yseg(full_y.data() + 4, 8);
  double best = FitTime(ErrorMetric::kSseRelative, yseg, 1.0).err;
  for (size_t s = 0; s + 8 <= x.size(); ++s) {
    best = std::min(best,
                    FitSseRelative(
                        std::span<const double>(x.data() + s, 8), yseg, 1.0)
                        .err);
  }
  EXPECT_NEAR(iv.err, best, 1e-9 * std::max(1.0, best));
}

TEST(BestMap, MaxAbsMetricSelectsSaneShift) {
  Rng rng(8);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(6);
  for (size_t i = 0; i < 6; ++i) y[i] = -2.0 * x[9 + i] + 1.0;

  Interval iv;
  iv.start = 0;
  iv.length = 6;
  BestMapOptions opts;
  opts.metric = ErrorMetric::kMaxAbs;
  BestMap(x, y, /*w=*/6, opts, &iv);
  EXPECT_EQ(iv.shift, 9);
  EXPECT_NEAR(iv.err, 0.0, 1e-8);
}

TEST(BestMap, ChoosesBetterOfBaseAndFallback) {
  // The data is a perfect ramp (fall-back error 0) and the base is random
  // noise: the fall-back must win.
  Rng rng(9);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.Uniform(-1, 1);
  std::vector<double> y(8);
  for (size_t i = 0; i < 8; ++i) y[i] = 5.0 * static_cast<double>(i) + 1.0;

  Interval iv;
  iv.start = 0;
  iv.length = 8;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/8, opts, &iv);
  EXPECT_EQ(iv.shift, kShiftLinearFallback);
  EXPECT_NEAR(iv.err, 0.0, 1e-9);
}

TEST(BestMap, SingleValueInterval) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{42.0};
  Interval iv;
  iv.start = 0;
  iv.length = 1;
  BestMapOptions opts;
  BestMap(x, y, /*w=*/2, opts, &iv);
  EXPECT_NEAR(iv.err, 0.0, 1e-12);
}

}  // namespace
}  // namespace sbr::core
