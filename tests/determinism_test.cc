// Determinism and reproducibility guarantees: identical inputs and seeds
// must yield bit-identical datasets, transmissions and reconstructions
// across runs — the property every bench table and EXPERIMENTS.md number
// relies on. Also pins a few structural "golden" facts about the fixed
// paper setups so accidental algorithm or generator changes surface here
// instead of silently shifting the experiment outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/decoder.h"
#include "core/encoder.h"
#include "datagen/paper_datasets.h"
#include "util/rng.h"

namespace sbr {
namespace {

std::vector<uint8_t> EncodeToBytes(const datagen::ExperimentSetup& setup,
                                   size_t chunks, size_t ratio_pct) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  core::EncoderOptions opts;
  opts.total_band = n * ratio_pct / 100;
  opts.m_base = setup.m_base;
  core::SbrEncoder enc(opts);
  BinaryWriter w;
  for (size_t c = 0; c < chunks; ++c) {
    const auto y = datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto t = enc.EncodeChunk(y, setup.dataset.num_signals());
    EXPECT_TRUE(t.ok());
    t->Serialize(&w);
  }
  return w.TakeBuffer();
}

TEST(Determinism, DatasetsAreBitReproducible) {
  const auto a = datagen::PaperWeatherSetup();
  const auto b = datagen::PaperWeatherSetup();
  ASSERT_EQ(a.dataset.length(), b.dataset.length());
  for (size_t s = 0; s < a.dataset.num_signals(); ++s) {
    for (size_t i = 0; i < a.dataset.length(); i += 997) {
      ASSERT_DOUBLE_EQ(a.dataset.values(s, i), b.dataset.values(s, i));
    }
  }
}

TEST(Determinism, EncoderOutputIsBitReproducible) {
  const auto setup = datagen::Fig6StockSetup();
  const auto run1 = EncodeToBytes(setup, 2, 10);
  const auto run2 = EncodeToBytes(setup, 2, 10);
  EXPECT_EQ(run1, run2);
}

TEST(Determinism, RngStreamsArePlatformPinned) {
  // The first few xoshiro256++ outputs for a fixed seed; these values are
  // part of the reproducibility contract (they never depend on libc).
  Rng rng(42);
  EXPECT_EQ(rng.NextU64(), 15021278609987233951ull);
  Rng rng2(0);
  (void)rng2.NextU64();  // seed 0 must be usable (SplitMix64 mixing)
  EXPECT_NE(rng2.NextU64(), 0ull);
}

TEST(Determinism, PaperSetupStructuralGoldens) {
  // Structural facts the experiments rely on; a change here means every
  // number in EXPERIMENTS.md must be regenerated.
  {
    const auto s = datagen::PaperWeatherSetup();
    const size_t n = s.dataset.num_signals() * s.chunk_len;
    EXPECT_EQ(n, 24576u);
    EXPECT_EQ(static_cast<size_t>(std::sqrt(static_cast<double>(n))), 156u);
  }
  {
    const auto s = datagen::Fig6PhoneSetup();
    const size_t n = s.dataset.num_signals() * s.chunk_len;
    EXPECT_EQ(n, 30720u);
    EXPECT_EQ(static_cast<size_t>(std::sqrt(static_cast<double>(n))), 175u);
  }
}

TEST(Determinism, DecoderIsPureFunctionOfTransmissionSequence) {
  const auto setup = datagen::Fig6WeatherSetup();
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  core::EncoderOptions opts;
  opts.total_band = n / 10;
  opts.m_base = setup.m_base;
  core::SbrEncoder enc(opts);

  std::vector<core::Transmission> stream;
  for (size_t c = 0; c < 3; ++c) {
    const auto y = datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto t = enc.EncodeChunk(y, setup.dataset.num_signals());
    ASSERT_TRUE(t.ok());
    stream.push_back(std::move(t).value());
  }
  core::SbrDecoder d1(core::DecoderOptions{opts.m_base});
  core::SbrDecoder d2(core::DecoderOptions{opts.m_base});
  for (const auto& t : stream) {
    auto a = d1.DecodeChunk(t);
    auto b = d2.DecodeChunk(t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*a, *b);
  }
}

}  // namespace
}  // namespace sbr
