// Determinism and reproducibility guarantees: identical inputs and seeds
// must yield bit-identical datasets, transmissions and reconstructions
// across runs — the property every bench table and EXPERIMENTS.md number
// relies on. Also pins a few structural "golden" facts about the fixed
// paper setups so accidental algorithm or generator changes surface here
// instead of silently shifting the experiment outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/decoder.h"
#include "core/encoder.h"
#include "datagen/paper_datasets.h"
#include "datagen/weather.h"
#include "net/network.h"
#include "util/rng.h"

namespace sbr {
namespace {

std::vector<uint8_t> EncodeToBytes(const datagen::ExperimentSetup& setup,
                                   size_t chunks, size_t ratio_pct,
                                   size_t threads = 1) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  core::EncoderOptions opts;
  opts.total_band = n * ratio_pct / 100;
  opts.m_base = setup.m_base;
  opts.threads = threads;
  core::SbrEncoder enc(opts);
  BinaryWriter w;
  for (size_t c = 0; c < chunks; ++c) {
    const auto y = datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto t = enc.EncodeChunk(y, setup.dataset.num_signals());
    EXPECT_TRUE(t.ok());
    t->Serialize(&w);
  }
  return w.TakeBuffer();
}

TEST(Determinism, DatasetsAreBitReproducible) {
  const auto a = datagen::PaperWeatherSetup();
  const auto b = datagen::PaperWeatherSetup();
  ASSERT_EQ(a.dataset.length(), b.dataset.length());
  for (size_t s = 0; s < a.dataset.num_signals(); ++s) {
    for (size_t i = 0; i < a.dataset.length(); i += 997) {
      ASSERT_DOUBLE_EQ(a.dataset.values(s, i), b.dataset.values(s, i));
    }
  }
}

TEST(Determinism, EncoderOutputIsBitReproducible) {
  const auto setup = datagen::Fig6StockSetup();
  const auto run1 = EncodeToBytes(setup, 2, 10);
  const auto run2 = EncodeToBytes(setup, 2, 10);
  EXPECT_EQ(run1, run2);
}

TEST(Determinism, RngStreamsArePlatformPinned) {
  // The first few xoshiro256++ outputs for a fixed seed; these values are
  // part of the reproducibility contract (they never depend on libc).
  Rng rng(42);
  EXPECT_EQ(rng.NextU64(), 15021278609987233951ull);
  Rng rng2(0);
  (void)rng2.NextU64();  // seed 0 must be usable (SplitMix64 mixing)
  EXPECT_NE(rng2.NextU64(), 0ull);
}

TEST(Determinism, PaperSetupStructuralGoldens) {
  // Structural facts the experiments rely on; a change here means every
  // number in EXPERIMENTS.md must be regenerated.
  {
    const auto s = datagen::PaperWeatherSetup();
    const size_t n = s.dataset.num_signals() * s.chunk_len;
    EXPECT_EQ(n, 24576u);
    EXPECT_EQ(static_cast<size_t>(std::sqrt(static_cast<double>(n))), 156u);
  }
  {
    const auto s = datagen::Fig6PhoneSetup();
    const size_t n = s.dataset.num_signals() * s.chunk_len;
    EXPECT_EQ(n, 30720u);
    EXPECT_EQ(static_cast<size_t>(std::sqrt(static_cast<double>(n))), 175u);
  }
}

TEST(Determinism, EncoderOutputIdenticalAcrossThreadCounts) {
  // The parallel-encoding contract: EncoderOptions::threads is a pure
  // performance knob. The serialized transmission stream — intervals,
  // base updates, everything — must be byte-identical at any thread count.
  const auto setup = datagen::Fig6StockSetup();
  const auto serial = EncodeToBytes(setup, 3, 10, /*threads=*/1);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(EncodeToBytes(setup, 3, 10, threads), serial)
        << "threads=" << threads;
  }
}

void ExpectNodeReportsEqual(const net::NodeReport& a, const net::NodeReport& b,
                            size_t threads) {
  EXPECT_EQ(a.id, b.id) << "threads=" << threads;
  EXPECT_EQ(a.transmissions, b.transmissions) << "threads=" << threads;
  EXPECT_EQ(a.values_sent, b.values_sent) << "threads=" << threads;
  EXPECT_EQ(a.values_raw, b.values_raw) << "threads=" << threads;
  EXPECT_EQ(a.retransmissions, b.retransmissions) << "threads=" << threads;
  EXPECT_EQ(a.backoff_slots, b.backoff_slots) << "threads=" << threads;
  EXPECT_EQ(a.corrupt_frames_detected, b.corrupt_frames_detected)
      << "threads=" << threads;
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed)
      << "threads=" << threads;
  EXPECT_EQ(a.resyncs_triggered, b.resyncs_triggered) << "threads=" << threads;
  EXPECT_EQ(a.degraded_batches, b.degraded_batches) << "threads=" << threads;
  EXPECT_EQ(a.chunks_lost, b.chunks_lost) << "threads=" << threads;
  EXPECT_EQ(a.frames_abandoned, b.frames_abandoned) << "threads=" << threads;
  EXPECT_EQ(a.retries_shed, b.retries_shed) << "threads=" << threads;
  EXPECT_EQ(a.forwarded_copies, b.forwarded_copies) << "threads=" << threads;
  EXPECT_EQ(a.charged_values, b.charged_values) << "threads=" << threads;
  EXPECT_EQ(a.energy.total_nj(), b.energy.total_nj()) << "threads=" << threads;
  EXPECT_EQ(a.raw_energy_nj, b.raw_energy_nj) << "threads=" << threads;
  EXPECT_EQ(a.sse, b.sse) << "threads=" << threads;
}

TEST(Determinism, NetworkReportIdenticalAcrossThreadCounts) {
  // Concurrent node simulation over adversarial links (drops, duplicates,
  // reordering, bit flips — exercising the serialized base station and the
  // per-node corrupt-frame attribution) must still yield a bitwise
  // identical report at any thread count.
  datagen::WeatherOptions wopts;
  wopts.length = 512;
  std::vector<datagen::Dataset> feeds;
  std::vector<net::NodePlacement> placements;
  for (uint32_t id = 0; id < 4; ++id) {
    wopts.seed = 300 + id;
    feeds.push_back(datagen::GenerateWeather(wopts));
    placements.push_back({id, id % 2 + 1});
  }
  net::LinkOptions link;
  link.loss_probability = 0.1;
  link.duplicate_probability = 0.05;
  link.reorder_probability = 0.05;
  link.bit_flip_probability = 0.02;

  auto run = [&](size_t threads) {
    core::EncoderOptions opts;
    opts.total_band = 300;
    opts.m_base = 256;
    opts.threads = threads;
    net::NetworkSim sim(placements, opts, /*chunk_len=*/256,
                        net::EnergyParams(), link);
    auto report = sim.Run(feeds);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  };

  const auto serial = run(1);
  ASSERT_EQ(serial.nodes.size(), 4u);
  for (size_t threads : {2u, 4u, 8u}) {
    const auto r = run(threads);
    ASSERT_EQ(r.nodes.size(), serial.nodes.size());
    for (size_t i = 0; i < r.nodes.size(); ++i) {
      ExpectNodeReportsEqual(r.nodes[i], serial.nodes[i], threads);
    }
    EXPECT_EQ(r.total_values_sent, serial.total_values_sent);
    EXPECT_EQ(r.total_values_raw, serial.total_values_raw);
    EXPECT_EQ(r.total_energy_nj, serial.total_energy_nj);
    EXPECT_EQ(r.total_raw_energy_nj, serial.total_raw_energy_nj);
    EXPECT_EQ(r.total_sse, serial.total_sse);
    EXPECT_EQ(r.total_chunks_lost, serial.total_chunks_lost);
    EXPECT_EQ(r.total_corrupt_frames, serial.total_corrupt_frames);
    EXPECT_EQ(r.total_duplicates_suppressed, serial.total_duplicates_suppressed);
    EXPECT_EQ(r.total_resyncs, serial.total_resyncs);
    EXPECT_EQ(r.total_degraded_batches, serial.total_degraded_batches);
  }
}

TEST(Determinism, TreeTopologyReportIdenticalAcrossThreadCounts) {
  // Tree routing shares relays between concurrently simulated nodes, so
  // relay energy lands in per-origin accumulators merged in a fixed order
  // after the parallel phase. The merged report must still be bitwise
  // identical at any thread count.
  datagen::WeatherOptions wopts;
  wopts.length = 512;
  std::vector<datagen::Dataset> feeds;
  std::vector<net::NodePlacement> placements;
  for (uint32_t id = 0; id < 4; ++id) {
    wopts.seed = 400 + id;
    feeds.push_back(datagen::GenerateWeather(wopts));
    placements.push_back({id, 1});
  }
  net::TopologyOptions topts;
  topts.shape = net::TopologyShape::kChain;
  topts.num_nodes = 4;
  net::LinkOptions link;
  link.loss_probability = 0.1;
  link.duplicate_probability = 0.05;
  link.bit_flip_probability = 0.02;

  auto run = [&](size_t threads) {
    core::EncoderOptions opts;
    opts.total_band = 300;
    opts.m_base = 256;
    opts.threads = threads;
    net::NetworkSim sim(net::Topology::Build(topts), placements,
                        opts, /*chunk_len=*/256, net::EnergyParams(), link);
    auto report = sim.Run(feeds);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(report).value();
  };

  const auto serial = run(1);
  ASSERT_EQ(serial.nodes.size(), 4u);
  size_t forwarded = 0;
  for (const auto& n : serial.nodes) forwarded += n.forwarded_copies;
  EXPECT_GT(forwarded, 0u) << "chain must route through relays";
  for (size_t threads : {2u, 4u, 8u}) {
    const auto r = run(threads);
    ASSERT_EQ(r.nodes.size(), serial.nodes.size());
    for (size_t i = 0; i < r.nodes.size(); ++i) {
      ExpectNodeReportsEqual(r.nodes[i], serial.nodes[i], threads);
    }
    EXPECT_EQ(r.total_energy_nj, serial.total_energy_nj);
    EXPECT_EQ(r.total_sse, serial.total_sse);
  }
}

TEST(Determinism, DecoderIsPureFunctionOfTransmissionSequence) {
  const auto setup = datagen::Fig6WeatherSetup();
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  core::EncoderOptions opts;
  opts.total_band = n / 10;
  opts.m_base = setup.m_base;
  core::SbrEncoder enc(opts);

  std::vector<core::Transmission> stream;
  for (size_t c = 0; c < 3; ++c) {
    const auto y = datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto t = enc.EncodeChunk(y, setup.dataset.num_signals());
    ASSERT_TRUE(t.ok());
    stream.push_back(std::move(t).value());
  }
  core::SbrDecoder d1(core::DecoderOptions{opts.m_base});
  core::SbrDecoder d2(core::DecoderOptions{opts.m_base});
  for (const auto& t : stream) {
    auto a = d1.DecodeChunk(t);
    auto b = d2.DecodeChunk(t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*a, *b);
  }
}

}  // namespace
}  // namespace sbr
