// Unit tests for the util substrate: Status/StatusOr, the deterministic
// RNG, binary serialization, error metrics / statistics, prefix sums and
// CSV I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <set>

#include "util/csv.h"
#include "util/prefix_sums.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/status.h"

namespace sbr {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kDataLoss, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsThrough() {
  SBR_RETURN_IF_ERROR(Status::DataLoss("inner"));
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kDataLoss);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedReplays) {
  Rng r(77);
  const uint64_t first = r.NextU64();
  r.NextU64();
  r.Seed(77);
  EXPECT_EQ(r.NextU64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng r(9);
  std::array<int, 7> counts{};
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) {
    const int64_t v = r.UniformInt(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    ++counts[v - 3];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 7.0, trials * 0.01);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng r(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(r.Gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng r(12);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(r.Gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(stats.variance()), 2.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng r(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(static_cast<double>(r.Poisson(3.5)));
  }
  EXPECT_NEAR(stats.mean(), 3.5, 0.05);
  EXPECT_NEAR(stats.variance(), 3.5, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r(14);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const int64_t v = r.Poisson(400.0);
    ASSERT_GE(v, 0);
    stats.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.mean(), 400.0, 1.0);
  EXPECT_NEAR(stats.variance(), 400.0, 20.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(15);
  EXPECT_EQ(r.Poisson(0.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng r(16);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(r.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng r(17);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = r.SampleIndices(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (size_t v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleIndicesFullRange) {
  Rng r(18);
  const auto sample = r.SampleIndices(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------- Serialize

TEST(Serialize, RoundTripPrimitives) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-12345);
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutDoubles(std::vector<double>{1.5, -2.5, 1e300});

  BinaryReader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  std::vector<double> ds;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetDoubles(&ds).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -12345);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(ds, (std::vector<double>{1.5, -2.5, 1e300}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, DoubleBitExactRoundTrip) {
  const double specials[] = {0.0, -0.0, 1e-308, -1e308,
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min()};
  for (double v : specials) {
    BinaryWriter w;
    w.PutDouble(v);
    BinaryReader r(w.buffer());
    double out;
    ASSERT_TRUE(r.GetDouble(&out).ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(v), std::bit_cast<uint64_t>(out));
  }
}

TEST(Serialize, TruncatedInputFailsCleanly) {
  BinaryWriter w;
  w.PutU64(7);
  std::span<const uint8_t> half(w.buffer().data(), 4);
  BinaryReader r(half);
  uint64_t v;
  EXPECT_EQ(r.GetU64(&v).code(), StatusCode::kDataLoss);
}

TEST(Serialize, TruncatedDoublesArrayFails) {
  BinaryWriter w;
  w.PutU32(100);  // claims 100 doubles but provides none
  BinaryReader r(w.buffer());
  std::vector<double> out;
  EXPECT_EQ(r.GetDoubles(&out).code(), StatusCode::kDataLoss);
}

TEST(Serialize, EmptyContainers) {
  BinaryWriter w;
  w.PutString("");
  w.PutDoubles(std::span<const double>{});
  BinaryReader r(w.buffer());
  std::string s;
  std::vector<double> ds{99.0};
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetDoubles(&ds).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(ds.empty());
}

// ----------------------------------------------------------------- Stats

TEST(Stats, SumSquaredError) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 4, 0};
  EXPECT_DOUBLE_EQ(SumSquaredError(a, b), 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(SumSquaredError(a, a), 0.0);
}

TEST(Stats, SumSquaredRelativeErrorUsesFloor) {
  std::vector<double> truth{0.0};  // |truth| below the floor of 1.0
  std::vector<double> approx{2.0};
  EXPECT_DOUBLE_EQ(SumSquaredRelativeError(truth, approx), 4.0);
  std::vector<double> truth2{10.0};
  std::vector<double> approx2{11.0};
  EXPECT_DOUBLE_EQ(SumSquaredRelativeError(truth2, approx2), 0.01);
}

TEST(Stats, MaxAbsoluteError) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{2, 0, 3.5};
  EXPECT_DOUBLE_EQ(MaxAbsoluteError(a, b), 2.0);
}

TEST(Stats, MeanVarianceExtent) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  const MinMax mm = Extent(v);
  EXPECT_DOUBLE_EQ(mm.min, 2.0);
  EXPECT_DOUBLE_EQ(mm.max, 9.0);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(Stats, PearsonCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng r(21);
  std::vector<double> values;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.Uniform(-10, 10);
    values.push_back(v);
    rs.Add(v);
  }
  EXPECT_NEAR(rs.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(values), 1e-9);
  const MinMax mm = Extent(values);
  EXPECT_DOUBLE_EQ(rs.min(), mm.min);
  EXPECT_DOUBLE_EQ(rs.max(), mm.max);
  EXPECT_EQ(rs.count(), 1000u);
}

// ----------------------------------------------------------- PrefixSums

TEST(PrefixSums, MatchesNaiveRangeSums) {
  Rng r(30);
  std::vector<double> v(257);
  for (auto& x : v) x = r.Uniform(-5, 5);
  PrefixSums ps(v);
  EXPECT_EQ(ps.size(), v.size());
  for (size_t start : {0u, 1u, 100u, 255u}) {
    for (size_t len : {1u, 2u, 7u}) {
      if (start + len > v.size()) continue;
      double sum = 0, sum2 = 0;
      for (size_t i = start; i < start + len; ++i) {
        sum += v[i];
        sum2 += v[i] * v[i];
      }
      EXPECT_NEAR(ps.RangeSum(start, len), sum, 1e-9);
      EXPECT_NEAR(ps.RangeSumSquares(start, len), sum2, 1e-9);
    }
  }
}

TEST(PrefixSums, ResetReplacesSeries) {
  PrefixSums ps(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(ps.RangeSum(0, 3), 6.0);
  ps.Reset(std::vector<double>{10, 10});
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps.RangeSum(0, 2), 20.0);
}

TEST(PrefixSums, AppendMatchesReset) {
  // Incremental growth must produce bitwise the same tables as a fresh
  // build over the full series — the encode pipeline relies on this when
  // Search extends the trial base one candidate at a time.
  Rng r(31);
  std::vector<double> v(97);
  for (auto& x : v) x = r.Uniform(-3, 3);

  PrefixSums incremental;
  for (double x : v) incremental.Append(x);
  PrefixSums fresh(v);

  ASSERT_EQ(incremental.size(), fresh.size());
  for (size_t start = 0; start < v.size(); start += 13) {
    for (size_t len : {1u, 5u, 31u}) {
      if (!fresh.CoversRange(start, len)) continue;
      // Exact equality, not NEAR: the append path performs the identical
      // left-to-right additions as the reset path.
      EXPECT_EQ(incremental.RangeSum(start, len), fresh.RangeSum(start, len));
      EXPECT_EQ(incremental.RangeSumSquares(start, len),
                fresh.RangeSumSquares(start, len));
    }
  }
}

TEST(PrefixSums, AppendOntoExistingSeries) {
  PrefixSums ps(std::vector<double>{1, 2});
  ps.Append(3);
  ps.Append(4);
  EXPECT_EQ(ps.size(), 4u);
  EXPECT_DOUBLE_EQ(ps.RangeSum(0, 4), 10.0);
  EXPECT_DOUBLE_EQ(ps.RangeSumSquares(2, 2), 25.0);
}

TEST(PrefixSums, CoversRangeIsOverflowSafe) {
  PrefixSums ps(std::vector<double>{1, 2, 3});
  EXPECT_TRUE(ps.CoversRange(0, 3));
  EXPECT_TRUE(ps.CoversRange(3, 0));
  EXPECT_FALSE(ps.CoversRange(0, 4));
  EXPECT_FALSE(ps.CoversRange(4, 0));
  // start + length would wrap to a small value; the naive
  // `start + length <= size` check would accept these.
  const size_t huge = std::numeric_limits<size_t>::max();
  EXPECT_FALSE(ps.CoversRange(huge, 2));
  EXPECT_FALSE(ps.CoversRange(2, huge));
  EXPECT_FALSE(ps.CoversRange(huge, huge));
}

// ------------------------------------------------------------------- Csv

TEST(Csv, WriteReadRoundTrip) {
  const std::string path = testing::TempDir() + "/sbr_csv_test.csv";
  CsvTable table;
  table.columns = {"a", "b"};
  table.rows = {{1.5, -2.25}, {3.0, 1e-7}};
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto read = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->columns, table.columns);
  ASSERT_EQ(read->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(read->rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(read->rows[1][1], 1e-7);
  std::filesystem::remove(path);
}

TEST(Csv, HeaderlessRead) {
  const std::string path = testing::TempDir() + "/sbr_csv_nh.csv";
  CsvTable table;
  table.rows = {{1, 2, 3}};
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto read = ReadCsv(path, /*has_header=*/false);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->columns.empty());
  EXPECT_EQ(read->rows[0], (std::vector<double>{1, 2, 3}));
  std::filesystem::remove(path);
}

TEST(Csv, RaggedRowsRejected) {
  const std::string path = testing::TempDir() + "/sbr_csv_ragged.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,2\n3\n", f);
    std::fclose(f);
  }
  auto read = ReadCsv(path, /*has_header=*/false);
  EXPECT_FALSE(read.ok());
  std::filesystem::remove(path);
}

TEST(Csv, NonNumericCellRejected) {
  const std::string path = testing::TempDir() + "/sbr_csv_alpha.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("1,abc\n", f);
    std::fclose(f);
  }
  auto read = ReadCsv(path, /*has_header=*/false);
  EXPECT_FALSE(read.ok());
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileIsNotFound) {
  auto read = ReadCsv("/nonexistent/dir/file.csv", false);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sbr
