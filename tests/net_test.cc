// Unit tests for the sensor-network substrate: the energy model, the
// batching sensor node, the base station, the routing topology and the
// end-to-end simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/weather.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/network.h"
#include "net/node.h"
#include "net/topology.h"
#include "util/rng.h"

namespace sbr::net {
namespace {

// ---------------------------------------------------------------- Energy

TEST(Energy, TransmissionCostScalesWithValuesAndHops) {
  EnergyModel model;
  EnergyAccount one, two;
  model.ChargeTransmission(100, 1, &one);
  model.ChargeTransmission(100, 2, &two);
  EXPECT_NEAR(two.total_nj(), 2.0 * one.total_nj(), 1e-6);

  EnergyAccount big;
  model.ChargeTransmission(200, 1, &big);
  EXPECT_NEAR(big.total_nj(), 2.0 * one.total_nj(), 1e-6);
}

TEST(Energy, ComponentsBrokenOut) {
  EnergyParams params;
  params.bits_per_value = 10;
  params.tx_nj_per_bit = 7;
  params.rx_nj_per_bit = 3;
  params.overhear_neighbors = 2;
  EnergyModel model(params);
  EnergyAccount acc;
  model.ChargeTransmission(5, 1, &acc);  // 50 bits
  EXPECT_DOUBLE_EQ(acc.tx_nj, 350.0);
  EXPECT_DOUBLE_EQ(acc.rx_nj, 150.0);
  EXPECT_DOUBLE_EQ(acc.overhear_nj, 300.0);
  EXPECT_DOUBLE_EQ(acc.total_nj(), 800.0);
  EXPECT_DOUBLE_EQ(model.RawTransmissionNj(5, 1), 800.0);
}

TEST(Energy, CpuChargeUsesInstructionCost) {
  EnergyModel model;
  EnergyAccount acc;
  model.ChargeCpu(1000.0, &acc);
  EXPECT_NEAR(acc.cpu_nj, 1000.0 * model.params().cpu_nj_per_instruction,
              1e-9);
}

TEST(Energy, TransmitBitCostsRoughlyThousandInstructions) {
  // The MICA figure the paper cites; keep the default parameters honest.
  EnergyParams params;
  EXPECT_NEAR(params.tx_nj_per_bit / params.cpu_nj_per_instruction, 1000.0,
              1.0);
}

// ------------------------------------------------------------ SensorNode

core::EncoderOptions NodeOptions() {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  return opts;
}

TEST(SensorNode, EmitsOnExactlyFullBuffer) {
  SensorNode node(7, 2, 64, NodeOptions());
  Rng rng(1);
  std::vector<double> sample(2);
  for (size_t i = 0; i < 63; ++i) {
    sample[0] = rng.Uniform(0, 1);
    sample[1] = rng.Uniform(0, 1);
    auto r = node.AddSamples(sample);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->has_value()) << "premature flush at " << i;
  }
  EXPECT_EQ(node.buffered(), 63u);
  auto r = node.AddSamples(sample);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  EXPECT_EQ(node.buffered(), 0u);
  EXPECT_EQ(node.transmissions(), 1u);
  EXPECT_EQ((*r)->num_signals, 2u);
  EXPECT_EQ((*r)->chunk_len, 64u);
}

TEST(SensorNode, RejectsWrongSampleWidth) {
  SensorNode node(1, 3, 16, NodeOptions());
  std::vector<double> sample(2);
  EXPECT_FALSE(node.AddSamples(sample).ok());
}

TEST(SensorNode, MultipleBatchesReuseBuffer) {
  SensorNode node(1, 1, 32, NodeOptions());
  Rng rng(2);
  size_t emitted = 0;
  for (size_t i = 0; i < 100; ++i) {
    std::vector<double> sample{rng.Uniform(0, 1)};
    auto r = node.AddSamples(sample);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) ++emitted;
  }
  EXPECT_EQ(emitted, 3u);  // 100 / 32
  EXPECT_EQ(node.buffered(), 4u);
}

// -------------------------------------------------------------- Topology

TEST(Topology, ShapesAreWellFormed) {
  {
    Topology t = Topology::Build({TopologyShape::kChain, 5, 1});
    EXPECT_EQ(t.parent(0), Topology::kBase);
    for (size_t i = 1; i < 5; ++i) EXPECT_EQ(t.parent(i), i - 1);
    EXPECT_EQ(t.depth(0), 1u);
    EXPECT_EQ(t.depth(4), 5u);
    EXPECT_EQ(t.max_depth(), 5u);
    EXPECT_TRUE(t.is_relay(0));
    EXPECT_FALSE(t.is_relay(4));
  }
  {
    Topology t = Topology::Build({TopologyShape::kBinary, 7, 1});
    for (size_t i = 1; i < 7; ++i) EXPECT_EQ(t.parent(i), (i - 1) / 2);
    EXPECT_EQ(t.max_depth(), 3u);
    EXPECT_EQ(t.children(0).size(), 2u);
  }
  {
    Topology t = Topology::Build({TopologyShape::kStar, 4, 1});
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(t.parent(i), Topology::kBase);
      EXPECT_EQ(t.depth(i), 1u);
      EXPECT_FALSE(t.is_relay(i));
    }
    EXPECT_TRUE(t.Relays().empty());
    EXPECT_EQ(t.max_depth(), 1u);
  }
}

TEST(Topology, RandomTreesAreSeedDeterministic) {
  TopologyOptions o;
  o.shape = TopologyShape::kRandom;
  o.num_nodes = 32;
  o.seed = 9;
  const Topology a = Topology::Build(o);
  const Topology b = Topology::Build(o);
  for (size_t i = 0; i < o.num_nodes; ++i) {
    EXPECT_EQ(a.parent(i), b.parent(i)) << "node " << i;
    // Every parent precedes its child (or is the base): the forward-pass
    // construction and the uplink paths rely on it.
    EXPECT_TRUE(a.parent(i) == Topology::kBase || a.parent(i) < i)
        << "node " << i;
  }
  o.seed = 10;
  const Topology c = Topology::Build(o);
  bool differs = false;
  for (size_t i = 0; i < o.num_nodes && !differs; ++i) {
    differs = a.parent(i) != c.parent(i);
  }
  EXPECT_TRUE(differs) << "seed change did not move any edge";
}

TEST(Topology, PathsRelaysAndDescendantsAgree) {
  const Topology t = Topology::Build({TopologyShape::kBinary, 7, 1});
  const std::vector<size_t>& path = t.path(6);  // 6 -> 2 -> 0 -> base
  ASSERT_EQ(path.size(), t.depth(6));
  EXPECT_EQ(path[0], 6u);
  EXPECT_EQ(path[1], 2u);
  EXPECT_EQ(path[2], 0u);
  EXPECT_TRUE(t.IsAncestor(0, 6));
  EXPECT_TRUE(t.IsAncestor(2, 6));
  EXPECT_FALSE(t.IsAncestor(1, 6));
  EXPECT_FALSE(t.IsAncestor(6, 6));
  EXPECT_EQ(t.Relays(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(t.Descendants(2), (std::vector<size_t>{5, 6}));
  EXPECT_EQ(t.Descendants(0).size(), 6u);
  EXPECT_TRUE(t.Descendants(3).empty());
}

TEST(Topology, SingleNodeForestIsWellFormed) {
  // Every shape degenerates to the same one-node forest: the node is
  // base-adjacent, relays nothing and has a one-element uplink path.
  for (TopologyShape shape :
       {TopologyShape::kStar, TopologyShape::kChain, TopologyShape::kBinary,
        TopologyShape::kRandom}) {
    const Topology t = Topology::Build({shape, 1, 3});
    ASSERT_EQ(t.num_nodes(), 1u) << ToString(shape);
    EXPECT_EQ(t.parent(0), Topology::kBase) << ToString(shape);
    EXPECT_EQ(t.depth(0), 1u) << ToString(shape);
    EXPECT_EQ(t.max_depth(), 1u) << ToString(shape);
    EXPECT_FALSE(t.is_relay(0)) << ToString(shape);
    EXPECT_TRUE(t.Relays().empty()) << ToString(shape);
    EXPECT_TRUE(t.Descendants(0).empty()) << ToString(shape);
    EXPECT_FALSE(t.IsAncestor(0, 0)) << ToString(shape);
    ASSERT_EQ(t.path(0).size(), 1u) << ToString(shape);
    EXPECT_EQ(t.path(0)[0], 0u) << ToString(shape);
  }
}

TEST(Topology, AncestryAndDescendantsAtLeavesAndRoot) {
  // Chain of 4: 3 -> 2 -> 1 -> 0 -> base. The root (node 0) is an ancestor
  // of everything below it and a descendant of nothing; the deepest leaf
  // (node 3) is the reverse. IsAncestor is strict: no node is its own
  // ancestor, and it is direction-sensitive.
  const Topology t = Topology::Build({TopologyShape::kChain, 4, 1});
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(t.IsAncestor(0, i)) << "node " << i;
    EXPECT_FALSE(t.IsAncestor(i, 0)) << "node " << i;
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_FALSE(t.IsAncestor(i, i));
  EXPECT_TRUE(t.Descendants(3).empty());
  EXPECT_EQ(t.Descendants(0), (std::vector<size_t>{1, 2, 3}));
  EXPECT_FALSE(t.is_relay(3));
  EXPECT_TRUE(t.is_relay(0));

  // Binary tree leaves: no descendants, every path node above them is a
  // strict ancestor.
  const Topology b = Topology::Build({TopologyShape::kBinary, 7, 1});
  for (size_t leaf : {3u, 4u, 5u, 6u}) {
    EXPECT_TRUE(b.Descendants(leaf).empty()) << "leaf " << leaf;
    const std::vector<size_t>& path = b.path(leaf);
    for (size_t h = 1; h < path.size(); ++h) {
      EXPECT_TRUE(b.IsAncestor(path[h], leaf))
          << "leaf " << leaf << " hop " << h;
    }
  }
}

TEST(Topology, RandomTreeStableAcrossRepeatedConstruction) {
  // Build the same random tree many times: every derived structure (paths,
  // children, descendants, relay set), not just the parent array, must come
  // out identical — reproducing a chaos seed depends on it.
  TopologyOptions o;
  o.shape = TopologyShape::kRandom;
  o.num_nodes = 24;
  o.seed = 77;
  const Topology first = Topology::Build(o);
  for (int rebuild = 0; rebuild < 3; ++rebuild) {
    const Topology again = Topology::Build(o);
    ASSERT_EQ(again.num_nodes(), first.num_nodes());
    EXPECT_EQ(again.max_depth(), first.max_depth());
    EXPECT_EQ(again.Relays(), first.Relays());
    for (size_t i = 0; i < o.num_nodes; ++i) {
      EXPECT_EQ(again.parent(i), first.parent(i)) << "node " << i;
      EXPECT_EQ(again.depth(i), first.depth(i)) << "node " << i;
      EXPECT_EQ(again.path(i), first.path(i)) << "node " << i;
      EXPECT_EQ(again.children(i), first.children(i)) << "node " << i;
      EXPECT_EQ(again.Descendants(i), first.Descendants(i)) << "node " << i;
    }
  }
}

TEST(Topology, ShapeNamesRoundTrip) {
  for (TopologyShape shape :
       {TopologyShape::kStar, TopologyShape::kChain, TopologyShape::kBinary,
        TopologyShape::kRandom}) {
    auto parsed = ParseTopologyShape(ToString(shape));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, shape);
  }
  EXPECT_FALSE(ParseTopologyShape("ring").ok());
}

// ----------------------------------------------------------- BaseStation

TEST(BaseStation, TracksSensorsSeparately) {
  BaseStation station(64);
  SensorNode a(1, 1, 32, NodeOptions());
  SensorNode b(2, 1, 32, NodeOptions());
  Rng rng(3);
  for (size_t i = 0; i < 64; ++i) {
    std::vector<double> sa{std::sin(i * 0.3)};
    std::vector<double> sb{rng.Uniform(0, 10)};
    auto ra = a.AddSamples(sa);
    auto rb = b.AddSamples(sb);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    if (ra->has_value()) {
      ASSERT_TRUE(station.Receive(1, **ra).ok());
    }
    if (rb->has_value()) {
      ASSERT_TRUE(station.Receive(2, **rb).ok());
    }
  }
  EXPECT_EQ(station.num_sensors(), 2u);
  EXPECT_TRUE(station.HasSensor(1));
  EXPECT_FALSE(station.HasSensor(3));
  auto h1 = station.History(1);
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ((*h1)->num_chunks(), 2u);
  EXPECT_FALSE(station.History(99).ok());
  auto log = station.Log(2);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->size(), 2u);
}

TEST(BaseStation, ReceiveBytesDecodesWire) {
  BaseStation station(64);
  SensorNode node(5, 1, 32, NodeOptions());
  Rng rng(4);
  for (size_t i = 0; i < 32; ++i) {
    std::vector<double> s{rng.Uniform(0, 1)};
    auto r = node.AddSamples(s);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      core::Frame frame = node.MakeDataFrame(**r);
      BinaryWriter w;
      frame.Serialize(&w);
      auto ack = station.ReceiveBytes(w.buffer());
      ASSERT_TRUE(ack.ok());
      EXPECT_EQ(ack->type, AckType::kAccept);
      EXPECT_EQ(ack->sensor_id, 5u);
    }
  }
  EXPECT_TRUE(station.HasSensor(5));
  EXPECT_EQ(station.stats(5).frames_accepted, 1u);

  // Garbage on the wire is a protocol event, not an internal error: the
  // station answers with a clean corrupt NACK and creates no sensor state.
  std::vector<uint8_t> junk{1, 2, 3};
  auto nack = station.ReceiveBytes(junk);
  ASSERT_TRUE(nack.ok());
  EXPECT_EQ(nack->type, AckType::kCorrupt);
  EXPECT_EQ(station.total_stats().corrupt_frames, 1u);
  EXPECT_FALSE(station.HasSensor(6));
}

// ------------------------------------------------------------ NetworkSim

TEST(NetworkSim, EndToEndRunProducesConsistentReport) {
  datagen::WeatherOptions wopts;
  wopts.length = 512;
  std::vector<datagen::Dataset> feeds;
  std::vector<NodePlacement> placements;
  for (uint32_t id = 0; id < 3; ++id) {
    wopts.seed = 100 + id;
    feeds.push_back(datagen::GenerateWeather(wopts));
    placements.push_back({id, id + 1});  // 1, 2, 3 hops
  }
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  NetworkSim sim(placements, opts, /*chunk_len=*/256);
  auto report = sim.Run(feeds);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->nodes.size(), 3u);
  size_t sum_sent = 0;
  double sum_energy = 0;
  for (const auto& nr : report->nodes) {
    EXPECT_EQ(nr.transmissions, 2u);  // 512 / 256
    EXPECT_LE(nr.values_sent, 2 * opts.total_band);
    EXPECT_GT(nr.values_sent, 0u);
    EXPECT_EQ(nr.values_raw, 2u * 6 * 256);
    EXPECT_GT(nr.energy.total_nj(), 0.0);
    EXPECT_GT(nr.raw_energy_nj, nr.energy.total_nj());
    sum_sent += nr.values_sent;
    sum_energy += nr.energy.total_nj();
  }
  EXPECT_EQ(report->total_values_sent, sum_sent);
  EXPECT_NEAR(report->total_energy_nj, sum_energy, 1e-6);
  EXPECT_GT(report->CompressionFactor(), 1.0);
  EXPECT_GT(report->EnergySavingFactor(), 1.0);

  // Deeper nodes spend proportionally more energy for the same data.
  EXPECT_GT(report->nodes[2].energy.total_nj(),
            1.5 * report->nodes[0].energy.total_nj());

  // The station holds a queryable history for each node.
  for (uint32_t id = 0; id < 3; ++id) {
    auto h = sim.base_station().History(id);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ((*h)->history_len(), 512u);
  }
}

TEST(NetworkSim, FeedCountMustMatchPlacements) {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  NetworkSim sim({{0, 1}}, opts, 64);
  EXPECT_FALSE(sim.Run({}).ok());
}

TEST(NetworkSim, ReconstructionErrorIsBounded) {
  datagen::WeatherOptions wopts;
  wopts.length = 1024;
  wopts.seed = 42;
  std::vector<datagen::Dataset> feeds{datagen::GenerateWeather(wopts)};
  core::EncoderOptions opts;
  opts.total_band = 1228;  // ~20% of 6 * 1024
  opts.m_base = 512;
  NetworkSim sim({{0, 1}}, opts, 1024);
  auto report = sim.Run(feeds);
  ASSERT_TRUE(report.ok());
  // Error must be small relative to raw signal energy.
  double energy = 0;
  for (size_t s = 0; s < 6; ++s) {
    for (double v : feeds[0].Signal(s)) energy += v * v;
  }
  EXPECT_LT(report->total_sse, 0.05 * energy);
}

TEST(NetworkSim, LossyLinksCostRetransmissionEnergy) {
  datagen::WeatherOptions wopts;
  wopts.length = 512;
  wopts.seed = 3;
  std::vector<datagen::Dataset> feeds{datagen::GenerateWeather(wopts)};
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;

  NetworkSim clean({{0, 2}}, opts, 256);
  auto clean_report = clean.Run(feeds);
  ASSERT_TRUE(clean_report.ok());
  EXPECT_EQ(clean_report->nodes[0].retransmissions, 0u);

  LinkOptions lossy;
  lossy.loss_probability = 0.4;
  NetworkSim noisy({{0, 2}}, opts, 256, EnergyParams(), lossy);
  auto noisy_report = noisy.Run(feeds);
  ASSERT_TRUE(noisy_report.ok());
  EXPECT_GT(noisy_report->nodes[0].retransmissions, 0u);
  EXPECT_GT(noisy_report->nodes[0].backoff_slots, 0u);
  EXPECT_GT(noisy_report->nodes[0].energy.backoff_nj, 0.0);
  EXPECT_GT(noisy_report->nodes[0].energy.total_nj(),
            clean_report->nodes[0].energy.total_nj());
  // Data still arrives intact: identical reconstruction error.
  EXPECT_EQ(noisy_report->nodes[0].chunks_lost, 0u);
  EXPECT_DOUBLE_EQ(noisy_report->nodes[0].sse, clean_report->nodes[0].sse);
}

TEST(NetworkSim, UndeliverableLinkDegradesToExplicitLoss) {
  // A fully dead link no longer aborts the run: every chunk is abandoned
  // after bounded retries and recorded as an explicit loss.
  datagen::WeatherOptions wopts;
  wopts.length = 256;
  std::vector<datagen::Dataset> feeds{datagen::GenerateWeather(wopts)};
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions dead;
  dead.loss_probability = 1.0;
  dead.max_attempts = 4;
  NetworkSim sim({{0, 1}}, opts, 256, EnergyParams(), dead);
  auto report = sim.Run(feeds);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->nodes[0].transmissions, 1u);
  EXPECT_EQ(report->nodes[0].chunks_lost, 1u);
  EXPECT_EQ(report->total_chunks_lost, 1u);
  EXPECT_GT(report->nodes[0].frames_abandoned, 0u);
  EXPECT_GT(report->nodes[0].retransmissions, 0u);
  // Nothing ever reached the station.
  EXPECT_FALSE(sim.base_station().HasSensor(0));
  EXPECT_DOUBLE_EQ(report->total_sse, 0.0);
}

// ------------------------------------------------- NetworkSim + Topology

std::vector<datagen::Dataset> TreeFeeds(size_t n, uint64_t seed_base,
                                        size_t length = 512) {
  datagen::WeatherOptions wopts;
  wopts.length = length;
  std::vector<datagen::Dataset> feeds;
  for (size_t i = 0; i < n; ++i) {
    wopts.seed = seed_base + i;
    feeds.push_back(datagen::GenerateWeather(wopts));
  }
  return feeds;
}

// The golden-compat pin of the refactor: a depth-1 star topology must
// reproduce the legacy flat constructor's report bit for bit — same fault
// draws, same energy, same reconstruction.
TEST(NetworkSim, StarTopologyMatchesLegacyReportBitwise) {
  const auto feeds = TreeFeeds(3, 500);
  std::vector<NodePlacement> placements;
  for (uint32_t id = 0; id < 3; ++id) placements.push_back({id, 1});
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions link;
  link.loss_probability = 0.1;
  link.duplicate_probability = 0.05;
  link.reorder_probability = 0.05;
  link.bit_flip_probability = 0.02;

  NetworkSim legacy(placements, opts, 256, EnergyParams(), link);
  auto a = legacy.Run(feeds);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  Topology star = Topology::Build({TopologyShape::kStar, 3, 1});
  NetworkSim tree(std::move(star), placements, opts, 256, EnergyParams(),
                  link);
  auto b = tree.Run(feeds);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->nodes.size(), b->nodes.size());
  for (size_t i = 0; i < a->nodes.size(); ++i) {
    const NodeReport& x = a->nodes[i];
    const NodeReport& y = b->nodes[i];
    EXPECT_EQ(x.values_sent, y.values_sent) << "node " << i;
    EXPECT_EQ(x.retransmissions, y.retransmissions) << "node " << i;
    EXPECT_EQ(x.backoff_slots, y.backoff_slots) << "node " << i;
    EXPECT_EQ(x.chunks_lost, y.chunks_lost) << "node " << i;
    EXPECT_EQ(x.charged_values, y.charged_values) << "node " << i;
    EXPECT_EQ(y.forwarded_copies, 0u) << "a star has no relays";
    EXPECT_EQ(x.energy.total_nj(), y.energy.total_nj()) << "node " << i;
    EXPECT_EQ(x.raw_energy_nj, y.raw_energy_nj) << "node " << i;
    EXPECT_EQ(x.sse, y.sse) << "node " << i;
  }
  EXPECT_EQ(a->total_energy_nj, b->total_energy_nj);
  EXPECT_EQ(a->total_sse, b->total_sse);
  EXPECT_EQ(a->total_chunks_lost, b->total_chunks_lost);
}

// The query-service determinism guarantee (DESIGN.md §5j): mid-round
// probe queries are read-only and draw no RNG, so enabling the service
// must leave the SimulationReport bitwise identical — same fields the
// legacy-star pin compares — and the service must actually have served
// the probed sensors.
TEST(NetworkSim, QueryServiceProbesDoNotPerturbReport) {
  const auto feeds = TreeFeeds(3, 500);
  std::vector<NodePlacement> placements;
  for (uint32_t id = 0; id < 3; ++id) placements.push_back({id, 1});
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions link;
  link.loss_probability = 0.1;
  link.bit_flip_probability = 0.02;

  NetworkSim plain(placements, opts, 256, EnergyParams(), link);
  auto a = plain.Run(feeds);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  NetworkSim probed(placements, opts, 256, EnergyParams(), link);
  probed.EnableQueryService(/*probe_every_chunks=*/2);
  auto b = probed.Run(feeds);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_EQ(a->nodes.size(), b->nodes.size());
  for (size_t i = 0; i < a->nodes.size(); ++i) {
    const NodeReport& x = a->nodes[i];
    const NodeReport& y = b->nodes[i];
    EXPECT_EQ(x.values_sent, y.values_sent) << "node " << i;
    EXPECT_EQ(x.retransmissions, y.retransmissions) << "node " << i;
    EXPECT_EQ(x.backoff_slots, y.backoff_slots) << "node " << i;
    EXPECT_EQ(x.chunks_lost, y.chunks_lost) << "node " << i;
    EXPECT_EQ(x.charged_values, y.charged_values) << "node " << i;
    EXPECT_EQ(x.energy.total_nj(), y.energy.total_nj()) << "node " << i;
    EXPECT_EQ(x.sse, y.sse) << "node " << i;
  }
  EXPECT_EQ(a->total_energy_nj, b->total_energy_nj);
  EXPECT_EQ(a->total_sse, b->total_sse);
  EXPECT_EQ(a->total_chunks_lost, b->total_chunks_lost);

  const storage::QueryService* service = probed.query_service();
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->num_sensors(), placements.size());
  const storage::QueryServiceCounters c = service->counters();
  EXPECT_GT(c.publishes, 0u);
  EXPECT_GT(c.queries, 0u);
}

// The tentpole behavior: on a chain, every copy a relay forwards is
// charged to the relay's account, and each node's account reconciles
// *exactly* against the closed form (the default EnergyParams are
// integer-valued, so no tolerance is needed) — the paired-report pin
// shared with ChaosSim's I9.
TEST(NetworkSim, RelaysPayForForwardedTrafficExactly) {
  // Identical feeds so the per-node traffic is comparable by construction.
  const auto one = TreeFeeds(1, 700);
  const std::vector<datagen::Dataset> same{one[0], one[0], one[0]};
  std::vector<NodePlacement> placements;
  for (uint32_t id = 0; id < 3; ++id) placements.push_back({id, 1});
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions link;
  link.loss_probability = 0.15;
  link.bit_flip_probability = 0.03;

  Topology chain = Topology::Build({TopologyShape::kChain, 3, 1});
  NetworkSim sim(std::move(chain), placements, opts, 256, EnergyParams(),
                 link);
  auto report = sim.Run(same);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EnergyModel model;
  for (const NodeReport& nr : report->nodes) {
    EnergyAccount expect;
    model.ChargeTransmission(nr.charged_values, 1, &expect);
    model.ChargeBackoff(nr.backoff_slots, &expect);
    EXPECT_EQ(nr.energy.total_nj(), expect.total_nj())
        << "node " << nr.id << ": account diverges from the closed form";
  }
  // Nodes 0 and 1 relay for their subtrees; the leaf forwards nothing.
  EXPECT_GT(report->nodes[0].forwarded_copies, 0u);
  EXPECT_GT(report->nodes[1].forwarded_copies, 0u);
  EXPECT_EQ(report->nodes[2].forwarded_copies, 0u);
  // With identical feeds, the base-adjacent relay carries everyone's
  // traffic and must outspend the leaf.
  EXPECT_GT(report->nodes[0].energy.total_nj(),
            report->nodes[2].energy.total_nj());
  // The raw-feed counterfactual scales with tree depth: the leaf is three
  // hops out, the root one.
  EXPECT_DOUBLE_EQ(report->nodes[2].raw_energy_nj,
                   3.0 * report->nodes[0].raw_energy_nj);
}

// Regression: EnergySavingFactor() returned 0.0 ("no saving") for a run
// that spent nothing; the documented sentinel is NaN, and PublishMetrics
// must survive rounding it.
TEST(SimulationReport, EnergySavingFactorIsNaNWhenNothingSpent) {
  SimulationReport empty;
  EXPECT_TRUE(std::isnan(empty.EnergySavingFactor()));
  SimulationReport spent;
  spent.total_energy_nj = 2.0;
  spent.total_raw_energy_nj = 5.0;
  EXPECT_DOUBLE_EQ(spent.EnergySavingFactor(), 2.5);
  // A zero-length feed produces a real zero-spend report end to end.
  datagen::WeatherOptions wopts;
  wopts.length = 0;
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  NetworkSim sim({{0, 1}}, opts, 64);
  auto report = sim.Run({datagen::GenerateWeather(wopts)});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->total_energy_nj, 0.0);
  EXPECT_TRUE(std::isnan(report->EnergySavingFactor()));
}

// The energy-aware retry budget sheds retransmissions before sensing: a
// draining node keeps encoding and attempting first deliveries but stops
// paying for retries.
TEST(NetworkSim, EnergyBudgetShedsRetriesBeforeSensing) {
  const auto feeds = TreeFeeds(1, 3);
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions lossy;
  lossy.loss_probability = 0.4;

  NetworkSim unbounded({{0, 2}}, opts, 256, EnergyParams(), lossy);
  auto base = unbounded.Run(feeds);
  ASSERT_TRUE(base.ok());
  ASSERT_GT(base->nodes[0].retransmissions, 0u);
  EXPECT_EQ(base->nodes[0].retries_shed, 0u);

  LinkOptions budgeted = lossy;
  budgeted.node_energy_budget_nj = 6.0e7;
  budgeted.retry_energy_fraction = 0.5;
  NetworkSim draining({{0, 2}}, opts, 256, EnergyParams(), budgeted);
  auto shed = draining.Run(feeds);
  ASSERT_TRUE(shed.ok());
  EXPECT_GT(shed->nodes[0].retries_shed, 0u);
  // Sensing and encoding continue: same chunks encoded either way.
  EXPECT_EQ(shed->nodes[0].transmissions, base->nodes[0].transmissions);
  EXPECT_LE(shed->nodes[0].retransmissions,
            base->nodes[0].retransmissions);
  EXPECT_LT(shed->nodes[0].energy.total_nj(),
            base->nodes[0].energy.total_nj());
}

}  // namespace
}  // namespace sbr::net
