// Cross-module integration tests: miniature versions of the paper's
// experiments wired end-to-end through the real datasets, the full
// compressor set and the sensor/base-station pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "compress/dct_compressor.h"
#include "compress/histogram.h"
#include "compress/linear_model.h"
#include "compress/sbr_compressor.h"
#include "compress/wavelet.h"
#include "datagen/dataset.h"
#include "datagen/phonecall.h"
#include "datagen/weather.h"
#include "net/base_station.h"
#include "net/node.h"
#include "util/stats.h"

namespace sbr {
namespace {

// Runs `chunks` transmissions of `setup` through a compressor and returns
// the summed SSE.
double TotalSse(compress::ChunkCompressor& c, const datagen::Dataset& ds,
                size_t chunk_len, size_t budget, size_t num_chunks) {
  double total = 0;
  for (size_t i = 0; i < num_chunks; ++i) {
    const auto chunk = ds.Chunk(i, chunk_len);
    const auto y = datagen::ConcatRows(chunk);
    auto rec = c.CompressAndReconstruct(y, ds.num_signals(), budget);
    EXPECT_TRUE(rec.ok()) << c.Name() << ": " << rec.status().ToString();
    total += SumSquaredError(y, *rec);
  }
  return total;
}

TEST(Integration, MiniPaperComparisonOnWeather) {
  // A scaled-down Table 2: SBR must beat DCT and histograms on weather
  // data at a 15% ratio, and be competitive with (here: beat) wavelets.
  datagen::WeatherOptions wopts;
  wopts.length = 4096;  // 4 chunks of 1024
  wopts.seed = 2002;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const size_t chunk_len = 1024;
  const size_t n = ds.num_signals() * chunk_len;
  const size_t budget = n * 15 / 100;

  core::EncoderOptions sbr_opts;
  sbr_opts.total_band = budget;
  sbr_opts.m_base = 512;
  compress::SbrCompressor sbr(sbr_opts);
  compress::WaveletCompressor wavelet;
  compress::DctCompressor dct;
  compress::HistogramCompressor hist(compress::HistogramKind::kEquiDepth);

  const double e_sbr = TotalSse(sbr, ds, chunk_len, budget, 4);
  const double e_wav = TotalSse(wavelet, ds, chunk_len, budget, 4);
  const double e_dct = TotalSse(dct, ds, chunk_len, budget, 4);
  const double e_hist = TotalSse(hist, ds, chunk_len, budget, 4);

  EXPECT_LT(e_sbr, e_wav) << "sbr=" << e_sbr << " wavelet=" << e_wav;
  EXPECT_LT(e_sbr, e_dct);
  EXPECT_LT(e_sbr, e_hist);
}

TEST(Integration, SbrBeatsLinearRegressionOnPhoneData) {
  datagen::PhoneCallOptions popts;
  popts.length = 4320;  // 3 days
  const datagen::Dataset full = datagen::GeneratePhoneCalls(popts);
  const datagen::Dataset ds = full.SelectSignals({0, 1, 4, 12}, "phone4");
  const size_t chunk_len = 1440;
  const size_t n = ds.num_signals() * chunk_len;
  const size_t budget = n / 10;

  core::EncoderOptions sbr_opts;
  sbr_opts.total_band = budget;
  sbr_opts.m_base = 512;
  compress::SbrCompressor sbr(sbr_opts);
  compress::LinearModelCompressor lin;

  const double e_sbr = TotalSse(sbr, ds, chunk_len, budget, 3);
  const double e_lin = TotalSse(lin, ds, chunk_len, budget, 3);
  EXPECT_LT(e_sbr, e_lin);
}

TEST(Integration, RelativeErrorMetricImprovesRelativeScore) {
  // Encoding under the relative metric must produce a better relative
  // error than encoding under plain SSE (on data with mixed magnitudes).
  datagen::PhoneCallOptions popts;
  popts.length = 2880;
  const datagen::Dataset full = datagen::GeneratePhoneCalls(popts);
  const datagen::Dataset ds = full.SelectSignals({1, 3}, "mixed_mag");
  const size_t chunk_len = 1440;
  const size_t budget = 2 * 1440 / 10;

  auto run = [&](core::ErrorMetric metric) {
    core::EncoderOptions opts;
    opts.total_band = budget;
    opts.m_base = 256;
    opts.metric = metric;
    compress::SbrCompressor sbr(opts);
    double rel = 0;
    for (size_t c = 0; c < 2; ++c) {
      const auto y = datagen::ConcatRows(ds.Chunk(c, chunk_len));
      auto rec = sbr.CompressAndReconstruct(y, 2, budget);
      EXPECT_TRUE(rec.ok());
      rel += SumSquaredRelativeError(y, *rec);
    }
    return rel;
  };
  const double rel_under_sse = run(core::ErrorMetric::kSse);
  const double rel_under_rel = run(core::ErrorMetric::kSseRelative);
  EXPECT_LT(rel_under_rel, rel_under_sse);
}

TEST(Integration, SensorToStationPipelineWithWire) {
  // Full path: samples -> node batches -> serialized transmission ->
  // station log + history -> range query ~ truth.
  datagen::WeatherOptions wopts;
  wopts.length = 768;
  wopts.seed = 7;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);

  core::EncoderOptions opts;
  opts.total_band = 400;
  opts.m_base = 256;
  net::SensorNode node(42, ds.num_signals(), 256, opts);
  net::BaseStation station(opts.m_base);

  std::vector<double> sample(ds.num_signals());
  for (size_t t = 0; t < ds.length(); ++t) {
    for (size_t s = 0; s < ds.num_signals(); ++s) {
      sample[s] = ds.values(s, t);
    }
    auto r = node.AddSamples(sample);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      core::Frame frame = node.MakeDataFrame(**r);
      BinaryWriter w;
      frame.Serialize(&w);
      auto ack = station.ReceiveBytes(w.buffer());
      ASSERT_TRUE(ack.ok());
      ASSERT_EQ(ack->type, net::AckType::kAccept);
    }
  }
  auto history = station.History(42);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)->history_len(), 768u);

  // Air temperature reconstruction error small vs its variance.
  auto approx = (*history)->QueryRange(0, 0, 768);
  ASSERT_TRUE(approx.ok());
  std::vector<double> truth(768);
  for (size_t t = 0; t < 768; ++t) truth[t] = ds.values(0, t);
  const double err = SumSquaredError(truth, *approx);
  const double var = Variance(truth) * 768;
  EXPECT_LT(err, 0.25 * var);

  // The log replays to the same answer.
  auto log = station.Log(42);
  ASSERT_TRUE(log.ok());
  auto replayed = storage::HistoryStore::FromLog(**log, opts.m_base);
  ASSERT_TRUE(replayed.ok());
  auto again = replayed->QueryRange(0, 0, 768);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*approx, *again);
}

TEST(Integration, WarmBaseSignalBeatsColdStart) {
  // The paper's warm-up claim: a sensor whose base signal is already
  // populated approximates a chunk at least as well as a cold sensor that
  // must spend bandwidth building its base from scratch on that chunk.
  datagen::WeatherOptions wopts;
  wopts.length = 6 * 512;
  wopts.seed = 11;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  core::EncoderOptions opts;
  opts.total_band = 460;  // ~15% of 3072
  opts.m_base = 512;
  compress::SbrCompressor warm(opts);

  double warm_err = 0, cold_err = 0;
  for (size_t c = 0; c < 6; ++c) {
    const auto y = datagen::ConcatRows(ds.Chunk(c, 512));
    auto rec = warm.CompressAndReconstruct(y, ds.num_signals(),
                                           opts.total_band);
    ASSERT_TRUE(rec.ok());
    if (c == 0) continue;  // chunk 0 warms the base; not scored
    warm_err += SumSquaredError(y, *rec);

    // A cold encoder sees this chunk as its very first transmission.
    compress::SbrCompressor cold(opts);
    auto cold_rec = cold.CompressAndReconstruct(y, ds.num_signals(),
                                                opts.total_band);
    ASSERT_TRUE(cold_rec.ok());
    cold_err += SumSquaredError(y, *cold_rec);
  }
  EXPECT_LT(warm_err, cold_err * 1.05);
}

TEST(Integration, EveryCompressorHonorsTheSharedBudget) {
  datagen::WeatherOptions wopts;
  wopts.length = 512;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const auto y = datagen::ConcatRows(ds.Chunk(0, 512));
  const size_t budget = y.size() / 5;

  core::EncoderOptions sbr_opts;
  sbr_opts.total_band = budget;
  sbr_opts.m_base = 512;

  std::vector<std::unique_ptr<compress::ChunkCompressor>> all;
  all.push_back(std::make_unique<compress::SbrCompressor>(sbr_opts));
  all.push_back(std::make_unique<compress::WaveletCompressor>());
  all.push_back(std::make_unique<compress::DctCompressor>());
  all.push_back(std::make_unique<compress::HistogramCompressor>());
  all.push_back(std::make_unique<compress::LinearModelCompressor>());
  for (auto& c : all) {
    auto rec = c->CompressAndReconstruct(y, ds.num_signals(), budget);
    ASSERT_TRUE(rec.ok()) << c->Name();
    EXPECT_EQ(rec->size(), y.size()) << c->Name();
    double finite = 0;
    for (double v : *rec) finite += std::isfinite(v) ? 0 : 1;
    EXPECT_EQ(finite, 0) << c->Name();
  }
}

}  // namespace
}  // namespace sbr
