// Unit tests for the regression kernels under all three error metrics,
// including optimality cross-checks against brute-force alternatives.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/regression.h"
#include "util/rng.h"

namespace sbr::core {
namespace {

std::vector<double> Line(std::span<const double> x, double a, double b) {
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = a * x[i] + b;
  return y;
}

// ---------------------------------------------------------------- FitSse

TEST(FitSse, RecoversExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  const auto y = Line(x, 2.5, -1.0);
  const RegressionResult r = FitSse(x, y);
  EXPECT_NEAR(r.a, 2.5, 1e-12);
  EXPECT_NEAR(r.b, -1.0, 1e-12);
  EXPECT_NEAR(r.err, 0.0, 1e-12);
}

TEST(FitSse, MatchesDirectResidualComputation) {
  Rng rng(1);
  std::vector<double> x(100), y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Uniform(-10, 10);
    y[i] = 3.0 * x[i] + 2.0 + rng.Gaussian(0, 1);
  }
  const RegressionResult r = FitSse(x, y);
  EXPECT_NEAR(r.err, EvaluateLine(ErrorMetric::kSse, x, y, r.a, r.b, 1.0),
              1e-6);
}

TEST(FitSse, IsOptimalAgainstPerturbations) {
  Rng rng(2);
  std::vector<double> x(50), y(50);
  for (size_t i = 0; i < 50; ++i) {
    x[i] = rng.Uniform(0, 5);
    y[i] = -1.5 * x[i] + rng.Gaussian(0, 2);
  }
  const RegressionResult r = FitSse(x, y);
  for (double da : {-0.01, 0.01}) {
    for (double db : {-0.01, 0.01}) {
      const double perturbed =
          EvaluateLine(ErrorMetric::kSse, x, y, r.a + da, r.b + db, 1.0);
      EXPECT_GE(perturbed, r.err - 1e-9);
    }
  }
}

TEST(FitSse, DegenerateConstantXFallsBackToMean) {
  std::vector<double> x{3, 3, 3, 3};
  std::vector<double> y{1, 2, 3, 4};
  const RegressionResult r = FitSse(x, y);
  EXPECT_DOUBLE_EQ(r.a, 0.0);
  EXPECT_DOUBLE_EQ(r.b, 2.5);
  EXPECT_NEAR(r.err, 5.0, 1e-12);  // sum (y - 2.5)^2 = 2.25+0.25+0.25+2.25
}

TEST(FitSse, EmptyAndSingleton) {
  const RegressionResult empty = FitSse({}, {});
  EXPECT_DOUBLE_EQ(empty.err, 0.0);
  std::vector<double> x{2}, y{7};
  const RegressionResult single = FitSse(x, y);
  EXPECT_NEAR(single.err, 0.0, 1e-12);
  EXPECT_NEAR(single.a * 2 + single.b, 7.0, 1e-12);
}

TEST(FitSse, ErrNeverNegative) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 20));
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-1e3, 1e3);
      y[i] = rng.Uniform(-1e3, 1e3);
    }
    EXPECT_GE(FitSse(x, y).err, 0.0);
  }
}

// -------------------------------------------------------- FitSseRelative

TEST(FitSseRelative, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  const auto y = Line(x, 10.0, 100.0);
  const RegressionResult r = FitSseRelative(x, y, 1.0);
  EXPECT_NEAR(r.a, 10.0, 1e-9);
  EXPECT_NEAR(r.b, 100.0, 1e-9);
  EXPECT_NEAR(r.err, 0.0, 1e-12);
}

TEST(FitSseRelative, MatchesEvaluateLine) {
  Rng rng(4);
  std::vector<double> x(80), y(80);
  for (size_t i = 0; i < 80; ++i) {
    x[i] = rng.Uniform(0, 10);
    y[i] = 50 + 5 * x[i] + rng.Gaussian(0, 3);
  }
  const RegressionResult r = FitSseRelative(x, y, 1.0);
  EXPECT_NEAR(r.err,
              EvaluateLine(ErrorMetric::kSseRelative, x, y, r.a, r.b, 1.0),
              1e-8);
}

TEST(FitSseRelative, OptimalAgainstPerturbations) {
  Rng rng(5);
  std::vector<double> x(60), y(60);
  for (size_t i = 0; i < 60; ++i) {
    x[i] = rng.Uniform(0, 10);
    y[i] = 20 + 2 * x[i] + rng.Gaussian(0, 5);
  }
  const RegressionResult r = FitSseRelative(x, y, 1.0);
  for (double da : {-0.02, 0.02}) {
    const double perturbed = EvaluateLine(ErrorMetric::kSseRelative, x, y,
                                          r.a + da, r.b, 1.0);
    EXPECT_GE(perturbed, r.err - 1e-9);
  }
}

TEST(FitSseRelative, WeightsFavorSmallMagnitudePoints) {
  // Two clusters: small |y| values near 1 and huge values near 1000. The
  // relative fit must track the small values much more closely than the
  // SSE fit does.
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{1.0, 1.1, 1000.0, 900.0};
  const RegressionResult rel = FitSseRelative(x, y, 0.1);
  const RegressionResult sse = FitSse(x, y);
  const double rel_resid_small = std::abs(y[0] - (rel.a * x[0] + rel.b));
  const double sse_resid_small = std::abs(y[0] - (sse.a * x[0] + sse.b));
  EXPECT_LT(rel_resid_small, sse_resid_small);
}

TEST(FitSseRelative, FloorGuardsZeroValues) {
  std::vector<double> x{0, 1, 2};
  std::vector<double> y{0.0, 0.0, 0.0};
  const RegressionResult r = FitSseRelative(x, y, 1.0);
  EXPECT_TRUE(std::isfinite(r.err));
  EXPECT_NEAR(r.err, 0.0, 1e-12);
}

// ------------------------------------------------------------- FitMaxAbs

TEST(FitMaxAbs, RecoversExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  const auto y = Line(x, -2.0, 3.0);
  const RegressionResult r = FitMaxAbs(x, y);
  EXPECT_NEAR(r.err, 0.0, 1e-9);
}

TEST(FitMaxAbs, KnownThreePointSolution) {
  // Points (0,0), (1,1), (2,0): the best line is y = 0.5 with max error
  // 0.5 (equioscillation at all three points).
  std::vector<double> x{0, 1, 2};
  std::vector<double> y{0, 1, 0};
  const RegressionResult r = FitMaxAbs(x, y);
  EXPECT_NEAR(r.err, 0.5, 1e-9);
  EXPECT_NEAR(r.a, 0.0, 1e-6);
  EXPECT_NEAR(r.b, 0.5, 1e-6);
}

TEST(FitMaxAbs, MatchesEvaluateLine) {
  Rng rng(6);
  std::vector<double> x(40), y(40);
  for (size_t i = 0; i < 40; ++i) {
    x[i] = rng.Uniform(-5, 5);
    y[i] = 2 * x[i] + rng.Uniform(-1, 1);
  }
  const RegressionResult r = FitMaxAbs(x, y);
  EXPECT_NEAR(r.err, EvaluateLine(ErrorMetric::kMaxAbs, x, y, r.a, r.b, 1.0),
              1e-9);
}

TEST(FitMaxAbs, NeverWorseThanSseLineAndOftenBetter) {
  Rng rng(7);
  int wins = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(30), y(30);
    for (size_t i = 0; i < 30; ++i) {
      x[i] = rng.Uniform(0, 10);
      y[i] = x[i] + (rng.NextDouble() < 0.1 ? rng.Uniform(-5, 5)
                                            : rng.Gaussian(0, 0.1));
    }
    const RegressionResult mm = FitMaxAbs(x, y);
    const RegressionResult sse = FitSse(x, y);
    const double sse_max =
        EvaluateLine(ErrorMetric::kMaxAbs, x, y, sse.a, sse.b, 1.0);
    EXPECT_LE(mm.err, sse_max + 1e-9);
    if (mm.err < sse_max - 1e-9) ++wins;
    ++total;
  }
  // On outlier-laden data the Chebyshev fit should usually be strictly
  // better, not merely equal.
  EXPECT_GT(wins, total / 2);
}

TEST(FitMaxAbs, NearOptimalAgainstSlopeGrid) {
  Rng rng(8);
  std::vector<double> x(25), y(25);
  for (size_t i = 0; i < 25; ++i) {
    x[i] = rng.Uniform(-3, 3);
    y[i] = -1.3 * x[i] + rng.Uniform(-2, 2);
  }
  const RegressionResult r = FitMaxAbs(x, y);
  // A dense slope grid around the solution must not find anything better.
  for (int k = -200; k <= 200; ++k) {
    const double a = r.a + k * 0.01;
    double lo = 1e300, hi = -1e300;
    for (size_t i = 0; i < x.size(); ++i) {
      const double resid = y[i] - a * x[i];
      lo = std::min(lo, resid);
      hi = std::max(hi, resid);
    }
    EXPECT_GE((hi - lo) / 2, r.err - 1e-9);
  }
}

TEST(FitMaxAbs, VerticalStackOfPoints) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{0, 4, 2};
  const RegressionResult r = FitMaxAbs(x, y);
  EXPECT_NEAR(r.err, 2.0, 1e-12);
  EXPECT_NEAR(r.a * 1 + r.b, 2.0, 1e-12);
}

TEST(FitMaxAbs, Singleton) {
  std::vector<double> x{5}, y{3};
  const RegressionResult r = FitMaxAbs(x, y);
  EXPECT_DOUBLE_EQ(r.err, 0.0);
  EXPECT_DOUBLE_EQ(r.b, 3.0);
}

// ----------------------------------------------------- FitTime / dispatch

TEST(FitTime, FitsRampExactly) {
  std::vector<double> y{1, 3, 5, 7, 9};  // y = 2 t + 1
  const RegressionResult r = FitTime(ErrorMetric::kSse, y, 1.0);
  EXPECT_NEAR(r.a, 2.0, 1e-12);
  EXPECT_NEAR(r.b, 1.0, 1e-12);
  EXPECT_NEAR(r.err, 0.0, 1e-12);
}

TEST(FitTime, AllMetricsFinite) {
  Rng rng(9);
  std::vector<double> y(64);
  for (auto& v : y) v = rng.Uniform(-100, 100);
  for (ErrorMetric m :
       {ErrorMetric::kSse, ErrorMetric::kSseRelative, ErrorMetric::kMaxAbs}) {
    const RegressionResult r = FitTime(m, y, 1.0);
    EXPECT_TRUE(std::isfinite(r.a));
    EXPECT_TRUE(std::isfinite(r.b));
    EXPECT_GE(r.err, 0.0);
  }
}

TEST(FitTime, LongThenShortRampStaysCorrect) {
  // Exercises the thread-local ramp cache growing and then serving a
  // shorter request.
  std::vector<double> long_y(500, 1.0);
  FitTime(ErrorMetric::kSse, long_y, 1.0);
  std::vector<double> y{0, 1, 2};
  const RegressionResult r = FitTime(ErrorMetric::kSse, y, 1.0);
  EXPECT_NEAR(r.a, 1.0, 1e-12);
  EXPECT_NEAR(r.b, 0.0, 1e-12);
}

TEST(Fit, DispatchMatchesDirectKernels) {
  Rng rng(10);
  std::vector<double> x(32), y(32);
  for (size_t i = 0; i < 32; ++i) {
    x[i] = rng.Uniform(0, 1);
    y[i] = rng.Uniform(0, 1);
  }
  EXPECT_DOUBLE_EQ(Fit(ErrorMetric::kSse, x, y, 1.0).err, FitSse(x, y).err);
  EXPECT_DOUBLE_EQ(Fit(ErrorMetric::kSseRelative, x, y, 0.5).err,
                   FitSseRelative(x, y, 0.5).err);
  EXPECT_DOUBLE_EQ(Fit(ErrorMetric::kMaxAbs, x, y, 1.0).err,
                   FitMaxAbs(x, y).err);
}

TEST(EvaluateLine, MetricsAgreeOnPerfectFit) {
  std::vector<double> x{1, 2, 3};
  const auto y = Line(x, 4.0, -2.0);
  for (ErrorMetric m :
       {ErrorMetric::kSse, ErrorMetric::kSseRelative, ErrorMetric::kMaxAbs}) {
    EXPECT_NEAR(EvaluateLine(m, x, y, 4.0, -2.0, 1.0), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace sbr::core
