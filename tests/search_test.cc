// Unit tests for the insert-count binary search (Algorithms 6 & 7):
// memoization, budget guards, unimodal-minimum location and the
// insert-vs-approximate bandwidth trade-off.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/get_base.h"
#include "core/search.h"
#include "util/rng.h"

namespace sbr::core {
namespace {

std::vector<CandidateBaseInterval> MakeCandidates(
    const std::vector<std::vector<double>>& values) {
  std::vector<CandidateBaseInterval> out;
  for (size_t i = 0; i < values.size(); ++i) {
    CandidateBaseInterval cbi;
    cbi.values = values[i];
    cbi.source_index = i;
    out.push_back(std::move(cbi));
  }
  return out;
}

TEST(Search, NoCandidatesReturnsZero) {
  Rng rng(1);
  std::vector<double> y(64);
  for (auto& v : y) v = rng.Uniform(0, 1);
  std::vector<CandidateBaseInterval> candidates;
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = 8;
  ctx.total_band = 40;
  const SearchResult r = SearchInsertCount(ctx);
  EXPECT_EQ(r.ins, 0u);
}

TEST(Search, PeriodicDataWantsThePeriodInserted) {
  // Strongly periodic data with an empty current base: inserting the
  // period interval slashes the error, so the search must pick ins >= 1.
  const size_t w = 16;
  std::vector<double> y(16 * w);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(2.0 * M_PI * static_cast<double>(i % w) / w) *
           (1.0 + 0.3 * static_cast<double>(i / w));
  }
  GetBaseOptions gb;
  auto candidates = GetBase(y, 1, w, 4, gb);
  ASSERT_FALSE(candidates.empty());

  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = w;
  ctx.total_band = 120;
  const SearchResult r = SearchInsertCount(ctx);
  EXPECT_GE(r.ins, 1u);
  // Chosen error strictly better than inserting nothing.
  EXPECT_LT(r.errors[r.ins], r.errors[0]);
}

TEST(Search, UselessCandidatesNotInserted) {
  // Pure ramp data: linear fall-back is perfect, base intervals only waste
  // bandwidth, so ins must be 0.
  std::vector<double> y(256);
  for (size_t i = 0; i < y.size(); ++i) y[i] = 2.0 * i;
  auto candidates = MakeCandidates({{std::vector<double>(16, 1.0)},
                                    {std::vector<double>(16, 2.0)}});
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = 16;
  ctx.total_band = 100;
  const SearchResult r = SearchInsertCount(ctx);
  EXPECT_EQ(r.ins, 0u);
}

TEST(Search, NeverExceedsBudgetFeasibility) {
  // total_band so tight that even one insertion would starve the interval
  // budget: ins must be 0.
  Rng rng(2);
  std::vector<double> y(128);
  for (auto& v : y) v = rng.Uniform(0, 1);
  auto candidates =
      MakeCandidates({std::vector<double>(16, 1.0),
                      std::vector<double>(16, 2.0)});
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = 16;
  ctx.total_band = 20;  // one insert costs 17, leaving 3 < 4 values
  const SearchResult r = SearchInsertCount(ctx);
  EXPECT_EQ(r.ins, 0u);
  ASSERT_GT(r.errors.size(), 1u);
  EXPECT_TRUE(std::isinf(r.errors[1]));
}

TEST(Search, ChosenInsIsLocalMinimum) {
  Rng rng(3);
  const size_t w = 12;
  std::vector<double> y(12 * w);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(2.0 * M_PI * static_cast<double>(i % (2 * w)) / (2 * w)) +
           rng.Gaussian(0, 0.1);
  }
  GetBaseOptions gb;
  auto candidates = GetBase(y, 1, w, 6, gb);
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = w;
  ctx.total_band = 100;
  const SearchResult r = SearchInsertCount(ctx);

  // Exhaustively compute every position's error and verify the pick is a
  // local minimum of the probed curve.
  auto error_at = [&](size_t pos) {
    std::vector<double> trial;
    for (size_t i = 0; i < pos; ++i) {
      trial.insert(trial.end(), candidates[i].values.begin(),
                   candidates[i].values.end());
    }
    const size_t cost = pos * (w + 1);
    if (cost >= ctx.total_band) {
      return std::numeric_limits<double>::infinity();
    }
    auto approx = GetIntervals(trial, y, 1, ctx.total_band - cost, w,
                               ctx.get_intervals);
    return approx.ok() ? approx->total_error
                       : std::numeric_limits<double>::infinity();
  };
  const double chosen = error_at(r.ins);
  if (r.ins > 0) {
    EXPECT_LE(chosen, error_at(r.ins - 1) + 1e-9);
  }
  if (r.ins < candidates.size()) {
    EXPECT_LE(chosen, error_at(r.ins + 1) + 1e-9);
  }
}

TEST(Search, MemoizationKeepsProbeCountLogarithmic) {
  Rng rng(4);
  const size_t w = 8;
  std::vector<double> y(16 * w);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.3) + rng.Gaussian(0, 0.2);
  }
  GetBaseOptions gb;
  auto candidates = GetBase(y, 1, w, 12, gb);
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = 1;
  ctx.w = w;
  ctx.total_band = 160;
  const SearchResult r = SearchInsertCount(ctx);
  // Binary search over <= 13 positions: far fewer probes than positions,
  // and certainly bounded by ~3 log2(n) + constant.
  EXPECT_LE(r.probes, 16u);
}

TEST(Search, ExistingBaseReducesNeedForInsertions) {
  // When the current base already contains the period, inserting more
  // should not be chosen.
  const size_t w = 16;
  std::vector<double> period(w);
  for (size_t i = 0; i < w; ++i) {
    period[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / w);
  }
  std::vector<double> y(8 * w);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = 5.0 * period[i % w] + 2.0;
  }
  GetBaseOptions gb;
  auto candidates = GetBase(y, 1, w, 4, gb);

  SearchContext with_base;
  with_base.current_base = period;
  with_base.candidates = &candidates;
  with_base.y = y;
  with_base.num_signals = 1;
  with_base.w = w;
  with_base.total_band = 60;
  const SearchResult r = SearchInsertCount(with_base);
  EXPECT_EQ(r.ins, 0u);
}

}  // namespace
}  // namespace sbr::core
