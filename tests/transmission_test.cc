// Unit tests for the transmission wire format: value accounting,
// serialization round trips and corruption handling.
#include <gtest/gtest.h>

#include <vector>

#include "core/transmission.h"

namespace sbr::core {
namespace {

Transmission MakeSample() {
  Transmission t;
  t.num_signals = 3;
  t.chunk_len = 100;
  t.w = 10;
  t.base_kind = BaseKind::kStored;
  BaseUpdate bu;
  bu.slot = 2;
  bu.values = {1.5, -2.5, 3.5, 0, 1, 2, 3, 4, 5, 6};
  t.base_updates.push_back(bu);
  t.intervals.push_back({0, 5, 1.25, -0.5});
  t.intervals.push_back({40, -1, 0.0, 9.0});
  t.intervals.push_back({200, 17, 2.0, 0.25});
  return t;
}

TEST(Transmission, ValueCountStoredBase) {
  const Transmission t = MakeSample();
  // 1 base update of width 10 -> 11 values; 3 intervals -> 12 values.
  EXPECT_EQ(t.ValueCount(), 11u + 12u);
}

TEST(Transmission, ValueCountNoBaseUsesThreePerInterval) {
  Transmission t = MakeSample();
  t.base_kind = BaseKind::kNone;
  t.base_updates.clear();
  EXPECT_EQ(t.ValueCount(), 9u);
}

TEST(Transmission, SerializeRoundTrip) {
  const Transmission t = MakeSample();
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Transmission::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_signals, t.num_signals);
  EXPECT_EQ(back->chunk_len, t.chunk_len);
  EXPECT_EQ(back->w, t.w);
  EXPECT_EQ(back->base_kind, t.base_kind);
  ASSERT_EQ(back->base_updates.size(), 1u);
  EXPECT_EQ(back->base_updates[0].slot, 2u);
  EXPECT_EQ(back->base_updates[0].values, t.base_updates[0].values);
  ASSERT_EQ(back->intervals.size(), 3u);
  EXPECT_EQ(back->intervals[1].shift, -1);
  EXPECT_DOUBLE_EQ(back->intervals[2].a, 2.0);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Transmission, EmptyTransmissionRoundTrip) {
  Transmission t;
  t.num_signals = 1;
  t.chunk_len = 8;
  t.w = 2;
  t.base_kind = BaseKind::kDctFixed;
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Transmission::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->base_updates.empty());
  EXPECT_TRUE(back->intervals.empty());
  EXPECT_EQ(back->base_kind, BaseKind::kDctFixed);
}

TEST(Transmission, TruncatedBytesFail) {
  const Transmission t = MakeSample();
  BinaryWriter w;
  t.Serialize(&w);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{13}, w.size() - 1}) {
    std::span<const uint8_t> partial(w.buffer().data(), cut);
    BinaryReader r(partial);
    EXPECT_FALSE(Transmission::Deserialize(&r).ok()) << "cut=" << cut;
  }
}

TEST(Transmission, InvalidBaseKindRejected) {
  Transmission t = MakeSample();
  BinaryWriter w;
  t.Serialize(&w);
  std::vector<uint8_t> bytes = w.buffer();
  bytes[16] = 0x7f;  // the base_kind byte (after four u32 header fields)
  BinaryReader r(bytes);
  EXPECT_FALSE(Transmission::Deserialize(&r).ok());
}

TEST(Transmission, NegativeShiftSurvivesRoundTrip) {
  Transmission t;
  t.num_signals = 1;
  t.chunk_len = 4;
  t.w = 2;
  t.intervals.push_back({0, -1, 1.0, 2.0});
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Transmission::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->intervals[0].shift, -1);
}

}  // namespace
}  // namespace sbr::core
