// Golden byte-identity suite: the serialized transmission stream for every
// pinned configuration (weather/stock x {SSE, relative, max-abs} plus the
// quadratic and low-memory-base variants) must match the recorded digests
// exactly, at every supported thread count. This is the contract the
// encode-pipeline refactors are held to: workspace reuse, incremental
// prefix sums and kernel unification are pure architecture changes, and
// any drift in the emitted bytes fails here before it can silently shift
// every number in EXPERIMENTS.md.
//
// Regenerate golden_data.inc with tests/golden_gen.cc only when the
// encoding semantics change intentionally.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "golden_common.h"
#include "obs/obs.h"

namespace sbr {
namespace {

const std::vector<golden::GoldenDigest>& Digests() {
  static const std::vector<golden::GoldenDigest> kDigests =
#include "golden_data.inc"
  ;
  return kDigests;
}

TEST(Golden, DigestTableCoversEveryCase) {
  std::map<std::string, golden::GoldenDigest> by_name;
  for (const auto& d : Digests()) by_name[d.name] = d;
  ASSERT_EQ(by_name.size(), golden::GoldenCases().size())
      << "golden_data.inc is stale; regenerate with golden_gen";
  for (const auto& c : golden::GoldenCases()) {
    EXPECT_TRUE(by_name.count(c.name)) << "missing digest for " << c.name;
  }
}

TEST(Golden, EncodedBytesMatchRecordedDigests) {
  std::map<std::string, golden::GoldenDigest> by_name;
  for (const auto& d : Digests()) by_name[d.name] = d;
  for (const auto& c : golden::GoldenCases()) {
    ASSERT_TRUE(by_name.count(c.name)) << c.name;
    const auto& expect = by_name[c.name];
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      bool ok = false;
      const auto bytes = golden::EncodeGoldenStream(c, threads, &ok);
      ASSERT_TRUE(ok) << c.name << " threads=" << threads;
      EXPECT_EQ(bytes.size(), expect.bytes)
          << c.name << " threads=" << threads;
      EXPECT_EQ(Crc32(bytes), expect.crc32)
          << c.name << " threads=" << threads;
    }
  }
}

TEST(Golden, ObservabilityEnabledDoesNotChangeBytes) {
  // The observability contract: metrics and spans recording at full tilt
  // never touches the emitted bytes. Same digests, every case, every
  // thread count, with the runtime gate on. (The compiled-out half of the
  // contract is this same binary built with the `noobs` preset, where the
  // gate below is a no-op and the sites do not exist.)
  obs::EnabledScope enabled;
  std::map<std::string, golden::GoldenDigest> by_name;
  for (const auto& d : Digests()) by_name[d.name] = d;
  for (const auto& c : golden::GoldenCases()) {
    ASSERT_TRUE(by_name.count(c.name)) << c.name;
    const auto& expect = by_name[c.name];
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      bool ok = false;
      const auto bytes = golden::EncodeGoldenStream(c, threads, &ok);
      ASSERT_TRUE(ok) << c.name << " threads=" << threads;
      EXPECT_EQ(bytes.size(), expect.bytes)
          << c.name << " threads=" << threads << " (obs enabled)";
      EXPECT_EQ(Crc32(bytes), expect.crc32)
          << c.name << " threads=" << threads << " (obs enabled)";
    }
  }
}

}  // namespace
}  // namespace sbr
