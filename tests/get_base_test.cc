// Unit tests for GetBase and its low-memory variant: candidate
// enumeration, benefit-driven selection, the benefit-adjustment rule (the
// Figure 4 example) and equivalence of the two implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/get_base.h"
#include "core/regression.h"
#include "util/rng.h"

namespace sbr::core {
namespace {

TEST(GetBase, EmptyWhenNoCandidatesFit) {
  std::vector<double> y(10, 1.0);
  GetBaseOptions opts;
  // W larger than the per-signal length: zero candidates.
  EXPECT_TRUE(GetBase(y, /*num_signals=*/1, /*w=*/20, 4, opts).empty());
  EXPECT_TRUE(GetBase(y, 1, 5, /*max_ins=*/0, opts).empty());
}

TEST(GetBase, SelectsAtMostMaxIns) {
  Rng rng(1);
  std::vector<double> y(160);
  for (auto& v : y) v = rng.Uniform(-5, 5);
  GetBaseOptions opts;
  const auto selected = GetBase(y, /*num_signals=*/2, /*w=*/10, 3, opts);
  EXPECT_LE(selected.size(), 3u);
  for (const auto& cbi : selected) {
    EXPECT_EQ(cbi.values.size(), 10u);
  }
}

TEST(GetBase, CandidateValuesComeFromData) {
  Rng rng(2);
  const size_t m = 40, w = 10;
  std::vector<double> y(2 * m);
  for (auto& v : y) v = rng.Uniform(-5, 5);
  GetBaseOptions opts;
  const auto selected = GetBase(y, 2, w, 8, opts);
  for (const auto& cbi : selected) {
    // source_index identifies the window: row r, window k.
    const size_t per_row = m / w;
    const size_t row = cbi.source_index / per_row;
    const size_t win = cbi.source_index % per_row;
    for (size_t i = 0; i < w; ++i) {
      EXPECT_DOUBLE_EQ(cbi.values[i], y[row * m + win * w + i]);
    }
  }
}

TEST(GetBase, PeriodicSignalNeedsOnePeriod) {
  // Every window of a perfectly periodic signal is identical; one CBI
  // approximates all others with zero error, so the adjusted benefit of a
  // second CBI collapses and selection stops at 1.
  const size_t w = 16, periods = 8;
  std::vector<double> y(w * periods);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(2.0 * M_PI * static_cast<double>(i % w) / w);
  }
  GetBaseOptions opts;
  const auto selected = GetBase(y, 1, w, 5, opts);
  EXPECT_EQ(selected.size(), 1u);
}

TEST(GetBase, TwoDistinctFamiliesNeedTwoIntervals) {
  // Windows alternate between a sine family and a sawtooth family (both
  // affinely closed within the family but not across), so two CBIs are
  // needed and the second pick must come from the other family.
  const size_t w = 16;
  std::vector<double> y;
  for (int block = 0; block < 8; ++block) {
    for (size_t i = 0; i < w; ++i) {
      if (block % 2 == 0) {
        y.push_back(std::sin(2.0 * M_PI * i / w) * (1.0 + 0.1 * block));
      } else {
        const double saw = (i < w / 2) ? static_cast<double>(i)
                                       : static_cast<double>(w - i);
        y.push_back(saw * (1.0 + 0.1 * block) + 3.0);
      }
    }
  }
  GetBaseOptions opts;
  const auto selected = GetBase(y, 1, w, 5, opts);
  ASSERT_GE(selected.size(), 2u);
  // One pick from each parity class.
  EXPECT_NE(selected[0].source_index % 2, selected[1].source_index % 2);
}

TEST(GetBase, BenefitsDecreaseMonotonically) {
  Rng rng(3);
  std::vector<double> y(300);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.21) + rng.Gaussian(0, 0.3);
  }
  GetBaseOptions opts;
  const auto selected = GetBase(y, 1, 15, 10, opts);
  for (size_t i = 1; i < selected.size(); ++i) {
    EXPECT_LE(selected[i].benefit, selected[i - 1].benefit + 1e-9);
  }
}

TEST(GetBase, FirstPickMaximizesRawBenefit) {
  // Recompute every candidate's initial benefit by brute force and verify
  // the algorithm's first selection attains the maximum.
  Rng rng(4);
  const size_t w = 8, m = 64;
  std::vector<double> y(m);
  for (auto& v : y) v = rng.Uniform(-3, 3);
  GetBaseOptions opts;
  const auto selected = GetBase(y, 1, w, 1, opts);
  ASSERT_EQ(selected.size(), 1u);

  const size_t k = m / w;
  double best = -1;
  for (size_t i = 0; i < k; ++i) {
    std::span<const double> ci(y.data() + i * w, w);
    double benefit = 0;
    for (size_t j = 0; j < k; ++j) {
      std::span<const double> cj(y.data() + j * w, w);
      const double lin = FitTime(ErrorMetric::kSse, cj, 1.0).err;
      const double err = FitSse(ci, cj).err;
      if (err < lin) benefit += lin - err;
    }
    best = std::max(best, benefit);
  }
  EXPECT_NEAR(selected[0].benefit, best, 1e-6 * std::max(1.0, best));
}

TEST(GetBase, LowMemProducesIdenticalSelection) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> y(240);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(i * (0.1 + 0.02 * trial)) + rng.Gaussian(0, 0.5);
    }
    GetBaseOptions opts;
    const auto full = GetBase(y, /*num_signals=*/3, /*w=*/8, 6, opts);
    const auto low = GetBaseLowMem(y, 3, 8, 6, opts);
    ASSERT_EQ(full.size(), low.size()) << "trial " << trial;
    for (size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(full[i].source_index, low[i].source_index);
      EXPECT_NEAR(full[i].benefit, low[i].benefit,
                  1e-9 * std::max(1.0, full[i].benefit));
    }
  }
}

TEST(GetBase, StopsWhenNoCandidateHelps) {
  // Pure ramps: linear regression is already perfect on every window, so
  // no CBI has positive benefit and nothing should be selected.
  std::vector<double> y(128);
  for (size_t i = 0; i < y.size(); ++i) y[i] = 3.0 * i + 1.0;
  GetBaseOptions opts;
  EXPECT_TRUE(GetBase(y, 1, 16, 5, opts).empty());
}

TEST(GetBase, RelativeMetricSelectsDifferentlyOnScaledData) {
  // Mixed magnitudes: under the relative metric, approximating the small
  // rows well matters more. The selections need not match the SSE ones.
  Rng rng(6);
  const size_t w = 8, m = 32;
  std::vector<double> y(2 * m);
  for (size_t i = 0; i < m; ++i) y[i] = 1000.0 * std::sin(i * 0.7);
  for (size_t i = m; i < 2 * m; ++i) y[i] = 0.5 * std::cos(i * 1.3);
  GetBaseOptions sse_opts;
  GetBaseOptions rel_opts;
  rel_opts.metric = ErrorMetric::kSseRelative;
  rel_opts.relative_floor = 0.01;
  const auto sse_sel = GetBase(y, 2, w, 2, sse_opts);
  const auto rel_sel = GetBase(y, 2, w, 2, rel_opts);
  ASSERT_FALSE(sse_sel.empty());
  ASSERT_FALSE(rel_sel.empty());
  // The SSE pick chases the large-magnitude rows (first row windows have
  // source_index < m/w).
  EXPECT_LT(sse_sel[0].source_index, m / w);
}

TEST(GetBase, HandlesTailRemainderRows) {
  // m = 37, w = 8: 4 whole windows per row, 5 values of tail ignored.
  Rng rng(7);
  std::vector<double> y(2 * 37);
  for (auto& v : y) v = rng.Uniform(0, 1);
  GetBaseOptions opts;
  const auto selected = GetBase(y, 2, 8, 100, opts);
  EXPECT_LE(selected.size(), 8u);  // at most K = 2 * 4 candidates
}

}  // namespace
}  // namespace sbr::core
