// Unit tests for the dataset substrate: container operations, generator
// reproducibility and the statistical properties each synthetic dataset
// must exhibit to stand in for the paper's traces (DESIGN.md section 4).
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/dataset.h"
#include "datagen/mixed.h"
#include "datagen/paper_datasets.h"
#include "datagen/phonecall.h"
#include "datagen/stock.h"
#include "datagen/weather.h"
#include "util/stats.h"

namespace sbr::datagen {
namespace {

// ---------------------------------------------------------------- Dataset

TEST(Dataset, ChunkExtraction) {
  Dataset ds;
  ds.signal_names = {"a", "b"};
  ds.values = linalg::Matrix(2, 10);
  for (size_t j = 0; j < 10; ++j) {
    ds.values(0, j) = static_cast<double>(j);
    ds.values(1, j) = static_cast<double>(100 + j);
  }
  EXPECT_EQ(ds.NumChunks(3), 3u);
  const auto chunk = ds.Chunk(1, 3);
  EXPECT_DOUBLE_EQ(chunk(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(chunk(1, 2), 105.0);
}

TEST(Dataset, SelectSignalsReorders) {
  Dataset ds;
  ds.name = "src";
  ds.signal_names = {"a", "b", "c"};
  ds.values = linalg::Matrix(3, 4);
  ds.values(2, 0) = 9.0;
  const Dataset out = ds.SelectSignals({2, 0}, "picked");
  EXPECT_EQ(out.num_signals(), 2u);
  EXPECT_EQ(out.signal_names[0], "c");
  EXPECT_DOUBLE_EQ(out.values(0, 0), 9.0);
}

TEST(Dataset, TruncateShortens) {
  Dataset ds;
  ds.signal_names = {"a"};
  ds.values = linalg::Matrix(1, 8);
  ds.values(0, 7) = 7.0;
  const Dataset out = ds.Truncate(4);
  EXPECT_EQ(out.length(), 4u);
}

TEST(Dataset, ConcatenateStacksRows) {
  Dataset a, b;
  a.name = "a";
  a.signal_names = {"x"};
  a.values = linalg::Matrix(1, 5);
  b.name = "b";
  b.signal_names = {"y", "z"};
  b.values = linalg::Matrix(2, 5);
  auto combined = Concatenate({a, b}, "ab");
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->num_signals(), 3u);
  EXPECT_EQ(combined->signal_names[0], "a/x");
  EXPECT_EQ(combined->signal_names[2], "b/z");
}

TEST(Dataset, ConcatenateRejectsLengthMismatch) {
  Dataset a, b;
  a.signal_names = {"x"};
  a.values = linalg::Matrix(1, 5);
  b.signal_names = {"y"};
  b.values = linalg::Matrix(1, 6);
  EXPECT_FALSE(Concatenate({a, b}, "bad").ok());
}

TEST(Dataset, ConcatRowsFlattens) {
  linalg::Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(ConcatRows(m), (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

// ---------------------------------------------------------------- Weather

TEST(Weather, GeometryAndReproducibility) {
  WeatherOptions opts;
  opts.length = 2000;
  const Dataset a = GenerateWeather(opts);
  const Dataset b = GenerateWeather(opts);
  EXPECT_EQ(a.num_signals(), 6u);
  EXPECT_EQ(a.length(), 2000u);
  for (size_t s = 0; s < 6; ++s) {
    for (size_t i = 0; i < 2000; ++i) {
      ASSERT_DOUBLE_EQ(a.values(s, i), b.values(s, i));
    }
  }
  WeatherOptions other = opts;
  other.seed = 999;
  const Dataset c = GenerateWeather(other);
  EXPECT_NE(a.values(0, 100), c.values(0, 100));
}

TEST(Weather, PhysicalInvariants) {
  WeatherOptions opts;
  opts.length = 144 * 30;  // 30 days
  const Dataset ds = GenerateWeather(opts);
  for (size_t i = 0; i < ds.length(); ++i) {
    EXPECT_GE(ds.values(0, i), ds.values(1, i)) << "dewpoint above temp";
    EXPECT_GE(ds.values(2, i), 0.0) << "negative wind speed";
    EXPECT_GE(ds.values(3, i), ds.values(2, i)) << "peak below mean wind";
    EXPECT_GE(ds.values(4, i), 0.0) << "negative irradiance";
    EXPECT_GE(ds.values(5, i), 0.0);
    EXPECT_LE(ds.values(5, i), 100.0);
  }
}

TEST(Weather, TempDewpointStronglyCorrelated) {
  WeatherOptions opts;
  opts.length = 144 * 60;
  const Dataset ds = GenerateWeather(opts);
  const double corr = PearsonCorrelation(ds.Signal(0), ds.Signal(1));
  EXPECT_GT(corr, 0.9);
}

TEST(Weather, SolarHasDiurnalStructure) {
  WeatherOptions opts;
  opts.length = 144 * 30;
  const Dataset ds = GenerateWeather(opts);
  // Solar must be zero at night (1/4 of samples at least) and positive in
  // the day.
  size_t zeros = 0, positives = 0;
  for (size_t i = 0; i < ds.length(); ++i) {
    if (ds.values(4, i) == 0.0) ++zeros;
    if (ds.values(4, i) > 50.0) ++positives;
  }
  EXPECT_GT(zeros, ds.length() / 4);
  EXPECT_GT(positives, ds.length() / 5);
}

// ------------------------------------------------------------------ Stock

TEST(Stock, GeometryAndReproducibility) {
  StockOptions opts;
  opts.length = 3000;
  const Dataset a = GenerateStock(opts);
  EXPECT_EQ(a.num_signals(), kNumStockTickers);
  EXPECT_EQ(a.signal_names[0], "MSFT");
  const Dataset b = GenerateStock(opts);
  ASSERT_DOUBLE_EQ(a.values(3, 1234), b.values(3, 1234));
}

TEST(Stock, PricesStayPositiveAndNearBase) {
  StockOptions opts;
  opts.length = 20480;
  const Dataset ds = GenerateStock(opts);
  for (size_t s = 0; s < ds.num_signals(); ++s) {
    const MinMax mm = Extent(ds.Signal(s));
    EXPECT_GT(mm.min, 0.0) << ds.signal_names[s];
    EXPECT_LT(mm.max, 2000.0) << ds.signal_names[s];
  }
}

TEST(Stock, MarketFactorInducesCrossCorrelation) {
  StockOptions opts;
  opts.length = 20480;
  const Dataset ds = GenerateStock(opts);
  // Average pairwise |correlation| across tickers should be clearly
  // positive (co-movement) even if individual pairs vary.
  double sum = 0;
  int count = 0;
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = a + 1; b < 4; ++b) {
      sum += PearsonCorrelation(ds.Signal(a), ds.Signal(b));
      ++count;
    }
  }
  EXPECT_GT(sum / count, 0.2);
}

// ------------------------------------------------------------- PhoneCalls

TEST(PhoneCalls, GeometryAndReproducibility) {
  PhoneCallOptions opts;
  opts.length = 4000;
  const Dataset a = GeneratePhoneCalls(opts);
  EXPECT_EQ(a.num_signals(), kNumPhoneStates);
  EXPECT_EQ(a.signal_names[1], "CA");
  const Dataset b = GeneratePhoneCalls(opts);
  ASSERT_DOUBLE_EQ(a.values(7, 999), b.values(7, 999));
}

TEST(PhoneCalls, CountsAreNonNegativeIntegers) {
  PhoneCallOptions opts;
  opts.length = 2000;
  const Dataset ds = GeneratePhoneCalls(opts);
  for (size_t s = 0; s < ds.num_signals(); ++s) {
    for (size_t i = 0; i < ds.length(); ++i) {
      const double v = ds.values(s, i);
      ASSERT_GE(v, 0.0);
      ASSERT_DOUBLE_EQ(v, std::floor(v));
    }
  }
}

TEST(PhoneCalls, DiurnalShapeSharedAcrossStates) {
  PhoneCallOptions opts;
  opts.length = 1440 * 10;  // 10 days
  const Dataset ds = GeneratePhoneCalls(opts);
  // Midday traffic dwarfs 4am traffic for every state.
  for (size_t s = 0; s < ds.num_signals(); ++s) {
    double night = 0, noon = 0;
    for (size_t day = 0; day < 10; ++day) {
      night += ds.values(s, day * 1440 + 4 * 60);
      noon += ds.values(s, day * 1440 + 12 * 60);
    }
    EXPECT_GT(noon, 3.0 * night + 1.0) << ds.signal_names[s];
  }
  // Strong cross-state correlation from the shared day shape.
  EXPECT_GT(PearsonCorrelation(ds.Signal(0), ds.Signal(1)), 0.8);
}

TEST(PhoneCalls, LargeStatesCarryLargerVolumes) {
  PhoneCallOptions opts;
  opts.length = 1440 * 7;
  const Dataset ds = GeneratePhoneCalls(opts);
  // CA (index 1) should dwarf CT (index 3) on average.
  EXPECT_GT(Mean(ds.Signal(1)), 3.0 * Mean(ds.Signal(3)));
}

TEST(PhoneCalls, WeekendTrafficReduced) {
  PhoneCallOptions opts;
  opts.length = 1440 * 14;  // two weeks
  const Dataset ds = GeneratePhoneCalls(opts);
  double weekday = 0, weekend = 0;
  size_t wd = 0, we = 0;
  for (size_t i = 0; i < ds.length(); ++i) {
    const size_t day = (i / 1440) % 7;
    if (day == 5 || day == 6) {
      weekend += ds.values(1, i);
      ++we;
    } else {
      weekday += ds.values(1, i);
      ++wd;
    }
  }
  EXPECT_GT(weekday / wd, 1.3 * (weekend / we));
}

// ------------------------------------------------------------------ Mixed

TEST(Mixed, NineSignalsFromThreeDomains) {
  MixedOptions opts;
  opts.length = 2048;
  const Dataset ds = GenerateMixed(opts);
  EXPECT_EQ(ds.num_signals(), kNumMixedSignals);
  EXPECT_EQ(ds.length(), 2048u);
  EXPECT_EQ(ds.signal_names[0], "phone/AZ");
  EXPECT_EQ(ds.signal_names[3], "weather/air_temp");
  EXPECT_EQ(ds.signal_names[6], "stock/MSFT");
}

TEST(Mixed, CrossDomainCorrelationIsWeak) {
  MixedOptions opts;
  opts.length = 10240;
  const Dataset ds = GenerateMixed(opts);
  // Phone vs stock should be essentially uncorrelated.
  const double c = PearsonCorrelation(ds.Signal(0), ds.Signal(6));
  EXPECT_LT(std::abs(c), 0.3);
}

// ------------------------------------------------------- Paper setups

TEST(PaperSetups, GeometriesMatchThePaper) {
  {
    const auto s = PaperWeatherSetup();
    EXPECT_EQ(s.dataset.num_signals(), 6u);
    EXPECT_EQ(s.chunk_len, 4096u);
    EXPECT_EQ(s.m_base, 3456u);
    EXPECT_EQ(s.dataset.NumChunks(s.chunk_len), 10u);
  }
  {
    const auto s = PaperStockSetup();
    EXPECT_EQ(s.dataset.num_signals(), 10u);
    EXPECT_EQ(s.chunk_len, 2048u);
    EXPECT_EQ(s.m_base, 2048u);
  }
  {
    const auto s = PaperPhoneSetup();
    EXPECT_EQ(s.dataset.num_signals(), 15u);
    EXPECT_EQ(s.chunk_len, 2560u);
  }
  {
    const auto s = PaperMixedSetup();
    EXPECT_EQ(s.dataset.num_signals(), 9u);
    EXPECT_EQ(s.chunk_len, 2048u);
  }
}

TEST(PaperSetups, Fig6SetupsShareChunkFootprint) {
  const auto w = Fig6WeatherSetup();
  const auto s = Fig6StockSetup();
  const auto p = Fig6PhoneSetup();
  const size_t n_w = w.dataset.num_signals() * w.chunk_len;
  const size_t n_s = s.dataset.num_signals() * s.chunk_len;
  const size_t n_p = p.dataset.num_signals() * p.chunk_len;
  EXPECT_EQ(n_w, n_s);
  EXPECT_EQ(n_s, n_p);
  EXPECT_EQ(n_w, 30720u);
}

TEST(PaperSetups, Fig5SweepScalesWithM) {
  const auto small = Fig5StockSetup(512);
  const auto large = Fig5StockSetup(2048);
  EXPECT_EQ(small.dataset.num_signals() * small.chunk_len, 5120u);
  EXPECT_EQ(large.dataset.num_signals() * large.chunk_len, 20480u);
  EXPECT_EQ(small.m_base, 1024u);
}

}  // namespace
}  // namespace sbr::datagen
