// Tests for the fault-tolerant transmission protocol: frame integrity,
// duplicate suppression, reorder buffering, base-signal sync recovery and
// the fault-injection channel. The contract throughout: losses surface as
// explicit DataLoss, never as silent garbage, and everything is
// reproducible from the seed.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/encoder.h"
#include "core/transmission.h"
#include "datagen/weather.h"
#include "net/base_station.h"
#include "net/fault_channel.h"
#include "net/network.h"
#include "net/node.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace sbr::net {
namespace {

core::EncoderOptions SmallOptions() {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  return opts;
}

StatusOr<FrameAck> Deliver(BaseStation* station, const core::Frame& frame) {
  BinaryWriter w;
  frame.Serialize(&w);
  return station->ReceiveBytes(w.buffer());
}

/// Streams `chunks` batches of synthetic data through `node`, invoking
/// `on_chunk(index, transmission)` for each emitted transmission.
template <typename Fn>
void StreamChunks(SensorNode* node, size_t chunks, size_t chunk_len,
                  Fn on_chunk) {
  Rng rng(77);
  std::vector<double> sample(node->num_signals());
  size_t emitted = 0;
  for (size_t t = 0; t < chunks * chunk_len; ++t) {
    for (size_t s = 0; s < sample.size(); ++s) {
      sample[s] = std::sin(t * 0.13 + s) * (s + 1) + rng.Gaussian(0, 0.05);
    }
    auto r = node->AddSamples(sample);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->has_value()) on_chunk(emitted++, **r);
  }
  ASSERT_EQ(emitted, chunks);
}

// ----------------------------------------------------------- FaultChannel

TEST(FaultChannel, DeterministicFromSeedAndSalt) {
  FaultOptions fopts;
  fopts.drop_probability = 0.3;
  fopts.duplicate_probability = 0.2;
  fopts.reorder_probability = 0.2;
  fopts.bit_flip_probability = 0.2;
  fopts.seed = 99;

  auto run = [&](uint64_t salt) {
    FaultChannel ch(fopts, salt);
    std::vector<std::vector<uint8_t>> out;
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      std::vector<uint8_t> frame(32);
      for (auto& b : frame) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      for (auto& f : ch.Transmit(std::move(frame))) out.push_back(std::move(f));
    }
    for (auto& f : ch.Flush()) out.push_back(std::move(f));
    return std::make_pair(std::move(out), ch.counters());
  };

  auto [out_a, c_a] = run(1);
  auto [out_b, c_b] = run(1);
  EXPECT_EQ(out_a, out_b);  // byte-identical delivery, run to run
  EXPECT_EQ(c_a.delivered, c_b.delivered);
  EXPECT_EQ(c_a.dropped, c_b.dropped);
  EXPECT_EQ(c_a.duplicated, c_b.duplicated);
  EXPECT_EQ(c_a.reordered, c_b.reordered);
  EXPECT_EQ(c_a.bit_flipped, c_b.bit_flipped);
  // Every fault kind actually fires at these rates.
  EXPECT_GT(c_a.dropped, 0u);
  EXPECT_GT(c_a.duplicated, 0u);
  EXPECT_GT(c_a.reordered, 0u);
  EXPECT_GT(c_a.bit_flipped, 0u);
  EXPECT_EQ(c_a.transmitted, 200u);

  // A different salt decorrelates the stream.
  auto [out_c, c_c] = run(2);
  EXPECT_NE(out_a, out_c);
}

TEST(FaultChannel, PerfectChannelIsTransparent) {
  FaultChannel ch(FaultOptions{}, 0);
  std::vector<uint8_t> frame{1, 2, 3, 4};
  auto out = ch.Transmit(frame);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], frame);
  EXPECT_TRUE(ch.Flush().empty());
  EXPECT_EQ(ch.counters().delivered, 1u);
  EXPECT_EQ(ch.counters().dropped, 0u);
}

// ------------------------------------------- duplicate & reorder handling

TEST(Protocol, DuplicateFramesIngestOnlyOnce) {
  BaseStation station(64);
  SensorNode node(1, 2, 128, SmallOptions());
  StreamChunks(&node, 3, 128, [&](size_t, const core::Transmission& tx) {
    core::Frame frame = node.MakeDataFrame(tx);
    auto first = Deliver(&station, frame);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->type, AckType::kAccept);
    // The radio delivered a second copy of the same frame.
    auto second = Deliver(&station, frame);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->type, AckType::kDuplicate);
  });
  EXPECT_EQ(station.stats(1).frames_accepted, 3u);
  EXPECT_EQ(station.stats(1).duplicates_suppressed, 3u);
  auto history = station.History(1);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)->num_chunks(), 3u);  // no double ingest
  auto log = station.Log(1);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->size(), 3u);
}

TEST(Protocol, ReorderedFramesBufferedAndDrainedInOrder) {
  // Two identical nodes; station B receives the middle pair swapped. The
  // reorder window must hide the swap: identical final reconstruction.
  BaseStation st_ordered(64), st_swapped(64);
  SensorNode node_a(1, 2, 128, SmallOptions());
  SensorNode node_b(1, 2, 128, SmallOptions());

  std::vector<core::Frame> frames_a, frames_b;
  StreamChunks(&node_a, 4, 128, [&](size_t, const core::Transmission& tx) {
    frames_a.push_back(node_a.MakeDataFrame(tx));
  });
  StreamChunks(&node_b, 4, 128, [&](size_t, const core::Transmission& tx) {
    frames_b.push_back(node_b.MakeDataFrame(tx));
  });

  for (const auto& f : frames_a) {
    auto ack = Deliver(&st_ordered, f);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->type, AckType::kAccept);
  }
  for (size_t i : {0u, 2u, 1u, 3u}) {  // seq 2 overtakes seq 1
    auto ack = Deliver(&st_swapped, frames_b[i]);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->type, i == 2 ? AckType::kBuffered : AckType::kAccept);
  }
  EXPECT_EQ(st_swapped.stats(1).buffered_out_of_order, 1u);
  EXPECT_EQ(st_swapped.stats(1).frames_accepted, 4u);

  auto ha = st_ordered.History(1);
  auto hb = st_swapped.History(1);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  ASSERT_EQ((*hb)->num_chunks(), 4u);
  for (size_t s = 0; s < 2; ++s) {
    auto ra = (*ha)->QueryRange(s, 0, 4 * 128);
    auto rb = (*hb)->QueryRange(s, 0, 4 * 128);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(*ra, *rb);  // bit-for-bit
  }
}

// ------------------------------------------------------ resync machinery

TEST(Protocol, ResyncRecoversBitForBitAfterKilledTransmissions) {
  // Kill delivery of two consecutive transmissions. The protocol must
  // surface them as an explicit DataLoss gap and, after the base-signal
  // snapshot resync, every later chunk must decode bit-for-bit identical
  // to the loss-free run.
  const size_t kChunks = 8, kLen = 128;
  BaseStation st_clean(64), st_lossy(64);
  SensorNode node_clean(1, 2, kLen, SmallOptions());
  SensorNode node_lossy(1, 2, kLen, SmallOptions());

  StreamChunks(&node_clean, kChunks, kLen,
               [&](size_t, const core::Transmission& tx) {
                 auto ack = Deliver(&st_clean, node_clean.MakeDataFrame(tx));
                 ASSERT_TRUE(ack.ok());
                 ASSERT_EQ(ack->type, AckType::kAccept);
                 node_clean.MarkChunkDelivered();
               });

  StreamChunks(&node_lossy, kChunks, kLen,
               [&](size_t c, const core::Transmission& tx) {
                 if (c == 2 || c == 3) {
                   // The frame left the antenna and died on the air.
                   (void)node_lossy.MakeDataFrame(tx);
                   node_lossy.RecordLostChunk();
                   return;
                 }
                 if (node_lossy.needs_resync()) {
                   auto snap_ack =
                       Deliver(&st_lossy, node_lossy.BuildSnapshotFrame());
                   ASSERT_TRUE(snap_ack.ok());
                   ASSERT_EQ(snap_ack->type, AckType::kAccept);
                   node_lossy.MarkSnapshotDelivered();
                   node_lossy.set_needs_resync(false);
                 }
                 auto ack = Deliver(&st_lossy, node_lossy.MakeDataFrame(tx));
                 ASSERT_TRUE(ack.ok());
                 ASSERT_EQ(ack->type, AckType::kAccept);
                 node_lossy.MarkChunkDelivered();
               });

  EXPECT_EQ(node_lossy.lost_chunks(), 2u);
  EXPECT_EQ(node_lossy.resyncs(), 1u);
  EXPECT_EQ(st_lossy.stats(1).gap_chunks, 2u);
  EXPECT_EQ(st_lossy.stats(1).snapshots_applied, 1u);

  auto hist = st_lossy.History(1);
  ASSERT_TRUE(hist.ok());
  const storage::HistoryStore& lossy = **hist;
  ASSERT_EQ(lossy.num_chunks(), kChunks);
  EXPECT_TRUE(lossy.IsGap(2));
  EXPECT_TRUE(lossy.IsGap(3));

  // The gap answers DataLoss, not fabricated values.
  auto over_gap = lossy.QueryRange(0, 2 * kLen, 4 * kLen);
  ASSERT_FALSE(over_gap.ok());
  EXPECT_EQ(over_gap.status().code(), StatusCode::kDataLoss);

  // Every surviving chunk matches the loss-free reconstruction exactly.
  auto clean_hist = st_clean.History(1);
  ASSERT_TRUE(clean_hist.ok());
  for (size_t c : {0u, 1u, 4u, 5u, 6u, 7u}) {
    for (size_t s = 0; s < 2; ++s) {
      auto a = (*clean_hist)->QueryRange(s, c * kLen, (c + 1) * kLen);
      auto b = lossy.QueryRange(s, c * kLen, (c + 1) * kLen);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << "chunk " << c << " signal " << s;
    }
  }
}

TEST(Protocol, UnresyncedDesyncSurfacesAsDataLossNeverGarbage) {
  // A hole wider than the reorder window desynchronises the stream. The
  // station must never decode frames whose base-signal lineage is broken,
  // and it must not guess at the hole's width either: gap declaration is
  // deferred until the sender's snapshot reports an authoritative
  // timeline. Until then the timeline simply stops growing.
  const size_t kLen = 32, kWindow = 8;
  BaseStation station(64, "", kWindow);
  SensorNode node(1, 1, kLen, SmallOptions());

  std::vector<core::Frame> frames;
  StreamChunks(&node, 12, kLen, [&](size_t, const core::Transmission& tx) {
    frames.push_back(node.MakeDataFrame(tx));
  });

  auto first = Deliver(&station, frames[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->type, AckType::kAccept);
  node.MarkChunkDelivered();

  // Frames 1..9 vanish; frame 10 arrives far beyond the window.
  auto late = Deliver(&station, frames[10]);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->type, AckType::kDesync);
  EXPECT_TRUE(late->resync_requested);

  // Everything after is refused until a snapshot re-establishes an epoch.
  auto next = Deliver(&station, frames[11]);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->type, AckType::kDesync);

  {
    const ProtocolStats stats = station.stats(1);
    EXPECT_EQ(stats.frames_accepted, 1u);
    EXPECT_EQ(stats.gap_chunks, 0u);  // no guessed gaps before the snapshot
    EXPECT_GE(stats.resync_requests, 2u);

    auto hist = station.History(1);
    ASSERT_TRUE(hist.ok());
    EXPECT_EQ((*hist)->num_chunks(), 1u);
    EXPECT_EQ((*hist)->num_gaps(), 0u);
    EXPECT_TRUE((*hist)->QueryRange(0, 0, kLen).ok());
  }

  // The sender finally reports: chunks 1..11 are gone for good. Its
  // snapshot carries timeline_chunks = 12 and reconciliation back-fills
  // the eleven missing slots as explicit DataLoss gaps.
  node.RecordLostChunks(11);
  auto snap_ack = Deliver(&station, node.BuildSnapshotFrame());
  ASSERT_TRUE(snap_ack.ok());
  ASSERT_EQ(snap_ack->type, AckType::kAccept);

  const ProtocolStats stats = station.stats(1);
  EXPECT_EQ(stats.gap_chunks, 11u);
  EXPECT_EQ(stats.snapshots_applied, 1u);

  auto hist = station.History(1);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)->num_chunks(), 12u);
  EXPECT_EQ((*hist)->num_gaps(), 11u);
  auto q = (*hist)->QueryRange(0, 0, (*hist)->history_len());
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kDataLoss);
  // The intact first chunk still answers.
  EXPECT_TRUE((*hist)->QueryRange(0, 0, kLen).ok());
}

TEST(Protocol, DegradedBatchDecodesWithoutAnyBaseState) {
  // A self-contained re-encode must be ingestible by a station that has
  // no base-signal state at all for this sensor.
  SensorNode node(9, 2, 128, SmallOptions());
  core::Transmission last;
  StreamChunks(&node, 2, 128, [&](size_t, const core::Transmission& tx) {
    last = tx;  // never delivered anywhere
  });

  auto degraded = node.EncodeSelfContained();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->base_kind, core::BaseKind::kNone);
  EXPECT_TRUE(degraded->base_updates.empty());
  EXPECT_EQ(node.degraded_batches(), 1u);

  BaseStation fresh(64);
  // seq 0 under epoch 0: acceptable to a station that has never heard
  // from this sensor.
  SensorNode courier(9, 2, 128, SmallOptions());
  core::Frame frame = courier.MakeDataFrame(*degraded);
  auto ack = Deliver(&fresh, frame);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, AckType::kAccept);
  EXPECT_EQ(fresh.stats(9).degraded_batches, 1u);
  auto hist = fresh.History(9);
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE((*hist)->Chunk(0).ok());
}

TEST(Protocol, EpochMismatchedDataFramesRejectedUntilSnapshotArrives) {
  BaseStation station(64);
  SensorNode node(3, 1, 64, SmallOptions());

  std::vector<core::Frame> old_epoch_frames;
  StreamChunks(&node, 3, 64, [&](size_t c, const core::Transmission& tx) {
    core::Frame f = node.MakeDataFrame(tx);
    if (c == 0) {
      auto ack = Deliver(&station, f);
      ASSERT_TRUE(ack.ok());
      ASSERT_EQ(ack->type, AckType::kAccept);
      node.MarkChunkDelivered();
    } else {
      old_epoch_frames.push_back(f);  // epoch-0 frames that never arrived
    }
  });

  // The node starts a resync, but the snapshot itself dies on the air.
  node.RecordLostChunk();
  node.RecordLostChunk();
  core::Frame lost_snapshot = node.BuildSnapshotFrame();  // epoch is now 1
  (void)lost_snapshot;

  // A data frame under the new epoch reaches a station still on epoch 0:
  // its base-signal lineage is unverifiable, so it is refused with a
  // resync request — never decoded.
  auto degraded = node.EncodeSelfContained();
  ASSERT_TRUE(degraded.ok());
  auto early = Deliver(&station, node.MakeDataFrame(*degraded));
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->type, AckType::kDesync);
  EXPECT_TRUE(early->resync_requested);

  // Retrying the snapshot heals the stream; data then flows again.
  auto snap_ack = Deliver(&station, node.BuildSnapshotFrame());
  ASSERT_TRUE(snap_ack.ok());
  ASSERT_EQ(snap_ack->type, AckType::kAccept);
  node.MarkSnapshotDelivered();
  node.set_needs_resync(false);
  auto recovered = Deliver(&station, node.MakeDataFrame(*degraded));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->type, AckType::kAccept);

  // A zombie copy of an old-epoch frame is behind the new frontier: it is
  // suppressed as a duplicate, never decoded into the stream.
  auto zombie = Deliver(&station, old_epoch_frames[0]);
  ASSERT_TRUE(zombie.ok());
  EXPECT_EQ(zombie->type, AckType::kDuplicate);

  const ProtocolStats stats = station.stats(3);
  EXPECT_EQ(stats.frames_accepted, 3u);  // chunk 0 + snapshot + degraded
  EXPECT_EQ(stats.gap_chunks, 2u);       // the two reported losses
  EXPECT_EQ(stats.degraded_batches, 1u);
  auto hist = station.History(3);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ((*hist)->num_chunks(), 4u);  // chunk 0, two gaps, recovered
}

// ---------------------------------------------------- end-to-end NetworkSim

SimulationReport MustRunFaultySim(double rate, uint64_t seed,
                                  bool resync_enabled = true,
                                  size_t max_attempts = 16) {
  datagen::WeatherOptions wopts;
  wopts.length = 2048;
  std::vector<datagen::Dataset> feeds;
  std::vector<NodePlacement> placements;
  for (uint32_t id = 0; id < 2; ++id) {
    wopts.seed = 500 + id;
    feeds.push_back(datagen::GenerateWeather(wopts));
    placements.push_back({id, id + 1});
  }
  core::EncoderOptions opts;
  opts.total_band = 300;
  opts.m_base = 256;
  LinkOptions link;
  link.loss_probability = rate;
  link.duplicate_probability = rate;
  link.reorder_probability = rate;
  link.bit_flip_probability = rate;
  link.max_attempts = max_attempts;
  link.resync_enabled = resync_enabled;
  link.seed = seed;
  NetworkSim sim(placements, opts, /*chunk_len=*/256, EnergyParams(), link);
  auto report = sim.Run(feeds);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

TEST(Protocol, CombinedTenPercentFaultsCompleteWithCleanAccounting) {
  const SimulationReport report = MustRunFaultySim(0.10, 424242);

  // The protocol observed and survived real faults.
  EXPECT_GT(report.total_corrupt_frames, 0u);  // CRC caught the bit flips
  EXPECT_GT(report.total_duplicates_suppressed, 0u);
  size_t retransmissions = 0;
  for (const auto& nr : report.nodes) retransmissions += nr.retransmissions;
  EXPECT_GT(retransmissions, 0u);

  // Accounting is airtight: every emitted chunk is either decoded exactly
  // once at the station or declared a DataLoss gap — no double ingest, no
  // silent drop.
  for (const auto& nr : report.nodes) {
    EXPECT_EQ(nr.transmissions, 8u);  // 2048 / 256
    SCOPED_TRACE("node " + std::to_string(nr.id));
    const size_t accepted = nr.transmissions - nr.chunks_lost;
    (void)accepted;
    EXPECT_LE(nr.chunks_lost, nr.transmissions);
  }

  // The error on surviving regions stays bounded: SSE within 5% of raw
  // signal energy (the loss-free figure for this configuration).
  datagen::WeatherOptions wopts;
  wopts.length = 2048;
  double energy = 0.0;
  for (uint32_t id = 0; id < 2; ++id) {
    wopts.seed = 500 + id;
    const datagen::Dataset feed = datagen::GenerateWeather(wopts);
    for (size_t s = 0; s < feed.num_signals(); ++s) {
      for (double v : feed.Signal(s)) energy += v * v;
    }
  }
  EXPECT_LT(report.total_sse, 0.05 * energy);
}

TEST(Protocol, FaultySimulationIsSeedReproducible) {
  const SimulationReport a = MustRunFaultySim(0.10, 7);
  const SimulationReport b = MustRunFaultySim(0.10, 7);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.total_values_sent, b.total_values_sent);
  EXPECT_EQ(a.total_chunks_lost, b.total_chunks_lost);
  EXPECT_EQ(a.total_corrupt_frames, b.total_corrupt_frames);
  EXPECT_EQ(a.total_duplicates_suppressed, b.total_duplicates_suppressed);
  EXPECT_EQ(a.total_resyncs, b.total_resyncs);
  EXPECT_EQ(a.total_degraded_batches, b.total_degraded_batches);
  EXPECT_DOUBLE_EQ(a.total_sse, b.total_sse);
  EXPECT_DOUBLE_EQ(a.total_energy_nj, b.total_energy_nj);
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].retransmissions, b.nodes[i].retransmissions);
    EXPECT_EQ(a.nodes[i].backoff_slots, b.nodes[i].backoff_slots);
    EXPECT_EQ(a.nodes[i].frames_abandoned, b.nodes[i].frames_abandoned);
    EXPECT_EQ(a.nodes[i].resyncs_triggered, b.nodes[i].resyncs_triggered);
    EXPECT_EQ(a.nodes[i].degraded_batches, b.nodes[i].degraded_batches);
    EXPECT_DOUBLE_EQ(a.nodes[i].sse, b.nodes[i].sse);
  }

  // A different seed changes the fault realization.
  const SimulationReport c = MustRunFaultySim(0.10, 8);
  EXPECT_NE(a.total_energy_nj, c.total_energy_nj);
}

TEST(Protocol, RetransmitBackoffJitterSpreadsNodesApart) {
  // The retry backoff is jittered per node so colliding nodes decorrelate,
  // but stays deterministic per node id (seed reproducibility) and bounded
  // within the exponential window [2^a / 2, 2^a].
  SensorNode a1(1, 1, 32, SmallOptions());
  SensorNode a2(1, 1, 32, SmallOptions());
  SensorNode b(2, 1, 32, SmallOptions());

  // Attempt 0 is always a single slot: the first retry happens promptly.
  EXPECT_EQ(a1.NextBackoffSlots(0), 1u);
  EXPECT_EQ(b.NextBackoffSlots(0), 1u);

  std::vector<size_t> train_a1, train_a2, train_b;
  for (size_t attempt = 1; attempt <= 12; ++attempt) {
    const size_t base = size_t{1} << std::min<size_t>(attempt, 10);
    const size_t sa = a1.NextBackoffSlots(attempt);
    train_a1.push_back(sa);
    train_a2.push_back(a2.NextBackoffSlots(attempt));
    train_b.push_back(b.NextBackoffSlots(attempt));
    EXPECT_GE(sa, base / 2) << "attempt " << attempt;
    EXPECT_LE(sa, base) << "attempt " << attempt;
  }
  // Same id, fresh node: identical retry train (replay-stable).
  EXPECT_EQ(train_a1, train_a2);
  // Different ids draw from decorrelated streams: the trains diverge.
  EXPECT_NE(train_a1, train_b);
}

TEST(Protocol, BackoffSlotSequencePinnedForFixedSeed) {
  // Pin the jittered slot train of the shared BackoffSlots helper
  // (net/energy.h) for node id 7's seed. Both simulators charge backoff
  // energy through this exact sequence, so a change here silently shifts
  // every energy figure — this pin makes that loud.
  Rng rng(0x6a09e667f3bcc909ull ^ (uint64_t{7} * 0x100000001b3ull));
  const std::vector<size_t> expect = {1, 1, 3, 8, 14, 22, 55, 111, 227};
  std::vector<size_t> got;
  for (size_t attempt = 0; attempt < expect.size(); ++attempt) {
    got.push_back(BackoffSlots(attempt, &rng));
  }
  EXPECT_EQ(got, expect);

  // SensorNode::NextBackoffSlots is a thin delegate: a node with the same
  // id must replay the identical train.
  SensorNode node(7, 1, 32, SmallOptions());
  for (size_t attempt = 0; attempt < expect.size(); ++attempt) {
    EXPECT_EQ(node.NextBackoffSlots(attempt), expect[attempt])
        << "attempt " << attempt;
  }
}

TEST(Protocol, ResyncDisabledLossesBecomeStationGaps) {
  // Heavy loss, no resync, few retries: some chunks must die, and their
  // death must be visible at the base station as DataLoss gaps (or as the
  // node's own lost-chunk count), never as silently wrong history.
  const SimulationReport report =
      MustRunFaultySim(0.5, 11, /*resync_enabled=*/false,
                       /*max_attempts=*/2);
  EXPECT_GT(report.total_chunks_lost, 0u);
  EXPECT_EQ(report.total_resyncs, 0u);
  EXPECT_EQ(report.total_degraded_batches, 0u);
}

}  // namespace
}  // namespace sbr::net
