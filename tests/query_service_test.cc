// storage::QueryService suite: snapshot isolation under concurrent
// readers (the TSan target), epoch reproducibility, the sharded aggregate
// cache, batch semantics and the per-query DataLoss accounting.
//
// The concurrency test's invariant is the service's core promise: every
// answer a reader ever observes is exactly reproducible from some
// published epoch snapshot — never a torn mix of two ingest states. The
// reference answers per epoch are precomputed single-threaded from the
// identical event sequence, so the assertion is bitwise equality.
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "datagen/weather.h"
#include "storage/query_service.h"

namespace sbr {
namespace {

constexpr size_t kChunkLen = 128;
constexpr size_t kMBase = 256;

/// Encodes `num_chunks` weather chunks into transmissions.
std::vector<core::Transmission> EncodeChunks(size_t num_chunks,
                                             uint64_t seed) {
  datagen::WeatherOptions wopts;
  wopts.length = num_chunks * kChunkLen;
  wopts.seed = seed;
  const datagen::Dataset feed = datagen::GenerateWeather(wopts);
  const size_t num_signals = feed.num_signals();
  const size_t n = num_signals * kChunkLen;

  core::EncoderOptions eopts;
  eopts.total_band = n / 8;
  eopts.m_base = kMBase;
  core::SbrEncoder encoder(eopts);

  std::vector<core::Transmission> out;
  out.reserve(num_chunks);
  std::vector<double> chunk(n);
  for (size_t c = 0; c < num_chunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = feed.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok()) return out;
    out.push_back(std::move(*t));
  }
  return out;
}

storage::QueryServiceOptions ServiceOptions() {
  storage::QueryServiceOptions opts;
  opts.m_base = kMBase;
  return opts;
}

/// One writer event: ingest the next transmission, or declare a gap.
struct Event {
  bool gap = false;
  size_t tx_index = 0;
};

/// The canonical probe: last-chunk aggregate + last point of the prefix
/// published at one epoch. `ok == false` answers carry the status code.
struct RefAnswer {
  size_t num_chunks = 0;
  bool agg_ok = false;
  StatusCode agg_code = StatusCode::kOk;
  double agg_sum = 0.0;
  size_t agg_count = 0;
  bool point_ok = false;
  double point = 0.0;
};

RefAnswer ProbeSnapshot(const storage::SensorSnapshot& snap) {
  RefAnswer r;
  r.num_chunks = snap.compressed.num_chunks();
  const size_t len = snap.compressed.history_len();
  auto agg = snap.compressed.Aggregate(0, len - kChunkLen, len);
  r.agg_ok = agg.ok();
  r.agg_code = agg.status().code();
  if (agg.ok()) {
    r.agg_sum = agg->sum;
    r.agg_count = agg->count;
  }
  auto point = snap.compressed.Value(0, len - 1);
  r.point_ok = point.ok();
  if (point.ok()) r.point = *point;
  return r;
}

// N reader threads race one ingest thread appending chunks and gaps.
// Readers pin every observed answer to the published epoch they loaded,
// and the answer must be bitwise identical to the single-threaded
// reference for that epoch.
TEST(QueryServiceConcurrency, ReadersSeeOnlyPublishedEpochs) {
  constexpr size_t kChunks = 32;
  constexpr size_t kReaders = 4;
  const auto txs = EncodeChunks(kChunks, 2024);
  ASSERT_EQ(txs.size(), kChunks);

  // Event schedule: a gap every 9th event, transmissions otherwise.
  std::vector<Event> events;
  size_t next_tx = 0;
  while (next_tx < txs.size()) {
    if (!events.empty() && events.size() % 9 == 0) {
      events.push_back({true, 0});
    } else {
      events.push_back({false, next_tx++});
    }
  }

  // Single-threaded reference: replay the same events into a private
  // service and capture the probe answers after every publish. Epoch e is
  // published after exactly e mutations, so refs[e] is the truth for it.
  std::vector<RefAnswer> refs(events.size() + 1);
  {
    storage::QueryService ref_service(ServiceOptions());
    for (size_t e = 0; e < events.size(); ++e) {
      if (events[e].gap) {
        ASSERT_TRUE(ref_service.MarkGap(0).ok());
      } else {
        ASSERT_TRUE(ref_service.Ingest(0, txs[events[e].tx_index]).ok());
      }
      auto snap = ref_service.Snapshot(0);
      ASSERT_NE(snap, nullptr);
      ASSERT_EQ(snap->epoch, e + 1);
      refs[e + 1] = ProbeSnapshot(*snap);
    }
  }

  storage::QueryService service(ServiceOptions());
  std::atomic<bool> done{false};
  std::atomic<uint64_t> observations{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto snap = service.Snapshot(0);
        if (snap == nullptr) continue;
        const uint64_t e = snap->epoch;
        if (e == 0 || e >= refs.size()) {
          failures.fetch_add(1);
          break;
        }
        const RefAnswer expect = refs[e];
        const RefAnswer got = ProbeSnapshot(*snap);
        if (got.num_chunks != expect.num_chunks ||
            got.agg_ok != expect.agg_ok || got.agg_code != expect.agg_code ||
            got.agg_sum != expect.agg_sum ||
            got.agg_count != expect.agg_count ||
            got.point_ok != expect.point_ok || got.point != expect.point) {
          failures.fetch_add(1);
          break;
        }
        observations.fetch_add(1, std::memory_order_relaxed);
        // Exercise the service-level (cached) paths concurrently too; the
        // answers come from whatever epoch is current, so only typed
        // status sanity is asserted here.
        auto agg = service.Aggregate(0, 0, 0, kChunkLen);
        if (!agg.ok()) {
          failures.fetch_add(1);
          break;
        }
        (void)service.AggregateBatch(
            0, {{0, 0, kChunkLen}, {0, kChunkLen / 2, 2 * kChunkLen}});
      }
    });
  }

  for (const Event& ev : events) {
    if (ev.gap) {
      ASSERT_TRUE(service.MarkGap(0).ok());
    } else {
      ASSERT_TRUE(service.Ingest(0, txs[ev.tx_index]).ok());
    }
  }
  // Ingest can outrun reader-thread startup on a loaded machine; the final
  // snapshot stays valid, so wait until every reader has validated at
  // least one epoch (or a reader already failed) before releasing them.
  while (failures.load() == 0 && observations.load() < kReaders) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(service.epoch(0), events.size());
  EXPECT_EQ(service.counters().publishes, events.size());

  // The final epoch must agree with the reference end state too.
  auto snap = service.Snapshot(0);
  ASSERT_NE(snap, nullptr);
  const RefAnswer last = ProbeSnapshot(*snap);
  EXPECT_EQ(last.agg_sum, refs.back().agg_sum);
  EXPECT_EQ(last.num_chunks, refs.back().num_chunks);
}

TEST(QueryService, SnapshotsAreImmutableUnderFurtherIngest) {
  const auto txs = EncodeChunks(4, 7);
  ASSERT_EQ(txs.size(), 4u);
  storage::QueryService service(ServiceOptions());
  ASSERT_TRUE(service.Ingest(0, txs[0]).ok());
  ASSERT_TRUE(service.Ingest(0, txs[1]).ok());

  auto old_snap = service.Snapshot(0);
  ASSERT_NE(old_snap, nullptr);
  EXPECT_EQ(old_snap->epoch, 2u);
  EXPECT_EQ(old_snap->compressed.num_chunks(), 2u);
  auto before = old_snap->compressed.Aggregate(0, 0, 2 * kChunkLen);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(service.Ingest(0, txs[2]).ok());
  ASSERT_TRUE(service.MarkGap(0).ok());

  // The old snapshot is frozen: same chunk count, same answers, while the
  // service has moved on by two epochs.
  EXPECT_EQ(old_snap->compressed.num_chunks(), 2u);
  auto after = old_snap->compressed.Aggregate(0, 0, 2 * kChunkLen);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->sum, after->sum);
  EXPECT_EQ(service.epoch(0), 4u);
  EXPECT_EQ(service.Snapshot(0)->compressed.num_chunks(), 4u);
}

TEST(QueryService, AggregateCacheHitsWithinEpochInvalidatesAcross) {
  const auto txs = EncodeChunks(3, 11);
  ASSERT_EQ(txs.size(), 3u);
  storage::QueryService service(ServiceOptions());
  ASSERT_TRUE(service.Ingest(0, txs[0]).ok());
  ASSERT_TRUE(service.Ingest(0, txs[1]).ok());

  auto first = service.Aggregate(0, 0, 0, kChunkLen);
  ASSERT_TRUE(first.ok());
  auto second = service.Aggregate(0, 0, 0, kChunkLen);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->sum, second->sum);
  storage::QueryServiceCounters c = service.counters();
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.cache_hits, 1u);

  // A new epoch changes the cache key: the same range misses once, then
  // hits again.
  ASSERT_TRUE(service.Ingest(0, txs[2]).ok());
  ASSERT_TRUE(service.Aggregate(0, 0, 0, kChunkLen).ok());
  ASSERT_TRUE(service.Aggregate(0, 0, 0, kChunkLen).ok());
  c = service.counters();
  EXPECT_EQ(c.cache_misses, 2u);
  EXPECT_EQ(c.cache_hits, 2u);

  // cache_shards = 0 disables caching entirely.
  storage::QueryServiceOptions nocache = ServiceOptions();
  nocache.cache_shards = 0;
  storage::QueryService plain(nocache);
  ASSERT_TRUE(plain.Ingest(0, txs[0]).ok());
  ASSERT_TRUE(plain.Aggregate(0, 0, 0, kChunkLen).ok());
  ASSERT_TRUE(plain.Aggregate(0, 0, 0, kChunkLen).ok());
  EXPECT_EQ(plain.counters().cache_hits, 0u);
  EXPECT_EQ(plain.counters().cache_misses, 0u);
}

TEST(QueryService, BatchReportsPerQueryFailuresAndCountsDataLoss) {
  const auto txs = EncodeChunks(3, 13);
  ASSERT_EQ(txs.size(), 3u);
  storage::QueryService service(ServiceOptions());
  ASSERT_TRUE(service.Ingest(0, txs[0]).ok());
  ASSERT_TRUE(service.MarkGap(0).ok());
  ASSERT_TRUE(service.Ingest(0, txs[1]).ok());

  // One good range, one gap-touching range, one out-of-range: the batch
  // answers each on its own, instead of failing wholesale.
  const std::vector<storage::QueryService::RangeQuery> batch = {
      {0, 0, kChunkLen},                       // clean first chunk
      {0, kChunkLen, 2 * kChunkLen},           // the gap chunk
      {0, 0, 100 * kChunkLen},                 // past the end
  };
  auto answers = service.AggregateBatch(0, batch);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_TRUE(answers[0].ok());
  EXPECT_EQ(answers[1].status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(answers[2].status().code(), StatusCode::kOutOfRange);

  const storage::QueryServiceCounters c = service.counters();
  EXPECT_EQ(c.dataloss, 1u);
  EXPECT_EQ(c.queries, 3u);

  // Reconstruct and Point report DataLoss through the same counter.
  EXPECT_EQ(
      service.Reconstruct(0, 0, kChunkLen, kChunkLen + 1).status().code(),
      StatusCode::kDataLoss);
  EXPECT_EQ(service.Point(0, 0, kChunkLen).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(service.counters().dataloss, 3u);
}

TEST(QueryService, UnknownSensorIsNotFound) {
  storage::QueryService service(ServiceOptions());
  EXPECT_EQ(service.Snapshot(9), nullptr);
  EXPECT_EQ(service.epoch(9), 0u);
  EXPECT_EQ(service.Aggregate(9, 0, 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Reconstruct(9, 0, 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Point(9, 0, 0).status().code(), StatusCode::kNotFound);
  auto batch = service.AggregateBatch(9, {{0, 0, 1}});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.num_sensors(), 0u);
}

TEST(QueryService, MultipleSensorsPublishIndependently) {
  const auto txs = EncodeChunks(2, 17);
  ASSERT_EQ(txs.size(), 2u);
  storage::QueryService service(ServiceOptions());
  ASSERT_TRUE(service.Ingest(5, txs[0]).ok());
  ASSERT_TRUE(service.Ingest(7, txs[0]).ok());
  ASSERT_TRUE(service.Ingest(7, txs[1]).ok());
  EXPECT_EQ(service.num_sensors(), 2u);
  EXPECT_EQ(service.epoch(5), 1u);
  EXPECT_EQ(service.epoch(7), 2u);
  EXPECT_EQ(service.Snapshot(5)->compressed.num_chunks(), 1u);
  EXPECT_EQ(service.Snapshot(7)->compressed.num_chunks(), 2u);
}

}  // namespace
}  // namespace sbr
