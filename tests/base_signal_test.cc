// Unit tests for the slot-organized base-signal buffer: placement planning,
// LFU / FIFO / random eviction, use-count bookkeeping and bounds checking.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/base_signal.h"

namespace sbr::core {
namespace {

std::vector<double> Vals(size_t w, double fill) {
  return std::vector<double>(w, fill);
}

TEST(BaseSignal, GeometryFromCapacity) {
  BaseSignal bs(/*w=*/10, /*capacity_values=*/35);
  EXPECT_EQ(bs.w(), 10u);
  EXPECT_EQ(bs.num_slots(), 3u);  // floor(35 / 10)
  EXPECT_EQ(bs.used_slots(), 0u);
  EXPECT_TRUE(bs.empty());
  EXPECT_TRUE(bs.values().empty());
}

TEST(BaseSignal, AppendGrowsFlatView) {
  BaseSignal bs(4, 16);
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  ASSERT_TRUE(bs.Overwrite(1, Vals(4, 2.0)).ok());
  EXPECT_EQ(bs.used_slots(), 2u);
  const auto v = bs.values();
  ASSERT_EQ(v.size(), 8u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[7], 2.0);
}

TEST(BaseSignal, OverwriteExistingSlotKeepsSize) {
  BaseSignal bs(4, 16);
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 9.0)).ok());
  EXPECT_EQ(bs.used_slots(), 1u);
  EXPECT_DOUBLE_EQ(bs.values()[0], 9.0);
}

TEST(BaseSignal, RejectsWrongWidthAndGaps) {
  BaseSignal bs(4, 16);
  EXPECT_FALSE(bs.Overwrite(0, Vals(3, 1.0)).ok());  // wrong width
  EXPECT_FALSE(bs.Overwrite(2, Vals(4, 1.0)).ok());  // would leave a gap
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  EXPECT_FALSE(bs.Overwrite(5, Vals(4, 1.0)).ok());  // beyond capacity
}

TEST(BaseSignal, PlanPlacementPrefersFreeSlots) {
  BaseSignal bs(4, 16);  // 4 slots
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  const auto plan = bs.PlanPlacement(2);
  EXPECT_EQ(plan, (std::vector<size_t>{1, 2}));
}

TEST(BaseSignal, PlanPlacementEvictsLfu) {
  BaseSignal bs(4, 12);  // 3 slots
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  ASSERT_TRUE(bs.Overwrite(1, Vals(4, 2.0)).ok());
  ASSERT_TRUE(bs.Overwrite(2, Vals(4, 3.0)).ok());
  // Slot 0 used twice, slot 2 once, slot 1 never.
  bs.RecordUse(0, 4);
  bs.RecordUse(0, 4);
  bs.RecordUse(8, 4);
  const auto plan = bs.PlanPlacement(2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], 1u);  // least used
  EXPECT_EQ(plan[1], 2u);  // next least
}

TEST(BaseSignal, LfuTieBreaksOnAge) {
  BaseSignal bs(2, 6);  // 3 slots
  ASSERT_TRUE(bs.Overwrite(0, Vals(2, 1.0)).ok());
  ASSERT_TRUE(bs.Overwrite(1, Vals(2, 2.0)).ok());
  ASSERT_TRUE(bs.Overwrite(2, Vals(2, 3.0)).ok());
  // All use counts zero: the oldest insertion (slot 0) goes first.
  const auto plan = bs.PlanPlacement(1);
  EXPECT_EQ(plan[0], 0u);
}

TEST(BaseSignal, OverwriteResetsUseCount) {
  BaseSignal bs(4, 8);
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  bs.RecordUse(0, 4);
  EXPECT_EQ(bs.use_count(0), 1u);
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 2.0)).ok());
  EXPECT_EQ(bs.use_count(0), 0u);
}

TEST(BaseSignal, RecordUseSpansSlots) {
  BaseSignal bs(4, 16);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(bs.Overwrite(s, Vals(4, 1.0)).ok());
  }
  // Range [3, 3 + 6) covers slots 0, 1, 2.
  bs.RecordUse(3, 6);
  EXPECT_EQ(bs.use_count(0), 1u);
  EXPECT_EQ(bs.use_count(1), 1u);
  EXPECT_EQ(bs.use_count(2), 1u);
  EXPECT_EQ(bs.use_count(3), 0u);
}

TEST(BaseSignal, RecordUseZeroLengthIsNoop) {
  BaseSignal bs(4, 8);
  ASSERT_TRUE(bs.Overwrite(0, Vals(4, 1.0)).ok());
  bs.RecordUse(0, 0);
  EXPECT_EQ(bs.use_count(0), 0u);
}

TEST(BaseSignal, FifoEvictsOldestRegardlessOfUse) {
  BaseSignal bs(2, 6, EvictionPolicy::kFifo);
  ASSERT_TRUE(bs.Overwrite(0, Vals(2, 1.0)).ok());
  ASSERT_TRUE(bs.Overwrite(1, Vals(2, 2.0)).ok());
  ASSERT_TRUE(bs.Overwrite(2, Vals(2, 3.0)).ok());
  bs.RecordUse(0, 2);  // heavy use on slot 0 does not matter under FIFO
  bs.RecordUse(0, 2);
  const auto plan = bs.PlanPlacement(1);
  EXPECT_EQ(plan[0], 0u);
}

TEST(BaseSignal, RandomEvictionIsValidAndDeterministic) {
  auto run = [] {
    BaseSignal bs(2, 8, EvictionPolicy::kRandom);
    for (size_t s = 0; s < 4; ++s) {
      EXPECT_TRUE(bs.Overwrite(s, Vals(2, 1.0)).ok());
    }
    return bs.PlanPlacement(2);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same seed stream -> same plan
  std::set<size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 2u);
  for (size_t s : a) EXPECT_LT(s, 4u);
}

TEST(BaseSignal, PlanThenOverwriteFullCycle) {
  BaseSignal bs(3, 9);  // 3 slots
  // Fill, use, then request a 2-slot placement and write through it.
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(bs.Overwrite(s, Vals(3, static_cast<double>(s))).ok());
  }
  bs.RecordUse(0, 3);   // slot 0 used
  bs.RecordUse(6, 3);   // slot 2 used
  const auto plan = bs.PlanPlacement(2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], 1u);  // LFU: slot 1 never used
  for (size_t i = 0; i < plan.size(); ++i) {
    ASSERT_TRUE(bs.Overwrite(plan[i], Vals(3, 100.0 + i)).ok());
  }
  EXPECT_EQ(bs.used_slots(), 3u);
  EXPECT_DOUBLE_EQ(bs.values()[plan[0] * 3], 100.0);
}

}  // namespace
}  // namespace sbr::core
