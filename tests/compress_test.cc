// Unit tests for the baseline compressors: Haar wavelet transforms and
// top-B selection, the DCT compressor, histograms, the piecewise linear
// baseline and the SVD base construction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "compress/dct_compressor.h"
#include "compress/histogram.h"
#include "compress/linear_model.h"
#include "compress/sbr_compressor.h"
#include "compress/svd_base.h"
#include "compress/wavelet.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::compress {
namespace {

std::vector<double> NoisySine(size_t n, uint64_t seed, double noise = 0.1) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 3.0 * std::sin(i * 0.1) + std::cos(i * 0.37) +
           rng.Gaussian(0, noise);
  }
  return y;
}

// ------------------------------------------------------------------ Haar

TEST(Haar, ForwardInverseRoundTrip) {
  Rng rng(1);
  for (size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.Uniform(-5, 5);
    std::vector<double> c = x;
    HaarForward(c);
    HaarInverse(c);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(c[i], x[i], 1e-10) << "n=" << n;
    }
  }
}

TEST(Haar, OrthonormalPreservesEnergy) {
  Rng rng(2);
  std::vector<double> x(128);
  for (auto& v : x) v = rng.Uniform(-5, 5);
  std::vector<double> c = x;
  HaarForward(c);
  double ex = 0, ec = 0;
  for (double v : x) ex += v * v;
  for (double v : c) ec += v * v;
  EXPECT_NEAR(ec, ex, 1e-8);
}

TEST(Haar, ConstantSignalSingleCoefficient) {
  std::vector<double> c(64, 2.0);
  HaarForward(c);
  EXPECT_NEAR(c[0], 2.0 * 8.0, 1e-10);  // 2 * sqrt(64)
  for (size_t i = 1; i < c.size(); ++i) EXPECT_NEAR(c[i], 0.0, 1e-12);
}

TEST(Haar, PaddedHandlesArbitraryLength) {
  std::vector<double> x{1, 2, 3, 4, 5};
  const auto c = HaarForwardPadded(x);
  EXPECT_EQ(c.size(), 8u);
}

TEST(KeepTopCoefficients, KeepsLargestMagnitudes) {
  std::vector<double> c{5, -1, 0.5, -7, 2, 0};
  KeepTopCoefficients(c, 2);
  EXPECT_EQ(c, (std::vector<double>{5, 0, 0, -7, 0, 0}));
}

TEST(KeepTopCoefficients, KeepAllWhenBudgetLarge) {
  std::vector<double> c{1, 2, 3};
  const size_t kept = KeepTopCoefficients(c, 10);
  EXPECT_EQ(kept, 3u);
  EXPECT_EQ(c, (std::vector<double>{1, 2, 3}));
}

TEST(KeepTopCoefficients, TopBIsL2OptimalForOrthonormalBasis) {
  // Reconstruction error must equal the energy of the dropped
  // coefficients (Parseval), which is minimal for top-B selection.
  Rng rng(3);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.Uniform(-2, 2);
  std::vector<double> c = x;
  HaarForward(c);
  std::vector<double> kept = c;
  KeepTopCoefficients(kept, 8);
  double dropped_energy = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    if (kept[i] == 0.0 && c[i] != 0.0) dropped_energy += c[i] * c[i];
  }
  std::vector<double> rec = kept;
  HaarInverse(rec);
  EXPECT_NEAR(SumSquaredError(x, rec), dropped_energy, 1e-8);
}

// ------------------------------------------------- WaveletCompressor

TEST(WaveletCompressor, BudgetMonotonicity) {
  const auto y = NoisySine(512, 4);
  WaveletCompressor wc;
  double prev = 1e300;
  for (size_t budget : {32u, 64u, 128u, 256u}) {
    auto rec = wc.CompressAndReconstruct(y, 1, budget);
    ASSERT_TRUE(rec.ok());
    const double err = SumSquaredError(y, *rec);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(WaveletCompressor, FullBudgetIsNearLossless) {
  const auto y = NoisySine(256, 5);
  WaveletCompressor wc;
  auto rec = wc.CompressAndReconstruct(y, 1, 2 * y.size());
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-8);
}

TEST(WaveletCompressor, AllLayoutsProduceValidOutput) {
  Rng rng(6);
  std::vector<double> y(4 * 128);
  for (auto& v : y) v = rng.Uniform(-3, 3);
  for (WaveletLayout layout : {WaveletLayout::kConcat,
                               WaveletLayout::kPerSignal,
                               WaveletLayout::kTwoD}) {
    WaveletCompressor wc(layout);
    auto rec = wc.CompressAndReconstruct(y, 4, 100);
    ASSERT_TRUE(rec.ok()) << wc.Name();
    EXPECT_EQ(rec->size(), y.size());
    for (double v : *rec) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(WaveletCompressor, PerSignalAdaptsAllocationAcrossSignals) {
  // Signal 0 constant, signal 1 rich: per-signal with global selection
  // must not waste coefficients on signal 0.
  Rng rng(7);
  std::vector<double> y(2 * 128, 1.0);
  for (size_t i = 128; i < 256; ++i) y[i] = rng.Uniform(-10, 10);
  WaveletCompressor per(WaveletLayout::kPerSignal);
  auto rec = per.CompressAndReconstruct(y, 2, 64);
  ASSERT_TRUE(rec.ok());
  // Constant signal reconstructed near-perfectly.
  std::vector<double> truth0(y.begin(), y.begin() + 128);
  std::vector<double> approx0(rec->begin(), rec->begin() + 128);
  EXPECT_NEAR(SumSquaredError(truth0, approx0), 0.0, 1e-9);
}

TEST(WaveletCompressor, RejectsZeroBudget) {
  std::vector<double> y(16, 1.0);
  WaveletCompressor wc;
  EXPECT_FALSE(wc.CompressAndReconstruct(y, 1, 1).ok());
}

// ----------------------------------------------------- DctCompressor

TEST(DctCompressor, SmoothSignalCompressesWell) {
  std::vector<double> y(512);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::cos((2.0 * i + 1.0) * std::numbers::pi * 3 / 1024.0);
  }
  DctCompressor dc;
  auto rec = dc.CompressAndReconstruct(y, 1, 8);  // 4 coefficients
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-9);
}

TEST(DctCompressor, BudgetMonotonicity) {
  const auto y = NoisySine(512, 8);
  DctCompressor dc;
  double prev = 1e300;
  for (size_t budget : {16u, 64u, 256u}) {
    auto rec = dc.CompressAndReconstruct(y, 1, budget);
    ASSERT_TRUE(rec.ok());
    const double err = SumSquaredError(y, *rec);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(DctCompressor, PerSignalLayoutValid) {
  Rng rng(9);
  std::vector<double> y(3 * 100);
  for (auto& v : y) v = rng.Uniform(0, 1);
  DctCompressor dc(DctLayout::kPerSignal);
  auto rec = dc.CompressAndReconstruct(y, 3, 60);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), y.size());
}

// -------------------------------------------------------- Histograms

TEST(Histogram, EquiWidthConstantDataIsExact) {
  std::vector<double> y(100, 7.0);
  HistogramCompressor hc(HistogramKind::kEquiWidth);
  auto rec = hc.CompressAndReconstruct(y, 1, 10);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-12);
}

TEST(Histogram, AllKindsCoverSignalAndAreFinite) {
  const auto y = NoisySine(300, 10);
  for (HistogramKind kind : {HistogramKind::kEquiDepth,
                             HistogramKind::kEquiWidth,
                             HistogramKind::kGreedy}) {
    HistogramCompressor hc(kind);
    auto rec = hc.CompressAndReconstruct(y, 1, 40);
    ASSERT_TRUE(rec.ok()) << hc.Name();
    ASSERT_EQ(rec->size(), y.size());
    for (double v : *rec) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Histogram, GreedyBeatsEquiWidthOnPiecewiseConstantData) {
  // Step function with unequal step lengths: greedy splitting finds the
  // step edges, equi-width cannot.
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) y.push_back(0.0);
  for (int i = 0; i < 17; ++i) y.push_back(10.0);
  for (int i = 0; i < 139; ++i) y.push_back(-5.0);
  HistogramCompressor greedy(HistogramKind::kGreedy);
  HistogramCompressor width(HistogramKind::kEquiWidth);
  auto g = greedy.CompressAndReconstruct(y, 1, 16);
  auto w = width.CompressAndReconstruct(y, 1, 16);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(w.ok());
  EXPECT_LT(SumSquaredError(y, *g), SumSquaredError(y, *w));
}

TEST(Histogram, MoreBucketsNeverHurtGreedy) {
  const auto y = NoisySine(256, 11);
  HistogramCompressor hc(HistogramKind::kGreedy);
  double prev = 1e300;
  for (size_t budget : {8u, 16u, 64u, 128u}) {
    auto rec = hc.CompressAndReconstruct(y, 1, budget);
    ASSERT_TRUE(rec.ok());
    const double err = SumSquaredError(y, *rec);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

// ------------------------------------------------------- LinearModel

TEST(LinearModel, PiecewiseLinearDataIsExact) {
  std::vector<double> y;
  for (int i = 0; i < 64; ++i) y.push_back(2.0 * i);
  for (int i = 0; i < 64; ++i) y.push_back(100.0 - i);
  LinearModelCompressor lm;
  auto rec = lm.CompressAndReconstruct(y, 1, 12);  // 4 intervals
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-9);
}

TEST(LinearModel, FinerBudgetHelps) {
  const auto y = NoisySine(300, 12);
  LinearModelCompressor lm;
  auto fine = lm.CompressAndReconstruct(y, 1, 30);
  auto coarse = lm.CompressAndReconstruct(y, 1, 15);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  EXPECT_LT(SumSquaredError(y, *fine), SumSquaredError(y, *coarse));
}

// ---------------------------------------------------------- SVD base

TEST(SvdBase, ReturnsUnitNormIntervals) {
  Rng rng(13);
  std::vector<double> y(4 * 64);
  for (auto& v : y) v = rng.Uniform(-2, 2);
  const auto base = GetBaseSvd(y, 4, 8, 3);
  ASSERT_EQ(base.size(), 3u);
  for (const auto& cbi : base) {
    ASSERT_EQ(cbi.values.size(), 8u);
    double norm = 0;
    for (double v : cbi.values) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-8);
  }
  // Singular values (benefits) sorted descending.
  EXPECT_GE(base[0].benefit, base[1].benefit);
  EXPECT_GE(base[1].benefit, base[2].benefit);
}

TEST(SvdBase, CapturesSharedStructure) {
  // All windows proportional to one pattern: the first singular vector
  // must align with it.
  const size_t w = 16;
  std::vector<double> pattern(w);
  for (size_t i = 0; i < w; ++i) {
    pattern[i] = std::sin(2.0 * M_PI * i / w);
  }
  std::vector<double> y;
  for (int rep = 1; rep <= 8; ++rep) {
    for (size_t i = 0; i < w; ++i) y.push_back(rep * pattern[i]);
  }
  const auto base = GetBaseSvd(y, 1, w, 1);
  ASSERT_EQ(base.size(), 1u);
  double dot = 0, norm_p = 0;
  for (size_t i = 0; i < w; ++i) {
    dot += base[0].values[i] * pattern[i];
    norm_p += pattern[i] * pattern[i];
  }
  EXPECT_NEAR(std::abs(dot) / std::sqrt(norm_p), 1.0, 1e-6);
}

TEST(SvdBase, ProviderAdapterMatchesDirectCall) {
  Rng rng(14);
  std::vector<double> y(2 * 64);
  for (auto& v : y) v = rng.Uniform(-1, 1);
  const auto direct = GetBaseSvd(y, 2, 8, 2);
  const auto via_provider = SvdBaseProvider()(y, 2, 8, 2);
  ASSERT_EQ(direct.size(), via_provider.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].values, via_provider[i].values);
  }
}

// ----------------------------------------------------- SbrCompressor

TEST(SbrCompressor, BudgetMismatchRejected) {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  SbrCompressor sc(opts);
  const auto y = NoisySine(256, 15);
  EXPECT_FALSE(sc.CompressAndReconstruct(y, 1, 99).ok());
  EXPECT_TRUE(sc.CompressAndReconstruct(y, 1, 100).ok());
}

TEST(SbrCompressor, ReconstructionErrorMatchesStats) {
  core::EncoderOptions opts;
  opts.total_band = 80;
  opts.m_base = 64;
  SbrCompressor sc(opts);
  const auto y = NoisySine(256, 16);
  auto rec = sc.CompressAndReconstruct(y, 1, 80);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), sc.last_stats().total_error,
              1e-6 * std::max(1.0, sc.last_stats().total_error));
}

}  // namespace
}  // namespace sbr::compress
