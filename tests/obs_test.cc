// Observability subsystem tests: registry semantics (counter / gauge /
// histogram, merge-on-read under concurrent writers — the `parallel`
// label runs this binary under TSan), span nesting determinism across
// encoder thread counts, the runtime/compile-time gates, and the stage
// report schema the benches emit (obs/export.h). Every test leaves the
// global registry and trace collector clean so ordering never matters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/decoder.h"
#include "core/encoder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sbr::obs {
namespace {

// Scrubs global observability state around each test.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAll();
    TraceCollector::Global().Clear();
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().ResetAll();
    TraceCollector::Global().Clear();
  }
};

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.counter");
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7u);
  // Registration is idempotent: same name, same object.
  EXPECT_EQ(&reg.GetCounter("test.counter"), &c);

  Gauge& g = reg.GetGauge("test.gauge");
  g.Set(10);
  g.Set(4);
  EXPECT_EQ(g.Value(), 4);
  EXPECT_EQ(g.Max(), 10);

  Histogram& h = reg.GetHistogram("test.hist");
  h.Record(0);
  h.Record(1);
  h.Record(1000);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 1001u);
  const auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), Histogram::kNumBuckets);
  EXPECT_EQ(buckets[Histogram::BucketIndex(0)], 1u);
  EXPECT_EQ(buckets[Histogram::BucketIndex(1)], 1u);
  EXPECT_EQ(buckets[Histogram::BucketIndex(1000)], 1u);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.ValueOf("test.counter"), 7);
  EXPECT_EQ(snap.ValueOf("test.gauge"), 4);
  EXPECT_EQ(snap.ValueOf("test.hist"), 3);
  EXPECT_EQ(snap.Find("test.absent"), nullptr);

  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST_F(ObsTest, HistogramBucketLayout) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i);
    EXPECT_EQ(Histogram::BucketIndex(2 * lo - 1), i);
    EXPECT_EQ(Histogram::BucketIndex(2 * lo), i + 1);
  }
  // The last bucket absorbs everything beyond the table.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}),
            Histogram::kNumBuckets - 1);
}

TEST_F(ObsTest, MergeOnReadIsExactUnderConcurrentWriters) {
  // Many raw threads (more than kMaxShards, so shards are shared) hammer
  // one counter and one histogram; merge-on-read must account for every
  // single write. TSan runs this via the `parallel` label.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.mt.counter");
  Histogram& h = reg.GetHistogram("test.mt.hist");

  constexpr size_t kThreads = 24;
  constexpr size_t kOpsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        c.Add(1);
        h.Record(t);
        if (i % 1000 == 0) {
          // Interleave reads with the writes: a mid-run merge must be a
          // valid partial sum, never a torn or out-of-range value.
          (void)c.Value();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.Value(), kThreads * kOpsPerThread);
  EXPECT_EQ(h.Count(), kThreads * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.Buckets()) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kOpsPerThread);
}

TEST_F(ObsTest, RuntimeGateStopsMacroSites) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  MetricsRegistry& reg = MetricsRegistry::Global();
  SetEnabled(false);
  SBR_OBS_COUNT("test.gated", 1);
  EXPECT_EQ(reg.Snapshot().ValueOf("test.gated"), 0);
  SetEnabled(true);
  SBR_OBS_COUNT("test.gated", 1);
  SBR_OBS_COUNT("test.gated", 2);
  EXPECT_EQ(reg.Snapshot().ValueOf("test.gated"), 3);
  SetEnabled(false);
  SBR_OBS_COUNT("test.gated", 5);
  EXPECT_EQ(reg.Snapshot().ValueOf("test.gated"), 3);
}

TEST_F(ObsTest, CompiledOutMacrosAreInert) {
  if (CompiledIn()) GTEST_SKIP() << "only meaningful in a noobs build";
  // In an SBR_OBS=0 build the gate cannot be turned on and macro sites
  // vanish; the registry API itself still works (asserted by the tests
  // above), so tooling compiles in both modes.
  SetEnabled(true);
  EXPECT_FALSE(Enabled());
  SBR_OBS_COUNT("test.compiled.out", 1);
  SBR_OBS_SPAN(span, "test.compiled.out.span");
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().ValueOf("test.compiled.out"),
            0);
  EXPECT_TRUE(TraceCollector::Global().Drain().empty());
}

// Encodes one deterministic weather-like chunk at the given thread count
// with observability enabled, returning the drained span events.
std::vector<SpanEvent> TraceOneEncode(size_t threads) {
  TraceCollector::Global().Clear();
  EnabledScope enabled;
  const size_t num_signals = 4, m = 256;
  std::vector<double> y(num_signals * m);
  Rng rng(99);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.07) * 3 + rng.Gaussian(0, 0.2);
  }
  core::EncoderOptions opts;
  opts.total_band = y.size() / 8;
  opts.m_base = 128;
  opts.threads = threads;
  core::SbrEncoder enc(opts);
  auto t = enc.EncodeChunk(y, num_signals);
  EXPECT_TRUE(t.ok());
  return TraceCollector::Global().Drain();
}

void CheckWellFormed(const std::vector<SpanEvent>& events) {
  ASSERT_FALSE(events.empty());
  // Per tid: seq strictly increasing in drain order, depths sane, and
  // every nested span completes within its enclosing stack (children
  // complete before parents, so a depth-d event may only follow depths
  // >= d - 1 ... any jump deeper than one level would mean a lost span).
  std::map<uint32_t, uint64_t> last_seq;
  std::map<uint32_t, uint32_t> last_depth;
  for (const SpanEvent& e : events) {
    ASSERT_NE(e.name, nullptr);
    if (last_seq.count(e.tid)) {
      EXPECT_LT(last_seq[e.tid], e.seq) << "seq must increase within a tid";
      EXPECT_LE(e.depth, last_depth[e.tid] + 1)
          << "nesting may deepen by at most one completed level";
    }
    last_seq[e.tid] = e.seq;
    last_depth[e.tid] = e.depth;
  }
}

TEST_F(ObsTest, SpanNestingIsWellFormedAndDeterministicAcrossThreads) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const auto events = TraceOneEncode(threads);
    CheckWellFormed(events);

    // The stage structure is deterministic: same stages, same counts, on
    // a repeat run at the same thread count (timings move, names do not).
    const auto again = TraceOneEncode(threads);
    CheckWellFormed(again);
    const auto agg1 = TraceCollector::Aggregate(events);
    const auto agg2 = TraceCollector::Aggregate(again);
    ASSERT_EQ(agg1.size(), agg2.size()) << "threads=" << threads;
    for (size_t i = 0; i < agg1.size(); ++i) {
      EXPECT_EQ(agg1[i].name, agg2[i].name) << "threads=" << threads;
      EXPECT_EQ(agg1[i].count, agg2[i].count)
          << agg1[i].name << " threads=" << threads;
    }

    // The single-threaded run nests everything on one tid; the encode
    // stages must be present in either mode.
    std::set<std::string> names;
    for (const auto& a : agg1) names.insert(a.name);
    EXPECT_TRUE(names.count("encode.chunk")) << "threads=" << threads;
    EXPECT_TRUE(names.count("encode.get_base")) << "threads=" << threads;
    EXPECT_TRUE(names.count("encode.search")) << "threads=" << threads;
    EXPECT_TRUE(names.count("encode.approx")) << "threads=" << threads;
    if (threads == 1) {
      std::set<uint32_t> tids;
      for (const auto& e : events) tids.insert(e.tid);
      EXPECT_EQ(tids.size(), 1u);
    }
  }

  // Stage *names* also agree across thread counts (the stage set is a
  // property of the pipeline, not of the chunking).
  std::set<std::string> s1, s4;
  for (const auto& a : TraceCollector::Aggregate(TraceOneEncode(1))) {
    s1.insert(a.name);
  }
  for (const auto& a : TraceCollector::Aggregate(TraceOneEncode(4))) {
    s4.insert(a.name);
  }
  EXPECT_EQ(s1, s4);
}

TEST_F(ObsTest, EncodeCountersMirrorEncodeStats) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  EnabledScope enabled;
  const size_t num_signals = 3, m = 192;
  std::vector<double> y(num_signals * m);
  Rng rng(5);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.09) * 2 + rng.Gaussian(0, 0.25);
  }
  core::EncoderOptions opts;
  // Generous band: intervals must split down below 2W (W = sqrt(576) = 24)
  // or BestMap never runs a shift scan and the scan counters stay zero.
  opts.total_band = y.size() / 4;
  opts.m_base = 96;
  core::SbrEncoder enc(opts);
  auto t = enc.EncodeChunk(y, num_signals);
  ASSERT_TRUE(t.ok());
  const core::EncodeStats& stats = enc.last_stats();

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.ValueOf("encode.chunks"), 1);
  EXPECT_EQ(snap.ValueOf("encode.search_probes"),
            static_cast<int64_t>(stats.search_probes));
  EXPECT_EQ(snap.ValueOf("encode.inserted_cbis"),
            static_cast<int64_t>(stats.inserted_base_intervals));
  EXPECT_EQ(snap.ValueOf("encode.intervals"),
            static_cast<int64_t>(stats.num_intervals));
  EXPECT_EQ(snap.ValueOf("encode.workspace.moment_hits"),
            static_cast<int64_t>(stats.workspace.moment_hits));
  EXPECT_EQ(snap.ValueOf("encode.workspace.moment_misses"),
            static_cast<int64_t>(stats.workspace.moment_misses));
  EXPECT_GT(snap.ValueOf("encode.best_map.calls"), 0);
  EXPECT_GT(snap.ValueOf("encode.best_map.shifts_scanned"), 0);
}

TEST_F(ObsTest, StageReportSchemaAndAttribution) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  // The exact code path the benches call: an instrumented encode+decode,
  // then StageReportJson/Csv over the global registry and trace. Asserts
  // the documented schema of obs/export.h plus non-zero stage
  // attribution, which is what makes the bench artifacts meaningful.
  {
    EnabledScope enabled;
    const size_t num_signals = 4, m = 256;
    std::vector<double> y(num_signals * m);
    Rng rng(123);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(i * 0.05) * 5 + rng.Gaussian(0, 0.2);
    }
    core::EncoderOptions opts;
    opts.total_band = y.size() / 8;
    opts.m_base = 128;
    core::SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, num_signals);
    ASSERT_TRUE(t.ok());
    core::SbrDecoder dec(core::DecoderOptions{opts.m_base});
    auto d = dec.DecodeChunk(*t);
    ASSERT_TRUE(d.ok());
  }

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto events = TraceCollector::Global().Drain();
  const auto stages = TraceCollector::Aggregate(events);

  // JSON schema: both sections present, stages carry the four fields.
  const std::string json = StageReportJson(snap, stages);
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode.chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"avg_us\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  // CSV schema: header plus one row per metric and per stage.
  const std::string csv = StageReportCsv(snap, stages);
  EXPECT_EQ(csv.rfind("kind,name,value,aux\n", 0), 0u);
  EXPECT_NE(csv.find("counter,encode.chunks,1,"), std::string::npos);
  EXPECT_NE(csv.find("stage,encode.chunk,"), std::string::npos);

  // Non-zero attribution: the pipeline stages exist, were entered, and
  // consumed time; the interior stages are a subset of the chunk total.
  std::map<std::string, const StageAggregate*> by_name;
  for (const auto& s : stages) by_name[s.name] = &s;
  for (const char* stage :
       {"encode.chunk", "encode.get_base", "encode.search", "encode.approx",
        "decode.chunk"}) {
    ASSERT_TRUE(by_name.count(stage)) << stage;
    EXPECT_GT(by_name[stage]->count, 0u) << stage;
    EXPECT_GT(by_name[stage]->total_ns, 0u) << stage;
  }
  EXPECT_LE(by_name["encode.search"]->total_ns,
            by_name["encode.chunk"]->total_ns);
  EXPECT_GT(snap.ValueOf("decode.chunks"), 0);
}

TEST_F(ObsTest, ChromeTraceAndCsvExports) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  const auto events = TraceOneEncode(1);
  ASSERT_FALSE(events.empty());
  const std::string json = TraceCollector::ToChromeJson(events);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode.chunk\""), std::string::npos);
  const std::string csv = TraceCollector::ToCsv(events);
  EXPECT_EQ(csv.rfind("name,tid,depth,seq,start_us,duration_us\n", 0), 0u);
  // One row per event plus the header.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, events.size() + 1);
}

TEST_F(ObsTest, PoolMetricsAttributeChunks) {
  if (!CompiledIn()) GTEST_SKIP() << "instrumentation compiled out";
  EnabledScope enabled;
  std::atomic<size_t> touched{0};
  util::ParallelFor(4, 1000, [&](size_t, size_t begin, size_t end) {
    touched.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(touched.load(), 1000u);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // Caller + workers together ran every chunk; on a single-core host the
  // pool has no workers and the caller runs them all, so only the sum is
  // asserted.
  const int64_t chunks = snap.ValueOf("pool.caller_chunks") +
                         snap.ValueOf("pool.worker_chunks");
  EXPECT_EQ(chunks, static_cast<int64_t>(util::NumChunks(4, 1000)));
  EXPECT_EQ(snap.ValueOf("pool.parallel_fors"), 1);
}

}  // namespace
}  // namespace sbr::obs
