// Unit tests for the numerics substrate: FFT (pow-2 + Bluestein), fast DCT
// vs the naive oracle, Matrix algebra, the Jacobi eigensolver and the
// SVD-based right-singular-vector extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "linalg/dct.h"
#include "linalg/fft.h"
#include "linalg/jacobi.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/rng.h"

namespace sbr::linalg {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> NaiveDft(std::span<const Complex> x) {
  const size_t n = x.size();
  std::vector<Complex> out(n);
  for (size_t k = 0; k < n; ++k) {
    Complex sum(0, 0);
    for (size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j * k) / static_cast<double>(n);
      sum += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<Complex> RandomComplex(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  return v;
}

// ------------------------------------------------------------------- FFT

TEST(Fft, PowerOfTwoMatchesNaiveDft) {
  for (size_t n : {1u, 2u, 4u, 8u, 64u}) {
    const auto x = RandomComplex(n, 100 + n);
    const auto fast = Fft(x);
    const auto slow = NaiveDft(x);
    ASSERT_EQ(fast.size(), n);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-9) << "n=" << n;
    }
  }
}

TEST(Fft, BluesteinArbitraryLengthMatchesNaiveDft) {
  for (size_t n : {3u, 5u, 6u, 7u, 12u, 97u, 100u}) {
    const auto x = RandomComplex(n, 200 + n);
    const auto fast = Fft(x);
    const auto slow = NaiveDft(x);
    ASSERT_EQ(fast.size(), n);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8) << "n=" << n;
    }
  }
}

TEST(Fft, InverseRoundTrip) {
  for (size_t n : {1u, 2u, 8u, 5u, 97u, 128u}) {
    const auto x = RandomComplex(n, 300 + n);
    const auto back = Ifft(Fft(x));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9) << "n=" << n;
    }
  }
}

TEST(Fft, RealWrapperMatchesComplex) {
  std::vector<double> real{1, -2, 3.5, 0.25, 7};
  std::vector<Complex> as_complex(real.size());
  for (size_t i = 0; i < real.size(); ++i) as_complex[i] = Complex(real[i], 0);
  const auto a = FftReal(real);
  const auto b = Fft(as_complex);
  for (size_t i = 0; i < real.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Fft, EmptyInput) {
  EXPECT_TRUE(Fft(std::vector<Complex>{}).empty());
  EXPECT_TRUE(Ifft(std::vector<Complex>{}).empty());
}

TEST(Fft, ParsevalHolds) {
  const auto x = RandomComplex(64, 42);
  const auto fx = Fft(x);
  double time_energy = 0, freq_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : fx) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 64.0, 1e-6);
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

// ------------------------------------------------------------------- DCT

TEST(Dct, FastMatchesNaive) {
  Rng rng(7);
  for (size_t n : {1u, 2u, 3u, 8u, 17u, 64u, 100u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.Uniform(-10, 10);
    const auto fast = Dct2(x);
    const auto slow = Dct2Naive(x);
    ASSERT_EQ(fast.size(), n);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(fast[k], slow[k], 1e-8 * std::max(1.0, std::abs(slow[k])))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Dct, InverseRoundTrip) {
  Rng rng(8);
  for (size_t n : {1u, 2u, 5u, 16u, 33u, 128u}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.Uniform(-10, 10);
    const auto back = Idct2(Dct2(x));
    ASSERT_EQ(back.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], x[i], 1e-8) << "n=" << n;
    }
  }
}

TEST(Dct, OrthonormalPreservesEnergy) {
  Rng rng(9);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.Uniform(-5, 5);
  const auto c = DctOrthonormal(x);
  double ex = 0, ec = 0;
  for (double v : x) ex += v * v;
  for (double v : c) ec += v * v;
  EXPECT_NEAR(ec, ex, 1e-8);
  const auto back = IdctOrthonormal(c);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Dct, ConstantSignalConcentratesInDc) {
  std::vector<double> x(32, 4.0);
  const auto c = DctOrthonormal(x);
  for (size_t k = 1; k < c.size(); ++k) {
    EXPECT_NEAR(c[k], 0.0, 1e-10);
  }
  EXPECT_NEAR(c[0], 4.0 * std::sqrt(32.0), 1e-9);
}

TEST(Dct, PureCosineConcentratesInOneBin) {
  const size_t n = 64;
  std::vector<double> x(n);
  const size_t f = 5;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::cos((2.0 * i + 1.0) * std::numbers::pi * f / (2.0 * n));
  }
  const auto c = DctOrthonormal(x);
  for (size_t k = 0; k < n; ++k) {
    if (k == f) {
      EXPECT_GT(std::abs(c[k]), 1.0);
    } else {
      EXPECT_NEAR(c[k], 0.0, 1e-9);
    }
  }
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, BasicAccessAndRowViews) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 5;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 5.0);
  EXPECT_DOUBLE_EQ(m.Row(0)[1], 0.0);
  m.MutableRow(0)[1] = 9;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Matrix, FromFlatData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m.Col(1), (std::vector<double>{2, 4}));
}

TEST(Matrix, TransposeAndMultiply) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
  Matrix prod = a.Multiply(at);  // 2x2
  EXPECT_DOUBLE_EQ(prod(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 77.0);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Rng rng(22);
  Matrix a(5, 4);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 4; ++c) a(r, c) = rng.Uniform(-2, 2);
  }
  Matrix g1 = a.Gram();
  Matrix g2 = a.Transposed().Multiply(a);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(g1(i, j), g2(i, j), 1e-12);
    }
  }
}

TEST(Matrix, IdentityAndFrobenius) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_NEAR(id.FrobeniusNorm(), std::sqrt(3.0), 1e-12);
}

// ---------------------------------------------------------------- Jacobi

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = 1;
  a(2, 2) = 2;
  const auto eig = JacobiEigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2, {2, 1, 1, 2});
  const auto eig = JacobiEigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::numbers::sqrt2 / 2, 1e-8);
}

TEST(Jacobi, ReconstructsRandomSymmetricMatrix) {
  Rng rng(33);
  const size_t n = 12;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.Uniform(-1, 1);
    }
  }
  const auto eig = JacobiEigen(a);
  // A == V diag(w) V^T.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0;
      for (size_t k = 0; k < n; ++k) {
        sum += eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
      }
      EXPECT_NEAR(sum, a(i, j), 1e-8);
    }
  }
  // Eigenvalues sorted descending.
  for (size_t k = 1; k < n; ++k) {
    EXPECT_GE(eig.values[k - 1], eig.values[k] - 1e-12);
  }
  // Eigenvectors orthonormal.
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = p; q < n; ++q) {
      double dot = 0;
      for (size_t k = 0; k < n; ++k) {
        dot += eig.vectors(k, p) * eig.vectors(k, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-8);
    }
  }
}

// ------------------------------------------------------------------- SVD

TEST(Svd, RankOneMatrixHasOneSingularValue) {
  // R = u v^T with |u| = 2, |v| = 1: sigma_1 = 2, everything else ~ 0.
  std::vector<double> v{0.6, 0.8};
  Matrix r(3, 2);
  const double u[3] = {2.0 / std::sqrt(3.0), 2.0 / std::sqrt(3.0),
                       2.0 / std::sqrt(3.0)};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) r(i, j) = u[i] * v[j];
  }
  const auto svd = TopRightSingularVectors(r, 2);
  ASSERT_EQ(svd.vectors.size(), 2u);
  EXPECT_NEAR(svd.singular_values[0], 2.0, 1e-9);
  EXPECT_NEAR(svd.singular_values[1], 0.0, 1e-8);
  EXPECT_NEAR(std::abs(svd.vectors[0][0]), 0.6, 1e-8);
  EXPECT_NEAR(std::abs(svd.vectors[0][1]), 0.8, 1e-8);
}

TEST(Svd, TopVectorMaximizesRowEnergyCapture) {
  Rng rng(44);
  Matrix r(40, 6);
  // Rows strongly aligned with one direction plus noise.
  std::vector<double> dir{1, 2, 0, -1, 0.5, 3};
  double norm = 0;
  for (double d : dir) norm += d * d;
  norm = std::sqrt(norm);
  for (auto& d : dir) d /= norm;
  for (size_t i = 0; i < 40; ++i) {
    const double scale = rng.Uniform(-4, 4);
    for (size_t j = 0; j < 6; ++j) {
      r(i, j) = scale * dir[j] + rng.Gaussian(0, 0.01);
    }
  }
  const auto svd = TopRightSingularVectors(r, 1);
  ASSERT_EQ(svd.vectors.size(), 1u);
  double dot = 0;
  for (size_t j = 0; j < 6; ++j) dot += svd.vectors[0][j] * dir[j];
  EXPECT_NEAR(std::abs(dot), 1.0, 1e-3);
}

TEST(Svd, ClampsKToColumns) {
  Matrix r(3, 2, {1, 0, 0, 1, 1, 1});
  const auto svd = TopRightSingularVectors(r, 10);
  EXPECT_EQ(svd.vectors.size(), 2u);
}

TEST(Svd, EmptyMatrix) {
  const auto svd = TopRightSingularVectors(Matrix(), 3);
  EXPECT_TRUE(svd.vectors.empty());
}

}  // namespace
}  // namespace sbr::linalg
