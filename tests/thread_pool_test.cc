// Unit tests for the parallel-encoding thread pool: static-chunking
// guarantees, full and exactly-once coverage of the index range, nested
// ParallelFor (the deadlock scenario), and enough concurrent churn for
// ThreadSanitizer to chew on (this binary carries the "parallel" label).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace sbr::util {
namespace {

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ThreadPool, NumChunksFormula) {
  EXPECT_EQ(NumChunks(4, 0), 0u);
  EXPECT_EQ(NumChunks(0, 10), 1u);
  EXPECT_EQ(NumChunks(1, 10), 1u);
  EXPECT_EQ(NumChunks(4, 10), 4u);
  EXPECT_EQ(NumChunks(8, 3), 3u);
}

TEST(ThreadPool, SerialWhenThreadsOne) {
  // threads <= 1 must run inline on the calling thread as one chunk: this
  // is the "default 1 = exact current behavior" contract.
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  ParallelFor(1, 100, [&](size_t chunk, size_t begin, size_t end) {
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(4, n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, StaticChunkBoundariesDependOnlyOnThreadsAndN) {
  // chunk c must cover [c*n/C, (c+1)*n/C): record every chunk's range and
  // check the partition, twice, to pin that boundaries are not timing- or
  // pool-size-dependent.
  const size_t n = 103;  // deliberately not a multiple of the chunk count
  const size_t threads = 4;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const size_t num_chunks = NumChunks(threads, n);
    std::vector<std::pair<size_t, size_t>> ranges(num_chunks);
    ParallelFor(threads, n, [&](size_t chunk, size_t begin, size_t end) {
      ranges[chunk] = {begin, end};
    });
    size_t expect_begin = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      EXPECT_EQ(ranges[c].first, c * n / num_chunks);
      EXPECT_EQ(ranges[c].first, expect_begin);
      EXPECT_EQ(ranges[c].second, (c + 1) * n / num_chunks);
      expect_begin = ranges[c].second;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ThreadPool, MoreThreadsThanWorkClampsToN) {
  std::atomic<size_t> chunks{0};
  ParallelFor(16, 3, [&](size_t, size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);  // 3 items over min(16, 3) = 3 chunks
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 3u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A worker that issues its own ParallelFor must never deadlock, even
  // when every pool thread is already busy in the outer loop: the nested
  // caller drains its own chunks. Sum check proves every level ran.
  std::atomic<uint64_t> total{0};
  ParallelFor(4, 8, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ParallelFor(4, 64, [&](size_t, size_t b, size_t e) {
        uint64_t local = 0;
        for (size_t j = b; j < e; ++j) local += j;
        total.fetch_add(local);
      });
    }
  });
  EXPECT_EQ(total.load(), 8ull * (63ull * 64ull / 2));
}

TEST(ThreadPool, ManySmallLoopsStress) {
  // Rapid-fire dispatch: exercises task enqueue/drain races under TSan.
  std::atomic<uint64_t> total{0};
  for (int iter = 0; iter < 500; ++iter) {
    ParallelFor(8, 16, [&](size_t, size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 500ull * 16);
}

TEST(ThreadPool, ZeroLengthRangeIsNoOp) {
  bool called = false;
  ParallelFor(4, 0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DedicatedPoolWithZeroWorkersStillChunks) {
  // A pool without workers runs everything on the caller, with the same
  // static partition.
  ThreadPool pool(0);
  std::vector<int> hits(50, 0);
  std::atomic<size_t> chunks{0};
  pool.ParallelFor(50, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 4u);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

}  // namespace
}  // namespace sbr::util
