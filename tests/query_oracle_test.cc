// Differential query oracle: the compressed-domain aggregate path
// (CompressedHistory::Aggregate — prefix sums over base snapshots, closed
// forms for linear fall-backs) must agree with an exact recompute from the
// materialized reconstruction (HistoryStore::QueryRange) on every range,
// for every dataset family, seed and error metric. The two paths share no
// arithmetic beyond the decoder's affine map, so agreement pins the whole
// aggregate algebra: interval tiling, shift resolution, base-version
// selection and the SumT/SumT2 closed forms.
#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "datagen/phonecall.h"
#include "datagen/stock.h"
#include "datagen/weather.h"
#include "storage/history_store.h"
#include "storage/query_engine.h"

namespace sbr {
namespace {

constexpr size_t kChunkLen = 128;
constexpr size_t kChunks = 5;
constexpr size_t kMBase = 256;

struct Workload {
  std::string name;
  datagen::Dataset dataset;
  core::ErrorMetric metric = core::ErrorMetric::kSse;
  bool quadratic = false;
  uint64_t range_seed = 0;
};

datagen::Dataset MakeDataset(const std::string& family, uint64_t seed) {
  const size_t length = kChunks * kChunkLen;
  if (family == "weather") {
    datagen::WeatherOptions o;
    o.length = length;
    o.seed = seed;
    return datagen::GenerateWeather(o);
  }
  if (family == "stock") {
    datagen::StockOptions o;
    o.length = length;
    o.seed = seed;
    return datagen::GenerateStock(o);
  }
  datagen::PhoneCallOptions o;
  o.length = length;
  o.seed = seed;
  return datagen::GeneratePhoneCalls(o);
}

/// Exact aggregate recompute from the reconstructed samples, using the
/// same variance formula as the engine (E[x^2] - mean^2) so the oracle
/// isolates the compressed-domain algebra, not floating-point folklore.
struct Reference {
  double sum = 0.0;
  double sumsq = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  size_t n = 0;
};

Reference Recompute(const std::vector<double>& values) {
  Reference r;
  r.n = values.size();
  for (double v : values) {
    r.sum += v;
    r.sumsq += v * v;
    r.mn = std::min(r.mn, v);
    r.mx = std::max(r.mx, v);
  }
  return r;
}

/// The per-workload state both stores build from the identical
/// transmission sequence.
struct BuiltStores {
  storage::CompressedHistory compressed{kMBase};
  storage::HistoryStore history{kMBase};
  /// Chunk indices whose ingest published a new base version *after* the
  /// stream was warm — ranges straddling them cross base versions.
  std::vector<size_t> version_change_chunks;
};

void Build(const Workload& w, BuiltStores* out_ptr) {
  BuiltStores& out = *out_ptr;
  const size_t num_signals = w.dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  opts.metric = w.metric;
  opts.quadratic = w.quadratic;
  core::SbrEncoder encoder(opts);

  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = w.dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    const size_t versions_before = out.compressed.num_base_versions();
    ASSERT_TRUE(out.compressed.Ingest(*t).ok());
    ASSERT_TRUE(out.history.Ingest(*t).ok());
    if (c > 0 && out.compressed.num_base_versions() > versions_before) {
      out.version_change_chunks.push_back(c);
    }
  }
}

void CheckRange(const BuiltStores& stores, size_t signal, size_t t0,
                size_t t1, const std::string& label) {
  auto agg = stores.compressed.Aggregate(signal, t0, t1);
  ASSERT_TRUE(agg.ok()) << label << ": " << agg.status().ToString();
  auto exact = stores.history.QueryRange(signal, t0, t1);
  ASSERT_TRUE(exact.ok()) << label << ": " << exact.status().ToString();
  const Reference ref = Recompute(*exact);

  ASSERT_EQ(agg->count, ref.n) << label;
  const double n = static_cast<double>(ref.n);
  const double scale = std::abs(ref.sum) + n;
  EXPECT_NEAR(agg->sum, ref.sum, 1e-9 * scale) << label;
  EXPECT_NEAR(agg->avg, ref.sum / n, 1e-9 * (std::abs(ref.sum / n) + 1.0))
      << label;
  const double ref_mean = ref.sum / n;
  const double ref_var = std::max(0.0, ref.sumsq / n - ref_mean * ref_mean);
  // The engine folds squares through prefix sums and closed forms; after
  // the E[x^2] - mean^2 cancellation the agreement is relative to the
  // *uncancelled* magnitude, not the variance itself.
  const double var_scale = ref.sumsq / n + ref_mean * ref_mean + 1.0;
  EXPECT_NEAR(agg->variance, ref_var, 1e-8 * var_scale) << label;
  EXPECT_NEAR(agg->min, ref.mn, 1e-9 * (std::abs(ref.mn) + 1.0)) << label;
  EXPECT_NEAR(agg->max, ref.mx, 1e-9 * (std::abs(ref.mx) + 1.0)) << label;
}

void RunWorkload(const Workload& w) {
  SCOPED_TRACE(w.name);
  BuiltStores stores;
  Build(w, &stores);
  if (::testing::Test::HasFatalFailure()) return;
  const size_t len = stores.compressed.history_len();
  const size_t num_signals = stores.compressed.num_signals();
  ASSERT_EQ(len, kChunks * kChunkLen);

  std::mt19937_64 rng(w.range_seed);
  std::uniform_int_distribution<size_t> pick_t(0, len - 1);
  std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);

  // Randomized ranges, any alignment.
  for (int q = 0; q < 12; ++q) {
    size_t a = pick_t(rng), b = pick_t(rng);
    if (a > b) std::swap(a, b);
    CheckRange(stores, pick_s(rng), a, b + 1,
               "random [" + std::to_string(a) + "," + std::to_string(b + 1) +
                   ")");
  }
  // Single-sample, full-history and chunk-boundary-straddling ranges.
  const size_t t_single = pick_t(rng);
  CheckRange(stores, pick_s(rng), t_single, t_single + 1, "single-sample");
  CheckRange(stores, pick_s(rng), 0, len, "full-history");
  for (size_t c = 1; c < kChunks; ++c) {
    const size_t edge = c * kChunkLen;
    CheckRange(stores, pick_s(rng), edge - 3, edge + 3,
               "chunk-straddle@" + std::to_string(edge));
  }
  // Base-version-crossing ranges: straddle every chunk whose ingest
  // published a new base snapshot mid-stream.
  for (size_t c : stores.version_change_chunks) {
    CheckRange(stores, pick_s(rng), (c - 1) * kChunkLen + kChunkLen / 2,
               c * kChunkLen + kChunkLen / 2,
               "base-version-crossing@" + std::to_string(c));
  }

  // Point pin: Value(t) is definitionally the one-sample range.
  for (int q = 0; q < 8; ++q) {
    const size_t t = pick_t(rng);
    const size_t s = pick_s(rng);
    auto point = stores.compressed.Value(s, t);
    ASSERT_TRUE(point.ok()) << point.status().ToString();
    auto exact = stores.history.QueryRange(s, t, t + 1);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_NEAR(*point, (*exact)[0], 1e-9 * (std::abs((*exact)[0]) + 1.0))
        << "point t=" << t << " signal=" << s;
  }
}

// 3 dataset families x 6 seeds x 3 error metrics = 54 seeded workloads,
// every one checked over randomized + adversarially-aligned ranges.
TEST(QueryOracle, CompressedAggregatesMatchExactRecompute) {
  const std::string families[] = {"weather", "stock", "phone"};
  const core::ErrorMetric metrics[] = {core::ErrorMetric::kSse,
                                       core::ErrorMetric::kSseRelative,
                                       core::ErrorMetric::kMaxAbs};
  size_t workloads = 0;
  for (const std::string& family : families) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      for (core::ErrorMetric metric : metrics) {
        Workload w;
        w.name = family + "/seed" + std::to_string(seed) + "/metric" +
                 std::to_string(static_cast<int>(metric));
        w.dataset = MakeDataset(family, 100 + seed);
        w.metric = metric;
        w.range_seed = seed * 977 + static_cast<uint64_t>(metric);
        RunWorkload(w);
        if (::testing::Test::HasFatalFailure()) return;
        ++workloads;
      }
    }
  }
  EXPECT_GE(workloads, 50u);
}

// The quadratic extension exercises the engine's direct-scan interval
// path (c != 0), which the linear workloads never reach.
TEST(QueryOracle, QuadraticEncodingsMatchExactRecompute) {
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    Workload w;
    w.name = "weather-quadratic/seed" + std::to_string(seed);
    w.dataset = MakeDataset("weather", 300 + seed);
    w.quadratic = true;
    w.range_seed = seed;
    RunWorkload(w);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Gap alignment across the two stores: after MarkGap both views agree
// that a range abutting the gap succeeds and a range touching it reports
// DataLoss — the boundary semantics satellite-4 pins for both stores.
TEST(QueryOracle, GapBoundariesAgreeAcrossStores) {
  Workload w;
  w.name = "weather-gaps";
  w.dataset = MakeDataset("weather", 42);
  w.range_seed = 42;

  storage::CompressedHistory compressed{kMBase};
  storage::HistoryStore history{kMBase};
  const size_t num_signals = w.dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  core::SbrEncoder encoder(opts);
  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    if (c == 2) {  // chunk 2 is lost on both timelines
      compressed.MarkGap(1);
      history.MarkGap(1);
      continue;
    }
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = w.dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok());
    // Post-gap chunks still decode on both views: base updates travel
    // inside the transmissions and both stores fold them identically.
    ASSERT_TRUE(history.Ingest(*t).ok());
    ASSERT_TRUE(compressed.Ingest(*t).ok());
  }
  ASSERT_EQ(compressed.num_gaps(), 1u);
  ASSERT_EQ(history.num_gaps(), 1u);
  ASSERT_TRUE(compressed.IsGap(2));
  ASSERT_TRUE(history.IsGap(2));

  const size_t gap_lo = 2 * kChunkLen;
  const size_t gap_hi = 3 * kChunkLen;
  // Abutting the gap from either side succeeds...
  EXPECT_TRUE(compressed.Aggregate(0, kChunkLen, gap_lo).ok());
  EXPECT_TRUE(history.QueryRange(0, kChunkLen, gap_lo).ok());
  EXPECT_TRUE(compressed.Aggregate(0, gap_hi, gap_hi + kChunkLen).ok());
  EXPECT_TRUE(history.QueryRange(0, gap_hi, gap_hi + kChunkLen).ok());
  // ...touching it by one sample is DataLoss on both views.
  EXPECT_EQ(compressed.Aggregate(0, kChunkLen, gap_lo + 1).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(history.QueryRange(0, kChunkLen, gap_lo + 1).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(compressed.Aggregate(0, gap_hi - 1, gap_hi + 1).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(history.QueryRange(0, gap_hi - 1, gap_hi + 1).status().code(),
            StatusCode::kDataLoss);
  // The surviving timeline still matches the differential oracle around
  // the gap.
  CheckRange({std::move(compressed), std::move(history), {}}, 0, gap_hi,
             gap_hi + kChunkLen / 2, "post-gap");
}

}  // namespace
}  // namespace sbr
