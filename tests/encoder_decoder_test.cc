// Integration tests for the SbrEncoder / SbrDecoder pair: geometry
// validation, budget adherence, encoder/decoder base-signal sync across
// many transmissions (including evictions), every base strategy, error
// metrics and the Section 4.4 / 4.5 modes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compress/svd_base.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/get_intervals.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::core {
namespace {

// A correlated multi-signal chunk: shared multi-harmonic driver (with
// enough high-frequency content that straight lines fit it poorly) +
// per-signal affine transform + noise — exactly the structure SBR's base
// signal exploits and plain regression cannot.
std::vector<double> MakeChunk(size_t num_signals, size_t m, uint64_t seed,
                              double noise = 0.05) {
  Rng rng(seed);
  std::vector<double> y(num_signals * m);
  for (size_t s = 0; s < num_signals; ++s) {
    const double scale = rng.Uniform(0.5, 3.0);
    const double offset = rng.Uniform(-5, 5);
    for (size_t i = 0; i < m; ++i) {
      const double t = static_cast<double>(i);
      const double driver = std::sin(2.0 * M_PI * t / 64.0) +
                            0.8 * std::sin(2.0 * M_PI * t / 16.0) +
                            0.5 * std::sin(2.0 * M_PI * t / 8.0);
      y[s * m + i] = scale * driver + offset + rng.Gaussian(0, noise);
    }
  }
  return y;
}

EncoderOptions DefaultOptions() {
  EncoderOptions opts;
  opts.total_band = 120;
  opts.m_base = 128;
  return opts;
}

TEST(Encoder, FirstChunkFixesGeometry) {
  SbrEncoder enc(DefaultOptions());
  const auto y = MakeChunk(2, 128, 1);
  ASSERT_TRUE(enc.EncodeChunk(y, 2).ok());
  EXPECT_EQ(enc.w(), 16u);  // floor(sqrt(256))
  // Different geometry now fails.
  const auto y2 = MakeChunk(4, 64, 2);
  EXPECT_FALSE(enc.EncodeChunk(y2, 4).ok());
  // Same geometry still fine.
  EXPECT_TRUE(enc.EncodeChunk(MakeChunk(2, 128, 3), 2).ok());
}

TEST(Encoder, RejectsImpossibleBudget) {
  EncoderOptions opts;
  opts.total_band = 10;  // 10/4 = 2 intervals < 8 signals
  opts.m_base = 64;
  SbrEncoder enc(opts);
  EXPECT_FALSE(enc.EncodeChunk(MakeChunk(8, 32, 4), 8).ok());
}

TEST(Encoder, TransmissionNeverExceedsTotalBand) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder enc(opts);
  for (uint64_t c = 0; c < 6; ++c) {
    auto t = enc.EncodeChunk(MakeChunk(2, 128, 10 + c), 2);
    ASSERT_TRUE(t.ok());
    EXPECT_LE(t->ValueCount(), opts.total_band) << "chunk " << c;
  }
}

TEST(Encoder, WOverrideRespected) {
  EncoderOptions opts = DefaultOptions();
  opts.w = 8;
  SbrEncoder enc(opts);
  auto t = enc.EncodeChunk(MakeChunk(2, 128, 5), 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(enc.w(), 8u);
  EXPECT_EQ(t->w, 8u);
}

TEST(EncoderDecoder, DecodeReproducesEncoderApproximationExactly) {
  // The decoder's reconstruction must match what the encoder believed it
  // encoded: re-running the interval reconstruction on the encoder's own
  // base signal gives the identical series.
  EncoderOptions opts = DefaultOptions();
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  for (uint64_t c = 0; c < 8; ++c) {
    const auto y = MakeChunk(2, 128, 20 + c);
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok());
    auto decoded = dec.DecodeChunk(*t);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), y.size());

    // Decoder and encoder base signals are bit-identical mirrors.
    ASSERT_EQ(dec.base_signal().used_slots(),
              enc.base_signal().used_slots());
    const auto eb = enc.base_signal().values();
    const auto db = dec.base_signal().values();
    for (size_t i = 0; i < eb.size(); ++i) {
      ASSERT_DOUBLE_EQ(eb[i], db[i]) << "chunk " << c << " idx " << i;
    }

    // And the error the encoder reported equals the decoder-side error.
    EXPECT_NEAR(SumSquaredError(y, *decoded), enc.last_stats().total_error,
                1e-6 * std::max(1.0, enc.last_stats().total_error));
  }
}

TEST(EncoderDecoder, SerializedRoundTripIdentical) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder enc(opts);
  SbrDecoder direct(DecoderOptions{opts.m_base});
  SbrDecoder via_bytes(DecoderOptions{opts.m_base});
  for (uint64_t c = 0; c < 4; ++c) {
    const auto y = MakeChunk(3, 96, 40 + c);
    auto t = enc.EncodeChunk(y, 3);
    ASSERT_TRUE(t.ok());
    BinaryWriter w;
    t->Serialize(&w);
    BinaryReader r(w.buffer());
    auto t2 = Transmission::Deserialize(&r);
    ASSERT_TRUE(t2.ok());
    auto a = direct.DecodeChunk(*t);
    auto b = via_bytes.DecodeChunk(*t2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(EncoderDecoder, EvictionKeepsSidesInSync) {
  // Tiny m_base so insertions after the first transmissions force LFU
  // eviction; feeding evolving data keeps GetBase proposing new intervals.
  EncoderOptions opts;
  opts.total_band = 150;
  opts.m_base = 48;  // only 3 slots at W=16
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  Rng rng(7);
  for (uint64_t c = 0; c < 12; ++c) {
    // Change the waveform every chunk so the base keeps churning.
    std::vector<double> y(2 * 128);
    const double freq = 16.0 + 8.0 * static_cast<double>(c % 4);
    for (size_t s = 0; s < 2; ++s) {
      for (size_t i = 0; i < 128; ++i) {
        const double t = static_cast<double>(i);
        y[s * 128 + i] =
            std::sin(2.0 * M_PI * t / freq) * (1.0 + 0.5 * s) +
            ((c % 2 == 0) ? std::cos(4.0 * M_PI * t / freq) : 0.0) +
            rng.Gaussian(0, 0.02);
      }
    }
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(dec.DecodeChunk(*t).ok()) << "chunk " << c;
    EXPECT_LE(enc.base_signal().used_slots(), 3u);
    const auto eb = enc.base_signal().values();
    const auto db = dec.base_signal().values();
    ASSERT_EQ(eb.size(), db.size());
    for (size_t i = 0; i < eb.size(); ++i) {
      ASSERT_DOUBLE_EQ(eb[i], db[i]);
    }
  }
}

TEST(EncoderDecoder, CorrelatedDataBeatsPlainLinearRegression) {
  EncoderOptions sbr_opts = DefaultOptions();
  SbrEncoder sbr(sbr_opts);
  EncoderOptions lin_opts = DefaultOptions();
  lin_opts.base_strategy = BaseStrategy::kNone;
  SbrEncoder lin(lin_opts);

  double sbr_err = 0, lin_err = 0;
  for (uint64_t c = 0; c < 5; ++c) {
    const auto y = MakeChunk(4, 128, 60 + c, /*noise=*/0.02);
    ASSERT_TRUE(sbr.EncodeChunk(y, 4).ok());
    sbr_err += sbr.last_stats().total_error;
    ASSERT_TRUE(lin.EncodeChunk(y, 4).ok());
    lin_err += lin.last_stats().total_error;
  }
  EXPECT_LT(sbr_err, lin_err);
}

TEST(EncoderDecoder, DctFixedStrategyRoundTrips) {
  EncoderOptions opts;
  opts.total_band = 80;
  opts.m_base = 0;  // unused by the fixed base
  opts.base_strategy = BaseStrategy::kDctFixed;
  opts.w = 16;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{0});
  const auto y = MakeChunk(2, 128, 70, 0.01);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base_kind, BaseKind::kDctFixed);
  EXPECT_TRUE(t->base_updates.empty());
  auto decoded = dec.DecodeChunk(*t);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(SumSquaredError(y, *decoded), enc.last_stats().total_error,
              1e-6 * std::max(1.0, enc.last_stats().total_error));
}

TEST(EncoderDecoder, NoneStrategyUsesThreeValueIntervals) {
  EncoderOptions opts;
  opts.total_band = 60;
  opts.m_base = 0;
  opts.base_strategy = BaseStrategy::kNone;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{0});
  const auto y = MakeChunk(2, 64, 80);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->base_kind, BaseKind::kNone);
  // 60 / 3 = 20 intervals.
  EXPECT_EQ(t->intervals.size(), 20u);
  for (const auto& iv : t->intervals) EXPECT_EQ(iv.shift, -1);
  ASSERT_TRUE(dec.DecodeChunk(*t).ok());
}

TEST(EncoderDecoder, SvdStrategyWorksEndToEnd) {
  EncoderOptions opts = DefaultOptions();
  opts.base_strategy = BaseStrategy::kCustom;
  opts.base_provider = compress::SvdBaseProvider();
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  for (uint64_t c = 0; c < 3; ++c) {
    const auto y = MakeChunk(2, 128, 90 + c, 0.01);
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    auto decoded = dec.DecodeChunk(*t);
    ASSERT_TRUE(decoded.ok());
    EXPECT_NEAR(SumSquaredError(y, *decoded), enc.last_stats().total_error,
                1e-6 * std::max(1.0, enc.last_stats().total_error));
  }
}

TEST(EncoderDecoder, CustomStrategyWithoutProviderFails) {
  EncoderOptions opts = DefaultOptions();
  opts.base_strategy = BaseStrategy::kCustom;
  SbrEncoder enc(opts);
  EXPECT_FALSE(enc.EncodeChunk(MakeChunk(2, 128, 95), 2).ok());
}

TEST(EncoderDecoder, UpdateBaseFalseSkipsInsertions) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder warm(opts);
  // Warm up one encoder to populate its base.
  const auto y0 = MakeChunk(2, 128, 100, 0.01);
  ASSERT_TRUE(warm.EncodeChunk(y0, 2).ok());

  EncoderOptions frozen = opts;
  frozen.update_base = false;
  SbrEncoder enc(frozen);
  auto t = enc.EncodeChunk(y0, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->base_updates.empty());
  EXPECT_EQ(enc.last_stats().inserted_base_intervals, 0u);
  EXPECT_EQ(enc.last_stats().search_probes, 0u);
}

TEST(EncoderDecoder, RelativeMetricEndToEnd) {
  EncoderOptions opts = DefaultOptions();
  opts.metric = ErrorMetric::kSseRelative;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  const auto y = MakeChunk(2, 128, 110);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  auto decoded = dec.DecodeChunk(*t);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(SumSquaredRelativeError(y, *decoded),
              enc.last_stats().total_error,
              1e-6 * std::max(1.0, enc.last_stats().total_error));
}

TEST(EncoderDecoder, ErrorTargetSpendsLessBandwidth) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder full(opts);
  const auto y = MakeChunk(2, 128, 120);
  ASSERT_TRUE(full.EncodeChunk(y, 2).ok());
  const double achieved = full.last_stats().total_error;

  EncoderOptions bounded = opts;
  bounded.error_target = achieved * 8.0;
  SbrEncoder enc(bounded);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  EXPECT_LE(enc.last_stats().total_error, bounded.error_target);
  EXPECT_LT(t->ValueCount(), full.last_stats().values_used);
}

TEST(Decoder, RejectsCorruptStreams) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder enc(opts);
  const auto y = MakeChunk(2, 128, 130);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());

  {
    // Interval record pointing past the base signal.
    Transmission bad = *t;
    ASSERT_FALSE(bad.intervals.empty());
    bad.intervals[0].shift = 100000;
    SbrDecoder dec(DecoderOptions{opts.m_base});
    EXPECT_FALSE(dec.DecodeChunk(bad).ok());
  }
  {
    // First interval not at 0.
    Transmission bad = *t;
    for (auto& iv : bad.intervals) iv.start += 1;
    SbrDecoder dec(DecoderOptions{opts.m_base});
    EXPECT_FALSE(dec.DecodeChunk(bad).ok());
  }
  {
    // Base update creating a slot gap.
    Transmission bad = *t;
    BaseUpdate bu;
    bu.slot = 7;  // decoder has no slots yet
    bu.values.assign(enc.w(), 0.0);
    bad.base_updates.insert(bad.base_updates.begin(), bu);
    SbrDecoder dec(DecoderOptions{opts.m_base});
    EXPECT_FALSE(dec.DecodeChunk(bad).ok());
  }
  {
    // W changing mid-stream.
    SbrDecoder dec(DecoderOptions{opts.m_base});
    ASSERT_TRUE(dec.DecodeChunk(*t).ok());
    Transmission bad = *t;
    bad.w += 1;
    EXPECT_FALSE(dec.DecodeChunk(bad).ok());
  }
}

TEST(Decoder, MatrixFormMatchesFlat) {
  EncoderOptions opts = DefaultOptions();
  SbrEncoder enc(opts);
  const auto y = MakeChunk(2, 128, 140);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  SbrDecoder d1(DecoderOptions{opts.m_base});
  SbrDecoder d2(DecoderOptions{opts.m_base});
  auto flat = d1.DecodeChunk(*t);
  auto mat = d2.DecodeChunkToMatrix(*t);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(mat.ok());
  for (size_t s = 0; s < 2; ++s) {
    for (size_t i = 0; i < 128; ++i) {
      EXPECT_DOUBLE_EQ((*mat)(s, i), (*flat)[s * 128 + i]);
    }
  }
}

}  // namespace
}  // namespace sbr::core
