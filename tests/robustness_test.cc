// Failure-injection and adversarial-input tests: corrupted wire bytes,
// non-finite samples, pathological signals and boundary geometries. The
// contract under attack is always the same — a clean Status, never a
// crash, never silent garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/regression.h"
#include "net/base_station.h"
#include "net/node.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr {
namespace {

using core::EncoderOptions;
using core::SbrDecoder;
using core::SbrEncoder;
using core::Transmission;

// ------------------------------------------------------- wire fuzzing

TEST(Robustness, RandomBytesNeverCrashDeserializer) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    BinaryReader reader(bytes);
    auto t = Transmission::Deserialize(&reader);
    // Either a parse error or a structurally valid transmission; both are
    // acceptable, crashing or hanging is not.
    if (t.ok()) {
      (void)t->ValueCount();
      (void)t->TotalSamples();
    }
  }
}

TEST(Robustness, BitFlippedTransmissionsFailOrDecodeCleanly) {
  EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 128;
  SbrEncoder enc(opts);
  Rng rng(2);
  std::vector<double> y(256);
  for (auto& v : y) v = std::sin(v) + rng.Uniform(0, 1);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  BinaryWriter w;
  t->Serialize(&w);
  std::vector<uint8_t> base_bytes = w.buffer();

  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = base_bytes;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, bytes.size() - 1));
    bytes[pos] ^= static_cast<uint8_t>(1 << rng.UniformInt(0, 7));
    BinaryReader reader(bytes);
    auto parsed = Transmission::Deserialize(&reader);
    if (!parsed.ok()) continue;
    SbrDecoder dec(core::DecoderOptions{opts.m_base});
    auto decoded = dec.DecodeChunk(*parsed);
    if (decoded.ok()) {
      // A flipped coefficient byte can still decode; the output must at
      // least have the right shape.
      EXPECT_EQ(decoded->size(), parsed->TotalSamples());
    }
  }
}

// ----------------------------------------- base-station frame fuzzing

// Builds a few genuine on-air frames from a real sensor node.
std::vector<std::vector<uint8_t>> RealFrameBytes(size_t count) {
  EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  net::SensorNode node(1, 2, 64, opts);
  Rng rng(11);
  std::vector<std::vector<uint8_t>> frames;
  std::vector<double> sample(2);
  while (frames.size() < count) {
    sample[0] = std::sin(frames.size() + rng.Uniform(0, 1));
    sample[1] = rng.Uniform(0, 5);
    auto r = node.AddSamples(sample);
    EXPECT_TRUE(r.ok());
    if (!r->has_value()) continue;
    BinaryWriter w;
    node.MakeDataFrame(**r).Serialize(&w);
    frames.push_back(w.buffer());
  }
  return frames;
}

TEST(Robustness, StationSurvivesRandomFrameBytes) {
  net::BaseStation station(64);
  Rng rng(6);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    auto ack = station.ReceiveBytes(bytes);
    // Always a clean typed NACK; never an internal error, never a crash.
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack->type, net::AckType::kCorrupt);
  }
  EXPECT_EQ(station.total_stats().corrupt_frames, 2000u);
  EXPECT_EQ(station.num_sensors(), 0u);
}

TEST(Robustness, StationSurvivesTruncatedFrames) {
  net::BaseStation station(64);
  const auto frames = RealFrameBytes(1);
  for (size_t cut = 0; cut < frames[0].size(); ++cut) {
    std::vector<uint8_t> truncated(frames[0].begin(),
                                   frames[0].begin() + cut);
    auto ack = station.ReceiveBytes(truncated);
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->type, net::AckType::kCorrupt) << "cut at " << cut;
  }
  // Nothing was ingested from any prefix.
  EXPECT_FALSE(station.HasSensor(1));
}

TEST(Robustness, StationRejectsEveryBitFlipThenAcceptsThePristineFrame) {
  net::BaseStation station(64);
  const auto frames = RealFrameBytes(2);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = frames[0];
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, bytes.size() - 1));
    bytes[pos] ^= static_cast<uint8_t>(1 << rng.UniformInt(0, 7));
    auto ack = station.ReceiveBytes(bytes);
    ASSERT_TRUE(ack.ok());
    // CRC32 catches every single-bit flip without exception.
    EXPECT_EQ(ack->type, net::AckType::kCorrupt);
  }
  EXPECT_EQ(station.stats(1).frames_accepted, 0u);

  // The untouched frames still go through afterwards: duplicated and
  // reordered copies are handled as protocol events, not errors.
  auto buffered = station.ReceiveBytes(frames[1]);  // seq 1 before seq 0
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(buffered->type, net::AckType::kBuffered);
  auto accepted = station.ReceiveBytes(frames[0]);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->type, net::AckType::kAccept);
  auto duplicate = station.ReceiveBytes(frames[0]);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->type, net::AckType::kDuplicate);
  EXPECT_EQ(station.stats(1).frames_accepted, 2u);  // both drained, once
  auto history = station.History(1);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)->num_chunks(), 2u);
  EXPECT_EQ((*history)->num_gaps(), 0u);
}

// --------------------------------------------------- non-finite inputs

TEST(Robustness, EncoderRejectsNaNAndInfinity) {
  EncoderOptions opts;
  opts.total_band = 60;
  opts.m_base = 64;
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    SbrEncoder enc(opts);
    std::vector<double> y(128, 1.0);
    y[77] = bad;
    auto t = enc.EncodeChunk(y, 1);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
    // The encoder is still usable afterwards.
    std::vector<double> good(128, 1.0);
    EXPECT_TRUE(enc.EncodeChunk(good, 1).ok());
  }
}

// -------------------------------------------------- pathological data

TEST(Robustness, ConstantSignalEncodesPerfectly) {
  EncoderOptions opts;
  opts.total_band = 40;
  opts.m_base = 64;
  SbrEncoder enc(opts);
  SbrDecoder dec(core::DecoderOptions{opts.m_base});
  std::vector<double> y(256, 42.0);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  auto rec = dec.DecodeChunk(*t);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-12);
}

TEST(Robustness, HugeDynamicRangeStaysFinite) {
  EncoderOptions opts;
  opts.total_band = 80;
  opts.m_base = 128;
  SbrEncoder enc(opts);
  SbrDecoder dec(core::DecoderOptions{opts.m_base});
  Rng rng(3);
  std::vector<double> y(256);
  for (size_t i = 0; i < y.size(); ++i) {
    // Values spanning ~17 orders of magnitude.
    y[i] = (i % 2 == 0 ? 1e-8 : 1e9) * rng.Uniform(0.5, 2.0);
  }
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  auto rec = dec.DecodeChunk(*t);
  ASSERT_TRUE(rec.ok());
  for (double v : *rec) EXPECT_TRUE(std::isfinite(v));
}

TEST(Robustness, AlternatingSpikesSurviveRoundTrip) {
  EncoderOptions opts;
  opts.total_band = 200;
  opts.m_base = 128;
  SbrEncoder enc(opts);
  SbrDecoder dec(core::DecoderOptions{opts.m_base});
  std::vector<double> y(512, 0.0);
  for (size_t i = 0; i < y.size(); i += 17) y[i] = 1000.0;
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok());
  auto rec = dec.DecodeChunk(*t);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), enc.last_stats().total_error,
              1e-6 * std::max(1.0, enc.last_stats().total_error));
}

// ----------------------------------------------- boundary geometries

TEST(Robustness, SingleSignalSingleChunkMinimalEverything) {
  EncoderOptions opts;
  opts.total_band = 4 + 3;  // one interval + one base value + margin
  opts.m_base = 2;
  opts.w = 2;
  SbrEncoder enc(opts);
  std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  auto t = enc.EncodeChunk(y, 1);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  SbrDecoder dec(core::DecoderOptions{opts.m_base});
  EXPECT_TRUE(dec.DecodeChunk(*t).ok());
}

TEST(Robustness, WLargerThanChunkStillWorks) {
  // W bigger than any signal: no candidate base intervals exist, the
  // encoder must degrade to pure fall-back encoding.
  EncoderOptions opts;
  opts.total_band = 24;
  opts.m_base = 64;
  opts.w = 50;
  SbrEncoder enc(opts);
  Rng rng(4);
  std::vector<double> y(32);
  for (auto& v : y) v = rng.Uniform(0, 1);
  auto t = enc.EncodeChunk(y, 1);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->base_updates.empty());
  SbrDecoder dec(core::DecoderOptions{opts.m_base});
  EXPECT_TRUE(dec.DecodeChunk(*t).ok());
}

TEST(Robustness, ZeroTotalBandRejected) {
  EncoderOptions opts;
  opts.total_band = 0;
  opts.m_base = 64;
  SbrEncoder enc(opts);
  std::vector<double> y(64, 1.0);
  EXPECT_FALSE(enc.EncodeChunk(y, 1).ok());
}

// ------------------------------------------------ storage corruption

TEST(Robustness, LogWithGarbageTailRecovers) {
  const std::string path = testing::TempDir() + "/sbr_garbage_tail.log";
  std::filesystem::remove(path);
  {
    auto log = storage::ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    Transmission t;
    t.num_signals = 1;
    t.chunk_len = 4;
    t.w = 2;
    t.intervals.push_back({0, -1, 1.0, 0.0, 0.0});
    ASSERT_TRUE(log->Append(t).ok());
  }
  {
    // Simulate a corrupt partial append.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char junk[] = "\x40\x00\x00\x00garbage";
    out.write(junk, sizeof(junk));
  }
  auto recovered = storage::ChunkLog::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 1u);
  auto store = storage::HistoryStore::FromLog(*recovered, 64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_chunks(), 1u);
  std::filesystem::remove(path);
}

// ------------------------------------------------- numeric torture

TEST(Robustness, RegressionKernelsSurviveExtremeValues) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 10));
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      const double mag = std::pow(10.0, rng.Uniform(-12, 12));
      x[i] = mag * rng.Uniform(-1, 1);
      y[i] = mag * rng.Uniform(-1, 1);
    }
    for (auto fit : {core::FitSse(x, y),
                     core::FitSseRelative(x, y, 1.0)}) {
      EXPECT_TRUE(std::isfinite(fit.a));
      EXPECT_TRUE(std::isfinite(fit.b));
      EXPECT_GE(fit.err, 0.0);
    }
    const auto q = core::FitQuadratic(x, y);
    EXPECT_TRUE(std::isfinite(q.err));
  }
}

}  // namespace
}  // namespace sbr
