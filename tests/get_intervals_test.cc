// Unit tests for GetIntervals: budget accounting, coverage invariants,
// worst-first splitting behaviour, early stopping and reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/get_intervals.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::core {
namespace {

// Intervals must tile [0, len) exactly with one or more intervals per
// signal and no signal-boundary crossings.
void CheckTiling(const ApproximationResult& result, size_t num_signals,
                 size_t m) {
  ASSERT_FALSE(result.intervals.empty());
  size_t expect_start = 0;
  for (const Interval& iv : result.intervals) {
    EXPECT_EQ(iv.start, expect_start);
    EXPECT_GT(iv.length, 0u);
    // No interval crosses a signal boundary: since the initial intervals
    // are per-signal and splits stay inside, start/end share a row.
    EXPECT_EQ(iv.start / m, (iv.start + iv.length - 1) / m);
    expect_start += iv.length;
  }
  EXPECT_EQ(expect_start, num_signals * m);
}

TEST(GetIntervals, BudgetTooSmallFails) {
  std::vector<double> y(20, 1.0);
  GetIntervalsOptions opts;
  auto result = GetIntervals({}, y, /*num_signals=*/4, /*budget=*/12,
                             /*w=*/4, opts);
  // 12 / 4 = 3 intervals < 4 signals.
  EXPECT_FALSE(result.ok());
}

TEST(GetIntervals, MinimalBudgetOneIntervalPerSignal) {
  Rng rng(1);
  std::vector<double> y(40);
  for (auto& v : y) v = rng.Uniform(0, 1);
  GetIntervalsOptions opts;
  auto result = GetIntervals({}, y, /*num_signals=*/4, /*budget=*/16,
                             /*w=*/4, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 4u);
  CheckTiling(*result, 4, 10);
}

TEST(GetIntervals, RespectsBudgetExactly) {
  Rng rng(2);
  std::vector<double> y(256);
  for (auto& v : y) v = rng.Uniform(0, 1);
  GetIntervalsOptions opts;
  auto result =
      GetIntervals({}, y, /*num_signals=*/2, /*budget=*/41, /*w=*/16, opts);
  ASSERT_TRUE(result.ok());
  // 41 / 4 = 10 intervals.
  EXPECT_EQ(result->intervals.size(), 10u);
  EXPECT_EQ(result->values_used, 40u);
  CheckTiling(*result, 2, 128);
}

TEST(GetIntervals, PerfectDataStopsEarly) {
  // A ramp is perfectly captured by one linear interval per signal; no
  // budget should be spent splitting further.
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) y[i] = 2.0 * static_cast<double>(i % 50);
  GetIntervalsOptions opts;
  auto result =
      GetIntervals({}, y, /*num_signals=*/2, /*budget=*/100, /*w=*/8, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 2u);
  EXPECT_NEAR(result->total_error, 0.0, 1e-9);
}

TEST(GetIntervals, MoreBudgetNeverHurts) {
  Rng rng(3);
  std::vector<double> y(512);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.1) + rng.Gaussian(0, 0.2);
  }
  GetIntervalsOptions opts;
  double prev = 1e300;
  for (size_t budget : {16u, 32u, 64u, 128u, 256u}) {
    auto result = GetIntervals({}, y, /*num_signals=*/1, budget, /*w=*/22,
                               opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->total_error, prev + 1e-9) << "budget=" << budget;
    prev = result->total_error;
  }
}

TEST(GetIntervals, AllocatesMoreIntervalsToHarderSignal) {
  // Signal 0: constant (trivially approximated). Signal 1: noise. The
  // splitter must pour nearly all its budget into signal 1 (dynamic
  // allocation claim of Section 4.2).
  Rng rng(4);
  const size_t m = 128;
  std::vector<double> y(2 * m, 5.0);
  for (size_t i = m; i < 2 * m; ++i) y[i] = rng.Uniform(-10, 10);
  GetIntervalsOptions opts;
  auto result =
      GetIntervals({}, y, /*num_signals=*/2, /*budget=*/80, /*w=*/16, opts);
  ASSERT_TRUE(result.ok());
  size_t hard = 0, easy = 0;
  for (const Interval& iv : result->intervals) {
    (iv.start >= m ? hard : easy) += 1;
  }
  EXPECT_EQ(easy, 1u);
  EXPECT_EQ(hard, result->intervals.size() - 1);
  EXPECT_GT(hard, 10u);
}

TEST(GetIntervals, ErrorTargetStopsSplitting) {
  Rng rng(5);
  std::vector<double> y(256);
  for (auto& v : y) v = rng.Uniform(0, 1);
  GetIntervalsOptions unlimited;
  auto full = GetIntervals({}, y, 1, /*budget=*/200, /*w=*/16, unlimited);
  ASSERT_TRUE(full.ok());

  GetIntervalsOptions bounded = unlimited;
  bounded.error_target = full->total_error * 4.0;  // a loose target
  auto early = GetIntervals({}, y, 1, /*budget=*/200, /*w=*/16, bounded);
  ASSERT_TRUE(early.ok());
  EXPECT_LE(early->total_error, bounded.error_target);
  EXPECT_LT(early->intervals.size(), full->intervals.size());
}

TEST(GetIntervals, UsesBaseSignalWhenItHelps) {
  // Data = noisy periodic signal whose period is present in the base: the
  // base mapping should beat pure linear regression.
  Rng rng(6);
  const size_t m = 256;
  std::vector<double> base(64);
  for (size_t i = 0; i < 64; ++i) base[i] = std::sin(i * 2.0 * M_PI / 64.0);
  std::vector<double> y(m);
  for (size_t i = 0; i < m; ++i) {
    y[i] = 10.0 * std::sin(i * 2.0 * M_PI / 64.0) + 3.0;
  }
  GetIntervalsOptions opts;
  auto with_base = GetIntervals(base, y, 1, /*budget=*/16, /*w=*/64, opts);
  auto without = GetIntervals({}, y, 1, /*budget=*/16, /*w=*/64, opts);
  ASSERT_TRUE(with_base.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with_base->total_error, without->total_error * 0.1);
}

TEST(GetIntervals, TotalErrorMatchesReconstruction) {
  Rng rng(7);
  std::vector<double> base(32), y(200);
  for (auto& v : base) v = rng.Uniform(-1, 1);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::cos(i * 0.05) * 4 + rng.Gaussian(0, 0.3);
  }
  GetIntervalsOptions opts;
  auto result = GetIntervals(base, y, /*num_signals=*/2, /*budget=*/60,
                             /*w=*/10, opts);
  ASSERT_TRUE(result.ok());
  const auto approx =
      ReconstructFromIntervals(base, y.size(), result->intervals);
  EXPECT_NEAR(result->total_error, SumSquaredError(y, approx),
              1e-6 * std::max(1.0, result->total_error));
}

TEST(GetIntervals, MaxMetricTotalIsWorstInterval) {
  Rng rng(8);
  std::vector<double> y(128);
  for (auto& v : y) v = rng.Uniform(-5, 5);
  GetIntervalsOptions opts;
  opts.best_map.metric = ErrorMetric::kMaxAbs;
  auto result = GetIntervals({}, y, 1, /*budget=*/40, /*w=*/11, opts);
  ASSERT_TRUE(result.ok());
  double worst = 0.0;
  for (const Interval& iv : result->intervals) {
    worst = std::max(worst, iv.err);
  }
  EXPECT_DOUBLE_EQ(result->total_error, worst);
  const auto approx = ReconstructFromIntervals({}, y.size(),
                                               result->intervals);
  EXPECT_NEAR(result->total_error, MaxAbsoluteError(y, approx), 1e-9);
}

TEST(GetIntervals, ThreeValuePerIntervalAccounting) {
  Rng rng(9);
  std::vector<double> y(100);
  for (auto& v : y) v = rng.Uniform(0, 1);
  GetIntervalsOptions opts;
  opts.values_per_interval = 3;
  auto result = GetIntervals({}, y, 1, /*budget=*/30, /*w=*/10, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 10u);
  EXPECT_EQ(result->values_used, 30u);
}

TEST(GetIntervals, LengthOneSignalsHandled) {
  std::vector<double> y{1.0, 2.0, 3.0};
  GetIntervalsOptions opts;
  auto result = GetIntervals({}, y, /*num_signals=*/3, /*budget=*/100,
                             /*w=*/1, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 3u);
  EXPECT_NEAR(result->total_error, 0.0, 1e-12);
}

TEST(GetIntervals, RejectsEmptyOrRaggedInput) {
  GetIntervalsOptions opts;
  EXPECT_FALSE(GetIntervals({}, {}, 1, 100, 4, opts).ok());
  std::vector<double> y(10);
  EXPECT_FALSE(GetIntervals({}, y, 3, 100, 4, opts).ok());  // 10 % 3 != 0
}

TEST(ReconstructFromIntervals, LinearAndShiftMixed) {
  std::vector<double> x{10, 20, 30, 40};
  std::vector<Interval> intervals(2);
  intervals[0] = {0, 3, kShiftLinearFallback, 2.0, 1.0, 0.0};
  intervals[1] = {3, 3, 1, 0.5, 0.0, 0.0};
  const auto out = ReconstructFromIntervals(x, 6, intervals);
  EXPECT_EQ(out, (std::vector<double>{1, 3, 5, 10, 15, 20}));
}

}  // namespace
}  // namespace sbr::core
