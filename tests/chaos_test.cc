// Node-lifecycle chaos suite: seeded crash/restart fault schedules driven
// through ChaosSim, asserting the recovery invariants (no silent
// corruption, bounded loss, reconciling counters, deterministic replay).
// A failing seed prints as one line; re-run it alone with
//   SBR_CHAOS_SEED_COUNT=1 SBR_CHAOS_SEED_BASE=<seed> ./chaos_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/encoder.h"
#include "net/chaos_sim.h"

namespace sbr::net {
namespace {

core::EncoderOptions ChaosEncoderOptions() {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  return opts;
}

/// Baseline chaos configuration: every lifecycle fault armed plus a lossy
/// link. Individual tests zero out what they don't study.
ChaosOptions BaseOptions(const std::string& dir_tag, uint64_t seed) {
  ChaosOptions opts;
  opts.num_nodes = 3;
  opts.num_signals = 2;
  opts.chunk_len = 24;
  opts.rounds = 12;
  opts.encoder = ChaosEncoderOptions();
  opts.link.drop_probability = 0.1;
  opts.link.duplicate_probability = 0.05;
  opts.link.bit_flip_probability = 0.05;
  opts.link.seed = seed ^ 0xF00D;
  opts.faults.seed = seed;
  opts.log_dir = testing::TempDir() + "/chaos_" + dir_tag;
  opts.data_seed = seed ^ 0xDA7A;
  return opts;
}

size_t EnvCount(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

// ------------------------------------------------------------- the sweep

// The acceptance gate: many seeded fault schedules, zero violations.
// SBR_CHAOS_SEED_COUNT / SBR_CHAOS_SEED_BASE override the sweep range so
// tools/chaos_sweep.sh can shard it and a failure can be replayed alone.
TEST(ChaosSweep, SeededFaultSchedulesHoldInvariants) {
  const size_t count = EnvCount("SBR_CHAOS_SEED_COUNT", 50);
  const size_t base = EnvCount("SBR_CHAOS_SEED_BASE", 1);
  size_t failures = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t seed = base + i;
    ChaosSim sim(BaseOptions("sweep", seed));
    auto report = sim.Run();
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    if (!report->clean()) {
      ++failures;
      for (const std::string& v : report->violations) {
        ADD_FAILURE() << "seed " << seed << ": " << v;
      }
    }
    EXPECT_EQ(report->events_applied + report->events_skipped,
              report->events_scheduled)
        << "seed " << seed;
  }
  EXPECT_EQ(failures, 0u) << failures << " of " << count
                          << " seeds violated chaos invariants";
}

// --------------------------------------------------------- deterministic

TEST(ChaosSweep, SameSeedReplaysBitIdentically) {
  auto run = [](int which) {
    ChaosSim sim(BaseOptions("replay_" + std::to_string(which), 424242));
    auto report = sim.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->Digest() : 0;
  };
  const uint64_t first = run(0);
  const uint64_t second = run(1);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

// The lockstep sim is single-threaded; the encoders underneath fan out.
// Chaos outcomes must be bitwise identical at any encoder thread count
// (this is the case the tsan preset hammers).
TEST(ChaosSweep, EncoderThreadCountDoesNotChangeOutcome) {
  auto run = [](size_t threads) {
    ChaosOptions opts =
        BaseOptions("threads_" + std::to_string(threads), 777);
    opts.encoder.threads = threads;
    ChaosSim sim(std::move(opts));
    auto report = sim.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.ok() && report->clean());
    return report.ok() ? report->Digest() : 0;
  };
  EXPECT_EQ(run(1), run(4));
}

/// Options with the link perfect and every fault disarmed; tests arm one.
ChaosOptions QuietOptions(const std::string& dir_tag, uint64_t seed) {
  ChaosOptions opts = BaseOptions(dir_tag, seed);
  opts.link = FaultOptions();
  opts.faults.node_crash_probability = 0.0;
  opts.faults.clean_restart_probability = 0.0;
  opts.faults.station_restart_probability = 0.0;
  opts.faults.power_loss_probability = 0.0;
  opts.faults.stall_probability = 0.0;
  opts.faults.memory_pressure_probability = 0.0;
  return opts;
}

// --------------------------------------------- multi-hop routing chaos

/// Tree-shape chaos options: the base fault mix plus relay crashes armed,
/// on a 5-node tree deep enough for shared relays on every shape.
ChaosOptions TreeOptions(const std::string& dir_tag, uint64_t seed,
                         TopologyShape shape) {
  ChaosOptions opts = BaseOptions(dir_tag, seed);
  opts.num_nodes = 5;
  opts.rounds = 14;
  opts.topology = shape;
  opts.topology_seed = seed;
  opts.faults.relay_crash_probability = 0.15;
  return opts;
}

// The routing acceptance gate: seeded relay-crash schedules over every
// tree shape, zero violations (I1-I7 plus the partition invariant I8 and
// the energy reconciliation I9, all checked inside the sim).
// SBR_CHAOS_TOPOLOGY=chain|binary|random restricts the sweep to one shape
// so tools/chaos_sweep.sh --topology can shard and replay it.
TEST(ChaosSweep, RelayCrashTreeTopologiesHoldInvariants) {
  const size_t count = EnvCount("SBR_CHAOS_SEED_COUNT", 50);
  const size_t base = EnvCount("SBR_CHAOS_SEED_BASE", 1);
  const char* only = std::getenv("SBR_CHAOS_TOPOLOGY");
  size_t failures = 0;
  size_t relay_crashes = 0;
  size_t partitioned = 0;
  size_t forwarded = 0;
  for (TopologyShape shape : {TopologyShape::kChain, TopologyShape::kBinary,
                              TopologyShape::kRandom}) {
    if (only != nullptr && *only != '\0' &&
        std::string(only) != ToString(shape)) {
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      const uint64_t seed = base + i;
      ChaosSim sim(TreeOptions(std::string("tree_") + ToString(shape), seed,
                               shape));
      auto report = sim.Run();
      ASSERT_TRUE(report.ok()) << ToString(shape) << " seed " << seed << ": "
                               << report.status().ToString();
      if (!report->clean()) {
        ++failures;
        for (const std::string& v : report->violations) {
          ADD_FAILURE() << ToString(shape) << " seed " << seed << ": " << v;
        }
      }
      for (const auto& n : report->nodes) {
        relay_crashes += n.relay_crashes;
        partitioned += n.partitioned_rounds;
        forwarded += n.forwarded_copies;
      }
    }
  }
  EXPECT_EQ(failures, 0u) << failures << " tree runs violated invariants";
  // The sweep must actually exercise the machinery it gates.
  EXPECT_GT(relay_crashes, 0u);
  EXPECT_GT(partitioned, 0u);
  EXPECT_GT(forwarded, 0u);
}

// Relay-partition lifecycle pin, isolated on a clean link: a relay crash
// blacks out exactly its subtree — descendants lose precisely the rounds
// they spent behind the dead relay, nothing more, and resync via snapshot
// once the route heals. The base-adjacent node has no ancestors and is
// never partitioned.
TEST(ChaosLifecycle, RelayCrashPartitionsSubtreeUntilRestart) {
  ChaosOptions opts = QuietOptions("relay_crash", 77);
  opts.num_nodes = 4;
  opts.rounds = 14;
  opts.topology = TopologyShape::kChain;
  opts.faults.relay_crash_probability = 0.25;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t crashes = 0;
  size_t partitioned = 0;
  for (const auto& n : report->nodes) {
    crashes += n.relay_crashes;
    partitioned += n.partitioned_rounds;
    EXPECT_EQ(n.delivered + n.lost, n.fed) << "node " << n.id;
    // On a clean link the only way to lose a chunk is the partition: each
    // partitioned round costs exactly the round's chunk, recovered as an
    // explicit gap by the post-heal snapshot resync.
    EXPECT_EQ(n.lost, n.partitioned_rounds) << "node " << n.id;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(partitioned, 0u);
  EXPECT_EQ(report->nodes[0].partitioned_rounds, 0u)
      << "the base-adjacent node has no ancestors to lose";
  // Depths follow the chain.
  for (size_t i = 0; i < report->nodes.size(); ++i) {
    EXPECT_EQ(report->nodes[i].depth, i + 1);
  }
}

// Regression for the backoff-accounting bug: ChaosSim counted backoff
// slots but never charged their energy (or any radio energy at all). Now
// every node's account must reconcile exactly against the closed form of
// its charged values plus backoff slots — the same paired-report pin
// NetworkSim obeys, with the default integer-valued EnergyParams making
// the equality exact, not approximate.
TEST(ChaosEnergy, AccountMatchesClosedFormExactly) {
  ChaosOptions opts = BaseOptions("energy_pin", 31);
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  EnergyModel model;
  size_t backoffs = 0;
  double backoff_nj = 0.0;
  for (const auto& n : report->nodes) {
    EnergyAccount expect;
    model.ChargeTransmission(n.charged_values, 1, &expect);
    model.ChargeBackoff(n.backoff_slots, &expect);
    EXPECT_EQ(n.energy.total_nj(), expect.total_nj()) << "node " << n.id;
    EXPECT_GT(n.energy.total_nj(), 0.0) << "node " << n.id;
    backoffs += n.backoff_slots;
    backoff_nj += n.energy.backoff_nj;
  }
  // The lossy link forced retries, and their backoff is now paid for.
  ASSERT_GT(backoffs, 0u);
  EXPECT_GT(backoff_nj, 0.0);
}

// The energy-aware retry budget under chaos: draining nodes shed
// retransmissions, keep sensing, and every invariant still holds.
TEST(ChaosEnergy, RetryBudgetShedsRetriesAndKeepsInvariants) {
  ChaosOptions opts = BaseOptions("budget", 13);
  opts.num_nodes = 4;
  opts.topology = TopologyShape::kChain;
  opts.link.drop_probability = 0.3;
  opts.node_energy_budget_nj = 4.0e7;
  opts.retry_energy_fraction = 0.5;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t shed = 0;
  for (const auto& n : report->nodes) {
    shed += n.retries_shed;
    EXPECT_EQ(n.delivered + n.lost, n.fed) << "node " << n.id;
  }
  EXPECT_GT(shed, 0u);
}

// ------------------------------------------------- targeted fault drills

uint64_t FaultFreeDigest(uint64_t seed) {
  ChaosSim sim(QuietOptions("quiet", seed));
  auto report = sim.Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.ok() && report->clean());
  return report.ok() ? report->nodes[0].history_digest : 0;
}

// A clean shutdown/restart cycle is byte-transparent: the restarted node
// resumes mid-stream and the final station history is identical to a run
// that never restarted anything.
TEST(ChaosLifecycle, CleanRestartIsByteTransparent) {
  ChaosOptions opts = QuietOptions("clean_restart", 99);
  opts.faults.clean_restart_probability = 0.5;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t restarts = 0;
  for (const auto& n : report->nodes) {
    restarts += n.clean_restarts;
    EXPECT_EQ(n.delivered, n.fed);
    EXPECT_EQ(n.lost, 0u);
    EXPECT_EQ(n.station_gaps, 0u);
  }
  EXPECT_GT(restarts, 0u);
  EXPECT_EQ(report->nodes[0].history_digest, FaultFreeDigest(99));
}

// Crashes restore from the per-chunk checkpoint; with an intact log and a
// clean link, recovery costs skipped rounds but loses nothing that was
// ever encoded.
TEST(ChaosLifecycle, CrashRecoveryLosesNothingOnACleanLink) {
  ChaosOptions opts = QuietOptions("crash", 321);
  opts.faults.node_crash_probability = 0.3;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t crashes = 0;
  for (const auto& n : report->nodes) {
    crashes += n.crashes;
    EXPECT_EQ(n.delivered, n.fed);
    EXPECT_EQ(n.lost, 0u);
  }
  EXPECT_GT(crashes, 0u);
}

// A restarted base station reloads its logs and protocol checkpoints and
// resumes the stream in place: no gaps, no duplicate slots, history
// byte-identical to a run with no restarts.
TEST(ChaosLifecycle, StationRestartPreservesSurvivingHistory) {
  ChaosOptions opts = QuietOptions("station_restart", 55);
  opts.faults.station_restart_probability = 0.5;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  EXPECT_GT(report->station_restarts, 0u);
  for (const auto& n : report->nodes) {
    EXPECT_EQ(n.delivered, n.fed);
    EXPECT_EQ(n.station_gaps, 0u);
  }
  EXPECT_EQ(report->nodes[0].history_digest, FaultFreeDigest(55));
}

// Power loss tears the record a log was writing. Whatever the tear
// destroyed becomes explicit DataLoss; everything else survives bitwise
// (that is invariant I1, checked inside the sim).
TEST(ChaosLifecycle, PowerLossTearsSurfaceAsExplicitLoss) {
  size_t tears = 0;
  for (uint64_t seed = 800; seed < 806; ++seed) {
    ChaosOptions opts = QuietOptions("power", seed);
    opts.faults.power_loss_probability = 0.3;
    ChaosSim sim(std::move(opts));
    auto report = sim.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (const std::string& v : report->violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
    tears += report->log_tears;
  }
  EXPECT_GT(tears, 0u);
}

// A stalled node goes silent until the watchdog power-cycles it; the
// timeline only ever misses the rounds the node was actually down.
TEST(ChaosLifecycle, WatchdogRecoversStalledNodes) {
  ChaosOptions opts = QuietOptions("stall", 1234);
  opts.faults.stall_probability = 0.3;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t stalled = 0, watchdogs = 0;
  for (const auto& n : report->nodes) {
    stalled += n.stall_rounds;
    watchdogs += n.watchdog_restarts;
    EXPECT_EQ(n.delivered + n.lost, n.fed);
  }
  EXPECT_GT(stalled, 0u);
  EXPECT_GT(watchdogs, 0u);
}

// Memory pressure flips encoders into the low-memory base construction
// mid-stream; the protocol and the decode mirror must not notice.
TEST(ChaosLifecycle, MemoryPressureTogglesKeepInvariants) {
  ChaosOptions opts = QuietOptions("pressure", 4321);
  opts.faults.memory_pressure_probability = 0.5;
  ChaosSim sim(std::move(opts));
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const std::string& v : report->violations) ADD_FAILURE() << v;
  size_t toggles = 0;
  for (const auto& n : report->nodes) {
    toggles += n.pressure_toggles;
    EXPECT_EQ(n.delivered, n.fed);
  }
  EXPECT_GT(toggles, 0u);
}

// ------------------------------------------------------- FaultScheduler

TEST(FaultScheduler, DeterministicAndTailFree) {
  FaultScheduleOptions opts;
  opts.rounds = 40;
  opts.node_ids = {1, 2, 3, 4};
  opts.seed = 7;
  opts.fault_free_tail = 10;
  FaultScheduler a(opts);
  FaultScheduler b(opts);
  ASSERT_EQ(a.total_events(), b.total_events());
  for (size_t i = 0; i < a.total_events(); ++i) {
    EXPECT_EQ(a.events()[i].round, b.events()[i].round);
    EXPECT_EQ(a.events()[i].fault, b.events()[i].fault);
    EXPECT_EQ(a.events()[i].node_id, b.events()[i].node_id);
  }
  size_t counted = 0;
  for (size_t f = 0; f < kNumLifecycleFaults; ++f) {
    counted += a.count(static_cast<LifecycleFault>(f));
  }
  EXPECT_EQ(counted, a.total_events());
  size_t last_round = 0;
  for (const LifecycleEvent& e : a.events()) {
    EXPECT_GE(e.round, last_round) << "events not sorted";
    last_round = e.round;
    EXPECT_LT(e.round, opts.rounds - opts.fault_free_tail);
    if (e.fault == LifecycleFault::kNodeStall) {
      EXPECT_GT(e.duration, 0u);
      EXPECT_LE(e.round + e.duration, opts.rounds - opts.fault_free_tail);
    }
  }
  EXPECT_GT(a.total_events(), 0u);
}

// Arming relay crashes with no relays must not perturb star schedules:
// the relay draw loop is empty, so the stream of node draws is untouched
// and the schedule stays byte-identical to the pre-topology one.
TEST(FaultScheduler, RelayCrashDrawsDoNotPerturbStarSchedules) {
  FaultScheduleOptions opts;
  opts.rounds = 40;
  opts.node_ids = {1, 2, 3, 4};
  opts.seed = 7;
  opts.fault_free_tail = 10;
  FaultScheduler before(opts);
  opts.relay_crash_probability = 0.9;  // armed, but relay_ids stays empty
  FaultScheduler after(opts);
  ASSERT_EQ(before.total_events(), after.total_events());
  for (size_t i = 0; i < before.total_events(); ++i) {
    EXPECT_EQ(before.events()[i].round, after.events()[i].round);
    EXPECT_EQ(before.events()[i].fault, after.events()[i].fault);
    EXPECT_EQ(before.events()[i].node_id, after.events()[i].node_id);
    EXPECT_EQ(before.events()[i].duration, after.events()[i].duration);
  }
  EXPECT_EQ(after.count(LifecycleFault::kRelayCrash), 0u);
}

TEST(FaultScheduler, RelayCrashesScheduledInsideFaultWindow) {
  FaultScheduleOptions opts;
  opts.rounds = 40;
  opts.node_ids = {1, 2, 3, 4};
  opts.relay_ids = {2, 3};
  opts.relay_crash_probability = 0.5;
  opts.max_relay_down_rounds = 3;
  opts.seed = 7;
  opts.fault_free_tail = 10;
  FaultScheduler sched(opts);
  size_t crashes = 0;
  for (const LifecycleEvent& e : sched.events()) {
    if (e.fault != LifecycleFault::kRelayCrash) continue;
    ++crashes;
    EXPECT_TRUE(e.node_id == 2 || e.node_id == 3);
    EXPECT_GT(e.duration, 0u);
    EXPECT_LE(e.duration, opts.max_relay_down_rounds);
    EXPECT_LE(e.round + e.duration, opts.rounds - opts.fault_free_tail);
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(crashes, sched.count(LifecycleFault::kRelayCrash));
}

TEST(FaultScheduler, DifferentSeedsDiverge) {
  FaultScheduleOptions opts;
  opts.rounds = 40;
  opts.node_ids = {1, 2, 3};
  opts.seed = 1;
  FaultScheduler a(opts);
  opts.seed = 2;
  FaultScheduler b(opts);
  bool differs = a.total_events() != b.total_events();
  for (size_t i = 0; !differs && i < a.total_events(); ++i) {
    differs = a.events()[i].round != b.events()[i].round ||
              a.events()[i].fault != b.events()[i].fault ||
              a.events()[i].node_id != b.events()[i].node_id;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace sbr::net
