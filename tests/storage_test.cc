// Unit tests for the storage substrate: the append-only chunk log
// (including durability and torn-record recovery) and the queryable
// history store.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/encoder.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "storage/query_engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::storage {
namespace {

core::Transmission MakeTransmission(uint32_t seed) {
  core::Transmission t;
  t.num_signals = 2;
  t.chunk_len = 16;
  t.w = 4;
  core::BaseUpdate bu;
  bu.slot = 0;
  bu.values = {1.0 + seed, 2.0, 3.0, 4.0};
  t.base_updates.push_back(bu);
  t.intervals.push_back({0, -1, 0.5, static_cast<double>(seed)});
  t.intervals.push_back({16, 0, 1.0, 0.0});
  return t;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ChunkLog, InMemoryAppendAndRead) {
  ChunkLog log;
  ASSERT_TRUE(log.Append(MakeTransmission(1)).ok());
  ASSERT_TRUE(log.Append(MakeTransmission(2)).ok());
  EXPECT_EQ(log.size(), 2u);
  auto t = log.Read(1);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->intervals[0].b, 2.0);
  EXPECT_FALSE(log.Read(2).ok());
}

TEST(ChunkLog, DurableRoundTrip) {
  const std::string path = TempPath("sbr_log_rt.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(2)).ok());
  }
  auto reopened = ChunkLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 2u);
  auto t = reopened->Read(0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->base_updates[0].values[0], 2.0);
  // Appending after reopen keeps going.
  ASSERT_TRUE(reopened->Append(MakeTransmission(3)).ok());
  auto again = ChunkLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
  std::filesystem::remove(path);
}

TEST(ChunkLog, TornFinalRecordDropped) {
  const std::string path = TempPath("sbr_log_torn.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(2)).ok());
  }
  // Simulate a crash mid-write: truncate the file by a few bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  auto recovered = ChunkLog::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 1u);  // second record dropped
  auto t = recovered->Read(0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->base_updates[0].values[0], 2.0);
  std::filesystem::remove(path);
}

// Flips one payload byte of the record starting at `offset` (past its
// 9-byte len/type/crc framing) so its CRC fails on reload.
void FlipPayloadByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(offset + 10);
  char b;
  f.read(&b, 1);
  b ^= 0x20;
  f.seekp(offset + 10);
  f.write(&b, 1);
}

TEST(ChunkLog, CorruptMidLogRecordQuarantinedAsGap) {
  const std::string path = TempPath("sbr_log_midcrc.log");
  std::filesystem::remove(path);
  size_t after_first = 0;
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    after_first = std::filesystem::file_size(path);
    ASSERT_TRUE(log->Append(MakeTransmission(2)).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(3)).ok());
  }
  FlipPayloadByte(path, after_first);
  auto recovered = ChunkLog::Open(path);
  ASSERT_TRUE(recovered.ok());
  // The corrupt transmission becomes a one-chunk DataLoss gap, and — with
  // no snapshot to re-anchor the base-signal lineage — so does the valid
  // transmission after it. The timeline keeps its length; no record is
  // silently decoded, none silently vanishes.
  ASSERT_EQ(recovered->size(), 3u);
  EXPECT_EQ(recovered->dropped_records(), 0u);
  EXPECT_EQ(recovered->quarantined_records(), 2u);
  EXPECT_TRUE(recovered->recovered_lineage_broken());
  auto t = recovered->Read(0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->base_updates[0].values[0], 2.0);
  for (size_t i : {1u, 2u}) {
    ASSERT_EQ(recovered->record_type(i), RecordType::kGap);
    auto gap = recovered->ReadGap(i);
    ASSERT_TRUE(gap.ok());
    EXPECT_EQ(*gap, 1u);
  }
  // The corrupt on-disk bytes are left untouched: reopening replays the
  // identical recovery instead of compounding it.
  auto again = ChunkLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
  EXPECT_EQ(again->quarantined_records(), 2u);
  std::filesystem::remove(path);
}

TEST(ChunkLog, SnapshotReanchorsLineageAfterQuarantine) {
  const std::string path = TempPath("sbr_log_reanchor.log");
  std::filesystem::remove(path);
  size_t after_first = 0;
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    after_first = std::filesystem::file_size(path);
    ASSERT_TRUE(log->Append(MakeTransmission(2)).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(3)).ok());
    core::BaseSnapshot snap;
    snap.w = 4;
    ASSERT_TRUE(log->AppendSnapshot(snap).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(4)).ok());
  }
  FlipPayloadByte(path, after_first);
  auto recovered = ChunkLog::Open(path);
  ASSERT_TRUE(recovered.ok());
  // Records 1 and 2 are quarantined to gaps, but the valid snapshot
  // re-establishes the base-signal state: the transmission after it is
  // decodable again and survives verbatim.
  ASSERT_EQ(recovered->size(), 5u);
  EXPECT_EQ(recovered->quarantined_records(), 2u);
  EXPECT_FALSE(recovered->recovered_lineage_broken());
  EXPECT_EQ(recovered->record_type(1), RecordType::kGap);
  EXPECT_EQ(recovered->record_type(2), RecordType::kGap);
  EXPECT_EQ(recovered->record_type(3), RecordType::kSnapshot);
  ASSERT_EQ(recovered->record_type(4), RecordType::kTransmission);
  auto t = recovered->Read(4);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->base_updates[0].values[0], 5.0);
  std::filesystem::remove(path);
}

TEST(ChunkLog, HalfWrittenFinalRecordDroppedAndTruncated) {
  const std::string path = TempPath("sbr_log_halfwrite.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    ASSERT_TRUE(log->Append(MakeTransmission(2)).ok());
  }
  const auto good_size = std::filesystem::file_size(path);
  {
    // Power loss mid-append: the length prefix landed but the payload did
    // not — the record claims more bytes than the file holds.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const uint8_t garbage[] = {0x40, 0x00, 0x00, 0x00, 0x00, 0xAA, 0xBB};
    f.write(reinterpret_cast<const char*>(garbage), sizeof(garbage));
  }
  auto recovered = ChunkLog::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 2u);
  EXPECT_EQ(recovered->dropped_records(), 1u);
  // Recovery truncates the torn tail so later appends frame correctly.
  EXPECT_EQ(std::filesystem::file_size(path), good_size);
  ASSERT_TRUE(recovered->Append(MakeTransmission(3)).ok());
  auto again = ChunkLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);
  EXPECT_EQ(again->dropped_records(), 0u);
  std::filesystem::remove(path);
}

TEST(ChunkLog, CheckpointRecordsRoundTripAndIndex) {
  const std::string path = TempPath("sbr_log_ckpt.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log->LastCheckpointIndex(), ChunkLog::kNoCheckpoint);
    ASSERT_TRUE(log->AppendCheckpoint({1, 2, 3}).ok());
    core::Transmission t = MakeTransmission(1);
    // Only one base slot is populated; route the second interval through
    // the linear fall-back so the history replay below can decode it.
    t.intervals[1].shift = -1;
    ASSERT_TRUE(log->Append(t).ok());
    ASSERT_TRUE(log->AppendCheckpoint({4, 5}).ok());
  }
  auto log = ChunkLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ(log->LastCheckpointIndex(), 2u);
  auto blob = log->ReadCheckpoint(2);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, (std::vector<uint8_t>{4, 5}));
  // Checkpoints are opaque to every non-checkpoint reader.
  EXPECT_FALSE(log->Read(0).ok());
  EXPECT_FALSE(log->ReadCheckpoint(1).ok());
  // Replaying the log skips checkpoint records: they carry recovery
  // state, not timeline content.
  auto history = HistoryStore::FromLog(*log, 64);
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history->num_chunks(), 1u);
  std::filesystem::remove(path);
}

TEST(ChunkLog, GapAndSnapshotRecordsRoundTripThroughDisk) {
  const std::string path = TempPath("sbr_log_types.log");
  std::filesystem::remove(path);
  core::BaseSnapshot snap;
  snap.missing_chunks = 3;
  snap.w = 4;
  snap.base_kind = core::BaseKind::kStored;
  core::BaseUpdate bu;
  bu.slot = 2;
  bu.values = {1.5, -2.5, 3.5, 0.25};
  snap.slots.push_back(bu);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeTransmission(1)).ok());
    ASSERT_TRUE(log->AppendGap(3).ok());
    ASSERT_TRUE(log->AppendSnapshot(snap).ok());
  }
  auto reopened = ChunkLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->size(), 3u);
  EXPECT_EQ(reopened->dropped_records(), 0u);
  EXPECT_EQ(reopened->record_type(0), RecordType::kTransmission);
  EXPECT_EQ(reopened->record_type(1), RecordType::kGap);
  EXPECT_EQ(reopened->record_type(2), RecordType::kSnapshot);

  auto gap = reopened->ReadGap(1);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, 3u);
  auto s = reopened->ReadSnapshot(2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->missing_chunks, 3u);
  EXPECT_EQ(s->w, 4u);
  EXPECT_EQ(s->base_kind, core::BaseKind::kStored);
  ASSERT_EQ(s->slots.size(), 1u);
  EXPECT_EQ(s->slots[0].slot, 2u);
  EXPECT_EQ(s->slots[0].values, bu.values);

  // Type-mismatched reads are refused, not misinterpreted.
  EXPECT_FALSE(reopened->Read(1).ok());
  EXPECT_FALSE(reopened->ReadGap(0).ok());
  EXPECT_FALSE(reopened->ReadSnapshot(1).ok());
  std::filesystem::remove(path);
}

TEST(ChunkLog, BadMagicRejected) {
  const std::string path = TempPath("sbr_log_magic.log");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a log at all";
  }
  EXPECT_FALSE(ChunkLog::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(ChunkLog, TotalBytesAccumulates) {
  ChunkLog log;
  EXPECT_EQ(log.TotalBytes(), 0u);
  ASSERT_TRUE(log.Append(MakeTransmission(1)).ok());
  const size_t one = log.TotalBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(log.Append(MakeTransmission(1)).ok());
  EXPECT_EQ(log.TotalBytes(), 2 * one);
}

// ------------------------------------------------------ HistoryStore

// Produces a real encoder stream for history tests.
std::vector<core::Transmission> EncodeStream(
    std::vector<std::vector<double>>* chunks_out, size_t num_chunks,
    size_t m_base) {
  core::EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = m_base;
  core::SbrEncoder enc(opts);
  Rng rng(5);
  std::vector<core::Transmission> out;
  for (size_t c = 0; c < num_chunks; ++c) {
    std::vector<double> y(2 * 128);
    for (size_t s = 0; s < 2; ++s) {
      for (size_t i = 0; i < 128; ++i) {
        y[s * 128 + i] = std::sin(i * 0.2 + c) * (s + 1) +
                         rng.Gaussian(0, 0.05);
      }
    }
    auto t = enc.EncodeChunk(y, 2);
    EXPECT_TRUE(t.ok());
    chunks_out->push_back(y);
    out.push_back(std::move(t).value());
  }
  return out;
}

TEST(HistoryStore, IngestAndQueryRange) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 4, 64);
  HistoryStore store(64);
  for (const auto& t : stream) {
    ASSERT_TRUE(store.Ingest(t).ok());
  }
  EXPECT_EQ(store.num_chunks(), 4u);
  EXPECT_EQ(store.num_signals(), 2u);
  EXPECT_EQ(store.chunk_len(), 128u);
  EXPECT_EQ(store.history_len(), 512u);

  // Cross-chunk range query equals the concatenated per-chunk
  // reconstructions.
  auto range = store.QueryRange(1, 100, 300);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 200u);
  for (size_t t = 100; t < 300; ++t) {
    auto point = store.QueryPoint(1, t);
    ASSERT_TRUE(point.ok());
    EXPECT_DOUBLE_EQ((*range)[t - 100], *point);
  }
}

TEST(HistoryStore, ReconstructionTracksTruth) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 3, 64);
  HistoryStore store(64);
  for (const auto& t : stream) ASSERT_TRUE(store.Ingest(t).ok());
  // The approximation error should be a small fraction of the signal
  // energy.
  for (size_t c = 0; c < 3; ++c) {
    auto rec = store.Chunk(c);
    ASSERT_TRUE(rec.ok());
    double energy = 0, err = 0;
    for (size_t s = 0; s < 2; ++s) {
      for (size_t i = 0; i < 128; ++i) {
        const double tv = truth[c][s * 128 + i];
        const double rv = (*rec)(s, i);
        energy += tv * tv;
        err += (tv - rv) * (tv - rv);
      }
    }
    EXPECT_LT(err, 0.2 * energy) << "chunk " << c;
  }
}

TEST(HistoryStore, QueryBoundsChecked) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 2, 64);
  HistoryStore store(64);
  for (const auto& t : stream) ASSERT_TRUE(store.Ingest(t).ok());
  EXPECT_FALSE(store.QueryRange(5, 0, 10).ok());    // bad signal
  EXPECT_FALSE(store.QueryRange(0, 0, 1000).ok());  // past the end
  EXPECT_FALSE(store.QueryRange(0, 10, 5).ok());    // inverted
  EXPECT_FALSE(store.Chunk(2).ok());
  EXPECT_TRUE(store.QueryRange(0, 0, store.history_len()).ok());
}

TEST(HistoryStore, GeometryChangeRejected) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 1, 64);
  HistoryStore store(64);
  ASSERT_TRUE(store.Ingest(stream[0]).ok());
  core::Transmission other = stream[0];
  other.num_signals = 3;
  EXPECT_FALSE(store.Ingest(other).ok());
}

TEST(HistoryStore, FromLogReplaysEverything) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 4, 64);
  const std::string path = TempPath("sbr_hist.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (const auto& t : stream) ASSERT_TRUE(log->Append(t).ok());
  }
  auto log = ChunkLog::Open(path);
  ASSERT_TRUE(log.ok());
  auto store = HistoryStore::FromLog(*log, 64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_chunks(), 4u);

  // Compare against a direct ingest: identical output (decoder state is a
  // pure function of the transmission sequence).
  HistoryStore direct(64);
  for (const auto& t : stream) ASSERT_TRUE(direct.Ingest(t).ok());
  auto a = store->QueryRange(0, 0, store->history_len());
  auto b = direct.QueryRange(0, 0, direct.history_len());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  std::filesystem::remove(path);
}

TEST(HistoryStore, GapsAdvanceTimelineAndAnswerDataLoss) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 2, 64);
  HistoryStore store(64);
  ASSERT_TRUE(store.Ingest(stream[0]).ok());
  store.MarkGap(2);
  ASSERT_TRUE(store.Ingest(stream[1]).ok());

  EXPECT_EQ(store.num_chunks(), 4u);
  EXPECT_EQ(store.num_gaps(), 2u);
  EXPECT_FALSE(store.IsGap(0));
  EXPECT_TRUE(store.IsGap(1));
  EXPECT_TRUE(store.IsGap(2));
  EXPECT_FALSE(store.IsGap(3));
  EXPECT_EQ(store.history_len(), 4 * 128u);

  // Queries inside intact chunks work; anything touching a gap is
  // DataLoss, including the whole-chunk accessor.
  EXPECT_TRUE(store.QueryRange(0, 0, 128).ok());
  EXPECT_TRUE(store.QueryRange(1, 3 * 128, 4 * 128).ok());
  auto touching = store.QueryRange(0, 100, 200);
  ASSERT_FALSE(touching.ok());
  EXPECT_EQ(touching.status().code(), StatusCode::kDataLoss);
  auto gap_chunk = store.Chunk(2);
  ASSERT_FALSE(gap_chunk.ok());
  EXPECT_EQ(gap_chunk.status().code(), StatusCode::kDataLoss);
  auto gap_point = store.QueryPoint(0, 128);
  ASSERT_FALSE(gap_point.ok());
  EXPECT_EQ(gap_point.status().code(), StatusCode::kDataLoss);
}

TEST(HistoryStore, FromLogReplaysGapsIdentically) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 3, 64);
  const std::string path = TempPath("sbr_hist_gaps.log");
  std::filesystem::remove(path);
  {
    auto log = ChunkLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(stream[0]).ok());
    ASSERT_TRUE(log->AppendGap(1).ok());
    ASSERT_TRUE(log->Append(stream[1]).ok());
    ASSERT_TRUE(log->Append(stream[2]).ok());
  }
  auto log = ChunkLog::Open(path);
  ASSERT_TRUE(log.ok());
  auto store = HistoryStore::FromLog(*log, 64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_chunks(), 4u);
  EXPECT_EQ(store->num_gaps(), 1u);
  EXPECT_TRUE(store->IsGap(1));

  HistoryStore direct(64);
  ASSERT_TRUE(direct.Ingest(stream[0]).ok());
  direct.MarkGap(1);
  ASSERT_TRUE(direct.Ingest(stream[1]).ok());
  ASSERT_TRUE(direct.Ingest(stream[2]).ok());
  for (size_t c : {0u, 2u, 3u}) {
    auto a = store->QueryRange(0, c * 128, (c + 1) * 128);
    auto b = direct.QueryRange(0, c * 128, (c + 1) * 128);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
  std::filesystem::remove(path);
}

// ----------------------------------------------- CompressedHistory

TEST(CompressedHistory, AggregatesMatchMaterializedReconstruction) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 4, 64);
  HistoryStore store(64);
  CompressedHistory queries(64);
  for (const auto& t : stream) {
    ASSERT_TRUE(store.Ingest(t).ok());
    ASSERT_TRUE(queries.Ingest(t).ok());
  }
  ASSERT_EQ(queries.history_len(), store.history_len());

  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t signal = static_cast<size_t>(rng.UniformInt(0, 1));
    size_t t0 = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(store.history_len() - 2)));
    size_t t1 = t0 + 1 + static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(store.history_len() - t0 - 1)));
    auto agg = queries.Aggregate(signal, t0, t1);
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    auto range = store.QueryRange(signal, t0, t1);
    ASSERT_TRUE(range.ok());

    double sum = 0, mn = 1e300, mx = -1e300;
    for (double v : *range) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double avg = sum / range->size();
    double var = 0;
    for (double v : *range) var += (v - avg) * (v - avg);
    var /= range->size();

    EXPECT_EQ(agg->count, range->size());
    EXPECT_NEAR(agg->sum, sum, 1e-6 * std::max(1.0, std::abs(sum)));
    EXPECT_NEAR(agg->avg, avg, 1e-6 * std::max(1.0, std::abs(avg)));
    EXPECT_NEAR(agg->min, mn, 1e-9);
    EXPECT_NEAR(agg->max, mx, 1e-9);
    EXPECT_NEAR(agg->variance, var, 1e-5 * std::max(1.0, var));
  }
}

TEST(CompressedHistory, PointValuesMatchDecoder) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 3, 64);
  HistoryStore store(64);
  CompressedHistory queries(64);
  for (const auto& t : stream) {
    ASSERT_TRUE(store.Ingest(t).ok());
    ASSERT_TRUE(queries.Ingest(t).ok());
  }
  for (size_t t = 0; t < store.history_len(); t += 7) {
    auto a = queries.Value(1, t);
    auto b = store.QueryPoint(1, t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(*a, *b, 1e-9 * std::max(1.0, std::abs(*b)));
  }
}

TEST(CompressedHistory, RetainsFewBaseVersions) {
  // Base updates become rare after warm-up, so snapshots stay few even
  // over many chunks.
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 6, 64);
  CompressedHistory queries(64);
  for (const auto& t : stream) ASSERT_TRUE(queries.Ingest(t).ok());
  EXPECT_LT(queries.num_base_versions(), queries.num_chunks());
}

// Sweep every encoder configuration: the query engine must agree with the
// materializing store under each base strategy and encoding mode.
enum class PipeVariant { kDefault, kDctFixed, kNoBase, kQuadratic, kCompact };

class CompressedHistoryVariants
    : public testing::TestWithParam<PipeVariant> {};

TEST_P(CompressedHistoryVariants, MatchesHistoryStore) {
  core::EncoderOptions opts;
  opts.total_band = 110;
  opts.m_base = 96;
  switch (GetParam()) {
    case PipeVariant::kDefault:
      break;
    case PipeVariant::kDctFixed:
      opts.base_strategy = core::BaseStrategy::kDctFixed;
      opts.w = 12;
      break;
    case PipeVariant::kNoBase:
      opts.base_strategy = core::BaseStrategy::kNone;
      break;
    case PipeVariant::kQuadratic:
      opts.quadratic = true;
      break;
    case PipeVariant::kCompact:
      opts.compact_wire = true;
      break;
  }
  core::SbrEncoder enc(opts);
  HistoryStore store(opts.m_base);
  CompressedHistory queries(opts.m_base);
  Rng rng(17);
  for (size_t c = 0; c < 4; ++c) {
    std::vector<double> y(2 * 128);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(i * 0.17 + c) * 4 + rng.Gaussian(0, 0.1);
    }
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    // Route through the wire so compact-mode rounding is exercised.
    BinaryWriter w;
    t->Serialize(&w);
    BinaryReader r(w.buffer());
    auto parsed = core::Transmission::Deserialize(&r);
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(store.Ingest(*parsed).ok());
    ASSERT_TRUE(queries.Ingest(*parsed).ok());
  }
  for (auto [t0, t1] : {std::pair<size_t, size_t>{0, 512},
                        {100, 150}, {120, 400}, {511, 512}}) {
    auto agg = queries.Aggregate(1, t0, t1);
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    auto range = store.QueryRange(1, t0, t1);
    ASSERT_TRUE(range.ok());
    double sum = 0, mn = 1e300, mx = -1e300;
    for (double v : *range) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_NEAR(agg->sum, sum, 1e-6 * std::max(1.0, std::abs(sum)));
    EXPECT_NEAR(agg->min, mn, 1e-9);
    EXPECT_NEAR(agg->max, mx, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompressedHistoryVariants,
                         testing::Values(PipeVariant::kDefault,
                                         PipeVariant::kDctFixed,
                                         PipeVariant::kNoBase,
                                         PipeVariant::kQuadratic,
                                         PipeVariant::kCompact));

TEST(CompressedHistory, BoundsChecked) {
  std::vector<std::vector<double>> truth;
  const auto stream = EncodeStream(&truth, 1, 64);
  CompressedHistory queries(64);
  ASSERT_TRUE(queries.Ingest(stream[0]).ok());
  EXPECT_FALSE(queries.Aggregate(9, 0, 10).ok());
  EXPECT_FALSE(queries.Aggregate(0, 5, 5).ok());
  EXPECT_FALSE(queries.Aggregate(0, 0, 100000).ok());
}

}  // namespace
}  // namespace sbr::storage
