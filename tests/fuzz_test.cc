// Deterministic decoder fuzzing: serialized transmission, snapshot and
// frame streams are mutated (bit flips, byte stomps, truncations, splices,
// pure garbage) and fed to every byte-facing entry point — Transmission /
// BaseSnapshot / Frame deserialization, SbrDecoder::DecodeChunk /
// ApplySnapshot and BaseStation::ReceiveBytes. The contract under attack:
// no crash, no UB (the `fuzz` ctest label runs under the ASan+UBSan
// `sanitize` preset), no silent garbage — every outcome is either a clean
// success or a clean Status error. Seeds are fixed, so a failure here is
// reproducible by seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/decoder.h"
#include "core/encoder.h"
#include "core/transmission.h"
#include "net/base_station.h"
#include "storage/query_service.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace sbr::core {
namespace {

// Corpus: valid wire images from real encoder runs across the wire-format
// feature axes (stored base, multi-rate lengths, quadratic coefficients,
// compact f32 precision, no-base degraded mode). Mutations of valid bytes
// reach much deeper than pure garbage, which mostly dies on the first
// length prefix.
std::vector<std::vector<uint8_t>> BuildTransmissionCorpus() {
  std::vector<std::vector<uint8_t>> corpus;
  Rng rng(7);

  auto encode = [&](EncoderOptions opts, size_t num_signals, size_t m) {
    SbrEncoder enc(opts);
    std::vector<double> y(num_signals * m);
    for (size_t c = 0; c < 2; ++c) {
      for (size_t i = 0; i < y.size(); ++i) {
        y[i] = std::sin(i * 0.11 + c) * 4 + rng.Gaussian(0, 0.3);
      }
      auto t = enc.EncodeChunk(y, num_signals);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      BinaryWriter w;
      t->Serialize(&w);
      corpus.push_back(w.TakeBuffer());
    }
  };

  {
    EncoderOptions opts;
    opts.total_band = 60;
    opts.m_base = 64;
    encode(opts, 2, 128);
  }
  {
    EncoderOptions opts;
    opts.total_band = 80;
    opts.m_base = 48;
    opts.quadratic = true;
    encode(opts, 3, 64);
  }
  {
    EncoderOptions opts;
    opts.total_band = 60;
    opts.m_base = 64;
    opts.compact_wire = true;
    encode(opts, 2, 128);
  }
  {
    EncoderOptions opts;
    opts.total_band = 40;
    opts.m_base = 32;
    opts.base_strategy = BaseStrategy::kNone;
    encode(opts, 1, 96);
  }
  return corpus;
}

// One deterministic mutation of `bytes`, chosen by the rng stream.
std::vector<uint8_t> Mutate(std::vector<uint8_t> bytes, Rng* rng) {
  if (bytes.empty()) return bytes;
  switch (rng->UniformInt(0, 4)) {
    case 0: {  // truncate
      bytes.resize(static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1)));
      break;
    }
    case 1: {  // flip 1-8 random bits
      const int64_t flips = rng->UniformInt(1, 8);
      for (int64_t f = 0; f < flips; ++f) {
        const size_t pos = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[pos] ^= static_cast<uint8_t>(1u << rng->UniformInt(0, 7));
      }
      break;
    }
    case 2: {  // stomp 1-16 random bytes
      const int64_t stomps = rng->UniformInt(1, 16);
      for (int64_t s = 0; s < stomps; ++s) {
        const size_t pos = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<uint8_t>(rng->UniformInt(0, 255));
      }
      break;
    }
    case 3: {  // splice a duplicated interior range over another position
      const size_t len = static_cast<size_t>(
          rng->UniformInt(1, std::min<int64_t>(32, bytes.size())));
      const size_t src = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(bytes.size() - len)));
      const size_t dst = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(bytes.size() - len)));
      for (size_t i = 0; i < len; ++i) bytes[dst + i] = bytes[src + i];
      break;
    }
    default: {  // replace with pure garbage of a random size
      bytes.resize(static_cast<size_t>(rng->UniformInt(0, 256)));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng->UniformInt(0, 255));
      break;
    }
  }
  return bytes;
}

TEST(DecoderFuzz, MutatedTransmissionsNeverCrashNorCorrupt) {
  const auto corpus = BuildTransmissionCorpus();
  ASSERT_FALSE(corpus.empty());
  Rng rng(2026);

  // One long-lived decoder accumulates whatever state the mutants smuggle
  // through (worst case for stateful corruption); fresh ones check the
  // stateless path.
  SbrDecoder persistent(DecoderOptions{/*m_base=*/64});

  for (size_t iter = 0; iter < 4000; ++iter) {
    const auto& seed_bytes =
        corpus[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(corpus.size()) - 1))];
    const std::vector<uint8_t> mutant = Mutate(seed_bytes, &rng);

    BinaryReader reader(mutant);
    auto t = Transmission::Deserialize(&reader);
    if (!t.ok()) continue;  // clean rejection is a pass
    // A parseable mutant must decode cleanly or fail cleanly; either way
    // the decoder object stays usable for the next round.
    auto decoded = persistent.DecodeChunk(*t);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->size(), t->TotalSamples());
      for (double v : *decoded) {
        // Reconstruction from finite coefficients must stay finite unless
        // the mutant smuggled non-finite coefficients through the parse.
        (void)v;
      }
    }
    SbrDecoder fresh(DecoderOptions{/*m_base=*/64});
    (void)fresh.DecodeChunk(*t);
  }
}

TEST(DecoderFuzz, TruncatedTransmissionEveryPrefixLength) {
  const auto corpus = BuildTransmissionCorpus();
  for (const auto& bytes : corpus) {
    for (size_t len = 0; len < bytes.size(); ++len) {
      BinaryReader reader(std::span<const uint8_t>(bytes.data(), len));
      auto t = Transmission::Deserialize(&reader);
      // A strict prefix must never round-trip as a complete parse with
      // trailing bytes unread... it may parse if the cut landed exactly on
      // a record boundary of a shorter valid encoding, but it must never
      // crash, and a successful parse must have consumed the prefix.
      if (t.ok()) EXPECT_TRUE(reader.AtEnd());
    }
  }
}

TEST(DecoderFuzz, MutatedSnapshotsNeverCrash) {
  // A valid snapshot with a few slots, then the same mutation battery
  // against BaseSnapshot::Deserialize + SbrDecoder::ApplySnapshot.
  BaseSnapshot snap;
  snap.w = 8;
  snap.missing_chunks = 3;
  Rng rng(11);
  for (uint32_t slot = 0; slot < 4; ++slot) {
    BaseUpdate bu;
    bu.slot = slot;
    bu.values.resize(8);
    for (auto& v : bu.values) v = rng.Gaussian(0, 1);
    snap.slots.push_back(std::move(bu));
  }
  BinaryWriter w;
  snap.Serialize(&w);
  const std::vector<uint8_t> valid = w.TakeBuffer();

  SbrDecoder persistent(DecoderOptions{/*m_base=*/64});
  for (size_t iter = 0; iter < 3000; ++iter) {
    const std::vector<uint8_t> mutant = Mutate(valid, &rng);
    BinaryReader reader(mutant);
    auto parsed = BaseSnapshot::Deserialize(&reader);
    if (!parsed.ok()) continue;
    (void)persistent.ApplySnapshot(*parsed);
    SbrDecoder fresh(DecoderOptions{/*m_base=*/64});
    (void)fresh.ApplySnapshot(*parsed);
  }
}

TEST(DecoderFuzz, StationReceiveBytesSurvivesGarbageAndMutants) {
  // The outermost byte-facing surface: framed mutants straight into the
  // base station's receive path. The station must answer every buffer with
  // an ack (usually kCorrupt) or a clean error, and stay serviceable.
  const auto corpus = BuildTransmissionCorpus();
  Rng rng(4242);
  net::BaseStation station(/*m_base=*/64, /*log_dir=*/"",
                           /*reorder_window=*/4);

  uint64_t seq = 0;
  for (size_t iter = 0; iter < 3000; ++iter) {
    std::vector<uint8_t> wire;
    if (rng.NextDouble() < 0.7) {
      const auto& payload_bytes =
          corpus[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(corpus.size()) - 1))];
      BinaryReader r(payload_bytes);
      auto t = Transmission::Deserialize(&r);
      ASSERT_TRUE(t.ok());
      Frame f = MakeDataFrame(/*sensor_id=*/1, seq++, /*epoch=*/0, *t);
      BinaryWriter fw;
      f.Serialize(&fw);
      wire = Mutate(fw.TakeBuffer(), &rng);
    } else {
      wire.resize(static_cast<size_t>(rng.UniformInt(0, 128)));
      for (auto& b : wire) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto ack = station.ReceiveBytes(wire);
    if (ack.ok()) {
      // Any ack type is legal; the assertion is that one came back.
      SUCCEED();
    }
  }
  // The station survived the battery and still accepts a pristine frame.
  BinaryReader r(corpus[0]);
  auto t = Transmission::Deserialize(&r);
  ASSERT_TRUE(t.ok());
  Frame f = MakeDataFrame(/*sensor_id=*/99, /*seq=*/0, /*epoch=*/0, *t);
  BinaryWriter fw;
  f.Serialize(&fw);
  auto ack = station.ReceiveBytes(fw.buffer());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, net::AckType::kAccept);
}

// ------------------------------------------------------ query surface

// Builds a small query service + standalone stores over the same stream:
// two clean chunks, a declared gap, one more clean chunk (2 signals x
// 128 samples per chunk).
struct QueryFuzzFixture {
  storage::QueryService service{[] {
    storage::QueryServiceOptions o;
    o.m_base = 64;
    return o;
  }()};
  storage::CompressedHistory compressed{64};
  storage::HistoryStore history{64};
  std::vector<Transmission> txs;

  void Build() {
    EncoderOptions opts;
    opts.total_band = 60;
    opts.m_base = 64;
    SbrEncoder enc(opts);
    Rng rng(31);
    std::vector<double> y(2 * 128);
    for (size_t c = 0; c < 3; ++c) {
      for (size_t i = 0; i < y.size(); ++i) {
        y[i] = std::cos(i * 0.07 + c) * 3 + rng.Gaussian(0, 0.2);
      }
      auto t = enc.EncodeChunk(y, 2);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      txs.push_back(std::move(*t));
    }
    ASSERT_TRUE(service.Ingest(0, txs[0]).ok());
    ASSERT_TRUE(compressed.Ingest(txs[0]).ok());
    ASSERT_TRUE(history.Ingest(txs[0]).ok());
    ASSERT_TRUE(service.Ingest(0, txs[1]).ok());
    ASSERT_TRUE(compressed.Ingest(txs[1]).ok());
    ASSERT_TRUE(history.Ingest(txs[1]).ok());
    ASSERT_TRUE(service.MarkGap(0).ok());
    compressed.MarkGap(1);
    history.MarkGap(1);
    ASSERT_TRUE(service.Ingest(0, txs[2]).ok());
    ASSERT_TRUE(compressed.Ingest(txs[2]).ok());
    ASSERT_TRUE(history.Ingest(txs[2]).ok());
  }
};

TEST(QueryFuzz, AdversarialArgumentsGetTypedStatusesNeverCrash) {
  QueryFuzzFixture f;
  f.Build();
  if (::testing::Test::HasFatalFailure()) return;
  const size_t len = f.compressed.history_len();  // 4 chunks x 128
  ASSERT_EQ(len, 4u * 128u);

  // Reversed range: typed OutOfRange everywhere.
  EXPECT_EQ(f.compressed.Aggregate(0, 10, 5).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.history.QueryRange(0, 10, 5).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.service.Aggregate(0, 0, 10, 5).status().code(),
            StatusCode::kOutOfRange);
  // Zero-length range: an empty reconstruction is well-defined, an empty
  // aggregate is not (avg of nothing) — pinned as OutOfRange.
  auto empty = f.history.QueryRange(0, 5, 5);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(f.compressed.Aggregate(0, 5, 5).status().code(),
            StatusCode::kOutOfRange);
  // Past-the-end and far-out-of-range.
  EXPECT_EQ(f.compressed.Aggregate(0, 0, len + 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.service.Reconstruct(0, 0, len - 1, len + 7).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.service.Point(0, 0, len).status().code(),
            StatusCode::kOutOfRange);
  // Signal index out of bounds.
  EXPECT_EQ(f.compressed.Aggregate(7, 0, 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(f.service.Aggregate(0, 7, 0, 1).status().code(),
            StatusCode::kOutOfRange);
  // Ranges with a sample inside the declared gap (chunk 2).
  EXPECT_EQ(f.service.Aggregate(0, 0, 0, len).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(f.service.Point(0, 0, 2 * 128).status().code(),
            StatusCode::kDataLoss);
  // Multi-rate chunks are rejected as Unimplemented by every ingest
  // surface, not mis-indexed.
  Transmission multi_rate = f.txs[0];
  multi_rate.signal_lengths = {128, 128};
  EXPECT_EQ(f.compressed.Ingest(multi_rate).code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(f.history.Ingest(multi_rate).code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(f.service.Ingest(0, multi_rate).code(),
            StatusCode::kUnimplemented);

  // Randomized argument fuzz: any (signal, t0, t1) combination answers
  // with ok or a typed error; nothing throws, nothing crashes.
  Rng rng(501);
  for (size_t iter = 0; iter < 3000; ++iter) {
    const size_t sig = static_cast<size_t>(rng.UniformInt(0, 5));
    const size_t t0 = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(3 * len)));
    const size_t t1 = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(3 * len)));
    for (const Status& s :
         {f.compressed.Aggregate(sig, t0, t1).status(),
          f.history.QueryRange(sig, t0, t1).status(),
          f.service.Aggregate(0, sig, t0, t1).status(),
          f.service.Reconstruct(0, sig, t0, t1).status(),
          f.service.Point(0, sig, t0).status()}) {
      EXPECT_TRUE(s.code() == StatusCode::kOk ||
                  s.code() == StatusCode::kOutOfRange ||
                  s.code() == StatusCode::kDataLoss)
          << s.ToString();
    }
  }
}

TEST(QueryFuzz, MutatedIngestKeepsServiceTimelinesAligned) {
  // Mutants of valid wire images straight into the query-service ingest
  // path: every outcome is a typed status, the service survives, and the
  // compressed and materialized timelines never drift apart — the
  // invariant the aggregate/reconstruction split depends on.
  const auto corpus = BuildTransmissionCorpus();
  ASSERT_FALSE(corpus.empty());
  Rng rng(909);
  storage::QueryServiceOptions opts;
  opts.m_base = 64;
  storage::QueryService service(opts);
  storage::CompressedHistory compressed(64);

  for (size_t iter = 0; iter < 2000; ++iter) {
    const auto& seed_bytes = corpus[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
    const std::vector<uint8_t> mutant = Mutate(seed_bytes, &rng);
    BinaryReader reader(mutant);
    auto t = Transmission::Deserialize(&reader);
    if (!t.ok()) continue;
    (void)service.Ingest(1, *t);
    (void)compressed.Ingest(*t);

    auto snap = service.Snapshot(1);
    if (snap != nullptr) {
      ASSERT_EQ(snap->compressed.num_chunks(), snap->history.num_chunks());
      ASSERT_EQ(snap->compressed.chunk_len(), snap->history.chunk_len());
    }
  }
  // Still serviceable: a pristine stream on a fresh sensor answers.
  BinaryReader r(corpus[0]);
  auto t = Transmission::Deserialize(&r);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(service.Ingest(2, *t).ok());
  EXPECT_TRUE(service.Aggregate(2, 0, 0, t->chunk_len).ok());
}

TEST(QueryFuzz, MutatedIngestKeepsIndexAndScanPathsAligned) {
  // Whatever a mutated wire image smuggles past deserialization, the
  // moment-indexed engine and the legacy interval-scan engine must keep
  // telling the same story: identical ingest verdicts, identical
  // timelines, and aggregate answers that agree on status, count and the
  // exact min/max selections (sums re-associate; compare only when both
  // are finite — a mutant can legitimately cook up overflowing
  // coefficients).
  const auto corpus = BuildTransmissionCorpus();
  ASSERT_FALSE(corpus.empty());
  Rng rng(4711);
  storage::CompressedHistory indexed(64);
  storage::CompressedHistory legacy(64, storage::IndexOptions{false});

  for (size_t iter = 0; iter < 2000; ++iter) {
    const auto& seed_bytes = corpus[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
    const std::vector<uint8_t> mutant = Mutate(seed_bytes, &rng);
    BinaryReader reader(mutant);
    auto t = Transmission::Deserialize(&reader);
    if (!t.ok()) continue;
    const Status a = indexed.Ingest(*t);
    const Status b = legacy.Ingest(*t);
    ASSERT_EQ(a.code(), b.code()) << "iter " << iter;
    ASSERT_EQ(indexed.num_chunks(), legacy.num_chunks());

    const size_t len = indexed.history_len();
    if (len == 0 || iter % 16 != 0) continue;
    size_t lo = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(len) - 1));
    size_t hi = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(len) - 1));
    if (lo > hi) std::swap(lo, hi);
    const size_t s = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(indexed.num_signals()) - 1));
    auto ia = indexed.Aggregate(s, lo, hi + 1);
    auto la = legacy.Aggregate(s, lo, hi + 1);
    ASSERT_EQ(ia.status().code(), la.status().code())
        << "iter " << iter << " [" << lo << "," << hi + 1 << ")";
    if (!ia.ok()) continue;
    ASSERT_EQ(ia->count, la->count);
    if (std::isfinite(ia->sum) && std::isfinite(la->sum)) {
      EXPECT_EQ(ia->min, la->min) << "iter " << iter;
      EXPECT_EQ(ia->max, la->max) << "iter " << iter;
      EXPECT_NEAR(ia->sum, la->sum,
                  1e-9 * (std::abs(la->sum) +
                          static_cast<double>(la->count) + 1.0))
          << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace sbr::core
