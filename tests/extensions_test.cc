// Tests for the paper's extension features: the quadratic (non-linear)
// encoding of Section 6, the multi-rate sampling of Section 3.2 footnote 2,
// and the Fourier baseline the paper evaluated and dismissed.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "compress/dct_compressor.h"
#include "compress/fourier.h"
#include "core/adaptive.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "core/get_base.h"
#include "core/get_intervals.h"
#include "core/regression.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbr::core {
namespace {

// ------------------------------------------------------------- quadratic

TEST(FitQuadratic, RecoversExactParabola) {
  std::vector<double> x{-2, -1, 0, 1, 2, 3};
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = 0.5 * x[i] * x[i] - 2.0 * x[i] + 1.0;
  }
  const QuadraticResult q = FitQuadratic(x, y);
  EXPECT_NEAR(q.c, 0.5, 1e-9);
  EXPECT_NEAR(q.a, -2.0, 1e-9);
  EXPECT_NEAR(q.b, 1.0, 1e-9);
  EXPECT_NEAR(q.err, 0.0, 1e-9);
}

TEST(FitQuadratic, NeverWorseThanLinearFit) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 3 + static_cast<size_t>(rng.UniformInt(0, 40));
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-5, 5);
      y[i] = rng.Uniform(-5, 5);
    }
    const QuadraticResult q = FitQuadratic(x, y);
    const RegressionResult lin = FitSse(x, y);
    EXPECT_LE(q.err, lin.err + 1e-9 * std::max(1.0, lin.err));
  }
}

TEST(FitQuadratic, DegenerateXHandled) {
  std::vector<double> x{2, 2, 2, 2};
  std::vector<double> y{1, 3, 5, 7};
  const QuadraticResult q = FitQuadratic(x, y);
  EXPECT_TRUE(std::isfinite(q.err));
  // Falls back to the (degenerate) linear fit: mean prediction.
  EXPECT_NEAR(q.a * 2 + q.b + q.c * 4, 4.0, 1e-9);
}

TEST(FitTimeQuadratic, FitsParabolaOverTime) {
  std::vector<double> y(16);
  for (size_t i = 0; i < y.size(); ++i) {
    const double t = static_cast<double>(i);
    y[i] = 3.0 + 0.25 * t * t;
  }
  const QuadraticResult q = FitTimeQuadratic(y);
  EXPECT_NEAR(q.err, 0.0, 1e-8);
  EXPECT_NEAR(q.c, 0.25, 1e-9);
}

TEST(QuadraticEncoding, EndToEndRoundTripMatchesStats) {
  Rng rng(2);
  const size_t m = 256;
  std::vector<double> y(2 * m);
  for (size_t s = 0; s < 2; ++s) {
    for (size_t i = 0; i < m; ++i) {
      const double t = static_cast<double>(i);
      y[s * m + i] = std::sin(t * 0.1) * (t * 0.01 + 1.0) * (1.0 + s) +
                     rng.Gaussian(0, 0.05);
    }
  }
  EncoderOptions opts;
  opts.total_band = 120;
  opts.m_base = 128;
  opts.quadratic = true;
  SbrEncoder enc(opts);
  auto t = enc.EncodeChunk(y, 2);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(t->quadratic);
  EXPECT_LE(t->ValueCount(), opts.total_band);
  // 5 values per interval now.
  EXPECT_EQ(t->ValueCount(), t->intervals.size() * 5 +
                                 t->base_updates.size() * (enc.w() + 1));

  SbrDecoder dec(DecoderOptions{opts.m_base});
  auto rec = dec.DecodeChunk(*t);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), enc.last_stats().total_error,
              1e-6 * std::max(1.0, enc.last_stats().total_error));
}

TEST(QuadraticEncoding, SerializedFormCarriesC) {
  Transmission t;
  t.num_signals = 1;
  t.chunk_len = 8;
  t.w = 2;
  t.quadratic = true;
  t.intervals.push_back({0, -1, 1.0, 2.0, 0.125});
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Transmission::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->quadratic);
  EXPECT_DOUBLE_EQ(back->intervals[0].c, 0.125);
}

TEST(QuadraticEncoding, RequiresSseMetric) {
  EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 64;
  opts.quadratic = true;
  opts.metric = ErrorMetric::kMaxAbs;
  SbrEncoder enc(opts);
  std::vector<double> y(128, 1.0);
  EXPECT_FALSE(enc.EncodeChunk(y, 1).ok());
}

TEST(QuadraticEncoding, BeatsLinearOnCurvedDataPerInterval) {
  // Strongly curved segments: with the same *interval count* quadratic
  // encodings fit better (the budget trade-off is workload-dependent and
  // exercised in the ablation bench instead).
  std::vector<double> y(256);
  for (size_t i = 0; i < y.size(); ++i) {
    const double t = static_cast<double>(i % 64);
    y[i] = t * t * 0.05 - t;
  }
  GetIntervalsOptions lin;
  GetIntervalsOptions quad;
  quad.best_map.quadratic = true;
  quad.values_per_interval = 5;
  // Same interval count: 8 intervals each.
  auto lr = GetIntervals({}, y, 1, 8 * 4, 16, lin);
  auto qr = GetIntervals({}, y, 1, 8 * 5, 16, quad);
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(qr.ok());
  EXPECT_LT(qr->total_error, 0.1 * lr->total_error);
}

// ------------------------------------------------------------ multi-rate

TEST(MultiRate, GetIntervalsHandlesUnevenRows) {
  Rng rng(3);
  const std::vector<size_t> lengths{100, 50, 200};
  std::vector<double> y(350);
  for (auto& v : y) v = rng.Uniform(-1, 1);
  GetIntervalsOptions opts;
  auto result = GetIntervalsMultiRate({}, y, lengths, 15 * 4, 18, opts);
  ASSERT_TRUE(result.ok());
  // Tiling and no row straddling.
  size_t pos = 0;
  std::vector<size_t> bounds{0, 100, 150, 350};
  for (const Interval& iv : result->intervals) {
    ASSERT_EQ(iv.start, pos);
    // Interval fits entirely inside one row.
    bool inside = false;
    for (size_t b = 0; b + 1 < bounds.size(); ++b) {
      if (iv.start >= bounds[b] && iv.start + iv.length <= bounds[b + 1]) {
        inside = true;
      }
    }
    EXPECT_TRUE(inside);
    pos += iv.length;
  }
  EXPECT_EQ(pos, y.size());
}

TEST(MultiRate, RejectsBadLengths) {
  std::vector<double> y(10);
  GetIntervalsOptions opts;
  const std::vector<size_t> wrong_sum{4, 4};
  EXPECT_FALSE(GetIntervalsMultiRate({}, y, wrong_sum, 100, 2, opts).ok());
  const std::vector<size_t> zero{10, 0};
  EXPECT_FALSE(GetIntervalsMultiRate({}, y, zero, 100, 2, opts).ok());
}

TEST(MultiRate, GetBaseEnumeratesPerRowWindows) {
  Rng rng(4);
  const std::vector<size_t> lengths{40, 20};
  std::vector<double> y(60);
  for (auto& v : y) v = rng.Uniform(-1, 1);
  GetBaseOptions opts;
  opts.min_benefit = -1.0;
  const auto selected = GetBaseMultiRate(y, lengths, 10, 100, opts);
  // K = 4 + 2 = 6 candidates at most.
  EXPECT_LE(selected.size(), 6u);
}

TEST(MultiRate, EncoderDecoderRoundTrip) {
  // Two fast-sampled quantities and one slow one (half rate), the shared
  // waveform still discoverable across rates.
  Rng rng(5);
  const std::vector<size_t> lengths{256, 256, 128};
  std::vector<double> y;
  for (size_t s = 0; s < 3; ++s) {
    const size_t len = lengths[s];
    const double step = s == 2 ? 0.2 : 0.1;  // slow row covers same span
    for (size_t i = 0; i < len; ++i) {
      y.push_back(std::sin(i * step) * (1.0 + s) + rng.Gaussian(0, 0.02));
    }
  }
  EncoderOptions opts;
  opts.total_band = 128;
  opts.m_base = 128;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  auto t = enc.EncodeChunkMultiRate(y, lengths);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->chunk_len, 0u);
  ASSERT_EQ(t->signal_lengths.size(), 3u);
  EXPECT_EQ(t->signal_lengths[2], 128u);
  EXPECT_EQ(t->TotalSamples(), 640u);

  auto rec = dec.DecodeChunk(*t);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->size(), y.size());
  EXPECT_NEAR(SumSquaredError(y, *rec), enc.last_stats().total_error,
              1e-6 * std::max(1.0, enc.last_stats().total_error));

  // Geometry is pinned: a different split of the same total fails.
  const std::vector<size_t> other{128, 256, 256};
  EXPECT_FALSE(enc.EncodeChunkMultiRate(y, other).ok());
}

TEST(MultiRate, SerializationRoundTrip) {
  Transmission t;
  t.num_signals = 2;
  t.chunk_len = 0;
  t.signal_lengths = {30, 10};
  t.w = 5;
  t.intervals.push_back({0, -1, 1.0, 0.0, 0.0});
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Transmission::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->signal_lengths, t.signal_lengths);
  EXPECT_EQ(back->TotalSamples(), 40u);
}

TEST(MultiRate, LengthCountMismatchRejected) {
  Transmission t;
  t.num_signals = 3;
  t.signal_lengths = {10, 10};  // wrong count
  t.w = 2;
  BinaryWriter w;
  t.Serialize(&w);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(Transmission::Deserialize(&r).ok());
}

// ------------------------------------------------- adaptive schedule

TEST(AdaptiveEncoder, WarmupThenShortcutThenRefreshOnDegradation) {
  EncoderOptions opts;
  opts.total_band = 120;
  opts.m_base = 128;
  AdaptiveOptions sched;
  sched.warmup_transmissions = 2;
  sched.degradation_factor = 1.5;
  AdaptiveSbrEncoder enc(opts, sched);

  auto make = [](double freq, uint64_t seed) {
    Rng rng(seed);
    std::vector<double> y(2 * 128);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(2.0 * M_PI * i / freq) + rng.Gaussian(0, 0.02);
    }
    return y;
  };

  // Stationary phase: warm-up runs full, then the shortcut engages.
  for (uint64_t c = 0; c < 5; ++c) {
    auto t = enc.EncodeChunk(make(16.0, c), 2);
    ASSERT_TRUE(t.ok());
    if (c < 2) {
      EXPECT_TRUE(enc.last_used_full_pipeline()) << c;
    } else {
      EXPECT_FALSE(enc.last_used_full_pipeline()) << c;
    }
  }

  // Regime change: errors degrade, so a refresh must fire within the next
  // couple of transmissions.
  bool refreshed = false;
  for (uint64_t c = 0; c < 3; ++c) {
    auto t = enc.EncodeChunk(make(48.0, 100 + c), 2);
    ASSERT_TRUE(t.ok());
    refreshed = refreshed || enc.last_used_full_pipeline();
  }
  EXPECT_TRUE(refreshed);
  EXPECT_LT(enc.full_pipeline_count(), enc.transmissions());
}

TEST(AdaptiveEncoder, PeriodicRefreshFiresOnSchedule) {
  EncoderOptions opts;
  opts.total_band = 100;
  opts.m_base = 96;
  AdaptiveOptions sched;
  sched.warmup_transmissions = 1;
  sched.degradation_factor = 1e9;  // never degrade-triggered
  sched.periodic_refresh = 3;
  AdaptiveSbrEncoder enc(opts, sched);
  Rng rng(7);
  std::vector<bool> full;
  for (uint64_t c = 0; c < 7; ++c) {
    std::vector<double> y(2 * 128);
    for (auto& v : y) v = std::sin(v) + rng.Uniform(0, 1);
    ASSERT_TRUE(enc.EncodeChunk(y, 2).ok());
    full.push_back(enc.last_used_full_pipeline());
  }
  // Transmissions 0 (warmup), 3 and 6 (periodic) run the full pipeline.
  EXPECT_EQ(full, (std::vector<bool>{true, false, false, true, false,
                                     false, true}));
}

TEST(AdaptiveEncoder, ProducesDecodableStream) {
  EncoderOptions opts;
  opts.total_band = 120;
  opts.m_base = 128;
  AdaptiveSbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  Rng rng(8);
  for (uint64_t c = 0; c < 6; ++c) {
    std::vector<double> y(2 * 128);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(i * 0.1 + c) + rng.Gaussian(0, 0.05);
    }
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok());
    auto rec = dec.DecodeChunk(*t);
    ASSERT_TRUE(rec.ok());
    EXPECT_NEAR(SumSquaredError(y, *rec), enc.last_stats().total_error,
                1e-6 * std::max(1.0, enc.last_stats().total_error));
  }
}

// ----------------------------------------------------- compact wire

TEST(CompactWire, HalvesWireBitsAndShrinksBytes) {
  Rng rng(30);
  std::vector<double> y(2 * 128);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.11) + rng.Gaussian(0, 0.05);
  }
  auto encode = [&](bool compact) {
    EncoderOptions opts;
    opts.total_band = 120;
    opts.m_base = 128;
    opts.compact_wire = compact;
    SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, 2);
    EXPECT_TRUE(t.ok());
    return std::move(t).value();
  };
  const Transmission wide = encode(false);
  const Transmission narrow = encode(true);
  EXPECT_EQ(wide.ValueCount(), narrow.ValueCount());
  EXPECT_EQ(narrow.WireBits() * 2, wide.WireBits());

  BinaryWriter ww, wn;
  wide.Serialize(&ww);
  narrow.Serialize(&wn);
  EXPECT_LT(wn.size(), ww.size());
}

TEST(CompactWire, MirrorsStayBitIdenticalAcrossTransmissions) {
  EncoderOptions opts;
  opts.total_band = 130;
  opts.m_base = 96;
  opts.compact_wire = true;
  SbrEncoder enc(opts);
  SbrDecoder dec(DecoderOptions{opts.m_base});
  Rng rng(31);
  for (size_t c = 0; c < 6; ++c) {
    std::vector<double> y(2 * 128);
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::sin(i * (0.07 + 0.01 * c)) * 3 + rng.Gaussian(0, 0.02);
    }
    auto t = enc.EncodeChunk(y, 2);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->precision, WirePrecision::kFloat32);
    // Serialize through the wire: float32 values must survive exactly.
    BinaryWriter w;
    t->Serialize(&w);
    BinaryReader r(w.buffer());
    auto parsed = Transmission::Deserialize(&r);
    ASSERT_TRUE(parsed.ok());
    auto decoded = dec.DecodeChunk(*parsed);
    ASSERT_TRUE(decoded.ok());
    const auto eb = enc.base_signal().values();
    const auto db = dec.base_signal().values();
    ASSERT_EQ(eb.size(), db.size());
    for (size_t i = 0; i < eb.size(); ++i) {
      ASSERT_DOUBLE_EQ(eb[i], db[i]) << "chunk " << c;
    }
  }
}

TEST(CompactWire, QualityLossIsSmall) {
  Rng rng(32);
  std::vector<double> y(2 * 256);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = 20.0 * std::sin(i * 0.13) + rng.Gaussian(0, 0.1);
  }
  auto run = [&](bool compact) {
    EncoderOptions opts;
    opts.total_band = 200;
    opts.m_base = 128;
    opts.compact_wire = compact;
    SbrEncoder enc(opts);
    SbrDecoder dec(DecoderOptions{opts.m_base});
    auto t = enc.EncodeChunk(y, 2);
    EXPECT_TRUE(t.ok());
    BinaryWriter w;
    t->Serialize(&w);
    BinaryReader r(w.buffer());
    auto parsed = Transmission::Deserialize(&r);
    EXPECT_TRUE(parsed.ok());
    auto decoded = dec.DecodeChunk(*parsed);
    EXPECT_TRUE(decoded.ok());
    return SumSquaredError(y, *decoded);
  };
  const double wide = run(false);
  const double narrow = run(true);
  // binary32 has ~7 decimal digits: the extra error is a rounding-level
  // perturbation, not a regression in approximation quality.
  EXPECT_LT(narrow, wide * 1.05 + 1e-3);
}

}  // namespace
}  // namespace sbr::core

namespace sbr::compress {
namespace {

// --------------------------------------------------------------- Fourier

TEST(Fourier, PureToneIsExactWithOneCoefficient) {
  const size_t n = 256;
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = std::cos(2.0 * M_PI * 8.0 * i / n);
  }
  FourierCompressor fc;
  auto rec = fc.CompressAndReconstruct(y, 1, 3);  // one coefficient
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(SumSquaredError(y, *rec), 0.0, 1e-9);
}

TEST(Fourier, BudgetMonotonicity) {
  Rng rng(6);
  std::vector<double> y(300);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(i * 0.05) + 0.4 * std::sin(i * 0.31) +
           rng.Gaussian(0, 0.1);
  }
  FourierCompressor fc;
  double prev = 1e300;
  for (size_t budget : {6u, 30u, 90u, 300u}) {
    auto rec = fc.CompressAndReconstruct(y, 1, budget);
    ASSERT_TRUE(rec.ok());
    const double err = SumSquaredError(y, *rec);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

TEST(Fourier, OutputIsRealAndRightSized) {
  Rng rng(7);
  std::vector<double> y(2 * 100);
  for (auto& v : y) v = rng.Uniform(-3, 3);
  FourierCompressor fc;
  auto rec = fc.CompressAndReconstruct(y, 2, 60);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), y.size());
  for (double v : *rec) EXPECT_TRUE(std::isfinite(v));
}

TEST(Fourier, LosesToDctOnSmoothAperiodicData) {
  // The paper's stated reason for dropping Fourier: on signals that are
  // not circularly periodic the DFT's wrap-around discontinuity wastes
  // coefficients where the DCT's even extension does not.
  std::vector<double> y(512);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<double>(i) * 0.01 +
           std::sin(2.0 * M_PI * i / 512.0 * 2.5);  // non-integer cycles
  }
  FourierCompressor fourier;
  DctCompressor dct;
  auto rf = fourier.CompressAndReconstruct(y, 1, 60);
  auto rd = dct.CompressAndReconstruct(y, 1, 60);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_GT(SumSquaredError(y, *rf), SumSquaredError(y, *rd));
}

}  // namespace
}  // namespace sbr::compress
