// Index-vs-scan differential oracle: the hierarchical moment index
// (storage/moment_index.h) must answer every aggregate exactly like the
// legacy O(range) interval scan it replaced. The two paths share the
// per-interval arithmetic but nothing above it — node decomposition,
// boundary-chunk splitting, gap propagation, base-RMQ lookups — so
// agreement pins the whole acceleration layer. The determinism contract
// under test: count, min and max are BITWISE identical between the paths
// (selection folds are exact in any association), while sum / avg /
// variance agree to the oracle tolerances (addition re-associates across
// power-of-two groups). Gap semantics must match to the byte: the same
// status code and the same "range touches lost chunk N" message, N being
// the lowest lost chunk inside the range.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/encoder.h"
#include "datagen/phonecall.h"
#include "datagen/stock.h"
#include "datagen/weather.h"
#include "storage/history_store.h"
#include "storage/moment_index.h"
#include "storage/query_engine.h"
#include "storage/query_service.h"
#include "util/range_min_max.h"

namespace sbr {
namespace {

constexpr size_t kChunkLen = 128;
constexpr size_t kChunks = 11;  // non-power-of-two: index depth 4, ragged top
constexpr size_t kMBase = 256;

datagen::Dataset MakeDataset(const std::string& family, uint64_t seed,
                             size_t length) {
  if (family == "weather") {
    datagen::WeatherOptions o;
    o.length = length;
    o.seed = seed;
    return datagen::GenerateWeather(o);
  }
  if (family == "stock") {
    datagen::StockOptions o;
    o.length = length;
    o.seed = seed;
    return datagen::GenerateStock(o);
  }
  datagen::PhoneCallOptions o;
  o.length = length;
  o.seed = seed;
  return datagen::GeneratePhoneCalls(o);
}

// ------------------------------------------------------------------
// MomentIndex unit oracle: Query/FirstGap vs a naive leaf fold.
// ------------------------------------------------------------------

storage::MomentSummary RandomLeaf(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> val(-50.0, 50.0);
  storage::MomentSummary s;
  const size_t n = 1 + (*rng)() % 7;
  for (size_t i = 0; i < n; ++i) {
    const double v = val(*rng);
    s.sum += v;
    s.sumsq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.count = n;
  return s;
}

storage::MomentSummary NaiveFold(
    const std::vector<storage::MomentSummary>& leaves, size_t lo, size_t hi) {
  storage::MomentSummary acc;
  for (size_t i = lo; i < hi; ++i) acc.Merge(leaves[i]);
  return acc;
}

size_t NaiveFirstGap(const std::vector<storage::MomentSummary>& leaves,
                     size_t lo, size_t hi) {
  for (size_t i = lo; i < hi; ++i) {
    if (leaves[i].has_gap) return i;
  }
  return hi;
}

TEST(MomentIndexUnit, EveryRangeMatchesNaiveLeafFold) {
  // 70 leaves crosses the 64-entry block seal, so both sealed-block and
  // mutable-tail reads are on the query path; sprinkled gap leaves pin
  // FirstGap against a linear scan.
  std::mt19937_64 rng(4242);
  std::vector<storage::MomentSummary> leaves;
  storage::MomentIndex index;
  for (size_t i = 0; i < 70; ++i) {
    const bool gap = rng() % 9 == 0;
    leaves.push_back(gap ? storage::MomentSummary::Gap() : RandomLeaf(&rng));
    index.Append(leaves.back());
    ASSERT_EQ(index.size(), i + 1);
  }
  for (size_t lo = 0; lo <= leaves.size(); ++lo) {
    for (size_t hi = lo; hi <= leaves.size(); ++hi) {
      const storage::MomentSummary got = index.Query(lo, hi);
      const storage::MomentSummary want = NaiveFold(leaves, lo, hi);
      ASSERT_EQ(got.count, want.count) << lo << "," << hi;
      ASSERT_EQ(got.has_gap, want.has_gap) << lo << "," << hi;
      // min/max are exact selections — identical in any association.
      ASSERT_EQ(got.min, want.min) << lo << "," << hi;
      ASSERT_EQ(got.max, want.max) << lo << "," << hi;
      // sum/sumsq re-associate across nodes; agreement is relative.
      ASSERT_NEAR(got.sum, want.sum,
                  1e-9 * (std::abs(want.sum) +
                          static_cast<double>(want.count) + 1.0))
          << lo << "," << hi;
      ASSERT_NEAR(got.sumsq, want.sumsq, 1e-9 * (want.sumsq + 1.0))
          << lo << "," << hi;
      ASSERT_EQ(index.FirstGap(lo, hi), NaiveFirstGap(leaves, lo, hi))
          << lo << "," << hi;
    }
  }
}

TEST(MomentIndexUnit, CopiesShareSealedBlocksAndStayImmutable) {
  // The epoch-publish path copies the index; the copy must be a frozen
  // snapshot (bitwise stable answers) no matter how far the original
  // advances past it — the COW property readers rely on.
  std::mt19937_64 rng(77);
  std::vector<storage::MomentSummary> leaves;
  storage::MomentIndex index;
  for (size_t i = 0; i < 130; ++i) {  // two sealed blocks + a tail
    leaves.push_back(RandomLeaf(&rng));
    index.Append(leaves.back());
  }
  const storage::MomentIndex frozen = index;
  const storage::MomentSummary before = frozen.Query(0, 130);
  for (size_t i = 0; i < 40; ++i) index.Append(RandomLeaf(&rng));

  ASSERT_EQ(frozen.size(), 130u);
  ASSERT_EQ(index.size(), 170u);
  const storage::MomentSummary after = frozen.Query(0, 130);
  EXPECT_EQ(before.sum, after.sum);
  EXPECT_EQ(before.sumsq, after.sumsq);
  EXPECT_EQ(before.min, after.min);
  EXPECT_EQ(before.max, after.max);
  EXPECT_EQ(before.count, after.count);
  const storage::MomentSummary naive = NaiveFold(leaves, 0, 130);
  EXPECT_EQ(after.count, naive.count);
  EXPECT_EQ(after.min, naive.min);
  EXPECT_EQ(after.max, naive.max);
}

// ------------------------------------------------------------------
// RangeMinMax unit oracle: sparse table vs a left-to-right scan.
// ------------------------------------------------------------------

TEST(RangeMinMaxIndex, BitwiseEqualToScanOnEveryRange) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> val(-1e6, 1e6);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{64},
                   size_t{65}, size_t{100}}) {
    std::vector<double> values(n);
    for (double& v : values) v = val(rng);
    RangeMinMax table(values);
    ASSERT_EQ(table.size(), n);
    for (size_t start = 0; start < n; ++start) {
      for (size_t len = 1; len <= n - start; ++len) {
        double mn = values[start];
        double mx = values[start];
        for (size_t i = 1; i < len; ++i) {
          mn = std::min(mn, values[start + i]);
          mx = std::max(mx, values[start + i]);
        }
        ASSERT_EQ(table.Min(start, len), mn) << n << ":" << start << "+"
                                             << len;
        ASSERT_EQ(table.Max(start, len), mx) << n << ":" << start << "+"
                                             << len;
      }
    }
  }
}

TEST(RangeMinMaxIndex, ResetRebuildsAndEmptyClears) {
  RangeMinMax table(std::vector<double>{3.0, 1.0, 2.0});
  EXPECT_EQ(table.Min(0, 3), 1.0);
  table.Reset(std::vector<double>{5.0, 4.0});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Min(0, 2), 4.0);
  EXPECT_EQ(table.Max(0, 2), 5.0);
  table.Reset({});
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.CoversRange(0, 1));
}

// ------------------------------------------------------------------
// Engine-level differential oracle: indexed vs legacy scan path.
// ------------------------------------------------------------------

/// Indexed and legacy views built from the identical transmission stream.
struct EnginePair {
  storage::CompressedHistory indexed{kMBase};
  storage::CompressedHistory legacy{kMBase,
                                    storage::IndexOptions{.enabled = false}};
  storage::HistoryStore history{kMBase};
  std::vector<size_t> version_change_chunks;
};

void CheckAligned(const EnginePair& p, size_t signal, size_t t0, size_t t1,
                  const std::string& label) {
  ASSERT_TRUE(p.indexed.index_enabled());
  ASSERT_FALSE(p.legacy.index_enabled());
  auto a = p.indexed.Aggregate(signal, t0, t1);
  auto b = p.legacy.Aggregate(signal, t0, t1);
  ASSERT_EQ(a.ok(), b.ok()) << label << ": " << a.status().ToString()
                            << " vs " << b.status().ToString();
  if (!a.ok()) {
    // Same typed error, same message — including the first-gap chunk id.
    EXPECT_EQ(a.status().code(), b.status().code()) << label;
    EXPECT_EQ(a.status().message(), b.status().message()) << label;
    return;
  }
  ASSERT_EQ(a->count, b->count) << label;
  EXPECT_EQ(a->min, b->min) << label;  // bitwise: exact selection fold
  EXPECT_EQ(a->max, b->max) << label;
  const double n = static_cast<double>(b->count);
  EXPECT_NEAR(a->sum, b->sum, 1e-9 * (std::abs(b->sum) + n)) << label;
  EXPECT_NEAR(a->avg, b->avg, 1e-9 * (std::abs(b->avg) + 1.0)) << label;
  const double var_scale =
      std::abs(b->variance) + b->avg * b->avg + 1.0;
  EXPECT_NEAR(a->variance, b->variance, 1e-8 * var_scale) << label;
}

void RunAlignedRanges(const EnginePair& p, uint64_t range_seed) {
  const size_t len = p.indexed.history_len();
  const size_t num_signals = p.indexed.num_signals();
  ASSERT_EQ(len, p.legacy.history_len());
  std::mt19937_64 rng(range_seed);
  std::uniform_int_distribution<size_t> pick_t(0, len - 1);
  std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);

  for (int q = 0; q < 16; ++q) {
    size_t a = pick_t(rng), b = pick_t(rng);
    if (a > b) std::swap(a, b);
    CheckAligned(p, pick_s(rng), a, b + 1,
                 "random [" + std::to_string(a) + "," +
                     std::to_string(b + 1) + ")");
  }
  // Single-sample ranges: the indexed path degenerates to one boundary
  // fold (no interior nodes) — the decomposition's corner case.
  for (int q = 0; q < 6; ++q) {
    const size_t t = pick_t(rng);
    CheckAligned(p, pick_s(rng), t, t + 1,
                 "single-sample@" + std::to_string(t));
  }
  CheckAligned(p, pick_s(rng), 0, len, "full-history");
  // Chunk-aligned ranges hit the pure-interior path (no boundary folds).
  CheckAligned(p, pick_s(rng), kChunkLen, len - kChunkLen, "aligned-wide");
  for (size_t c = 1; c < p.indexed.num_chunks(); ++c) {
    const size_t edge = c * kChunkLen;
    CheckAligned(p, pick_s(rng), edge - 3, edge + 3,
                 "chunk-straddle@" + std::to_string(edge));
  }
  for (size_t c : p.version_change_chunks) {
    CheckAligned(p, pick_s(rng), (c - 1) * kChunkLen + kChunkLen / 2,
                 c * kChunkLen + kChunkLen / 2,
                 "base-version-crossing@" + std::to_string(c));
  }
}

void BuildPair(const datagen::Dataset& dataset, core::ErrorMetric metric,
               core::BaseStrategy strategy, EnginePair* out) {
  const size_t num_signals = dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  opts.metric = metric;
  opts.base_strategy = strategy;
  core::SbrEncoder encoder(opts);

  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    const size_t versions_before = out->indexed.num_base_versions();
    ASSERT_TRUE(out->indexed.Ingest(*t).ok());
    ASSERT_TRUE(out->legacy.Ingest(*t).ok());
    ASSERT_TRUE(out->history.Ingest(*t).ok());
    if (c > 0 && out->indexed.num_base_versions() > versions_before) {
      out->version_change_chunks.push_back(c);
    }
  }
}

TEST(QueryIndex, IndexedAggregatesMatchLegacyScan) {
  const std::string families[] = {"weather", "stock", "phone"};
  const core::ErrorMetric metrics[] = {core::ErrorMetric::kSse,
                                       core::ErrorMetric::kMaxAbs};
  for (const std::string& family : families) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      for (core::ErrorMetric metric : metrics) {
        SCOPED_TRACE(family + "/seed" + std::to_string(seed) + "/metric" +
                     std::to_string(static_cast<int>(metric)));
        EnginePair p;
        BuildPair(MakeDataset(family, 500 + seed, kChunks * kChunkLen),
                  metric, core::BaseStrategy::kGetBase, &p);
        if (::testing::Test::HasFatalFailure()) return;
        RunAlignedRanges(p, seed * 131 + static_cast<uint64_t>(metric));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(QueryIndex, SelfContainedChunksMatchLegacyScan) {
  // BaseStrategy::kNone emits chunks with no base reference at all — the
  // indexed path must fold their direct linear intervals exactly like the
  // scan (no base RMQ involved anywhere).
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("self-contained/seed" + std::to_string(seed));
    EnginePair p;
    BuildPair(MakeDataset("weather", 900 + seed, kChunks * kChunkLen),
              core::ErrorMetric::kSse, core::BaseStrategy::kNone, &p);
    if (::testing::Test::HasFatalFailure()) return;
    RunAlignedRanges(p, 900 + seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(QueryIndex, GapSemanticsMatchLegacyScanToTheByte) {
  // Gap layout exercising every index gap path: chunk 0 lost BEFORE the
  // first ingest (geometry unknown — the backfill path), a two-chunk run
  // {4, 5} lost mid-stream, survivors everywhere else.
  const datagen::Dataset dataset =
      MakeDataset("weather", 1234, kChunks * kChunkLen);
  const size_t num_signals = dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  core::SbrEncoder encoder(opts);

  EnginePair p;
  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    if (c == 0 || c == 4 || c == 5) {
      p.indexed.MarkGap(1);
      p.legacy.MarkGap(1);
      p.history.MarkGap(1);
      continue;
    }
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(p.indexed.Ingest(*t).ok());
    ASSERT_TRUE(p.legacy.Ingest(*t).ok());
    ASSERT_TRUE(p.history.Ingest(*t).ok());
  }
  ASSERT_EQ(p.indexed.num_gaps(), 3u);
  for (size_t c : {size_t{0}, size_t{4}, size_t{5}}) {
    ASSERT_TRUE(p.indexed.IsGap(c));
    ASSERT_TRUE(p.legacy.IsGap(c));
  }

  const size_t len = p.indexed.history_len();
  // Abutting a gap from either side succeeds on both paths; touching it
  // by one sample is DataLoss with the identical message. A wide range
  // over several gaps names the LOWEST lost chunk inside the range.
  CheckAligned(p, 0, kChunkLen, 4 * kChunkLen, "between-gaps");
  CheckAligned(p, 0, 6 * kChunkLen, len, "after-gap-run");
  CheckAligned(p, 0, kChunkLen - 1, 4 * kChunkLen, "touch-left-gap");
  CheckAligned(p, 0, kChunkLen, 4 * kChunkLen + 1, "touch-mid-gap");
  CheckAligned(p, 0, 6 * kChunkLen - 1, len, "touch-gap-run-tail");
  CheckAligned(p, 0, 0, len, "all-gaps-wide");
  CheckAligned(p, 0, 4 * kChunkLen + kChunkLen / 2,
               5 * kChunkLen + kChunkLen / 2, "inside-gap-run");

  auto wide = p.indexed.Aggregate(0, kChunkLen, len);
  ASSERT_EQ(wide.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(wide.status().message(), "range touches lost chunk 4");
  auto from_start = p.indexed.Aggregate(0, 0, 2 * kChunkLen);
  ASSERT_EQ(from_start.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(from_start.status().message(), "range touches lost chunk 0");

  RunAlignedRanges(p, 1234);
}

// ------------------------------------------------------------------
// HistoryStore::AggregateExact vs a raw recompute over QueryRange.
// ------------------------------------------------------------------

TEST(QueryIndex, HistoryStoreExactAggregatesMatchRawRecompute) {
  const datagen::Dataset dataset =
      MakeDataset("stock", 321, kChunks * kChunkLen);
  const size_t num_signals = dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  core::SbrEncoder encoder(opts);

  storage::HistoryStore store(kMBase);
  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    if (c == 3) {
      store.MarkGap(1);
      continue;
    }
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(store.Ingest(*t).ok());
  }

  std::mt19937_64 rng(321);
  const size_t len = store.history_len();
  std::uniform_int_distribution<size_t> pick_t(0, len - 1);
  std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);
  size_t checked_ok = 0;
  for (int q = 0; q < 200; ++q) {
    size_t a = pick_t(rng), b = pick_t(rng);
    if (a > b) std::swap(a, b);
    const size_t s = pick_s(rng);
    auto agg = store.AggregateExact(s, a, b + 1);
    auto raw = store.QueryRange(s, a, b + 1);
    ASSERT_EQ(agg.ok(), raw.ok()) << a << "," << b + 1;
    if (!agg.ok()) {
      EXPECT_EQ(agg.status().code(), raw.status().code());
      EXPECT_EQ(agg.status().message(), raw.status().message());
      continue;
    }
    ++checked_ok;
    double sum = 0.0, mn = (*raw)[0], mx = (*raw)[0];
    for (double v : *raw) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    ASSERT_EQ(agg->count, raw->size());
    EXPECT_EQ(agg->min, mn);  // bitwise: same selection candidates
    EXPECT_EQ(agg->max, mx);
    EXPECT_NEAR(agg->sum, sum,
                1e-9 * (std::abs(sum) + static_cast<double>(raw->size())));
  }
  EXPECT_GE(checked_ok, 50u);  // the gap must not have eaten the oracle
  // Abut vs touch around the lost chunk, exact-side.
  EXPECT_TRUE(store.AggregateExact(0, 0, 3 * kChunkLen).ok());
  EXPECT_TRUE(store.AggregateExact(0, 4 * kChunkLen, len).ok());
  auto touch = store.AggregateExact(0, 0, 3 * kChunkLen + 1);
  ASSERT_EQ(touch.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(touch.status().message(), "range touches lost chunk 3");
}

// ------------------------------------------------------------------
// LRU aggregate cache: eviction order + the new counters.
// ------------------------------------------------------------------

TEST(QueryServiceCacheLru, EvictionPrefersColdEntriesAndCountsResidency) {
  storage::QueryServiceOptions opts;
  opts.m_base = 64;
  opts.cache_shards = 1;
  opts.cache_capacity_per_shard = 4;
  storage::QueryService service(opts);

  core::EncoderOptions eopts;
  eopts.total_band = 32;
  eopts.m_base = 64;
  core::SbrEncoder encoder(eopts);
  std::vector<double> y(128);
  for (size_t i = 0; i < y.size(); ++i) y[i] = std::sin(i * 0.2) * 3.0;
  auto t = encoder.EncodeChunk(y, 1);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(service.Ingest(1, *t).ok());
  const size_t L = t->chunk_len;

  // Five distinct ranges against one epoch = five distinct cache keys in
  // the single shard of capacity four.
  auto query = [&](size_t k) {
    auto r = service.Aggregate(1, 0, k, k + L / 8);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  };
  for (size_t k = 0; k < 4; ++k) query(k);  // fill: misses r0..r3
  auto c = service.counters();
  EXPECT_EQ(c.cache_misses, 4u);
  EXPECT_EQ(c.cache_hits, 0u);
  EXPECT_EQ(c.cache_evictions, 0u);
  EXPECT_EQ(c.cache_resident, 4u);

  query(0);  // hit — r0 becomes most recently used
  query(4);  // miss — evicts r1, the coldest entry, NOT the oldest-touched
  c = service.counters();
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.cache_misses, 5u);
  EXPECT_EQ(c.cache_evictions, 1u);
  EXPECT_EQ(c.cache_resident, 4u);

  query(0);  // still resident: FIFO would have evicted it, LRU keeps it
  c = service.counters();
  EXPECT_EQ(c.cache_hits, 2u);
  query(1);  // r1 was the victim — miss, re-inserted, evicting r2
  c = service.counters();
  EXPECT_EQ(c.cache_misses, 6u);
  EXPECT_EQ(c.cache_evictions, 2u);
  EXPECT_EQ(c.cache_resident, 4u);
  EXPECT_EQ(c.queries, 8u);
}

// ------------------------------------------------------------------
// Concurrency: readers over shared sealed blocks while ingest advances.
// ------------------------------------------------------------------

TEST(QueryIndexParallel, ConcurrentWideReadsOverSharedSealedBlocks) {
  // Writer publishes epochs (copying the per-signal indexes block-wise)
  // while readers run wide indexed aggregates on pinned snapshots. Under
  // TSan this pins that sealed blocks really are immutable-shared; the
  // bitwise repeat check pins that a pinned epoch's answers are frozen.
  constexpr size_t kStreamChunks = 48;
  const datagen::Dataset dataset =
      MakeDataset("weather", 55, kStreamChunks * kChunkLen);
  const size_t num_signals = dataset.num_signals();
  const size_t n = num_signals * kChunkLen;
  core::EncoderOptions opts;
  opts.total_band = n / 8;
  opts.m_base = kMBase;
  core::SbrEncoder encoder(opts);
  std::vector<core::Transmission> stream;
  std::vector<double> chunk(n);
  for (size_t c = 0; c < kStreamChunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = dataset.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    stream.push_back(std::move(*t));
  }

  storage::QueryServiceOptions sopts;
  sopts.m_base = kMBase;
  sopts.cache_shards = 2;
  sopts.cache_capacity_per_shard = 64;
  storage::QueryService service(sopts);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(1000 + static_cast<uint64_t>(r));
      size_t my_reads = 0;
      // Keep reading past ingest completion until this reader has done a
      // minimum amount of real work — on a loaded single-core box the
      // writer can finish before a reader ever gets a timeslice.
      while (!done.load(std::memory_order_acquire) || my_reads < 25) {
        auto snap = service.Snapshot(7);
        if (snap == nullptr || snap->compressed.num_chunks() == 0) continue;
        const size_t len = snap->compressed.history_len();
        const size_t lo = rng() % len;
        auto a = snap->compressed.Aggregate(0, lo, len);
        auto b = snap->compressed.Aggregate(0, lo, len);
        if (!a.ok() || !b.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Same pinned epoch, same range: bitwise identical answers.
        if (a->sum != b->sum || a->min != b->min || a->max != b->max ||
            a->count != b->count || a->count != len - lo) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        ++my_reads;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const core::Transmission& t : stream) {
    ASSERT_TRUE(service.Ingest(7, t).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  // The final service answer equals a fresh single-threaded indexed
  // rebuild of the same stream, bitwise (identical fold order).
  storage::CompressedHistory rebuilt(kMBase);
  for (const core::Transmission& t : stream) {
    ASSERT_TRUE(rebuilt.Ingest(t).ok());
  }
  const size_t len = rebuilt.history_len();
  auto got = service.Aggregate(7, 0, 0, len);
  auto want = rebuilt.Aggregate(0, 0, len);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->sum, want->sum);
  EXPECT_EQ(got->min, want->min);
  EXPECT_EQ(got->max, want->max);
  EXPECT_EQ(got->variance, want->variance);
  EXPECT_EQ(got->count, want->count);
}

}  // namespace
}  // namespace sbr
