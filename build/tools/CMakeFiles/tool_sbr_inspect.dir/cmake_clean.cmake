file(REMOVE_RECURSE
  "CMakeFiles/tool_sbr_inspect.dir/sbr_inspect.cc.o"
  "CMakeFiles/tool_sbr_inspect.dir/sbr_inspect.cc.o.d"
  "sbr_inspect"
  "sbr_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sbr_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
