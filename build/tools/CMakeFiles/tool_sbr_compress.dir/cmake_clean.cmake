file(REMOVE_RECURSE
  "CMakeFiles/tool_sbr_compress.dir/sbr_compress.cc.o"
  "CMakeFiles/tool_sbr_compress.dir/sbr_compress.cc.o.d"
  "sbr_compress"
  "sbr_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sbr_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
