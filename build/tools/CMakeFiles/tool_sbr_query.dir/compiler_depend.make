# Empty compiler generated dependencies file for tool_sbr_query.
# This may be replaced when dependencies are built.
