file(REMOVE_RECURSE
  "CMakeFiles/tool_sbr_query.dir/sbr_query.cc.o"
  "CMakeFiles/tool_sbr_query.dir/sbr_query.cc.o.d"
  "sbr_query"
  "sbr_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sbr_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
