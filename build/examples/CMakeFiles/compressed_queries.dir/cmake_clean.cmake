file(REMOVE_RECURSE
  "CMakeFiles/compressed_queries.dir/compressed_queries.cc.o"
  "CMakeFiles/compressed_queries.dir/compressed_queries.cc.o.d"
  "compressed_queries"
  "compressed_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
