# Empty compiler generated dependencies file for compressed_queries.
# This may be replaced when dependencies are built.
