file(REMOVE_RECURSE
  "CMakeFiles/error_bounds.dir/error_bounds.cc.o"
  "CMakeFiles/error_bounds.dir/error_bounds.cc.o.d"
  "error_bounds"
  "error_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
