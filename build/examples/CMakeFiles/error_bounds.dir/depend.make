# Empty dependencies file for error_bounds.
# This may be replaced when dependencies are built.
