# Empty compiler generated dependencies file for bench_ablation_evict.
# This may be replaced when dependencies are built.
