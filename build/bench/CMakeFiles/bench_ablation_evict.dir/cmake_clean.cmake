file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_evict.dir/bench_ablation_evict.cc.o"
  "CMakeFiles/bench_ablation_evict.dir/bench_ablation_evict.cc.o.d"
  "bench_ablation_evict"
  "bench_ablation_evict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_evict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
