# Empty dependencies file for bench_ablation_w.
# This may be replaced when dependencies are built.
