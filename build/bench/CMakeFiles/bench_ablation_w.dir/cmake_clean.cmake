file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_w.dir/bench_ablation_w.cc.o"
  "CMakeFiles/bench_ablation_w.dir/bench_ablation_w.cc.o.d"
  "bench_ablation_w"
  "bench_ablation_w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
