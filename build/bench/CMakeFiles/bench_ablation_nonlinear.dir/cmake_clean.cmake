file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nonlinear.dir/bench_ablation_nonlinear.cc.o"
  "CMakeFiles/bench_ablation_nonlinear.dir/bench_ablation_nonlinear.cc.o.d"
  "bench_ablation_nonlinear"
  "bench_ablation_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
