# Empty dependencies file for bench_ablation_nonlinear.
# This may be replaced when dependencies are built.
