# Empty compiler generated dependencies file for sbr_core.
# This may be replaced when dependencies are built.
