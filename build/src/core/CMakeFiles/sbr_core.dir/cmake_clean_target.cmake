file(REMOVE_RECURSE
  "libsbr_core.a"
)
