file(REMOVE_RECURSE
  "CMakeFiles/sbr_core.dir/adaptive.cc.o"
  "CMakeFiles/sbr_core.dir/adaptive.cc.o.d"
  "CMakeFiles/sbr_core.dir/base_signal.cc.o"
  "CMakeFiles/sbr_core.dir/base_signal.cc.o.d"
  "CMakeFiles/sbr_core.dir/best_map.cc.o"
  "CMakeFiles/sbr_core.dir/best_map.cc.o.d"
  "CMakeFiles/sbr_core.dir/decoder.cc.o"
  "CMakeFiles/sbr_core.dir/decoder.cc.o.d"
  "CMakeFiles/sbr_core.dir/encoder.cc.o"
  "CMakeFiles/sbr_core.dir/encoder.cc.o.d"
  "CMakeFiles/sbr_core.dir/fixed_base.cc.o"
  "CMakeFiles/sbr_core.dir/fixed_base.cc.o.d"
  "CMakeFiles/sbr_core.dir/get_base.cc.o"
  "CMakeFiles/sbr_core.dir/get_base.cc.o.d"
  "CMakeFiles/sbr_core.dir/get_intervals.cc.o"
  "CMakeFiles/sbr_core.dir/get_intervals.cc.o.d"
  "CMakeFiles/sbr_core.dir/regression.cc.o"
  "CMakeFiles/sbr_core.dir/regression.cc.o.d"
  "CMakeFiles/sbr_core.dir/search.cc.o"
  "CMakeFiles/sbr_core.dir/search.cc.o.d"
  "CMakeFiles/sbr_core.dir/transmission.cc.o"
  "CMakeFiles/sbr_core.dir/transmission.cc.o.d"
  "libsbr_core.a"
  "libsbr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
