
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/sbr_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/base_signal.cc" "src/core/CMakeFiles/sbr_core.dir/base_signal.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/base_signal.cc.o.d"
  "/root/repo/src/core/best_map.cc" "src/core/CMakeFiles/sbr_core.dir/best_map.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/best_map.cc.o.d"
  "/root/repo/src/core/decoder.cc" "src/core/CMakeFiles/sbr_core.dir/decoder.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/decoder.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/core/CMakeFiles/sbr_core.dir/encoder.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/encoder.cc.o.d"
  "/root/repo/src/core/fixed_base.cc" "src/core/CMakeFiles/sbr_core.dir/fixed_base.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/fixed_base.cc.o.d"
  "/root/repo/src/core/get_base.cc" "src/core/CMakeFiles/sbr_core.dir/get_base.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/get_base.cc.o.d"
  "/root/repo/src/core/get_intervals.cc" "src/core/CMakeFiles/sbr_core.dir/get_intervals.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/get_intervals.cc.o.d"
  "/root/repo/src/core/regression.cc" "src/core/CMakeFiles/sbr_core.dir/regression.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/regression.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/sbr_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/search.cc.o.d"
  "/root/repo/src/core/transmission.cc" "src/core/CMakeFiles/sbr_core.dir/transmission.cc.o" "gcc" "src/core/CMakeFiles/sbr_core.dir/transmission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sbr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
