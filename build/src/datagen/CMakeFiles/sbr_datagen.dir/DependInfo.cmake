
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dataset.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/dataset.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/dataset.cc.o.d"
  "/root/repo/src/datagen/mixed.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/mixed.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/mixed.cc.o.d"
  "/root/repo/src/datagen/paper_datasets.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/paper_datasets.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/paper_datasets.cc.o.d"
  "/root/repo/src/datagen/phonecall.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/phonecall.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/phonecall.cc.o.d"
  "/root/repo/src/datagen/stock.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/stock.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/stock.cc.o.d"
  "/root/repo/src/datagen/weather.cc" "src/datagen/CMakeFiles/sbr_datagen.dir/weather.cc.o" "gcc" "src/datagen/CMakeFiles/sbr_datagen.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sbr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
