# Empty compiler generated dependencies file for sbr_datagen.
# This may be replaced when dependencies are built.
