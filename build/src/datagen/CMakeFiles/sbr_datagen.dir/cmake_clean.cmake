file(REMOVE_RECURSE
  "CMakeFiles/sbr_datagen.dir/dataset.cc.o"
  "CMakeFiles/sbr_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/sbr_datagen.dir/mixed.cc.o"
  "CMakeFiles/sbr_datagen.dir/mixed.cc.o.d"
  "CMakeFiles/sbr_datagen.dir/paper_datasets.cc.o"
  "CMakeFiles/sbr_datagen.dir/paper_datasets.cc.o.d"
  "CMakeFiles/sbr_datagen.dir/phonecall.cc.o"
  "CMakeFiles/sbr_datagen.dir/phonecall.cc.o.d"
  "CMakeFiles/sbr_datagen.dir/stock.cc.o"
  "CMakeFiles/sbr_datagen.dir/stock.cc.o.d"
  "CMakeFiles/sbr_datagen.dir/weather.cc.o"
  "CMakeFiles/sbr_datagen.dir/weather.cc.o.d"
  "libsbr_datagen.a"
  "libsbr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
