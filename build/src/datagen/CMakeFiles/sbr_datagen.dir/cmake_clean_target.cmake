file(REMOVE_RECURSE
  "libsbr_datagen.a"
)
