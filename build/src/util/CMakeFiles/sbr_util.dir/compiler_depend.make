# Empty compiler generated dependencies file for sbr_util.
# This may be replaced when dependencies are built.
