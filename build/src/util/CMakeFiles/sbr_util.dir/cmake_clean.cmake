file(REMOVE_RECURSE
  "CMakeFiles/sbr_util.dir/csv.cc.o"
  "CMakeFiles/sbr_util.dir/csv.cc.o.d"
  "CMakeFiles/sbr_util.dir/rng.cc.o"
  "CMakeFiles/sbr_util.dir/rng.cc.o.d"
  "CMakeFiles/sbr_util.dir/serialize.cc.o"
  "CMakeFiles/sbr_util.dir/serialize.cc.o.d"
  "CMakeFiles/sbr_util.dir/stats.cc.o"
  "CMakeFiles/sbr_util.dir/stats.cc.o.d"
  "CMakeFiles/sbr_util.dir/status.cc.o"
  "CMakeFiles/sbr_util.dir/status.cc.o.d"
  "libsbr_util.a"
  "libsbr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
