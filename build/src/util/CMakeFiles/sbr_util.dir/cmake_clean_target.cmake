file(REMOVE_RECURSE
  "libsbr_util.a"
)
