file(REMOVE_RECURSE
  "CMakeFiles/sbr_storage.dir/chunk_log.cc.o"
  "CMakeFiles/sbr_storage.dir/chunk_log.cc.o.d"
  "CMakeFiles/sbr_storage.dir/history_store.cc.o"
  "CMakeFiles/sbr_storage.dir/history_store.cc.o.d"
  "CMakeFiles/sbr_storage.dir/query_engine.cc.o"
  "CMakeFiles/sbr_storage.dir/query_engine.cc.o.d"
  "libsbr_storage.a"
  "libsbr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
