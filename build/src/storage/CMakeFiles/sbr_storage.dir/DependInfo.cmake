
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/chunk_log.cc" "src/storage/CMakeFiles/sbr_storage.dir/chunk_log.cc.o" "gcc" "src/storage/CMakeFiles/sbr_storage.dir/chunk_log.cc.o.d"
  "/root/repo/src/storage/history_store.cc" "src/storage/CMakeFiles/sbr_storage.dir/history_store.cc.o" "gcc" "src/storage/CMakeFiles/sbr_storage.dir/history_store.cc.o.d"
  "/root/repo/src/storage/query_engine.cc" "src/storage/CMakeFiles/sbr_storage.dir/query_engine.cc.o" "gcc" "src/storage/CMakeFiles/sbr_storage.dir/query_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sbr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
