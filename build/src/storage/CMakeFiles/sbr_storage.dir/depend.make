# Empty dependencies file for sbr_storage.
# This may be replaced when dependencies are built.
