file(REMOVE_RECURSE
  "libsbr_storage.a"
)
