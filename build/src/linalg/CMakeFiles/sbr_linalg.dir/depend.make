# Empty dependencies file for sbr_linalg.
# This may be replaced when dependencies are built.
