
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dct.cc" "src/linalg/CMakeFiles/sbr_linalg.dir/dct.cc.o" "gcc" "src/linalg/CMakeFiles/sbr_linalg.dir/dct.cc.o.d"
  "/root/repo/src/linalg/fft.cc" "src/linalg/CMakeFiles/sbr_linalg.dir/fft.cc.o" "gcc" "src/linalg/CMakeFiles/sbr_linalg.dir/fft.cc.o.d"
  "/root/repo/src/linalg/jacobi.cc" "src/linalg/CMakeFiles/sbr_linalg.dir/jacobi.cc.o" "gcc" "src/linalg/CMakeFiles/sbr_linalg.dir/jacobi.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/sbr_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/sbr_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/linalg/CMakeFiles/sbr_linalg.dir/svd.cc.o" "gcc" "src/linalg/CMakeFiles/sbr_linalg.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
