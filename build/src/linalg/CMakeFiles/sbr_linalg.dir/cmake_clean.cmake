file(REMOVE_RECURSE
  "CMakeFiles/sbr_linalg.dir/dct.cc.o"
  "CMakeFiles/sbr_linalg.dir/dct.cc.o.d"
  "CMakeFiles/sbr_linalg.dir/fft.cc.o"
  "CMakeFiles/sbr_linalg.dir/fft.cc.o.d"
  "CMakeFiles/sbr_linalg.dir/jacobi.cc.o"
  "CMakeFiles/sbr_linalg.dir/jacobi.cc.o.d"
  "CMakeFiles/sbr_linalg.dir/matrix.cc.o"
  "CMakeFiles/sbr_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/sbr_linalg.dir/svd.cc.o"
  "CMakeFiles/sbr_linalg.dir/svd.cc.o.d"
  "libsbr_linalg.a"
  "libsbr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
