file(REMOVE_RECURSE
  "libsbr_linalg.a"
)
