file(REMOVE_RECURSE
  "CMakeFiles/sbr_compress.dir/dct_compressor.cc.o"
  "CMakeFiles/sbr_compress.dir/dct_compressor.cc.o.d"
  "CMakeFiles/sbr_compress.dir/fourier.cc.o"
  "CMakeFiles/sbr_compress.dir/fourier.cc.o.d"
  "CMakeFiles/sbr_compress.dir/histogram.cc.o"
  "CMakeFiles/sbr_compress.dir/histogram.cc.o.d"
  "CMakeFiles/sbr_compress.dir/linear_model.cc.o"
  "CMakeFiles/sbr_compress.dir/linear_model.cc.o.d"
  "CMakeFiles/sbr_compress.dir/sbr_compressor.cc.o"
  "CMakeFiles/sbr_compress.dir/sbr_compressor.cc.o.d"
  "CMakeFiles/sbr_compress.dir/svd_base.cc.o"
  "CMakeFiles/sbr_compress.dir/svd_base.cc.o.d"
  "CMakeFiles/sbr_compress.dir/wavelet.cc.o"
  "CMakeFiles/sbr_compress.dir/wavelet.cc.o.d"
  "libsbr_compress.a"
  "libsbr_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
