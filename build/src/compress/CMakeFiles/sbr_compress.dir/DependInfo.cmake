
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/dct_compressor.cc" "src/compress/CMakeFiles/sbr_compress.dir/dct_compressor.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/dct_compressor.cc.o.d"
  "/root/repo/src/compress/fourier.cc" "src/compress/CMakeFiles/sbr_compress.dir/fourier.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/fourier.cc.o.d"
  "/root/repo/src/compress/histogram.cc" "src/compress/CMakeFiles/sbr_compress.dir/histogram.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/histogram.cc.o.d"
  "/root/repo/src/compress/linear_model.cc" "src/compress/CMakeFiles/sbr_compress.dir/linear_model.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/linear_model.cc.o.d"
  "/root/repo/src/compress/sbr_compressor.cc" "src/compress/CMakeFiles/sbr_compress.dir/sbr_compressor.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/sbr_compressor.cc.o.d"
  "/root/repo/src/compress/svd_base.cc" "src/compress/CMakeFiles/sbr_compress.dir/svd_base.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/svd_base.cc.o.d"
  "/root/repo/src/compress/wavelet.cc" "src/compress/CMakeFiles/sbr_compress.dir/wavelet.cc.o" "gcc" "src/compress/CMakeFiles/sbr_compress.dir/wavelet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sbr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
