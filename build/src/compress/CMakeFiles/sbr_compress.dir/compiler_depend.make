# Empty compiler generated dependencies file for sbr_compress.
# This may be replaced when dependencies are built.
