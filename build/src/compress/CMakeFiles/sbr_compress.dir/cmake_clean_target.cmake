file(REMOVE_RECURSE
  "libsbr_compress.a"
)
