file(REMOVE_RECURSE
  "libsbr_net.a"
)
