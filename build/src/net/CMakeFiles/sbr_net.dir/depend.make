# Empty dependencies file for sbr_net.
# This may be replaced when dependencies are built.
