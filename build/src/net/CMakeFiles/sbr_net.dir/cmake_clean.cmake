file(REMOVE_RECURSE
  "CMakeFiles/sbr_net.dir/base_station.cc.o"
  "CMakeFiles/sbr_net.dir/base_station.cc.o.d"
  "CMakeFiles/sbr_net.dir/energy.cc.o"
  "CMakeFiles/sbr_net.dir/energy.cc.o.d"
  "CMakeFiles/sbr_net.dir/network.cc.o"
  "CMakeFiles/sbr_net.dir/network.cc.o.d"
  "CMakeFiles/sbr_net.dir/node.cc.o"
  "CMakeFiles/sbr_net.dir/node.cc.o.d"
  "libsbr_net.a"
  "libsbr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
