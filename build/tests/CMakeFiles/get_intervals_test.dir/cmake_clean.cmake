file(REMOVE_RECURSE
  "CMakeFiles/get_intervals_test.dir/get_intervals_test.cc.o"
  "CMakeFiles/get_intervals_test.dir/get_intervals_test.cc.o.d"
  "get_intervals_test"
  "get_intervals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/get_intervals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
