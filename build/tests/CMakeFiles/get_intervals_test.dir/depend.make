# Empty dependencies file for get_intervals_test.
# This may be replaced when dependencies are built.
