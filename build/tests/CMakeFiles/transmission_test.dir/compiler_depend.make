# Empty compiler generated dependencies file for transmission_test.
# This may be replaced when dependencies are built.
