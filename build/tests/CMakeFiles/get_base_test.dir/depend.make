# Empty dependencies file for get_base_test.
# This may be replaced when dependencies are built.
