file(REMOVE_RECURSE
  "CMakeFiles/get_base_test.dir/get_base_test.cc.o"
  "CMakeFiles/get_base_test.dir/get_base_test.cc.o.d"
  "get_base_test"
  "get_base_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/get_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
