file(REMOVE_RECURSE
  "CMakeFiles/best_map_test.dir/best_map_test.cc.o"
  "CMakeFiles/best_map_test.dir/best_map_test.cc.o.d"
  "best_map_test"
  "best_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
