# Empty compiler generated dependencies file for best_map_test.
# This may be replaced when dependencies are built.
