
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/net_test.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sbr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sbr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sbr_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sbr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sbr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
