file(REMOVE_RECURSE
  "CMakeFiles/base_signal_test.dir/base_signal_test.cc.o"
  "CMakeFiles/base_signal_test.dir/base_signal_test.cc.o.d"
  "base_signal_test"
  "base_signal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
