# Empty dependencies file for base_signal_test.
# This may be replaced when dependencies are built.
