# Empty dependencies file for encoder_decoder_test.
# This may be replaced when dependencies are built.
