// Reproduces Figure 5: "Average Running Time vs TotalBand" — the average
// per-transmission wall-clock time of the full SBR algorithm on the stock
// dataset, as the transmitted size varies from 5% to 30% of n, for
// n = 5120 .. 20480 (10 tickers, M varied) and M_base = 1024.
//
// Paper shape to verify: running time scales ~linearly with TotalBand and
// grows with n; absolute numbers are far below the paper's 300 MHz host
// (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

int main() {
  using namespace sbr;
  using namespace sbr::bench;
  std::printf(
      "== Figure 5: avg seconds per transmission vs TotalBand "
      "(stock, M_base=1024) ==\n");
  std::printf("%-8s", "ratio");
  for (size_t m : {512u, 1024u, 1536u, 2048u}) {
    std::printf("   n=%-10zu", 10 * m);
  }
  std::printf("\n");

  for (size_t pct : kPaperRatios) {
    std::printf("%zu%%%-6s", pct, "");
    for (size_t m : {512u, 1024u, 1536u, 2048u}) {
      const auto setup = datagen::Fig5StockSetup(m);
      const size_t n = setup.dataset.num_signals() * setup.chunk_len;
      const size_t total_band = n * pct / 100;
      Method sbr{"SBR", [](size_t tb, size_t mb) {
                   core::EncoderOptions opts;
                   opts.total_band = tb;
                   opts.m_base = mb;
                   return std::make_unique<compress::SbrCompressor>(opts);
                 }};
      const auto scores =
          RunMethods(setup, {sbr}, total_band, setup.num_chunks);
      std::printf("   %-12.4f",
                  scores[0].seconds / static_cast<double>(setup.num_chunks));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
