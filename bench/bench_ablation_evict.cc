// Ablation C (DESIGN.md): base-signal maintenance policies.
// Part 1 — eviction policy (LFU vs FIFO vs Random) under a deliberately
// tiny base buffer and a non-stationary stream, where eviction pressure is
// constant; the paper prescribes LFU.
// Part 2 — the Section 4.4 shortcut: after a warm-up transmission, freeze
// the base (update_base = false), skipping GetBase/Search entirely; the
// bench reports the error penalty and the speedup. The paper's claim is
// that the penalty is small once the base is of good quality.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"
#include "datagen/weather.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace sbr;

constexpr size_t kChunkLen = 1024;
constexpr size_t kChunks = 8;

// Non-stationary feed: each chunk draws from one of three waveform
// families (sharp sawtooth harmonics, square-wave bursts, smooth chirps),
// rotating every chunk, so GetBase proposes fresh intervals continuously
// and the tiny base buffer is under constant eviction pressure.
datagen::Dataset NonStationaryFeed() {
  datagen::Dataset ds;
  ds.name = "nonstationary";
  ds.signal_names = {"a", "b", "c", "d", "e", "f"};
  ds.values = linalg::Matrix(6, kChunks * kChunkLen);
  Rng rng(13);
  for (size_t c = 0; c < kChunks; ++c) {
    const int family = static_cast<int>(c % 3);
    for (size_t s = 0; s < 6; ++s) {
      const double scale = rng.Uniform(0.5, 2.0);
      const double offset = rng.Uniform(-3, 3);
      for (size_t i = 0; i < kChunkLen; ++i) {
        const double t = static_cast<double>(i);
        double v = 0.0;
        switch (family) {
          case 0:  // sawtooth with harmonics
            v = std::fmod(t, 64.0) / 32.0 - 1.0 +
                0.4 * std::fmod(t, 16.0) / 8.0;
            break;
          case 1:  // square bursts
            v = (std::fmod(t, 96.0) < 24.0 ? 1.0 : -0.3) +
                (std::fmod(t, 24.0) < 6.0 ? 0.5 : 0.0);
            break;
          default:  // smooth chirp
            v = std::sin(2.0 * M_PI * t * (1.0 + t / kChunkLen) / 80.0);
        }
        ds.values(s, c * kChunkLen + i) =
            scale * v + offset + rng.Gaussian(0, 0.02);
      }
    }
  }
  return ds;
}

}  // namespace

int main() {
  std::printf("== Ablation: base-signal maintenance ==\n");

  const datagen::Dataset feed = NonStationaryFeed();
  const size_t n = feed.num_signals() * kChunkLen;
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));

  // ---- Part 1: eviction policy under pressure.
  std::printf("\n-- eviction policy (m_base = 2 slots, ratio 10%%) --\n");
  std::printf("%-10s %-14s\n", "policy", "total_sse");
  for (auto [name, policy] :
       {std::pair{"LFU", core::EvictionPolicy::kLfu},
        std::pair{"FIFO", core::EvictionPolicy::kFifo},
        std::pair{"Random", core::EvictionPolicy::kRandom}}) {
    core::EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 2 * w;
    opts.eviction = policy;
    compress::SbrCompressor sbr(opts);
    double total = 0;
    for (size_t c = 0; c < kChunks; ++c) {
      const auto y = datagen::ConcatRows(feed.Chunk(c, kChunkLen));
      auto rec = sbr.CompressAndReconstruct(y, feed.num_signals(),
                                            opts.total_band);
      if (rec.ok()) total += SumSquaredError(y, *rec);
    }
    std::printf("%-10s %-14.6g\n", name, total);
    std::fflush(stdout);
  }

  // ---- Part 2: frozen-base shortcut on a stationary stream.
  std::printf("\n-- Section 4.4 shortcut: freeze base after warm-up --\n");
  datagen::WeatherOptions wopts;
  wopts.length = kChunks * kChunkLen;
  wopts.seed = 5;
  const datagen::Dataset stable = datagen::GenerateWeather(wopts);

  auto run_tail = [&](bool freeze) {
    core::EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 1024;
    core::SbrEncoder enc(opts);
    // Warm-up chunk 0 with updates enabled (not scored).
    const auto y0 = datagen::ConcatRows(stable.Chunk(0, kChunkLen));
    (void)enc.EncodeChunk(y0, stable.num_signals());
    if (freeze) enc.set_update_base(false);
    double err = 0, sec = 0;
    for (size_t c = 1; c < kChunks; ++c) {
      const auto y = datagen::ConcatRows(stable.Chunk(c, kChunkLen));
      const auto t0 = std::chrono::steady_clock::now();
      auto t = enc.EncodeChunk(y, stable.num_signals());
      sec += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
      if (t.ok()) err += enc.last_stats().total_error;
    }
    return std::pair{err, sec};
  };

  const auto [upd_err, upd_sec] = run_tail(/*freeze=*/false);
  const auto [frz_err, frz_sec] = run_tail(/*freeze=*/true);
  std::printf("%-22s %-14s %-10s\n", "mode (chunks 1..7)", "total_err",
              "seconds");
  std::printf("%-22s %-14.6g %-10.4f\n", "update_base=true", upd_err,
              upd_sec);
  std::printf("%-22s %-14.6g %-10.4f\n", "update_base=false", frz_err,
              frz_sec);
  std::printf("error penalty %.2fx, speedup %.2fx\n",
              frz_err / std::max(upd_err, 1e-12),
              upd_sec / std::max(frz_sec, 1e-12));
  return 0;
}
