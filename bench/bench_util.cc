#include "bench_util.h"

#include <chrono>
#include <cstdio>

#include "compress/dct_compressor.h"
#include "compress/histogram.h"
#include "compress/sbr_compressor.h"
#include "compress/wavelet.h"
#include "util/stats.h"

namespace sbr::bench {

std::vector<Method> PaperMethodSet() {
  std::vector<Method> methods;
  methods.push_back({"SBR", [](size_t total_band, size_t m_base) {
                       core::EncoderOptions opts;
                       opts.total_band = total_band;
                       opts.m_base = m_base;
                       return std::make_unique<compress::SbrCompressor>(opts);
                     }});
  methods.push_back({"Wavelets", [](size_t, size_t) {
                       return std::make_unique<compress::WaveletCompressor>(
                           compress::WaveletLayout::kConcat);
                     }});
  methods.push_back({"DCT", [](size_t, size_t) {
                       return std::make_unique<compress::DctCompressor>(
                           compress::DctLayout::kConcat);
                     }});
  methods.push_back({"Histograms", [](size_t, size_t) {
                       return std::make_unique<compress::HistogramCompressor>(
                           compress::HistogramKind::kEquiDepth);
                     }});
  return methods;
}

std::vector<MethodScore> RunMethods(const datagen::ExperimentSetup& setup,
                                    const std::vector<Method>& methods,
                                    size_t total_band, size_t num_chunks) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  std::vector<MethodScore> scores;
  for (const Method& method : methods) {
    MethodScore score;
    score.name = method.name;
    auto compressor = method.make(total_band, setup.m_base);
    for (size_t c = 0; c < num_chunks; ++c) {
      const auto y = datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
      const auto t0 = std::chrono::steady_clock::now();
      auto rec = compressor->CompressAndReconstruct(
          y, setup.dataset.num_signals(), total_band);
      score.seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!rec.ok()) {
        std::fprintf(stderr, "[%s] chunk %zu failed: %s\n",
                     method.name.c_str(), c, rec.status().ToString().c_str());
        continue;
      }
      score.sum_sse += SumSquaredError(y, *rec);
      score.total_rel += SumSquaredRelativeError(y, *rec);
    }
    score.avg_sse = score.sum_sse /
                    (static_cast<double>(num_chunks) * static_cast<double>(n));
    scores.push_back(std::move(score));
  }
  return scores;
}

void PrintRatioTable(
    const std::string& title, const datagen::ExperimentSetup& setup,
    const std::vector<Method>& methods, const std::vector<size_t>& ratios_pct,
    const std::function<double(const MethodScore&)>& value,
    size_t num_chunks) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s", "ratio");
  for (const Method& m : methods) std::printf("%14s", m.name.c_str());
  std::printf("\n");
  for (size_t pct : ratios_pct) {
    const size_t total_band = n * pct / 100;
    const auto scores = RunMethods(setup, methods, total_band, num_chunks);
    std::printf("%zu%%%-6s", pct, "");
    for (const auto& s : scores) std::printf("%14.6g", value(s));
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace sbr::bench
