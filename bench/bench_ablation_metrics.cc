// Ablation B (DESIGN.md): the three Regression kernels (Section 4.5).
// Encoding the same workload under each metric, then scoring every run
// under all three metrics, shows each kernel wins its own game: the
// relative-metric encoder has the best relative error, the minimax encoder
// the smallest maximum error, and the SSE encoder the smallest SSE.
// The minimax kernel's higher cost is also visible in the timing column.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"
#include "datagen/phonecall.h"
#include "util/stats.h"

int main() {
  using namespace sbr;
  std::printf("== Ablation: error-metric kernels (phone subset) ==\n");

  datagen::PhoneCallOptions popts;
  popts.length = 3 * 512;
  const datagen::Dataset full = datagen::GeneratePhoneCalls(popts);
  const datagen::Dataset ds = full.SelectSignals({0, 1, 4, 12}, "phone4");
  const size_t chunk_len = 512;
  const size_t n = ds.num_signals() * chunk_len;
  const size_t total_band = n * 15 / 100;

  std::printf("%-14s %-14s %-14s %-12s %-10s\n", "encode_metric", "sse",
              "relative_sse", "max_abs", "seconds");
  for (core::ErrorMetric metric :
       {core::ErrorMetric::kSse, core::ErrorMetric::kSseRelative,
        core::ErrorMetric::kMaxAbs}) {
    core::EncoderOptions opts;
    opts.total_band = total_band;
    opts.m_base = 256;
    opts.metric = metric;
    compress::SbrCompressor sbr(opts);
    double sse = 0, rel = 0, max_abs = 0, seconds = 0;
    for (size_t c = 0; c < 3; ++c) {
      const auto y = datagen::ConcatRows(ds.Chunk(c, chunk_len));
      const auto t0 = std::chrono::steady_clock::now();
      auto rec = sbr.CompressAndReconstruct(y, ds.num_signals(), total_band);
      seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      if (!rec.ok()) {
        std::fprintf(stderr, "failed: %s\n", rec.status().ToString().c_str());
        return 1;
      }
      sse += SumSquaredError(y, *rec);
      rel += SumSquaredRelativeError(y, *rec);
      max_abs = std::max(max_abs, MaxAbsoluteError(y, *rec));
    }
    std::printf("%-14s %-14.6g %-14.6g %-12.6g %-10.3f\n",
                core::ErrorMetricName(metric), sse, rel, max_abs, seconds);
    std::fflush(stdout);
  }
  return 0;
}
