// Kernel microbenchmarks (google-benchmark): the throughput of every hot
// path in the pipeline. The paper reports ~1,000 items/second end-to-end
// on a 300 MHz StrongARM-class host; these numbers calibrate the modern-
// host equivalent and expose the relative costs of the stages.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "compress/wavelet.h"
#include "core/best_map.h"
#include "core/encoder.h"
#include "core/get_base.h"
#include "core/get_intervals.h"
#include "core/regression.h"
#include "core/search.h"
#include "core/workspace.h"
#include "datagen/dataset.h"
#include "datagen/weather.h"
#include "linalg/dct.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace alloc_count {
// Process-wide heap counters fed by the replacement global allocator
// below; BM_BestMapWorkspace reads them around each encode to report
// allocations per encode with and without workspace reuse.
std::atomic<uint64_t> count{0};
std::atomic<uint64_t> bytes{0};
}  // namespace alloc_count

// Replacement global allocator: two relaxed increments per allocation,
// noise for the other rows (which time O(n) kernels, not the allocator).
// The nothrow / array / sized-delete forms forward here per the standard's
// default definitions; the aligned forms are replaced explicitly.
//
// GCC flags free() in the replaced deletes as mismatched because it cannot
// see that the replaced news above are malloc-backed — a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  alloc_count::count.fetch_add(1, std::memory_order_relaxed);
  alloc_count::bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  alloc_count::count.fetch_add(1, std::memory_order_relaxed);
  alloc_count::bytes.fetch_add(size, std::memory_order_relaxed);
  const std::size_t a =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace {

using namespace sbr;
using namespace sbr::core;

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = std::sin(i * 0.17) * 3 + rng.Gaussian(0, 0.5);
  }
  return y;
}

void BM_FitSse(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 1);
  const auto y = RandomSeries(len, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSse(x, y));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitSse)->Arg(64)->Arg(256)->Arg(1024);

void BM_FitSseRelative(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 3);
  const auto y = RandomSeries(len, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSseRelative(x, y, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitSseRelative)->Arg(256);

void BM_FitMaxAbs(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 5);
  const auto y = RandomSeries(len, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitMaxAbs(x, y));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitMaxAbs)->Arg(256);

void BM_BestMap(benchmark::State& state) {
  const size_t base_len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(base_len, 7);
  const auto y = RandomSeries(512, 8);
  BestMapOptions opts;
  for (auto _ : state) {
    Interval iv;
    iv.start = 128;
    iv.length = 64;
    BestMap(x, y, /*w=*/64, opts, &iv);
    benchmark::DoNotOptimize(iv);
  }
  state.SetItemsProcessed(state.iterations() * base_len);
}
BENCHMARK(BM_BestMap)->Arg(512)->Arg(2048);

void BM_GetIntervals(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(1024, 9);
  const auto y = RandomSeries(n, 10);
  GetIntervalsOptions opts;
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  for (auto _ : state) {
    auto r = GetIntervals(x, y, /*num_signals=*/4, n / 10, w, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetIntervals)->Arg(4096)->Arg(16384);

void BM_GetBase(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 11);
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  GetBaseOptions opts;
  for (auto _ : state) {
    auto r = GetBase(y, /*num_signals=*/4, w, /*max_ins=*/8, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetBase)->Arg(4096)->Arg(16384);

void BM_GetBaseLowMem(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 12);
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  GetBaseOptions opts;
  for (auto _ : state) {
    auto r = GetBaseLowMem(y, /*num_signals=*/4, w, /*max_ins=*/8, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetBaseLowMem)->Arg(4096);

void BM_EncodeChunkThreads(benchmark::State& state) {
  // Thread-scaling row for the full encode path (BestMap scans + GetBase
  // matrix + search probes); arg = EncoderOptions::threads. Output is
  // bitwise identical across rows, only the wall clock moves.
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t n = 16384;
  const auto y = RandomSeries(n, 15);
  for (auto _ : state) {
    EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 1024;
    opts.threads = threads;
    SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, /*num_signals=*/4);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EncodeChunkThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_BestMapWorkspace(benchmark::State& state) {
  // Per-encode heap-allocation accounting on a scaled-down Table-2 weather
  // workload (N=6, M=1024, 10% ratio), before (arg 0: workspace pointers
  // left null, i.e. the pre-refactor per-call allocations preserved by the
  // legacy path) and after (arg 1: one persistent EncodeWorkspace) the
  // workspace refactor. One "encode" = the insert-count search plus the
  // final approximation — the stages the workspace serves. The emitted
  // intervals are bitwise identical either way; only allocator traffic
  // moves, reported by the allocs/encode and KB/encode counters.
  const bool reuse = state.range(0) != 0;
  datagen::WeatherOptions wopts;
  wopts.length = 1024;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const std::vector<double> y = datagen::ConcatRows(ds.values);
  const std::vector<size_t> lengths(ds.num_signals(), ds.length());
  const size_t n = y.size();
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  const size_t band = n / 10;

  GetIntervalsOptions gi;
  gi.values_per_interval = 4;

  // Candidate construction is hoisted out of the measurement: GetBase
  // allocates the same either way and the workspace targets the
  // search/approximate stages.
  const auto candidates =
      GetBaseMultiRate(y, lengths, w, /*max_ins=*/band / w, GetBaseOptions{});
  std::vector<double> full_base;
  for (const auto& c : candidates) {
    full_base.insert(full_base.end(), c.values.begin(), c.values.end());
  }

  EncodeWorkspace ws;
  uint64_t allocs = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    const uint64_t c0 = alloc_count::count.load(std::memory_order_relaxed);
    const uint64_t b0 = alloc_count::bytes.load(std::memory_order_relaxed);

    if (reuse) ws.BeginChunk(/*threads=*/1);
    gi.best_map.workspace = reuse ? &ws : nullptr;
    SearchContext ctx;
    ctx.current_base = {};
    ctx.candidates = &candidates;
    ctx.y = y;
    ctx.row_lengths = lengths;
    ctx.w = w;
    ctx.total_band = band;
    ctx.get_intervals = gi;
    ctx.workspace = reuse ? &ws : nullptr;
    const SearchResult sr = SearchInsertCount(ctx);

    const std::span<const double> base(full_base.data(), sr.ins * w);
    if (reuse) ws.SetBase(base);
    auto r = GetIntervalsMultiRate(base, y, lengths,
                                   band - sr.ins * (w + 1), w, gi);
    benchmark::DoNotOptimize(r);

    allocs += alloc_count::count.load(std::memory_order_relaxed) - c0;
    bytes += alloc_count::bytes.load(std::memory_order_relaxed) - b0;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["allocs/encode"] =
      benchmark::Counter(static_cast<double>(allocs) / iters);
  state.counters["KB/encode"] =
      benchmark::Counter(static_cast<double>(bytes) / iters / 1024.0);
  state.SetLabel(reuse ? "workspace" : "baseline");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BestMapWorkspace)->Arg(0)->Arg(1);

void BM_EncodeWeatherObs(benchmark::State& state) {
  // Observability overhead on the Table-2 weather encode path. Arg 0 runs
  // with instrumentation compiled in but runtime-disabled (each site costs
  // one relaxed load + branch), arg 1 with the full metric/span recording
  // on. Compare the arg-0 row against the same row from a build-noobs
  // binary (SBR_OBS=0, sites compiled out) for the compiled-in-disabled
  // overhead figure; the acceptance bar is <= 2%.
  const bool enabled = state.range(0) != 0;
  datagen::WeatherOptions wopts;
  wopts.length = 1024;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const std::vector<double> y = datagen::ConcatRows(ds.values);
  const size_t n = y.size();

  sbr::obs::SetEnabled(enabled);
  for (auto _ : state) {
    EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 1024;
    SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, ds.num_signals());
    benchmark::DoNotOptimize(t);
  }
  sbr::obs::SetEnabled(false);
  state.SetLabel(enabled ? "obs-enabled" : "obs-disabled");
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EncodeWeatherObs)->Arg(0)->Arg(1);

void BM_HaarForward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto y = RandomSeries(n, 13);
  for (auto _ : state) {
    compress::HaarForward(y);
    compress::HaarInverse(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HaarForward)->Arg(16384);

void BM_FastDct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::DctOrthonormal(y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FastDct)->Arg(16384);

}  // namespace
