// Kernel microbenchmarks (google-benchmark): the throughput of every hot
// path in the pipeline. The paper reports ~1,000 items/second end-to-end
// on a 300 MHz StrongARM-class host; these numbers calibrate the modern-
// host equivalent and expose the relative costs of the stages.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "compress/wavelet.h"
#include "core/best_map.h"
#include "core/encoder.h"
#include "core/get_base.h"
#include "core/get_intervals.h"
#include "core/regression.h"
#include "linalg/dct.h"
#include "util/rng.h"

namespace {

using namespace sbr;
using namespace sbr::core;

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = std::sin(i * 0.17) * 3 + rng.Gaussian(0, 0.5);
  }
  return y;
}

void BM_FitSse(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 1);
  const auto y = RandomSeries(len, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSse(x, y));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitSse)->Arg(64)->Arg(256)->Arg(1024);

void BM_FitSseRelative(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 3);
  const auto y = RandomSeries(len, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSseRelative(x, y, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitSseRelative)->Arg(256);

void BM_FitMaxAbs(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(len, 5);
  const auto y = RandomSeries(len, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitMaxAbs(x, y));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FitMaxAbs)->Arg(256);

void BM_BestMap(benchmark::State& state) {
  const size_t base_len = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(base_len, 7);
  const auto y = RandomSeries(512, 8);
  BestMapOptions opts;
  for (auto _ : state) {
    Interval iv;
    iv.start = 128;
    iv.length = 64;
    BestMap(x, y, /*w=*/64, opts, &iv);
    benchmark::DoNotOptimize(iv);
  }
  state.SetItemsProcessed(state.iterations() * base_len);
}
BENCHMARK(BM_BestMap)->Arg(512)->Arg(2048);

void BM_GetIntervals(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(1024, 9);
  const auto y = RandomSeries(n, 10);
  GetIntervalsOptions opts;
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  for (auto _ : state) {
    auto r = GetIntervals(x, y, /*num_signals=*/4, n / 10, w, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetIntervals)->Arg(4096)->Arg(16384);

void BM_GetBase(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 11);
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  GetBaseOptions opts;
  for (auto _ : state) {
    auto r = GetBase(y, /*num_signals=*/4, w, /*max_ins=*/8, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetBase)->Arg(4096)->Arg(16384);

void BM_GetBaseLowMem(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 12);
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  GetBaseOptions opts;
  for (auto _ : state) {
    auto r = GetBaseLowMem(y, /*num_signals=*/4, w, /*max_ins=*/8, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GetBaseLowMem)->Arg(4096);

void BM_EncodeChunkThreads(benchmark::State& state) {
  // Thread-scaling row for the full encode path (BestMap scans + GetBase
  // matrix + search probes); arg = EncoderOptions::threads. Output is
  // bitwise identical across rows, only the wall clock moves.
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t n = 16384;
  const auto y = RandomSeries(n, 15);
  for (auto _ : state) {
    EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 1024;
    opts.threads = threads;
    SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, /*num_signals=*/4);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EncodeChunkThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_HaarForward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto y = RandomSeries(n, 13);
  for (auto _ : state) {
    compress::HaarForward(y);
    compress::HaarInverse(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HaarForward)->Arg(16384);

void BM_FastDct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto y = RandomSeries(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::DctOrthonormal(y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FastDct)->Arg(16384);

}  // namespace
