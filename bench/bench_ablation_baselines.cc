// Ablation D: baseline method variants. Section 5.1 of the paper says
// each competitor was run in several configurations and the best was
// reported: wavelets over the concatenated series beat per-signal and 2-D
// layouts, and "the Fourier transform was also considered, but produced
// consistently larger errors than DCT". This bench reproduces those
// internal comparisons so the choice of baselines in Tables 2-4 is
// justified by measurement, not assertion.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "compress/dct_compressor.h"
#include "compress/fourier.h"
#include "compress/histogram.h"
#include "compress/wavelet.h"

int main() {
  using namespace sbr;
  using namespace sbr::bench;
  std::printf("== Ablation: baseline variants (avg SSE, 10%% ratio) ==\n");

  std::vector<Method> methods;
  methods.push_back({"wave_concat", [](size_t, size_t) {
                       return std::make_unique<compress::WaveletCompressor>(
                           compress::WaveletLayout::kConcat);
                     }});
  methods.push_back({"wave_persig", [](size_t, size_t) {
                       return std::make_unique<compress::WaveletCompressor>(
                           compress::WaveletLayout::kPerSignal);
                     }});
  methods.push_back({"wave_2d", [](size_t, size_t) {
                       return std::make_unique<compress::WaveletCompressor>(
                           compress::WaveletLayout::kTwoD);
                     }});
  methods.push_back({"dct_concat", [](size_t, size_t) {
                       return std::make_unique<compress::DctCompressor>(
                           compress::DctLayout::kConcat);
                     }});
  methods.push_back({"dct_persig", [](size_t, size_t) {
                       return std::make_unique<compress::DctCompressor>(
                           compress::DctLayout::kPerSignal);
                     }});
  methods.push_back({"fourier", [](size_t, size_t) {
                       return std::make_unique<compress::FourierCompressor>();
                     }});
  methods.push_back({"hist_depth", [](size_t, size_t) {
                       return std::make_unique<compress::HistogramCompressor>(
                           compress::HistogramKind::kEquiDepth);
                     }});
  methods.push_back({"hist_width", [](size_t, size_t) {
                       return std::make_unique<compress::HistogramCompressor>(
                           compress::HistogramKind::kEquiWidth);
                     }});
  methods.push_back({"hist_greedy", [](size_t, size_t) {
                       return std::make_unique<compress::HistogramCompressor>(
                           compress::HistogramKind::kGreedy);
                     }});

  struct Row {
    const char* name;
    datagen::ExperimentSetup setup;
  };
  const Row rows[] = {
      {"Weather", datagen::PaperWeatherSetup()},
      {"Phone", datagen::PaperPhoneSetup()},
      {"Stock", datagen::PaperStockSetup()},
  };
  std::printf("%-10s", "dataset");
  for (const auto& m : methods) std::printf("%13s", m.name.c_str());
  std::printf("\n");
  for (const Row& row : rows) {
    const size_t n = row.setup.dataset.num_signals() * row.setup.chunk_len;
    const auto scores =
        RunMethods(row.setup, methods, n / 10, row.setup.num_chunks);
    std::printf("%-10s", row.name);
    for (const auto& s : scores) std::printf("%13.5g", s.avg_sse);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
