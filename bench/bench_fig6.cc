// Reproduces Figure 6: "SSE error vs base signal size" — for the FIRST
// transmission only, the base-signal size is forced manually to
// 1..30 intervals (GetBase fills the whole candidate list, Search is
// bypassed) and the resulting approximation error is reported normalized
// by the 1-interval error. The size the unmodified SBR algorithm picks on
// its own is printed alongside.
//
// Paper shape to verify: a U-shaped curve — error first drops as base
// intervals are added, then rises once insertions crowd out approximation
// intervals; the optimum sits at a small base (7-9 intervals, ~3% of n)
// and SBR's automatic choice lands at or near it.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "core/get_base.h"
#include "core/get_intervals.h"
#include "core/search.h"

namespace {

using namespace sbr;
using namespace sbr::core;

constexpr size_t kMaxBase = 30;

void RunDataset(const char* name, const datagen::ExperimentSetup& setup) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  const size_t w = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  const size_t total_band = datagen::kFig6TotalBand;

  const auto y = datagen::ConcatRows(setup.dataset.Chunk(0, setup.chunk_len));

  GetBaseOptions gb;
  gb.min_benefit = -1.0;  // fill all requested intervals, per the paper
  const auto candidates =
      GetBase(y, setup.dataset.num_signals(), w, kMaxBase, gb);

  GetIntervalsOptions gi;
  std::vector<double> errors;
  double err1 = 1.0;
  for (size_t k = 1; k <= kMaxBase && k <= candidates.size(); ++k) {
    std::vector<double> x;
    for (size_t i = 0; i < k; ++i) {
      x.insert(x.end(), candidates[i].values.begin(),
               candidates[i].values.end());
    }
    const size_t cost = k * (w + 1);
    double err = std::numeric_limits<double>::infinity();
    if (cost < total_band) {
      auto approx = GetIntervals(x, y, setup.dataset.num_signals(),
                                 total_band - cost, w, gi);
      if (approx.ok()) err = approx->total_error;
    }
    if (k == 1) err1 = err;
    errors.push_back(err / err1);
  }

  // What the full algorithm would choose on its own (empty initial base).
  SearchContext ctx;
  ctx.candidates = &candidates;
  ctx.y = y;
  ctx.num_signals = setup.dataset.num_signals();
  ctx.w = w;
  ctx.total_band = total_band;
  ctx.get_intervals = gi;
  const SearchResult sr = SearchInsertCount(ctx);

  size_t best = 1;
  for (size_t k = 2; k <= errors.size(); ++k) {
    if (errors[k - 1] < errors[best - 1]) best = k;
  }

  std::printf("\n-- %s (n=%zu, W=%zu, ratio %.1f%%) --\n", name, n, w,
              100.0 * total_band / n);
  std::printf("base_intervals  normalized_error\n");
  for (size_t k = 1; k <= errors.size(); ++k) {
    std::printf("%4zu            %10.4f%s%s\n", k, errors[k - 1],
                k == best ? "   <-- manual optimum" : "",
                k == sr.ins ? "   <-- SBR's automatic choice" : "");
  }
  if (sr.ins == 0) {
    std::printf("SBR chose to insert 0 intervals\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf(
      "== Figure 6: first-transmission SSE vs base size "
      "(TotalBand=%zu) ==\n",
      datagen::kFig6TotalBand);
  RunDataset("Weather", datagen::Fig6WeatherSetup());
  RunDataset("Phone", datagen::Fig6PhoneSetup());
  RunDataset("Stock", datagen::Fig6StockSetup());
  return 0;
}
