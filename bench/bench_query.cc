// Query-service throughput bench: concurrent readers against published
// epoch snapshots. A weather stream is encoded through SBR and ingested
// into a storage::QueryService; reader fleets of increasing size then
// drive three query mixes against it and the bench reports aggregate
// throughput, per-mix scaling and cache effectiveness. One record per
// (threads, mix) cell lands in BENCH_query.json for future PRs to diff.
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/encoder.h"
#include "datagen/weather.h"
#include "storage/query_service.h"

namespace {

using namespace sbr;

constexpr size_t kChunkLen = 512;
constexpr size_t kChunks = 24;
constexpr size_t kQueriesPerThread = 8000;
/// Reconstruction ranges are capped so the scan mix measures the snapshot
/// path, not memcpy of the whole history.
constexpr size_t kMaxScanLen = 2048;

struct MixResult {
  double seconds = 0.0;
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Runs `threads` readers of one mix against the service. `mix` is
/// "aggregate" (pure compressed-domain aggregates), "mixed"
/// (aggregate/point/reconstruct round-robin) or "scan" (pure range
/// reconstruction).
MixResult RunMix(const storage::QueryService& service, const std::string& mix,
                 size_t threads, size_t len, size_t num_signals) {
  const storage::QueryServiceCounters before = service.counters();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(1234 + w);
      std::uniform_int_distribution<size_t> pick_t(0, len - 1);
      std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);
      std::uniform_int_distribution<size_t> pick_c(0, len / kChunkLen - 1);
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        size_t a = pick_t(rng), b = pick_t(rng);
        if (a > b) std::swap(a, b);
        const size_t sig = pick_s(rng);
        if (mix == "aggregate") {
          // Chunk-aligned windows — the dashboard pattern the aggregate
          // cache exists for (bounded key space, heavy repetition).
          size_t ca = pick_c(rng), cb = pick_c(rng);
          if (ca > cb) std::swap(ca, cb);
          (void)service.Aggregate(0, sig, ca * kChunkLen,
                                  (cb + 1) * kChunkLen);
        } else if (mix == "scan") {
          const size_t hi = std::min(b + 1, a + kMaxScanLen);
          (void)service.Reconstruct(0, sig, a, hi);
        } else {
          switch (q % 3) {
            case 0: (void)service.Aggregate(0, sig, a, b + 1); break;
            case 1: (void)service.Point(0, sig, a); break;
            default: {
              const size_t hi = std::min(b + 1, a + kMaxScanLen);
              (void)service.Reconstruct(0, sig, a, hi);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto end = std::chrono::steady_clock::now();
  const storage::QueryServiceCounters after = service.counters();

  MixResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.queries = after.queries - before.queries;
  r.hits = after.cache_hits - before.cache_hits;
  r.misses = after.cache_misses - before.cache_misses;
  return r;
}

}  // namespace

int main() {
  using namespace sbr;
  std::printf("== Query service: reader throughput vs thread count ==\n");

  datagen::WeatherOptions wopts;
  wopts.length = kChunks * kChunkLen;
  wopts.seed = 7;
  const datagen::Dataset feed = datagen::GenerateWeather(wopts);
  const size_t num_signals = feed.num_signals();
  const size_t n = num_signals * kChunkLen;

  core::EncoderOptions eopts;
  eopts.total_band = n / 10;
  eopts.m_base = 1024;
  core::SbrEncoder encoder(eopts);

  storage::QueryServiceOptions sopts;
  sopts.m_base = eopts.m_base;
  storage::QueryService service(sopts);

  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = feed.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    if (!t.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    if (auto st = service.Ingest(0, *t); !st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const size_t len = kChunks * kChunkLen;
  std::printf("history: %zu samples x %zu signals, epoch %llu\n\n", len,
              num_signals,
              static_cast<unsigned long long>(service.epoch(0)));

  FILE* json = std::fopen("BENCH_query.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;

  std::printf("%-10s %-8s %-10s %-12s %-12s %-10s\n", "mix", "threads",
              "queries", "seconds", "qps", "hit_rate");
  for (const char* mix : {"aggregate", "mixed", "scan"}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      const MixResult r = RunMix(service, mix, threads, len, num_signals);
      const double qps =
          r.seconds > 0 ? static_cast<double>(r.queries) / r.seconds : 0.0;
      const uint64_t lookups = r.hits + r.misses;
      const double hit_rate =
          lookups > 0 ? static_cast<double>(r.hits) / lookups : 0.0;
      std::printf("%-10s %-8zu %-10llu %-12.4f %-12.0f %-10.3f\n", mix,
                  threads, static_cast<unsigned long long>(r.queries),
                  r.seconds, qps, hit_rate);
      std::fflush(stdout);
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"mix\": \"%s\", \"threads\": %zu, "
                     "\"queries\": %llu, \"seconds\": %.6f, "
                     "\"qps\": %.1f, \"cache_hit_rate\": %.4f}",
                     first_record ? "" : ",\n", mix, threads,
                     static_cast<unsigned long long>(r.queries), r.seconds,
                     qps, hit_rate);
        first_record = false;
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_query.json\n");
  }
  return 0;
}
