// Query-service throughput bench: concurrent readers against published
// epoch snapshots. A weather stream is encoded through SBR and ingested
// into a storage::QueryService; reader fleets of increasing size then
// drive four query mixes against it and the bench reports aggregate
// throughput, per-query latency percentiles and cache effectiveness.
// Every timed cell runs a warmup pass first so one-time costs (page
// faults, snapshot pin, cache fill ramp) stay out of the numbers.
//
// The "wide" mix spans >= 64 chunk-aligned chunks per query — the shape
// the hierarchical moment index exists for. A separate cache-disabled
// head-to-head (index on vs the legacy interval scan, identical stream,
// identical queries) records the raw engine speedup as the
// "wide_speedup" summary record in BENCH_query.json; tools/
// bench_compare.py diffs the file against bench/baselines/.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/encoder.h"
#include "datagen/weather.h"
#include "storage/query_service.h"

namespace {

using namespace sbr;

constexpr size_t kChunkLen = 512;
constexpr size_t kChunks = 96;  // the wide mix needs >= 64-chunk spans
constexpr size_t kQueriesPerThread = 8000;
constexpr size_t kWarmupPerThread = 500;
/// Minimum chunk span of a "wide" query.
constexpr size_t kWideSpanChunks = 64;
/// Reconstruction ranges are capped so the scan mix measures the snapshot
/// path, not memcpy of the whole history.
constexpr size_t kMaxScanLen = 2048;
/// Queries per side of the cache-disabled index-vs-scan head-to-head.
constexpr size_t kCompareQueries = 1500;

struct MixResult {
  double seconds = 0.0;
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One query of mix `mix` against `service`, range geometry drawn from
/// `rng`. Shared by the warmup and the timed pass so they exercise the
/// identical code path.
void RunOne(const storage::QueryService& service, const std::string& mix,
            size_t q, size_t len, size_t num_signals, std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> pick_t(0, len - 1);
  std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);
  std::uniform_int_distribution<size_t> pick_c(0, len / kChunkLen - 1);
  size_t a = pick_t(*rng), b = pick_t(*rng);
  if (a > b) std::swap(a, b);
  const size_t sig = pick_s(*rng);
  if (mix == "aggregate") {
    // Chunk-aligned windows — the dashboard pattern the aggregate cache
    // exists for (bounded key space, heavy repetition).
    size_t ca = pick_c(*rng), cb = pick_c(*rng);
    if (ca > cb) std::swap(ca, cb);
    (void)service.Aggregate(0, sig, ca * kChunkLen, (cb + 1) * kChunkLen);
  } else if (mix == "wide") {
    // Chunk-aligned spans of >= kWideSpanChunks chunks: interior-heavy
    // aggregates where the moment index does almost all the work.
    std::uniform_int_distribution<size_t> pick_span(kWideSpanChunks,
                                                    kChunks);
    const size_t span = pick_span(*rng);
    std::uniform_int_distribution<size_t> pick_start(0, kChunks - span);
    const size_t start = pick_start(*rng);
    (void)service.Aggregate(0, sig, start * kChunkLen,
                            (start + span) * kChunkLen);
  } else if (mix == "scan") {
    const size_t hi = std::min(b + 1, a + kMaxScanLen);
    (void)service.Reconstruct(0, sig, a, hi);
  } else {
    switch (q % 3) {
      case 0: (void)service.Aggregate(0, sig, a, b + 1); break;
      case 1: (void)service.Point(0, sig, a); break;
      default: {
        const size_t hi = std::min(b + 1, a + kMaxScanLen);
        (void)service.Reconstruct(0, sig, a, hi);
        break;
      }
    }
  }
}

/// Runs `threads` readers of one mix against the service: a warmup pass
/// per worker, then `kQueriesPerThread` timed queries each with per-query
/// latency capture. `mix` is "aggregate" (cache-friendly chunk-aligned
/// aggregates), "wide" (>= 64-chunk index-heavy aggregates), "mixed"
/// (aggregate/point/reconstruct round-robin) or "scan" (pure range
/// reconstruction).
MixResult RunMix(const storage::QueryService& service, const std::string& mix,
                 size_t threads, size_t len, size_t num_signals) {
  std::vector<std::vector<double>> latencies(threads);
  // Warmup: untimed, uncounted; drains cold-start effects and pre-fills
  // the epoch's cache shards the way a long-lived service would be.
  {
    std::vector<std::thread> workers;
    for (size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        std::mt19937_64 rng(77 + w);
        for (size_t q = 0; q < kWarmupPerThread; ++q) {
          RunOne(service, mix, q, len, num_signals, &rng);
        }
      });
    }
    for (auto& t : workers) t.join();
  }

  const storage::QueryServiceCounters before = service.counters();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(1234 + w);
      std::vector<double>& lat = latencies[w];
      lat.reserve(kQueriesPerThread);
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        RunOne(service, mix, q, len, num_signals, &rng);
        const auto t1 = std::chrono::steady_clock::now();
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto end = std::chrono::steady_clock::now();
  const storage::QueryServiceCounters after = service.counters();

  MixResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.queries = after.queries - before.queries;
  r.hits = after.cache_hits - before.cache_hits;
  r.misses = after.cache_misses - before.cache_misses;

  std::vector<double> all;
  all.reserve(threads * kQueriesPerThread);
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(),
                                               lat.end());
  if (!all.empty()) {
    const auto pct = [&](double p) {
      const size_t idx = std::min(
          all.size() - 1, static_cast<size_t>(p * (all.size() - 1)));
      std::nth_element(all.begin(), all.begin() + idx, all.end());
      return all[idx];
    };
    r.p50_us = pct(0.50);
    r.p99_us = pct(0.99);
  }
  return r;
}

void WriteRecord(FILE* json, bool* first, const char* mix, size_t threads,
                 const MixResult& r, double qps, double hit_rate) {
  if (json == nullptr) return;
  std::fprintf(json,
               "%s  {\"mix\": \"%s\", \"threads\": %zu, "
               "\"queries\": %llu, \"seconds\": %.6f, \"qps\": %.1f, "
               "\"p50_us\": %.3f, \"p99_us\": %.3f, "
               "\"cache_hit_rate\": %.4f}",
               *first ? "" : ",\n", mix, threads,
               static_cast<unsigned long long>(r.queries), r.seconds, qps,
               r.p50_us, r.p99_us, hit_rate);
  *first = false;
}

}  // namespace

int main() {
  using namespace sbr;
  std::printf("== Query service: reader throughput vs thread count ==\n");

  datagen::WeatherOptions wopts;
  wopts.length = kChunks * kChunkLen;
  wopts.seed = 7;
  const datagen::Dataset feed = datagen::GenerateWeather(wopts);
  const size_t num_signals = feed.num_signals();
  const size_t n = num_signals * kChunkLen;

  core::EncoderOptions eopts;
  eopts.total_band = n / 10;
  eopts.m_base = 1024;
  core::SbrEncoder encoder(eopts);

  // One encoded stream feeds three services: the cached default service
  // (throughput table) and two cache-disabled ones for the raw
  // index-vs-scan engine comparison.
  storage::QueryServiceOptions sopts;
  sopts.m_base = eopts.m_base;
  storage::QueryService service(sopts);

  storage::QueryServiceOptions nocache_indexed = sopts;
  nocache_indexed.cache_shards = 0;
  storage::QueryService service_indexed(nocache_indexed);

  storage::QueryServiceOptions nocache_scan = nocache_indexed;
  nocache_scan.index.enabled = false;
  storage::QueryService service_scan(nocache_scan);

  std::vector<double> chunk(n);
  for (size_t c = 0; c < kChunks; ++c) {
    for (size_t s = 0; s < num_signals; ++s) {
      for (size_t k = 0; k < kChunkLen; ++k) {
        chunk[s * kChunkLen + k] = feed.values(s, c * kChunkLen + k);
      }
    }
    auto t = encoder.EncodeChunk(chunk, num_signals);
    if (!t.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    for (storage::QueryService* svc :
         {&service, &service_indexed, &service_scan}) {
      if (auto st = svc->Ingest(0, *t); !st.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  const size_t len = kChunks * kChunkLen;
  std::printf("history: %zu samples x %zu signals, epoch %llu\n\n", len,
              num_signals,
              static_cast<unsigned long long>(service.epoch(0)));

  FILE* json = std::fopen("BENCH_query.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;

  std::printf("%-10s %-8s %-10s %-10s %-10s %-10s %-10s %-10s\n", "mix",
              "threads", "queries", "seconds", "qps", "p50_us", "p99_us",
              "hit_rate");
  for (const char* mix : {"aggregate", "wide", "mixed", "scan"}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      const MixResult r = RunMix(service, mix, threads, len, num_signals);
      const double qps =
          r.seconds > 0 ? static_cast<double>(r.queries) / r.seconds : 0.0;
      const uint64_t lookups = r.hits + r.misses;
      const double hit_rate =
          lookups > 0 ? static_cast<double>(r.hits) / lookups : 0.0;
      std::printf("%-10s %-8zu %-10llu %-10.4f %-10.0f %-10.3f %-10.3f "
                  "%-10.3f\n",
                  mix, threads, static_cast<unsigned long long>(r.queries),
                  r.seconds, qps, r.p50_us, r.p99_us, hit_rate);
      std::fflush(stdout);
      WriteRecord(json, &first_record, mix, threads, r, qps, hit_rate);
    }
  }

  // Raw engine head-to-head: identical wide queries, no cache, moment
  // index on vs the legacy interval scan. This is the number the index
  // exists for; the acceptance bar is >= 5x.
  std::printf("\n== Wide-range engine comparison (no cache, 1 thread) ==\n");
  const auto run_compare = [&](const storage::QueryService& svc) {
    std::mt19937_64 rng(4096);
    std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);
    std::uniform_int_distribution<size_t> pick_span(kWideSpanChunks,
                                                    kChunks);
    // Untimed warmup sweep.
    for (size_t q = 0; q < 50; ++q) {
      (void)svc.Aggregate(0, pick_s(rng), 0, len);
    }
    const auto start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < kCompareQueries; ++q) {
      const size_t span = pick_span(rng);
      std::uniform_int_distribution<size_t> pick_start(0, kChunks - span);
      const size_t start_c = pick_start(rng);
      (void)svc.Aggregate(0, pick_s(rng), start_c * kChunkLen,
                          (start_c + span) * kChunkLen);
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  };
  const double sec_indexed = run_compare(service_indexed);
  const double sec_scan = run_compare(service_scan);
  const double qps_indexed =
      sec_indexed > 0 ? kCompareQueries / sec_indexed : 0.0;
  const double qps_scan = sec_scan > 0 ? kCompareQueries / sec_scan : 0.0;
  const double speedup = qps_scan > 0 ? qps_indexed / qps_scan : 0.0;
  std::printf("index on : %8.0f qps (%.4f s)\n", qps_indexed, sec_indexed);
  std::printf("index off: %8.0f qps (%.4f s)\n", qps_scan, sec_scan);
  std::printf("speedup  : %.1fx\n", speedup);
  if (json != nullptr) {
    std::fprintf(json,
                 "%s  {\"mix\": \"wide_nocache_indexed\", \"threads\": 1, "
                 "\"queries\": %zu, \"seconds\": %.6f, \"qps\": %.1f}",
                 first_record ? "" : ",\n", kCompareQueries, sec_indexed,
                 qps_indexed);
    first_record = false;
    std::fprintf(json,
                 ",\n  {\"mix\": \"wide_nocache_scan\", \"threads\": 1, "
                 "\"queries\": %zu, \"seconds\": %.6f, \"qps\": %.1f}",
                 kCompareQueries, sec_scan, qps_scan);
    std::fprintf(json,
                 ",\n  {\"mix\": \"wide_speedup\", \"threads\": 1, "
                 "\"speedup\": %.2f}",
                 speedup);
  }

  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_query.json\n");
  }
  return 0;
}
