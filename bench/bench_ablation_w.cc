// Ablation A (DESIGN.md): sensitivity to the base-interval width W. The
// paper fixes W = sqrt(n) to balance GetBase cost, shift-scan cost and
// insertion cost; this bench sweeps multipliers around sqrt(n) on the
// weather workload at a 10% ratio and reports error and time, showing the
// sqrt(n) choice is a sane default rather than a magic constant.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

int main() {
  using namespace sbr;
  using namespace sbr::bench;
  std::printf("== Ablation: base-interval width W (weather, 10%% ratio) ==\n");

  datagen::ExperimentSetup setup = datagen::PaperWeatherSetup();
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  const size_t total_band = n / 10;
  const size_t w0 = static_cast<size_t>(std::sqrt(static_cast<double>(n)));

  std::printf("%-12s %-8s %-14s %-10s\n", "W", "W/sqrt(n)", "avg_sse",
              "sec/chunk");
  for (double mult : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    const size_t w = std::max<size_t>(8, static_cast<size_t>(w0 * mult));
    Method sbr{"SBR", [&](size_t tb, size_t mb) {
                 core::EncoderOptions opts;
                 opts.total_band = tb;
                 opts.m_base = mb;
                 opts.w = w;
                 return std::make_unique<compress::SbrCompressor>(opts);
               }};
    const auto scores = RunMethods(setup, {sbr}, total_band,
                                   setup.num_chunks);
    std::printf("%-12zu %-8.2f %-14.6g %-10.4f\n", w, mult,
                scores[0].avg_sse,
                scores[0].seconds / static_cast<double>(setup.num_chunks));
    std::fflush(stdout);
  }
  return 0;
}
