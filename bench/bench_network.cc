// End-to-end sensor-network bench: the paper's motivating claim in
// numbers. A small routing tree of weather stations streams through SBR
// to the base station; the bench reports per-node compression factors,
// radio energy vs the raw-feed counterfactual and the reconstruction
// error, at several bandwidth budgets.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "datagen/weather.h"
#include "net/chaos_sim.h"
#include "net/network.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"

int main() {
  using namespace sbr;
  obs::SetEnabled(true);
  std::printf("== Network simulation: energy and accuracy vs budget ==\n");

  constexpr size_t kNodes = 5;
  constexpr size_t kChunkLen = 1024;
  std::vector<datagen::Dataset> feeds;
  std::vector<net::NodePlacement> placements;
  for (uint32_t id = 0; id < kNodes; ++id) {
    datagen::WeatherOptions opts;
    opts.length = 4 * kChunkLen;
    opts.seed = 1000 + id;
    feeds.push_back(datagen::GenerateWeather(opts));
    placements.push_back({id, 1 + id % 3});  // 1-3 hops
  }
  const size_t n = feeds[0].num_signals() * kChunkLen;

  std::printf("%-8s %-12s %-14s %-16s %-14s\n", "ratio", "values_sent",
              "compression_x", "energy_saving_x", "total_sse");
  for (size_t pct : {5u, 10u, 20u, 30u}) {
    core::EncoderOptions opts;
    opts.total_band = n * pct / 100;
    opts.m_base = 1024;
    net::NetworkSim sim(placements, opts, kChunkLen);
    auto report = sim.Run(feeds);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu%%%-5s %-12zu %-14.2f %-16.2f %-14.6g\n", pct, "",
                report->total_values_sent, report->CompressionFactor(),
                report->EnergySavingFactor(), report->total_sse);
    std::fflush(stdout);
    report->PublishMetrics(&obs::MetricsRegistry::Global());
  }
  // Routing-tree shapes: the same fleet re-routed through relays. Deep
  // trees concentrate forwarding cost on the relays nearest the base —
  // the hot-spot effect a flat star cannot express. relay_nj is the
  // combined radio spend of the relay nodes (own traffic plus forwarding),
  // max_node_nj the hottest single radio.
  std::printf("\n== Routing topology: relay load by tree shape ==\n");
  std::printf("%-8s %-7s %-11s %-11s %-13s %-13s %-13s\n", "shape", "depth",
              "rounds/s", "forwarded", "relay_nj", "max_node_nj",
              "total_nj");
  // Machine-readable perf trajectory for future PRs: one record per
  // topology shape in BENCH_network.json.
  FILE* json = std::fopen("BENCH_network.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;
  for (net::TopologyShape shape :
       {net::TopologyShape::kStar, net::TopologyShape::kChain,
        net::TopologyShape::kBinary, net::TopologyShape::kRandom}) {
    net::TopologyOptions topts;
    topts.shape = shape;
    topts.num_nodes = kNodes;
    topts.seed = 42;
    auto topo = net::Topology::Build(topts);
    core::EncoderOptions opts;
    opts.total_band = n / 10;
    opts.m_base = 1024;
    net::NetworkSim sim(topo, placements, opts, kChunkLen);
    const auto start = std::chrono::steady_clock::now();
    auto report = sim.Run(feeds);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!report.ok()) {
      std::fprintf(stderr, "topology run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    size_t forwarded = 0;
    double relay_nj = 0.0;
    double max_node_nj = 0.0;
    double total_nj = 0.0;
    for (size_t i = 0; i < report->nodes.size(); ++i) {
      const auto& nr = report->nodes[i];
      forwarded += nr.forwarded_copies;
      const double nj = nr.energy.total_nj();
      if (topo.is_relay(i)) relay_nj += nj;
      if (nj > max_node_nj) max_node_nj = nj;
      total_nj += nj;
    }
    // One "round" = one chunk interval across the fleet (every node feeds
    // the same number of whole chunks).
    const size_t rounds = feeds[0].length() / kChunkLen;
    const double seconds = elapsed.count();
    const double rounds_per_sec = seconds > 0.0 ? rounds / seconds : 0.0;
    const size_t frames_accepted =
        sim.base_station().total_stats().frames_accepted;
    std::printf("%-8s %-7zu %-11.1f %-11zu %-13.3g %-13.3g %-13.3g\n",
                net::ToString(shape), topo.max_depth(), rounds_per_sec,
                forwarded, relay_nj, max_node_nj, total_nj);
    std::fflush(stdout);
    if (json != nullptr) {
      std::fprintf(json,
                   "%s  {\"shape\": \"%s\", \"depth\": %zu, "
                   "\"rounds\": %zu, \"seconds\": %.6f, "
                   "\"rounds_per_sec\": %.3f, \"frames_accepted\": %zu, "
                   "\"forwarded_copies\": %zu, \"values_sent\": %zu, "
                   "\"total_energy_nj\": %.3f, \"relay_energy_nj\": %.3f, "
                   "\"max_node_energy_nj\": %.3f}",
                   first_record ? "" : ",\n", net::ToString(shape),
                   topo.max_depth(), rounds, seconds, rounds_per_sec,
                   frames_accepted, forwarded, report->total_values_sent,
                   total_nj, relay_nj, max_node_nj);
      first_record = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("perf records written to BENCH_network.json\n");
  }
  // Lifecycle chaos: how much timeline survives when the *endpoints*
  // fail (crash/restart, power-loss log tears, stalls), and what the
  // crash-consistent recovery machinery costs in wall clock. Loss here is
  // explicitly-declared DataLoss, never corruption — the sim's invariant
  // checks enforce that (DESIGN.md section 5g).
  std::printf("\n== Lifecycle chaos: survival under crash/restart ==\n");
  const std::string chaos_dir =
      (std::filesystem::temp_directory_path() / "sbr_bench_chaos").string();
  std::filesystem::create_directories(chaos_dir);
  std::printf("%-8s %-6s %-11s %-6s %-9s %-7s %-7s %-10s\n", "seed", "fed",
              "delivered", "lost", "crashes", "tears", "clean", "seconds");
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    net::ChaosOptions copts;
    copts.num_nodes = 4;
    copts.rounds = 24;
    copts.chunk_len = 64;
    copts.encoder.total_band = 100;
    copts.encoder.m_base = 128;
    copts.link.drop_probability = 0.08;
    copts.link.duplicate_probability = 0.04;
    copts.link.bit_flip_probability = 0.04;
    copts.faults.seed = seed;
    copts.log_dir = chaos_dir;
    copts.data_seed = seed;
    const auto start = std::chrono::steady_clock::now();
    net::ChaosSim sim(copts);
    auto chaos = sim.Run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (!chaos.ok()) {
      std::fprintf(stderr, "chaos run failed: %s\n",
                   chaos.status().ToString().c_str());
      return 1;
    }
    size_t crashes = 0;
    for (const auto& nr : chaos->nodes) {
      crashes += nr.crashes + nr.watchdog_restarts;
    }
    std::printf("%-8llu %-6zu %-11zu %-6zu %-9zu %-7zu %-7s %-10.3f\n",
                static_cast<unsigned long long>(seed), chaos->total_fed,
                chaos->total_delivered, chaos->total_lost, crashes,
                chaos->log_tears, chaos->clean() ? "yes" : "NO",
                elapsed.count());
  }

  if (obs::WriteStageReport("obs_network")) {
    std::printf("\nper-node breakdown written to obs_network.{json,csv}\n");
  }
  return 0;
}
