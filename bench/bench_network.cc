// End-to-end sensor-network bench: the paper's motivating claim in
// numbers. A small routing tree of weather stations streams through SBR
// to the base station; the bench reports per-node compression factors,
// radio energy vs the raw-feed counterfactual and the reconstruction
// error, at several bandwidth budgets.
#include <cstdio>

#include "bench_util.h"
#include "datagen/weather.h"
#include "net/network.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"

int main() {
  using namespace sbr;
  obs::SetEnabled(true);
  std::printf("== Network simulation: energy and accuracy vs budget ==\n");

  constexpr size_t kNodes = 5;
  constexpr size_t kChunkLen = 1024;
  std::vector<datagen::Dataset> feeds;
  std::vector<net::NodePlacement> placements;
  for (uint32_t id = 0; id < kNodes; ++id) {
    datagen::WeatherOptions opts;
    opts.length = 4 * kChunkLen;
    opts.seed = 1000 + id;
    feeds.push_back(datagen::GenerateWeather(opts));
    placements.push_back({id, 1 + id % 3});  // 1-3 hops
  }
  const size_t n = feeds[0].num_signals() * kChunkLen;

  std::printf("%-8s %-12s %-14s %-16s %-14s\n", "ratio", "values_sent",
              "compression_x", "energy_saving_x", "total_sse");
  for (size_t pct : {5u, 10u, 20u, 30u}) {
    core::EncoderOptions opts;
    opts.total_band = n * pct / 100;
    opts.m_base = 1024;
    net::NetworkSim sim(placements, opts, kChunkLen);
    auto report = sim.Run(feeds);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu%%%-5s %-12zu %-14.2f %-16.2f %-14.6g\n", pct, "",
                report->total_values_sent, report->CompressionFactor(),
                report->EnergySavingFactor(), report->total_sse);
    std::fflush(stdout);
    report->PublishMetrics(&obs::MetricsRegistry::Global());
  }
  if (obs::WriteStageReport("obs_network")) {
    std::printf("\nper-node breakdown written to obs_network.{json,csv}\n");
  }
  return 0;
}
