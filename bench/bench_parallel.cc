// Parallel-encoding scaling bench: the Table-2 weather workload (N=6,
// M=4096, M_base=3456, 10% compression ratio) encoded end-to-end at 1, 2,
// 4 and 8 threads. Reports wall-clock per run, throughput and speedup over
// the serial baseline, and cross-checks that every thread count produced a
// byte-identical transmission stream — the determinism contract of
// EncoderOptions::threads.
//
// Expected shape: near-linear scaling through the shift scans and the
// GetBase matrix build (the bulk of encode time), >= 2.5x at 4 threads on
// a 4-core host.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/encoder.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double seconds = 0.0;
  std::vector<uint8_t> bytes;  // serialized transmission stream
};

RunResult EncodeAll(const sbr::datagen::ExperimentSetup& setup,
                    size_t ratio_pct, size_t threads) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  sbr::core::EncoderOptions opts;
  opts.total_band = n * ratio_pct / 100;
  opts.m_base = setup.m_base;
  opts.threads = threads;
  sbr::core::SbrEncoder enc(opts);

  RunResult result;
  sbr::BinaryWriter w;
  const auto t0 = Clock::now();
  for (size_t c = 0; c < setup.num_chunks; ++c) {
    const auto y =
        sbr::datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto t = enc.EncodeChunk(y, setup.dataset.num_signals());
    if (!t.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   t.status().ToString().c_str());
      std::exit(1);
    }
    t->Serialize(&w);
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.bytes = w.TakeBuffer();
  return result;
}

}  // namespace

int main() {
  sbr::obs::SetEnabled(true);
  const auto setup = sbr::datagen::PaperWeatherSetup();
  const size_t ratio_pct = 10;
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  const double total_values =
      static_cast<double>(n) * static_cast<double>(setup.num_chunks);

  std::printf("== Parallel encode scaling: weather workload of Table 2 ==\n");
  std::printf("N=%zu signals, M=%zu, M_base=%zu, %zu chunks, ratio %zu%%, "
              "%zu hardware threads\n\n",
              setup.dataset.num_signals(), setup.chunk_len, setup.m_base,
              setup.num_chunks, ratio_pct, sbr::util::HardwareThreads());
  std::printf("| threads | seconds | Mvalues/s | speedup |\n");
  std::printf("|---------|---------|-----------|---------|\n");

  // Warm-up: populates the shared pool and touches the dataset pages so
  // the serial baseline is not penalized for first-run effects.
  (void)EncodeAll(setup, ratio_pct, 2);

  RunResult serial;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    const RunResult r = EncodeAll(setup, ratio_pct, threads);
    const double speedup = threads == 1 ? 1.0 : serial.seconds / r.seconds;
    std::printf("| %7zu | %7.3f | %9.2f | %6.2fx |\n", threads, r.seconds,
                total_values / r.seconds / 1e6, speedup);
    if (threads == 1) {
      serial = r;
    } else if (r.bytes != serial.bytes) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread output differs from serial output\n",
                   threads);
      return 1;
    }
  }
  std::printf("\nall thread counts produced byte-identical streams\n");
  if (sbr::obs::WriteStageReport("obs_parallel")) {
    std::printf("per-stage breakdown written to obs_parallel.{json,csv}\n");
  }
  return 0;
}
