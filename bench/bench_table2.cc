// Reproduces Table 2: "Average SSE Error Varying the Compression Ratio for
// Weather and Stock Datasets". SBR vs Wavelets vs DCT vs equi-depth
// Histograms at ratios 5%..30%, 10 transmissions each.
//
// Paper shape to verify: SBR lowest everywhere, Wavelets second, DCT and
// Histograms far behind; SBR's error falls faster with extra bandwidth.
#include <cstdio>

#include "bench_util.h"
#include "obs/export.h"
#include "obs/obs.h"

int main() {
  using namespace sbr::bench;
  sbr::obs::SetEnabled(true);
  std::printf("== Table 2: Average SSE error vs compression ratio ==\n");
  const auto methods = PaperMethodSet();
  auto value = [](const MethodScore& s) { return s.avg_sse; };

  const auto weather = sbr::datagen::PaperWeatherSetup();
  PrintRatioTable("-- Weather data (N=6, M=4096, M_base=3456) --", weather,
                  methods, kPaperRatios, value, weather.num_chunks);

  const auto stock = sbr::datagen::PaperStockSetup();
  PrintRatioTable("-- Stock data (N=10, M=2048, M_base=2048) --", stock,
                  methods, kPaperRatios, value, stock.num_chunks);

  if (sbr::obs::WriteStageReport("obs_table2")) {
    std::printf("\nper-stage breakdown written to obs_table2.{json,csv}\n");
  }
  return 0;
}
