// Shared harness for the table/figure reproduction benches: runs a set of
// compressors over an ExperimentSetup's transmission sequence and scores
// them under the paper's metrics, with tabular output helpers.
#ifndef SBR_BENCH_BENCH_UTIL_H_
#define SBR_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "datagen/paper_datasets.h"

namespace sbr::bench {

/// Scores accumulated over a transmission sequence.
struct MethodScore {
  std::string name;
  /// Average per-transmission SSE divided by n ("Average SSE Error";
  /// see EXPERIMENTS.md for the normalization note).
  double avg_sse = 0.0;
  /// Sum over transmissions of the sum-squared-relative error
  /// ("Total Sum Squared Relative Error").
  double total_rel = 0.0;
  /// Raw summed SSE across transmissions (un-normalized).
  double sum_sse = 0.0;
  /// Wall-clock seconds spent inside the compressor.
  double seconds = 0.0;
};

/// A compressor factory: benches construct a fresh (stateful) compressor
/// per configuration so SBR's base signal starts cold each time.
using CompressorFactory =
    std::function<std::unique_ptr<compress::ChunkCompressor>(
        size_t total_band, size_t m_base)>;

/// Named factory for table rows.
struct Method {
  std::string name;
  CompressorFactory make;
};

/// The standard method set compared in Tables 2-4: SBR, Wavelets (concat
/// layout), DCT (concat) and equi-depth histograms.
std::vector<Method> PaperMethodSet();

/// Runs every method over `num_chunks` transmissions of the setup at the
/// given bandwidth and returns per-method scores (order preserved).
std::vector<MethodScore> RunMethods(const datagen::ExperimentSetup& setup,
                                    const std::vector<Method>& methods,
                                    size_t total_band, size_t num_chunks);

/// Prints a markdown-style table: one row per ratio, one column per
/// method, `value` selects the reported score.
void PrintRatioTable(
    const std::string& title, const datagen::ExperimentSetup& setup,
    const std::vector<Method>& methods, const std::vector<size_t>& ratios_pct,
    const std::function<double(const MethodScore&)>& value,
    size_t num_chunks);

/// Fixed compression ratios used throughout Section 5.1 (percent of n).
inline const std::vector<size_t> kPaperRatios = {5, 10, 15, 20, 25, 30};

}  // namespace sbr::bench

#endif  // SBR_BENCH_BENCH_UTIL_H_
