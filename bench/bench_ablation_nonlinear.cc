// Ablation E: the quadratic (non-linear) encoding extension the paper's
// Section 6 poses as future work: "to what extent non-linear encodings
// over the base signal values would benefit the approximations obtained
// without sacrificing complexity". Quadratic projections fit curved
// intervals better but cost 5 transmitted values instead of 4, so the same
// bandwidth affords 20% fewer intervals; this bench measures the trade on
// the paper's three datasets across ratios.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

int main() {
  using namespace sbr;
  using namespace sbr::bench;
  std::printf("== Ablation: linear vs quadratic interval encoding ==\n");

  std::vector<Method> methods;
  methods.push_back({"linear(4v)", [](size_t tb, size_t mb) {
                       core::EncoderOptions opts;
                       opts.total_band = tb;
                       opts.m_base = mb;
                       return std::make_unique<compress::SbrCompressor>(opts);
                     }});
  methods.push_back({"quadratic(5v)", [](size_t tb, size_t mb) {
                       core::EncoderOptions opts;
                       opts.total_band = tb;
                       opts.m_base = mb;
                       opts.quadratic = true;
                       return std::make_unique<compress::SbrCompressor>(
                           opts, "sbr_quadratic");
                     }});

  struct Row {
    const char* name;
    datagen::ExperimentSetup setup;
  };
  const Row rows[] = {
      {"Weather", datagen::PaperWeatherSetup()},
      {"Phone", datagen::PaperPhoneSetup()},
      {"Stock", datagen::PaperStockSetup()},
  };
  for (const Row& row : rows) {
    PrintRatioTable(std::string("-- ") + row.name + " (avg SSE) --",
                    row.setup, methods, {5, 10, 20},
                    [](const MethodScore& s) { return s.avg_sse; },
                    /*num_chunks=*/3);
  }
  return 0;
}
