// Reproduces Table 3: errors vs compression ratio on the Phone Call
// dataset — both the Average SSE error and the Total Sum Squared Relative
// error. For the relative-error columns SBR runs with the modified
// relative-error Regression kernel (paper Section 4.5 / [9]), while the
// competitors keep their SSE-optimal construction and are merely *scored*
// under the relative metric, exactly as the paper does for Haar wavelets.
//
// Paper shape to verify: SBR wins both metrics; the relative-error gap is
// much larger (up to 49x vs Wavelets, 258x vs Histograms) because the
// phone data has the largest magnitudes.
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

int main() {
  using namespace sbr::bench;
  using namespace sbr;
  std::printf(
      "== Table 3: Phone-call data (N=15, M=2560, M_base=2048) ==\n");

  const auto phone = datagen::PaperPhoneSetup();
  auto methods = PaperMethodSet();
  PrintRatioTable("-- Average SSE error --", phone, methods, kPaperRatios,
                  [](const MethodScore& s) { return s.avg_sse; },
                  phone.num_chunks);

  // Relative-error run: swap SBR for its relative-metric configuration.
  methods[0] = {"SBR", [](size_t total_band, size_t m_base) {
                  core::EncoderOptions opts;
                  opts.total_band = total_band;
                  opts.m_base = m_base;
                  opts.metric = core::ErrorMetric::kSseRelative;
                  return std::make_unique<compress::SbrCompressor>(opts);
                }};
  PrintRatioTable("-- Total sum squared relative error --", phone, methods,
                  kPaperRatios,
                  [](const MethodScore& s) { return s.total_rel; },
                  phone.num_chunks);
  return 0;
}
