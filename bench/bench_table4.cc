// Reproduces Table 4: errors vs compression ratio on the Mixed dataset
// (3 phone states + 3 weather quantities + 3 stocks). The experiment
// stresses robustness when cross-signal correlations are weak: SBR can
// still find piecewise correlations between intervals of different signals
// and different time periods, and falls back to plain regression where
// they are absent.
//
// Paper shape to verify: SBR's advantage *grows* on the mixed data — up to
// 27x (avg SSE) and ~1000x (relative) over the best competitor.
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

int main() {
  using namespace sbr::bench;
  using namespace sbr;
  std::printf("== Table 4: Mixed dataset (N=9, M=2048, M_base=2048) ==\n");

  const auto mixed = datagen::PaperMixedSetup();
  auto methods = PaperMethodSet();
  PrintRatioTable("-- Average SSE error --", mixed, methods, kPaperRatios,
                  [](const MethodScore& s) { return s.avg_sse; },
                  mixed.num_chunks);

  methods[0] = {"SBR", [](size_t total_band, size_t m_base) {
                  core::EncoderOptions opts;
                  opts.total_band = total_band;
                  opts.m_base = m_base;
                  opts.metric = core::ErrorMetric::kSseRelative;
                  return std::make_unique<compress::SbrCompressor>(opts);
                }};
  PrintRatioTable("-- Total sum squared relative error --", mixed, methods,
                  kPaperRatios,
                  [](const MethodScore& s) { return s.total_rel; },
                  mixed.num_chunks);
  return 0;
}
