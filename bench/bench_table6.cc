// Reproduces Table 6: "Number of Inserted Base Intervals per Transmission"
// over the 10 transmissions of each dataset, using the equal-footprint
// Figure 6 setups (n = 30720 per transmission, TotalBand = 5012).
//
// Paper shape to verify: most insertions happen in the first one or two
// transmissions; many later transmissions insert nothing; Weather inserts
// the most intervals overall (most distinct features), Stock the fewest.
#include <cstdio>

#include "bench_util.h"
#include "compress/sbr_compressor.h"

namespace {

using namespace sbr;

void RunDataset(const char* name, const datagen::ExperimentSetup& setup) {
  core::EncoderOptions opts;
  opts.total_band = datagen::kFig6TotalBand;
  opts.m_base = setup.m_base;
  compress::SbrCompressor sbr(opts);
  std::printf("%-10s", name);
  size_t total = 0;
  for (size_t c = 0; c < setup.num_chunks; ++c) {
    const auto y =
        datagen::ConcatRows(setup.dataset.Chunk(c, setup.chunk_len));
    auto rec = sbr.CompressAndReconstruct(y, setup.dataset.num_signals(),
                                          opts.total_band);
    if (!rec.ok()) {
      std::printf("  err");
      continue;
    }
    const size_t ins = sbr.last_stats().inserted_base_intervals;
    total += ins;
    std::printf("%5zu", ins);
  }
  std::printf("  | total %zu\n", total);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf(
      "== Table 6: inserted base intervals per transmission "
      "(TotalBand=%zu) ==\n",
      datagen::kFig6TotalBand);
  std::printf("%-10s", "dataset");
  for (int t = 1; t <= 10; ++t) std::printf("%5d", t);
  std::printf("\n");
  RunDataset("Weather", datagen::Fig6WeatherSetup());
  RunDataset("Phone", datagen::Fig6PhoneSetup());
  RunDataset("Stock", datagen::Fig6StockSetup());
  return 0;
}
