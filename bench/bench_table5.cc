// Reproduces Table 5: "Comparison to Alternative Base Signals". At a 10%
// compression ratio, the SBR pipeline is run with four different base
// constructions and the table reports each alternative's total SSE as a
// ratio over GetBase():
//   GetBaseSVD()       top right-singular-vectors of the CBI matrix,
//   Linear Regression  no base at all (3-value intervals),
//   GetBaseDCT()       the fixed cosine dictionary (free, untransmitted).
// As in the paper, BestMap's linear fall-back is DISABLED for the
// base-signal variants so the comparison isolates base quality.
//
// Paper shape to verify: GetBase wins everywhere; the gap is largest on
// Weather (up to ~10x), smaller on Phone and Stock.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "compress/linear_model.h"
#include "compress/sbr_compressor.h"
#include "compress/svd_base.h"

namespace {

using namespace sbr;
using namespace sbr::bench;

std::unique_ptr<compress::ChunkCompressor> MakeVariant(
    const std::string& which, size_t total_band, size_t m_base) {
  if (which == "linreg") {
    return std::make_unique<compress::LinearModelCompressor>();
  }
  core::EncoderOptions opts;
  opts.total_band = total_band;
  opts.m_base = m_base;
  opts.allow_linear_fallback = false;  // isolate base quality (Section 5.2)
  if (which == "svd") {
    opts.base_strategy = core::BaseStrategy::kCustom;
    opts.base_provider = compress::SvdBaseProvider();
  } else if (which == "dct") {
    opts.base_strategy = core::BaseStrategy::kDctFixed;
  }
  return std::make_unique<compress::SbrCompressor>(opts, "sbr_" + which);
}

double RunVariant(const datagen::ExperimentSetup& setup,
                  const std::string& which) {
  const size_t n = setup.dataset.num_signals() * setup.chunk_len;
  const size_t total_band = n / 10;  // 10% ratio
  Method method{which, [&](size_t tb, size_t mb) {
                  return MakeVariant(which, tb, mb);
                }};
  const auto scores = RunMethods(setup, {method}, total_band,
                                 setup.num_chunks);
  return scores[0].sum_sse;
}

void RunDataset(const char* name, const datagen::ExperimentSetup& setup) {
  const double base = RunVariant(setup, "getbase");
  const double svd = RunVariant(setup, "svd");
  const double lin = RunVariant(setup, "linreg");
  const double dct = RunVariant(setup, "dct");
  std::printf("%-10s %14.3f %20.3f %16.3f\n", name, svd / base, lin / base,
              dct / base);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("== Table 5: error ratio over GetBase() at 10%% ratio ==\n");
  std::printf("%-10s %14s %20s %16s\n", "dataset", "GetBaseSVD",
              "LinearRegression", "GetBaseDCT");
  RunDataset("Weather", datagen::PaperWeatherSetup());
  RunDataset("Phone", datagen::PaperPhoneSetup());
  RunDataset("Stock", datagen::PaperStockSetup());
  return 0;
}
