#!/usr/bin/env bash
# Line-coverage workflow for the `coverage` CMake preset.
#
#   tools/coverage.sh [scope]
#
# Configures + builds build-cov (Debug, --coverage), runs the full ctest
# suite there, then aggregates gcov line stats for every source under
# `scope` (default: src/core). Uses only gcc's gcov and python3 — no
# gcovr/lcov required. The per-file table and TOTAL line land on stdout;
# record the src/core TOTAL in TESTING.md when it moves. The full suite
# includes the `query` label, so `tools/coverage.sh src/storage` measures
# the query-service layer; its TOTAL is tracked in TESTING.md too.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
SCOPE="${1:-src/core}"
BUILD="$REPO/build-cov"

cmake --preset coverage -S "$REPO" >/dev/null
cmake --build --preset coverage -j"$(nproc)"
(cd "$BUILD" && ctest -j"$(nproc)" --output-on-failure)

# gcov --json-format writes one .gcov.json.gz per source into the cwd,
# named after the source *basename* — so each .gcda gets its own scratch
# subdirectory (same-named sources from different objects would otherwise
# overwrite each other) and the merge below folds line hits across test
# binaries.
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
i=0
find "$BUILD" -name '*.gcda' | while read -r f; do
  d="$TMP/g$i"
  mkdir -p "$d"
  (cd "$d" && gcov --json-format "$f" >/dev/null 2>&1) || true
  i=$((i + 1))
done

python3 - "$TMP" "$REPO" "$SCOPE" <<'EOF'
import glob, gzip, json, os, sys

tmp, repo, scope = sys.argv[1], sys.argv[2], sys.argv[3]
hits = {}  # relpath -> {line_number: bool}
for path in glob.glob(os.path.join(tmp, "g*", "*.gcov.json.gz")):
    with gzip.open(path) as f:
        data = json.load(f)
    for fil in data.get("files", []):
        name = fil["file"]
        if not os.path.isabs(name):
            name = os.path.join(repo, name)
        rel = os.path.relpath(os.path.normpath(name), repo)
        if rel.startswith("..") or not rel.startswith(scope):
            continue
        d = hits.setdefault(rel, {})
        for ln in fil.get("lines", []):
            n = ln["line_number"]
            d[n] = d.get(n, False) or ln["count"] > 0

if not hits:
    sys.exit(f"no gcov data under scope '{scope}' — did the build run?")

total = covered = 0
print(f"{'file':<44} {'lines':>6} {'cov%':>7}")
for rel in sorted(hits):
    d = hits[rel]
    t, h = len(d), sum(d.values())
    if t == 0:
        continue  # header compiled in but no executable lines attributed
    total += t
    covered += h
    print(f"{rel:<44} {t:>6} {100.0 * h / t:>6.1f}%")
print(f"{'TOTAL ' + scope:<44} {total:>6} {100.0 * covered / total:>6.1f}%")
EOF
