#!/usr/bin/env python3
"""Diff a bench JSON file against a committed baseline.

Bench binaries (bench_query and friends) emit BENCH_*.json — a JSON array
of records, each keyed by ("mix", "threads") or similar identifying
fields. A blessed snapshot lives under bench/baselines/. This tool lines
the two files up record by record and reports throughput and latency
drift, failing (exit 1) when a comparable metric regresses beyond the
threshold — the check a perf PR runs before moving the baseline.

Usage:
  tools/bench_compare.py build/BENCH_query.json \
      bench/baselines/BENCH_query.json [--threshold 0.30]

Higher-is-better metrics: qps, speedup. Lower-is-better: seconds, p50_us,
p99_us. Records present on only one side are reported but never fatal
(new mixes appear, old ones retire). Only qps and speedup regressions are
fatal; latency drift is advisory (single-run percentiles are noisy).
"""

import argparse
import json
import sys

HIGHER_IS_BETTER = ("qps", "speedup")
LOWER_IS_BETTER = ("p50_us", "p99_us", "seconds")
KEY_FIELDS = ("mix", "threads", "name", "case")


def record_key(record, index):
    key = tuple(
        (f, record[f]) for f in KEY_FIELDS if f in record)
    return key if key else (("index", index),)


def load(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return {record_key(r, i): r for i, r in enumerate(records)}


def fmt_key(key):
    return "/".join(str(v) for _, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="blessed snapshot to diff against")
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="fatal relative regression on qps/speedup (default 0.30)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    regressions = []
    rows = 0
    for key in sorted(baseline, key=fmt_key):
        if key not in current:
            print(f"  only-in-baseline: {fmt_key(key)}")
            continue
        base, cur = baseline[key], current[key]
        for metric in HIGHER_IS_BETTER + LOWER_IS_BETTER:
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b == 0:
                continue
            delta = (c - b) / b
            worse = -delta if metric in HIGHER_IS_BETTER else delta
            marker = " "
            if worse > args.threshold:
                if metric in HIGHER_IS_BETTER:
                    marker = "!"
                    regressions.append(
                        f"{fmt_key(key)} {metric}: {b:.1f} -> {c:.1f} "
                        f"({delta:+.1%})")
                else:
                    marker = "~"  # advisory: latency/seconds drift
            print(f"{marker} {fmt_key(key):32s} {metric:10s} "
                  f"{b:14.3f} -> {c:14.3f}  {delta:+7.1%}")
            rows += 1
    for key in sorted(set(current) - set(baseline), key=fmt_key):
        print(f"  only-in-current:  {fmt_key(key)}")

    if rows == 0:
        print("no comparable metrics found", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: {rows} metric rows within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
