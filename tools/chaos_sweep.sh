#!/usr/bin/env bash
# Seed sweep for the node-lifecycle chaos harness.
#
#   tools/chaos_sweep.sh [--topology SHAPE] [count] [base] [shard_size]
#
# Runs `count` seeded fault schedules (default 500) starting at seed
# `base` (default 1) through chaos_test's ChaosSweep gate, sharded
# `shard_size` seeds per process (default 50) so one bad seed fails a
# small shard. Violating shards are re-run seed-by-seed and every
# violating seed is printed at the end; replay one with
#
#   SBR_CHAOS_SEED_COUNT=1 SBR_CHAOS_SEED_BASE=<seed> \
#     build/tests/chaos_test --gtest_filter='ChaosSweep.SeededFaultSchedulesHoldInvariants'
#
# --topology switches the sweep to the multi-hop relay-crash gate over
# routing trees. SHAPE is chain, binary, random, or all (every shape per
# seed). Replay a violating tree seed with the same envs plus
# SBR_CHAOS_TOPOLOGY=<shape> and the RelayCrashTreeTopologiesHoldInvariants
# filter the script prints.
set -uo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
TOPOLOGY=""
if [[ "${1:-}" == "--topology" ]]; then
  TOPOLOGY="${2:?chaos_sweep: --topology needs a shape (chain|binary|random|all)}"
  shift 2
fi
COUNT="${1:-500}"
BASE="${2:-1}"
SHARD="${3:-50}"
BIN="$REPO/build/tests/chaos_test"
FILTER='ChaosSweep.SeededFaultSchedulesHoldInvariants'
if [[ -n "$TOPOLOGY" ]]; then
  FILTER='ChaosSweep.RelayCrashTreeTopologiesHoldInvariants'
  # "all" sweeps every shape in one process: the test's default.
  [[ "$TOPOLOGY" == "all" ]] && TOPOLOGY=""
  export SBR_CHAOS_TOPOLOGY="$TOPOLOGY"
fi

if [[ ! -x "$BIN" ]]; then
  echo "chaos_sweep: $BIN not built; run: cmake --preset default && cmake --build --preset default" >&2
  exit 2
fi

bad_seeds=()
seed="$BASE"
end=$((BASE + COUNT))
while ((seed < end)); do
  n=$((end - seed)); ((n > SHARD)) && n="$SHARD"
  if ! SBR_CHAOS_SEED_COUNT="$n" SBR_CHAOS_SEED_BASE="$seed" \
       "$BIN" --gtest_filter="$FILTER" --gtest_brief=1 >/dev/null 2>&1; then
    # Bisect the shard: one process per seed pins the violators.
    for ((s = seed; s < seed + n; ++s)); do
      if ! SBR_CHAOS_SEED_COUNT=1 SBR_CHAOS_SEED_BASE="$s" \
           "$BIN" --gtest_filter="$FILTER" --gtest_brief=1 >/dev/null 2>&1; then
        bad_seeds+=("$s")
      fi
    done
  fi
  echo "chaos_sweep: seeds [$seed, $((seed + n))) done, ${#bad_seeds[@]} violating so far"
  seed=$((seed + n))
done

if ((${#bad_seeds[@]} > 0)); then
  echo "chaos_sweep: VIOLATING SEEDS (filter $FILTER): ${bad_seeds[*]}"
  exit 1
fi
echo "chaos_sweep: $COUNT seeds clean (base $BASE, filter $FILTER)"
