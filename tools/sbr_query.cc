// sbr_query: reconstruct historical values from an SBR chunk log.
//
//   sbr_query <log> [flags]
//
//   --mbase N       base buffer capacity used at encode time (default 1024)
//   --signal I      signal row to query (default 0)
//   --from T        first sample index (default 0)
//   --to T          one past the last sample (default: end of history)
//   --csv PATH      write the reconstructed range as CSV instead of stdout
//   --stats         print summary statistics instead of raw values
//
// Replays the log through a fresh decoder (the log is the complete state:
// base-signal updates travel inside the records) and serves range queries
// over the approximate history, per the paper's Figure 1 storage design.
#include <cmath>
#include <cstdio>
#include <string>

#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "tool_common.h"
#include "util/csv.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace sbr;
  const auto args = tools::Args::Parse(argc, argv, {"stats"});
  if (!args.Validate({"mbase", "signal", "from", "to", "csv", "stats"})) {
    return 2;
  }
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: sbr_query <log> [flags]\n");
    return 2;
  }

  auto log = storage::ChunkLog::Open(args.positional()[0]);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }
  if (log->empty()) {
    std::fprintf(stderr, "log is empty\n");
    return 1;
  }
  auto store = storage::HistoryStore::FromLog(
      *log, static_cast<size_t>(args.GetInt("mbase", 1024)));
  if (!store.ok()) {
    std::fprintf(stderr, "error: %s\n", store.status().ToString().c_str());
    return 1;
  }

  const size_t signal = static_cast<size_t>(args.GetInt("signal", 0));
  const size_t from = static_cast<size_t>(args.GetInt("from", 0));
  const size_t to = static_cast<size_t>(
      args.GetInt("to", static_cast<long>(store->history_len())));
  auto range = store->QueryRange(signal, from, to);
  if (!range.ok()) {
    std::fprintf(stderr, "error: %s\n", range.status().ToString().c_str());
    return 1;
  }

  if (args.Has("stats")) {
    const MinMax mm = Extent(*range);
    std::printf("signal %zu, samples [%zu, %zu): n=%zu mean=%.6g "
                "stddev=%.6g min=%.6g max=%.6g\n",
                signal, from, to, range->size(), Mean(*range),
                std::sqrt(Variance(*range)), mm.min, mm.max);
    return 0;
  }

  const std::string csv_path = args.GetString("csv");
  if (!csv_path.empty()) {
    CsvTable table;
    table.columns = {"t", "value"};
    for (size_t i = 0; i < range->size(); ++i) {
      table.rows.push_back({static_cast<double>(from + i), (*range)[i]});
    }
    if (auto status = WriteCsv(csv_path, table); !status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", range->size(), csv_path.c_str());
    return 0;
  }

  for (size_t i = 0; i < range->size(); ++i) {
    std::printf("%zu %.10g\n", from + i, (*range)[i]);
  }
  return 0;
}
