// sbr_query: query historical values from an SBR chunk log.
//
//   sbr_query <log> [flags]             reconstruct a range (legacy form)
//   sbr_query aggregate <log> [flags]   compressed-domain aggregates
//   sbr_query serve <log> [flags]       concurrent multi-reader drive
//
// Common flags:
//   --mbase N       base buffer capacity used at encode time (default 1024)
//   --signal I      signal row to query (default 0)
//   --from T        first sample index (default 0)
//   --to T          one past the last sample (default: end of history)
//
// Reconstruct-only flags:
//   --csv PATH      write the reconstructed range as CSV instead of stdout
//   --stats         print summary statistics instead of raw values
//
// aggregate-only flags:
//   --noindex       answer via the legacy interval scan (index disabled)
//   --exact         also print the materialized store's exact aggregates
//
// serve-only flags:
//   --threads N     concurrent reader threads (default 4)
//   --queries N     queries per thread (default 1000)
//   --seed S        query-mix seed (default 42)
//   --noindex       disable the moment index for every sensor
//
// The log is the complete state (base-signal updates travel inside the
// records): `aggregate` and `serve` replay it into a storage::QueryService
// and answer from published epoch snapshots — `aggregate` entirely in the
// compressed domain, `serve` with a randomized aggregate/range/point mix
// across threads, reporting the service counters at the end.
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "storage/query_service.h"
#include "tool_common.h"
#include "util/csv.h"
#include "util/stats.h"

namespace {

using namespace sbr;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Opens the log and replays it into a fresh service as sensor 0.
int LoadService(const std::string& path, storage::QueryService* service) {
  auto log = storage::ChunkLog::Open(path);
  if (!log.ok()) return Fail(log.status());
  if (log->empty()) {
    std::fprintf(stderr, "log is empty\n");
    return 1;
  }
  if (auto s = storage::ReplayLog(*log, 0, service); !s.ok()) return Fail(s);
  return 0;
}

int RunReconstruct(const tools::Args& args) {
  if (!args.Validate({"mbase", "signal", "from", "to", "csv", "stats"})) {
    return 2;
  }
  auto log = storage::ChunkLog::Open(args.positional()[0]);
  if (!log.ok()) return Fail(log.status());
  if (log->empty()) {
    std::fprintf(stderr, "log is empty\n");
    return 1;
  }
  auto store = storage::HistoryStore::FromLog(
      *log, static_cast<size_t>(args.GetInt("mbase", 1024)));
  if (!store.ok()) return Fail(store.status());

  const size_t signal = static_cast<size_t>(args.GetInt("signal", 0));
  const size_t from = static_cast<size_t>(args.GetInt("from", 0));
  const size_t to = static_cast<size_t>(
      args.GetInt("to", static_cast<long>(store->history_len())));
  auto range = store->QueryRange(signal, from, to);
  if (!range.ok()) return Fail(range.status());

  if (args.Has("stats")) {
    const MinMax mm = Extent(*range);
    std::printf("signal %zu, samples [%zu, %zu): n=%zu mean=%.6g "
                "stddev=%.6g min=%.6g max=%.6g\n",
                signal, from, to, range->size(), Mean(*range),
                std::sqrt(Variance(*range)), mm.min, mm.max);
    return 0;
  }

  const std::string csv_path = args.GetString("csv");
  if (!csv_path.empty()) {
    CsvTable table;
    table.columns = {"t", "value"};
    for (size_t i = 0; i < range->size(); ++i) {
      table.rows.push_back({static_cast<double>(from + i), (*range)[i]});
    }
    if (auto status = WriteCsv(csv_path, table); !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote %zu rows to %s\n", range->size(), csv_path.c_str());
    return 0;
  }

  for (size_t i = 0; i < range->size(); ++i) {
    std::printf("%zu %.10g\n", from + i, (*range)[i]);
  }
  return 0;
}

int RunAggregate(const tools::Args& args) {
  if (!args.Validate({"mbase", "signal", "from", "to", "noindex", "exact"})) {
    return 2;
  }
  storage::QueryServiceOptions opts;
  opts.m_base = static_cast<size_t>(args.GetInt("mbase", 1024));
  opts.index.enabled = !args.Has("noindex");
  storage::QueryService service(opts);
  if (int rc = LoadService(args.positional()[1], &service); rc != 0) {
    return rc;
  }
  auto snap = service.Snapshot(0);
  const size_t signal = static_cast<size_t>(args.GetInt("signal", 0));
  const size_t from = static_cast<size_t>(args.GetInt("from", 0));
  const size_t to = static_cast<size_t>(args.GetInt(
      "to", static_cast<long>(snap ? snap->compressed.history_len() : 0)));
  auto agg = service.Aggregate(0, signal, from, to);
  if (!agg.ok()) return Fail(agg.status());
  std::printf("signal %zu, samples [%zu, %zu): epoch=%llu n=%zu sum=%.10g "
              "avg=%.10g variance=%.10g min=%.10g max=%.10g\n",
              signal, from, to,
              static_cast<unsigned long long>(service.epoch(0)), agg->count,
              agg->sum, agg->avg, agg->variance, agg->min, agg->max);
  if (args.Has("exact") && snap != nullptr) {
    // Second row: the materialized store's exact recompute of the same
    // range — eyeballable compressed-vs-exact drift.
    auto exact = snap->history.AggregateExact(signal, from, to);
    if (!exact.ok()) return Fail(exact.status());
    std::printf("exact   %zu, samples [%zu, %zu): epoch=%llu n=%zu "
                "sum=%.10g avg=%.10g variance=%.10g min=%.10g max=%.10g\n",
                signal, from, to,
                static_cast<unsigned long long>(snap->epoch), exact->count,
                exact->sum, exact->avg, exact->variance, exact->min,
                exact->max);
  }
  return 0;
}

int RunServe(const tools::Args& args) {
  if (!args.Validate({"mbase", "threads", "queries", "seed", "noindex"})) {
    return 2;
  }
  storage::QueryServiceOptions opts;
  opts.m_base = static_cast<size_t>(args.GetInt("mbase", 1024));
  opts.index.enabled = !args.Has("noindex");
  storage::QueryService service(opts);
  if (int rc = LoadService(args.positional()[1], &service); rc != 0) {
    return rc;
  }
  auto snap = service.Snapshot(0);
  if (snap == nullptr || snap->compressed.history_len() == 0) {
    std::fprintf(stderr, "log produced no queryable history\n");
    return 1;
  }
  const size_t len = snap->compressed.history_len();
  const size_t num_signals = snap->compressed.num_signals();
  const size_t threads =
      std::max<long>(1, args.GetInt("threads", 4));
  const size_t per_thread =
      std::max<long>(1, args.GetInt("queries", 1000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(seed + w);
      std::uniform_int_distribution<size_t> pick_t(0, len - 1);
      std::uniform_int_distribution<size_t> pick_s(0, num_signals - 1);
      for (size_t q = 0; q < per_thread; ++q) {
        size_t a = pick_t(rng), b = pick_t(rng);
        if (a > b) std::swap(a, b);
        const size_t sig = pick_s(rng);
        switch (q % 3) {
          case 0:
            (void)service.Aggregate(0, sig, a, b + 1);
            break;
          case 1:
            (void)service.Reconstruct(0, sig, a, b + 1);
            break;
          default:
            (void)service.Point(0, sig, a);
            break;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  const storage::QueryServiceCounters c = service.counters();
  std::printf("served %llu queries over %zu samples x %zu signals "
              "(epoch %llu, %zu threads)\n",
              static_cast<unsigned long long>(c.queries), len, num_signals,
              static_cast<unsigned long long>(service.epoch(0)), threads);
  std::printf("cache: %llu hits, %llu misses, %llu evictions, "
              "%llu resident; dataloss answers: %llu; publishes: %llu\n",
              static_cast<unsigned long long>(c.cache_hits),
              static_cast<unsigned long long>(c.cache_misses),
              static_cast<unsigned long long>(c.cache_evictions),
              static_cast<unsigned long long>(c.cache_resident),
              static_cast<unsigned long long>(c.dataloss),
              static_cast<unsigned long long>(c.publishes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args =
      tools::Args::Parse(argc, argv, {"stats", "noindex", "exact"});
  const auto& pos = args.positional();
  if (!pos.empty() && pos[0] == "aggregate") {
    if (pos.size() != 2) {
      std::fprintf(stderr, "usage: sbr_query aggregate <log> [flags]\n");
      return 2;
    }
    return RunAggregate(args);
  }
  if (!pos.empty() && pos[0] == "serve") {
    if (pos.size() != 2) {
      std::fprintf(stderr, "usage: sbr_query serve <log> [flags]\n");
      return 2;
    }
    return RunServe(args);
  }
  if (pos.size() != 1) {
    std::fprintf(stderr,
                 "usage: sbr_query [aggregate|serve] <log> [flags]\n");
    return 2;
  }
  return RunReconstruct(args);
}
