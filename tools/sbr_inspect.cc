// sbr_inspect: dump the structure of an SBR chunk log.
//
//   sbr_inspect <log> [--verbose]
//
// Prints per-record geometry, value accounting, base-signal activity and
// interval statistics — useful for debugging a deployment's bandwidth
// spending without decoding the data itself.
#include <algorithm>
#include <cstdio>

#include "core/transmission.h"
#include "storage/chunk_log.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace sbr;
  const auto args = tools::Args::Parse(argc, argv, {"verbose"});
  if (!args.Validate({"verbose"}) || args.positional().size() != 1) {
    std::fprintf(stderr, "usage: sbr_inspect <log> [--verbose]\n");
    return 2;
  }
  auto log = storage::ChunkLog::Open(args.positional()[0]);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu records, %zu bytes of payload\n",
              args.positional()[0].c_str(), log->size(), log->TotalBytes());
  if (log->dropped_records() > 0) {
    std::printf("warning: %zu corrupt/torn record(s) dropped on reload\n",
                log->dropped_records());
  }
  if (log->quarantined_records() > 0) {
    std::printf(
        "warning: %zu mid-log corrupt record(s) quarantined as DATA LOSS%s\n",
        log->quarantined_records(),
        log->recovered_lineage_broken()
            ? " (base lineage broken until the next snapshot)"
            : "");
  }

  size_t total_values = 0, total_samples = 0, total_inserts = 0;
  size_t gap_chunks = 0, snapshots = 0, degraded = 0;
  for (size_t i = 0; i < log->size(); ++i) {
    if (log->record_type(i) == storage::RecordType::kGap) {
      auto chunks = log->ReadGap(i);
      if (!chunks.ok()) {
        std::fprintf(stderr, "record %zu: %s\n", i,
                     chunks.status().ToString().c_str());
        return 1;
      }
      gap_chunks += *chunks;
      std::printf("record %3zu: DATA LOSS — %u chunk(s) never arrived\n", i,
                  *chunks);
      continue;
    }
    if (log->record_type(i) == storage::RecordType::kSnapshot) {
      auto snap = log->ReadSnapshot(i);
      if (!snap.ok()) {
        std::fprintf(stderr, "record %zu: %s\n", i,
                     snap.status().ToString().c_str());
        return 1;
      }
      ++snapshots;
      std::printf(
          "record %3zu: base-signal snapshot | W=%u %zu slot(s) | %u "
          "missing chunk(s) reported\n",
          i, snap->w, snap->slots.size(), snap->missing_chunks);
      continue;
    }
    auto t = log->Read(i);
    if (!t.ok()) {
      std::fprintf(stderr, "record %zu: %s\n", i,
                   t.status().ToString().c_str());
      return 1;
    }
    if (t->base_kind == core::BaseKind::kNone) ++degraded;
    size_t fallback = 0;
    size_t min_len = t->TotalSamples(), max_len = 0;
    std::vector<core::IntervalRecord> sorted = t->intervals;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    for (size_t k = 0; k < sorted.size(); ++k) {
      if (sorted[k].shift < 0) ++fallback;
      const size_t end = k + 1 < sorted.size() ? sorted[k + 1].start
                                               : t->TotalSamples();
      const size_t len = end - sorted[k].start;
      min_len = std::min(min_len, len);
      max_len = std::max(max_len, len);
    }
    total_values += t->ValueCount();
    total_samples += t->TotalSamples();
    total_inserts += t->base_updates.size();
    std::printf(
        "record %3zu: %ux%u W=%u %s%s| %4zu values | %zu base inserts | "
        "%4zu intervals (len %zu..%zu, %zu linear fall-backs)\n",
        i, t->num_signals,
        t->signal_lengths.empty() ? t->chunk_len : 0, t->w,
        t->base_kind == core::BaseKind::kStored
            ? "stored "
            : (t->base_kind == core::BaseKind::kDctFixed ? "dct-fixed "
                                                         : "no-base "),
        t->quadratic ? "quadratic " : "", t->ValueCount(),
        t->base_updates.size(), t->intervals.size(), min_len, max_len,
        fallback);
    if (args.Has("verbose")) {
      for (const auto& bu : t->base_updates) {
        std::printf("    base slot %u <- %zu values\n", bu.slot,
                    bu.values.size());
      }
      for (const auto& iv : sorted) {
        std::printf("    interval @%u shift=%d a=%.4g b=%.4g\n", iv.start,
                    iv.shift, iv.a, iv.b);
      }
    }
  }
  if (total_values > 0) {
    std::printf("total: %zu samples -> %zu values (%.1fx), %zu base "
                "inserts\n",
                total_samples, total_values,
                static_cast<double>(total_samples) /
                    static_cast<double>(total_values),
                total_inserts);
  }
  if (gap_chunks + snapshots + degraded > 0) {
    std::printf(
        "protocol: %zu lost chunk(s), %zu resync snapshot(s), %zu "
        "degraded self-contained chunk(s)\n",
        gap_chunks, snapshots, degraded);
  }
  return 0;
}
