// Tiny flag parser shared by the command-line tools. Supports
// `--name value` and `--flag` boolean forms plus positional arguments;
// unknown flags are an error so typos fail loudly.
#ifndef SBR_TOOLS_TOOL_COMMON_H_
#define SBR_TOOLS_TOOL_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace sbr::tools {

/// Parsed command line: positional arguments plus --key[=value] options.
class Args {
 public:
  /// `bool_flags`: names that take no value.
  static Args Parse(int argc, char** argv,
                    const std::set<std::string>& bool_flags) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string name = tok.substr(2);
        if (bool_flags.count(name)) {
          args.options_[name] = "1";
        } else if (i + 1 < argc) {
          args.options_[name] = argv[++i];
        } else {
          std::fprintf(stderr, "missing value for --%s\n", name.c_str());
          std::exit(2);
        }
      } else {
        args.positional_.push_back(tok);
      }
    }
    return args;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return options_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& def = "") const {
    auto it = options_.find(name);
    return it == options_.end() ? def : it->second;
  }

  long GetInt(const std::string& name, long def) const {
    auto it = options_.find(name);
    return it == options_.end() ? def : std::strtol(it->second.c_str(),
                                                    nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    auto it = options_.find(name);
    return it == options_.end() ? def : std::strtod(it->second.c_str(),
                                                    nullptr);
  }

  /// Verifies every provided option is in the allowed set.
  bool Validate(const std::set<std::string>& allowed) const {
    bool ok = true;
    for (const auto& [name, value] : options_) {
      if (!allowed.count(name)) {
        std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace sbr::tools

#endif  // SBR_TOOLS_TOOL_COMMON_H_
