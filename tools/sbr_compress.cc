// sbr_compress: compress a CSV of time series into an SBR chunk log.
//
//   sbr_compress <input.csv> <output.log> [flags]
//
//   --chunk-len N     samples per signal per transmission (default 1024)
//   --ratio PCT       bandwidth as a percentage of chunk size (default 10)
//   --band N          absolute bandwidth in values (overrides --ratio)
//   --mbase N         base-signal buffer capacity in values (default 1024)
//   --metric M        sse | relative | maxabs (default sse)
//   --quadratic       use the quadratic encoding extension
//   --no-header       input CSV has no header row
//   --demo NAME       ignore input.csv, use a built-in dataset
//                     (weather | stock | phone)
//
// The CSV layout is one column per signal, one row per sampling instant.
// Reconstruct or inspect the log with sbr_query / sbr_inspect.
#include <cstdio>
#include <string>
#include <vector>

#include "core/encoder.h"
#include "datagen/paper_datasets.h"
#include "storage/chunk_log.h"
#include "tool_common.h"
#include "util/csv.h"
#include "util/stats.h"

namespace {

using namespace sbr;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<datagen::Dataset> LoadInput(const tools::Args& args) {
  const std::string demo = args.GetString("demo");
  if (!demo.empty()) {
    if (demo == "weather") return datagen::PaperWeatherSetup().dataset;
    if (demo == "stock") return datagen::PaperStockSetup().dataset;
    if (demo == "phone") return datagen::PaperPhoneSetup().dataset;
    return Status::InvalidArgument("unknown demo dataset: " + demo);
  }
  if (args.positional().empty()) {
    return Status::InvalidArgument(
        "usage: sbr_compress <input.csv> <output.log> [flags]");
  }
  auto table = ReadCsv(args.positional()[0], !args.Has("no-header"));
  if (!table.ok()) return table.status();
  if (table->rows.empty()) return Status::InvalidArgument("empty CSV");
  const size_t num_signals = table->rows[0].size();
  datagen::Dataset ds;
  ds.name = args.positional()[0];
  ds.values = linalg::Matrix(num_signals, table->rows.size());
  for (size_t s = 0; s < num_signals; ++s) {
    ds.signal_names.push_back(
        s < table->columns.size() ? table->columns[s]
                                  : "signal_" + std::to_string(s));
    for (size_t t = 0; t < table->rows.size(); ++t) {
      ds.values(s, t) = table->rows[t][s];
    }
  }
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = tools::Args::Parse(argc, argv, {"quadratic",
                                                    "no-header"});
  if (!args.Validate({"chunk-len", "ratio", "band", "mbase", "metric",
                      "quadratic", "no-header", "demo"})) {
    return 2;
  }
  const size_t out_pos = args.GetString("demo").empty() ? 1 : 0;
  if (args.positional().size() <= out_pos) {
    std::fprintf(stderr,
                 "usage: sbr_compress <input.csv> <output.log> [flags]\n"
                 "       sbr_compress --demo weather <output.log>\n");
    return 2;
  }
  const std::string out_path = args.positional()[out_pos];

  auto dataset = LoadInput(args);
  if (!dataset.ok()) return Fail(dataset.status());

  const size_t chunk_len =
      static_cast<size_t>(args.GetInt("chunk-len", 1024));
  const size_t num_chunks = dataset->NumChunks(chunk_len);
  if (num_chunks == 0) {
    std::fprintf(stderr, "input shorter than one chunk (%zu samples)\n",
                 dataset->length());
    return 1;
  }
  const size_t n = dataset->num_signals() * chunk_len;

  core::EncoderOptions opts;
  opts.total_band = args.Has("band")
                        ? static_cast<size_t>(args.GetInt("band", 0))
                        : n * static_cast<size_t>(args.GetInt("ratio", 10)) /
                              100;
  opts.m_base = static_cast<size_t>(args.GetInt("mbase", 1024));
  opts.quadratic = args.Has("quadratic");
  const std::string metric = args.GetString("metric", "sse");
  if (metric == "relative") {
    opts.metric = core::ErrorMetric::kSseRelative;
  } else if (metric == "maxabs") {
    opts.metric = core::ErrorMetric::kMaxAbs;
  } else if (metric != "sse") {
    std::fprintf(stderr, "unknown metric: %s\n", metric.c_str());
    return 2;
  }

  auto log = storage::ChunkLog::Open(out_path);
  if (!log.ok()) return Fail(log.status());
  if (!log->empty()) {
    std::fprintf(stderr, "refusing to append to non-empty log %s\n",
                 out_path.c_str());
    return 1;
  }

  core::SbrEncoder encoder(opts);
  std::printf("%zu signals x %zu samples, %zu chunks, band %zu values "
              "(%.1f%%)\n",
              dataset->num_signals(), dataset->length(), num_chunks,
              opts.total_band,
              100.0 * static_cast<double>(opts.total_band) /
                  static_cast<double>(n));
  size_t total_values = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const auto y = datagen::ConcatRows(dataset->Chunk(c, chunk_len));
    auto t = encoder.EncodeChunk(y, dataset->num_signals());
    if (!t.ok()) return Fail(t.status());
    if (auto status = log->Append(*t); !status.ok()) return Fail(status);
    total_values += t->ValueCount();
    std::printf("  chunk %3zu: %5zu values, %4zu intervals, "
                "%zu base inserts, error %.6g\n",
                c, t->ValueCount(), t->intervals.size(),
                encoder.last_stats().inserted_base_intervals,
                encoder.last_stats().total_error);
  }
  std::printf("wrote %s: %zu records, %zu values total (%.1fx compression), "
              "%zu bytes on disk\n",
              out_path.c_str(), log->size(), total_values,
              static_cast<double>(num_chunks * n) /
                  static_cast<double>(total_values),
              log->TotalBytes());
  return 0;
}
