// Strict error bounds (paper Section 4.5): two deployment modes beyond
// plain budget-constrained compression.
//
//  1. Minimax mode: encode under the maximum-absolute-error metric, so the
//     transmitted approximation carries a guaranteed worst-case bound the
//     application can publish alongside the data.
//  2. Error-target mode: give the encoder an error target together with
//     the bandwidth cap; it stops spending bandwidth as soon as the target
//     is met, often transmitting far less than the cap.
//
//   $ ./error_bounds
#include <cstdio>
#include <vector>

#include "core/sbr.h"
#include "datagen/weather.h"
#include "util/stats.h"

int main() {
  using namespace sbr;

  datagen::WeatherOptions wopts;
  wopts.length = 1024;
  wopts.seed = 9;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const auto y = datagen::ConcatRows(ds.Chunk(0, 1024));
  const size_t n = y.size();

  // --- Mode 1: minimax encoding with a published worst-case bound.
  {
    core::EncoderOptions opts;
    opts.total_band = n / 5;
    opts.m_base = 512;
    opts.metric = core::ErrorMetric::kMaxAbs;
    core::SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, ds.num_signals());
    if (!t.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    core::SbrDecoder dec(core::DecoderOptions{opts.m_base});
    auto rec = dec.DecodeChunk(*t);
    if (!rec.ok()) return 1;
    std::printf("minimax mode  : %zu values, guaranteed max error %.4f, "
                "measured %.4f\n",
                t->ValueCount(), enc.last_stats().total_error,
                MaxAbsoluteError(y, *rec));
  }

  // --- Mode 2: SSE target + bandwidth cap: stop early once satisfied.
  {
    core::EncoderOptions full;
    full.total_band = n / 5;
    full.m_base = 512;
    core::SbrEncoder full_enc(full);
    auto full_t = full_enc.EncodeChunk(y, ds.num_signals());
    if (!full_t.ok()) return 1;
    const double achievable = full_enc.last_stats().total_error;

    // Accept 5x the achievable error; watch the bandwidth drop.
    core::EncoderOptions bounded = full;
    bounded.error_target = 5.0 * achievable;
    core::SbrEncoder enc(bounded);
    auto t = enc.EncodeChunk(y, ds.num_signals());
    if (!t.ok()) return 1;
    std::printf(
        "error target  : accept sse <= %.1f -> sent %zu values instead of "
        "%zu (%.0f%% saved), achieved sse %.1f\n",
        bounded.error_target, t->ValueCount(), full_t->ValueCount(),
        100.0 * (1.0 - static_cast<double>(t->ValueCount()) /
                           static_cast<double>(full_t->ValueCount())),
        enc.last_stats().total_error);
  }

  // --- For contrast: what the full budget buys with the default metric.
  {
    core::EncoderOptions opts;
    opts.total_band = n / 5;
    opts.m_base = 512;
    core::SbrEncoder enc(opts);
    auto t = enc.EncodeChunk(y, ds.num_signals());
    if (!t.ok()) return 1;
    core::SbrDecoder dec(core::DecoderOptions{opts.m_base});
    auto rec = dec.DecodeChunk(*t);
    if (!rec.ok()) return 1;
    std::printf("sse mode      : %zu values, sse %.1f, max error %.4f "
                "(no worst-case guarantee)\n",
                t->ValueCount(), enc.last_stats().total_error,
                MaxAbsoluteError(y, *rec));
  }
  return 0;
}
