// Multi-stream time-series archiving outside sensor networks: the paper's
// stock workload. Ten correlated tickers are compressed chunk by chunk
// with SBR and with the classic transform baselines through the common
// ChunkCompressor interface, demonstrating how to plug any method into the
// same budget-for-accuracy harness.
//
//   $ ./stock_ticker [compression_percent=10]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "compress/dct_compressor.h"
#include "compress/histogram.h"
#include "compress/linear_model.h"
#include "compress/sbr_compressor.h"
#include "compress/wavelet.h"
#include "datagen/stock.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace sbr;
  const size_t pct = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  if (pct == 0 || pct > 100) {
    std::fprintf(stderr, "usage: %s [compression_percent 1..100]\n", argv[0]);
    return 1;
  }

  constexpr size_t kChunkLen = 1024;
  constexpr size_t kChunks = 6;
  datagen::StockOptions sopts;
  sopts.length = kChunks * kChunkLen;
  const datagen::Dataset ds = datagen::GenerateStock(sopts);
  const size_t n = ds.num_signals() * kChunkLen;
  const size_t budget = std::max<size_t>(n * pct / 100, 4 * ds.num_signals());

  core::EncoderOptions sbr_opts;
  sbr_opts.total_band = budget;
  sbr_opts.m_base = 1024;

  std::vector<std::unique_ptr<compress::ChunkCompressor>> methods;
  methods.push_back(std::make_unique<compress::SbrCompressor>(sbr_opts));
  methods.push_back(std::make_unique<compress::WaveletCompressor>());
  methods.push_back(std::make_unique<compress::DctCompressor>());
  methods.push_back(std::make_unique<compress::HistogramCompressor>());
  methods.push_back(std::make_unique<compress::LinearModelCompressor>());

  std::printf("10 tickers x %zu minutes/chunk, %zu chunks, budget %zu%%\n\n",
              kChunkLen, kChunks, pct);
  std::printf("%-18s %14s %18s\n", "method", "avg mse", "total rel. err");
  for (auto& method : methods) {
    double sse = 0, rel = 0;
    bool failed = false;
    for (size_t c = 0; c < kChunks; ++c) {
      const auto y = datagen::ConcatRows(ds.Chunk(c, kChunkLen));
      auto rec =
          method->CompressAndReconstruct(y, ds.num_signals(), budget);
      if (!rec.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", method->Name().c_str(),
                     rec.status().ToString().c_str());
        failed = true;
        break;
      }
      sse += SumSquaredError(y, *rec);
      rel += SumSquaredRelativeError(y, *rec);
    }
    if (failed) continue;
    std::printf("%-18s %14.6f %18.6f\n", method->Name().c_str(),
                sse / static_cast<double>(kChunks * n), rel);
  }
  std::printf(
      "\n(SBR keeps a base signal across chunks; rerun with a different\n"
      " budget, e.g. `%s 5`, to see how the gap widens under pressure.)\n",
      argv[0]);
  return 0;
}
