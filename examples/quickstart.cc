// Quickstart: compress one batch of correlated sensor measurements with
// SBR and reconstruct it at the receiver.
//
//   $ ./quickstart
//
// Walks through the minimal API: build a chunk, configure SbrEncoder with
// just the two paper-level knobs (TotalBand, M_base), encode, ship the
// serialized transmission, decode, and compare.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/sbr.h"
#include "util/stats.h"

int main() {
  using namespace sbr;

  // --- 1. Some correlated measurements: 4 quantities, 512 samples each.
  // (Real deployments feed sensor readings; see weather_station.cc.)
  const size_t kSignals = 4, kSamples = 512;
  std::vector<double> chunk(kSignals * kSamples);
  for (size_t s = 0; s < kSignals; ++s) {
    for (size_t i = 0; i < kSamples; ++i) {
      const double t = static_cast<double>(i);
      const double shared = std::sin(2 * M_PI * t / 64) +
                            0.6 * std::sin(2 * M_PI * t / 16);
      chunk[s * kSamples + i] = (1.0 + 0.5 * s) * shared + 3.0 * s;
    }
  }

  // --- 2. Configure the encoder: budget 10% of the data, 1 KiB of base
  // signal. Everything else (W, base construction, insert count) is
  // decided by the algorithm.
  core::EncoderOptions options;
  options.total_band = kSignals * kSamples / 10;  // values per transmission
  options.m_base = 1024;                          // base-signal buffer
  core::SbrEncoder encoder(options);

  auto transmission = encoder.EncodeChunk(chunk, kSignals);
  if (!transmission.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 transmission.status().ToString().c_str());
    return 1;
  }

  // --- 3. Serialize for the radio...
  BinaryWriter writer;
  transmission->Serialize(&writer);
  std::printf("chunk: %zu values -> transmission: %zu values (%zu bytes)\n",
              chunk.size(), transmission->ValueCount(), writer.size());
  std::printf("  base intervals inserted: %zu, data intervals: %zu\n",
              encoder.last_stats().inserted_base_intervals,
              transmission->intervals.size());

  // --- 4. ...and decode on the base-station side.
  core::SbrDecoder decoder(core::DecoderOptions{options.m_base});
  BinaryReader reader(writer.buffer());
  auto received = core::Transmission::Deserialize(&reader);
  if (!received.ok()) {
    std::fprintf(stderr, "wire decode failed\n");
    return 1;
  }
  auto reconstructed = decoder.DecodeChunk(*received);
  if (!reconstructed.ok()) {
    std::fprintf(stderr, "decode failed: %s\n",
                 reconstructed.status().ToString().c_str());
    return 1;
  }

  // --- 5. How good is the approximation?
  const double sse = SumSquaredError(chunk, *reconstructed);
  const double mse = sse / static_cast<double>(chunk.size());
  std::printf("compression ratio: %.1fx, mse: %.6f (rmse %.4f)\n",
              static_cast<double>(chunk.size()) /
                  static_cast<double>(transmission->ValueCount()),
              mse, std::sqrt(mse));
  return 0;
}
