// Weather-station deployment: the paper's motivating scenario end to end.
// Four stations (different hop distances from the base station) sample six
// weather quantities, batch them, compress with SBR and transmit. The base
// station keeps one durable log per sensor and answers historical range
// queries over the reconstructed feeds. The example reports per-node
// bandwidth, radio-energy savings versus a raw full-resolution feed, and
// reconstruction quality, then demonstrates a point-in-the-past query.
//
//   $ ./weather_station [log_dir]
#include <cmath>
#include <cstdio>
#include <string>

#include "datagen/weather.h"
#include "net/network.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace sbr;
  const std::string log_dir = argc > 1 ? argv[1] : "";

  // --- Deployment: 4 stations, 1-3 radio hops, 10-minute sampling,
  // one transmission per ~3.5 days (512 samples per quantity).
  constexpr size_t kChunkLen = 512;
  constexpr size_t kDays = 21;  // 3 weeks of data -> 6 transmissions
  std::vector<datagen::Dataset> feeds;
  std::vector<net::NodePlacement> placements;
  for (uint32_t id = 0; id < 4; ++id) {
    datagen::WeatherOptions opts;
    opts.length = kDays * 144;
    opts.seed = 42 + id;  // nearby stations: same climate, different noise
    feeds.push_back(datagen::GenerateWeather(opts));
    placements.push_back({id, 1 + id % 3});
  }
  const size_t n = feeds[0].num_signals() * kChunkLen;

  core::EncoderOptions enc;
  enc.total_band = n / 10;  // 10% of each batch
  enc.m_base = 768;

  net::NetworkSim sim(placements, enc, kChunkLen);
  auto report = sim.Run(feeds);
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("station  hops  txs  values(sent/raw)   energy(mJ)  raw(mJ)  sse\n");
  for (const auto& node : report->nodes) {
    std::printf("%7u  %4zu  %3zu  %7zu/%-8zu  %9.2f  %7.2f  %.1f\n",
                node.id, placements[node.id].hops_to_base,
                node.transmissions, node.values_sent, node.values_raw,
                node.energy.total_nj() * 1e-6, node.raw_energy_nj * 1e-6,
                node.sse);
  }
  std::printf(
      "\nfleet: %.1fx compression, %.1fx radio-energy saving vs raw feed\n",
      report->CompressionFactor(), report->EnergySavingFactor());

  // --- Historical queries against the base station's decoded archive:
  // "what was the air temperature at station 2 around noon, day 8?"
  auto history = sim.base_station().History(2);
  if (!history.ok()) return 1;
  const size_t noon_day8 = 8 * 144 + 72;
  auto approx = (*history)->QueryPoint(/*signal=*/0, noon_day8);
  const double truth = feeds[2].values(0, noon_day8);
  if (approx.ok()) {
    std::printf(
        "\nhistory query: station 2 air_temp @ day 8 noon: %.2f C "
        "(true %.2f C, |err| %.2f)\n",
        *approx, truth, std::abs(*approx - truth));
  }

  // A whole-week range query on solar irradiance.
  auto week = (*history)->QueryRange(/*signal=*/4, 0, 7 * 144);
  if (week.ok()) {
    std::vector<double> truth_week(7 * 144);
    for (size_t t = 0; t < truth_week.size(); ++t) {
      truth_week[t] = feeds[2].values(4, t);
    }
    std::printf(
        "history query: station 2 solar, first week: rmse %.1f W/m^2 over "
        "%zu samples\n",
        std::sqrt(SumSquaredError(truth_week, *week) / week->size()),
        week->size());
  }
  return 0;
}
