// Compressed-domain analytics: aggregate queries served straight from the
// SBR representation, never materializing the reconstructed series.
// Because each interval is an affine image of a base segment, SUM / AVG /
// VARIANCE over any time range reduce to prefix sums over the base-signal
// snapshot — O(intervals touched) instead of O(samples).
//
//   $ ./compressed_queries
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/encoder.h"
#include "datagen/weather.h"
#include "storage/history_store.h"
#include "storage/query_engine.h"

int main() {
  using namespace sbr;

  // A year of 10-minute weather data, compressed in monthly batches.
  datagen::WeatherOptions wopts;
  wopts.length = 144 * 360;  // 360 days
  wopts.seed = 2002;
  const datagen::Dataset ds = datagen::GenerateWeather(wopts);
  const size_t chunk_len = 144 * 30;  // one month per transmission
  const size_t n = ds.num_signals() * chunk_len;

  core::EncoderOptions opts;
  opts.total_band = n / 10;
  opts.m_base = 2048;
  core::SbrEncoder encoder(opts);

  storage::CompressedHistory queries(opts.m_base);
  storage::HistoryStore materialized(opts.m_base);
  for (size_t c = 0; c < ds.NumChunks(chunk_len); ++c) {
    const auto y = datagen::ConcatRows(ds.Chunk(c, chunk_len));
    auto t = encoder.EncodeChunk(y, ds.num_signals());
    if (!t.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    if (!queries.Ingest(*t).ok() || !materialized.Ingest(*t).ok()) {
      return 1;
    }
  }
  std::printf("%zu months compressed; %zu base-signal versions retained\n\n",
              queries.num_chunks(), queries.num_base_versions());

  // Monthly temperature climate summary, straight from compressed form.
  std::printf("month  avg_temp  min_temp  max_temp  stddev\n");
  for (size_t month = 0; month < queries.num_chunks(); ++month) {
    auto agg = queries.Aggregate(/*air_temp=*/0, month * chunk_len,
                                 (month + 1) * chunk_len);
    if (!agg.ok()) return 1;
    std::printf("%5zu  %8.2f  %8.2f  %8.2f  %6.2f\n", month, agg->avg,
                agg->min, agg->max, std::sqrt(agg->variance));
  }

  // Compare the cost: compressed-domain vs materialize-then-scan, over
  // many random ranges.
  const size_t kQueries = 2000;
  const size_t len = queries.history_len();
  double sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t q = 0; q < kQueries; ++q) {
    const size_t a = (q * 7919) % (len - 2000);
    auto agg = queries.Aggregate(4, a, a + 2000);
    if (agg.ok()) sink += agg->sum;
  }
  const double fast =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto t1 = std::chrono::steady_clock::now();
  for (size_t q = 0; q < kQueries; ++q) {
    const size_t a = (q * 7919) % (len - 2000);
    auto range = materialized.QueryRange(4, a, a + 2000);
    if (range.ok()) {
      for (double v : *range) sink += v;
    }
  }
  const double slow =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  std::printf(
      "\n%zu range-SUM queries over solar irradiance: compressed-domain "
      "%.3f s vs materialized scan %.3f s (%.1fx)\n",
      kQueries, fast, slow, slow / fast);
  (void)sink;
  return 0;
}
