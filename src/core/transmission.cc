#include "core/transmission.h"

namespace sbr::core {

size_t Transmission::ValueCount() const {
  size_t per_interval = base_kind == BaseKind::kNone ? 3 : 4;
  if (quadratic) ++per_interval;
  size_t total = intervals.size() * per_interval;
  for (const BaseUpdate& bu : base_updates) {
    total += bu.values.size() + 1;
  }
  return total;
}

size_t Transmission::TotalSamples() const {
  if (signal_lengths.empty()) {
    return static_cast<size_t>(num_signals) * chunk_len;
  }
  size_t total = 0;
  for (uint32_t len : signal_lengths) total += len;
  return total;
}

namespace {

void PutValue(BinaryWriter* writer, WirePrecision precision, double v) {
  if (precision == WirePrecision::kFloat32) {
    writer->PutF32(v);
  } else {
    writer->PutDouble(v);
  }
}

Status GetValue(BinaryReader* reader, WirePrecision precision, double* v) {
  return precision == WirePrecision::kFloat32 ? reader->GetF32(v)
                                              : reader->GetDouble(v);
}

}  // namespace

void Transmission::Serialize(BinaryWriter* writer) const {
  writer->PutU32(num_signals);
  writer->PutU32(chunk_len);
  writer->PutU32(static_cast<uint32_t>(signal_lengths.size()));
  for (uint32_t len : signal_lengths) writer->PutU32(len);
  writer->PutU32(w);
  writer->PutU8(static_cast<uint8_t>(base_kind));
  writer->PutU8(quadratic ? 1 : 0);
  writer->PutU8(static_cast<uint8_t>(precision));
  writer->PutU32(static_cast<uint32_t>(base_updates.size()));
  for (const BaseUpdate& bu : base_updates) {
    writer->PutU32(bu.slot);
    writer->PutU32(static_cast<uint32_t>(bu.values.size()));
    for (double v : bu.values) PutValue(writer, precision, v);
  }
  writer->PutU32(static_cast<uint32_t>(intervals.size()));
  for (const IntervalRecord& iv : intervals) {
    writer->PutU32(iv.start);
    writer->PutU32(static_cast<uint32_t>(iv.shift));
    PutValue(writer, precision, iv.a);
    PutValue(writer, precision, iv.b);
    if (quadratic) PutValue(writer, precision, iv.c);
  }
}

StatusOr<Transmission> Transmission::Deserialize(BinaryReader* reader) {
  Transmission t;
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.num_signals));
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.chunk_len));
  uint32_t num_lengths;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_lengths));
  if (num_lengths != 0 && num_lengths != t.num_signals) {
    return Status::DataLoss("signal_lengths count mismatch");
  }
  // Guard allocations against corrupted counts: every entry needs at
  // least 4 more bytes of input.
  if (static_cast<size_t>(num_lengths) * 4 > reader->remaining()) {
    return Status::DataLoss("signal_lengths count exceeds input");
  }
  t.signal_lengths.resize(num_lengths);
  for (auto& len : t.signal_lengths) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&len));
  }
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.w));
  uint8_t kind;
  SBR_RETURN_IF_ERROR(reader->GetU8(&kind));
  if (kind > static_cast<uint8_t>(BaseKind::kNone)) {
    return Status::DataLoss("invalid base kind " + std::to_string(kind));
  }
  t.base_kind = static_cast<BaseKind>(kind);
  uint8_t quad;
  SBR_RETURN_IF_ERROR(reader->GetU8(&quad));
  if (quad > 1) {
    return Status::DataLoss("invalid quadratic flag " + std::to_string(quad));
  }
  t.quadratic = quad == 1;
  uint8_t precision;
  SBR_RETURN_IF_ERROR(reader->GetU8(&precision));
  if (precision > static_cast<uint8_t>(WirePrecision::kFloat32)) {
    return Status::DataLoss("invalid wire precision " +
                            std::to_string(precision));
  }
  t.precision = static_cast<WirePrecision>(precision);

  uint32_t num_updates;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_updates));
  // Each update carries at least a slot id and a length prefix (8 bytes).
  if (static_cast<size_t>(num_updates) * 8 > reader->remaining()) {
    return Status::DataLoss("base update count exceeds input");
  }
  t.base_updates.resize(num_updates);
  for (auto& bu : t.base_updates) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&bu.slot));
    uint32_t len;
    SBR_RETURN_IF_ERROR(reader->GetU32(&len));
    if (static_cast<size_t>(len) * 4 > reader->remaining()) {
      return Status::DataLoss("base update length exceeds input");
    }
    bu.values.resize(len);
    for (auto& v : bu.values) {
      SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &v));
    }
  }

  uint32_t num_intervals;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_intervals));
  // Each interval record is at least 16 bytes on the wire (f32 mode).
  if (static_cast<size_t>(num_intervals) * 16 > reader->remaining()) {
    return Status::DataLoss("interval count exceeds input");
  }
  t.intervals.resize(num_intervals);
  for (auto& iv : t.intervals) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&iv.start));
    uint32_t shift;
    SBR_RETURN_IF_ERROR(reader->GetU32(&shift));
    iv.shift = static_cast<int32_t>(shift);
    SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.a));
    SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.b));
    if (t.quadratic) {
      SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.c));
    }
  }
  return t;
}

}  // namespace sbr::core
