#include "core/transmission.h"

#include "util/crc32.h"

namespace sbr::core {

size_t Transmission::ValueCount() const {
  size_t per_interval = base_kind == BaseKind::kNone ? 3 : 4;
  if (quadratic) ++per_interval;
  size_t total = intervals.size() * per_interval;
  for (const BaseUpdate& bu : base_updates) {
    total += bu.values.size() + 1;
  }
  return total;
}

size_t Transmission::TotalSamples() const {
  if (signal_lengths.empty()) {
    return static_cast<size_t>(num_signals) * chunk_len;
  }
  size_t total = 0;
  for (uint32_t len : signal_lengths) total += len;
  return total;
}

namespace {

void PutValue(BinaryWriter* writer, WirePrecision precision, double v) {
  if (precision == WirePrecision::kFloat32) {
    writer->PutF32(v);
  } else {
    writer->PutDouble(v);
  }
}

Status GetValue(BinaryReader* reader, WirePrecision precision, double* v) {
  return precision == WirePrecision::kFloat32 ? reader->GetF32(v)
                                              : reader->GetDouble(v);
}

}  // namespace

void Transmission::Serialize(BinaryWriter* writer) const {
  writer->PutU32(num_signals);
  writer->PutU32(chunk_len);
  writer->PutU32(static_cast<uint32_t>(signal_lengths.size()));
  for (uint32_t len : signal_lengths) writer->PutU32(len);
  writer->PutU32(w);
  writer->PutU8(static_cast<uint8_t>(base_kind));
  writer->PutU8(quadratic ? 1 : 0);
  writer->PutU8(static_cast<uint8_t>(precision));
  writer->PutU32(static_cast<uint32_t>(base_updates.size()));
  for (const BaseUpdate& bu : base_updates) {
    writer->PutU32(bu.slot);
    writer->PutU32(static_cast<uint32_t>(bu.values.size()));
    for (double v : bu.values) PutValue(writer, precision, v);
  }
  writer->PutU32(static_cast<uint32_t>(intervals.size()));
  for (const IntervalRecord& iv : intervals) {
    writer->PutU32(iv.start);
    writer->PutU32(static_cast<uint32_t>(iv.shift));
    PutValue(writer, precision, iv.a);
    PutValue(writer, precision, iv.b);
    if (quadratic) PutValue(writer, precision, iv.c);
  }
}

StatusOr<Transmission> Transmission::Deserialize(BinaryReader* reader) {
  Transmission t;
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.num_signals));
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.chunk_len));
  uint32_t num_lengths;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_lengths));
  if (num_lengths != 0 && num_lengths != t.num_signals) {
    return Status::DataLoss("signal_lengths count mismatch");
  }
  // Guard allocations against corrupted counts: every entry needs at
  // least 4 more bytes of input.
  if (static_cast<size_t>(num_lengths) * 4 > reader->remaining()) {
    return Status::DataLoss("signal_lengths count exceeds input");
  }
  t.signal_lengths.resize(num_lengths);
  for (auto& len : t.signal_lengths) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&len));
  }
  SBR_RETURN_IF_ERROR(reader->GetU32(&t.w));
  uint8_t kind;
  SBR_RETURN_IF_ERROR(reader->GetU8(&kind));
  if (kind > static_cast<uint8_t>(BaseKind::kNone)) {
    return Status::DataLoss("invalid base kind " + std::to_string(kind));
  }
  t.base_kind = static_cast<BaseKind>(kind);
  uint8_t quad;
  SBR_RETURN_IF_ERROR(reader->GetU8(&quad));
  if (quad > 1) {
    return Status::DataLoss("invalid quadratic flag " + std::to_string(quad));
  }
  t.quadratic = quad == 1;
  uint8_t precision;
  SBR_RETURN_IF_ERROR(reader->GetU8(&precision));
  if (precision > static_cast<uint8_t>(WirePrecision::kFloat32)) {
    return Status::DataLoss("invalid wire precision " +
                            std::to_string(precision));
  }
  t.precision = static_cast<WirePrecision>(precision);

  uint32_t num_updates;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_updates));
  // Each update carries at least a slot id and a length prefix (8 bytes).
  if (static_cast<size_t>(num_updates) * 8 > reader->remaining()) {
    return Status::DataLoss("base update count exceeds input");
  }
  t.base_updates.resize(num_updates);
  for (auto& bu : t.base_updates) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&bu.slot));
    uint32_t len;
    SBR_RETURN_IF_ERROR(reader->GetU32(&len));
    if (static_cast<size_t>(len) * 4 > reader->remaining()) {
      return Status::DataLoss("base update length exceeds input");
    }
    bu.values.resize(len);
    for (auto& v : bu.values) {
      SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &v));
    }
  }

  uint32_t num_intervals;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_intervals));
  // Each interval record is at least 16 bytes on the wire (f32 mode).
  if (static_cast<size_t>(num_intervals) * 16 > reader->remaining()) {
    return Status::DataLoss("interval count exceeds input");
  }
  t.intervals.resize(num_intervals);
  for (auto& iv : t.intervals) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&iv.start));
    uint32_t shift;
    SBR_RETURN_IF_ERROR(reader->GetU32(&shift));
    iv.shift = static_cast<int32_t>(shift);
    SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.a));
    SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.b));
    if (t.quadratic) {
      SBR_RETURN_IF_ERROR(GetValue(reader, t.precision, &iv.c));
    }
  }
  return t;
}

// ----------------------------------------------------------------- framing

namespace {

constexpr uint32_t kFrameMagic = 0x53425246;  // "SBRF"

// Serializes the CRC-covered header fields (everything between the magic
// and the checksum) so writer and reader checksum identical bytes.
void PutCoveredHeader(BinaryWriter* w, const Frame& f) {
  w->PutU8(static_cast<uint8_t>(f.type));
  w->PutU32(f.sensor_id);
  w->PutU64(f.seq);
  w->PutU32(f.epoch);
  w->PutU32(static_cast<uint32_t>(f.payload.size()));
}

uint32_t FrameCrc(const Frame& f) {
  BinaryWriter covered;
  PutCoveredHeader(&covered, f);
  uint32_t state = Crc32Update(kCrc32Init, covered.buffer());
  state = Crc32Update(state, f.payload);
  return Crc32Finalize(state);
}

}  // namespace

void Frame::Serialize(BinaryWriter* writer) const {
  writer->PutU32(kFrameMagic);
  PutCoveredHeader(writer, *this);
  writer->PutU32(FrameCrc(*this));
  writer->PutRaw(payload);
}

StatusOr<Frame> Frame::Deserialize(BinaryReader* reader) {
  uint32_t magic;
  SBR_RETURN_IF_ERROR(reader->GetU32(&magic));
  if (magic != kFrameMagic) {
    return Status::DataLoss("bad frame magic");
  }
  Frame f;
  uint8_t type;
  SBR_RETURN_IF_ERROR(reader->GetU8(&type));
  if (type > static_cast<uint8_t>(FrameType::kSnapshot)) {
    return Status::DataLoss("invalid frame type " + std::to_string(type));
  }
  f.type = static_cast<FrameType>(type);
  SBR_RETURN_IF_ERROR(reader->GetU32(&f.sensor_id));
  SBR_RETURN_IF_ERROR(reader->GetU64(&f.seq));
  SBR_RETURN_IF_ERROR(reader->GetU32(&f.epoch));
  uint32_t len, crc;
  SBR_RETURN_IF_ERROR(reader->GetU32(&len));
  SBR_RETURN_IF_ERROR(reader->GetU32(&crc));
  SBR_RETURN_IF_ERROR(reader->GetRaw(len, &f.payload));
  if (crc != FrameCrc(f)) {
    return Status::DataLoss("frame CRC mismatch");
  }
  return f;
}

StatusOr<Frame> Frame::Parse(std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  auto f = Deserialize(&reader);
  if (!f.ok()) return f.status();
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes after frame");
  }
  return f;
}

Frame MakeDataFrame(uint32_t sensor_id, uint64_t seq, uint32_t epoch,
                    const Transmission& t) {
  Frame f;
  f.type = FrameType::kData;
  f.sensor_id = sensor_id;
  f.seq = seq;
  f.epoch = epoch;
  BinaryWriter w;
  t.Serialize(&w);
  f.payload = w.TakeBuffer();
  return f;
}

size_t BaseSnapshot::ValueCount() const {
  size_t total = 0;
  for (const BaseUpdate& s : slots) total += s.values.size() + 1;
  return total;
}

void BaseSnapshot::Serialize(BinaryWriter* writer) const {
  writer->PutU32(missing_chunks);
  writer->PutU64(timeline_chunks);
  writer->PutU32(w);
  writer->PutU8(static_cast<uint8_t>(base_kind));
  writer->PutU32(static_cast<uint32_t>(slots.size()));
  for (const BaseUpdate& s : slots) {
    writer->PutU32(s.slot);
    writer->PutDoubles(s.values);
  }
}

StatusOr<BaseSnapshot> BaseSnapshot::Deserialize(BinaryReader* reader) {
  BaseSnapshot snap;
  SBR_RETURN_IF_ERROR(reader->GetU32(&snap.missing_chunks));
  SBR_RETURN_IF_ERROR(reader->GetU64(&snap.timeline_chunks));
  SBR_RETURN_IF_ERROR(reader->GetU32(&snap.w));
  uint8_t kind;
  SBR_RETURN_IF_ERROR(reader->GetU8(&kind));
  if (kind > static_cast<uint8_t>(BaseKind::kNone)) {
    return Status::DataLoss("invalid snapshot base kind");
  }
  snap.base_kind = static_cast<BaseKind>(kind);
  uint32_t num_slots;
  SBR_RETURN_IF_ERROR(reader->GetU32(&num_slots));
  // Each slot carries at least a slot id and a doubles length prefix.
  if (static_cast<size_t>(num_slots) * 8 > reader->remaining()) {
    return Status::DataLoss("snapshot slot count exceeds input");
  }
  snap.slots.resize(num_slots);
  for (auto& s : snap.slots) {
    SBR_RETURN_IF_ERROR(reader->GetU32(&s.slot));
    SBR_RETURN_IF_ERROR(reader->GetDoubles(&s.values));
  }
  return snap;
}

Frame MakeSnapshotFrame(uint32_t sensor_id, uint64_t seq, uint32_t epoch,
                        const BaseSnapshot& snapshot) {
  Frame f;
  f.type = FrameType::kSnapshot;
  f.sensor_id = sensor_id;
  f.seq = seq;
  f.epoch = epoch;
  BinaryWriter w;
  snapshot.Serialize(&w);
  f.payload = w.TakeBuffer();
  return f;
}

}  // namespace sbr::core
