// Umbrella header for the SBR core library: include this to get the full
// encoder/decoder pipeline and every building block (regression kernels,
// BestMap, GetIntervals, GetBase, Search, the base-signal buffer and the
// transmission wire format).
#ifndef SBR_CORE_SBR_H_
#define SBR_CORE_SBR_H_

#include "core/adaptive.h"        // IWYU pragma: export
#include "core/base_signal.h"     // IWYU pragma: export
#include "core/best_map.h"        // IWYU pragma: export
#include "core/decoder.h"         // IWYU pragma: export
#include "core/encoder.h"         // IWYU pragma: export
#include "core/error_metric.h"    // IWYU pragma: export
#include "core/fixed_base.h"      // IWYU pragma: export
#include "core/get_base.h"        // IWYU pragma: export
#include "core/get_intervals.h"   // IWYU pragma: export
#include "core/interval.h"        // IWYU pragma: export
#include "core/regression.h"      // IWYU pragma: export
#include "core/search.h"          // IWYU pragma: export
#include "core/transmission.h"    // IWYU pragma: export

#endif  // SBR_CORE_SBR_H_
