// Error metrics the SBR pipeline can minimize. Changing the metric swaps
// the Regression kernel (paper Section 4.5) but leaves every other
// algorithm untouched.
#ifndef SBR_CORE_ERROR_METRIC_H_
#define SBR_CORE_ERROR_METRIC_H_

namespace sbr::core {

/// Objective minimized by the regression kernels and, transitively, by
/// BestMap / GetIntervals / GetBase / the full encoder.
enum class ErrorMetric {
  /// Sum of squared residuals (the paper's default).
  kSse,
  /// Sum of squared relative residuals, residual / max(|y|, floor).
  kSseRelative,
  /// Maximum absolute residual (minimax / Chebyshev fit).
  kMaxAbs,
};

/// Short name for logs and bench output.
inline const char* ErrorMetricName(ErrorMetric metric) {
  switch (metric) {
    case ErrorMetric::kSse:
      return "sse";
    case ErrorMetric::kSseRelative:
      return "sse_relative";
    case ErrorMetric::kMaxAbs:
      return "max_abs";
  }
  return "unknown";
}

/// Combines two per-interval errors into a running total: sum for the SSE
/// family, max for the minimax metric.
inline double CombineErrors(ErrorMetric metric, double acc, double err) {
  return metric == ErrorMetric::kMaxAbs ? (acc > err ? acc : err)
                                        : acc + err;
}

}  // namespace sbr::core

#endif  // SBR_CORE_ERROR_METRIC_H_
