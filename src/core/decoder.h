// SbrDecoder: the base-station-side inverse of SbrEncoder. Mirrors the
// sensor's base-signal buffer by applying the slot updates carried in each
// transmission, then reconstructs the approximate chunk from the interval
// records. Feeding it the encoder's transmissions in order reproduces the
// encoder-side approximation exactly (bit-for-bit; verified by tests).
#ifndef SBR_CORE_DECODER_H_
#define SBR_CORE_DECODER_H_

#include <vector>

#include "core/base_signal.h"
#include "core/transmission.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace sbr::core {

/// Decoder configuration: must match the encoder's m_base; everything else
/// is carried in transmission headers.
struct DecoderOptions {
  size_t m_base = 0;
  /// Upper bound on samples per chunk, guarding reconstruction buffers
  /// against corrupted geometry headers.
  size_t max_chunk_samples = size_t{1} << 26;
};

/// Stateful per-sensor decoder.
class SbrDecoder {
 public:
  explicit SbrDecoder(DecoderOptions options) : options_(options) {}

  /// Applies the transmission's base updates and reconstructs the chunk as
  /// the flat concatenated series (num_signals * chunk_len values).
  StatusOr<std::vector<double>> DecodeChunk(const Transmission& t);

  /// Like DecodeChunk but reshaped to a num_signals x chunk_len matrix.
  StatusOr<linalg::Matrix> DecodeChunkToMatrix(const Transmission& t);

  /// Re-establishes the base-signal mirror from a resync snapshot: the
  /// mirror is rebuilt from scratch with exactly the snapshot's slots, so
  /// decoder and encoder agree again regardless of what was lost.
  Status ApplySnapshot(const BaseSnapshot& snapshot);

  const BaseSignal& base_signal() const { return base_; }

 private:
  Status ApplyHeader(const Transmission& t);
  StatusOr<std::vector<double>> DecodeChunkImpl(const Transmission& t);

  DecoderOptions options_;
  size_t w_ = 0;
  BaseKind base_kind_ = BaseKind::kStored;
  BaseSignal base_;
  std::vector<double> dct_base_;
};

}  // namespace sbr::core

#endif  // SBR_CORE_DECODER_H_
