// BestMap (paper Algorithm 2): finds the best encoding of one data
// interval, either as a linear projection of some equal-length segment of
// the base signal (scanning all shifts) or via the linear-in-time
// fall-back regression.
#ifndef SBR_CORE_BEST_MAP_H_
#define SBR_CORE_BEST_MAP_H_

#include <span>

#include <cstdint>

#include "core/error_metric.h"
#include "core/interval.h"

namespace sbr::core {

class EncodeWorkspace;

/// Knobs shared by BestMap and GetIntervals.
struct BestMapOptions {
  ErrorMetric metric = ErrorMetric::kSse;
  /// Floor for relative-error denominators.
  double relative_floor = 1.0;
  /// When false, the linear-in-time fall-back is disabled and only base
  /// shifts are considered (used by the Table 5 experiment, which isolates
  /// base-signal quality). If the base signal is empty or the interval is
  /// longer than the shift limit the fall-back is still used as a last
  /// resort so every interval gets *some* encoding.
  bool allow_linear_fallback = true;
  /// Intervals longer than max_shift_multiple * W skip the shift scan
  /// (paper: 2, "reduced likelihood that large intervals map well").
  size_t max_shift_multiple = 2;
  /// Non-linear encoding extension (paper Section 6): fit
  /// y' = a x + b + c x^2 instead of a line. SSE metric only; each
  /// interval then costs 5 transmitted values instead of 4.
  bool quadratic = false;
  /// Worker threads for the shift scan: the shift range is partitioned
  /// into static chunks on the shared pool and the per-chunk bests are
  /// merged deterministically (lowest error, then lowest shift), so the
  /// selected interval is bitwise identical at any thread count. 1 (the
  /// default) keeps the scan on the calling thread.
  size_t threads = 1;
  /// Optional encode workspace (see core/workspace.h): supplies the shared
  /// base-signal prefix sums, the per-interval moment cache and per-thread
  /// arena scratch, making the scan allocation-free. The caller must have
  /// called BeginChunk for the current chunk and SetBase/AppendBase so the
  /// prefix table covers the `x` being scanned. Null (the default) keeps
  /// every kernel self-contained, materializing its state per call.
  /// Purely an allocation/reuse knob: results are bitwise identical with
  /// or without a workspace.
  EncodeWorkspace* workspace = nullptr;
  /// Arena index within the workspace: the ParallelFor chunk id of the
  /// enclosing parallel region (0 when called serially), so concurrent
  /// search probes never share scratch.
  uint32_t arena = 0;
};

/// Fills interval->shift / a / b / err with the best mapping of
/// Y[interval->start .. +length) found over the base signal `x` and the
/// fall-back. `w` is the base-interval width used for the length cutoff.
/// O(length + |x| * length) when the shift scan runs, O(length) otherwise.
/// A malformed interval (zero length, or start + length beyond `y`) is
/// rejected without touching `y`: it comes back as the linear-fallback
/// marker with infinite error and zero coefficients.
/// Exact error ties between shifts select the lowest shift, so the result
/// does not depend on scan order or on options.threads.
void BestMap(std::span<const double> x, std::span<const double> y,
             size_t w, const BestMapOptions& options, Interval* interval);

}  // namespace sbr::core

#endif  // SBR_CORE_BEST_MAP_H_
