// GetBase (paper Algorithm 4): selects which candidate base intervals
// (CBIs) — W-wide windows of the freshly collected data — are worth
// inserting into the base signal, by greedily maximizing the total
// reduction in approximation error over all CBIs relative to the best
// approximation available so far.
#ifndef SBR_CORE_GET_BASE_H_
#define SBR_CORE_GET_BASE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/error_metric.h"

namespace sbr::core {

class EncodeWorkspace;

/// Options for the base-construction algorithms.
struct GetBaseOptions {
  ErrorMetric metric = ErrorMetric::kSse;
  double relative_floor = 1.0;
  /// Candidates whose adjusted benefit falls to (or below) this value are
  /// not selected; the greedy loop stops early instead of padding the
  /// result with useless intervals.
  double min_benefit = 1e-9;
  /// Worker threads for the benefit-matrix build and the greedy
  /// re-scoring. Candidate rows are scored independently and merged with
  /// a deterministic reduction (higher benefit, then lower index), so the
  /// selection sequence is identical at any thread count.
  size_t threads = 1;
  /// Optional encode workspace: the per-candidate linear-in-time fits draw
  /// their ramp scratch from the workspace arena of the ParallelFor chunk
  /// they run on instead of thread-local fallback storage. BeginChunk must
  /// have sized the arena pool for `threads`. Bitwise-neutral.
  EncodeWorkspace* workspace = nullptr;
};

/// One selected base interval: W data values plus provenance for
/// diagnostics.
struct CandidateBaseInterval {
  std::vector<double> values;
  /// Index of the CBI in the row-major candidate enumeration.
  size_t source_index = 0;
  /// Benefit at the moment of selection.
  double benefit = 0.0;
};

/// Full-matrix GetBase: O(K^2 W) time to build the K x K error matrix plus
/// O(max_ins K^2) selection, O(K^2) space, where K = floor(M/W) * N.
/// `y` is the concatenated N-signal chunk, each signal `m` values.
/// Returns at most `max_ins` CBIs in selection order (greedy-best first).
std::vector<CandidateBaseInterval> GetBase(std::span<const double> y,
                                           size_t num_signals, size_t w,
                                           size_t max_ins,
                                           const GetBaseOptions& options);

/// Multi-rate form: signal rows of differing lengths (concatenated in
/// `y`, lengths in `row_lengths`); each row contributes floor(len / w)
/// candidate windows.
std::vector<CandidateBaseInterval> GetBaseMultiRate(
    std::span<const double> y, std::span<const size_t> row_lengths, size_t w,
    size_t max_ins, const GetBaseOptions& options);

/// Memory-constrained variant (paper Section 4.2, last paragraph): stores
/// only the best error per CBI instead of the K x K matrix. O(K) extra
/// space, O(max_ins K^2 W) time. Produces the same selection sequence as
/// GetBase (verified by tests).
std::vector<CandidateBaseInterval> GetBaseLowMem(std::span<const double> y,
                                                 size_t num_signals, size_t w,
                                                 size_t max_ins,
                                                 const GetBaseOptions& options);

}  // namespace sbr::core

#endif  // SBR_CORE_GET_BASE_H_
