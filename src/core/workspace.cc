#include "core/workspace.h"

#include <algorithm>
#include <cmath>

namespace sbr::core {

void EncodeWorkspace::BeginChunk(size_t threads) {
  const size_t pool = std::max<size_t>(threads, 1);
  if (arenas_.size() < pool) arenas_.resize(pool);
  trial_.clear();
  prefix_.Reset({});
  {
    std::lock_guard<std::mutex> lock(mu_);
    sse_cache_.clear();
    relative_cache_.clear();
    stats_ = WorkspaceStats{};
  }
}

void EncodeWorkspace::ReserveBase(size_t total) {
  trial_.reserve(total);
  prefix_.Reserve(total);
}

void EncodeWorkspace::SetBase(std::span<const double> x) {
  trial_.assign(x.begin(), x.end());
  prefix_.Reset(x);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prefix_resets;
}

void EncodeWorkspace::AppendBase(std::span<const double> values) {
  trial_.insert(trial_.end(), values.begin(), values.end());
  for (double v : values) prefix_.Append(v);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.prefix_appends += values.size();
}

SseMoments EncodeWorkspace::Sse(std::span<const double> yseg, size_t start) {
  const uint64_t key = Key(start, yseg.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sse_cache_.find(key);
    if (it != sse_cache_.end()) {
      ++stats_.moment_hits;
      return it->second;
    }
  }
  // The exact accumulation loop of the workspace-less kernel: summing in
  // index order keeps the cached moments bitwise identical to a local
  // recomputation.
  SseMoments m;
  for (double v : yseg) {
    m.sum_y += v;
    m.sum_y2 += v * v;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.moment_misses;
  sse_cache_.emplace(key, m);
  return m;
}

RelativeMoments EncodeWorkspace::Relative(std::span<const double> yseg,
                                          size_t start, double floor,
                                          EncodeArena* arena) {
  const size_t len = yseg.size();
  std::vector<double>& w = arena->weights();
  std::vector<double>& wy = arena->weighted_values();
  w.resize(len);
  wy.resize(len);

  const uint64_t key = Key(start, len);
  bool cached = false;
  RelativeMoments m;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = relative_cache_.find(key);
    if (it != relative_cache_.end()) {
      ++stats_.moment_hits;
      m = it->second;
      cached = true;
    }
  }
  if (cached) {
    // Moments are cached but this arena's weight arrays may hold another
    // interval's values; refill them. Each element is independent of the
    // others, so the fill needs no particular order to stay byte-stable.
    for (size_t i = 0; i < len; ++i) {
      const double d = std::max(std::abs(yseg[i]), floor);
      w[i] = 1.0 / (d * d);
      wy[i] = w[i] * yseg[i];
    }
    return m;
  }
  // Miss path: the exact loop of ComputeRelativeMoments, weights and
  // running sums interleaved in index order.
  for (size_t i = 0; i < len; ++i) {
    const double d = std::max(std::abs(yseg[i]), floor);
    w[i] = 1.0 / (d * d);
    wy[i] = w[i] * yseg[i];
    m.sw += w[i];
    m.swy += wy[i];
    m.swy2 += wy[i] * yseg[i];
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.moment_misses;
  relative_cache_.emplace(key, m);
  return m;
}

WorkspaceStats EncodeWorkspace::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sbr::core
