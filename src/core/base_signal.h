// The base-signal buffer: a fixed-capacity, slot-organized collection of
// W-wide value intervals kept in sensor memory and mirrored at the base
// station. Slots are concatenated into one flat series so that interval
// mappings may shift across slot boundaries, exactly as Algorithm 3
// treats the base signal. Eviction is LFU over per-slot use counts
// (paper Algorithm 5 lines 10-13).
#ifndef SBR_CORE_BASE_SIGNAL_H_
#define SBR_CORE_BASE_SIGNAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace sbr::core {

/// Eviction policies; the paper prescribes LFU, the alternatives exist for
/// the ablation bench.
enum class EvictionPolicy {
  kLfu,     ///< least-frequently-used (paper)
  kFifo,    ///< oldest insertion first
  kRandom,  ///< uniform random old slot (seeded, deterministic)
};

/// Slot-organized base-signal buffer.
class BaseSignal {
 public:
  BaseSignal() = default;

  /// `w`: slot width in values. `capacity_values`: M_base; the number of
  /// slots is floor(capacity_values / w).
  BaseSignal(size_t w, size_t capacity_values,
             EvictionPolicy policy = EvictionPolicy::kLfu);

  size_t w() const { return w_; }
  size_t num_slots() const { return num_slots_; }
  size_t used_slots() const { return used_slots_; }
  bool empty() const { return used_slots_ == 0; }

  /// Flat concatenated view of the populated slots (used_slots * w values).
  std::span<const double> values() const {
    return {values_.data(), used_slots_ * w_};
  }

  /// Per-slot use count (number of encoded intervals whose base mapping
  /// overlapped the slot, accumulated over all transmissions).
  uint64_t use_count(size_t slot) const { return use_counts_[slot]; }

  /// Chooses `ins` slot positions for new intervals: free slots first (in
  /// order), then evictions of existing slots per the policy. `ins` must
  /// not exceed num_slots(). The returned order matches the order the
  /// caller should write its intervals in.
  std::vector<size_t> PlanPlacement(size_t ins);

  /// Writes `vals` (exactly w values) into `slot`. Appending to the first
  /// unused slot grows the signal; writing past it is an error. Resets the
  /// slot's use count.
  Status Overwrite(size_t slot, std::span<const double> vals);

  /// Records that an encoded interval mapped to [shift, shift + length) of
  /// the flat signal: increments the use count of every overlapped slot.
  void RecordUse(size_t shift, size_t length);

  /// Monotone counter of Overwrite calls, used for FIFO ordering and
  /// LFU tie-breaking (older slot evicted first).
  uint64_t insertions() const { return insertion_clock_; }

  /// Serializes the complete eviction state (values, use counts, insertion
  /// order, random stream) so a restored signal plans byte-identical
  /// placements.
  void SaveState(BinaryWriter* writer) const;
  static StatusOr<BaseSignal> LoadState(BinaryReader* reader);

 private:
  size_t w_ = 0;
  size_t num_slots_ = 0;
  size_t used_slots_ = 0;
  EvictionPolicy policy_ = EvictionPolicy::kLfu;
  std::vector<double> values_;        // num_slots * w, flat
  std::vector<uint64_t> use_counts_;  // per slot
  std::vector<uint64_t> inserted_at_; // insertion_clock_ at last Overwrite
  uint64_t insertion_clock_ = 0;
  uint64_t random_state_ = 0x5bd1e995;  // for kRandom, deterministic
};

}  // namespace sbr::core

#endif  // SBR_CORE_BASE_SIGNAL_H_
