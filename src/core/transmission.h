// The wire format of one sensor-to-base-station transmission (paper
// Section 3.2 / Figure 1): the newly inserted base intervals with their
// slot positions, followed by the interval records approximating the data
// chunk. Value accounting (how many of the TotalBand "values" each part
// consumes) lives here so encoder, decoder, benches and the network
// simulator all agree.
#ifndef SBR_CORE_TRANSMISSION_H_
#define SBR_CORE_TRANSMISSION_H_

#include <cstdint>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace sbr::core {

/// How the decoder obtains the base signal.
enum class BaseKind : uint8_t {
  /// Slots are populated via BaseUpdate records (GetBase / SVD bases).
  kStored = 0,
  /// The base is the fixed DCT cosine dictionary, regenerated locally;
  /// nothing is transmitted or stored against M_base.
  kDctFixed = 1,
  /// No base signal: every interval uses the linear-in-time encoding and
  /// interval records carry no shift (3 values each).
  kNone = 2,
};

/// Wire precision for coefficients and base-signal values. kFloat32 is
/// the "compact" mode matching the paper's 32-bit value accounting (and
/// the energy model's default bits_per_value = 32); kFloat64 is lossless
/// with respect to the encoder's arithmetic.
enum class WirePrecision : uint8_t {
  kFloat64 = 0,
  kFloat32 = 1,
};

/// One base-signal slot write: `w` values placed at slot `slot`.
struct BaseUpdate {
  uint32_t slot = 0;
  std::vector<double> values;
};

/// One approximation interval as transmitted: the interval length is not
/// sent; the receiver sorts records by start and infers lengths from the
/// gaps (paper Section 4.2).
struct IntervalRecord {
  uint32_t start = 0;
  int32_t shift = -1;  ///< -1 = linear-in-time fall-back
  double a = 0.0;
  double b = 0.0;
  /// Quadratic coefficient; only transmitted when Transmission::quadratic
  /// is set (the Section 6 non-linear encoding extension).
  double c = 0.0;
};

/// One transmission.
struct Transmission {
  /// Geometry header, validated by the decoder.
  uint32_t num_signals = 0;
  uint32_t chunk_len = 0;  ///< M: values per signal in this chunk
  /// Multi-rate chunks: when non-empty (size == num_signals), per-signal
  /// lengths replace the uniform chunk_len (which is then 0).
  std::vector<uint32_t> signal_lengths;
  uint32_t w = 0;          ///< base-interval width
  BaseKind base_kind = BaseKind::kStored;
  /// Quadratic-encoding extension: interval records carry a third
  /// coefficient and cost one extra value each.
  bool quadratic = false;
  /// Wire precision for doubles (see WirePrecision).
  WirePrecision precision = WirePrecision::kFloat64;

  std::vector<BaseUpdate> base_updates;
  std::vector<IntervalRecord> intervals;

  /// Abstract transmission size in "values" (the unit of TotalBand):
  /// (w + 1) per base update, 4 per interval with a shift pointer
  /// (5 when quadratic), 3 per interval when base_kind == kNone
  /// (4 when quadratic).
  size_t ValueCount() const;

  /// Total values in the chunk this transmission encodes.
  size_t TotalSamples() const;

  /// Bits on the air under the declared precision (ValueCount values of
  /// 32 or 64 bits each) — what the radio energy model charges for.
  size_t WireBits() const {
    return ValueCount() * (precision == WirePrecision::kFloat32 ? 32 : 64);
  }

  /// Binary wire encoding.
  void Serialize(BinaryWriter* writer) const;
  static StatusOr<Transmission> Deserialize(BinaryReader* reader);
};

}  // namespace sbr::core

#endif  // SBR_CORE_TRANSMISSION_H_
