// The wire format of one sensor-to-base-station transmission (paper
// Section 3.2 / Figure 1): the newly inserted base intervals with their
// slot positions, followed by the interval records approximating the data
// chunk. Value accounting (how many of the TotalBand "values" each part
// consumes) lives here so encoder, decoder, benches and the network
// simulator all agree.
#ifndef SBR_CORE_TRANSMISSION_H_
#define SBR_CORE_TRANSMISSION_H_

#include <cstdint>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace sbr::core {

/// How the decoder obtains the base signal.
enum class BaseKind : uint8_t {
  /// Slots are populated via BaseUpdate records (GetBase / SVD bases).
  kStored = 0,
  /// The base is the fixed DCT cosine dictionary, regenerated locally;
  /// nothing is transmitted or stored against M_base.
  kDctFixed = 1,
  /// No base signal: every interval uses the linear-in-time encoding and
  /// interval records carry no shift (3 values each).
  kNone = 2,
};

/// Wire precision for coefficients and base-signal values. kFloat32 is
/// the "compact" mode matching the paper's 32-bit value accounting (and
/// the energy model's default bits_per_value = 32); kFloat64 is lossless
/// with respect to the encoder's arithmetic.
enum class WirePrecision : uint8_t {
  kFloat64 = 0,
  kFloat32 = 1,
};

/// One base-signal slot write: `w` values placed at slot `slot`.
struct BaseUpdate {
  uint32_t slot = 0;
  std::vector<double> values;
};

/// One approximation interval as transmitted: the interval length is not
/// sent; the receiver sorts records by start and infers lengths from the
/// gaps (paper Section 4.2).
struct IntervalRecord {
  uint32_t start = 0;
  int32_t shift = -1;  ///< -1 = linear-in-time fall-back
  double a = 0.0;
  double b = 0.0;
  /// Quadratic coefficient; only transmitted when Transmission::quadratic
  /// is set (the Section 6 non-linear encoding extension).
  double c = 0.0;
};

/// One transmission.
struct Transmission {
  /// Geometry header, validated by the decoder.
  uint32_t num_signals = 0;
  uint32_t chunk_len = 0;  ///< M: values per signal in this chunk
  /// Multi-rate chunks: when non-empty (size == num_signals), per-signal
  /// lengths replace the uniform chunk_len (which is then 0).
  std::vector<uint32_t> signal_lengths;
  uint32_t w = 0;          ///< base-interval width
  BaseKind base_kind = BaseKind::kStored;
  /// Quadratic-encoding extension: interval records carry a third
  /// coefficient and cost one extra value each.
  bool quadratic = false;
  /// Wire precision for doubles (see WirePrecision).
  WirePrecision precision = WirePrecision::kFloat64;

  std::vector<BaseUpdate> base_updates;
  std::vector<IntervalRecord> intervals;

  /// Abstract transmission size in "values" (the unit of TotalBand):
  /// (w + 1) per base update, 4 per interval with a shift pointer
  /// (5 when quadratic), 3 per interval when base_kind == kNone
  /// (4 when quadratic).
  size_t ValueCount() const;

  /// Total values in the chunk this transmission encodes.
  size_t TotalSamples() const;

  /// Bits on the air under the declared precision (ValueCount values of
  /// 32 or 64 bits each) — what the radio energy model charges for.
  size_t WireBits() const {
    return ValueCount() * (precision == WirePrecision::kFloat32 ? 32 : 64);
  }

  /// Binary wire encoding.
  void Serialize(BinaryWriter* writer) const;
  static StatusOr<Transmission> Deserialize(BinaryReader* reader);
};

// ---------------------------------------------------------------------------
// On-air framing. SBR transmissions are stateful (base-signal updates must
// be applied in order), so every radio transmission travels inside a framed
// envelope {sensor_id, sequence number, base-signal epoch, payload length,
// CRC32}: corruption and truncation are detected by checksum, and loss /
// duplication / reordering are detected by the sequence number, before any
// byte reaches the decoder.

/// What the frame payload contains.
enum class FrameType : uint8_t {
  /// A serialized Transmission (one encoded data chunk).
  kData = 0,
  /// A serialized BaseSnapshot (resync: full base-signal state dump).
  kSnapshot = 1,
};

/// One framed on-air message.
struct Frame {
  FrameType type = FrameType::kData;
  uint32_t sensor_id = 0;
  /// Per-sensor sequence number; every frame (data or snapshot) consumes
  /// one. The receiver accepts seq == expected, buffers a bounded window
  /// ahead, and suppresses anything behind.
  uint64_t seq = 0;
  /// Base-signal epoch. Incremented by the sensor each time it ships a
  /// snapshot to re-establish a common base signal; data frames from a
  /// stale epoch are rejected, never decoded.
  uint32_t epoch = 0;
  std::vector<uint8_t> payload;

  /// Serialized size in bytes (header + payload).
  size_t WireBytes() const { return kHeaderBytes + payload.size(); }

  /// Header bytes on the wire: magic, type, sensor, seq, epoch, len, crc.
  static constexpr size_t kHeaderBytes = 4 + 1 + 4 + 8 + 4 + 4 + 4;

  void Serialize(BinaryWriter* writer) const;
  /// Returns DataLoss on bad magic, truncation, or CRC mismatch.
  static StatusOr<Frame> Deserialize(BinaryReader* reader);
  static StatusOr<Frame> Parse(std::span<const uint8_t> bytes);
};

/// Wraps one encoded chunk into a data frame.
Frame MakeDataFrame(uint32_t sensor_id, uint64_t seq, uint32_t epoch,
                    const Transmission& t);

/// Resync payload: the sensor's full base-signal state plus the number of
/// data chunks that were lost for good (never delivered, not re-encoded)
/// since the last synchronized frame. The receiver records those chunks as
/// explicit DataLoss gaps so the timeline stays aligned.
struct BaseSnapshot {
  uint32_t missing_chunks = 0;
  /// Chunks the sensor has *resolved* (delivered or written off as lost)
  /// over its whole lifetime. Lets a receiver whose log lost records (power
  /// loss, mid-log corruption) rebuild the timeline length: any shortfall
  /// versus this count is recorded as DataLoss gaps before the snapshot.
  /// A 0 here means "not tracked": the receiver falls back to summing
  /// missing_chunks onto its own length. Senders that report losses must
  /// therefore also report deliveries (MarkChunkDelivered per accepted
  /// chunk) — a nonzero count that undercounts deliveries would understate
  /// the timeline, so the receiver takes max(timeline_chunks, own length).
  uint64_t timeline_chunks = 0;
  uint32_t w = 0;  ///< base-interval width; 0 = encoder not warmed up yet
  BaseKind base_kind = BaseKind::kStored;
  /// Populated slots in slot order (each exactly w values).
  std::vector<BaseUpdate> slots;

  /// Values the radio model charges for (w + 1 per slot, as BaseUpdates).
  size_t ValueCount() const;

  void Serialize(BinaryWriter* writer) const;
  static StatusOr<BaseSnapshot> Deserialize(BinaryReader* reader);
};

/// Wraps a base-signal snapshot into a resync frame.
Frame MakeSnapshotFrame(uint32_t sensor_id, uint64_t seq, uint32_t epoch,
                        const BaseSnapshot& snapshot);

}  // namespace sbr::core

#endif  // SBR_CORE_TRANSMISSION_H_
