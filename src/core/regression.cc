#include "core/regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/workspace.h"
#include "util/stats.h"

namespace sbr::core {
namespace {

// The single time-ramp code path: every linear-in-time fit materializes
// t = 0..n-1 from an EncodeArena's grow-only buffer. Workspace callers
// pass their per-thread arena; workspace-less callers share one
// thread-local fallback arena, so no call allocates a fresh ramp.
std::span<const double> TimeRampFor(size_t n, EncodeArena* arena) {
  if (arena != nullptr) return arena->TimeRamp(n);
  static thread_local EncodeArena fallback;
  return fallback.TimeRamp(n);
}

// Treats near-zero normal-equation denominators as degenerate; relative to
// the magnitude of the sums involved.
constexpr double kDegenerate = 1e-12;

// Width of the minimal vertical strip containing the points when lines of
// slope a are used: f(a) = max_i (y_i - a x_i) - min_i (y_i - a x_i).
// Also reports the centering intercept b.
double StripWidth(std::span<const double> x, std::span<const double> y,
                  double a, double* b_out) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - a * x[i];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (b_out != nullptr) *b_out = 0.5 * (lo + hi);
  return hi - lo;
}

}  // namespace

RegressionResult FitSse(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  RegressionResult r;
  if (n == 0) return r;

  double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xy += x[i] * y[i];
    sum_x2 += x[i] * x[i];
    sum_y2 += y[i] * y[i];
  }
  const double len = static_cast<double>(n);
  const double denom = len * sum_x2 - sum_x * sum_x;
  const double scale = std::max(len * sum_x2, sum_x * sum_x);
  if (denom <= kDegenerate * std::max(scale, 1.0)) {
    // x carries no information: best constant fit.
    r.a = 0.0;
    r.b = sum_y / len;
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) err += (y[i] - r.b) * (y[i] - r.b);
    r.err = err;
    return r;
  }
  r.a = (len * sum_xy - sum_x * sum_y) / denom;
  r.b = (sum_y - r.a * sum_x) / len;
  // Residual sum of squares via the normal equations; clamp tiny negative
  // round-off to zero.
  r.err = std::max(0.0, sum_y2 - r.a * sum_xy - r.b * sum_y);
  return r;
}

RegressionResult FitSseRelative(std::span<const double> x,
                                std::span<const double> y, double floor) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  RegressionResult r;
  if (n == 0) return r;

  // Weighted least squares, w_i = 1 / max(|y_i|, floor)^2.
  double sw = 0.0, swx = 0.0, swy = 0.0, swxy = 0.0, swx2 = 0.0, swy2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::max(std::abs(y[i]), floor);
    const double w = 1.0 / (d * d);
    sw += w;
    swx += w * x[i];
    swy += w * y[i];
    swxy += w * x[i] * y[i];
    swx2 += w * x[i] * x[i];
    swy2 += w * y[i] * y[i];
  }
  const double denom = sw * swx2 - swx * swx;
  const double scale = std::max(sw * swx2, swx * swx);
  if (denom <= kDegenerate * std::max(scale, 1.0)) {
    r.a = 0.0;
    r.b = swy / sw;
    r.err = std::max(0.0, swy2 - 2.0 * r.b * swy + r.b * r.b * sw);
    return r;
  }
  r.a = (sw * swxy - swx * swy) / denom;
  r.b = (swy - r.a * swx) / sw;
  // Weighted residual sum via the weighted normal equations.
  r.err = std::max(0.0, swy2 - r.a * swxy - r.b * swy);
  return r;
}

RegressionResult FitMaxAbs(std::span<const double> x,
                           std::span<const double> y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  RegressionResult r;
  if (n == 0) return r;
  if (n == 1) {
    r.a = 0.0;
    r.b = y[0];
    r.err = 0.0;
    return r;
  }

  // Bracket the optimal slope by the extreme pairwise slopes; the SSE slope
  // is a good interior seed. f(a) is convex and piecewise linear.
  const RegressionResult sse = FitSse(x, y);
  auto [xmin, xmax] = std::minmax_element(x.begin(), x.end());
  const double xspan = *xmax - *xmin;
  if (xspan <= 0.0) {
    // Vertical stack of points: slope is irrelevant, center the band.
    double b = 0.0;
    const double width = StripWidth(x, y, 0.0, &b);
    return {0.0, b, 0.5 * width};
  }
  auto [ymin, ymax] = std::minmax_element(y.begin(), y.end());
  const double max_slope = 2.0 * (*ymax - *ymin) / xspan + 1.0;
  double lo = std::min(sse.a, -max_slope);
  double hi = std::max(sse.a, max_slope);

  // Ternary search on the convex width function.
  for (int iter = 0; iter < 200 && hi - lo > 1e-14 * (1.0 + std::abs(lo));
       ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (StripWidth(x, y, m1, nullptr) <= StripWidth(x, y, m2, nullptr)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  const double a = 0.5 * (lo + hi);
  double b = 0.0;
  const double width = StripWidth(x, y, a, &b);
  r.a = a;
  r.b = b;
  r.err = 0.5 * width;

  // Guard: never return a fit worse than the SSE line under this metric.
  double b_sse = 0.0;
  const double width_sse = StripWidth(x, y, sse.a, &b_sse);
  if (0.5 * width_sse < r.err) {
    r.a = sse.a;
    r.b = b_sse;
    r.err = 0.5 * width_sse;
  }
  return r;
}

RegressionResult Fit(ErrorMetric metric, std::span<const double> x,
                     std::span<const double> y, double relative_floor) {
  switch (metric) {
    case ErrorMetric::kSse:
      return FitSse(x, y);
    case ErrorMetric::kSseRelative:
      return FitSseRelative(x, y, relative_floor);
    case ErrorMetric::kMaxAbs:
      return FitMaxAbs(x, y);
  }
  return {};
}

RegressionResult FitTime(ErrorMetric metric, std::span<const double> y,
                         double relative_floor, EncodeArena* arena) {
  // Materializing the ramp keeps all kernels on one code path; interval
  // lengths are at most a few thousand so this is cheap relative to the
  // shift scans that dominate.
  return Fit(metric, TimeRampFor(y.size(), arena), y, relative_floor);
}

QuadraticResult FitQuadratic(std::span<const double> x,
                             std::span<const double> y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  QuadraticResult q;
  if (n == 0) return q;

  // Normal equations for the basis {x, 1, x^2}:
  //   [Sx2  Sx   Sx3 ] [a]   [Sxy ]
  //   [Sx   n    Sx2 ] [b] = [Sy  ]
  //   [Sx3  Sx2  Sx4 ] [c]   [Sx2y]
  double sx = 0, sx2 = 0, sx3 = 0, sx4 = 0;
  double sy = 0, sy2 = 0, sxy = 0, sx2y = 0;
  for (size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double xi2 = xi * xi;
    sx += xi;
    sx2 += xi2;
    sx3 += xi2 * xi;
    sx4 += xi2 * xi2;
    sy += y[i];
    sy2 += y[i] * y[i];
    sxy += xi * y[i];
    sx2y += xi2 * y[i];
  }
  double m[3][4] = {{sx2, sx, sx3, sxy},
                    {sx, static_cast<double>(n), sx2, sy},
                    {sx3, sx2, sx4, sx2y}};
  // Gaussian elimination with partial pivoting.
  bool singular = false;
  for (int col = 0; col < 3 && !singular; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    for (int k = 0; k < 4; ++k) std::swap(m[col][k], m[pivot][k]);
    if (std::abs(m[col][col]) < 1e-10 * std::max(1.0, sx4)) {
      singular = true;
      break;
    }
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (int k = col; k < 4; ++k) m[r][k] -= f * m[col][k];
    }
  }
  if (!singular) {
    q.a = m[0][3] / m[0][0];
    q.b = m[1][3] / m[1][1];
    q.c = m[2][3] / m[2][2];
    // Residual via the normal equations, clamped against round-off.
    q.err = std::max(0.0, sy2 - q.a * sxy - q.b * sy - q.c * sx2y);
    // Guard against conditioning trouble: verify directly and fall back to
    // the linear fit if the quadratic is not actually better.
    const double direct = [&] {
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        const double r = y[i] - (q.a * x[i] + q.b + q.c * x[i] * x[i]);
        acc += r * r;
      }
      return acc;
    }();
    if (std::isfinite(direct)) q.err = direct;
    else singular = true;
  }
  const RegressionResult lin = FitSse(x, y);
  if (singular || !(q.err <= lin.err)) {
    q.a = lin.a;
    q.b = lin.b;
    q.c = 0.0;
    q.err = lin.err;
  }
  return q;
}

QuadraticResult FitTimeQuadratic(std::span<const double> y,
                                 EncodeArena* arena) {
  return FitQuadratic(TimeRampFor(y.size(), arena), y);
}

double EvaluateLine(ErrorMetric metric, std::span<const double> x,
                    std::span<const double> y, double a, double b,
                    double relative_floor) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - (a * x[i] + b);
    switch (metric) {
      case ErrorMetric::kSse:
        acc += resid * resid;
        break;
      case ErrorMetric::kSseRelative: {
        const double d = std::max(std::abs(y[i]), relative_floor);
        acc += (resid / d) * (resid / d);
        break;
      }
      case ErrorMetric::kMaxAbs:
        acc = std::max(acc, std::abs(resid));
        break;
    }
  }
  return acc;
}

}  // namespace sbr::core
