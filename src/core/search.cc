#include "core/search.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace sbr::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class Prober {
 public:
  explicit Prober(const SearchContext& ctx)
      : ctx_(ctx),
        errors_(ctx.candidates->size() + 1, kNan) {}

  // Memoized Algorithm 6: total error with the first `pos` candidates
  // appended to the current base signal.
  double Error(size_t pos) {
    assert(pos < errors_.size());
    if (!std::isnan(errors_[pos])) return errors_[pos];
    ++probes_;
    const size_t insert_cost = pos * (ctx_.w + 1);
    if (insert_cost >= ctx_.total_band) {
      return errors_[pos] = kInf;
    }
    const size_t budget = ctx_.total_band - insert_cost;

    std::vector<double> trial(ctx_.current_base.begin(),
                              ctx_.current_base.end());
    for (size_t i = 0; i < pos; ++i) {
      const auto& vals = (*ctx_.candidates)[i].values;
      trial.insert(trial.end(), vals.begin(), vals.end());
    }
    auto approx =
        ctx_.row_lengths.empty()
            ? GetIntervals(trial, ctx_.y, ctx_.num_signals, budget, ctx_.w,
                           ctx_.get_intervals)
            : GetIntervalsMultiRate(trial, ctx_.y, ctx_.row_lengths, budget,
                                    ctx_.w, ctx_.get_intervals);
    return errors_[pos] = approx.ok() ? approx->total_error : kInf;
  }

  size_t probes() const { return probes_; }
  std::vector<double> TakeErrors() { return std::move(errors_); }

 private:
  const SearchContext& ctx_;
  std::vector<double> errors_;
  size_t probes_ = 0;
};

// Algorithm 7, verbatim structure. Returns the position of a local (and,
// under the unimodality assumption, global) minimum in [start, end].
size_t Search(Prober& prober, size_t start, size_t end) {
  if (end == start) return start;
  const size_t middle = (start + end) / 2;
  const double e_middle = prober.Error(middle);
  const double e_start = prober.Error(start);
  if (e_middle > e_start) {
    const double e_end = prober.Error(end);
    if (e_end > e_start) {
      return Search(prober, start, middle);
    }
    return Search(prober, middle, end);
  }
  const double e_next = prober.Error(middle + 1);
  if (e_next < e_middle) {
    return Search(prober, middle + 1, end);
  }
  return Search(prober, start, middle);
}

}  // namespace

SearchResult SearchInsertCount(const SearchContext& ctx) {
  assert(ctx.candidates != nullptr);
  Prober prober(ctx);
  SearchResult result;
  result.ins = Search(prober, 0, ctx.candidates->size());
  // Guard the unimodality assumption: never return a position whose error
  // is infinite (budget exhausted) or worse than inserting nothing.
  if (!(prober.Error(result.ins) < kInf) ||
      prober.Error(result.ins) > prober.Error(0)) {
    result.ins = 0;
  }
  result.probes = prober.probes();
  result.errors = prober.TakeErrors();
  return result;
}

}  // namespace sbr::core
