#include "core/search.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/thread_pool.h"

namespace sbr::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class Prober {
 public:
  explicit Prober(const SearchContext& ctx)
      : ctx_(ctx),
        threads_(ctx.get_intervals.best_map.threads),
        errors_(ctx.candidates->size() + 1, kNan) {}

  // Memoized Algorithm 6: total error with the first `pos` candidates
  // appended to the current base signal.
  double Error(size_t pos) {
    assert(pos < errors_.size());
    if (std::isnan(errors_[pos])) {
      ++probes_;
      Evaluate(pos);
    }
    return errors_[pos];
  }

  // Evaluates the listed probes that are still unprobed, concurrently when
  // the encoder runs threaded. Each probe is an independent GetIntervals
  // run writing a distinct memo slot, so the table fills with exactly the
  // values — and, for unconditionally-needed probes, exactly the probe
  // count — the serial order would produce.
  void Prefetch(std::initializer_list<size_t> positions) {
    std::vector<size_t> missing;
    for (size_t pos : positions) {
      assert(pos < errors_.size());
      if (std::isnan(errors_[pos]) &&
          std::find(missing.begin(), missing.end(), pos) == missing.end()) {
        missing.push_back(pos);
      }
    }
    probes_ += missing.size();
    if (threads_ <= 1 || missing.size() < 2) {
      for (size_t pos : missing) Evaluate(pos);
      return;
    }
    util::ParallelFor(threads_, missing.size(),
                      [&](size_t, size_t begin, size_t end) {
                        for (size_t m = begin; m < end; ++m) {
                          Evaluate(missing[m]);
                        }
                      });
  }

  size_t probes() const { return probes_; }
  std::vector<double> TakeErrors() { return std::move(errors_); }

 private:
  void Evaluate(size_t pos) {
    const size_t insert_cost = pos * (ctx_.w + 1);
    if (insert_cost >= ctx_.total_band) {
      errors_[pos] = kInf;
      return;
    }
    const size_t budget = ctx_.total_band - insert_cost;

    std::vector<double> trial(ctx_.current_base.begin(),
                              ctx_.current_base.end());
    for (size_t i = 0; i < pos; ++i) {
      const auto& vals = (*ctx_.candidates)[i].values;
      trial.insert(trial.end(), vals.begin(), vals.end());
    }
    auto approx =
        ctx_.row_lengths.empty()
            ? GetIntervals(trial, ctx_.y, ctx_.num_signals, budget, ctx_.w,
                           ctx_.get_intervals)
            : GetIntervalsMultiRate(trial, ctx_.y, ctx_.row_lengths, budget,
                                    ctx_.w, ctx_.get_intervals);
    errors_[pos] = approx.ok() ? approx->total_error : kInf;
  }

  const SearchContext& ctx_;
  size_t threads_ = 1;
  std::vector<double> errors_;
  size_t probes_ = 0;
};

// Algorithm 7, verbatim structure. Returns the position of a local (and,
// under the unimodality assumption, global) minimum in [start, end].
size_t Search(Prober& prober, size_t start, size_t end) {
  if (end == start) return start;
  const size_t middle = (start + end) / 2;
  // Both probes are needed unconditionally, so they evaluate concurrently;
  // the conditional third probe (end, or middle + 1) stays lazy so the
  // probe set — and therefore the memo table — matches the serial run.
  prober.Prefetch({middle, start});
  const double e_middle = prober.Error(middle);
  const double e_start = prober.Error(start);
  if (e_middle > e_start) {
    const double e_end = prober.Error(end);
    if (e_end > e_start) {
      return Search(prober, start, middle);
    }
    return Search(prober, middle, end);
  }
  const double e_next = prober.Error(middle + 1);
  if (e_next < e_middle) {
    return Search(prober, middle + 1, end);
  }
  return Search(prober, start, middle);
}

}  // namespace

SearchResult SearchInsertCount(const SearchContext& ctx) {
  assert(ctx.candidates != nullptr);
  Prober prober(ctx);
  SearchResult result;
  result.ins = Search(prober, 0, ctx.candidates->size());
  // Guard the unimodality assumption: never return a position whose error
  // is infinite (budget exhausted) or worse than inserting nothing.
  if (!(prober.Error(result.ins) < kInf) ||
      prober.Error(result.ins) > prober.Error(0)) {
    result.ins = 0;
  }
  result.probes = prober.probes();
  result.errors = prober.TakeErrors();
  return result;
}

}  // namespace sbr::core
