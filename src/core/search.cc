#include "core/search.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sbr::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class Prober {
 public:
  explicit Prober(const SearchContext& ctx)
      : ctx_(ctx),
        threads_(ctx.get_intervals.best_map.threads),
        workspace_(ctx.workspace),
        errors_(ctx.candidates->size() + 1, kNan) {
    if (workspace_ == nullptr) return;
    // Build the maximal trial base once: the trial signal of probe `pos`
    // is a prefix of the trial signal of probe `pos + 1`, so one shared
    // buffer (and one incrementally extended prefix-sum table) serves
    // every probe as a read-only prefix view. offsets_[pos] is the trial
    // length probe `pos` sees.
    size_t total = ctx.current_base.size();
    for (const auto& cand : *ctx.candidates) total += cand.values.size();
    workspace_->ReserveBase(total);
    workspace_->SetBase(ctx.current_base);
    offsets_.reserve(ctx.candidates->size() + 1);
    offsets_.push_back(workspace_->trial_size());
    for (const auto& cand : *ctx.candidates) {
      workspace_->AppendBase(cand.values);
      offsets_.push_back(workspace_->trial_size());
    }
  }

  // Memoized Algorithm 6: total error with the first `pos` candidates
  // appended to the current base signal.
  double Error(size_t pos) {
    assert(pos < errors_.size());
    if (std::isnan(errors_[pos])) {
      ++probes_;
      Evaluate(pos, /*arena=*/0);
    }
    return errors_[pos];
  }

  // Evaluates the listed probes that are still unprobed, concurrently when
  // the encoder runs threaded. Each probe is an independent GetIntervals
  // run writing a distinct memo slot, so the table fills with exactly the
  // values — and, for unconditionally-needed probes, exactly the probe
  // count — the serial order would produce. Concurrent probes read the
  // shared trial buffer and use their chunk's workspace arena for scratch.
  void Prefetch(std::initializer_list<size_t> positions) {
    std::vector<size_t> missing;
    for (size_t pos : positions) {
      assert(pos < errors_.size());
      if (std::isnan(errors_[pos]) &&
          std::find(missing.begin(), missing.end(), pos) == missing.end()) {
        missing.push_back(pos);
      }
    }
    probes_ += missing.size();
    if (threads_ <= 1 || missing.size() < 2) {
      for (size_t pos : missing) Evaluate(pos, /*arena=*/0);
      return;
    }
    util::ParallelFor(threads_, missing.size(),
                      [&](size_t chunk, size_t begin, size_t end) {
                        for (size_t m = begin; m < end; ++m) {
                          Evaluate(missing[m], chunk);
                        }
                      });
  }

  size_t probes() const { return probes_; }
  std::vector<double> TakeErrors() { return std::move(errors_); }

 private:
  void Evaluate(size_t pos, size_t arena) {
    SBR_OBS_SPAN(probe_span, "encode.search.probe");
    SBR_OBS_COUNT("encode.search.probe_evals", 1);
    const size_t insert_cost = pos * (ctx_.w + 1);
    if (insert_cost >= ctx_.total_band) {
      errors_[pos] = kInf;
      return;
    }
    const size_t budget = ctx_.total_band - insert_cost;

    // With a workspace the trial base is a prefix view of the shared
    // buffer; without one it is materialized per probe as before.
    std::span<const double> trial;
    std::vector<double> local_trial;
    GetIntervalsOptions gi = ctx_.get_intervals;
    if (workspace_ != nullptr) {
      trial = workspace_->TrialPrefix(offsets_[pos]);
      gi.best_map.workspace = workspace_;
      gi.best_map.arena = static_cast<uint32_t>(arena);
    } else {
      local_trial.assign(ctx_.current_base.begin(), ctx_.current_base.end());
      for (size_t i = 0; i < pos; ++i) {
        const auto& vals = (*ctx_.candidates)[i].values;
        local_trial.insert(local_trial.end(), vals.begin(), vals.end());
      }
      trial = local_trial;
    }
    auto approx =
        ctx_.row_lengths.empty()
            ? GetIntervals(trial, ctx_.y, ctx_.num_signals, budget, ctx_.w,
                           gi)
            : GetIntervalsMultiRate(trial, ctx_.y, ctx_.row_lengths, budget,
                                    ctx_.w, gi);
    errors_[pos] = approx.ok() ? approx->total_error : kInf;
  }

  const SearchContext& ctx_;
  size_t threads_ = 1;
  EncodeWorkspace* workspace_ = nullptr;
  std::vector<size_t> offsets_;  // trial length per probe position
  std::vector<double> errors_;
  size_t probes_ = 0;
};

// Algorithm 7, verbatim structure. Returns the position of a local (and,
// under the unimodality assumption, global) minimum in [start, end].
size_t Search(Prober& prober, size_t start, size_t end) {
  if (end == start) return start;
  const size_t middle = (start + end) / 2;
  // Both probes are needed unconditionally, so they evaluate concurrently;
  // the conditional third probe (end, or middle + 1) stays lazy so the
  // probe set — and therefore the memo table — matches the serial run.
  prober.Prefetch({middle, start});
  const double e_middle = prober.Error(middle);
  const double e_start = prober.Error(start);
  if (e_middle > e_start) {
    const double e_end = prober.Error(end);
    if (e_end > e_start) {
      return Search(prober, start, middle);
    }
    return Search(prober, middle, end);
  }
  const double e_next = prober.Error(middle + 1);
  if (e_next < e_middle) {
    return Search(prober, middle + 1, end);
  }
  return Search(prober, start, middle);
}

}  // namespace

SearchResult SearchInsertCount(const SearchContext& ctx) {
  assert(ctx.candidates != nullptr);
  Prober prober(ctx);
  SearchResult result;
  result.ins = Search(prober, 0, ctx.candidates->size());
  // Guard the unimodality assumption: never return a position whose error
  // is infinite (budget exhausted) or worse than inserting nothing.
  if (!(prober.Error(result.ins) < kInf) ||
      prober.Error(result.ins) > prober.Error(0)) {
    result.ins = 0;
  }
  result.probes = prober.probes();
  result.errors = prober.TakeErrors();
  return result;
}

}  // namespace sbr::core
