// Regression kernels: fit y ~ a * x + b over paired value ranges under a
// chosen error metric (paper Algorithm 1 and its Section 4.5 variants).
//
// All kernels run in O(length) time except the minimax fit, which is
// O(length * iterations) via ternary search over the (convex) strip-width
// function; see FitMaxAbs for details.
#ifndef SBR_CORE_REGRESSION_H_
#define SBR_CORE_REGRESSION_H_

#include <span>

#include "core/error_metric.h"

namespace sbr::core {

class EncodeArena;

/// Result of fitting y' = a * x + b: the coefficients and the error of the
/// fit under the metric that produced it.
struct RegressionResult {
  double a = 0.0;
  double b = 0.0;
  double err = 0.0;
};

/// Fits y ~ a * x + b minimizing the sum of squared residuals.
/// Degenerate x (zero variance) falls back to a = 0, b = mean(y).
RegressionResult FitSse(std::span<const double> x, std::span<const double> y);

/// Fits y ~ a * x + b minimizing sum ((y - y') / max(|y|, floor))^2
/// (weighted least squares with weights fixed by y).
RegressionResult FitSseRelative(std::span<const double> x,
                                std::span<const double> y,
                                double floor);

/// Fits y ~ a * x + b minimizing max |y - y'| (Chebyshev). The width
/// function f(a) = max_i(y_i - a x_i) - min_i(y_i - a x_i) is convex in a,
/// so the optimum is located by ternary search between the extreme
/// pairwise slopes; b centers the residual band. Accurate to ~1e-12 of the
/// slope range.
RegressionResult FitMaxAbs(std::span<const double> x,
                           std::span<const double> y);

/// Metric-dispatching fit of y against a base segment x.
RegressionResult Fit(ErrorMetric metric, std::span<const double> x,
                     std::span<const double> y,
                     double relative_floor);

/// Fits y ~ a * t + b against the time index t = 0..len-1 (the "standard
/// linear regression" fall-back of Algorithm 2), under the given metric.
/// The ramp is materialized from `arena` when given (allocation-free on a
/// warm workspace) or from a shared thread-local fallback arena otherwise.
RegressionResult FitTime(ErrorMetric metric, std::span<const double> y,
                         double relative_floor,
                         EncodeArena* arena = nullptr);

/// Evaluates the error of a *given* line y' = a x + b under the metric
/// (used by tests and by the decoder-side quality reporting).
double EvaluateLine(ErrorMetric metric, std::span<const double> x,
                    std::span<const double> y, double a, double b,
                    double relative_floor);

/// Result of the quadratic (non-linear) encoding extension of the paper's
/// Section 6: y' = a * x + b + c * x^2.
struct QuadraticResult {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double err = 0.0;
};

/// Least-squares quadratic fit y ~ a x + b + c x^2 (SSE metric; the
/// quadratic extension is defined for the default metric only).
/// Falls back to the linear fit when the 3x3 normal equations are
/// ill-conditioned, so it is never worse than FitSse.
QuadraticResult FitQuadratic(std::span<const double> x,
                             std::span<const double> y);

/// Quadratic-in-time fall-back: y ~ a t + b + c t^2, t = 0..len-1. Ramp
/// sourcing as in FitTime.
QuadraticResult FitTimeQuadratic(std::span<const double> y,
                                 EncodeArena* arena = nullptr);

}  // namespace sbr::core

#endif  // SBR_CORE_REGRESSION_H_
