#include "core/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "core/fixed_base.h"
#include "core/search.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sbr::core {

SbrEncoder::SbrEncoder(EncoderOptions options)
    : options_(std::move(options)), workspace_(&owned_workspace_) {}

SbrEncoder::SbrEncoder(EncoderOptions options, EncodeWorkspace* workspace)
    : options_(std::move(options)),
      workspace_(workspace != nullptr ? workspace : &owned_workspace_) {}

Status SbrEncoder::ValidateGeometry(std::span<const size_t> row_lengths) {
  if (row_lengths.empty()) {
    return Status::InvalidArgument("empty chunk");
  }
  for (size_t len : row_lengths) {
    if (len == 0) return Status::InvalidArgument("zero-length signal row");
  }
  if (options_.quadratic && options_.metric != ErrorMetric::kSse) {
    return Status::InvalidArgument(
        "quadratic encoding is defined for the SSE metric only");
  }
  if (row_lengths_.empty()) {
    // First chunk fixes the geometry and derived parameters.
    row_lengths_.assign(row_lengths.begin(), row_lengths.end());
    const size_t n =
        std::accumulate(row_lengths.begin(), row_lengths.end(), size_t{0});
    w_ = options_.w != 0
             ? options_.w
             : static_cast<size_t>(std::floor(std::sqrt(
                   static_cast<double>(n))));
    if (w_ == 0) return Status::InvalidArgument("W resolved to 0");
    size_t per_interval =
        options_.base_strategy == BaseStrategy::kNone ? 3 : 4;
    if (options_.quadratic) ++per_interval;
    if (options_.total_band / per_interval < row_lengths.size()) {
      return Status::InvalidArgument(
          "total_band " + std::to_string(options_.total_band) +
          " cannot afford one interval per signal");
    }
    if (options_.base_strategy == BaseStrategy::kGetBase ||
        options_.base_strategy == BaseStrategy::kGetBaseLowMem ||
        options_.base_strategy == BaseStrategy::kCustom) {
      if (options_.m_base < w_) {
        return Status::InvalidArgument(
            "m_base " + std::to_string(options_.m_base) +
            " smaller than one base interval (W = " + std::to_string(w_) +
            ")");
      }
      base_ = BaseSignal(w_, options_.m_base, options_.eviction);
    } else if (options_.base_strategy == BaseStrategy::kDctFixed) {
      dct_base_ = MakeDctFixedBase(w_);
    }
    if (options_.base_strategy == BaseStrategy::kCustom &&
        !options_.base_provider) {
      return Status::InvalidArgument(
          "base_strategy kCustom requires base_provider");
    }
    return Status::Ok();
  }
  if (row_lengths.size() != row_lengths_.size() ||
      !std::equal(row_lengths.begin(), row_lengths.end(),
                  row_lengths_.begin())) {
    return Status::FailedPrecondition("chunk geometry changed mid-stream");
  }
  return Status::Ok();
}

std::vector<CandidateBaseInterval> SbrEncoder::BuildCandidates(
    std::span<const double> y, size_t max_ins) const {
  GetBaseOptions gb;
  gb.metric = options_.metric;
  gb.relative_floor = options_.relative_floor;
  gb.threads = options_.threads;
  gb.workspace = workspace_;
  switch (options_.base_strategy) {
    case BaseStrategy::kGetBase:
      return GetBaseMultiRate(y, row_lengths_, w_, max_ins, gb);
    case BaseStrategy::kGetBaseLowMem:
      // The low-memory variant requires uniform rows; multi-rate streams
      // with this strategy fall back to the full-matrix construction,
      // which selects identically (see GetBase tests).
      if (std::adjacent_find(row_lengths_.begin(), row_lengths_.end(),
                             std::not_equal_to<>()) == row_lengths_.end()) {
        return GetBaseLowMem(y, row_lengths_.size(), w_, max_ins, gb);
      }
      return GetBaseMultiRate(y, row_lengths_, w_, max_ins, gb);
    case BaseStrategy::kCustom:
      return options_.base_provider(y, row_lengths_.size(), w_, max_ins);
    case BaseStrategy::kDctFixed:
    case BaseStrategy::kNone:
      break;
  }
  return {};
}

StatusOr<Transmission> SbrEncoder::EncodeChunk(const linalg::Matrix& chunk) {
  std::vector<double> y;
  y.reserve(chunk.rows() * chunk.cols());
  for (size_t r = 0; r < chunk.rows(); ++r) {
    const auto row = chunk.Row(r);
    y.insert(y.end(), row.begin(), row.end());
  }
  return EncodeChunk(y, chunk.rows());
}

StatusOr<Transmission> SbrEncoder::EncodeChunk(std::span<const double> y,
                                               size_t num_signals) {
  if (num_signals == 0 || y.size() % num_signals != 0) {
    return Status::InvalidArgument("series length not divisible by signals");
  }
  const std::vector<size_t> lengths(num_signals, y.size() / num_signals);
  return EncodeImpl(y, lengths, /*uniform=*/true);
}

StatusOr<Transmission> SbrEncoder::EncodeChunkMultiRate(
    std::span<const double> y, std::span<const size_t> row_lengths) {
  const size_t total =
      std::accumulate(row_lengths.begin(), row_lengths.end(), size_t{0});
  if (total != y.size()) {
    return Status::InvalidArgument("row lengths do not sum to series size");
  }
  return EncodeImpl(y, row_lengths, /*uniform=*/false);
}

StatusOr<Transmission> SbrEncoder::EncodeImpl(
    std::span<const double> y, std::span<const size_t> row_lengths,
    bool uniform) {
  SBR_RETURN_IF_ERROR(ValidateGeometry(row_lengths));
  // Reject non-finite samples up front: a single NaN would otherwise
  // poison every regression downstream and surface as a nonsense
  // approximation instead of an error.
  for (size_t i = 0; i < y.size(); ++i) {
    if (!std::isfinite(y[i])) {
      return Status::InvalidArgument("non-finite sample at index " +
                                     std::to_string(i));
    }
  }

  stats_ = EncodeStats{};
  SBR_OBS_SPAN(chunk_span, "encode.chunk");
  SBR_OBS_TIMER(chunk_timer, "encode.chunk_us");
  // One workspace reset per chunk: clears the per-interval moment cache
  // (y changes) and sizes the arena pool for the configured thread count.
  // Everything downstream — GetBase scoring, search probes, the final
  // approximation — draws its scratch from this workspace.
  workspace_->BeginChunk(options_.threads);

  GetIntervalsOptions gi;
  gi.best_map.metric = options_.metric;
  gi.best_map.relative_floor = options_.relative_floor;
  gi.best_map.allow_linear_fallback = options_.allow_linear_fallback;
  gi.best_map.max_shift_multiple = options_.max_shift_multiple;
  gi.best_map.quadratic = options_.quadratic;
  gi.best_map.threads = options_.threads;
  gi.values_per_interval =
      options_.base_strategy == BaseStrategy::kNone ? 3 : 4;
  if (options_.quadratic) ++gi.values_per_interval;
  gi.error_target = options_.error_target;

  const bool stored_base =
      options_.base_strategy == BaseStrategy::kGetBase ||
      options_.base_strategy == BaseStrategy::kGetBaseLowMem ||
      options_.base_strategy == BaseStrategy::kCustom;

  // Phase 1: decide what to insert into the base signal.
  std::vector<CandidateBaseInterval> candidates;
  size_t ins = 0;
  if (stored_base && options_.update_base) {
    size_t max_ins =
        std::min(options_.m_base, options_.total_band) / w_;
    max_ins = std::min(max_ins, base_.num_slots());
    {
      SBR_OBS_SPAN(get_base_span, "encode.get_base");
      candidates = BuildCandidates(y, max_ins);
    }
    SBR_OBS_COUNT("encode.get_base.candidates", candidates.size());
    SBR_OBS_SPAN(search_span, "encode.search");
    SearchContext ctx;
    ctx.current_base = base_.values();
    ctx.candidates = &candidates;
    ctx.y = y;
    ctx.row_lengths = row_lengths_;
    ctx.w = w_;
    ctx.total_band = options_.total_band;
    ctx.get_intervals = gi;
    ctx.workspace = workspace_;
    const SearchResult sr = SearchInsertCount(ctx);
    ins = sr.ins;
    stats_.search_probes = sr.probes;
  }

  // Phase 2: place the chosen intervals (free slots first, then eviction),
  // *before* the final approximation so encoder and decoder agree on the
  // base-signal layout (DESIGN.md note 2).
  Transmission t;
  t.num_signals = static_cast<uint32_t>(row_lengths_.size());
  if (uniform) {
    t.chunk_len = static_cast<uint32_t>(row_lengths_[0]);
  } else {
    t.chunk_len = 0;
    t.signal_lengths.reserve(row_lengths_.size());
    for (size_t len : row_lengths_) {
      t.signal_lengths.push_back(static_cast<uint32_t>(len));
    }
  }
  t.w = static_cast<uint32_t>(w_);
  t.quadratic = options_.quadratic;
  switch (options_.base_strategy) {
    case BaseStrategy::kDctFixed:
      t.base_kind = BaseKind::kDctFixed;
      break;
    case BaseStrategy::kNone:
      t.base_kind = BaseKind::kNone;
      break;
    default:
      t.base_kind = BaseKind::kStored;
  }
  t.precision = options_.compact_wire ? WirePrecision::kFloat32
                                      : WirePrecision::kFloat64;
  if (ins > 0) {
    const std::vector<size_t> plan = base_.PlanPlacement(ins);
    for (size_t i = 0; i < ins; ++i) {
      std::vector<double> vals = candidates[i].values;
      if (options_.compact_wire) {
        // Round through binary32 before the values enter either side's
        // buffer, keeping the mirrors bit-identical.
        for (double& v : vals) v = static_cast<double>(static_cast<float>(v));
      }
      SBR_RETURN_IF_ERROR(base_.Overwrite(plan[i], vals));
      BaseUpdate bu;
      bu.slot = static_cast<uint32_t>(plan[i]);
      bu.values = std::move(vals);
      t.base_updates.push_back(std::move(bu));
    }
  }

  // Phase 3: approximate the chunk against the final base signal.
  std::span<const double> x;
  if (stored_base) {
    x = base_.values();
  } else if (options_.base_strategy == BaseStrategy::kDctFixed) {
    x = dct_base_;
  }
  const size_t insert_cost = ins * (w_ + 1);
  if (insert_cost >= options_.total_band) {
    return Status::Internal("insertions consumed the entire bandwidth");
  }
  const size_t budget = options_.total_band - insert_cost;
  // Rebind the workspace's prefix sums to the *final* base signal (the
  // search ran against trial prefixes; placement may have evicted slots
  // and compact mode rounds values), then run the final approximation
  // against the shared tables.
  workspace_->SetBase(x);
  gi.best_map.workspace = workspace_;
  SBR_OBS_SPAN(approx_span, "encode.approx");
  auto approx = GetIntervalsMultiRate(x, y, row_lengths_, budget, w_, gi);
  if (!approx.ok()) return approx.status();

  for (const Interval& iv : approx->intervals) {
    if (iv.shift != kShiftLinearFallback && stored_base) {
      base_.RecordUse(static_cast<size_t>(iv.shift), iv.length);
    }
    IntervalRecord rec;
    rec.start = static_cast<uint32_t>(iv.start);
    rec.shift = static_cast<int32_t>(iv.shift);
    rec.a = iv.a;
    rec.b = iv.b;
    rec.c = iv.c;
    t.intervals.push_back(rec);
  }

  stats_.inserted_base_intervals = ins;
  stats_.num_intervals = approx->intervals.size();
  stats_.total_error = approx->total_error;
  stats_.values_used = t.ValueCount();
  stats_.workspace = workspace_->stats();
  // Registry view of the per-chunk diagnostics: the same numbers
  // EncodeStats carries, accumulated across chunks for the stage reports.
  SBR_OBS_COUNT("encode.chunks", 1);
  SBR_OBS_COUNT("encode.search_probes", stats_.search_probes);
  SBR_OBS_COUNT("encode.inserted_cbis", ins);
  SBR_OBS_COUNT("encode.intervals", stats_.num_intervals);
  SBR_OBS_COUNT("encode.workspace.moment_hits", stats_.workspace.moment_hits);
  SBR_OBS_COUNT("encode.workspace.moment_misses",
                stats_.workspace.moment_misses);
  SBR_OBS_COUNT("encode.workspace.prefix_resets",
                stats_.workspace.prefix_resets);
  SBR_OBS_COUNT("encode.workspace.prefix_appends",
                stats_.workspace.prefix_appends);
  SBR_OBS_HIST("encode.values_used", stats_.values_used);
  return t;
}

namespace {

bool IsStoredStrategy(BaseStrategy s) {
  return s == BaseStrategy::kGetBase || s == BaseStrategy::kGetBaseLowMem;
}

}  // namespace

Status SbrEncoder::SetBaseStrategy(BaseStrategy strategy) {
  if (!IsStoredStrategy(options_.base_strategy) ||
      !IsStoredStrategy(strategy)) {
    return Status::InvalidArgument(
        "only kGetBase <-> kGetBaseLowMem transitions keep the wire "
        "format stable");
  }
  options_.base_strategy = strategy;
  return Status::Ok();
}

void SbrEncoder::SaveState(BinaryWriter* writer) const {
  writer->PutU64(w_);
  writer->PutU8(static_cast<uint8_t>(options_.base_strategy));
  writer->PutU64(row_lengths_.size());
  for (size_t len : row_lengths_) writer->PutU64(len);
  const uint8_t has_base = base_.num_slots() > 0 ? 1 : 0;
  writer->PutU8(has_base);
  if (has_base) base_.SaveState(writer);
}

Status SbrEncoder::RestoreState(BinaryReader* reader) {
  uint64_t w = 0, num_rows = 0;
  uint8_t strategy = 0, has_base = 0;
  SBR_RETURN_IF_ERROR(reader->GetU64(&w));
  SBR_RETURN_IF_ERROR(reader->GetU8(&strategy));
  if (strategy > static_cast<uint8_t>(BaseStrategy::kNone)) {
    return Status::DataLoss("invalid base strategy in encoder state");
  }
  SBR_RETURN_IF_ERROR(reader->GetU64(&num_rows));
  std::vector<size_t> rows(num_rows);
  for (auto& len : rows) {
    uint64_t v = 0;
    SBR_RETURN_IF_ERROR(reader->GetU64(&v));
    len = v;
  }
  SBR_RETURN_IF_ERROR(reader->GetU8(&has_base));
  BaseSignal base;
  if (has_base) {
    auto loaded = BaseSignal::LoadState(reader);
    if (!loaded.ok()) return loaded.status();
    base = *std::move(loaded);
  }
  // The degraded-mode strategy travels with the checkpoint only where the
  // transition is legal; otherwise the constructed options win.
  const auto saved = static_cast<BaseStrategy>(strategy);
  if (IsStoredStrategy(saved) && IsStoredStrategy(options_.base_strategy)) {
    options_.base_strategy = saved;
  }
  w_ = w;
  row_lengths_ = std::move(rows);
  base_ = std::move(base);
  if (w_ != 0 && options_.base_strategy == BaseStrategy::kDctFixed) {
    dct_base_ = MakeDctFixedBase(w_);
  }
  return Status::Ok();
}

}  // namespace sbr::core
