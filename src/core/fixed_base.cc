#include "core/fixed_base.h"

#include <cmath>
#include <numbers>

namespace sbr::core {

std::vector<double> MakeDctFixedBase(size_t w) {
  std::vector<double> out;
  if (w == 0) return out;
  out.reserve((w + 1) * w);
  for (size_t f = 0; f <= w; ++f) {
    for (size_t i = 0; i < w; ++i) {
      out.push_back(std::cos((2.0 * static_cast<double>(i) + 1.0) *
                             std::numbers::pi * static_cast<double>(f) /
                             (2.0 * static_cast<double>(w))));
    }
  }
  return out;
}

}  // namespace sbr::core
