#include "core/best_map.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/regression.h"
#include "util/prefix_sums.h"

namespace sbr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shift scan specialised for the SSE metric: sum_x and sum_x2 come from
// prefix sums, only sum_xy needs an O(len) pass per shift, and the residual
// error follows from the normal equations without a second pass.
void ScanShiftsSse(std::span<const double> x, std::span<const double> yseg,
                   Interval* best) {
  const size_t len = yseg.size();
  const size_t num_shifts = x.size() - len + 1;
  const double flen = static_cast<double>(len);

  PrefixSums px(x);
  double sum_y = 0.0, sum_y2 = 0.0;
  for (double v : yseg) {
    sum_y += v;
    sum_y2 += v * v;
  }

  const double* xp = x.data();
  const double* yp = yseg.data();
  for (size_t shift = 0; shift < num_shifts; ++shift) {
    double sum_xy = 0.0;
    const double* xs = xp + shift;
    for (size_t i = 0; i < len; ++i) sum_xy += xs[i] * yp[i];

    const double sum_x = px.RangeSum(shift, len);
    const double sum_x2 = px.RangeSumSquares(shift, len);
    const double denom = flen * sum_x2 - sum_x * sum_x;

    double a, b, err;
    if (denom <= 1e-12 * std::max(1.0, flen * sum_x2)) {
      a = 0.0;
      b = sum_y / flen;
      err = std::max(0.0, sum_y2 - b * sum_y);
    } else {
      a = (flen * sum_xy - sum_x * sum_y) / denom;
      b = (sum_y - a * sum_x) / flen;
      err = std::max(0.0, sum_y2 - a * sum_xy - b * sum_y);
    }
    if (err < best->err) {
      best->shift = static_cast<int64_t>(shift);
      best->a = a;
      best->b = b;
      best->err = err;
    }
  }
}

// Shift scan for the relative-error metric: weights depend only on y, so
// the y-side weighted sums are hoisted out of the shift loop.
void ScanShiftsRelative(std::span<const double> x,
                        std::span<const double> yseg, double floor,
                        Interval* best) {
  const size_t len = yseg.size();
  const size_t num_shifts = x.size() - len + 1;

  std::vector<double> w(len), wy(len);
  double sw = 0.0, swy = 0.0, swy2 = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = std::max(std::abs(yseg[i]), floor);
    w[i] = 1.0 / (d * d);
    wy[i] = w[i] * yseg[i];
    sw += w[i];
    swy += wy[i];
    swy2 += wy[i] * yseg[i];
  }

  for (size_t shift = 0; shift < num_shifts; ++shift) {
    const double* xs = x.data() + shift;
    double swx = 0.0, swx2 = 0.0, swxy = 0.0;
    for (size_t i = 0; i < len; ++i) {
      swx += w[i] * xs[i];
      swx2 += w[i] * xs[i] * xs[i];
      swxy += wy[i] * xs[i];
    }
    const double denom = sw * swx2 - swx * swx;
    double a, b, err;
    if (denom <= 1e-12 * std::max(1.0, sw * swx2)) {
      a = 0.0;
      b = swy / sw;
      err = std::max(0.0, swy2 - 2.0 * b * swy + b * b * sw);
    } else {
      a = (sw * swxy - swx * swy) / denom;
      b = (swy - a * swx) / sw;
      err = std::max(0.0, swy2 - a * swxy - b * swy);
    }
    if (err < best->err) {
      best->shift = static_cast<int64_t>(shift);
      best->a = a;
      best->b = b;
      best->err = err;
    }
  }
}

// Shift scan for the minimax metric: each shift runs a full Chebyshev fit.
// Costly (see regression.h); intended for the error-bound workloads where
// budgets, and therefore scan counts, are small.
void ScanShiftsMaxAbs(std::span<const double> x,
                      std::span<const double> yseg, Interval* best) {
  const size_t len = yseg.size();
  const size_t num_shifts = x.size() - len + 1;
  for (size_t shift = 0; shift < num_shifts; ++shift) {
    const RegressionResult r = FitMaxAbs(x.subspan(shift, len), yseg);
    if (r.err < best->err) {
      best->shift = static_cast<int64_t>(shift);
      best->a = r.a;
      best->b = r.b;
      best->err = r.err;
    }
  }
}

// Shift scan for the quadratic encoding extension: a full 3x3 solve per
// shift. O(len) per shift like the other scans, larger constant.
void ScanShiftsQuadratic(std::span<const double> x,
                         std::span<const double> yseg, Interval* best) {
  const size_t len = yseg.size();
  const size_t num_shifts = x.size() - len + 1;
  for (size_t shift = 0; shift < num_shifts; ++shift) {
    const QuadraticResult q = FitQuadratic(x.subspan(shift, len), yseg);
    if (q.err < best->err) {
      best->shift = static_cast<int64_t>(shift);
      best->a = q.a;
      best->b = q.b;
      best->c = q.c;
      best->err = q.err;
    }
  }
}

}  // namespace

void BestMap(std::span<const double> x, std::span<const double> y,
             size_t w, const BestMapOptions& options, Interval* interval) {
  assert(interval->start + interval->length <= y.size());
  assert(interval->length > 0);
  const std::span<const double> yseg =
      y.subspan(interval->start, interval->length);

  interval->shift = kShiftLinearFallback;
  interval->c = 0.0;
  interval->err = kInf;

  const bool scan_possible =
      interval->length <= options.max_shift_multiple * w &&
      x.size() >= interval->length;

  if (scan_possible) {
    if (options.quadratic) {
      ScanShiftsQuadratic(x, yseg, interval);
    } else {
      switch (options.metric) {
        case ErrorMetric::kSse:
          ScanShiftsSse(x, yseg, interval);
          break;
        case ErrorMetric::kSseRelative:
          ScanShiftsRelative(x, yseg, options.relative_floor, interval);
          break;
        case ErrorMetric::kMaxAbs:
          ScanShiftsMaxAbs(x, yseg, interval);
          break;
      }
    }
  }

  if (options.allow_linear_fallback || !scan_possible) {
    if (options.quadratic) {
      const QuadraticResult q = FitTimeQuadratic(yseg);
      if (q.err < interval->err) {
        interval->shift = kShiftLinearFallback;
        interval->a = q.a;
        interval->b = q.b;
        interval->c = q.c;
        interval->err = q.err;
      }
    } else {
      const RegressionResult r =
          FitTime(options.metric, yseg, options.relative_floor);
      if (r.err < interval->err) {
        interval->shift = kShiftLinearFallback;
        interval->a = r.a;
        interval->b = r.b;
        interval->c = 0.0;
        interval->err = r.err;
      }
    }
  }
}

}  // namespace sbr::core
