#include "core/best_map.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/regression.h"
#include "core/workspace.h"
#include "obs/metrics.h"
#include "util/prefix_sums.h"
#include "util/thread_pool.h"

namespace sbr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shift ranges below this size are scanned on the calling thread even when
// options.threads > 1; the pool dispatch would cost more than the scan.
// (The partition never affects the result, so this is purely a tuning
// constant, not a correctness one.)
constexpr size_t kMinShiftsParallel = 16;

// Deterministic selection rule shared by the serial scans and the parallel
// chunk merge: lower error wins, and an *exact* error tie goes to the
// lower shift. Serial ascending scans, partitioned scans at any chunk
// count and any merge order therefore pick the same interval bitwise.
bool BetterShift(double err, int64_t shift, const Interval& best) {
  return err < best.err || (err == best.err && shift < best.shift);
}

void TakeShift(Interval* best, int64_t shift, double a, double b, double c,
               double err) {
  best->shift = shift;
  best->a = a;
  best->b = b;
  best->c = c;
  best->err = err;
}

// The fit one shift produces: coefficients of y' = a x + b (+ c x^2) and
// the residual error under the policy's metric.
struct ShiftFit {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double err = 0.0;
};

// The single shift-scan driver. Every metric used to own a near-identical
// copy of this loop (guarding, partitioning, deterministic merge); now the
// hardening and threading logic exists once and a metric policy supplies
// only the per-shift residual math via `Fit(shift) -> ShiftFit`.
//
// The driver guards its own geometry: len > x.size() would underflow
// num_shifts into a near-infinite out-of-bounds scan, so a caller bug must
// degrade to a no-op here rather than rely on BestMap's gate.
//
// Parallel runs partition [0, num_shifts) into static chunks on the shared
// pool, scan each chunk into a local best, and merge the chunk bests in
// chunk order with the deterministic rule above; threads <= 1 (or a tiny
// range) scans inline on the calling thread.
template <typename Policy>
void ScanShifts(std::span<const double> x, std::span<const double> yseg,
                size_t threads, Interval* best, const Policy& policy) {
  const size_t len = yseg.size();
  if (len == 0 || len > x.size()) return;
  const size_t num_shifts = x.size() - len + 1;
  SBR_OBS_COUNT("encode.best_map.shifts_scanned", num_shifts);

  const auto scan = [&](size_t begin, size_t end, Interval* out) {
    for (size_t shift = begin; shift < end; ++shift) {
      const ShiftFit f = policy.Fit(shift);
      if (BetterShift(f.err, static_cast<int64_t>(shift), *out)) {
        TakeShift(out, static_cast<int64_t>(shift), f.a, f.b, f.c, f.err);
      }
    }
  };

  if (threads <= 1 || num_shifts < kMinShiftsParallel) {
    scan(0, num_shifts, best);
    return;
  }
  const size_t num_chunks = util::NumChunks(threads, num_shifts);
  std::vector<Interval> partial(num_chunks);
  for (Interval& p : partial) {
    p.shift = kShiftLinearFallback;
    p.err = kInf;
  }
  util::ParallelFor(threads, num_shifts,
                    [&](size_t chunk, size_t begin, size_t end) {
                      scan(begin, end, &partial[chunk]);
                    });
  for (const Interval& p : partial) {
    if (BetterShift(p.err, p.shift, *best)) {
      TakeShift(best, p.shift, p.a, p.b, p.c, p.err);
    }
  }
}

// SSE policy: sum_x and sum_x2 come from prefix sums, only sum_xy needs an
// O(len) pass per shift, and the residual error follows from the normal
// equations without a second pass. With a workspace the prefix table is
// the shared one over the trial base (built once, extended incrementally)
// and the y-side moments come from the per-interval cache; without one,
// both are materialized locally exactly as the standalone kernel did.
class SsePolicy {
 public:
  SsePolicy(std::span<const double> x, std::span<const double> yseg,
            const PrefixSums* shared_prefix, const SseMoments& moments)
      : xp_(x.data()),
        yp_(yseg.data()),
        len_(yseg.size()),
        flen_(static_cast<double>(yseg.size())),
        moments_(moments) {
    if (shared_prefix != nullptr) {
      // The workspace invariant: the shared table covers (at least) the
      // base signal being scanned, with identical values.
      assert(shared_prefix->size() >= x.size());
      prefix_ = shared_prefix;
    } else {
      local_prefix_.Reset(x);
      prefix_ = &local_prefix_;
    }
  }

  ShiftFit Fit(size_t shift) const {
    double sum_xy = 0.0;
    const double* xs = xp_ + shift;
    for (size_t i = 0; i < len_; ++i) sum_xy += xs[i] * yp_[i];

    const double sum_x = prefix_->RangeSum(shift, len_);
    const double sum_x2 = prefix_->RangeSumSquares(shift, len_);
    const double denom = flen_ * sum_x2 - sum_x * sum_x;

    ShiftFit f;
    if (denom <= 1e-12 * std::max(1.0, flen_ * sum_x2)) {
      f.a = 0.0;
      f.b = moments_.sum_y / flen_;
      f.err = std::max(0.0, moments_.sum_y2 - f.b * moments_.sum_y);
    } else {
      f.a = (flen_ * sum_xy - sum_x * moments_.sum_y) / denom;
      f.b = (moments_.sum_y - f.a * sum_x) / flen_;
      f.err = std::max(
          0.0, moments_.sum_y2 - f.a * sum_xy - f.b * moments_.sum_y);
    }
    return f;
  }

 private:
  const double* xp_;
  const double* yp_;
  size_t len_;
  double flen_;
  SseMoments moments_;
  const PrefixSums* prefix_ = nullptr;
  PrefixSums local_prefix_;
};

// Relative-error policy: weights depend only on y, so the y-side weighted
// sums are hoisted out of the shift loop (memoized per interval with a
// workspace) and the weight arrays live in reusable arena scratch.
class RelativePolicy {
 public:
  RelativePolicy(std::span<const double> x, const double* w, const double* wy,
                 size_t len, const RelativeMoments& moments)
      : xp_(x.data()), w_(w), wy_(wy), len_(len), moments_(moments) {}

  ShiftFit Fit(size_t shift) const {
    const double* xs = xp_ + shift;
    double swx = 0.0, swx2 = 0.0, swxy = 0.0;
    for (size_t i = 0; i < len_; ++i) {
      swx += w_[i] * xs[i];
      swx2 += w_[i] * xs[i] * xs[i];
      swxy += wy_[i] * xs[i];
    }
    const double sw = moments_.sw;
    const double swy = moments_.swy;
    const double swy2 = moments_.swy2;
    const double denom = sw * swx2 - swx * swx;
    ShiftFit f;
    if (denom <= 1e-12 * std::max(1.0, sw * swx2)) {
      f.a = 0.0;
      f.b = swy / sw;
      f.err = std::max(0.0, swy2 - 2.0 * f.b * swy + f.b * f.b * sw);
    } else {
      f.a = (sw * swxy - swx * swy) / denom;
      f.b = (swy - f.a * swx) / sw;
      f.err = std::max(0.0, swy2 - f.a * swxy - f.b * swy);
    }
    return f;
  }

 private:
  const double* xp_;
  const double* w_;
  const double* wy_;
  size_t len_;
  RelativeMoments moments_;
};

// Minimax policy: each shift runs a full Chebyshev fit. Costly (see
// regression.h); intended for the error-bound workloads where budgets, and
// therefore scan counts, are small.
class MaxAbsPolicy {
 public:
  MaxAbsPolicy(std::span<const double> x, std::span<const double> yseg)
      : x_(x), yseg_(yseg) {}

  ShiftFit Fit(size_t shift) const {
    const RegressionResult r =
        FitMaxAbs(x_.subspan(shift, yseg_.size()), yseg_);
    return {r.a, r.b, 0.0, r.err};
  }

 private:
  std::span<const double> x_;
  std::span<const double> yseg_;
};

// Quadratic-extension policy: a full 3x3 solve per shift. O(len) per shift
// like the other policies, larger constant.
class QuadraticPolicy {
 public:
  QuadraticPolicy(std::span<const double> x, std::span<const double> yseg)
      : x_(x), yseg_(yseg) {}

  ShiftFit Fit(size_t shift) const {
    const QuadraticResult q =
        FitQuadratic(x_.subspan(shift, yseg_.size()), yseg_);
    return {q.a, q.b, q.c, q.err};
  }

 private:
  std::span<const double> x_;
  std::span<const double> yseg_;
};

// Computes the y-side SSE moments locally (the no-workspace path).
SseMoments ComputeSseMoments(std::span<const double> yseg) {
  SseMoments m;
  for (double v : yseg) {
    m.sum_y += v;
    m.sum_y2 += v * v;
  }
  return m;
}

// Computes the relative-metric weights and moments into local buffers
// (the no-workspace path).
RelativeMoments ComputeRelativeMoments(std::span<const double> yseg,
                                       double floor, std::vector<double>* w,
                                       std::vector<double>* wy) {
  const size_t len = yseg.size();
  w->resize(len);
  wy->resize(len);
  RelativeMoments m;
  for (size_t i = 0; i < len; ++i) {
    const double d = std::max(std::abs(yseg[i]), floor);
    (*w)[i] = 1.0 / (d * d);
    (*wy)[i] = (*w)[i] * yseg[i];
    m.sw += (*w)[i];
    m.swy += (*wy)[i];
    m.swy2 += (*wy)[i] * yseg[i];
  }
  return m;
}

// Builds the policy for the configured metric and runs the shared scan
// driver. `start` keys the workspace moment cache; the interval geometry
// has been validated by BestMap.
void RunMetricScan(std::span<const double> x, std::span<const double> yseg,
                   size_t start, const BestMapOptions& options,
                   Interval* best) {
  EncodeWorkspace* ws = options.workspace;
  EncodeArena* arena = ws != nullptr ? &ws->arena(options.arena) : nullptr;

  if (options.quadratic) {
    ScanShifts(x, yseg, options.threads, best, QuadraticPolicy(x, yseg));
    return;
  }
  switch (options.metric) {
    case ErrorMetric::kSse: {
      const SseMoments m =
          ws != nullptr ? ws->Sse(yseg, start) : ComputeSseMoments(yseg);
      const PrefixSums* shared = ws != nullptr ? &ws->base_prefix() : nullptr;
      ScanShifts(x, yseg, options.threads, best,
                 SsePolicy(x, yseg, shared, m));
      break;
    }
    case ErrorMetric::kSseRelative: {
      std::vector<double> local_w, local_wy;
      const double* w;
      const double* wy;
      RelativeMoments m;
      if (ws != nullptr) {
        m = ws->Relative(yseg, start, options.relative_floor, arena);
        w = arena->weights().data();
        wy = arena->weighted_values().data();
      } else {
        m = ComputeRelativeMoments(yseg, options.relative_floor, &local_w,
                                   &local_wy);
        w = local_w.data();
        wy = local_wy.data();
      }
      ScanShifts(x, yseg, options.threads, best,
                 RelativePolicy(x, w, wy, yseg.size(), m));
      break;
    }
    case ErrorMetric::kMaxAbs:
      ScanShifts(x, yseg, options.threads, best, MaxAbsPolicy(x, yseg));
      break;
  }
}

}  // namespace

void BestMap(std::span<const double> x, std::span<const double> y,
             size_t w, const BestMapOptions& options, Interval* interval) {
  SBR_OBS_COUNT("encode.best_map.calls", 1);
  // Real validation, not an assert: a malformed interval — e.g. decoded
  // from a corrupted frame — must not read out of bounds in a release
  // build. It gets the fall-back marker with infinite error and zeroed
  // coefficients, which downstream consumers already treat as "worthless".
  if (interval->length == 0 || interval->start > y.size() ||
      interval->length > y.size() - interval->start) {
    interval->shift = kShiftLinearFallback;
    interval->a = 0.0;
    interval->b = 0.0;
    interval->c = 0.0;
    interval->err = kInf;
    return;
  }
  const std::span<const double> yseg =
      y.subspan(interval->start, interval->length);

  interval->shift = kShiftLinearFallback;
  interval->c = 0.0;
  interval->err = kInf;

  const bool scan_possible =
      interval->length <= options.max_shift_multiple * w &&
      x.size() >= interval->length;

  if (scan_possible) {
    RunMetricScan(x, yseg, interval->start, options, interval);
  }

  if (options.allow_linear_fallback || !scan_possible) {
    EncodeArena* arena = options.workspace != nullptr
                             ? &options.workspace->arena(options.arena)
                             : nullptr;
    if (options.quadratic) {
      const QuadraticResult q = FitTimeQuadratic(yseg, arena);
      if (q.err < interval->err) {
        interval->shift = kShiftLinearFallback;
        interval->a = q.a;
        interval->b = q.b;
        interval->c = q.c;
        interval->err = q.err;
      }
    } else {
      const RegressionResult r =
          FitTime(options.metric, yseg, options.relative_floor, arena);
      if (r.err < interval->err) {
        SBR_OBS_COUNT("encode.best_map.linear_fallbacks", 1);
        interval->shift = kShiftLinearFallback;
        interval->a = r.a;
        interval->b = r.b;
        interval->c = 0.0;
        interval->err = r.err;
      }
    }
  }
}

}  // namespace sbr::core
