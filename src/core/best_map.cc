#include "core/best_map.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/regression.h"
#include "util/prefix_sums.h"
#include "util/thread_pool.h"

namespace sbr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shift ranges below this size are scanned on the calling thread even when
// options.threads > 1; the pool dispatch would cost more than the scan.
// (The partition never affects the result, so this is purely a tuning
// constant, not a correctness one.)
constexpr size_t kMinShiftsParallel = 16;

// Deterministic selection rule shared by the serial scans and the parallel
// chunk merge: lower error wins, and an *exact* error tie goes to the
// lower shift. Serial ascending scans, partitioned scans at any chunk
// count and any merge order therefore pick the same interval bitwise.
bool BetterShift(double err, int64_t shift, const Interval& best) {
  return err < best.err || (err == best.err && shift < best.shift);
}

void TakeShift(Interval* best, int64_t shift, double a, double b, double c,
               double err) {
  best->shift = shift;
  best->a = a;
  best->b = b;
  best->c = c;
  best->err = err;
}

// Partitions [0, num_shifts) over the pool, runs `scan(begin, end, out)`
// per chunk into a local best, and merges the chunk bests in chunk order
// with the deterministic rule above. threads <= 1 runs the scan inline.
template <typename ScanRange>
void RunShiftScan(size_t num_shifts, size_t threads, Interval* best,
                  const ScanRange& scan) {
  if (threads <= 1 || num_shifts < kMinShiftsParallel) {
    scan(0, num_shifts, best);
    return;
  }
  const size_t num_chunks = util::NumChunks(threads, num_shifts);
  std::vector<Interval> partial(num_chunks);
  for (Interval& p : partial) {
    p.shift = kShiftLinearFallback;
    p.err = kInf;
  }
  util::ParallelFor(threads, num_shifts,
                    [&](size_t chunk, size_t begin, size_t end) {
                      scan(begin, end, &partial[chunk]);
                    });
  for (const Interval& p : partial) {
    if (BetterShift(p.err, p.shift, *best)) {
      TakeShift(best, p.shift, p.a, p.b, p.c, p.err);
    }
  }
}

// Shift scan specialised for the SSE metric: sum_x and sum_x2 come from
// prefix sums, only sum_xy needs an O(len) pass per shift, and the residual
// error follows from the normal equations without a second pass.
//
// Every helper guards its own geometry: len > x.size() would underflow
// num_shifts into a near-infinite out-of-bounds scan, so a caller bug must
// degrade to a no-op here rather than rely on BestMap's gate.
void ScanShiftsSse(std::span<const double> x, std::span<const double> yseg,
                   size_t threads, Interval* best) {
  const size_t len = yseg.size();
  if (len == 0 || len > x.size()) return;
  const size_t num_shifts = x.size() - len + 1;
  const double flen = static_cast<double>(len);

  PrefixSums px(x);
  double sum_y = 0.0, sum_y2 = 0.0;
  for (double v : yseg) {
    sum_y += v;
    sum_y2 += v * v;
  }

  const double* xp = x.data();
  const double* yp = yseg.data();
  RunShiftScan(
      num_shifts, threads, best,
      [&](size_t begin, size_t end, Interval* out) {
        for (size_t shift = begin; shift < end; ++shift) {
          double sum_xy = 0.0;
          const double* xs = xp + shift;
          for (size_t i = 0; i < len; ++i) sum_xy += xs[i] * yp[i];

          const double sum_x = px.RangeSum(shift, len);
          const double sum_x2 = px.RangeSumSquares(shift, len);
          const double denom = flen * sum_x2 - sum_x * sum_x;

          double a, b, err;
          if (denom <= 1e-12 * std::max(1.0, flen * sum_x2)) {
            a = 0.0;
            b = sum_y / flen;
            err = std::max(0.0, sum_y2 - b * sum_y);
          } else {
            a = (flen * sum_xy - sum_x * sum_y) / denom;
            b = (sum_y - a * sum_x) / flen;
            err = std::max(0.0, sum_y2 - a * sum_xy - b * sum_y);
          }
          if (BetterShift(err, static_cast<int64_t>(shift), *out)) {
            TakeShift(out, static_cast<int64_t>(shift), a, b, 0.0, err);
          }
        }
      });
}

// Shift scan for the relative-error metric: weights depend only on y, so
// the y-side weighted sums are hoisted out of the shift loop.
void ScanShiftsRelative(std::span<const double> x,
                        std::span<const double> yseg, double floor,
                        size_t threads, Interval* best) {
  const size_t len = yseg.size();
  if (len == 0 || len > x.size()) return;
  const size_t num_shifts = x.size() - len + 1;

  std::vector<double> w(len), wy(len);
  double sw = 0.0, swy = 0.0, swy2 = 0.0;
  for (size_t i = 0; i < len; ++i) {
    const double d = std::max(std::abs(yseg[i]), floor);
    w[i] = 1.0 / (d * d);
    wy[i] = w[i] * yseg[i];
    sw += w[i];
    swy += wy[i];
    swy2 += wy[i] * yseg[i];
  }

  RunShiftScan(
      num_shifts, threads, best,
      [&](size_t begin, size_t end, Interval* out) {
        for (size_t shift = begin; shift < end; ++shift) {
          const double* xs = x.data() + shift;
          double swx = 0.0, swx2 = 0.0, swxy = 0.0;
          for (size_t i = 0; i < len; ++i) {
            swx += w[i] * xs[i];
            swx2 += w[i] * xs[i] * xs[i];
            swxy += wy[i] * xs[i];
          }
          const double denom = sw * swx2 - swx * swx;
          double a, b, err;
          if (denom <= 1e-12 * std::max(1.0, sw * swx2)) {
            a = 0.0;
            b = swy / sw;
            err = std::max(0.0, swy2 - 2.0 * b * swy + b * b * sw);
          } else {
            a = (sw * swxy - swx * swy) / denom;
            b = (swy - a * swx) / sw;
            err = std::max(0.0, swy2 - a * swxy - b * swy);
          }
          if (BetterShift(err, static_cast<int64_t>(shift), *out)) {
            TakeShift(out, static_cast<int64_t>(shift), a, b, 0.0, err);
          }
        }
      });
}

// Shift scan for the minimax metric: each shift runs a full Chebyshev fit.
// Costly (see regression.h); intended for the error-bound workloads where
// budgets, and therefore scan counts, are small.
void ScanShiftsMaxAbs(std::span<const double> x,
                      std::span<const double> yseg, size_t threads,
                      Interval* best) {
  const size_t len = yseg.size();
  if (len == 0 || len > x.size()) return;
  const size_t num_shifts = x.size() - len + 1;
  RunShiftScan(num_shifts, threads, best,
               [&](size_t begin, size_t end, Interval* out) {
                 for (size_t shift = begin; shift < end; ++shift) {
                   const RegressionResult r =
                       FitMaxAbs(x.subspan(shift, len), yseg);
                   if (BetterShift(r.err, static_cast<int64_t>(shift), *out)) {
                     TakeShift(out, static_cast<int64_t>(shift), r.a, r.b,
                               0.0, r.err);
                   }
                 }
               });
}

// Shift scan for the quadratic encoding extension: a full 3x3 solve per
// shift. O(len) per shift like the other scans, larger constant.
void ScanShiftsQuadratic(std::span<const double> x,
                         std::span<const double> yseg, size_t threads,
                         Interval* best) {
  const size_t len = yseg.size();
  if (len == 0 || len > x.size()) return;
  const size_t num_shifts = x.size() - len + 1;
  RunShiftScan(num_shifts, threads, best,
               [&](size_t begin, size_t end, Interval* out) {
                 for (size_t shift = begin; shift < end; ++shift) {
                   const QuadraticResult q =
                       FitQuadratic(x.subspan(shift, len), yseg);
                   if (BetterShift(q.err, static_cast<int64_t>(shift), *out)) {
                     TakeShift(out, static_cast<int64_t>(shift), q.a, q.b,
                               q.c, q.err);
                   }
                 }
               });
}

}  // namespace

void BestMap(std::span<const double> x, std::span<const double> y,
             size_t w, const BestMapOptions& options, Interval* interval) {
  // Real validation, not an assert: a malformed interval — e.g. decoded
  // from a corrupted frame — must not read out of bounds in a release
  // build. It gets the fall-back marker with infinite error and zeroed
  // coefficients, which downstream consumers already treat as "worthless".
  if (interval->length == 0 || interval->start > y.size() ||
      interval->length > y.size() - interval->start) {
    interval->shift = kShiftLinearFallback;
    interval->a = 0.0;
    interval->b = 0.0;
    interval->c = 0.0;
    interval->err = kInf;
    return;
  }
  const std::span<const double> yseg =
      y.subspan(interval->start, interval->length);

  interval->shift = kShiftLinearFallback;
  interval->c = 0.0;
  interval->err = kInf;

  const bool scan_possible =
      interval->length <= options.max_shift_multiple * w &&
      x.size() >= interval->length;

  if (scan_possible) {
    if (options.quadratic) {
      ScanShiftsQuadratic(x, yseg, options.threads, interval);
    } else {
      switch (options.metric) {
        case ErrorMetric::kSse:
          ScanShiftsSse(x, yseg, options.threads, interval);
          break;
        case ErrorMetric::kSseRelative:
          ScanShiftsRelative(x, yseg, options.relative_floor,
                             options.threads, interval);
          break;
        case ErrorMetric::kMaxAbs:
          ScanShiftsMaxAbs(x, yseg, options.threads, interval);
          break;
      }
    }
  }

  if (options.allow_linear_fallback || !scan_possible) {
    if (options.quadratic) {
      const QuadraticResult q = FitTimeQuadratic(yseg);
      if (q.err < interval->err) {
        interval->shift = kShiftLinearFallback;
        interval->a = q.a;
        interval->b = q.b;
        interval->c = q.c;
        interval->err = q.err;
      }
    } else {
      const RegressionResult r =
          FitTime(options.metric, yseg, options.relative_floor);
      if (r.err < interval->err) {
        interval->shift = kShiftLinearFallback;
        interval->a = r.a;
        interval->b = r.b;
        interval->c = 0.0;
        interval->err = r.err;
      }
    }
  }
}

}  // namespace sbr::core
