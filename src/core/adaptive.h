// AdaptiveSbrEncoder: the deployment policy of paper Section 4.4. The
// expensive GetBase/Search phase runs for the first transmissions (while
// the base signal is being populated) and is then switched off; it is
// switched back on only when the approximation error degrades relative to
// the recent baseline — "perform their execution only periodically (i.e.,
// when we notice a degradation in the quality of the approximation)".
#ifndef SBR_CORE_ADAPTIVE_H_
#define SBR_CORE_ADAPTIVE_H_

#include "core/encoder.h"

namespace sbr::core {

/// Policy knobs for the adaptive update schedule.
struct AdaptiveOptions {
  /// Transmissions that always run the full pipeline before the shortcut
  /// may engage (the base is still warming up).
  size_t warmup_transmissions = 2;
  /// Re-enable updates when the chunk error exceeds this multiple of the
  /// exponential moving average of recent errors.
  double degradation_factor = 1.5;
  /// EMA smoothing for the error baseline (0 < alpha <= 1).
  double ema_alpha = 0.3;
  /// Also refresh unconditionally every this many transmissions
  /// (0 = never; a periodic safety net for slow drift).
  size_t periodic_refresh = 0;
};

/// Wraps SbrEncoder with the Section 4.4 schedule. Drop-in: the chunk API
/// and transmission format are identical; only *when* the base updates run
/// differs.
class AdaptiveSbrEncoder {
 public:
  AdaptiveSbrEncoder(EncoderOptions encoder_options,
                     AdaptiveOptions adaptive_options = AdaptiveOptions())
      : encoder_(std::move(encoder_options)), adaptive_(adaptive_options) {}

  /// Encodes the next chunk, deciding beforehand whether this transmission
  /// runs the full pipeline or the fast frozen-base path.
  StatusOr<Transmission> EncodeChunk(std::span<const double> y,
                                     size_t num_signals);

  /// Did the most recent transmission run the full GetBase/Search phase?
  bool last_used_full_pipeline() const { return last_full_; }
  /// How many of the transmissions so far ran the full pipeline.
  size_t full_pipeline_count() const { return full_count_; }
  size_t transmissions() const { return transmissions_; }

  const SbrEncoder& encoder() const { return encoder_; }
  const EncodeStats& last_stats() const { return encoder_.last_stats(); }

 private:
  SbrEncoder encoder_;
  AdaptiveOptions adaptive_;
  size_t transmissions_ = 0;
  size_t full_count_ = 0;
  bool last_full_ = false;
  bool refresh_requested_ = false;
  double error_ema_ = 0.0;
  bool ema_initialized_ = false;
};

}  // namespace sbr::core

#endif  // SBR_CORE_ADAPTIVE_H_
