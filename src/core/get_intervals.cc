#include "core/get_intervals.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "core/workspace.h"
#include "obs/metrics.h"

namespace sbr::core {
namespace {

// Shared splitting loop: starts from one interval per row (rows given by
// their lengths) and splits the worst interval until the budget or the
// error target is reached.
//
// This is the split stage of the encode pipeline (ingest -> split ->
// BestMap -> Search -> serialize): every interval it enqueues flows
// through BestMap, which is where the per-interval state — prefix sums
// over `x`, y-side regression moments, arena scratch — is consumed. When
// options.best_map carries an EncodeWorkspace, that state is shared and
// memoized across every BestMap call of the chunk (the same (start,
// length) intervals recur across search probes and the final
// approximation), instead of being rebuilt O(|x|) per interval.
StatusOr<ApproximationResult> Run(std::span<const double> x,
                                  std::span<const double> y,
                                  std::span<const size_t> row_lengths,
                                  size_t budget_values, size_t w,
                                  const GetIntervalsOptions& options) {
  if (row_lengths.empty() || y.empty()) {
    return Status::InvalidArgument("empty input");
  }
  const size_t total_len =
      std::accumulate(row_lengths.begin(), row_lengths.end(), size_t{0});
  if (total_len != y.size()) {
    return Status::InvalidArgument(
        "row lengths sum to " + std::to_string(total_len) + ", series has " +
        std::to_string(y.size()) + " values");
  }
  for (size_t len : row_lengths) {
    if (len == 0) return Status::InvalidArgument("zero-length row");
  }
  const size_t max_intervals = budget_values / options.values_per_interval;
  if (max_intervals < row_lengths.size()) {
    return Status::InvalidArgument(
        "budget of " + std::to_string(budget_values) +
        " values cannot afford one interval per signal (" +
        std::to_string(row_lengths.size()) + " needed)");
  }
  // Workspace invariant (debug-only): the shared prefix-sum table must
  // cover the base signal every BestMap call below will scan.
  assert(options.best_map.workspace == nullptr ||
         options.best_map.workspace->base_prefix().size() >= x.size());

  const bool is_max_metric =
      options.best_map.metric == ErrorMetric::kMaxAbs;

  std::priority_queue<Interval> queue;
  // Intervals that cannot be split further (length 1 or zero error).
  std::vector<Interval> frozen;
  double sum_error = 0.0;  // running total for the sum-based metrics

  auto push = [&](Interval iv) {
    sum_error += iv.err;
    if (iv.length <= 1 || iv.err == 0.0) {
      frozen.push_back(iv);
    } else {
      queue.push(iv);
    }
  };

  size_t offset = 0;
  for (size_t len : row_lengths) {
    Interval iv;
    iv.start = offset;
    iv.length = len;
    BestMap(x, y, w, options.best_map, &iv);
    push(iv);
    offset += len;
  }

  auto total_error = [&]() -> double {
    if (!is_max_metric) return sum_error;
    // For the minimax metric the total is the worst interval, which is the
    // head of the priority queue or the worst frozen interval.
    double worst = queue.empty() ? 0.0 : queue.top().err;
    for (const Interval& iv : frozen) worst = std::max(worst, iv.err);
    return worst;
  };

  size_t num_intervals = row_lengths.size();
  while (num_intervals < max_intervals && !queue.empty()) {
    if (options.error_target > 0.0 && total_error() <= options.error_target) {
      break;  // error target met; save the remaining budget (Section 4.5)
    }
    const Interval parent = queue.top();
    if (parent.err == 0.0) break;  // perfect approximation already
    queue.pop();
    sum_error -= parent.err;

    Interval left;
    left.start = parent.start;
    left.length = parent.length / 2;
    BestMap(x, y, w, options.best_map, &left);

    Interval right;
    right.start = parent.start + parent.length / 2;
    right.length = parent.length - parent.length / 2;
    BestMap(x, y, w, options.best_map, &right);

    push(left);
    push(right);
    ++num_intervals;
  }

  ApproximationResult result;
  result.intervals.reserve(num_intervals);
  result.intervals.insert(result.intervals.end(), frozen.begin(),
                          frozen.end());
  while (!queue.empty()) {
    result.intervals.push_back(queue.top());
    queue.pop();
  }
  std::sort(result.intervals.begin(), result.intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  if (is_max_metric) {
    double worst = 0.0;
    for (const Interval& iv : result.intervals) {
      worst = std::max(worst, iv.err);
    }
    result.total_error = worst;
  } else {
    // Recompute from the final list to avoid drift from the running sum.
    double sum = 0.0;
    for (const Interval& iv : result.intervals) sum += iv.err;
    result.total_error = sum;
  }
  result.values_used = result.intervals.size() * options.values_per_interval;
  SBR_OBS_COUNT("encode.get_intervals.runs", 1);
  SBR_OBS_COUNT("encode.get_intervals.splits",
                num_intervals - row_lengths.size());
  return result;
}

}  // namespace

StatusOr<ApproximationResult> GetIntervals(
    std::span<const double> x, std::span<const double> y, size_t num_signals,
    size_t budget_values, size_t w, const GetIntervalsOptions& options) {
  if (num_signals == 0 || y.empty()) {
    return Status::InvalidArgument("empty input");
  }
  if (y.size() % num_signals != 0) {
    return Status::InvalidArgument("series length " +
                                   std::to_string(y.size()) +
                                   " not divisible by num_signals");
  }
  const std::vector<size_t> lengths(num_signals, y.size() / num_signals);
  return Run(x, y, lengths, budget_values, w, options);
}

StatusOr<ApproximationResult> GetIntervalsMultiRate(
    std::span<const double> x, std::span<const double> y,
    std::span<const size_t> row_lengths, size_t budget_values, size_t w,
    const GetIntervalsOptions& options) {
  return Run(x, y, row_lengths, budget_values, w, options);
}

std::vector<double> ReconstructFromIntervals(
    std::span<const double> x, size_t total_len,
    std::span<const Interval> intervals) {
  std::vector<double> out(total_len, 0.0);
  for (const Interval& iv : intervals) {
    assert(iv.start + iv.length <= total_len);
    for (size_t i = 0; i < iv.length; ++i) {
      if (iv.shift == kShiftLinearFallback) {
        const double t = static_cast<double>(i);
        out[iv.start + i] = iv.a * t + iv.b + iv.c * t * t;
      } else {
        assert(static_cast<size_t>(iv.shift) + iv.length <= x.size());
        const double xv = x[static_cast<size_t>(iv.shift) + i];
        out[iv.start + i] = iv.a * xv + iv.b + iv.c * xv * xv;
      }
    }
  }
  return out;
}

}  // namespace sbr::core
