// The fixed DCT cosine dictionary of the paper's Appendix
// (GetBaseDCT): one base interval per frequency f in [0, W], with values
// cos((2i+1) pi f / (2W)). It is never transmitted or stored against
// M_base; encoder and decoder both regenerate it on the fly.
#ifndef SBR_CORE_FIXED_BASE_H_
#define SBR_CORE_FIXED_BASE_H_

#include <cstddef>
#include <vector>

namespace sbr::core {

/// Flat concatenation of the W + 1 cosine base intervals, (W+1)*W values.
std::vector<double> MakeDctFixedBase(size_t w);

}  // namespace sbr::core

#endif  // SBR_CORE_FIXED_BASE_H_
