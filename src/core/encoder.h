// SbrEncoder: the sensor-side driver (paper Algorithm 5). Owns the
// base-signal buffer across transmissions and turns each full data chunk
// into one Transmission:
//   1. construct candidate base intervals (GetBase by default),
//   2. binary-search how many to insert (Search),
//   3. place them (free slots first, then LFU eviction),
//   4. approximate the chunk against the final base signal (GetIntervals).
#ifndef SBR_CORE_ENCODER_H_
#define SBR_CORE_ENCODER_H_

#include <functional>
#include <span>
#include <vector>

#include "core/base_signal.h"
#include "core/error_metric.h"
#include "core/get_base.h"
#include "core/get_intervals.h"
#include "core/transmission.h"
#include "core/workspace.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace sbr::core {

/// Pluggable base-interval construction: given the concatenated chunk,
/// returns up to max_ins candidate intervals of width w in selection order.
/// Used to swap in the SVD construction of the paper's Appendix.
using BaseProvider = std::function<std::vector<CandidateBaseInterval>(
    std::span<const double> y, size_t num_signals, size_t w, size_t max_ins)>;

/// Which base signal the encoder maintains.
enum class BaseStrategy {
  kGetBase,        ///< paper Algorithm 4 (default)
  kGetBaseLowMem,  ///< memory-constrained Algorithm 4 variant
  kCustom,         ///< options.base_provider supplies candidates (e.g. SVD)
  kDctFixed,       ///< fixed cosine dictionary, nothing stored/transmitted
  kNone,           ///< no base: plain piecewise linear regression
};

/// Encoder configuration. Only total_band and m_base are required inputs,
/// mirroring the paper ("the user provides only TotalBand and M_base").
struct EncoderOptions {
  /// Bandwidth per transmission, in values. Must afford at least one
  /// interval per signal.
  size_t total_band = 0;
  /// Base-signal buffer capacity in values (M_base).
  size_t m_base = 0;
  /// Base-interval width; 0 = floor(sqrt(N * M)) at the first chunk.
  size_t w = 0;
  ErrorMetric metric = ErrorMetric::kSse;
  double relative_floor = 1.0;
  /// Disable to reproduce the Table 5 setting (no linear fall-back).
  bool allow_linear_fallback = true;
  BaseStrategy base_strategy = BaseStrategy::kGetBase;
  BaseProvider base_provider;  ///< required iff base_strategy == kCustom
  /// When false the expensive GetBase/Search phase is skipped entirely and
  /// the existing base signal is reused (the Section 4.4 shortcut).
  bool update_base = true;
  /// When > 0, GetIntervals stops splitting once the total error reaches
  /// this target, spending less than total_band (Section 4.5).
  double error_target = 0.0;
  /// Intervals longer than this multiple of W skip the shift scan.
  size_t max_shift_multiple = 2;
  EvictionPolicy eviction = EvictionPolicy::kLfu;
  /// Non-linear encoding extension (paper Section 6): quadratic
  /// projections y' = a x + b + c x^2 at 5 values per interval.
  /// SSE metric only.
  bool quadratic = false;
  /// Compact wire mode: coefficients and base values travel as 32-bit
  /// floats, matching the paper's 32-bit value accounting and halving the
  /// bits on the air. Base-signal values are rounded *before* entering
  /// the sensor-side buffer so encoder and decoder mirrors stay
  /// bit-identical; the precision loss shows up only as a slightly larger
  /// approximation error.
  bool compact_wire = false;
  /// Worker threads for the encoding hot paths: BestMap shift scans, the
  /// GetBase benefit matrix and greedy re-scoring, and the insert-count
  /// search probes (NetworkSim additionally fans its per-node encodes out
  /// over the same count). Every parallel loop uses static chunking with a
  /// deterministic reduction, so the emitted transmissions are bitwise
  /// identical at any value. 1 (the default) runs everything on the
  /// calling thread; pass sbr::util::HardwareThreads() to use the machine.
  size_t threads = 1;
};

/// Per-chunk encoder diagnostics.
struct EncodeStats {
  size_t inserted_base_intervals = 0;
  size_t num_intervals = 0;
  size_t values_used = 0;
  double total_error = 0.0;
  size_t search_probes = 0;
  /// Workspace reuse counters for the chunk (moment-cache hit rate,
  /// prefix-sum rebuilds vs incremental appends).
  WorkspaceStats workspace;
};

/// Stateful sensor-side encoder. Chunks must share one geometry
/// (num_signals x chunk_len); the first chunk fixes it.
class SbrEncoder {
 public:
  explicit SbrEncoder(EncoderOptions options);

  /// Borrows an external workspace instead of using the encoder's own —
  /// the composition hook for hosts that already keep one per node or per
  /// thread (SbrCompressor, SensorNode's degraded re-encode path). The
  /// workspace must outlive the encoder; the encoder resets it at the
  /// start of every chunk, so sharing one workspace across *sequentially*
  /// encoding encoders is safe, concurrent sharing is not.
  SbrEncoder(EncoderOptions options, EncodeWorkspace* workspace);

  /// Encodes the next chunk of measurements into one transmission.
  StatusOr<Transmission> EncodeChunk(const linalg::Matrix& chunk);

  /// Span form: `y` is the concatenation of num_signals equal-length rows.
  StatusOr<Transmission> EncodeChunk(std::span<const double> y,
                                     size_t num_signals);

  /// Multi-rate form (paper Section 3.2, footnote 2): `y` concatenates
  /// rows of the per-signal lengths given in `row_lengths`, allowing each
  /// quantity its own sampling schedule. The lengths must be identical on
  /// every transmission.
  StatusOr<Transmission> EncodeChunkMultiRate(
      std::span<const double> y, std::span<const size_t> row_lengths);

  const EncoderOptions& options() const { return options_; }

  /// Runtime switch for the Section 4.4 deployment mode: disable to skip
  /// the GetBase/Search phase (reusing the frozen base signal) from the
  /// next chunk on, re-enable when approximation quality degrades.
  void set_update_base(bool update) { options_.update_base = update; }
  /// Base-interval width in effect (known after the first chunk).
  size_t w() const { return w_; }
  const BaseSignal& base_signal() const { return base_; }
  const EncodeStats& last_stats() const { return stats_; }
  /// The workspace the encode pipeline runs against (owned or borrowed).
  const EncodeWorkspace& workspace() const { return *workspace_; }

  /// Switches between the interchangeable stored-base constructions
  /// (kGetBase <-> kGetBaseLowMem), the memory-pressure degraded mode. Any
  /// other transition would change the wire format mid-stream and is
  /// refused.
  Status SetBaseStrategy(BaseStrategy strategy);

  /// Serializes the cross-chunk encoder state (geometry, W, base-signal
  /// buffer, active stored-base strategy) for crash checkpoints. Restoring
  /// into an encoder built with the same options resumes byte-identical
  /// encoding. Per-chunk scratch (workspace, stats) is not part of the
  /// state — it is rebuilt on the next chunk.
  void SaveState(BinaryWriter* writer) const;
  Status RestoreState(BinaryReader* reader);

 private:
  Status ValidateGeometry(std::span<const size_t> row_lengths);
  StatusOr<Transmission> EncodeImpl(std::span<const double> y,
                                    std::span<const size_t> row_lengths,
                                    bool uniform);
  std::vector<CandidateBaseInterval> BuildCandidates(
      std::span<const double> y, size_t max_ins) const;

  EncoderOptions options_;
  size_t w_ = 0;
  std::vector<size_t> row_lengths_;  // fixed by the first chunk
  BaseSignal base_;
  std::vector<double> dct_base_;  // only for kDctFixed
  EncodeStats stats_;
  /// Arena for the encode hot path (see core/workspace.h): prefix sums
  /// over the (trial) base signal, per-interval moment cache, per-thread
  /// scratch. Owned by default; an injected workspace is only borrowed.
  EncodeWorkspace owned_workspace_;
  EncodeWorkspace* workspace_ = nullptr;
};

}  // namespace sbr::core

#endif  // SBR_CORE_ENCODER_H_
