// Search (paper Algorithms 6 & 7): determines how many of the candidate
// base intervals returned by GetBase to actually insert, by a binary search
// over the (assumed unimodal) total-error-vs-insert-count curve. Each
// probe re-runs GetIntervals with the trial base signal and the bandwidth
// that remains after paying for the trial insertions.
#ifndef SBR_CORE_SEARCH_H_
#define SBR_CORE_SEARCH_H_

#include <span>
#include <vector>

#include "core/get_base.h"
#include "core/get_intervals.h"

namespace sbr::core {

class EncodeWorkspace;

/// Inputs to the insert-count search.
struct SearchContext {
  /// Flat current base signal (may be empty on the first transmission).
  std::span<const double> current_base;
  /// Candidates from GetBase, in selection order; the search decides how
  /// long a prefix to insert.
  const std::vector<CandidateBaseInterval>* candidates = nullptr;
  /// Concatenated data chunk.
  std::span<const double> y;
  size_t num_signals = 0;
  /// Multi-rate rows: when non-empty, overrides num_signals and gives the
  /// per-row lengths of `y`.
  std::span<const size_t> row_lengths;
  size_t w = 0;
  /// Total values available for this transmission; each trial insertion
  /// costs w + 1 of them (values + slot position).
  size_t total_band = 0;
  GetIntervalsOptions get_intervals;
  /// Optional encode workspace. When set, the search builds the maximal
  /// trial base (current base + every candidate) in the workspace once,
  /// extending its prefix sums incrementally, and each probe evaluates
  /// against a prefix *view* of that buffer — no per-probe base copy, no
  /// per-interval prefix rebuild. Probes that run concurrently (Prefetch)
  /// are assigned distinct workspace arenas by ParallelFor chunk id.
  /// Results are bitwise identical with or without a workspace.
  EncodeWorkspace* workspace = nullptr;
};

/// Result of the search: the chosen prefix length and the probe record.
struct SearchResult {
  size_t ins = 0;
  /// errors[i] = total approximation error with the first i candidates
  /// inserted; NaN where the search never probed.
  std::vector<double> errors;
  /// Number of GetIntervals invocations spent (the dominant cost).
  size_t probes = 0;
};

/// Runs the binary search of Algorithm 7 over [0, candidates->size()].
/// Trial counts whose remaining budget cannot afford one interval per
/// signal evaluate to +infinity and are never chosen.
SearchResult SearchInsertCount(const SearchContext& ctx);

}  // namespace sbr::core

#endif  // SBR_CORE_SEARCH_H_
