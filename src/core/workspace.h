// EncodeWorkspace: the shared scratch arena of the encode pipeline
// (DESIGN.md §5e). Every stage of one chunk's encode — GetBase scoring,
// the insert-count search probes, the final GetIntervals approximation —
// draws from one workspace instead of allocating per call:
//
//  * the trial-base buffer plus an *incrementally extended* prefix-sum
//    table (PrefixSums::Append performs the identical left-to-right
//    additions as a full Reset, so the grown table is bitwise identical
//    to a rebuilt one),
//  * a per-interval moment cache keyed by the y-segment's (start, length)
//    — the cached sums come from the exact original accumulation loops,
//    never from prefix-sum subtraction, so byte identity with the
//    workspace-less kernels holds,
//  * a pool of EncodeArenas, one per ParallelFor chunk, holding the
//    relative-metric weight arrays and the time-ramp buffer.
//
// The workspace is purely an allocation/reuse mechanism: every consumer
// produces bitwise-identical results with or without one (golden_test
// pins this).
#ifndef SBR_CORE_WORKSPACE_H_
#define SBR_CORE_WORKSPACE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/prefix_sums.h"

namespace sbr::core {

/// y-side moments of one interval under the SSE metric, hoisted out of
/// the shift loop (they do not depend on the shift).
struct SseMoments {
  double sum_y = 0.0;
  double sum_y2 = 0.0;
};

/// y-side weighted moments of one interval under the relative metric
/// (weights depend only on y, so these too are shift-invariant).
struct RelativeMoments {
  double sw = 0.0;
  double swy = 0.0;
  double swy2 = 0.0;
};

/// Per-chunk workspace reuse counters, surfaced via EncodeStats and the
/// obs registry ("encode.workspace.*").
struct WorkspaceStats {
  size_t moment_hits = 0;     ///< moment-cache lookups served from cache
  size_t moment_misses = 0;   ///< lookups that ran the accumulation loop
  size_t prefix_resets = 0;   ///< full prefix-table rebuilds (SetBase)
  size_t prefix_appends = 0;  ///< values appended incrementally
};

/// Grow-only scratch owned by one ParallelFor chunk (or one serial
/// caller): no two concurrent BestMap calls may share an arena, which the
/// pipeline guarantees by indexing EncodeWorkspace::arena(chunk) with the
/// enclosing parallel region's chunk id. Default-constructible so
/// workspace-less callers can keep a thread-local fallback.
class EncodeArena {
 public:
  /// The time ramp t = 0, 1, ..., n-1 used by every linear-in-time fit.
  /// Grow-only: extending never changes existing values, so returned
  /// spans of length <= n stay valid and identical.
  std::span<const double> TimeRamp(size_t n) {
    for (size_t i = ramp_.size(); i < n; ++i) {
      ramp_.push_back(static_cast<double>(i));
    }
    return std::span<const double>(ramp_.data(), n);
  }

  /// Relative-metric weight array w_i = 1 / max(|y_i|, floor)^2, filled by
  /// EncodeWorkspace::Relative for the interval being scanned.
  std::vector<double>& weights() { return weights_; }
  /// The elementwise product w_i * y_i, filled alongside weights().
  std::vector<double>& weighted_values() { return weighted_values_; }

 private:
  std::vector<double> ramp_;
  std::vector<double> weights_;
  std::vector<double> weighted_values_;
};

/// One workspace per encoder (owned by SbrEncoder, or borrowed via its
/// two-argument constructor). BeginChunk resets it at the start of every
/// encode; sharing across *sequentially* encoding encoders is therefore
/// safe, concurrent sharing is not. The moment cache is internally
/// mutex-guarded because concurrent search probes (and the parallel
/// GetIntervals bodies they run) query it from pool threads.
class EncodeWorkspace {
 public:
  EncodeWorkspace() = default;
  EncodeWorkspace(const EncodeWorkspace&) = delete;
  EncodeWorkspace& operator=(const EncodeWorkspace&) = delete;

  /// Starts a new chunk: clears the per-interval moment cache (the
  /// y-series changes), zeroes the per-chunk stats and sizes the arena
  /// pool for `threads` ParallelFor chunks. Arena and trial buffers keep
  /// their capacity across chunks — that reuse is the point.
  void BeginChunk(size_t threads);

  /// Reserves trial-base capacity for `total` values so the subsequent
  /// SetBase/AppendBase sequence does not reallocate.
  void ReserveBase(size_t total);

  /// Rebinds the trial base to `x`: copies it and rebuilds the prefix
  /// table from scratch (counted as a prefix_reset).
  void SetBase(std::span<const double> x);

  /// Extends the trial base by `values`, appending to the prefix table
  /// incrementally in O(|values|) (counted as prefix_appends).
  void AppendBase(std::span<const double> values);

  /// Current trial-base length in values.
  size_t trial_size() const { return trial_.size(); }

  /// Read-only prefix view of the trial base; `length` must not exceed
  /// trial_size(). Stable across AppendBase only when ReserveBase covered
  /// the final size (the search builds the maximal trial up front).
  std::span<const double> TrialPrefix(size_t length) const {
    assert(length <= trial_.size());
    return std::span<const double>(trial_.data(), length);
  }

  /// Prefix sums over the current trial base (SsePolicy's shared table).
  const PrefixSums& base_prefix() const { return prefix_; }

  /// Scratch arena of ParallelFor chunk `chunk`. BeginChunk must have
  /// sized the pool for the thread count in use.
  EncodeArena& arena(size_t chunk) {
    assert(chunk < arenas_.size());
    return arenas_[chunk];
  }

  /// y-side SSE moments of the interval starting at `start` (its offset
  /// in the chunk's concatenated series, which keys the cache). Thread-safe.
  SseMoments Sse(std::span<const double> yseg, size_t start);

  /// y-side weighted moments of the interval at `start` under the
  /// relative metric, additionally filling `arena`'s weights() and
  /// weighted_values() arrays for the shift scan. The moments are cached;
  /// the weight arrays are rebuilt elementwise per call (each element is
  /// independent, so the fill is order-insensitive and byte-stable).
  /// Thread-safe; concurrent callers must pass distinct arenas.
  RelativeMoments Relative(std::span<const double> yseg, size_t start,
                           double floor, EncodeArena* arena);

  /// Per-chunk reuse counters (since the last BeginChunk).
  WorkspaceStats stats() const;

 private:
  // Cache key: (start << 32) | length. Chunk series are far below 2^32
  // values, and intervals at one start with different lengths occur across
  // split generations, so both halves are significant.
  static uint64_t Key(size_t start, size_t length) {
    return (static_cast<uint64_t>(start) << 32) |
           static_cast<uint64_t>(length & 0xffffffffu);
  }

  std::vector<double> trial_;
  PrefixSums prefix_;
  std::vector<EncodeArena> arenas_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, SseMoments> sse_cache_;
  // The relative cache assumes one relative_floor per chunk (it is fixed
  // by EncoderOptions), so the floor is not part of the key.
  std::unordered_map<uint64_t, RelativeMoments> relative_cache_;
  WorkspaceStats stats_;
};

}  // namespace sbr::core

#endif  // SBR_CORE_WORKSPACE_H_
