#include "core/base_signal.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sbr::core {

BaseSignal::BaseSignal(size_t w, size_t capacity_values,
                       EvictionPolicy policy)
    : w_(w),
      num_slots_(w == 0 ? 0 : capacity_values / w),
      policy_(policy),
      values_(num_slots_ * w, 0.0),
      use_counts_(num_slots_, 0),
      inserted_at_(num_slots_, 0) {
  assert(w > 0);
}

std::vector<size_t> BaseSignal::PlanPlacement(size_t ins) {
  assert(ins <= num_slots_);
  std::vector<size_t> plan;
  plan.reserve(ins);
  // Free slots first, in order.
  size_t next_free = used_slots_;
  while (plan.size() < ins && next_free < num_slots_) {
    plan.push_back(next_free++);
  }
  if (plan.size() == ins) return plan;

  // Evict existing slots. Candidates are all currently used slots; rank by
  // policy and take the worst.
  std::vector<size_t> order(used_slots_);
  std::iota(order.begin(), order.end(), 0);
  switch (policy_) {
    case EvictionPolicy::kLfu:
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (use_counts_[a] != use_counts_[b]) {
          return use_counts_[a] < use_counts_[b];
        }
        return inserted_at_[a] < inserted_at_[b];  // older first on ties
      });
      break;
    case EvictionPolicy::kFifo:
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return inserted_at_[a] < inserted_at_[b];
      });
      break;
    case EvictionPolicy::kRandom:
      // Fisher-Yates with a private xorshift stream for determinism.
      for (size_t i = order.size(); i > 1; --i) {
        random_state_ ^= random_state_ << 13;
        random_state_ ^= random_state_ >> 7;
        random_state_ ^= random_state_ << 17;
        std::swap(order[i - 1], order[random_state_ % i]);
      }
      break;
  }
  for (size_t i = 0; plan.size() < ins; ++i) {
    assert(i < order.size());
    plan.push_back(order[i]);
  }
  return plan;
}

Status BaseSignal::Overwrite(size_t slot, std::span<const double> vals) {
  if (vals.size() != w_) {
    return Status::InvalidArgument("interval has " +
                                   std::to_string(vals.size()) +
                                   " values, slot width is " +
                                   std::to_string(w_));
  }
  if (slot > used_slots_ || slot >= num_slots_) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range (used " +
                              std::to_string(used_slots_) + " of " +
                              std::to_string(num_slots_) + ")");
  }
  std::copy(vals.begin(), vals.end(), values_.begin() + slot * w_);
  if (slot == used_slots_) ++used_slots_;
  use_counts_[slot] = 0;
  inserted_at_[slot] = ++insertion_clock_;
  return Status::Ok();
}

void BaseSignal::SaveState(BinaryWriter* writer) const {
  writer->PutU64(w_);
  writer->PutU64(num_slots_);
  writer->PutU64(used_slots_);
  writer->PutU8(static_cast<uint8_t>(policy_));
  writer->PutU64(insertion_clock_);
  writer->PutU64(random_state_);
  writer->PutDoubles(values_);
  for (uint64_t c : use_counts_) writer->PutU64(c);
  for (uint64_t a : inserted_at_) writer->PutU64(a);
}

StatusOr<BaseSignal> BaseSignal::LoadState(BinaryReader* reader) {
  BaseSignal sig;
  uint64_t w = 0, num_slots = 0, used_slots = 0;
  uint8_t policy = 0;
  SBR_RETURN_IF_ERROR(reader->GetU64(&w));
  SBR_RETURN_IF_ERROR(reader->GetU64(&num_slots));
  SBR_RETURN_IF_ERROR(reader->GetU64(&used_slots));
  SBR_RETURN_IF_ERROR(reader->GetU8(&policy));
  if (policy > static_cast<uint8_t>(EvictionPolicy::kRandom)) {
    return Status::DataLoss("invalid eviction policy in base-signal state");
  }
  if (used_slots > num_slots) {
    return Status::DataLoss("base-signal state used_slots > num_slots");
  }
  sig.w_ = w;
  sig.num_slots_ = num_slots;
  sig.used_slots_ = used_slots;
  sig.policy_ = static_cast<EvictionPolicy>(policy);
  SBR_RETURN_IF_ERROR(reader->GetU64(&sig.insertion_clock_));
  SBR_RETURN_IF_ERROR(reader->GetU64(&sig.random_state_));
  SBR_RETURN_IF_ERROR(reader->GetDoubles(&sig.values_));
  if (sig.values_.size() != num_slots * w) {
    return Status::DataLoss("base-signal state value count mismatch");
  }
  sig.use_counts_.resize(num_slots);
  sig.inserted_at_.resize(num_slots);
  for (auto& c : sig.use_counts_) SBR_RETURN_IF_ERROR(reader->GetU64(&c));
  for (auto& a : sig.inserted_at_) SBR_RETURN_IF_ERROR(reader->GetU64(&a));
  return sig;
}

void BaseSignal::RecordUse(size_t shift, size_t length) {
  if (length == 0 || w_ == 0) return;
  assert(shift + length <= used_slots_ * w_);
  const size_t first = shift / w_;
  const size_t last = (shift + length - 1) / w_;
  for (size_t s = first; s <= last && s < used_slots_; ++s) {
    ++use_counts_[s];
  }
}

}  // namespace sbr::core
