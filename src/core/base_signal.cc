#include "core/base_signal.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sbr::core {

BaseSignal::BaseSignal(size_t w, size_t capacity_values,
                       EvictionPolicy policy)
    : w_(w),
      num_slots_(w == 0 ? 0 : capacity_values / w),
      policy_(policy),
      values_(num_slots_ * w, 0.0),
      use_counts_(num_slots_, 0),
      inserted_at_(num_slots_, 0) {
  assert(w > 0);
}

std::vector<size_t> BaseSignal::PlanPlacement(size_t ins) {
  assert(ins <= num_slots_);
  std::vector<size_t> plan;
  plan.reserve(ins);
  // Free slots first, in order.
  size_t next_free = used_slots_;
  while (plan.size() < ins && next_free < num_slots_) {
    plan.push_back(next_free++);
  }
  if (plan.size() == ins) return plan;

  // Evict existing slots. Candidates are all currently used slots; rank by
  // policy and take the worst.
  std::vector<size_t> order(used_slots_);
  std::iota(order.begin(), order.end(), 0);
  switch (policy_) {
    case EvictionPolicy::kLfu:
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (use_counts_[a] != use_counts_[b]) {
          return use_counts_[a] < use_counts_[b];
        }
        return inserted_at_[a] < inserted_at_[b];  // older first on ties
      });
      break;
    case EvictionPolicy::kFifo:
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return inserted_at_[a] < inserted_at_[b];
      });
      break;
    case EvictionPolicy::kRandom:
      // Fisher-Yates with a private xorshift stream for determinism.
      for (size_t i = order.size(); i > 1; --i) {
        random_state_ ^= random_state_ << 13;
        random_state_ ^= random_state_ >> 7;
        random_state_ ^= random_state_ << 17;
        std::swap(order[i - 1], order[random_state_ % i]);
      }
      break;
  }
  for (size_t i = 0; plan.size() < ins; ++i) {
    assert(i < order.size());
    plan.push_back(order[i]);
  }
  return plan;
}

Status BaseSignal::Overwrite(size_t slot, std::span<const double> vals) {
  if (vals.size() != w_) {
    return Status::InvalidArgument("interval has " +
                                   std::to_string(vals.size()) +
                                   " values, slot width is " +
                                   std::to_string(w_));
  }
  if (slot > used_slots_ || slot >= num_slots_) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range (used " +
                              std::to_string(used_slots_) + " of " +
                              std::to_string(num_slots_) + ")");
  }
  std::copy(vals.begin(), vals.end(), values_.begin() + slot * w_);
  if (slot == used_slots_) ++used_slots_;
  use_counts_[slot] = 0;
  inserted_at_[slot] = ++insertion_clock_;
  return Status::Ok();
}

void BaseSignal::RecordUse(size_t shift, size_t length) {
  if (length == 0 || w_ == 0) return;
  assert(shift + length <= used_slots_ * w_);
  const size_t first = shift / w_;
  const size_t last = (shift + length - 1) / w_;
  for (size_t s = first; s <= last && s < used_slots_; ++s) {
    ++use_counts_[s];
  }
}

}  // namespace sbr::core
