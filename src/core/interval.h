// The interval data structure of Section 4.2: a contiguous range of the
// concatenated data series Y together with its mapping onto the base
// signal and the regression coefficients of that mapping.
#ifndef SBR_CORE_INTERVAL_H_
#define SBR_CORE_INTERVAL_H_

#include <cstdint>

namespace sbr::core {

/// Marker for intervals approximated by the fall-back linear-in-time
/// regression instead of a base-signal projection.
inline constexpr int64_t kShiftLinearFallback = -1;

/// One approximation interval. Values Y[start .. start+length) are encoded
/// as a * X[shift .. shift+length) + b when shift >= 0, or as
/// a * (i - start) + b when shift == kShiftLinearFallback.
struct Interval {
  uint64_t start = 0;
  uint64_t length = 0;
  int64_t shift = kShiftLinearFallback;
  double a = 0.0;
  double b = 0.0;
  /// Quadratic coefficient of the non-linear encoding extension
  /// (paper Section 6): y' = a x + b + c x^2. Zero under the standard
  /// linear encoding.
  double c = 0.0;
  /// Error of the approximation under the active metric.
  double err = 0.0;

  /// Ordering used by the GetIntervals priority queue: worst error first.
  bool operator<(const Interval& other) const {
    // std::priority_queue is a max-heap on operator<, so "less" means
    // "lower priority" = smaller error.
    return err < other.err;
  }
};

}  // namespace sbr::core

#endif  // SBR_CORE_INTERVAL_H_
