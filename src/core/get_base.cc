#include "core/get_base.h"

#include <algorithm>
#include <vector>

#include "core/regression.h"
#include "core/workspace.h"
#include "util/thread_pool.h"

namespace sbr::core {
namespace {

// Enumerates the K candidate windows: each signal row contributes
// floor(len / w) non-overlapping W-wide windows; the tail remainder of
// each row is not a candidate (DESIGN.md note 5). Rows may have distinct
// lengths (multi-rate sampling, Section 3.2 footnote 2).
std::vector<std::span<const double>> EnumerateCandidates(
    std::span<const double> y, std::span<const size_t> row_lengths,
    size_t w) {
  std::vector<std::span<const double>> cands;
  if (w == 0) return cands;
  size_t offset = 0;
  for (size_t len : row_lengths) {
    for (size_t k = 0; (k + 1) * w <= len; ++k) {
      cands.push_back(y.subspan(offset + k * w, w));
    }
    offset += len;
  }
  return cands;
}

// Deterministic parallel argmax over the unselected candidates: each chunk
// finds its local (benefit, index) best, and the chunk bests are merged in
// chunk order preferring higher benefit, then lower index — exactly the
// candidate the serial ascending loop would pick.
template <typename Score>
void BestCandidate(size_t k, size_t threads,
                   const std::vector<bool>& selected, const Score& score,
                   double* best_benefit, size_t* best_i) {
  const size_t num_chunks = util::NumChunks(threads, k);
  std::vector<double> chunk_benefit(num_chunks, -1.0);
  std::vector<size_t> chunk_i(num_chunks, k);
  util::ParallelFor(threads, k, [&](size_t chunk, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (selected[i]) continue;
      const double benefit = score(i);
      if (benefit > chunk_benefit[chunk]) {
        chunk_benefit[chunk] = benefit;
        chunk_i[chunk] = i;
      }
    }
  });
  *best_benefit = -1.0;
  *best_i = k;
  for (size_t c = 0; c < num_chunks; ++c) {
    if (chunk_benefit[c] > *best_benefit ||
        (chunk_benefit[c] == *best_benefit && chunk_i[c] < *best_i)) {
      *best_benefit = chunk_benefit[c];
      *best_i = chunk_i[c];
    }
  }
}

// Per-chunk arena lookup shared by the scoring loops: workspace callers
// get the arena of the ParallelFor chunk they run on, others fall back to
// the thread-local arena inside FitTime.
EncodeArena* ArenaFor(const GetBaseOptions& options, size_t chunk) {
  return options.workspace != nullptr ? &options.workspace->arena(chunk)
                                      : nullptr;
}

// Shared greedy-selection body over a fixed candidate list.
std::vector<CandidateBaseInterval> SelectGreedy(
    const std::vector<std::span<const double>>& cands, size_t max_ins,
    const GetBaseOptions& options) {
  const size_t k = cands.size();
  const size_t threads = options.threads;
  std::vector<CandidateBaseInterval> result;
  if (k == 0 || max_ins == 0) return result;

  // err[i * k + j]: error of approximating CBI j as a linear projection of
  // CBI i. The diagonal is ~0 (a=1, b=0). Rows are independent, so the
  // O(K^2 W) build fans out over the pool row by row.
  std::vector<double> err(k * k);
  std::vector<double> best_err(k);
  util::ParallelFor(threads, k, [&](size_t chunk, size_t begin, size_t end) {
    EncodeArena* arena = ArenaFor(options, chunk);
    for (size_t j = begin; j < end; ++j) {
      best_err[j] =
          FitTime(options.metric, cands[j], options.relative_floor, arena)
              .err;
    }
  });
  util::ParallelFor(threads, k, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < k; ++j) {
        err[i * k + j] =
            Fit(options.metric, cands[i], cands[j], options.relative_floor)
                .err;
      }
    }
  });

  std::vector<bool> selected(k, false);
  max_ins = std::min(max_ins, k);
  result.reserve(max_ins);
  for (size_t round = 0; round < max_ins; ++round) {
    double best_benefit = -1.0;
    size_t best_i = k;
    BestCandidate(k, threads, selected,
                  [&](size_t i) {
                    double benefit = 0.0;
                    const double* row = &err[i * k];
                    for (size_t j = 0; j < k; ++j) {
                      const double gain = best_err[j] - row[j];
                      if (gain > 0.0) benefit += gain;
                    }
                    return benefit;
                  },
                  &best_benefit, &best_i);
    if (best_i == k || best_benefit <= options.min_benefit) break;
    selected[best_i] = true;
    CandidateBaseInterval cbi;
    cbi.values.assign(cands[best_i].begin(), cands[best_i].end());
    cbi.source_index = best_i;
    cbi.benefit = best_benefit;
    result.push_back(std::move(cbi));
    const double* row = &err[best_i * k];
    for (size_t j = 0; j < k; ++j) {
      best_err[j] = std::min(best_err[j], row[j]);
    }
  }
  return result;
}

}  // namespace

std::vector<CandidateBaseInterval> GetBase(std::span<const double> y,
                                           size_t num_signals, size_t w,
                                           size_t max_ins,
                                           const GetBaseOptions& options) {
  if (num_signals == 0) return {};
  const std::vector<size_t> lengths(num_signals, y.size() / num_signals);
  return SelectGreedy(EnumerateCandidates(y, lengths, w), max_ins, options);
}

std::vector<CandidateBaseInterval> GetBaseMultiRate(
    std::span<const double> y, std::span<const size_t> row_lengths, size_t w,
    size_t max_ins, const GetBaseOptions& options) {
  return SelectGreedy(EnumerateCandidates(y, row_lengths, w), max_ins,
                      options);
}

std::vector<CandidateBaseInterval> GetBaseLowMem(
    std::span<const double> y, size_t num_signals, size_t w, size_t max_ins,
    const GetBaseOptions& options) {
  if (num_signals == 0) return {};
  const std::vector<size_t> lengths(num_signals, y.size() / num_signals);
  const auto cands = EnumerateCandidates(y, lengths, w);
  const size_t k = cands.size();
  const size_t threads = options.threads;
  std::vector<CandidateBaseInterval> result;
  if (k == 0 || max_ins == 0) return result;

  std::vector<double> best_err(k);
  util::ParallelFor(threads, k, [&](size_t chunk, size_t begin, size_t end) {
    EncodeArena* arena = ArenaFor(options, chunk);
    for (size_t j = begin; j < end; ++j) {
      best_err[j] =
          FitTime(options.metric, cands[j], options.relative_floor, arena)
              .err;
    }
  });

  auto pair_err = [&](size_t i, size_t j) {
    return Fit(options.metric, cands[i], cands[j], options.relative_floor)
        .err;
  };

  std::vector<bool> selected(k, false);
  max_ins = std::min(max_ins, k);
  result.reserve(max_ins);
  for (size_t round = 0; round < max_ins; ++round) {
    double best_benefit = -1.0;
    size_t best_i = k;
    // The O(K^2 W) re-scoring is the whole cost of the low-memory variant;
    // each candidate's rescan is independent.
    BestCandidate(k, threads, selected,
                  [&](size_t i) {
                    double benefit = 0.0;
                    for (size_t j = 0; j < k; ++j) {
                      const double gain = best_err[j] - pair_err(i, j);
                      if (gain > 0.0) benefit += gain;
                    }
                    return benefit;
                  },
                  &best_benefit, &best_i);
    if (best_i == k || best_benefit <= options.min_benefit) break;
    selected[best_i] = true;
    CandidateBaseInterval cbi;
    cbi.values.assign(cands[best_i].begin(), cands[best_i].end());
    cbi.source_index = best_i;
    cbi.benefit = best_benefit;
    result.push_back(std::move(cbi));
    util::ParallelFor(threads, k, [&](size_t, size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        best_err[j] = std::min(best_err[j], pair_err(best_i, j));
      }
    });
  }
  return result;
}

}  // namespace sbr::core
