#include "core/decoder.h"

#include <algorithm>

#include "core/fixed_base.h"
#include "core/get_intervals.h"
#include "core/interval.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sbr::core {

Status SbrDecoder::ApplyHeader(const Transmission& t) {
  if (t.num_signals == 0 || t.w == 0 || t.TotalSamples() == 0) {
    return Status::DataLoss("transmission header has zero geometry");
  }
  if (!t.signal_lengths.empty() &&
      t.signal_lengths.size() != t.num_signals) {
    return Status::DataLoss("signal_lengths count mismatch");
  }
  if (t.base_kind == BaseKind::kNone) {
    // A self-contained (degraded-mode) transmission references no base
    // signal, so it neither initializes nor constrains the stream's base
    // state — it is decodable at any point of any stream.
    return Status::Ok();
  }
  if (w_ == 0) {
    w_ = t.w;
    base_kind_ = t.base_kind;
    if (base_kind_ == BaseKind::kStored) {
      if (options_.m_base < w_) {
        return Status::InvalidArgument("decoder m_base smaller than W");
      }
      base_ = BaseSignal(w_, options_.m_base);
    } else if (base_kind_ == BaseKind::kDctFixed) {
      dct_base_ = MakeDctFixedBase(w_);
    }
    return Status::Ok();
  }
  if (t.w != w_) {
    return Status::DataLoss("transmission W changed mid-stream");
  }
  if (t.base_kind != base_kind_) {
    return Status::DataLoss("transmission base kind changed mid-stream");
  }
  return Status::Ok();
}

StatusOr<std::vector<double>> SbrDecoder::DecodeChunk(const Transmission& t) {
  SBR_OBS_SPAN(decode_span, "decode.chunk");
  SBR_OBS_TIMER(decode_timer, "decode.chunk_us");
  SBR_OBS_COUNT("decode.chunks", 1);
  auto result = DecodeChunkImpl(t);
  if (result.ok()) {
    SBR_OBS_COUNT("decode.values", result->size());
  } else {
    SBR_OBS_COUNT("decode.errors", 1);
  }
  return result;
}

StatusOr<std::vector<double>> SbrDecoder::DecodeChunkImpl(
    const Transmission& t) {
  SBR_RETURN_IF_ERROR(ApplyHeader(t));

  const bool self_contained = t.base_kind == BaseKind::kNone;
  if ((self_contained || base_kind_ != BaseKind::kStored) &&
      !t.base_updates.empty()) {
    return Status::DataLoss("base updates present without a stored base");
  }
  for (const BaseUpdate& bu : t.base_updates) {
    SBR_RETURN_IF_ERROR(base_.Overwrite(bu.slot, bu.values));
  }

  // A self-contained transmission gets an empty base span: any interval
  // that still claims a base reference is corrupt, not silently decoded
  // against unrelated state.
  std::span<const double> x;
  if (!self_contained) {
    if (base_kind_ == BaseKind::kStored) {
      x = base_.values();
    } else if (base_kind_ == BaseKind::kDctFixed) {
      x = dct_base_;
    }
  }

  const size_t total_len = t.TotalSamples();
  if (total_len > options_.max_chunk_samples) {
    return Status::DataLoss("chunk of " + std::to_string(total_len) +
                            " samples exceeds the decoder limit");
  }

  // Rebuild intervals: sort by start, infer lengths from the gaps.
  std::vector<IntervalRecord> recs = t.intervals;
  std::sort(recs.begin(), recs.end(),
            [](const IntervalRecord& a, const IntervalRecord& b) {
              return a.start < b.start;
            });
  if (recs.empty() || recs[0].start != 0) {
    return Status::DataLoss("interval records do not start at 0");
  }
  std::vector<Interval> intervals;
  intervals.reserve(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const size_t end =
        i + 1 < recs.size() ? recs[i + 1].start : total_len;
    if (end <= recs[i].start) {
      return Status::DataLoss("interval records overlap or are empty");
    }
    Interval iv;
    iv.start = recs[i].start;
    iv.length = end - recs[i].start;
    iv.shift = recs[i].shift;
    iv.a = recs[i].a;
    iv.b = recs[i].b;
    iv.c = recs[i].c;
    if (iv.shift != kShiftLinearFallback) {
      if (iv.shift < 0 ||
          static_cast<size_t>(iv.shift) + iv.length > x.size()) {
        return Status::DataLoss("interval shift outside the base signal");
      }
    }
    intervals.push_back(iv);
  }
  return ReconstructFromIntervals(x, total_len, intervals);
}

Status SbrDecoder::ApplySnapshot(const BaseSnapshot& snapshot) {
  if (snapshot.w == 0) {
    // The sensor had not warmed up yet (no base signal); nothing to mirror.
    return Status::Ok();
  }
  if (w_ == 0) {
    w_ = snapshot.w;
    base_kind_ = snapshot.base_kind;
    if (base_kind_ == BaseKind::kDctFixed) {
      dct_base_ = MakeDctFixedBase(w_);
    }
  } else if (snapshot.w != w_) {
    return Status::DataLoss("snapshot W does not match the stream");
  } else if (snapshot.base_kind != base_kind_) {
    return Status::DataLoss("snapshot base kind does not match the stream");
  }
  if (base_kind_ != BaseKind::kStored) {
    if (!snapshot.slots.empty()) {
      return Status::DataLoss("snapshot slots present without a stored base");
    }
    return Status::Ok();
  }
  if (options_.m_base < w_) {
    return Status::InvalidArgument("decoder m_base smaller than W");
  }
  BaseSignal rebuilt(w_, options_.m_base);
  for (const BaseUpdate& s : snapshot.slots) {
    SBR_RETURN_IF_ERROR(rebuilt.Overwrite(s.slot, s.values));
  }
  base_ = std::move(rebuilt);
  return Status::Ok();
}

StatusOr<linalg::Matrix> SbrDecoder::DecodeChunkToMatrix(
    const Transmission& t) {
  auto flat = DecodeChunk(t);
  if (!flat.ok()) return flat.status();
  return linalg::Matrix(t.num_signals, t.chunk_len, std::move(flat).value());
}

}  // namespace sbr::core
