// GetIntervals (paper Algorithm 3): recursively partitions the concatenated
// data series into a budget-bounded number of intervals, splitting the
// worst-approximated interval in two at every step, and maps each interval
// onto the base signal via BestMap.
#ifndef SBR_CORE_GET_INTERVALS_H_
#define SBR_CORE_GET_INTERVALS_H_

#include <span>
#include <vector>

#include "core/best_map.h"
#include "core/interval.h"
#include "util/status.h"

namespace sbr::core {

/// Options for GetIntervals.
struct GetIntervalsOptions {
  /// Per-interval mapping knobs. When best_map.workspace is set, every
  /// BestMap call of this run shares the workspace's prefix sums, moment
  /// cache and arena scratch (see core/workspace.h); the workspace's
  /// prefix table must cover the `x` passed in. Bitwise-neutral.
  BestMapOptions best_map;
  /// Transmission cost of one interval record: 4 values
  /// (start, shift, a, b) with a base signal, 3 (start, a, b) for the plain
  /// linear-regression encoder that has no shift pointer.
  size_t values_per_interval = 4;
  /// When > 0, splitting stops as soon as the total error under the active
  /// metric drops to or below this target, even if budget remains
  /// (paper Section 4.5: combined error and space bounds).
  double error_target = 0.0;
};

/// The approximation produced for one chunk.
struct ApproximationResult {
  /// Final intervals, sorted by start; their union covers [0, |y|).
  std::vector<Interval> intervals;
  /// Total error under the active metric (sum, or max for kMaxAbs).
  double total_error = 0.0;
  /// Transmission cost in values: intervals.size() * values_per_interval.
  size_t values_used = 0;
};

/// Approximates the concatenated series `y` (num_signals rows of equal
/// length) against base signal `x` using at most `budget_values` values.
/// Fails if the budget cannot afford one interval per signal.
/// Runs in O(|y| log(budget) + budget * |x| * w) for the SSE metric.
StatusOr<ApproximationResult> GetIntervals(std::span<const double> x,
                                           std::span<const double> y,
                                           size_t num_signals,
                                           size_t budget_values, size_t w,
                                           const GetIntervalsOptions& options);

/// Multi-rate form (paper Section 3.2, footnote 2: quantities recorded on
/// different schedules): `y` is the concatenation of rows whose lengths
/// are given by `row_lengths`; each row seeds one initial interval.
StatusOr<ApproximationResult> GetIntervalsMultiRate(
    std::span<const double> x, std::span<const double> y,
    std::span<const size_t> row_lengths, size_t budget_values, size_t w,
    const GetIntervalsOptions& options);

/// Reconstructs the approximate series from intervals produced by
/// GetIntervals (the decoder-side inverse). `x` must be the same base
/// signal the intervals were encoded against.
std::vector<double> ReconstructFromIntervals(
    std::span<const double> x, size_t total_len,
    std::span<const Interval> intervals);

}  // namespace sbr::core

#endif  // SBR_CORE_GET_INTERVALS_H_
