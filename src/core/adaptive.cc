#include "core/adaptive.h"

namespace sbr::core {

StatusOr<Transmission> AdaptiveSbrEncoder::EncodeChunk(
    std::span<const double> y, size_t num_signals) {
  const bool warming = transmissions_ < adaptive_.warmup_transmissions;
  const bool periodic =
      adaptive_.periodic_refresh > 0 && transmissions_ > 0 &&
      transmissions_ % adaptive_.periodic_refresh == 0;
  const bool full = warming || periodic || refresh_requested_;

  encoder_.set_update_base(full);
  auto t = encoder_.EncodeChunk(y, num_signals);
  if (!t.ok()) return t;

  ++transmissions_;
  last_full_ = full;
  if (full) ++full_count_;
  refresh_requested_ = false;

  // Track the error baseline and schedule a refresh on degradation. The
  // refresh applies to the *next* transmission: the degradation is only
  // observable after the cheap path has run, exactly as in a deployment.
  const double err = encoder_.last_stats().total_error;
  if (!ema_initialized_) {
    error_ema_ = err;
    ema_initialized_ = true;
  } else {
    if (err > adaptive_.degradation_factor * error_ema_) {
      refresh_requested_ = true;
    }
    error_ema_ = adaptive_.ema_alpha * err +
                 (1.0 - adaptive_.ema_alpha) * error_ema_;
  }
  return t;
}

}  // namespace sbr::core
