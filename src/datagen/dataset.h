// Multi-signal dataset container: N named time series of equal length,
// with helpers for splitting into the fixed-size chunks ("files" in the
// paper's terminology) that a sensor transmits one at a time.
#ifndef SBR_DATAGEN_DATASET_H_
#define SBR_DATAGEN_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace sbr::datagen {

/// N aligned time series of equal length. Row i of `values` is signal i.
struct Dataset {
  std::string name;
  std::vector<std::string> signal_names;
  linalg::Matrix values;

  size_t num_signals() const { return values.rows(); }
  size_t length() const { return values.cols(); }

  /// Signal row as a span.
  std::span<const double> Signal(size_t i) const { return values.Row(i); }

  /// Number of whole chunks of `chunk_len` columns.
  size_t NumChunks(size_t chunk_len) const {
    return chunk_len == 0 ? 0 : length() / chunk_len;
  }

  /// Extracts chunk `c`: an N x chunk_len matrix of columns
  /// [c * chunk_len, (c+1) * chunk_len). Asserts the chunk exists.
  linalg::Matrix Chunk(size_t c, size_t chunk_len) const;

  /// Returns a new dataset containing the selected signal rows, in order.
  Dataset SelectSignals(const std::vector<size_t>& rows,
                        const std::string& new_name) const;

  /// Returns a new dataset truncated to the first `len` columns.
  Dataset Truncate(size_t len) const;
};

/// Stacks datasets vertically (same length required); used to build the
/// paper's Mixed dataset out of phone + weather + stock rows.
StatusOr<Dataset> Concatenate(const std::vector<Dataset>& parts,
                              const std::string& name);

/// Flattens an N x M chunk into the single concatenated series
/// Y = Y_1 . Y_2 ... Y_N that the approximation algorithms operate on.
std::vector<double> ConcatRows(const linalg::Matrix& chunk);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_DATASET_H_
