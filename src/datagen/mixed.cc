#include "datagen/mixed.h"

#include <cassert>

#include "datagen/phonecall.h"
#include "datagen/stock.h"
#include "datagen/weather.h"

namespace sbr::datagen {

Dataset GenerateMixed(const MixedOptions& options) {
  PhoneCallOptions phone_opts;
  phone_opts.length = options.length;
  phone_opts.seed = options.seed * 3 + 1;
  // AZ = row 0, CA = row 1, FL = row 4.
  Dataset phone = GeneratePhoneCalls(phone_opts)
                      .SelectSignals({0, 1, 4}, "phone");

  WeatherOptions weather_opts;
  weather_opts.length = options.length;
  weather_opts.seed = options.seed * 3 + 2;
  // air_temp = 0, solar = 4, humidity = 5 (the paper lists temperature,
  // pressure and solar irradiance; our generator exposes humidity as the
  // pressure-like smooth bounded quantity).
  Dataset weather = GenerateWeather(weather_opts)
                        .SelectSignals({0, 5, 4}, "weather");

  StockOptions stock_opts;
  stock_opts.length = options.length;
  stock_opts.seed = options.seed * 3 + 3;
  // MSFT = 0, INTC = 2, ORCL = 1.
  Dataset stock = GenerateStock(stock_opts).SelectSignals({0, 2, 1}, "stock");

  auto combined = Concatenate({phone, weather, stock}, "mixed");
  assert(combined.ok());
  assert(combined->num_signals() == kNumMixedSignals);
  return std::move(combined).value();
}

}  // namespace sbr::datagen
