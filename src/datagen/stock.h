// Synthetic per-minute stock trade values standing in for the paper's
// April 2000 NASDAQ/NYSE trades (DESIGN.md section 4). Each ticker is a
// geometric process driven by a shared market factor, a sector factor and
// idiosyncratic noise, then sampled like the paper's "random sample of
// 20,480 trade values": smooth piecewise trends, strong co-movement, few
// repeating features.
#ifndef SBR_DATAGEN_STOCK_H_
#define SBR_DATAGEN_STOCK_H_

#include <cstdint>
#include <cstddef>

#include "datagen/dataset.h"

namespace sbr::datagen {

/// Tuning knobs for the stock generator.
struct StockOptions {
  size_t length = 20480;   ///< samples per ticker
  uint64_t seed = 2000;    ///< RNG seed
  /// Volatility split mimics the April-2000 sampling window: the market
  /// factor (the NASDAQ sell-off) dominates, so the ten tickers are
  /// near-affine copies of one rough common path.
  double market_vol = 0.0040;  ///< per-step market factor volatility
  double sector_vol = 0.0018;  ///< per-step sector factor volatility
  double idio_vol = 0.0007;    ///< per-step idiosyncratic volatility
};

/// The ten tickers used by the paper's stock experiments.
inline constexpr size_t kNumStockTickers = 10;

/// Generates the 10-ticker trade-value dataset.
Dataset GenerateStock(const StockOptions& options);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_STOCK_H_
