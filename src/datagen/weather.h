// Synthetic weather-station feed standing in for the paper's University of
// Washington 2002 dataset (see DESIGN.md section 4). Six quantities sharing
// diurnal and seasonal drivers:
//   air temperature, dewpoint temperature, wind speed, wind peak,
//   solar irradiance, relative humidity.
// Temperature and dewpoint are strongly correlated, humidity is
// anti-correlated with the dewpoint spread, wind peak tracks wind speed,
// and solar irradiance is a clipped day-curve modulated by cloud cover —
// i.e. many mutually correlated but differently shaped signals, which is
// the property the paper's base-signal scheme feeds on.
#ifndef SBR_DATAGEN_WEATHER_H_
#define SBR_DATAGEN_WEATHER_H_

#include <cstdint>
#include <cstddef>

#include "datagen/dataset.h"

namespace sbr::datagen {

/// Tuning knobs for the weather generator. Defaults mimic a 10-minute
/// sampling interval over a mid-latitude station.
struct WeatherOptions {
  size_t length = 40960;       ///< samples per signal
  uint64_t seed = 2002;        ///< RNG seed (dataset is pure function of it)
  size_t samples_per_day = 144;  ///< 10-minute sampling
  double mean_temperature_c = 12.0;
  double seasonal_amplitude_c = 9.0;
  double diurnal_amplitude_c = 5.5;
  double noise_scale = 1.0;    ///< scales every stochastic component
};

/// Generates the 6-signal weather dataset.
Dataset GenerateWeather(const WeatherOptions& options);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_WEATHER_H_
