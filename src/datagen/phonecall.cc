#include "datagen/phonecall.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace sbr::datagen {
namespace {

constexpr size_t kMinutesPerDay = 1440;

struct StateSpec {
  const char* name;
  double scale;  // relative call volume (population / business activity)
};

// The 15 states in the paper, with rough relative traffic scales.
constexpr std::array<StateSpec, kNumPhoneStates> kStates = {{
    {"AZ", 140.0}, {"CA", 900.0}, {"CO", 130.0}, {"CT", 110.0},
    {"FL", 450.0}, {"GA", 230.0}, {"IL", 360.0}, {"IN", 170.0},
    {"MD", 150.0}, {"MN", 140.0}, {"MO", 160.0}, {"NJ", 250.0},
    {"NY", 560.0}, {"TX", 600.0}, {"WA", 170.0},
}};

// Piecewise diurnal profile (fraction of peak) sampled on the hour and
// interpolated: near-silent overnight, business-hours plateau, evening
// residential bump.
constexpr std::array<double, 24> kHourShape = {
    0.04, 0.03, 0.02, 0.02, 0.03, 0.06, 0.14, 0.34, 0.62, 0.85,
    0.97, 1.00, 0.93, 0.96, 0.98, 0.92, 0.80, 0.66, 0.52, 0.44,
    0.36, 0.24, 0.13, 0.07};

double DayShape(size_t minute_of_day) {
  const size_t hour = minute_of_day / 60;
  const size_t next = (hour + 1) % 24;
  const double frac = static_cast<double>(minute_of_day % 60) / 60.0;
  return kHourShape[hour] * (1.0 - frac) + kHourShape[next] * frac;
}

double WeekFactor(size_t day_of_week) {
  // Weekdays full volume, Saturday/Sunday reduced.
  switch (day_of_week) {
    case 5:
      return 0.55;  // Saturday
    case 6:
      return 0.45;  // Sunday
    default:
      return 1.0;
  }
}

}  // namespace

Dataset GeneratePhoneCalls(const PhoneCallOptions& options) {
  const size_t n = options.length;
  Rng rng(options.seed);

  Dataset ds;
  ds.name = "phone";
  ds.values = linalg::Matrix(kNumPhoneStates, n);
  for (const auto& s : kStates) ds.signal_names.emplace_back(s.name);

  // Per-state slowly varying modulation (regional events, weather) and
  // occasional short bursts (mass call-ins) shared with nobody.
  std::array<double, kNumPhoneStates> modulation{};
  std::array<int, kNumPhoneStates> burst_left{};
  std::array<double, kNumPhoneStates> burst_gain{};
  modulation.fill(1.0);
  burst_left.fill(0);
  burst_gain.fill(1.0);

  for (size_t i = 0; i < n; ++i) {
    const size_t minute_of_day = i % kMinutesPerDay;
    const size_t day = i / kMinutesPerDay;
    const double shape = DayShape(minute_of_day) * WeekFactor(day % 7);
    for (size_t k = 0; k < kNumPhoneStates; ++k) {
      modulation[k] = 0.9995 * modulation[k] + 0.0005 * 1.0 +
                      rng.Gaussian(0.0, 0.002 * options.noise_scale);
      modulation[k] = std::clamp(modulation[k], 0.6, 1.5);
      if (burst_left[k] > 0) {
        --burst_left[k];
      } else if (rng.NextDouble() < options.burst_rate) {
        burst_left[k] = static_cast<int>(rng.UniformInt(8, 40));
        burst_gain[k] = rng.Uniform(1.3, 2.2);
      }
      const double gain = burst_left[k] > 0 ? burst_gain[k] : 1.0;
      const double rate =
          std::max(0.5, kStates[k].scale * shape * modulation[k] * gain);
      ds.values(k, i) = static_cast<double>(rng.Poisson(rate));
    }
  }
  return ds;
}

}  // namespace sbr::datagen
