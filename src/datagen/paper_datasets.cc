#include "datagen/paper_datasets.h"

#include "datagen/mixed.h"
#include "datagen/phonecall.h"
#include "datagen/stock.h"
#include "datagen/weather.h"

namespace sbr::datagen {

ExperimentSetup PaperWeatherSetup() {
  WeatherOptions opts;
  opts.length = 40960;  // 10 chunks of 4096
  opts.seed = 2002;
  return {GenerateWeather(opts), /*chunk_len=*/4096, /*m_base=*/3456,
          /*num_chunks=*/10};
}

ExperimentSetup PaperStockSetup() {
  StockOptions opts;
  opts.length = 20480;  // 10 chunks of 2048
  opts.seed = 2000;
  return {GenerateStock(opts), /*chunk_len=*/2048, /*m_base=*/2048,
          /*num_chunks=*/10};
}

ExperimentSetup PaperPhoneSetup() {
  PhoneCallOptions opts;
  opts.length = 25600;  // 10 chunks of 2560
  opts.seed = 1999;
  return {GeneratePhoneCalls(opts), /*chunk_len=*/2560, /*m_base=*/2048,
          /*num_chunks=*/10};
}

ExperimentSetup PaperMixedSetup() {
  MixedOptions opts;
  opts.length = 20480;  // 10 chunks of 2048
  opts.seed = 777;
  return {GenerateMixed(opts), /*chunk_len=*/2048, /*m_base=*/2048,
          /*num_chunks=*/10};
}

ExperimentSetup Fig6WeatherSetup() {
  WeatherOptions opts;
  opts.length = 51200;  // 10 chunks of 5120; n = 6 * 5120 = 30720
  opts.seed = 2002;
  return {GenerateWeather(opts), /*chunk_len=*/5120, /*m_base=*/3456,
          /*num_chunks=*/10};
}

ExperimentSetup Fig6StockSetup() {
  StockOptions opts;
  opts.length = 30720;  // 10 chunks of 3072; n = 10 * 3072 = 30720
  opts.seed = 2000;
  return {GenerateStock(opts), /*chunk_len=*/3072, /*m_base=*/2048,
          /*num_chunks=*/10};
}

ExperimentSetup Fig6PhoneSetup() {
  PhoneCallOptions opts;
  opts.length = 20480;  // 10 chunks of 2048; n = 15 * 2048 = 30720
  opts.seed = 1999;
  return {GeneratePhoneCalls(opts), /*chunk_len=*/2048, /*m_base=*/2048,
          /*num_chunks=*/10};
}

ExperimentSetup Fig5StockSetup(size_t m_per_signal) {
  StockOptions opts;
  opts.length = m_per_signal * 10;  // keep 10 transmissions for averaging
  opts.seed = 2000;
  return {GenerateStock(opts), /*chunk_len=*/m_per_signal, /*m_base=*/1024,
          /*num_chunks=*/10};
}

}  // namespace sbr::datagen
