#include "datagen/stock.h"

#include <array>
#include <cmath>

#include "util/rng.h"

namespace sbr::datagen {
namespace {

struct TickerSpec {
  const char* name;
  double base_price;  // price level in April-2000 dollars
  double beta;        // loading on the market factor
  int sector;         // 0 = software, 1 = hardware, 2 = telecom/other
  double gamma;       // loading on the sector factor
};

// The ten tickers the paper extracts from the trade data.
constexpr std::array<TickerSpec, kNumStockTickers> kTickers = {{
    {"MSFT", 90.0, 1.00, 0, 0.9},
    {"ORCL", 78.0, 1.10, 0, 1.0},
    {"INTC", 130.0, 0.95, 1, 1.0},
    {"DELL", 52.0, 1.05, 1, 0.9},
    {"YHOO", 170.0, 1.45, 0, 1.2},
    {"NOK", 55.0, 0.90, 2, 1.0},
    {"CSCO", 72.0, 1.15, 1, 1.1},
    {"WCOM", 44.0, 1.20, 2, 1.2},
    {"ARBA", 105.0, 1.60, 0, 1.4},
    {"LGTO", 38.0, 1.30, 0, 1.1},
}};

}  // namespace

Dataset GenerateStock(const StockOptions& options) {
  const size_t n = options.length;
  Rng rng(options.seed);

  Dataset ds;
  ds.name = "stock";
  ds.values = linalg::Matrix(kNumStockTickers, n);
  for (const auto& t : kTickers) ds.signal_names.emplace_back(t.name);

  double market = 0.0;
  std::array<double, 3> sectors = {0.0, 0.0, 0.0};
  std::array<double, kNumStockTickers> idio{};

  // Mild mean reversion keeps log-prices bounded over long runs while still
  // producing the multi-hour drifts visible in real trade feeds.
  for (size_t i = 0; i < n; ++i) {
    market = 0.99995 * market + rng.Gaussian(0.0, options.market_vol);
    // Market-wide jumps (news shocks): rare step moves that hit every
    // ticker at the same instant — the within-window discontinuities that
    // make the April-2000 trade feeds piecewise-correlated across stocks.
    if (rng.NextDouble() < 0.0012) {
      market += rng.Gaussian(0.0, 18.0 * options.market_vol);
    }
    for (auto& s : sectors) {
      s = 0.9999 * s + rng.Gaussian(0.0, options.sector_vol);
    }
    for (size_t k = 0; k < kTickers.size(); ++k) {
      const TickerSpec& spec = kTickers[k];
      idio[k] = 0.9995 * idio[k] + rng.Gaussian(0.0, options.idio_vol);
      const double log_ret = spec.beta * market +
                             spec.gamma * sectors[spec.sector] + idio[k];
      // Trade value = price plus per-trade microstructure jitter (odd lots,
      // spread bounce), which is what the paper's "trade value" measures.
      const double price = spec.base_price * std::exp(log_ret);
      const double jitter = rng.Gaussian(0.0, 0.0004 * spec.base_price);
      // April-2000 US equities traded in sixteenths of a dollar; trade
      // values are staircases on that tick grid.
      ds.values(k, i) = std::round((price + jitter) * 16.0) / 16.0;
    }
  }
  return ds;
}

}  // namespace sbr::datagen
