// The paper's Mixed dataset (Section 5.1.2): three phone-call states
// (AZ, CA, FL), three weather quantities (air temperature, humidity
// standing in for pressure availability, solar irradiance) and three stocks
// (MSFT, INTC, ORCL), each contributing series of equal length. Cross-
// domain correlations are intentionally weak; the experiment measures how
// gracefully each method degrades.
#ifndef SBR_DATAGEN_MIXED_H_
#define SBR_DATAGEN_MIXED_H_

#include <cstdint>
#include <cstddef>

#include "datagen/dataset.h"

namespace sbr::datagen {

/// Tuning knobs for the mixed dataset.
struct MixedOptions {
  size_t length = 20480;  ///< samples per series (10 chunks of 2048)
  uint64_t seed = 777;    ///< RNG seed offset applied to all three sources
};

/// Number of series in the mixed dataset (3 + 3 + 3).
inline constexpr size_t kNumMixedSignals = 9;

/// Generates the 9-signal mixed dataset.
Dataset GenerateMixed(const MixedOptions& options);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_MIXED_H_
