// Fixed-seed dataset configurations matching each experiment in the paper's
// Section 5. Benches and integration tests all construct their inputs
// through these helpers so results are reproducible run to run.
#ifndef SBR_DATAGEN_PAPER_DATASETS_H_
#define SBR_DATAGEN_PAPER_DATASETS_H_

#include <cstddef>

#include "datagen/dataset.h"

namespace sbr::datagen {

/// A dataset plus the transmission geometry the paper pairs it with.
struct ExperimentSetup {
  Dataset dataset;
  size_t chunk_len = 0;  ///< M: values per signal per transmission
  size_t m_base = 0;     ///< base-signal buffer capacity in values
  size_t num_chunks = 0; ///< number of transmissions simulated
};

/// Weather setup of Tables 2/5/6: N=6 signals, 10 chunks of M=4096,
/// M_base=3456.
ExperimentSetup PaperWeatherSetup();

/// Stock setup of Tables 2/5/6: N=10 tickers, 10 chunks of M=2048,
/// M_base=2048.
ExperimentSetup PaperStockSetup();

/// Phone-call setup of Tables 3/5/6: N=15 states, 10 chunks of M=2560,
/// M_base=2048.
ExperimentSetup PaperPhoneSetup();

/// Mixed setup of Table 4: N=9 series, 10 chunks of M=2048, M_base=2048.
ExperimentSetup PaperMixedSetup();

/// Figure 6 / Table 6 equal-size setups: every dataset has the same
/// per-chunk footprint n = N * M (stock M=3072, phone M=2048,
/// weather M=5120) and TotalBand=5012 (~16% ratio).
ExperimentSetup Fig6WeatherSetup();
ExperimentSetup Fig6StockSetup();
ExperimentSetup Fig6PhoneSetup();

/// TotalBand used by the Figure 6 / Table 6 experiments.
inline constexpr size_t kFig6TotalBand = 5012;

/// Stock data sized for the Figure 5 timing sweep: 10 tickers, chunks of
/// M in {512, 1024, 1536, 2048} -> n in {5120, ..., 20480}, M_base=1024.
ExperimentSetup Fig5StockSetup(size_t m_per_signal);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_PAPER_DATASETS_H_
