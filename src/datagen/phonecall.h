// Synthetic per-minute long-distance call volumes for 15 US states,
// standing in for the proprietary AT&T trace the paper uses (DESIGN.md
// section 4). Every state shares the same strong diurnal and weekly shape
// scaled by a population factor, plus bursty Poisson sampling noise —
// giving heavily correlated, large-magnitude, periodic series. The large
// magnitudes are what made this the dataset where SBR's wins were biggest
// in the paper, and the periodicity is what the base signal captures.
#ifndef SBR_DATAGEN_PHONECALL_H_
#define SBR_DATAGEN_PHONECALL_H_

#include <cstdint>
#include <cstddef>

#include "datagen/dataset.h"

namespace sbr::datagen {

/// Tuning knobs for the phone-call generator. Defaults: per-minute counts
/// for 19 days per the paper (19 * 1440 = 27360 minutes, truncate at will).
struct PhoneCallOptions {
  size_t length = 25600;  ///< samples per state (10 chunks of 2560)
  uint64_t seed = 1999;   ///< RNG seed
  double burst_rate = 0.0008;  ///< probability of a localized call burst
  double noise_scale = 1.0;
};

/// Number of states in the paper's trace.
inline constexpr size_t kNumPhoneStates = 15;

/// Generates the 15-state call-volume dataset.
Dataset GeneratePhoneCalls(const PhoneCallOptions& options);

}  // namespace sbr::datagen

#endif  // SBR_DATAGEN_PHONECALL_H_
