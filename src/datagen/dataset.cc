#include "datagen/dataset.h"

#include <cassert>

namespace sbr::datagen {

linalg::Matrix Dataset::Chunk(size_t c, size_t chunk_len) const {
  assert(c < NumChunks(chunk_len));
  linalg::Matrix out(num_signals(), chunk_len);
  for (size_t r = 0; r < num_signals(); ++r) {
    for (size_t j = 0; j < chunk_len; ++j) {
      out(r, j) = values(r, c * chunk_len + j);
    }
  }
  return out;
}

Dataset Dataset::SelectSignals(const std::vector<size_t>& rows,
                               const std::string& new_name) const {
  Dataset out;
  out.name = new_name;
  out.values = linalg::Matrix(rows.size(), length());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < num_signals());
    out.signal_names.push_back(signal_names[rows[i]]);
    for (size_t j = 0; j < length(); ++j) {
      out.values(i, j) = values(rows[i], j);
    }
  }
  return out;
}

Dataset Dataset::Truncate(size_t len) const {
  assert(len <= length());
  Dataset out;
  out.name = name;
  out.signal_names = signal_names;
  out.values = linalg::Matrix(num_signals(), len);
  for (size_t r = 0; r < num_signals(); ++r) {
    for (size_t j = 0; j < len; ++j) out.values(r, j) = values(r, j);
  }
  return out;
}

StatusOr<Dataset> Concatenate(const std::vector<Dataset>& parts,
                              const std::string& name) {
  if (parts.empty()) return Status::InvalidArgument("no datasets to combine");
  const size_t len = parts[0].length();
  size_t total_rows = 0;
  for (const auto& p : parts) {
    if (p.length() != len) {
      return Status::InvalidArgument("dataset '" + p.name + "' has length " +
                                     std::to_string(p.length()) +
                                     ", expected " + std::to_string(len));
    }
    total_rows += p.num_signals();
  }
  Dataset out;
  out.name = name;
  out.values = linalg::Matrix(total_rows, len);
  size_t row = 0;
  for (const auto& p : parts) {
    for (size_t r = 0; r < p.num_signals(); ++r, ++row) {
      out.signal_names.push_back(p.name + "/" + p.signal_names[r]);
      for (size_t j = 0; j < len; ++j) out.values(row, j) = p.values(r, j);
    }
  }
  return out;
}

std::vector<double> ConcatRows(const linalg::Matrix& chunk) {
  std::vector<double> out;
  out.reserve(chunk.rows() * chunk.cols());
  for (size_t r = 0; r < chunk.rows(); ++r) {
    const auto row = chunk.Row(r);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

}  // namespace sbr::datagen
