#include "datagen/weather.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace sbr::datagen {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Asymmetric diurnal temperature shape: fast morning rise, slow evening
// decay — the sawtooth-like profile of real stations, harmonically rich
// enough that no small orthogonal basis captures it.
double DiurnalTempShape(double frac_of_day) {
  // frac in [0, 1), 0 = midnight. Minimum at ~05:00, peak at ~15:00.
  const double t = frac_of_day;
  if (t < 5.0 / 24.0) {
    return -1.0 + 0.3 * std::cos(kTwoPi * t);  // slow pre-dawn cooling
  }
  if (t < 15.0 / 24.0) {
    // Rapid warm-up over 10 hours with a sharp late-morning knee.
    const double u = (t - 5.0 / 24.0) / (10.0 / 24.0);
    return -1.0 + 2.0 * std::pow(u, 0.7);
  }
  // Slow decay into the night.
  const double u = (t - 15.0 / 24.0) / (9.0 / 24.0);
  return 1.0 - 2.0 * std::pow(u, 1.6) * 0.9;
}

}  // namespace

Dataset GenerateWeather(const WeatherOptions& options) {
  const size_t n = options.length;
  const double spd = static_cast<double>(options.samples_per_day);
  Rng rng(options.seed);

  Dataset ds;
  ds.name = "weather";
  ds.signal_names = {"air_temp", "dewpoint", "wind_speed",
                     "wind_peak", "solar",    "humidity"};
  ds.values = linalg::Matrix(6, n);

  // Slowly varying stochastic states shared across quantities.
  double temp_ar = 0.0;    // synoptic temperature anomaly (weather fronts)
  double wind_ar = 3.0;    // mean wind level
  double spread_ar = 3.0;  // temperature-dewpoint spread
  double gust_ar = 0.5;    // slowly varying gust offset (wind peak channel)

  // Day-scale regimes: each day is clear, broken (passing clouds) or
  // overcast. Regime changes are sharp and localized — the kind of
  // repeated-but-not-orthogonalizable structure real stations exhibit.
  int day_regime = 0;          // 0 clear, 1 broken, 2 overcast
  double regime_cloud = 0.1;   // base cloudiness of the current regime
  // Passing-cloud transient state (for "broken" days).
  int cloud_burst_left = 0;
  double cloud_burst_depth = 0.0;
  // Frontal passage event: a sharp multi-quantity disturbance lasting a
  // few hours (temperature crash, humidity spike, wind burst).
  int front_left = 0;
  double front_intensity = 0.0;

  for (size_t i = 0; i < n; ++i) {
    const size_t sample_of_day = i % options.samples_per_day;
    const double frac_of_day = static_cast<double>(sample_of_day) / spd;
    const double season_phase = kTwoPi * static_cast<double>(i) / (spd * 365.0);

    if (sample_of_day == 0) {
      // Draw the day's regime: persistent-ish Markov chain.
      const double u = rng.NextDouble();
      if (day_regime == 0) {
        day_regime = u < 0.6 ? 0 : (u < 0.85 ? 1 : 2);
      } else if (day_regime == 1) {
        day_regime = u < 0.35 ? 0 : (u < 0.75 ? 1 : 2);
      } else {
        day_regime = u < 0.2 ? 0 : (u < 0.55 ? 1 : 2);
      }
      regime_cloud = day_regime == 0   ? rng.Uniform(0.02, 0.12)
                     : day_regime == 1 ? rng.Uniform(0.25, 0.45)
                                       : rng.Uniform(0.7, 0.95);
    }

    // Passing clouds on broken days: sharp, short dips in irradiance.
    if (cloud_burst_left > 0) {
      --cloud_burst_left;
    } else if (day_regime == 1 && rng.NextDouble() < 0.06) {
      cloud_burst_left = static_cast<int>(rng.UniformInt(2, 8));
      cloud_burst_depth = rng.Uniform(0.5, 0.95);
    }
    const double cloud =
        std::clamp(regime_cloud + (cloud_burst_left > 0 ? cloud_burst_depth
                                                        : 0.0),
                   0.0, 1.0);

    // Frontal passages: every ~5 days on average, lasting 4-10 hours.
    if (front_left > 0) {
      --front_left;
    } else if (rng.NextDouble() < 1.0 / (5.0 * spd)) {
      front_left = static_cast<int>(
          rng.UniformInt(static_cast<int64_t>(spd / 6),
                         static_cast<int64_t>(spd / 2.4)));
      front_intensity = rng.Uniform(0.5, 1.0);
    }
    const double front = front_left > 0 ? front_intensity : 0.0;

    // Multi-day AR(1) anomalies. Per-sample measurement noise is small —
    // these are 10-minute averages from a fixed station, so day-to-day
    // shapes repeat nearly exactly; the variability lives in the regimes
    // and the synoptic anomalies, not in white noise.
    temp_ar = 0.999 * temp_ar + rng.Gaussian(0.0, 0.08 * options.noise_scale);
    wind_ar = 0.998 * wind_ar + 0.002 * 3.0 +
              rng.Gaussian(0.0, 0.05 * options.noise_scale);
    wind_ar = std::max(0.2, wind_ar);
    spread_ar = 0.997 * spread_ar + 0.003 * 3.0 +
                rng.Gaussian(0.0, 0.03 * options.noise_scale);
    spread_ar = std::clamp(spread_ar, 0.5, 12.0);
    gust_ar = 0.98 * gust_ar + rng.Gaussian(0.0, 0.12 * options.noise_scale);

    const double diurnal = DiurnalTempShape(frac_of_day);
    const double temp = options.mean_temperature_c +
                        options.seasonal_amplitude_c * std::sin(season_phase) +
                        options.diurnal_amplitude_c * diurnal *
                            (1.0 - 0.45 * cloud) -
                        6.0 * front + temp_ar +
                        rng.Gaussian(0.0, 0.05 * options.noise_scale);

    // Dewpoint: temperature minus the spread; fronts slam the spread shut
    // (rain), clear afternoons open it up.
    const double spread =
        std::max(0.3, spread_ar * (1.0 - 0.5 * cloud) +
                          1.2 * std::max(0.0, diurnal) - 2.5 * front);
    const double dewpoint =
        temp - spread + rng.Gaussian(0.0, 0.05 * options.noise_scale);

    const double humidity = std::clamp(
        100.0 - 5.0 * spread + rng.Gaussian(0.0, 0.4 * options.noise_scale),
        3.0, 100.0);

    // Solar: clipped day-arc with a midday plateau. On clear days the arc
    // is the same astronomical shape every day (sharp sunrise knee, flat
    // saturation) with only tiny scatter; broken days carve sharp cloud
    // notches out of it; overcast days flatten it.
    const double sun_elev = std::sin(kTwoPi * (frac_of_day - 0.25));
    const double season_gain = 0.75 + 0.25 * std::sin(season_phase);
    double solar = 0.0;
    if (sun_elev > 0.0) {
      // Airmass attenuation steepens the arc edges: irradiance follows
      // ~sin(elevation)^1.35 rather than the sine itself, clipped into a
      // midday plateau. (Deliberately non-sinusoidal: no cosine segment
      // reproduces it, while yesterday's arc does.)
      const double arc = std::min(1.0, 1.3 * std::pow(sun_elev, 1.35));
      const double sky = day_regime == 2 ? 0.18 : 1.0;
      const double notch =
          (day_regime == 1 && cloud_burst_left > 0) ? 1.0 - cloud_burst_depth
                                                    : 1.0;
      solar = 900.0 * arc * season_gain * sky * notch * (1.0 - 0.9 * front);
      solar =
          std::max(0.0, solar + rng.Gaussian(0.0, 1.5 * options.noise_scale));
    }

    // Wind: daytime convective bump plus a slowly-varying gust offset; the
    // peak channel tracks the mean channel structurally (real anemometer
    // pairs are tightly coupled) instead of by per-sample randomness.
    const double wind = std::max(
        0.0, wind_ar + 1.2 * std::max(0.0, diurnal) + 6.0 * front +
                 rng.Gaussian(0.0, 0.15 * options.noise_scale));
    const double peak = std::max(
        wind, 1.32 * wind + std::abs(gust_ar) +
                  rng.Gaussian(0.0, 0.08 * options.noise_scale));

    // Instrument quantization, matching the station's reporting
    // resolution: temperatures in 0.1 C, wind in 0.1 m/s, irradiance in
    // 1 W/m^2, relative humidity in integer percent. Real feeds are
    // staircases at this scale — a property global bases (SVD/DCT) handle
    // poorly and data exemplars handle naturally.
    ds.values(0, i) = std::round(temp * 10.0) / 10.0;
    ds.values(1, i) = std::round(dewpoint * 10.0) / 10.0;
    ds.values(2, i) = std::round(wind * 10.0) / 10.0;
    ds.values(3, i) = std::round(peak * 10.0) / 10.0;
    ds.values(4, i) = std::round(solar);
    ds.values(5, i) = std::round(humidity);
  }
  return ds;
}

}  // namespace sbr::datagen
