// Haar wavelet approximation (the paper's strongest competitor). The
// orthonormal Haar decomposition is computed over the signal (padded with
// its last value to a power of two), and the budget/2 largest-magnitude
// coefficients are retained — index + value accounting, 2 values per kept
// coefficient (DESIGN.md note 1). Three layouts are provided, matching the
// paper's Section 5.1 discussion:
//   kConcat     one 1-D transform over the concatenated N*M series
//               (what the paper found best and reports),
//   kPerSignal  a 1-D transform per signal with a single global top-B
//               selection across all signals,
//   kTwoD       the standard 2-D decomposition of the N x M array.
#ifndef SBR_COMPRESS_WAVELET_H_
#define SBR_COMPRESS_WAVELET_H_

#include <span>
#include <vector>

#include "compress/compressor.h"

namespace sbr::compress {

/// In-place orthonormal Haar transform; length must be a power of two.
void HaarForward(std::span<double> data);

/// Inverse of HaarForward.
void HaarInverse(std::span<double> data);

/// Forward transform of an arbitrary-length signal: pads with the final
/// value up to the next power of two and returns the padded coefficient
/// vector (callers remember the original length).
std::vector<double> HaarForwardPadded(std::span<const double> input);

/// Zeroes all but the `keep` largest-magnitude entries (ties broken toward
/// lower index) — the classic L2-optimal thresholding for an orthonormal
/// basis. Returns the number of nonzero entries actually kept.
size_t KeepTopCoefficients(std::span<double> coeffs, size_t keep);

/// Wavelet layout (see file comment).
enum class WaveletLayout { kConcat, kPerSignal, kTwoD };

/// Haar top-B compressor.
class WaveletCompressor : public ChunkCompressor {
 public:
  explicit WaveletCompressor(WaveletLayout layout = WaveletLayout::kConcat)
      : layout_(layout) {}

  std::string Name() const override;

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;

 private:
  StatusOr<std::vector<double>> Concat(std::span<const double> y,
                                       size_t keep);
  StatusOr<std::vector<double>> PerSignal(std::span<const double> y,
                                          size_t num_signals, size_t keep);
  StatusOr<std::vector<double>> TwoD(std::span<const double> y,
                                     size_t num_signals, size_t keep);

  WaveletLayout layout_;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_WAVELET_H_
