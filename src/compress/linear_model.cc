#include "compress/linear_model.h"

#include "core/get_intervals.h"

namespace sbr::compress {

StatusOr<std::vector<double>> LinearModelCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  core::GetIntervalsOptions gi;
  gi.best_map.metric = metric_;
  gi.best_map.relative_floor = relative_floor_;
  gi.best_map.allow_linear_fallback = true;
  gi.values_per_interval = 3;  // no shift pointer without a base signal
  auto approx = core::GetIntervals(/*x=*/{}, y, num_signals, budget_values,
                                   /*w=*/1, gi);
  if (!approx.ok()) return approx.status();
  return core::ReconstructFromIntervals({}, y.size(), approx->intervals);
}

}  // namespace sbr::compress
