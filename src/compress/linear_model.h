// Plain piecewise linear regression baseline (paper Section 5.2): the SBR
// interval machinery with no base signal at all. Every interval is encoded
// as a line over time, costing 3 values (start, a, b), so the same budget
// affords budget/3 intervals.
#ifndef SBR_COMPRESS_LINEAR_MODEL_H_
#define SBR_COMPRESS_LINEAR_MODEL_H_

#include "compress/compressor.h"
#include "core/error_metric.h"

namespace sbr::compress {

/// Piecewise linear-in-time compressor.
class LinearModelCompressor : public ChunkCompressor {
 public:
  explicit LinearModelCompressor(
      core::ErrorMetric metric = core::ErrorMetric::kSse,
      double relative_floor = 1.0)
      : metric_(metric), relative_floor_(relative_floor) {}

  std::string Name() const override { return "linear_regression"; }

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;

 private:
  core::ErrorMetric metric_;
  double relative_floor_;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_LINEAR_MODEL_H_
