#include "compress/dct_compressor.h"

#include <algorithm>

#include "compress/wavelet.h"  // KeepTopCoefficients
#include "linalg/dct.h"

namespace sbr::compress {

StatusOr<std::vector<double>> DctCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  if (y.empty() || num_signals == 0 || y.size() % num_signals != 0) {
    return Status::InvalidArgument("bad chunk geometry");
  }
  const size_t keep = budget_values / 2;
  if (keep == 0) {
    return Status::InvalidArgument("budget cannot afford one coefficient");
  }

  if (layout_ == DctLayout::kConcat) {
    std::vector<double> coeffs = linalg::DctOrthonormal(y);
    KeepTopCoefficients(coeffs, keep);
    return linalg::IdctOrthonormal(coeffs);
  }

  // Per-signal transform with one global coefficient selection.
  const size_t m = y.size() / num_signals;
  std::vector<double> all;
  all.reserve(y.size());
  for (size_t r = 0; r < num_signals; ++r) {
    std::vector<double> c = linalg::DctOrthonormal(y.subspan(r * m, m));
    all.insert(all.end(), c.begin(), c.end());
  }
  KeepTopCoefficients(all, keep);
  std::vector<double> out;
  out.reserve(y.size());
  for (size_t r = 0; r < num_signals; ++r) {
    std::vector<double> c(all.begin() + r * m, all.begin() + (r + 1) * m);
    std::vector<double> rec = linalg::IdctOrthonormal(c);
    out.insert(out.end(), rec.begin(), rec.end());
  }
  return out;
}

}  // namespace sbr::compress
