// ChunkCompressor adapter around the stateful SBR encoder/decoder pair, so
// SBR competes in the same bench harness as the stateless baselines. Each
// CompressAndReconstruct call is one sensor transmission: the base signal
// persists across calls exactly as it would on the device.
#ifndef SBR_COMPRESS_SBR_COMPRESSOR_H_
#define SBR_COMPRESS_SBR_COMPRESSOR_H_

#include <memory>

#include "compress/compressor.h"
#include "core/decoder.h"
#include "core/encoder.h"

namespace sbr::compress {

/// SBR as a ChunkCompressor. The budget passed to CompressAndReconstruct
/// must equal options.total_band (SBR plans its base-signal spending
/// against a fixed per-transmission bandwidth).
class SbrCompressor : public ChunkCompressor {
 public:
  explicit SbrCompressor(core::EncoderOptions options,
                         std::string name = "sbr");

  std::string Name() const override { return name_; }

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;

  const core::SbrEncoder& encoder() const { return encoder_; }
  const core::EncodeStats& last_stats() const {
    return encoder_.last_stats();
  }

 private:
  std::string name_;
  /// Encode arena reused across the harness's many CompressAndReconstruct
  /// calls; declared before the encoder that borrows it.
  core::EncodeWorkspace workspace_;
  core::SbrEncoder encoder_;
  core::SbrDecoder decoder_;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_SBR_COMPRESSOR_H_
