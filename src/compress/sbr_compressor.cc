#include "compress/sbr_compressor.h"

namespace sbr::compress {

SbrCompressor::SbrCompressor(core::EncoderOptions options, std::string name)
    : name_(std::move(name)),
      encoder_(options, &workspace_),
      decoder_(core::DecoderOptions{options.m_base}) {}

StatusOr<std::vector<double>> SbrCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  if (budget_values != encoder_.options().total_band) {
    return Status::InvalidArgument(
        "budget " + std::to_string(budget_values) +
        " does not match the encoder's total_band " +
        std::to_string(encoder_.options().total_band));
  }
  auto transmission = encoder_.EncodeChunk(y, num_signals);
  if (!transmission.ok()) return transmission.status();
  if (transmission->ValueCount() > budget_values) {
    return Status::Internal(
        "transmission exceeded its budget: " +
        std::to_string(transmission->ValueCount()) + " > " +
        std::to_string(budget_values));
  }
  return decoder_.DecodeChunk(*transmission);
}

}  // namespace sbr::compress
