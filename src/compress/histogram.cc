#include "compress/histogram.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/prefix_sums.h"

namespace sbr::compress {
namespace {

// One bucket: [start, start + length) approximated by its mean.
struct Bucket {
  size_t start;
  size_t length;
  double err;  // SSE of the constant fit
  bool operator<(const Bucket& other) const { return err < other.err; }
};

double ConstantFitError(const sbr::PrefixSums& ps, size_t start,
                        size_t length) {
  const double sum = ps.RangeSum(start, length);
  const double sum2 = ps.RangeSumSquares(start, length);
  return std::max(0.0, sum2 - sum * sum / static_cast<double>(length));
}

std::vector<size_t> EquiDepthBoundaries(std::span<const double> y,
                                        size_t buckets) {
  // Boundaries equalize cumulative |value| mass; a small per-element floor
  // keeps all-zero stretches from collapsing into one giant bucket.
  double total = 0.0;
  for (double v : y) total += std::abs(v) + 1e-9;
  std::vector<size_t> bounds;
  bounds.reserve(buckets + 1);
  bounds.push_back(0);
  double acc = 0.0;
  size_t next = 1;
  for (size_t i = 0; i < y.size() && next < buckets; ++i) {
    acc += std::abs(y[i]) + 1e-9;
    if (acc >= total * static_cast<double>(next) /
                   static_cast<double>(buckets)) {
      // Never emit an empty bucket.
      if (i + 1 > bounds.back()) bounds.push_back(i + 1);
      ++next;
    }
  }
  bounds.push_back(y.size());
  return bounds;
}

}  // namespace

std::string HistogramCompressor::Name() const {
  switch (kind_) {
    case HistogramKind::kEquiDepth:
      return "hist_equi_depth";
    case HistogramKind::kEquiWidth:
      return "hist_equi_width";
    case HistogramKind::kGreedy:
      return "hist_greedy";
  }
  return "hist";
}

StatusOr<std::vector<double>> HistogramCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  if (y.empty() || num_signals == 0 || y.size() % num_signals != 0) {
    return Status::InvalidArgument("bad chunk geometry");
  }
  const size_t buckets = std::min(budget_values / 2, y.size());
  if (buckets == 0) {
    return Status::InvalidArgument("budget cannot afford one bucket");
  }

  PrefixSums ps(y);
  std::vector<double> out(y.size(), 0.0);
  auto fill = [&](size_t start, size_t length) {
    const double mean =
        ps.RangeSum(start, length) / static_cast<double>(length);
    std::fill(out.begin() + start, out.begin() + start + length, mean);
  };

  switch (kind_) {
    case HistogramKind::kEquiWidth: {
      const size_t base = y.size() / buckets;
      const size_t extra = y.size() % buckets;
      size_t pos = 0;
      for (size_t b = 0; b < buckets; ++b) {
        const size_t len = base + (b < extra ? 1 : 0);
        if (len == 0) continue;
        fill(pos, len);
        pos += len;
      }
      break;
    }
    case HistogramKind::kEquiDepth: {
      const std::vector<size_t> bounds = EquiDepthBoundaries(y, buckets);
      for (size_t b = 0; b + 1 < bounds.size(); ++b) {
        if (bounds[b + 1] > bounds[b]) fill(bounds[b], bounds[b + 1] - bounds[b]);
      }
      break;
    }
    case HistogramKind::kGreedy: {
      // Worst-bucket-first splitting, one initial bucket per signal so
      // buckets never straddle signal boundaries.
      const size_t m = y.size() / num_signals;
      if (buckets < num_signals) {
        return Status::InvalidArgument(
            "greedy histogram needs one bucket per signal");
      }
      std::priority_queue<Bucket> queue;
      size_t count = 0;
      for (size_t r = 0; r < num_signals; ++r) {
        queue.push({r * m, m, ConstantFitError(ps, r * m, m)});
        ++count;
      }
      std::vector<Bucket> done;
      while (count < buckets && !queue.empty()) {
        const Bucket top = queue.top();
        if (top.err == 0.0) break;
        queue.pop();
        if (top.length <= 1) {
          done.push_back(top);
          continue;
        }
        const size_t lh = top.length / 2;
        queue.push({top.start, lh, ConstantFitError(ps, top.start, lh)});
        queue.push({top.start + lh, top.length - lh,
                    ConstantFitError(ps, top.start + lh, top.length - lh)});
        ++count;
      }
      while (!queue.empty()) {
        done.push_back(queue.top());
        queue.pop();
      }
      for (const Bucket& b : done) fill(b.start, b.length);
      break;
    }
  }
  return out;
}

}  // namespace sbr::compress
