#include "compress/fourier.h"

#include <algorithm>
#include <complex>
#include <numeric>
#include <vector>

#include "linalg/fft.h"

namespace sbr::compress {

StatusOr<std::vector<double>> FourierCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  if (y.empty() || num_signals == 0 || y.size() % num_signals != 0) {
    return Status::InvalidArgument("bad chunk geometry");
  }
  const size_t keep = budget_values / 3;  // index + re + im
  if (keep == 0) {
    return Status::InvalidArgument("budget cannot afford one coefficient");
  }

  const size_t n = y.size();
  std::vector<std::complex<double>> spectrum = linalg::FftReal(y);

  // Rank the non-redundant half-spectrum by magnitude. Keeping bin k also
  // keeps its conjugate mirror n-k for free (the signal is real), so only
  // bins 0..n/2 compete.
  const size_t half = n / 2;
  std::vector<size_t> order(half + 1);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    // Mirror-paired bins carry double energy; DC and Nyquist do not.
    auto weight = [&](size_t k) {
      const double mag = std::norm(spectrum[k]);
      const bool paired = k != 0 && !(n % 2 == 0 && k == half);
      return paired ? 2.0 * mag : mag;
    };
    const double wa = weight(a);
    const double wb = weight(b);
    if (wa != wb) return wa > wb;
    return a < b;
  });

  std::vector<bool> kept(n, false);
  for (size_t i = 0; i < std::min(keep, order.size()); ++i) {
    const size_t k = order[i];
    kept[k] = true;
    if (k != 0 && k != n - k) kept[n - k] = true;
  }
  for (size_t k = 0; k < n; ++k) {
    if (!kept[k]) spectrum[k] = 0.0;
  }

  const auto time = linalg::Ifft(spectrum);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = time[i].real();
  return out;
}

}  // namespace sbr::compress
