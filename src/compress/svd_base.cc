#include "compress/svd_base.h"

#include "linalg/svd.h"

namespace sbr::compress {

std::vector<core::CandidateBaseInterval> GetBaseSvd(
    std::span<const double> y, size_t num_signals, size_t w, size_t max_ins) {
  std::vector<core::CandidateBaseInterval> result;
  if (w == 0 || num_signals == 0 || max_ins == 0) return result;
  const size_t m = y.size() / num_signals;
  const size_t per_row = m / w;
  const size_t k = num_signals * per_row;
  if (k == 0) return result;

  // R: one row per candidate base interval.
  linalg::Matrix r(k, w);
  size_t row = 0;
  for (size_t s = 0; s < num_signals; ++s) {
    for (size_t c = 0; c < per_row; ++c, ++row) {
      for (size_t i = 0; i < w; ++i) {
        r(row, i) = y[s * m + c * w + i];
      }
    }
  }

  const linalg::RightSingularVectors svd =
      linalg::TopRightSingularVectors(r, max_ins);
  result.reserve(svd.vectors.size());
  for (size_t i = 0; i < svd.vectors.size(); ++i) {
    core::CandidateBaseInterval cbi;
    cbi.values = svd.vectors[i];
    cbi.source_index = i;
    cbi.benefit = svd.singular_values[i];
    result.push_back(std::move(cbi));
  }
  return result;
}

core::BaseProvider SvdBaseProvider() {
  return [](std::span<const double> y, size_t num_signals, size_t w,
            size_t max_ins) {
    return GetBaseSvd(y, num_signals, w, max_ins);
  };
}

}  // namespace sbr::compress
