// DCT top-B approximation baseline: orthonormal DCT-II over the
// concatenated chunk (or per signal with global selection), keeping the
// budget/2 largest-magnitude coefficients at 2 values (index + value)
// each.
#ifndef SBR_COMPRESS_DCT_COMPRESSOR_H_
#define SBR_COMPRESS_DCT_COMPRESSOR_H_

#include "compress/compressor.h"

namespace sbr::compress {

/// Coefficient layout for the DCT baseline.
enum class DctLayout { kConcat, kPerSignal };

/// DCT top-B compressor.
class DctCompressor : public ChunkCompressor {
 public:
  explicit DctCompressor(DctLayout layout = DctLayout::kConcat)
      : layout_(layout) {}

  std::string Name() const override {
    return layout_ == DctLayout::kConcat ? "dct" : "dct_per_signal";
  }

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;

 private:
  DctLayout layout_;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_DCT_COMPRESSOR_H_
