// Histogram (piecewise-constant) approximation baselines. A histogram of
// b buckets costs 2 values per bucket (right edge + bucket mean;
// DESIGN.md note 1). Variants:
//   kEquiDepth  bucket boundaries equalize the cumulative |value| mass
//               (the [25]-style equi-depth rule applied to a sequence),
//   kEquiWidth  equal-length index ranges,
//   kGreedy     worst-bucket-first recursive splitting (the piecewise-
//               constant analog of GetIntervals; strongest histogram).
#ifndef SBR_COMPRESS_HISTOGRAM_H_
#define SBR_COMPRESS_HISTOGRAM_H_

#include "compress/compressor.h"

namespace sbr::compress {

/// Bucket-boundary policy.
enum class HistogramKind { kEquiDepth, kEquiWidth, kGreedy };

/// Piecewise-constant compressor over the concatenated chunk.
class HistogramCompressor : public ChunkCompressor {
 public:
  explicit HistogramCompressor(HistogramKind kind = HistogramKind::kEquiDepth)
      : kind_(kind) {}

  std::string Name() const override;

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;

 private:
  HistogramKind kind_;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_HISTOGRAM_H_
