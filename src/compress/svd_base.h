// GetBaseSVD (paper Appendix): an alternative base-signal construction
// that builds the K x W matrix of candidate base intervals and uses its
// top right singular vectors — each capturing a dominant linear trend
// across the candidates — as the base intervals.
#ifndef SBR_COMPRESS_SVD_BASE_H_
#define SBR_COMPRESS_SVD_BASE_H_

#include <span>
#include <vector>

#include "core/encoder.h"
#include "core/get_base.h"

namespace sbr::compress {

/// Direct form: the top-`max_ins` right singular vectors of the candidate
/// matrix, in decreasing singular-value order (benefit = singular value).
std::vector<core::CandidateBaseInterval> GetBaseSvd(
    std::span<const double> y, size_t num_signals, size_t w, size_t max_ins);

/// Adapter usable as EncoderOptions::base_provider with
/// BaseStrategy::kCustom.
core::BaseProvider SvdBaseProvider();

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_SVD_BASE_H_
