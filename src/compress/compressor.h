// Common interface for every lossy chunk approximation method compared in
// the paper's Section 5: SBR itself, Haar wavelets, the DCT and
// histograms. All methods receive the same abstract budget in "values"
// (see DESIGN.md note 1 for the per-method accounting) and return the
// reconstructed chunk, so benches can score them uniformly.
#ifndef SBR_COMPRESS_COMPRESSOR_H_
#define SBR_COMPRESS_COMPRESSOR_H_

#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace sbr::compress {

/// A (possibly stateful) chunk approximation method.
class ChunkCompressor {
 public:
  virtual ~ChunkCompressor() = default;

  /// Short name for bench tables.
  virtual std::string Name() const = 0;

  /// Approximates `y` (the concatenation of num_signals equal-length
  /// signals) within `budget_values` values and returns the reconstruction
  /// of the same length. Stateful methods (SBR) treat successive calls as
  /// successive transmissions.
  virtual StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) = 0;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_COMPRESSOR_H_
