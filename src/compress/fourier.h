// Fourier top-B approximation baseline. The paper evaluated the Fourier
// transform and dropped it from the tables because it "produced
// consistently larger errors than DCT"; this compressor exists to
// reproduce that side remark (see bench_ablation_baselines).
//
// Budget accounting: a retained complex coefficient costs 3 values
// (index + real + imaginary); conjugate-symmetric pairs are kept together
// and cost 3 values total since the mirror coefficient is implied.
#ifndef SBR_COMPRESS_FOURIER_H_
#define SBR_COMPRESS_FOURIER_H_

#include "compress/compressor.h"

namespace sbr::compress {

/// DFT top-B compressor over the concatenated chunk.
class FourierCompressor : public ChunkCompressor {
 public:
  std::string Name() const override { return "fourier"; }

  StatusOr<std::vector<double>> CompressAndReconstruct(
      std::span<const double> y, size_t num_signals,
      size_t budget_values) override;
};

}  // namespace sbr::compress

#endif  // SBR_COMPRESS_FOURIER_H_
