#include "compress/wavelet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "linalg/fft.h"

namespace sbr::compress {
namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

std::vector<double> PadWithLast(std::span<const double> input) {
  const size_t padded = linalg::NextPowerOfTwo(std::max<size_t>(1, input.size()));
  std::vector<double> out(input.begin(), input.end());
  out.resize(padded, input.empty() ? 0.0 : input.back());
  return out;
}

}  // namespace

void HaarForward(std::span<double> data) {
  const size_t n = data.size();
  assert(linalg::IsPowerOfTwo(n));
  std::vector<double> tmp(n);
  for (size_t len = n; len > 1; len /= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[i] = (data[2 * i] + data[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = (data[2 * i] - data[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + len, data.begin());
  }
}

void HaarInverse(std::span<double> data) {
  const size_t n = data.size();
  assert(linalg::IsPowerOfTwo(n));
  std::vector<double> tmp(n);
  for (size_t len = 2; len <= n; len *= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[2 * i] = (data[i] + data[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = (data[i] - data[half + i]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + len, data.begin());
  }
}

std::vector<double> HaarForwardPadded(std::span<const double> input) {
  std::vector<double> padded = PadWithLast(input);
  HaarForward(padded);
  return padded;
}

size_t KeepTopCoefficients(std::span<double> coeffs, size_t keep) {
  if (keep >= coeffs.size()) return coeffs.size();
  std::vector<size_t> order(coeffs.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + keep, order.end(),
                   [&](size_t a, size_t b) {
                     const double fa = std::abs(coeffs[a]);
                     const double fb = std::abs(coeffs[b]);
                     if (fa != fb) return fa > fb;
                     return a < b;
                   });
  std::vector<bool> kept(coeffs.size(), false);
  size_t nonzero = 0;
  for (size_t i = 0; i < keep; ++i) {
    kept[order[i]] = true;
  }
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (!kept[i]) {
      coeffs[i] = 0.0;
    } else if (coeffs[i] != 0.0) {
      ++nonzero;
    }
  }
  return nonzero;
}

std::string WaveletCompressor::Name() const {
  switch (layout_) {
    case WaveletLayout::kConcat:
      return "wavelet";
    case WaveletLayout::kPerSignal:
      return "wavelet_per_signal";
    case WaveletLayout::kTwoD:
      return "wavelet_2d";
  }
  return "wavelet";
}

StatusOr<std::vector<double>> WaveletCompressor::CompressAndReconstruct(
    std::span<const double> y, size_t num_signals, size_t budget_values) {
  if (y.empty() || num_signals == 0 || y.size() % num_signals != 0) {
    return Status::InvalidArgument("bad chunk geometry");
  }
  const size_t keep = budget_values / 2;  // index + value per coefficient
  if (keep == 0) {
    return Status::InvalidArgument("budget cannot afford one coefficient");
  }
  switch (layout_) {
    case WaveletLayout::kConcat:
      return Concat(y, keep);
    case WaveletLayout::kPerSignal:
      return PerSignal(y, num_signals, keep);
    case WaveletLayout::kTwoD:
      return TwoD(y, num_signals, keep);
  }
  return Status::Internal("unknown layout");
}

StatusOr<std::vector<double>> WaveletCompressor::Concat(
    std::span<const double> y, size_t keep) {
  std::vector<double> coeffs = HaarForwardPadded(y);
  KeepTopCoefficients(coeffs, keep);
  HaarInverse(coeffs);
  coeffs.resize(y.size());
  return coeffs;
}

StatusOr<std::vector<double>> WaveletCompressor::PerSignal(
    std::span<const double> y, size_t num_signals, size_t keep) {
  const size_t m = y.size() / num_signals;
  // Transform each signal, then one global top-B selection so signals that
  // are harder to approximate get more coefficients (paper Section 5.1).
  std::vector<std::vector<double>> rows(num_signals);
  std::vector<double> all;
  for (size_t r = 0; r < num_signals; ++r) {
    rows[r] = HaarForwardPadded(y.subspan(r * m, m));
    all.insert(all.end(), rows[r].begin(), rows[r].end());
  }
  KeepTopCoefficients(all, keep);
  std::vector<double> out;
  out.reserve(y.size());
  size_t offset = 0;
  for (size_t r = 0; r < num_signals; ++r) {
    std::copy(all.begin() + offset, all.begin() + offset + rows[r].size(),
              rows[r].begin());
    offset += rows[r].size();
    HaarInverse(rows[r]);
    out.insert(out.end(), rows[r].begin(), rows[r].begin() + m);
  }
  return out;
}

StatusOr<std::vector<double>> WaveletCompressor::TwoD(
    std::span<const double> y, size_t num_signals, size_t keep) {
  const size_t m = y.size() / num_signals;
  const size_t rows2 = linalg::NextPowerOfTwo(num_signals);
  const size_t cols2 = linalg::NextPowerOfTwo(m);
  // Pad rows with their last value, extra rows with the last real row.
  std::vector<double> grid(rows2 * cols2, 0.0);
  for (size_t r = 0; r < rows2; ++r) {
    const size_t src = std::min(r, num_signals - 1);
    for (size_t c = 0; c < cols2; ++c) {
      grid[r * cols2 + c] = y[src * m + std::min(c, m - 1)];
    }
  }
  // Standard decomposition: full transform of every row, then of every
  // column.
  for (size_t r = 0; r < rows2; ++r) {
    HaarForward(std::span<double>(grid.data() + r * cols2, cols2));
  }
  std::vector<double> col(rows2);
  for (size_t c = 0; c < cols2; ++c) {
    for (size_t r = 0; r < rows2; ++r) col[r] = grid[r * cols2 + c];
    HaarForward(col);
    for (size_t r = 0; r < rows2; ++r) grid[r * cols2 + c] = col[r];
  }
  KeepTopCoefficients(grid, keep);
  for (size_t c = 0; c < cols2; ++c) {
    for (size_t r = 0; r < rows2; ++r) col[r] = grid[r * cols2 + c];
    HaarInverse(col);
    for (size_t r = 0; r < rows2; ++r) grid[r * cols2 + c] = col[r];
  }
  std::vector<double> out;
  out.reserve(y.size());
  for (size_t r = 0; r < num_signals; ++r) {
    HaarInverse(std::span<double>(grid.data() + r * cols2, cols2));
    out.insert(out.end(), grid.begin() + r * cols2,
               grid.begin() + r * cols2 + m);
  }
  return out;
}

}  // namespace sbr::compress
