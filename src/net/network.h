// NetworkSim: end-to-end simulation tying the substrates together. Each
// sensor node samples its own multi-signal feed, batches, compresses with
// SBR and ships framed transmissions over a multi-hop route of seeded
// FaultChannels to the base station; the simulator accounts radio energy
// for both the compressed traffic and the raw-feed counterfactual, which
// is the quantity the paper's motivation section argues about.
//
// Links are lossy and adversarial (drop / duplicate / reorder / bit-flip
// per hop), and the run never aborts on loss: the fault-tolerant protocol
// detects corruption by CRC, suppresses duplicates, recovers from
// desynchronization with base-signal snapshots plus self-contained
// re-encodes, and records irrecoverable chunks as explicit DataLoss gaps.
#ifndef SBR_NET_NETWORK_H_
#define SBR_NET_NETWORK_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "datagen/dataset.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/fault_channel.h"
#include "net/node.h"
#include "net/topology.h"

namespace sbr::obs {
class MetricsRegistry;
}  // namespace sbr::obs

namespace sbr::net {

/// Static description of one sensor's place in the routing tree. With the
/// legacy (placement-only) constructor, `hops_to_base` models the node's
/// route as a private chain of that many lossy hops; with a Topology the
/// route is the tree's real uplink path and `hops_to_base` is ignored.
struct NodePlacement {
  uint32_t id = 0;
  size_t hops_to_base = 1;
};

/// Radio-link reliability and protocol tuning. SBR transmissions are
/// stateful (base-signal updates must arrive in order), so frames are
/// sequence-numbered, CRC-protected and acknowledged end-to-end; a frame
/// that stays undeliverable degrades gracefully (resync + self-contained
/// re-encode, then an explicit DataLoss gap) instead of failing the run.
struct LinkOptions {
  /// Per-hop probability that one frame copy is lost.
  double loss_probability = 0.0;
  /// Per-hop probability that a frame copy is delivered twice.
  double duplicate_probability = 0.0;
  /// Per-hop probability that a frame is held and delivered out of order.
  double reorder_probability = 0.0;
  /// Per-hop probability that one random bit of a frame copy is flipped.
  double bit_flip_probability = 0.0;
  /// End-to-end delivery attempts per frame before giving up on it.
  size_t max_attempts = 16;
  /// Resync rounds (snapshot + degraded re-encode) per failed chunk.
  size_t max_resync_rounds = 3;
  /// Base-station reorder window (frames buffered ahead of the expected
  /// sequence number before a gap is declared).
  size_t reorder_window = 8;
  /// Disable to study unrecovered desync: lost frames then surface as
  /// DataLoss at the base station and are never re-encoded.
  bool resync_enabled = true;
  /// Seed for the deterministic per-hop fault processes.
  uint64_t seed = 17;
  /// Energy-aware retry budget: when > 0, a node whose EnergyAccount has
  /// already spent `retry_energy_fraction` of this budget (in nJ) stops
  /// retransmitting — the frame is abandoned after its first attempt — but
  /// keeps sensing, encoding and first-attempt delivery. A draining node
  /// sheds retries before it sheds sensing. 0 disables the budget.
  double node_energy_budget_nj = 0.0;
  /// Fraction of the budget beyond which retries are shed (see above).
  double retry_energy_fraction = 0.75;
};

/// Per-node simulation outcome.
struct NodeReport {
  uint32_t id = 0;
  size_t transmissions = 0;
  size_t values_sent = 0;
  size_t values_raw = 0;  ///< what a full-resolution feed would have sent
  /// Extra end-to-end frame deliveries forced by faults (retries beyond
  /// the first attempt of each frame).
  size_t retransmissions = 0;
  /// Exponential-backoff slots spent waiting between retries.
  size_t backoff_slots = 0;
  // Protocol counters (same seed => identical values, run to run).
  size_t corrupt_frames_detected = 0;  ///< CRC failures at the station
  size_t duplicates_suppressed = 0;
  size_t resyncs_triggered = 0;      ///< snapshot rounds initiated
  size_t degraded_batches = 0;       ///< chunks re-encoded self-contained
  size_t chunks_lost = 0;            ///< chunks recorded as DataLoss gaps
  size_t frames_abandoned = 0;       ///< frames given up after max_attempts
  /// Retry attempts suppressed by the energy-aware budget
  /// (LinkOptions::node_energy_budget_nj).
  size_t retries_shed = 0;
  /// Frame copies this node relayed for its descendants (topology runs
  /// only; the matching radio energy is charged to this node's account).
  size_t forwarded_copies = 0;
  /// On-air values charged to this node's account across every copy and
  /// hop it transmitted (own traffic, relayed traffic, residual flushes).
  /// Pins the energy account: energy == EnergyModel charge of
  /// (charged_values, 1 hop) + backoff(backoff_slots), exactly.
  size_t charged_values = 0;
  EnergyAccount energy;
  double raw_energy_nj = 0.0;
  /// Sum-squared error of the reconstructed history vs the true feed,
  /// over non-gap chunks only.
  double sse = 0.0;
};

/// Whole-run outcome.
struct SimulationReport {
  std::vector<NodeReport> nodes;
  size_t total_values_sent = 0;
  size_t total_values_raw = 0;
  double total_energy_nj = 0.0;
  double total_raw_energy_nj = 0.0;
  double total_sse = 0.0;
  size_t total_chunks_lost = 0;
  size_t total_corrupt_frames = 0;
  size_t total_duplicates_suppressed = 0;
  size_t total_resyncs = 0;
  size_t total_degraded_batches = 0;

  /// values_raw / values_sent.
  double CompressionFactor() const;
  /// raw energy / actual energy. NaN when total_energy_nj == 0: a run that
  /// spent nothing has no meaningful saving factor, and reporting 0.0
  /// ("no saving") there was a bug. Callers that need a number should
  /// std::isfinite-guard; PublishMetrics already does.
  double EnergySavingFactor() const;

  /// Mirrors the report into `registry` as gauges: run totals under
  /// `sim.*` and per-node breakdowns under `node.<id>.*` (tx_values,
  /// retries, energy_nj, chunks_lost, corrupt_frames, resyncs, sse — see
  /// obs/export.h for the emitted schema). The report structs stay the
  /// canonical deterministic result; the registry view exists so bench and
  /// tooling exports see the simulation next to the encode-stage metrics.
  /// No-op unless observability is compiled in and enabled.
  void PublishMetrics(obs::MetricsRegistry* registry) const;
};

/// Multi-sensor, single-base-station simulation.
class NetworkSim {
 public:
  /// All nodes share the encoder configuration; each node `i` samples
  /// dataset `feeds[i]` (one feed per placement, same signal count each).
  /// Legacy routing: node `i`'s route is a private chain of
  /// `placements[i].hops_to_base` lossy hops (a star — no shared relays).
  NetworkSim(std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Tree routing: node `i` occupies `topology` index `i` and its frames
  /// travel the tree's uplink path, relayed by its ancestors. Every copy
  /// entering a relay pays that relay's radio energy (charged to the
  /// relay's NodeReport, merged deterministically in placement order), so
  /// deep subtrees drain their relays — the routing-structure effect the
  /// star model could not express. A depth-1 star topology reproduces the
  /// legacy constructor's report byte for byte. `placements[i].hops_to_base`
  /// is ignored; depth comes from the topology.
  NetworkSim(Topology topology, std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Streams every feed through its node until the feeds are exhausted
  /// (only whole chunks are transmitted) and returns the report.
  ///
  /// When encoder_options.threads > 1, nodes are simulated concurrently on
  /// the shared pool: each node's sampling, encoding, fault channels and
  /// energy account are private, and the shared base station is serialized
  /// behind a mutex. Per-node reports are computed independently and
  /// aggregated in placement order, so the report is bitwise identical at
  /// any thread count.
  StatusOr<SimulationReport> Run(const std::vector<datagen::Dataset>& feeds);

  const BaseStation& base_station() const { return station_; }

 private:
  /// Outcome of delivering one frame end-to-end with bounded retries.
  enum class DeliveryOutcome {
    kAccepted,   ///< station ingested it (or a duplicate of it)
    kDesync,     ///< station demands a resync before accepting data
    kAbandoned,  ///< undeliverable within max_attempts
  };

  /// One node's uplink route: the per-hop fault processes plus, for
  /// topology runs, which node pays each hop and where relay charges
  /// accumulate. Relay charges land in per-origin accumulators (private to
  /// the running node, merged in placement order after the parallel
  /// section) so reports stay bitwise identical at any thread count.
  struct Route {
    std::vector<FaultChannel> hops;
    /// Placement index transmitting hop h; tx[0] is the origin. Legacy
    /// routes repeat the origin (a private chain).
    std::vector<size_t> tx;
    size_t origin = 0;
    // Topology runs only (nullptr otherwise), all indexed by placement.
    std::vector<EnergyAccount>* relay_energy = nullptr;
    std::vector<size_t>* relay_copies = nullptr;
    std::vector<size_t>* relay_values = nullptr;
  };

  /// Pushes one frame along the route with retries and exponential backoff
  /// (with the node's seeded jitter), charging energy per copy per hop to
  /// whichever node transmits that hop. A node past its energy-aware retry
  /// budget sheds retries: the frame is abandoned after one attempt.
  StatusOr<DeliveryOutcome> DeliverFrame(SensorNode* node,
                                         const core::Frame& frame,
                                         size_t value_count, Route* route,
                                         NodeReport* nr);

  /// Delivers one encoded chunk, falling back to resync + self-contained
  /// re-encode when the protocol demands it.
  Status DeliverChunk(SensorNode* node, const core::Transmission& tx,
                      Route* route, NodeReport* nr);

  /// One resync round: snapshot frame, then (optionally) the affected
  /// batch re-encoded self-contained. Returns true once the batch is safe.
  StatusOr<bool> TryResync(SensorNode* node, bool recover_batch,
                           Route* route, NodeReport* nr);

  /// The entire lifetime of one node: sampling, encoding, delivery,
  /// trailing resync, hop flush and history scoring. Touches only per-node
  /// state plus the mutex-guarded station, so nodes may run concurrently.
  Status RunNode(size_t index, const datagen::Dataset& feed, NodeReport* nr,
                 std::vector<EnergyAccount>* relay_energy,
                 std::vector<size_t>* relay_copies,
                 std::vector<size_t>* relay_values);

  /// Serialized station ingest. Attributes the corrupt-frame delta of the
  /// call to `nr` under the same lock, which keeps per-node attribution
  /// exact even when other nodes interleave (a corrupt frame drained from
  /// the reorder window is counted on the aggregate but not acked, so the
  /// delta — not the ack type — is the reliable signal).
  StatusOr<FrameAck> StationReceive(std::span<const uint8_t> bytes,
                                    NodeReport* nr);

  std::vector<NodePlacement> placements_;
  Topology topology_;
  bool has_topology_ = false;
  core::EncoderOptions encoder_options_;
  size_t chunk_len_;
  EnergyModel energy_;
  LinkOptions link_;
  BaseStation station_;
  /// Serializes every access to station_ (ingest, stats, history lookup)
  /// during a threaded Run.
  std::mutex station_mu_;
};

}  // namespace sbr::net

#endif  // SBR_NET_NETWORK_H_
