// NetworkSim: end-to-end simulation tying the substrates together. Each
// sensor node samples its own multi-signal feed, batches, compresses with
// SBR and ships framed transmissions over a multi-hop route of seeded
// FaultChannels to the base station; the simulator accounts radio energy
// for both the compressed traffic and the raw-feed counterfactual, which
// is the quantity the paper's motivation section argues about.
//
// Links are lossy and adversarial (drop / duplicate / reorder / bit-flip
// per hop), and the run never aborts on loss: the fault-tolerant protocol
// detects corruption by CRC, suppresses duplicates, recovers from
// desynchronization with base-signal snapshots plus self-contained
// re-encodes, and records irrecoverable chunks as explicit DataLoss gaps.
//
// All of the delivery machinery — routing, retries/backoff, energy
// charging, report merging — lives in the shared net::SimEngine
// (sim_engine.h); NetworkSim is the engine's null-lifecycle configuration:
// it builds routes and feeds, points a DeliverySink at its NodeReport rows
// and lets the engine drive each chunk to a terminal outcome.
#ifndef SBR_NET_NETWORK_H_
#define SBR_NET_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "datagen/dataset.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/sim_engine.h"
#include "net/topology.h"
#include "storage/query_service.h"

namespace sbr::net {

/// Static description of one sensor's place in the routing tree. With the
/// legacy (placement-only) constructor, `hops_to_base` models the node's
/// route as a private chain of that many lossy hops; with a Topology the
/// route is the tree's real uplink path and `hops_to_base` is ignored.
struct NodePlacement {
  uint32_t id = 0;
  size_t hops_to_base = 1;
};

/// Radio-link reliability and protocol tuning. SBR transmissions are
/// stateful (base-signal updates must arrive in order), so frames are
/// sequence-numbered, CRC-protected and acknowledged end-to-end; a frame
/// that stays undeliverable degrades gracefully (resync + self-contained
/// re-encode, then an explicit DataLoss gap) instead of failing the run.
struct LinkOptions {
  /// Per-hop probability that one frame copy is lost.
  double loss_probability = 0.0;
  /// Per-hop probability that a frame copy is delivered twice.
  double duplicate_probability = 0.0;
  /// Per-hop probability that a frame is held and delivered out of order.
  double reorder_probability = 0.0;
  /// Per-hop probability that one random bit of a frame copy is flipped.
  double bit_flip_probability = 0.0;
  /// End-to-end delivery attempts per frame before giving up on it.
  size_t max_attempts = 16;
  /// Resync rounds (snapshot + degraded re-encode) per failed chunk.
  size_t max_resync_rounds = 3;
  /// Base-station reorder window (frames buffered ahead of the expected
  /// sequence number before a gap is declared).
  size_t reorder_window = 8;
  /// Disable to study unrecovered desync: lost frames then surface as
  /// DataLoss at the base station and are never re-encoded.
  bool resync_enabled = true;
  /// Seed for the deterministic per-hop fault processes.
  uint64_t seed = 17;
  /// Energy-aware retry budget: when > 0, a node whose EnergyAccount has
  /// already spent `retry_energy_fraction` of this budget (in nJ) stops
  /// retransmitting — the frame is abandoned after its first attempt — but
  /// keeps sensing, encoding and first-attempt delivery. A draining node
  /// sheds retries before it sheds sensing. 0 disables the budget.
  double node_energy_budget_nj = 0.0;
  /// Fraction of the budget beyond which retries are shed (see above).
  double retry_energy_fraction = 0.75;
};

/// Multi-sensor, single-base-station simulation.
class NetworkSim {
 public:
  /// All nodes share the encoder configuration; each node `i` samples
  /// dataset `feeds[i]` (one feed per placement, same signal count each).
  /// Legacy routing: node `i`'s route is a private chain of
  /// `placements[i].hops_to_base` lossy hops (a star — no shared relays).
  NetworkSim(std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Tree routing: node `i` occupies `topology` index `i` and its frames
  /// travel the tree's uplink path, relayed by its ancestors. Every copy
  /// entering a relay pays that relay's radio energy (charged to the
  /// relay's NodeReport, merged deterministically in placement order), so
  /// deep subtrees drain their relays — the routing-structure effect the
  /// star model could not express. A depth-1 star topology reproduces the
  /// legacy constructor's report byte for byte. `placements[i].hops_to_base`
  /// is ignored; depth comes from the topology.
  NetworkSim(Topology topology, std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Streams every feed through its node until the feeds are exhausted
  /// (only whole chunks are transmitted) and returns the report.
  ///
  /// When encoder_options.threads > 1, nodes are simulated concurrently on
  /// the shared pool: each node's sampling, encoding, fault channels and
  /// energy account are private, and the shared base station is serialized
  /// behind the engine's mutex. Per-node reports are computed independently
  /// and aggregated in placement order, so the report is bitwise identical
  /// at any thread count.
  StatusOr<SimulationReport> Run(const std::vector<datagen::Dataset>& feeds);

  const BaseStation& base_station() const { return station_; }

  /// Attaches a concurrent storage::QueryService to the base station and
  /// makes every node issue a read-only probe (aggregate + point) against
  /// its own history after every `probe_every_chunks` resolved chunks —
  /// concurrent readers exercising the snapshot path while ingest runs.
  /// Probe answers feed only obs metrics and the service counters; the
  /// SimulationReport stays bitwise identical to a run without the service.
  void EnableQueryService(size_t probe_every_chunks = 4);

  /// nullptr unless EnableQueryService was called.
  const storage::QueryService* query_service() const {
    return query_service_.get();
  }

 private:
  /// The entire lifetime of one node: sampling, encoding, delivery (via
  /// the engine), trailing resync, hop flush and history scoring. Touches
  /// only per-node state plus the engine-serialized station, so nodes may
  /// run concurrently. `charges` is this origin's private relay-charge row
  /// block (nullptr for legacy star runs).
  Status RunNode(size_t index, const datagen::Dataset& feed, NodeReport* nr,
                 RelayCharges* charges);

  std::vector<NodePlacement> placements_;
  Topology topology_;
  bool has_topology_ = false;
  core::EncoderOptions encoder_options_;
  size_t chunk_len_;
  LinkOptions link_;
  BaseStation station_;
  /// The shared delivery engine, running the null lifecycle policy.
  /// Declared after station_: the engine holds a pointer to it.
  SimEngine engine_;
  /// Optional concurrent read front-end (EnableQueryService).
  std::unique_ptr<storage::QueryService> query_service_;
  size_t probe_every_chunks_ = 0;
};

}  // namespace sbr::net

#endif  // SBR_NET_NETWORK_H_
