// NetworkSim: end-to-end simulation tying the substrates together. Each
// sensor node samples its own multi-signal feed, batches, compresses with
// SBR and ships framed transmissions over a multi-hop route of seeded
// FaultChannels to the base station; the simulator accounts radio energy
// for both the compressed traffic and the raw-feed counterfactual, which
// is the quantity the paper's motivation section argues about.
//
// Links are lossy and adversarial (drop / duplicate / reorder / bit-flip
// per hop), and the run never aborts on loss: the fault-tolerant protocol
// detects corruption by CRC, suppresses duplicates, recovers from
// desynchronization with base-signal snapshots plus self-contained
// re-encodes, and records irrecoverable chunks as explicit DataLoss gaps.
#ifndef SBR_NET_NETWORK_H_
#define SBR_NET_NETWORK_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "datagen/dataset.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/fault_channel.h"
#include "net/node.h"

namespace sbr::obs {
class MetricsRegistry;
}  // namespace sbr::obs

namespace sbr::net {

/// Static description of one sensor's place in the routing tree.
struct NodePlacement {
  uint32_t id = 0;
  size_t hops_to_base = 1;
};

/// Radio-link reliability and protocol tuning. SBR transmissions are
/// stateful (base-signal updates must arrive in order), so frames are
/// sequence-numbered, CRC-protected and acknowledged end-to-end; a frame
/// that stays undeliverable degrades gracefully (resync + self-contained
/// re-encode, then an explicit DataLoss gap) instead of failing the run.
struct LinkOptions {
  /// Per-hop probability that one frame copy is lost.
  double loss_probability = 0.0;
  /// Per-hop probability that a frame copy is delivered twice.
  double duplicate_probability = 0.0;
  /// Per-hop probability that a frame is held and delivered out of order.
  double reorder_probability = 0.0;
  /// Per-hop probability that one random bit of a frame copy is flipped.
  double bit_flip_probability = 0.0;
  /// End-to-end delivery attempts per frame before giving up on it.
  size_t max_attempts = 16;
  /// Resync rounds (snapshot + degraded re-encode) per failed chunk.
  size_t max_resync_rounds = 3;
  /// Base-station reorder window (frames buffered ahead of the expected
  /// sequence number before a gap is declared).
  size_t reorder_window = 8;
  /// Disable to study unrecovered desync: lost frames then surface as
  /// DataLoss at the base station and are never re-encoded.
  bool resync_enabled = true;
  /// Seed for the deterministic per-hop fault processes.
  uint64_t seed = 17;
};

/// Per-node simulation outcome.
struct NodeReport {
  uint32_t id = 0;
  size_t transmissions = 0;
  size_t values_sent = 0;
  size_t values_raw = 0;  ///< what a full-resolution feed would have sent
  /// Extra end-to-end frame deliveries forced by faults (retries beyond
  /// the first attempt of each frame).
  size_t retransmissions = 0;
  /// Exponential-backoff slots spent waiting between retries.
  size_t backoff_slots = 0;
  // Protocol counters (same seed => identical values, run to run).
  size_t corrupt_frames_detected = 0;  ///< CRC failures at the station
  size_t duplicates_suppressed = 0;
  size_t resyncs_triggered = 0;      ///< snapshot rounds initiated
  size_t degraded_batches = 0;       ///< chunks re-encoded self-contained
  size_t chunks_lost = 0;            ///< chunks recorded as DataLoss gaps
  size_t frames_abandoned = 0;       ///< frames given up after max_attempts
  EnergyAccount energy;
  double raw_energy_nj = 0.0;
  /// Sum-squared error of the reconstructed history vs the true feed,
  /// over non-gap chunks only.
  double sse = 0.0;
};

/// Whole-run outcome.
struct SimulationReport {
  std::vector<NodeReport> nodes;
  size_t total_values_sent = 0;
  size_t total_values_raw = 0;
  double total_energy_nj = 0.0;
  double total_raw_energy_nj = 0.0;
  double total_sse = 0.0;
  size_t total_chunks_lost = 0;
  size_t total_corrupt_frames = 0;
  size_t total_duplicates_suppressed = 0;
  size_t total_resyncs = 0;
  size_t total_degraded_batches = 0;

  /// values_raw / values_sent.
  double CompressionFactor() const;
  /// raw energy / actual energy.
  double EnergySavingFactor() const;

  /// Mirrors the report into `registry` as gauges: run totals under
  /// `sim.*` and per-node breakdowns under `node.<id>.*` (tx_values,
  /// retries, energy_nj, chunks_lost, corrupt_frames, resyncs, sse — see
  /// obs/export.h for the emitted schema). The report structs stay the
  /// canonical deterministic result; the registry view exists so bench and
  /// tooling exports see the simulation next to the encode-stage metrics.
  /// No-op unless observability is compiled in and enabled.
  void PublishMetrics(obs::MetricsRegistry* registry) const;
};

/// Multi-sensor, single-base-station simulation.
class NetworkSim {
 public:
  /// All nodes share the encoder configuration; each node `i` samples
  /// dataset `feeds[i]` (one feed per placement, same signal count each).
  NetworkSim(std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Streams every feed through its node until the feeds are exhausted
  /// (only whole chunks are transmitted) and returns the report.
  ///
  /// When encoder_options.threads > 1, nodes are simulated concurrently on
  /// the shared pool: each node's sampling, encoding, fault channels and
  /// energy account are private, and the shared base station is serialized
  /// behind a mutex. Per-node reports are computed independently and
  /// aggregated in placement order, so the report is bitwise identical at
  /// any thread count.
  StatusOr<SimulationReport> Run(const std::vector<datagen::Dataset>& feeds);

  const BaseStation& base_station() const { return station_; }

 private:
  /// Outcome of delivering one frame end-to-end with bounded retries.
  enum class DeliveryOutcome {
    kAccepted,   ///< station ingested it (or a duplicate of it)
    kDesync,     ///< station demands a resync before accepting data
    kAbandoned,  ///< undeliverable within max_attempts
  };

  /// Pushes one frame through the node's hop chain with retries and
  /// exponential backoff (with the node's seeded jitter), charging energy
  /// per copy per hop.
  StatusOr<DeliveryOutcome> DeliverFrame(SensorNode* node,
                                         const core::Frame& frame,
                                         size_t value_count,
                                         std::vector<FaultChannel>* hops,
                                         size_t hops_to_base, NodeReport* nr);

  /// Delivers one encoded chunk, falling back to resync + self-contained
  /// re-encode when the protocol demands it.
  Status DeliverChunk(SensorNode* node, const core::Transmission& tx,
                      std::vector<FaultChannel>* hops, size_t hops_to_base,
                      NodeReport* nr);

  /// One resync round: snapshot frame, then (optionally) the affected
  /// batch re-encoded self-contained. Returns true once the batch is safe.
  StatusOr<bool> TryResync(SensorNode* node, bool recover_batch,
                           std::vector<FaultChannel>* hops,
                           size_t hops_to_base, NodeReport* nr);

  /// The entire lifetime of one node: sampling, encoding, delivery,
  /// trailing resync, hop flush and history scoring. Touches only per-node
  /// state plus the mutex-guarded station, so nodes may run concurrently.
  Status RunNode(size_t index, const datagen::Dataset& feed, NodeReport* nr);

  /// Serialized station ingest. Attributes the corrupt-frame delta of the
  /// call to `nr` under the same lock, which keeps per-node attribution
  /// exact even when other nodes interleave (a corrupt frame drained from
  /// the reorder window is counted on the aggregate but not acked, so the
  /// delta — not the ack type — is the reliable signal).
  StatusOr<FrameAck> StationReceive(std::span<const uint8_t> bytes,
                                    NodeReport* nr);

  std::vector<NodePlacement> placements_;
  core::EncoderOptions encoder_options_;
  size_t chunk_len_;
  EnergyModel energy_;
  LinkOptions link_;
  BaseStation station_;
  /// Serializes every access to station_ (ingest, stats, history lookup)
  /// during a threaded Run.
  std::mutex station_mu_;
};

}  // namespace sbr::net

#endif  // SBR_NET_NETWORK_H_
