// NetworkSim: end-to-end simulation tying the substrates together. Each
// sensor node samples its own multi-signal feed, batches, compresses with
// SBR and ships transmissions over a multi-hop route to the base station;
// the simulator accounts radio energy for both the compressed traffic and
// the raw-feed counterfactual, which is the quantity the paper's
// motivation section argues about.
#ifndef SBR_NET_NETWORK_H_
#define SBR_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/node.h"
#include "util/rng.h"

namespace sbr::net {

/// Static description of one sensor's place in the routing tree.
struct NodePlacement {
  uint32_t id = 0;
  size_t hops_to_base = 1;
};

/// Radio-link reliability. SBR transmissions are stateful (base-signal
/// updates must arrive in order), so lost frames are recovered by
/// hop-by-hop retransmission; each attempt pays full radio energy.
struct LinkOptions {
  /// Per-hop probability that one transmission attempt is lost.
  double loss_probability = 0.0;
  /// Give up after this many attempts per hop (the run fails if a frame
  /// is undeliverable, surfacing pathological links loudly).
  size_t max_attempts = 16;
  /// Seed for the deterministic loss process.
  uint64_t seed = 17;
};

/// Per-node simulation outcome.
struct NodeReport {
  uint32_t id = 0;
  size_t transmissions = 0;
  size_t values_sent = 0;
  size_t values_raw = 0;  ///< what a full-resolution feed would have sent
  /// Extra hop-transmissions forced by frame loss.
  size_t retransmissions = 0;
  EnergyAccount energy;
  double raw_energy_nj = 0.0;
  /// Sum-squared error of the reconstructed history vs the true feed.
  double sse = 0.0;
};

/// Whole-run outcome.
struct SimulationReport {
  std::vector<NodeReport> nodes;
  size_t total_values_sent = 0;
  size_t total_values_raw = 0;
  double total_energy_nj = 0.0;
  double total_raw_energy_nj = 0.0;
  double total_sse = 0.0;

  /// values_raw / values_sent.
  double CompressionFactor() const;
  /// raw energy / actual energy.
  double EnergySavingFactor() const;
};

/// Multi-sensor, single-base-station simulation.
class NetworkSim {
 public:
  /// All nodes share the encoder configuration; each node `i` samples
  /// dataset `feeds[i]` (one feed per placement, same signal count each).
  NetworkSim(std::vector<NodePlacement> placements,
             core::EncoderOptions encoder_options, size_t chunk_len,
             EnergyParams energy = EnergyParams(),
             LinkOptions link = LinkOptions());

  /// Streams every feed through its node until the feeds are exhausted
  /// (only whole chunks are transmitted) and returns the report.
  StatusOr<SimulationReport> Run(const std::vector<datagen::Dataset>& feeds);

  const BaseStation& base_station() const { return station_; }

 private:
  std::vector<NodePlacement> placements_;
  core::EncoderOptions encoder_options_;
  size_t chunk_len_;
  EnergyModel energy_;
  LinkOptions link_;
  Rng link_rng_;
  BaseStation station_;
};

}  // namespace sbr::net

#endif  // SBR_NET_NETWORK_H_
