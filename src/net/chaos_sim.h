// ChaosSim: a lockstep node-lifecycle chaos harness. Where NetworkSim
// exercises the protocol against *link* faults, ChaosSim additionally
// subjects the processes themselves to a seeded FaultScheduler: sensor
// nodes crash and come back from their durable checkpoints, the base
// station restarts and rebuilds its receive state from its logs, power
// loss tears the record a log was writing, stalled nodes are power-cycled
// by a watchdog, and memory pressure flips encoders into the low-memory
// base construction.
//
// The delivery machinery itself — routing, retries/backoff, energy
// charging — is the shared net::SimEngine (sim_engine.h). ChaosSim is the
// engine's lifecycle configuration: it plugs in a LifecycleHooks policy
// whose HopDown() partitions subtrees behind downed relays and whose
// OnFrameAccepted() feeds the shadow oracles and checks invariant I8, and
// it runs the engine under strict acceptance (only a kAccept settles a
// frame, because the shadow history must record exactly what the station
// ingested).
//
// The harness keeps a per-node *shadow history*: an oracle HistoryStore
// fed exactly the transmissions and snapshots the station accepted, but
// living outside the blast radius of every fault. After the run it checks
// the recovery invariants the lifecycle layer promises:
//
//   I1  no silent corruption — every non-gap chunk the station serves is
//       bitwise identical to the shadow's chunk at the same position, and
//       every chunk the shadow knows was written off is a gap at the
//       station too;
//   I2  the station's timeline converges to exactly the chunks fed;
//   I3  delivered + written-off chunks account for every chunk fed;
//   I4  data survives unless a fault explicitly destroyed it — without
//       log tears the station holds every delivered chunk;
//   I5  the whole run is a pure function of its seeds (checked by the
//       caller via ChaosReport::Digest()).
//
// With a tree topology (ChaosOptions::topology), frames travel the real
// multi-hop route: each hop crosses that edge's fault channel, every copy
// a relay forwards is charged to the relay's energy account, and a relay
// that is down (kRelayCrash, or any crash/stall) partitions its whole
// subtree — descendant copies reaching the dead relay vanish unpaid. Two
// more invariants cover the routing layer:
//
//   I8  partition: no frame is accepted by the station while any ancestor
//       of its origin is down;
//   I9  energy: each node's account equals exactly the radio cost of the
//       on-air values it was charged for plus its backoff idle-listening
//       (same closed form NetworkSim obeys, so the reports are comparable).
//
// Violations are reported as strings, not assertions, so a sweep can
// print every offending seed instead of dying on the first.
#ifndef SBR_NET_CHAOS_SIM_H_
#define SBR_NET_CHAOS_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/encoder.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/fault_channel.h"
#include "net/fault_scheduler.h"
#include "net/node.h"
#include "net/sim_engine.h"
#include "net/topology.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "util/status.h"

namespace sbr::net {

/// Chaos-run configuration. One round feeds every live node exactly one
/// chunk of synthetic data, so `rounds` is also the per-node chunk count.
struct ChaosOptions {
  size_t num_nodes = 3;
  size_t num_signals = 2;
  size_t chunk_len = 32;
  size_t rounds = 16;
  core::EncoderOptions encoder;
  /// Link fault rates (per frame copy). Reordering is forced off: the
  /// lifecycle layer owns timeline alignment and the reorder window is
  /// covered by the protocol tests.
  FaultOptions link;
  /// Lifecycle fault schedule shape; `rounds` and `node_ids` are filled in
  /// by the sim, the probabilities and `seed` are the caller's knobs.
  FaultScheduleOptions faults;
  /// Directory for the durable state: the station's per-sensor logs and
  /// each node's checkpoint log ("node_<id>.ckpt"). Required; the sim
  /// deletes its own files there at start so every run begins cold.
  std::string log_dir;
  uint64_t data_seed = 1;
  size_t max_attempts = 16;
  size_t max_resync_rounds = 3;
  size_t reorder_window = 8;
  /// Routing tree over the nodes (node index i <-> sensor id i+1). kStar
  /// reproduces the flat pre-topology harness byte for byte; the other
  /// shapes route frames through relays, with relay crashes partitioning
  /// whole subtrees. `topology_seed` is consumed by kRandom only.
  TopologyShape topology = TopologyShape::kStar;
  uint64_t topology_seed = 1;
  /// Radio energy accounting (same model as NetworkSim). Every frame copy
  /// pays per hop at whichever node transmits the hop; backoff slots pay
  /// idle-listening at the origin.
  EnergyParams energy;
  /// Energy-aware retry budget, as in LinkOptions: a node past
  /// `retry_energy_fraction * node_energy_budget_nj` of spend sheds
  /// retransmissions before it sheds sensing. 0 disables.
  double node_energy_budget_nj = 0.0;
  double retry_energy_fraction = 0.75;
};

/// Per-node chaos outcome.
struct ChaosNodeReport {
  uint32_t id = 0;
  size_t fed = 0;        ///< chunks generated and encoded
  size_t delivered = 0;  ///< chunks the station accepted (any form)
  size_t lost = 0;       ///< chunks written off as DataLoss
  size_t crashes = 0;
  size_t clean_restarts = 0;
  size_t watchdog_restarts = 0;
  size_t stall_rounds = 0;
  size_t pressure_toggles = 0;
  size_t backoff_slots = 0;
  size_t depth = 0;            ///< hops to the base station (>= 1)
  size_t relay_crashes = 0;    ///< kRelayCrash faults applied to this node
  /// Rounds this node spent cut off behind a downed ancestor (its own
  /// stalls are counted in stall_rounds, not here).
  size_t partitioned_rounds = 0;
  size_t retransmissions = 0;  ///< delivery attempts beyond the first
  size_t retries_shed = 0;     ///< retries suppressed by the energy budget
  size_t forwarded_copies = 0; ///< frame copies relayed for descendants
  /// Copies of this node's frames that a forwarding relay classified as
  /// failing the shared envelope check (CheckFrameEnvelope; relays
  /// classify but never drop — the station stays the enforcement point).
  /// Not part of Digest(): purely diagnostic.
  size_t malformed_relayed = 0;
  /// On-air values charged to this node across every copy and hop it
  /// transmitted; pins `energy` exactly (invariant I9).
  size_t charged_values = 0;
  EnergyAccount energy;
  size_t station_chunks = 0;  ///< final station timeline length
  size_t station_gaps = 0;
  /// FNV-1a over the station's final reconstructed history (values and gap
  /// positions); equal digests mean bitwise-equal histories.
  uint64_t history_digest = 0;
};

/// Whole-run chaos outcome.
struct ChaosReport {
  std::vector<ChaosNodeReport> nodes;
  size_t rounds = 0;
  size_t events_scheduled = 0;
  size_t events_applied = 0;
  size_t events_skipped = 0;  ///< e.g. faults aimed at a stalled node
  size_t station_restarts = 0;
  size_t log_tears = 0;  ///< power-loss events that damaged a log file
  size_t total_fed = 0;
  size_t total_delivered = 0;
  size_t total_lost = 0;
  /// Human-readable invariant violations; empty on a clean run.
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  /// Order-sensitive digest of every per-node digest and counter, for
  /// same-seed determinism checks.
  uint64_t Digest() const;
};

/// One chaos run. Single-threaded lockstep by design — the *encoders* may
/// still run multi-threaded via ChaosOptions::encoder.threads, which is
/// how the chaos suite doubles as a thread-invariance test.
class ChaosSim {
 public:
  explicit ChaosSim(ChaosOptions options);

  /// Executes the full schedule plus a convergence tail and returns the
  /// report. Returns a Status error only for harness-level failures
  /// (unwritable log_dir, invalid encoder geometry); protocol-level
  /// damage always surfaces as report violations instead.
  StatusOr<ChaosReport> Run();

 private:
  struct NodeCtx {
    explicit NodeCtx(size_t m_base) : shadow(m_base) {}

    uint32_t id = 0;
    std::unique_ptr<SensorNode> node;
    storage::ChunkLog ckpt;
    std::string ckpt_path;
    FaultChannel channel;
    storage::HistoryStore shadow;
    ChaosNodeReport report;
    /// Engine route up the tree: hop h crosses the edge channel owned by
    /// the h-th node on the path and charges that node's report. Built
    /// once in SetUp (channel/report addresses survive restarts — only
    /// `node` is replaced).
    EngineRoute route;
    size_t stall_until = 0;      ///< rounds < stall_until are silent
    bool watchdog_pending = false;
  };

  /// The lifecycle policy plugged into the engine: HopDown() is the
  /// relay-partition rule (a forwarding hop inside its outage window is
  /// dark), OnFrameAccepted() runs the I8 partition check and mirrors the
  /// accepted frame into the origin's shadow history.
  struct Lifecycle final : LifecycleHooks {
    ChaosSim* sim = nullptr;
    bool HopDown(size_t node) override;
    Status OnFrameAccepted(const core::Frame& frame,
                           const EngineRoute& route) override;
  };

  Status SetUp();
  Status ApplyEvent(const LifecycleEvent& e, size_t round);
  Status RunRound(size_t round);
  /// True if the node is dark this round (crashed, stalled, or inside a
  /// relay-crash outage): it neither samples nor forwards.
  bool IsDown(const NodeCtx& ctx) const { return round_ < ctx.stall_until; }
  /// Points a DeliverySink at the node's current SensorNode and its report
  /// row. Rebuilt per use: restarts replace ctx->node.
  DeliverySink SinkFor(NodeCtx* ctx);
  /// Feeds round `round`'s chunk into a node and hands it to the engine to
  /// drive to a terminal outcome (accepted, recovered degraded, or written
  /// off), then checkpoints at the chunk boundary.
  Status ResolveChunk(NodeCtx* ctx, size_t round);
  /// Applies an accepted frame to the node's shadow history.
  Status ShadowAccept(NodeCtx* ctx, const core::Frame& frame);
  Status CrashRestartNode(NodeCtx* ctx);
  Status CleanRestartNode(NodeCtx* ctx);
  Status RestartStation();
  /// Damages a log file per the event's tear mode; true if bytes changed.
  StatusOr<bool> TearLog(const std::string& path,
                         const storage::ChunkLog& view, TearMode mode,
                         storage::RecordType flip_target);
  Status Finalize();
  void CheckInvariants();

  ChaosOptions options_;
  std::unique_ptr<BaseStation> station_;
  std::vector<NodeCtx> nodes_;
  Topology topology_;
  Lifecycle hooks_;
  /// The shared delivery engine, configured strict-accept + obs-silent.
  /// Built in SetUp once the station exists.
  std::unique_ptr<SimEngine> engine_;
  /// Current lockstep round; options_.rounds once the schedule is spent,
  /// so Finalize sees every outage expired.
  size_t round_ = 0;
  ChaosReport report_;
  bool any_station_tear_ = false;
};

}  // namespace sbr::net

#endif  // SBR_NET_CHAOS_SIM_H_
