// SensorNode: the device-side batching loop of paper Section 3.2. Samples
// accumulate in an N x M in-memory buffer; when the buffer fills, the node
// runs the SBR encoder over it and emits one transmission, then reuses the
// buffer for the next batch.
#ifndef SBR_NET_NODE_H_
#define SBR_NET_NODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/encoder.h"
#include "core/transmission.h"
#include "util/status.h"

namespace sbr::net {

/// One sensor device.
class SensorNode {
 public:
  /// `num_signals` quantities, `chunk_len` samples each per batch.
  SensorNode(uint32_t id, size_t num_signals, size_t chunk_len,
             core::EncoderOptions encoder_options);

  uint32_t id() const { return id_; }
  size_t num_signals() const { return num_signals_; }
  size_t chunk_len() const { return chunk_len_; }

  /// Appends one sample for every quantity (one sampling instant). When
  /// this fills the buffer, encodes the batch and returns the transmission;
  /// otherwise returns nullopt.
  StatusOr<std::optional<core::Transmission>> AddSamples(
      std::span<const double> sample_per_signal);

  /// Samples buffered toward the next transmission (per signal).
  size_t buffered() const { return filled_; }

  /// Transmissions emitted so far.
  size_t transmissions() const { return transmissions_; }

  /// Encoder diagnostics for the most recent transmission.
  const core::EncodeStats& last_stats() const {
    return encoder_.last_stats();
  }

  const core::SbrEncoder& encoder() const { return encoder_; }

 private:
  uint32_t id_;
  size_t num_signals_;
  size_t chunk_len_;
  size_t filled_ = 0;
  size_t transmissions_ = 0;
  /// Row-major N x M batch buffer, flat in the concatenated layout the
  /// encoder consumes directly.
  std::vector<double> buffer_;
  core::SbrEncoder encoder_;
};

}  // namespace sbr::net

#endif  // SBR_NET_NODE_H_
