// SensorNode: the device-side batching loop of paper Section 3.2. Samples
// accumulate in an N x M in-memory buffer; when the buffer fills, the node
// runs the SBR encoder over it and emits one transmission, then reuses the
// buffer for the next batch.
//
// The node also owns the sensor side of the fault-tolerant transmission
// protocol: it frames every transmission with {sensor_id, seq, epoch,
// CRC32}, keeps the raw samples of the most recent batch so a lost frame
// can be re-encoded in a self-contained degraded mode (plain linear
// models, no base-signal references), and can ship a full base-signal
// snapshot to re-establish a common epoch with the base station.
#ifndef SBR_NET_NODE_H_
#define SBR_NET_NODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/encoder.h"
#include "core/transmission.h"
#include "util/rng.h"
#include "util/status.h"

namespace sbr::net {

/// One sensor device.
class SensorNode {
 public:
  /// `num_signals` quantities, `chunk_len` samples each per batch.
  SensorNode(uint32_t id, size_t num_signals, size_t chunk_len,
             core::EncoderOptions encoder_options);

  uint32_t id() const { return id_; }
  size_t num_signals() const { return num_signals_; }
  size_t chunk_len() const { return chunk_len_; }

  /// Appends one sample for every quantity (one sampling instant). When
  /// this fills the buffer, encodes the batch and returns the transmission;
  /// otherwise returns nullopt.
  StatusOr<std::optional<core::Transmission>> AddSamples(
      std::span<const double> sample_per_signal);

  /// Samples buffered toward the next transmission (per signal).
  size_t buffered() const { return filled_; }

  /// Transmissions emitted so far.
  size_t transmissions() const { return transmissions_; }

  /// Encoder diagnostics for the most recent transmission.
  const core::EncodeStats& last_stats() const {
    return encoder_.last_stats();
  }

  const core::SbrEncoder& encoder() const { return encoder_; }

  // ------------------------------------------------ transmission protocol

  /// Frames an encoded chunk for the air, consuming the next sequence
  /// number under the current epoch.
  core::Frame MakeDataFrame(const core::Transmission& t);

  /// Re-encodes the most recent batch in self-contained degraded mode:
  /// plain linear models, no base-signal references, decodable by any
  /// receiver regardless of base-signal state. FailedPrecondition if no
  /// batch has been encoded yet.
  StatusOr<core::Transmission> EncodeSelfContained();

  /// Starts a resync round: bumps the epoch and returns a snapshot frame
  /// carrying the node's full base-signal state plus the count of chunks
  /// lost for good since the last report. Call MarkSnapshotDelivered()
  /// once the base station accepted it.
  core::Frame BuildSnapshotFrame();

  /// Acknowledges that the last snapshot (and its lost-chunk report)
  /// reached the base station.
  void MarkSnapshotDelivered() { unreported_lost_ = 0; }

  /// Records that the current batch could not be delivered in any form;
  /// the count travels in the next snapshot so the receiver can keep the
  /// timeline aligned with explicit gaps.
  void RecordLostChunk();

  /// Bulk form: `n` chunks written off at once (restart reconciliation).
  void RecordLostChunks(size_t n);

  /// Records that one encoded chunk was accepted by the base station (in
  /// primary or degraded form). Together with lost_chunks() this gives the
  /// node's resolved-timeline length, which snapshots carry so a station
  /// whose log lost records can rebuild the gap count.
  void MarkChunkDelivered() { ++delivered_chunks_; }

  /// Retransmit backoff for `attempt` (0-based), in slots: exponential
  /// base with per-node seeded jitter drawn uniformly from the upper half
  /// of the window, so simultaneously restarted nodes do not produce
  /// synchronized retry storms. Deterministic per (node id, call index).
  size_t NextBackoffSlots(size_t attempt);

  /// Energy-aware retry budget. With `budget_nj` > 0, RetryAllowed()
  /// reports false once the node's spent energy reaches
  /// `retry_fraction * budget_nj`: a draining node sheds retransmissions
  /// (each costing radio energy plus backoff idle-listening) before it
  /// sheds sensing, so the remaining charge buys first-attempt deliveries
  /// of fresh data instead of retries of old frames. Configuration, not
  /// state: deliberately outside the lifecycle checkpoint.
  void SetEnergyBudget(double budget_nj, double retry_fraction) {
    energy_budget_nj_ = budget_nj;
    retry_energy_fraction_ = retry_fraction;
  }

  /// True if a retransmission is still within the energy budget given the
  /// node has already spent `spent_nj`. Always true with no budget set.
  bool RetryAllowed(double spent_nj) const {
    return energy_budget_nj_ <= 0.0 ||
           spent_nj < retry_energy_fraction_ * energy_budget_nj_;
  }

  /// Memory-pressure degraded mode: on, the encoder drops to the
  /// low-memory base construction (GetBaseLowMem); off restores the full
  /// construction. No-op for non-stored base strategies.
  void SetMemoryPressure(bool on);
  bool memory_pressure() const { return memory_pressure_; }
  size_t pressure_transitions() const { return pressure_transitions_; }

  // ------------------------------------------------ lifecycle checkpoints

  /// How a node is being brought back.
  enum class RestartMode {
    kCleanShutdown,  ///< checkpoint is current; resume byte-transparently
    kCrash,  ///< checkpoint may be stale; reserve seq/epoch headroom and
             ///< force a resync before the next data frame
  };

  /// Serializes the node's cross-chunk state (protocol counters, epoch,
  /// seq, encoder base-signal state) as an opaque checkpoint blob for
  /// ChunkLog::AppendCheckpoint. Checkpoints are meant to be taken at
  /// chunk boundaries: the partially-filled sample buffer and the
  /// last-batch retry copy are deliberately not part of the state.
  std::vector<uint8_t> SaveCheckpoint() const;

  /// Restores from SaveCheckpoint output. kCrash additionally advances
  /// seq by kSeqReserve and epoch by kEpochReserve — frames sent after a
  /// stale checkpoint must never collide with the station's
  /// duplicate-suppression window or its epoch ordering — and marks the
  /// node as needing resync.
  Status RestoreCheckpoint(std::span<const uint8_t> blob, RestartMode mode);

  static constexpr uint64_t kSeqReserve = 64;
  static constexpr uint32_t kEpochReserve = 16;

  /// True if a previous failure left the base station desynchronized (or
  /// under-informed about lost chunks) and a resync must precede the next
  /// data frame.
  bool needs_resync() const { return needs_resync_; }
  void set_needs_resync(bool v) { needs_resync_ = v; }

  uint64_t next_seq() const { return seq_; }
  uint32_t epoch() const { return epoch_; }
  size_t resyncs() const { return resyncs_; }
  size_t degraded_batches() const { return degraded_batches_; }
  size_t lost_chunks() const { return lost_chunks_; }
  size_t delivered_chunks() const { return delivered_chunks_; }

 private:
  uint32_t id_;
  size_t num_signals_;
  size_t chunk_len_;
  size_t filled_ = 0;
  size_t transmissions_ = 0;
  /// Row-major N x M batch buffer, flat in the concatenated layout the
  /// encoder consumes directly.
  std::vector<double> buffer_;
  /// Encode arena for the node's primary encoder; declared before the
  /// encoder that borrows it. On a real device this is the one scratch
  /// allocation the encode path ever makes.
  core::EncodeWorkspace workspace_;
  core::SbrEncoder encoder_;
  /// Arena reused across degraded self-contained re-encodes, so retry
  /// storms under link faults do not re-allocate scratch per attempt.
  core::EncodeWorkspace degraded_workspace_;

  // Protocol state.
  uint64_t seq_ = 0;
  uint32_t epoch_ = 0;
  bool needs_resync_ = false;
  size_t unreported_lost_ = 0;  ///< lost chunks not yet carried by a snapshot
  size_t lost_chunks_ = 0;
  size_t delivered_chunks_ = 0;
  size_t resyncs_ = 0;
  size_t degraded_batches_ = 0;
  bool memory_pressure_ = false;
  size_t pressure_transitions_ = 0;
  double energy_budget_nj_ = 0.0;  ///< 0 disables the retry budget
  double retry_energy_fraction_ = 0.75;
  /// Private jitter stream for retransmit backoff, seeded from the node id
  /// so every node decorrelates from its peers yet replays identically.
  Rng backoff_rng_;
  /// Raw copy of the last fully-sampled batch, kept for degraded re-encode.
  std::vector<double> last_batch_;
  bool has_last_batch_ = false;
};

}  // namespace sbr::net

#endif  // SBR_NET_NODE_H_
