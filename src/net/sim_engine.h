// SimEngine: the one deterministic round-major simulation engine both
// simulators are configurations of. NetworkSim (link faults, threaded
// fan-out) and ChaosSim (node-lifecycle faults, lockstep) used to carry
// their own copies of the delivery machinery, and a divergence bug —
// backoff slots counted but never charged — lived exactly in that
// duplication. The engine now owns everything the protocol side of a run
// does:
//
//   * hop-by-hop routing of frame copies along an EngineRoute (built from
//     a net::Topology uplink path or a legacy private chain), with every
//     copy entering a hop paying that hop's transmitter one hop of radio
//     energy;
//   * the stop-and-wait retry loop: exponential backoff with the node's
//     seeded jitter, backoff idle-listening charges, and energy-aware
//     retry shedding (LinkOptions::node_energy_budget_nj);
//   * frame delivery into the BaseStation (serialized behind the engine's
//     mutex) with exact per-origin corrupt-frame attribution;
//   * the chunk-resolution state machine: pending-resync drain, primary
//     delivery, snapshot + self-contained re-encode recovery, and the
//     terminal DataLoss write-off;
//   * origin-major deterministic report merging (relay charges accumulate
//     in per-origin rows and fold into the per-relay reports in a fixed
//     order, so reports are bitwise identical at any thread count).
//
// The simulators differ only through policy seams:
//
//   * LifecycleHooks — ChaosSim's seam: HopDown() partitions a subtree
//     behind a crashed relay, OnFrameAccepted() feeds the shadow-history
//     oracles and checks invariant I8. NetworkSim runs the null policy.
//   * EngineOptions::strict_accept — ChaosSim's shadow history must record
//     exactly what the station ingested, so only a kAccept settles a
//     frame; NetworkSim also settles on kDuplicate/kBuffered.
//   * DeliverySink — each simulator maps the engine's counters onto its
//     own report struct; fields a simulator does not track stay null.
//
// A fix or optimization to routing, energy accounting or the retry
// protocol now lands in exactly one place and both simulators inherit it.
#ifndef SBR_NET_SIM_ENGINE_H_
#define SBR_NET_SIM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/transmission.h"
#include "net/base_station.h"
#include "net/energy.h"
#include "net/fault_channel.h"
#include "net/node.h"
#include "util/status.h"

namespace sbr::obs {
class MetricsRegistry;
}  // namespace sbr::obs

namespace sbr::net {

/// Per-node simulation outcome (NetworkSim's report row; merged by the
/// engine in placement order so the report is bitwise thread-invariant).
struct NodeReport {
  uint32_t id = 0;
  size_t transmissions = 0;
  size_t values_sent = 0;
  size_t values_raw = 0;  ///< what a full-resolution feed would have sent
  /// Extra end-to-end frame deliveries forced by faults (retries beyond
  /// the first attempt of each frame).
  size_t retransmissions = 0;
  /// Exponential-backoff slots spent waiting between retries.
  size_t backoff_slots = 0;
  // Protocol counters (same seed => identical values, run to run).
  size_t corrupt_frames_detected = 0;  ///< CRC failures at the station
  size_t duplicates_suppressed = 0;
  size_t resyncs_triggered = 0;      ///< snapshot rounds initiated
  size_t degraded_batches = 0;       ///< chunks re-encoded self-contained
  size_t chunks_lost = 0;            ///< chunks recorded as DataLoss gaps
  size_t frames_abandoned = 0;       ///< frames given up after max_attempts
  /// Retry attempts suppressed by the energy-aware budget
  /// (LinkOptions::node_energy_budget_nj).
  size_t retries_shed = 0;
  /// Frame copies this node relayed for its descendants (topology runs
  /// only; the matching radio energy is charged to this node's account).
  size_t forwarded_copies = 0;
  /// Copies of this node's frames that arrived at a forwarding hop already
  /// failing the shared envelope check (CheckFrameEnvelope — the same
  /// verdict BaseStation::ReceiveBytes reaches). Relays classify but do
  /// not drop: enforcement stays at the station, so delivery, energy and
  /// every other counter are untouched by the classification.
  size_t malformed_relayed = 0;
  /// On-air values charged to this node's account across every copy and
  /// hop it transmitted (own traffic, relayed traffic, residual flushes).
  /// Pins the energy account: energy == EnergyModel charge of
  /// (charged_values, 1 hop) + backoff(backoff_slots), exactly.
  size_t charged_values = 0;
  EnergyAccount energy;
  double raw_energy_nj = 0.0;
  /// Sum-squared error of the reconstructed history vs the true feed,
  /// over non-gap chunks only.
  double sse = 0.0;
};

/// Whole-run outcome.
struct SimulationReport {
  std::vector<NodeReport> nodes;
  size_t total_values_sent = 0;
  size_t total_values_raw = 0;
  double total_energy_nj = 0.0;
  double total_raw_energy_nj = 0.0;
  double total_sse = 0.0;
  size_t total_chunks_lost = 0;
  size_t total_corrupt_frames = 0;
  size_t total_duplicates_suppressed = 0;
  size_t total_resyncs = 0;
  size_t total_degraded_batches = 0;

  /// values_raw / values_sent.
  double CompressionFactor() const;
  /// raw energy / actual energy. NaN when total_energy_nj == 0: a run that
  /// spent nothing has no meaningful saving factor, and reporting 0.0
  /// ("no saving") there was a bug. Callers that need a number should
  /// std::isfinite-guard; PublishMetrics already does.
  double EnergySavingFactor() const;

  /// Mirrors the report into `registry` as gauges: run totals under
  /// `sim.*` and per-node breakdowns under `node.<id>.*` (tx_values,
  /// retries, energy_nj, chunks_lost, corrupt_frames, resyncs, sse — see
  /// obs/export.h for the emitted schema). The report structs stay the
  /// canonical deterministic result; the registry view exists so bench and
  /// tooling exports see the simulation next to the encode-stage metrics.
  /// No-op unless observability is compiled in and enabled.
  void PublishMetrics(obs::MetricsRegistry* registry) const;
};

/// One hop of an uplink route: the fault process a copy crosses plus the
/// charge targets of whichever node transmits the hop. The charge pointers
/// are resolved once at route-assembly time — into the origin's own report
/// for hops the origin pays, or into per-origin relay rows / the relay's
/// report for forwarded hops — which is what keeps the engine loop free of
/// per-simulator branches.
struct EngineHop {
  FaultChannel* channel = nullptr;
  /// Radio account paying for every copy entering this hop.
  EnergyAccount* account = nullptr;
  /// On-air values counter matching `account` (pins the closed form).
  size_t* charged_values = nullptr;
  /// Relay forwarding counter; nullptr when the origin transmits the hop.
  size_t* forwarded_copies = nullptr;
  /// Transmitting node's index, for LifecycleHooks (partition checks).
  size_t node = 0;
};

/// A node's full uplink route; hops[0] is transmitted by the origin.
struct EngineRoute {
  std::vector<EngineHop> hops;
};

/// Where a delivery's per-origin counters land. Each simulator points the
/// fields at its own report struct; fields it does not track stay null.
/// `node` and `energy` are required: the node supplies seq/epoch, the
/// backoff jitter stream and the retry budget, and `energy` is the
/// account backoff charges land in and the spend RetryAllowed() reads.
struct DeliverySink {
  SensorNode* node = nullptr;
  EnergyAccount* energy = nullptr;
  size_t* retransmissions = nullptr;
  size_t* backoff_slots = nullptr;
  size_t* retries_shed = nullptr;
  size_t* frames_abandoned = nullptr;   ///< NetworkSim only
  size_t* corrupt_frames = nullptr;     ///< station corrupt-delta attribution
  size_t* values_sent = nullptr;        ///< semantic values (NetworkSim)
  size_t* chunks_delivered = nullptr;   ///< terminal accounting (ChaosSim)
  size_t* chunks_lost = nullptr;        ///< terminal accounting (ChaosSim)
  size_t* malformed_relayed = nullptr;  ///< shared envelope check at relays
};

/// The lifecycle-policy seam. The default implementation is the null
/// policy (nothing is ever down, accepts need no side effects) — exactly
/// NetworkSim's world. ChaosSim overrides both hooks to partition subtrees
/// behind downed relays and to feed its shadow-history oracles.
class LifecycleHooks {
 public:
  virtual ~LifecycleHooks() = default;

  /// True if the transmitter of a *forwarding* hop (`node`, hop index
  /// >= 1) is dark this instant: copies reaching it vanish unpaid and its
  /// dead radio is charged nothing. Never consulted for hop 0 — the
  /// origin is by definition running to transmit at all.
  virtual bool HopDown(size_t node) {
    (void)node;
    return false;
  }

  /// Called exactly once per frame the station settled as accepted (under
  /// the engine's acceptance policy), before the outcome is returned.
  virtual Status OnFrameAccepted(const core::Frame& frame,
                                 const EngineRoute& route) {
    (void)frame;
    (void)route;
    return Status::Ok();
  }
};

/// Engine tuning; both simulators build one from their own option structs.
struct EngineOptions {
  /// End-to-end delivery attempts per frame before giving up on it.
  size_t max_attempts = 16;
  /// Resync rounds (snapshot + degraded re-encode) per failed chunk.
  size_t max_resync_rounds = 3;
  /// Off: lost frames surface as DataLoss with no snapshot handshake.
  bool resync_enabled = true;
  /// On, only a kAccept ack settles a frame (ChaosSim: the shadow history
  /// must record exactly what the station ingested). Off, an earlier
  /// copy's kDuplicate or a reorder-window kBuffered also counts as
  /// delivered (NetworkSim).
  bool strict_accept = false;
  /// Emit the net.tx.* observability counters (NetworkSim parity; the
  /// chaos harness deliberately stays silent).
  bool emit_obs = true;
};

/// Per-origin relay-charge accumulation for threaded runs: row `origin` is
/// private to that origin's node simulation, so no row is ever written
/// concurrently; SimEngine::MergeRelayCharges then folds the rows into the
/// per-relay reports in origin-major order, keeping relayed energy totals
/// bitwise identical at any thread count.
struct RelayCharges {
  std::vector<std::vector<EnergyAccount>> energy;
  std::vector<std::vector<size_t>> copies;
  std::vector<std::vector<size_t>> values;

  /// n x n zeroed rows.
  void Reset(size_t n);
  bool empty() const { return energy.empty(); }
};

/// The shared deterministic simulation engine (see file comment).
class SimEngine {
 public:
  /// Outcome of delivering one frame end-to-end with bounded retries.
  enum class DeliveryOutcome {
    kAccepted,   ///< station settled it under the acceptance policy
    kDesync,     ///< station demands a resync before accepting data
    kAbandoned,  ///< undeliverable within max_attempts
  };

  /// `station` must outlive the engine (or be swapped via set_station
  /// before the next delivery — ChaosSim does on station restarts).
  /// `hooks` may be nullptr for the null lifecycle policy.
  SimEngine(BaseStation* station, EnergyModel energy, EngineOptions options,
            LifecycleHooks* hooks = nullptr);

  /// Swaps the station endpoint (lifecycle restarts rebuild it).
  void set_station(BaseStation* station) { station_ = station; }

  const EnergyModel& energy() const { return energy_; }
  const EngineOptions& options() const { return options_; }

  /// Serializes every station access during a threaded run. Exposed so a
  /// simulator's post-run scoring can read station state under the same
  /// lock the delivery path uses.
  std::mutex& station_mutex() { return station_mu_; }

  /// Pushes one frame along the route with retries and exponential backoff
  /// (with the node's seeded jitter), charging energy per copy per hop to
  /// whichever node transmits that hop. A node past its energy-aware retry
  /// budget sheds retries: the frame is abandoned after one attempt.
  StatusOr<DeliveryOutcome> DeliverFrame(const core::Frame& frame,
                                         size_t value_count,
                                         EngineRoute* route,
                                         const DeliverySink& sink);

  /// One resync round: snapshot frame, then (with `recover_batch`) the
  /// affected batch re-encoded self-contained. True once the batch (or,
  /// without recovery, the handshake) is safe.
  StatusOr<bool> TryResync(bool recover_batch, EngineRoute* route,
                           const DeliverySink& sink);

  /// Drives one encoded chunk to a terminal outcome: pending-resync drain,
  /// primary delivery, recovery rounds, or the DataLoss write-off.
  Status ResolveChunk(const core::Transmission& tx, EngineRoute* route,
                      const DeliverySink& sink);

  /// Trailing resync drain: retries the snapshot handshake while the node
  /// still owes the station a loss report (bounded by max_resync_rounds).
  Status DrainResyncs(EngineRoute* route, const DeliverySink& sink);

  /// Drains frames still held inside reordering hops; residual copies pay
  /// for the hops they have left to travel, charged to whichever node
  /// transmits each remaining hop.
  Status FlushRoute(EngineRoute* route, const DeliverySink& sink);

  /// Serialized station ingest. Attributes the corrupt-frame delta of the
  /// call to `*corrupt_out` (when non-null) under the same lock, which
  /// keeps per-node attribution exact even when other nodes interleave (a
  /// corrupt frame drained from the reorder window is counted on the
  /// aggregate but not acked, so the delta — not the ack type — is the
  /// reliable signal).
  StatusOr<FrameAck> StationReceive(std::span<const uint8_t> bytes,
                                    size_t* corrupt_out);

  /// Folds per-origin relay-charge rows into the per-relay reports in
  /// origin-major order (the deterministic merge of threaded runs).
  static void MergeRelayCharges(const RelayCharges& charges,
                                std::vector<NodeReport>* reports);

  /// Aggregates per-node reports (in placement order) into the run report.
  static SimulationReport BuildReport(std::vector<NodeReport> reports);

 private:
  BaseStation* station_;
  EnergyModel energy_;
  EngineOptions options_;
  LifecycleHooks* hooks_;  ///< never null (null policy substituted)
  /// Serializes every access to the station (ingest, stats, history
  /// lookup) during a threaded run.
  std::mutex station_mu_;
};

}  // namespace sbr::net

#endif  // SBR_NET_SIM_ENGINE_H_
