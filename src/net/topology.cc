#include "net/topology.h"

#include <algorithm>

#include "util/rng.h"

namespace sbr::net {

const char* ToString(TopologyShape shape) {
  switch (shape) {
    case TopologyShape::kStar:
      return "star";
    case TopologyShape::kChain:
      return "chain";
    case TopologyShape::kBinary:
      return "binary";
    case TopologyShape::kRandom:
      return "random";
  }
  return "unknown";
}

StatusOr<TopologyShape> ParseTopologyShape(std::string_view name) {
  if (name == "star") return TopologyShape::kStar;
  if (name == "chain") return TopologyShape::kChain;
  if (name == "binary") return TopologyShape::kBinary;
  if (name == "random") return TopologyShape::kRandom;
  return Status::InvalidArgument("unknown topology shape '" +
                                 std::string(name) + "'");
}

Topology Topology::Build(const TopologyOptions& options) {
  Topology t;
  t.shape_ = options.shape;
  t.seed_ = options.seed;
  const size_t n = options.num_nodes;
  t.parent_.assign(n, kBase);

  switch (options.shape) {
    case TopologyShape::kStar:
      break;  // every parent stays kBase
    case TopologyShape::kChain:
      for (size_t i = 1; i < n; ++i) t.parent_[i] = i - 1;
      break;
    case TopologyShape::kBinary:
      for (size_t i = 1; i < n; ++i) t.parent_[i] = (i - 1) / 2;
      break;
    case TopologyShape::kRandom: {
      // Random recursive forest: node i attaches uniformly to one of the
      // i earlier nodes or directly to the base (weight 1 each), so base-
      // adjacent nodes stay plausible at every size and the expected depth
      // grows logarithmically. One draw per node keeps the tree a pure
      // function of (num_nodes, seed).
      Rng rng(options.seed ^ 0x7061746877617973ull);
      for (size_t i = 1; i < n; ++i) {
        const int64_t pick = rng.UniformInt(0, static_cast<int64_t>(i));
        if (pick < static_cast<int64_t>(i)) {
          t.parent_[i] = static_cast<size_t>(pick);
        }
      }
      break;
    }
  }

  t.depth_.assign(n, 0);
  t.children_.assign(n, {});
  t.path_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    // Parents always precede children (every shape attaches node i to a
    // node < i or to the base), so one forward pass settles depths.
    t.depth_[i] = t.parent_[i] == kBase ? 1 : t.depth_[t.parent_[i]] + 1;
    t.max_depth_ = std::max(t.max_depth_, t.depth_[i]);
    if (t.parent_[i] != kBase) t.children_[t.parent_[i]].push_back(i);
    std::vector<size_t>& path = t.path_[i];
    path.reserve(t.depth_[i]);
    for (size_t hop = i; hop != kBase; hop = t.parent_[hop]) {
      path.push_back(hop);
    }
  }
  return t;
}

std::vector<size_t> Topology::Relays() const {
  std::vector<size_t> relays;
  for (size_t i = 0; i < num_nodes(); ++i) {
    if (is_relay(i)) relays.push_back(i);
  }
  return relays;
}

std::vector<size_t> Topology::Descendants(size_t node) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < num_nodes(); ++i) {
    if (i != node && IsAncestor(node, i)) out.push_back(i);
  }
  return out;
}

bool Topology::IsAncestor(size_t ancestor, size_t node) const {
  for (size_t hop = parent_[node]; hop != kBase; hop = parent_[hop]) {
    if (hop == ancestor) return true;
  }
  return false;
}

}  // namespace sbr::net
