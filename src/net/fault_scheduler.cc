#include "net/fault_scheduler.h"

#include <algorithm>

#include "util/rng.h"

namespace sbr::net {
namespace {

// One Bernoulli draw. Always consumes exactly one stream value so the
// schedule stays a pure function of the options even as probabilities
// change between runs of a sweep.
bool Draw(Rng* rng, double p) { return rng->NextDouble() < p; }

}  // namespace

FaultScheduler::FaultScheduler(const FaultScheduleOptions& options) {
  Rng rng(options.seed ^ 0x8f1bbcdcbfa53e0bull);
  const size_t fault_rounds =
      options.rounds > options.fault_free_tail
          ? options.rounds - options.fault_free_tail
          : 0;
  // Round-major generation with a fixed draw order (station first, then
  // each node in id order, one draw per fault kind) keeps events sorted by
  // round and makes the schedule independent of container iteration order.
  for (size_t round = 0; round < fault_rounds; ++round) {
    if (Draw(&rng, options.station_restart_probability)) {
      LifecycleEvent e;
      e.round = round;
      e.fault = LifecycleFault::kStationRestart;
      events_.push_back(e);
      ++counts_[static_cast<size_t>(e.fault)];
    }
    for (uint32_t id : options.node_ids) {
      LifecycleEvent e;
      e.round = round;
      e.node_id = id;
      // At most one lifecycle fault per node per round; the first draw
      // that fires wins, but every draw is still consumed (see Draw).
      const bool crash = Draw(&rng, options.node_crash_probability);
      const bool clean = Draw(&rng, options.clean_restart_probability);
      const bool power = Draw(&rng, options.power_loss_probability);
      const bool stall = Draw(&rng, options.stall_probability);
      const bool pressure = Draw(&rng, options.memory_pressure_probability);
      const auto tear_mode = static_cast<TearMode>(rng.UniformInt(0, 2));
      const auto tear_target = static_cast<TearTarget>(rng.UniformInt(0, 1));
      const size_t stall_rounds = options.max_stall_rounds > 0
                                      ? static_cast<size_t>(rng.UniformInt(
                                            1, static_cast<int64_t>(
                                                   options.max_stall_rounds)))
                                      : 1;
      if (crash) {
        e.fault = LifecycleFault::kNodeCrash;
      } else if (clean) {
        e.fault = LifecycleFault::kNodeCleanRestart;
      } else if (power) {
        e.fault = LifecycleFault::kPowerLoss;
        e.tear_mode = tear_mode;
        e.tear_target = tear_target;
      } else if (stall) {
        e.fault = LifecycleFault::kNodeStall;
        // The stall must end inside the fault window, otherwise the
        // watchdog restart would fire inside the convergence tail.
        e.duration = std::min(stall_rounds, fault_rounds - round);
        if (e.duration == 0) continue;
      } else if (pressure) {
        e.fault = LifecycleFault::kMemoryPressure;
      } else {
        continue;
      }
      events_.push_back(e);
      ++counts_[static_cast<size_t>(e.fault)];
    }
    // Relay crashes draw after the per-node faults each round, one crash
    // draw plus one duration draw per relay — both always consumed, so the
    // schedule stays a pure function of the options. With no relays (every
    // star topology) this loop is empty and the stream is untouched.
    for (uint32_t id : options.relay_ids) {
      const bool crash = Draw(&rng, options.relay_crash_probability);
      const size_t down_rounds =
          options.max_relay_down_rounds > 0
              ? static_cast<size_t>(rng.UniformInt(
                    1,
                    static_cast<int64_t>(options.max_relay_down_rounds)))
              : 1;
      if (!crash) continue;
      LifecycleEvent e;
      e.round = round;
      e.node_id = id;
      e.fault = LifecycleFault::kRelayCrash;
      // The outage must end inside the fault window so the convergence
      // tail starts with every route healed.
      e.duration = std::min(down_rounds, fault_rounds - round);
      if (e.duration == 0) continue;
      events_.push_back(e);
      ++counts_[static_cast<size_t>(e.fault)];
    }
  }
}

}  // namespace sbr::net
