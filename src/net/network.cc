#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serialize.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace sbr::net {
namespace {

FaultOptions ToFaultOptions(const LinkOptions& link) {
  FaultOptions f;
  f.drop_probability = link.loss_probability;
  f.duplicate_probability = link.duplicate_probability;
  f.reorder_probability = link.reorder_probability;
  f.bit_flip_probability = link.bit_flip_probability;
  f.seed = link.seed;
  return f;
}

/// Gauge rounding that tolerates the NaN sentinel (and any other
/// non-finite figure): llround on a NaN is undefined behaviour, and the
/// registry view is a dashboard, so non-finite rounds to 0.
int64_t RoundGauge(double v) {
  return std::isfinite(v) ? static_cast<int64_t>(std::llround(v)) : 0;
}

}  // namespace

double SimulationReport::CompressionFactor() const {
  return total_values_sent == 0
             ? 0.0
             : static_cast<double>(total_values_raw) /
                   static_cast<double>(total_values_sent);
}

double SimulationReport::EnergySavingFactor() const {
  // A run that spent nothing has no meaningful saving factor; 0.0 would
  // claim "no saving" for the cheapest run possible. NaN is the documented
  // sentinel (see network.h).
  return total_energy_nj == 0.0 ? std::numeric_limits<double>::quiet_NaN()
                                : total_raw_energy_nj / total_energy_nj;
}

void SimulationReport::PublishMetrics(obs::MetricsRegistry* registry) const {
  if (!obs::Enabled() || registry == nullptr) return;
  // Dynamic names, so the cached-reference macros do not apply; this runs
  // once per report, far from any hot path. Doubles (energy, sse) are
  // rounded through the non-finite-safe RoundGauge — the registry view is
  // a gauge dashboard, the report struct remains the exact figure.
  auto set = [registry](const std::string& name, int64_t v) {
    registry->GetGauge(name).Set(v);
  };
  set("sim.values_sent", static_cast<int64_t>(total_values_sent));
  set("sim.values_raw", static_cast<int64_t>(total_values_raw));
  set("sim.energy_nj", RoundGauge(total_energy_nj));
  set("sim.raw_energy_nj", RoundGauge(total_raw_energy_nj));
  set("sim.sse", RoundGauge(total_sse));
  // x1000 fixed-point so the dashboard keeps sub-integer saving factors;
  // the NaN sentinel (nothing spent) rounds to 0 rather than tripping UB.
  set("sim.energy_saving_x1000", RoundGauge(EnergySavingFactor() * 1000.0));
  set("sim.chunks_lost", static_cast<int64_t>(total_chunks_lost));
  set("sim.corrupt_frames", static_cast<int64_t>(total_corrupt_frames));
  set("sim.duplicates_suppressed",
      static_cast<int64_t>(total_duplicates_suppressed));
  set("sim.resyncs", static_cast<int64_t>(total_resyncs));
  set("sim.degraded_batches", static_cast<int64_t>(total_degraded_batches));
  set("sim.nodes", static_cast<int64_t>(nodes.size()));
  for (const NodeReport& nr : nodes) {
    const std::string p = "node." + std::to_string(nr.id) + ".";
    set(p + "tx_values", static_cast<int64_t>(nr.values_sent));
    set(p + "raw_values", static_cast<int64_t>(nr.values_raw));
    set(p + "retries", static_cast<int64_t>(nr.retransmissions));
    set(p + "energy_nj", RoundGauge(nr.energy.total_nj()));
    set(p + "chunks_lost", static_cast<int64_t>(nr.chunks_lost));
    set(p + "corrupt_frames",
        static_cast<int64_t>(nr.corrupt_frames_detected));
    set(p + "resyncs", static_cast<int64_t>(nr.resyncs_triggered));
    set(p + "forwarded_copies", static_cast<int64_t>(nr.forwarded_copies));
    set(p + "sse", RoundGauge(nr.sse));
  }
}

NetworkSim::NetworkSim(std::vector<NodePlacement> placements,
                       core::EncoderOptions encoder_options,
                       size_t chunk_len, EnergyParams energy,
                       LinkOptions link)
    : placements_(std::move(placements)),
      encoder_options_(std::move(encoder_options)),
      chunk_len_(chunk_len),
      energy_(energy),
      link_(link),
      station_(encoder_options_.m_base, "", link.reorder_window) {}

NetworkSim::NetworkSim(Topology topology,
                       std::vector<NodePlacement> placements,
                       core::EncoderOptions encoder_options,
                       size_t chunk_len, EnergyParams energy,
                       LinkOptions link)
    : placements_(std::move(placements)),
      topology_(std::move(topology)),
      has_topology_(true),
      encoder_options_(std::move(encoder_options)),
      chunk_len_(chunk_len),
      energy_(energy),
      link_(link),
      station_(encoder_options_.m_base, "", link.reorder_window) {}

StatusOr<NetworkSim::DeliveryOutcome> NetworkSim::DeliverFrame(
    SensorNode* node, const core::Frame& frame, size_t value_count,
    Route* route, NodeReport* nr) {
  BinaryWriter writer;
  frame.Serialize(&writer);
  const std::vector<uint8_t>& wire = writer.buffer();
  SBR_OBS_COUNT("net.tx.frames", 1);
  SBR_OBS_COUNT("net.tx.bytes", wire.size());
  SBR_OBS_HIST("net.tx.frame_bytes", wire.size());

  // Stop-and-wait with end-to-end acknowledgement: each attempt pushes one
  // fresh copy through every hop's fault process; retries back off
  // exponentially and are charged to the node's energy account.
  for (size_t attempt = 0; attempt < link_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (!node->RetryAllowed(nr->energy.total_nj())) {
        // Past the energy-aware retry budget: shed the retry rather than
        // the next sensing round. The frame falls through to abandonment
        // and the loss surfaces through the usual resync/gap machinery.
        ++nr->retries_shed;
        SBR_OBS_COUNT("net.tx.retries_shed", 1);
        break;
      }
      ++nr->retransmissions;
      SBR_OBS_COUNT("net.tx.retries", 1);
      const size_t slots = node->NextBackoffSlots(attempt);
      nr->backoff_slots += slots;
      energy_.ChargeBackoff(slots, &nr->energy);
    }
    std::vector<std::vector<uint8_t>> copies;
    copies.push_back(wire);
    for (size_t h = 0; h < route->hops.size() && !copies.empty(); ++h) {
      const size_t payer = route->tx[h];
      std::vector<std::vector<uint8_t>> next;
      for (auto& copy : copies) {
        // Every copy entering a hop pays one hop of radio energy, whether
        // or not the hop delivers it — charged to whichever node transmits
        // the hop: the origin for hop 0 (and every hop of a legacy private
        // chain), the forwarding relay otherwise.
        if (payer == route->origin) {
          energy_.ChargeTransmission(value_count, 1, &nr->energy);
          nr->charged_values += value_count;
        } else {
          energy_.ChargeTransmission(value_count, 1,
                                     &(*route->relay_energy)[payer]);
          (*route->relay_values)[payer] += value_count;
          ++(*route->relay_copies)[payer];
        }
        auto out = route->hops[h].Transmit(std::move(copy));
        for (auto& o : out) next.push_back(std::move(o));
      }
      copies = std::move(next);
    }

    bool accepted = false;
    bool desync = false;
    for (auto& copy : copies) {
      auto ack = StationReceive(copy, nr);
      if (!ack.ok()) return ack.status();
      // Only a CRC-clean ack for this frame's identity settles its fate;
      // acks for held frames released from earlier transmits, and corrupt
      // NACKs (which carry no trustworthy identity), do not.
      if (ack->type == AckType::kCorrupt) continue;
      if (ack->sensor_id != frame.sensor_id || ack->seq != frame.seq) {
        continue;
      }
      switch (ack->type) {
        case AckType::kAccept:
        case AckType::kDuplicate:  // an earlier copy already made it
        case AckType::kBuffered:   // held in the reorder window: delivered
          accepted = true;
          break;
        case AckType::kDesync:
          desync = true;
          break;
        default:
          break;
      }
    }
    if (accepted) return DeliveryOutcome::kAccepted;
    // Retrying the same frame cannot cure a desync; the caller must resync.
    if (desync) {
      SBR_OBS_COUNT("net.tx.desyncs", 1);
      return DeliveryOutcome::kDesync;
    }
  }
  ++nr->frames_abandoned;
  SBR_OBS_COUNT("net.tx.abandoned", 1);
  return DeliveryOutcome::kAbandoned;
}

StatusOr<bool> NetworkSim::TryResync(SensorNode* node, bool recover_batch,
                                     Route* route, NodeReport* nr) {
  // The snapshot opens a new epoch and carries the node's report of chunks
  // lost for good, which the station turns into explicit DataLoss gaps.
  core::Frame snap = node->BuildSnapshotFrame();
  const size_t snap_values = BytesToValues(snap.payload.size());
  nr->values_sent += snap_values;
  auto delivered = DeliverFrame(node, snap,
                                OnAirValues(energy_.params(), snap_values),
                                route, nr);
  if (!delivered.ok()) return delivered.status();
  if (*delivered != DeliveryOutcome::kAccepted) return false;
  node->MarkSnapshotDelivered();
  node->set_needs_resync(false);
  if (!recover_batch) return true;

  // Ship the affected batch re-encoded self-contained: plain linear
  // models, no base-signal references, decodable regardless of how much
  // base state the station missed.
  auto degraded = node->EncodeSelfContained();
  if (!degraded.ok()) return degraded.status();
  const size_t values = degraded->ValueCount();
  core::Frame frame = node->MakeDataFrame(*degraded);
  nr->values_sent += values;
  auto outcome = DeliverFrame(node, frame,
                              OnAirValues(energy_.params(), values),
                              route, nr);
  if (!outcome.ok()) return outcome.status();
  if (*outcome == DeliveryOutcome::kAccepted) {
    node->MarkChunkDelivered();
    return true;
  }
  if (*outcome == DeliveryOutcome::kDesync) node->set_needs_resync(true);
  return false;
}

Status NetworkSim::DeliverChunk(SensorNode* node, const core::Transmission& tx,
                                Route* route, NodeReport* nr) {
  // A pending resync (desynchronized station, or lost chunks not yet
  // reported) must be resolved first — the gap report travels in the
  // snapshot and keeps the station's timeline aligned.
  if (link_.resync_enabled && node->needs_resync()) {
    for (size_t round = 0;
         round < link_.max_resync_rounds && node->needs_resync(); ++round) {
      auto ok = TryResync(node, /*recover_batch=*/false, route, nr);
      if (!ok.ok()) return ok.status();
    }
    if (node->needs_resync()) {
      // Still desynchronized: this chunk cannot reach the station in a
      // decodable form. It joins the next successful snapshot's report.
      node->RecordLostChunk();
      return Status::Ok();
    }
  }

  const size_t values = tx.ValueCount();
  core::Frame frame = node->MakeDataFrame(tx);
  nr->values_sent += values;
  auto outcome = DeliverFrame(node, frame,
                              OnAirValues(energy_.params(), values),
                              route, nr);
  if (!outcome.ok()) return outcome.status();
  if (*outcome == DeliveryOutcome::kAccepted) {
    node->MarkChunkDelivered();
    return Status::Ok();
  }

  if (link_.resync_enabled) {
    for (size_t round = 0; round < link_.max_resync_rounds; ++round) {
      auto recovered = TryResync(node, /*recover_batch=*/true, route, nr);
      if (!recovered.ok()) return recovered.status();
      if (*recovered) return Status::Ok();
    }
  }
  // The chunk is gone for good. Record it loudly; with resync enabled the
  // loss surfaces as a DataLoss gap via the next snapshot, and with resync
  // disabled the station's own gap declaration covers it.
  node->RecordLostChunk();
  return Status::Ok();
}

StatusOr<FrameAck> NetworkSim::StationReceive(std::span<const uint8_t> bytes,
                                              NodeReport* nr) {
  std::lock_guard<std::mutex> lock(station_mu_);
  const size_t corrupt_before = station_.total_stats().corrupt_frames;
  auto ack = station_.ReceiveBytes(bytes);
  nr->corrupt_frames_detected +=
      station_.total_stats().corrupt_frames - corrupt_before;
  return ack;
}

Status NetworkSim::RunNode(size_t index, const datagen::Dataset& feed,
                           NodeReport* nr_out,
                           std::vector<EnergyAccount>* relay_energy,
                           std::vector<size_t>* relay_copies,
                           std::vector<size_t>* relay_values) {
  SBR_OBS_SPAN(node_span, "net.node");
  const NodePlacement& place = placements_[index];
  SensorNode node(place.id, feed.num_signals(), chunk_len_,
                  encoder_options_);
  node.SetEnergyBudget(link_.node_energy_budget_nj,
                       link_.retry_energy_fraction);
  NodeReport& nr = *nr_out;
  nr.id = place.id;

  // Build the uplink route. With a topology it is the tree's real path —
  // hop h is transmitted by the h-th node on the way up (the origin at
  // h = 0, then its ancestors); otherwise it is the legacy private chain
  // with the origin paying every hop. Either way the fault processes stay
  // salted per (origin id, hop index), so a depth-1 star draws exactly the
  // legacy constructor's deterministic streams.
  Route route;
  route.origin = index;
  route.relay_energy = relay_energy;
  route.relay_copies = relay_copies;
  route.relay_values = relay_values;
  if (has_topology_) {
    route.tx = topology_.path(index);
  } else {
    const size_t legacy_hops =
        place.hops_to_base == 0 ? 1 : place.hops_to_base;
    route.tx.assign(legacy_hops, index);
  }
  const size_t num_hops = route.tx.size();
  route.hops.reserve(num_hops);
  for (size_t h = 0; h < num_hops; ++h) {
    route.hops.emplace_back(ToFaultOptions(link_),
                            (static_cast<uint64_t>(place.id) << 16) | h);
  }

  std::vector<double> sample(feed.num_signals());
  for (size_t t = 0; t < feed.length(); ++t) {
    for (size_t s = 0; s < feed.num_signals(); ++s) {
      sample[s] = feed.values(s, t);
    }
    auto emitted = node.AddSamples(sample);
    if (!emitted.ok()) return emitted.status();
    if (!emitted->has_value()) continue;

    nr.values_raw += feed.num_signals() * chunk_len_;
    nr.raw_energy_nj += energy_.RawTransmissionNj(
        feed.num_signals() * chunk_len_, num_hops);
    SBR_RETURN_IF_ERROR(DeliverChunk(&node, **emitted, &route, &nr));
  }

  // Trailing losses still deserve a gap report: resync once more if the
  // node knows of chunks the station has not accounted for.
  if (link_.resync_enabled && node.needs_resync()) {
    for (size_t round = 0;
         round < link_.max_resync_rounds && node.needs_resync(); ++round) {
      auto ok = TryResync(&node, /*recover_batch=*/false, &route, &nr);
      if (!ok.ok()) return ok.status();
    }
  }

  // Drain frames still held inside reordering hops; residual copies pay
  // for the hops they have left to travel, charged to whichever node
  // transmits each remaining hop.
  for (size_t h = 0; h < num_hops; ++h) {
    std::vector<std::vector<uint8_t>> copies = route.hops[h].Flush();
    for (size_t g = h + 1; g < num_hops && !copies.empty(); ++g) {
      const size_t payer = route.tx[g];
      std::vector<std::vector<uint8_t>> next;
      for (auto& copy : copies) {
        const size_t flush_values = BytesToValues(copy.size());
        if (payer == route.origin) {
          energy_.ChargeTransmission(flush_values, 1, &nr.energy);
          nr.charged_values += flush_values;
        } else {
          energy_.ChargeTransmission(flush_values, 1,
                                     &(*relay_energy)[payer]);
          (*relay_values)[payer] += flush_values;
          ++(*relay_copies)[payer];
        }
        auto out = route.hops[g].Transmit(std::move(copy));
        for (auto& o : out) next.push_back(std::move(o));
      }
      copies = std::move(next);
    }
    for (auto& copy : copies) {
      auto ack = StationReceive(copy, &nr);
      if (!ack.ok()) return ack.status();
    }
  }

  nr.transmissions = node.transmissions();
  nr.resyncs_triggered = node.resyncs();
  nr.degraded_batches = node.degraded_batches();
  nr.chunks_lost = node.lost_chunks();

  // Score the reconstructed history against the truth, chunk by chunk;
  // chunks recorded as DataLoss gaps are excluded (their loss is already
  // reported explicitly, not smeared into the error figure). Only the map
  // lookups need the station lock: after this node's last frame, no other
  // node touches this sensor's per-sensor state, so the history reads run
  // unlocked.
  const storage::HistoryStore* history = nullptr;
  {
    std::lock_guard<std::mutex> lock(station_mu_);
    nr.duplicates_suppressed =
        station_.stats(place.id).duplicates_suppressed;
    if (station_.HasSensor(place.id)) {
      auto h = station_.History(place.id);
      if (!h.ok()) return h.status();
      history = *h;
    }
  }
  if (history != nullptr) {
    const storage::HistoryStore& h = *history;
    std::vector<double> truth(h.chunk_len());
    for (size_t c = 0; c < h.num_chunks(); ++c) {
      if (h.IsGap(c)) continue;
      const size_t t0 = c * h.chunk_len();
      if (t0 + h.chunk_len() > feed.length()) break;
      for (size_t s = 0; s < feed.num_signals(); ++s) {
        auto approx = h.QueryRange(s, t0, t0 + h.chunk_len());
        if (!approx.ok()) return approx.status();
        for (size_t k = 0; k < h.chunk_len(); ++k) {
          truth[k] = feed.values(s, t0 + k);
        }
        nr.sse += SumSquaredError(truth, *approx);
      }
    }
  }
  return Status::Ok();
}

StatusOr<SimulationReport> NetworkSim::Run(
    const std::vector<datagen::Dataset>& feeds) {
  if (feeds.size() != placements_.size()) {
    return Status::InvalidArgument(
        "got " + std::to_string(feeds.size()) + " feeds for " +
        std::to_string(placements_.size()) + " nodes");
  }
  if (has_topology_ && topology_.num_nodes() != placements_.size()) {
    return Status::InvalidArgument(
        "topology has " + std::to_string(topology_.num_nodes()) +
        " nodes for " + std::to_string(placements_.size()) + " placements");
  }

  // Nodes are mutually independent (own encoder, fault channels, energy
  // account; station serialized behind its mutex), so the per-node
  // simulations fan out over the pool. Each node writes its own report
  // slot; the totals are then reduced serially in placement order, which
  // keeps the report bitwise identical at any thread count.
  const size_t threads = std::max<size_t>(encoder_options_.threads, 1);
  const size_t n = placements_.size();
  std::vector<NodeReport> reports(n);
  std::vector<Status> statuses(n, Status::Ok());
  // Relay charges accumulate per origin (row i is private to node i's
  // simulation) and merge below in a fixed origin-major order, so relayed
  // energy totals are bitwise identical at any thread count too.
  std::vector<std::vector<EnergyAccount>> relay_energy;
  std::vector<std::vector<size_t>> relay_copies;
  std::vector<std::vector<size_t>> relay_values;
  if (has_topology_) {
    relay_energy.assign(n, std::vector<EnergyAccount>(n));
    relay_copies.assign(n, std::vector<size_t>(n, 0));
    relay_values.assign(n, std::vector<size_t>(n, 0));
  }
  util::ParallelFor(threads, n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      statuses[i] = RunNode(i, feeds[i], &reports[i],
                            has_topology_ ? &relay_energy[i] : nullptr,
                            has_topology_ ? &relay_copies[i] : nullptr,
                            has_topology_ ? &relay_values[i] : nullptr);
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  if (has_topology_) {
    for (size_t origin = 0; origin < n; ++origin) {
      for (size_t relay = 0; relay < n; ++relay) {
        const EnergyAccount& a = relay_energy[origin][relay];
        NodeReport& rr = reports[relay];
        rr.energy.tx_nj += a.tx_nj;
        rr.energy.rx_nj += a.rx_nj;
        rr.energy.overhear_nj += a.overhear_nj;
        rr.energy.cpu_nj += a.cpu_nj;
        rr.energy.backoff_nj += a.backoff_nj;
        rr.forwarded_copies += relay_copies[origin][relay];
        rr.charged_values += relay_values[origin][relay];
      }
    }
  }

  SimulationReport report;
  for (NodeReport& nr : reports) {
    report.total_values_sent += nr.values_sent;
    report.total_values_raw += nr.values_raw;
    report.total_energy_nj += nr.energy.total_nj();
    report.total_raw_energy_nj += nr.raw_energy_nj;
    report.total_sse += nr.sse;
    report.total_chunks_lost += nr.chunks_lost;
    report.total_corrupt_frames += nr.corrupt_frames_detected;
    report.total_duplicates_suppressed += nr.duplicates_suppressed;
    report.total_resyncs += nr.resyncs_triggered;
    report.total_degraded_batches += nr.degraded_batches;
    report.nodes.push_back(std::move(nr));
  }
  return report;
}

}  // namespace sbr::net
