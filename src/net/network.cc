#include "net/network.h"

#include "util/stats.h"

namespace sbr::net {

double SimulationReport::CompressionFactor() const {
  return total_values_sent == 0
             ? 0.0
             : static_cast<double>(total_values_raw) /
                   static_cast<double>(total_values_sent);
}

double SimulationReport::EnergySavingFactor() const {
  return total_energy_nj == 0.0 ? 0.0
                                : total_raw_energy_nj / total_energy_nj;
}

NetworkSim::NetworkSim(std::vector<NodePlacement> placements,
                       core::EncoderOptions encoder_options,
                       size_t chunk_len, EnergyParams energy,
                       LinkOptions link)
    : placements_(std::move(placements)),
      encoder_options_(std::move(encoder_options)),
      chunk_len_(chunk_len),
      energy_(energy),
      link_(link),
      link_rng_(link.seed),
      station_(encoder_options_.m_base) {}

StatusOr<SimulationReport> NetworkSim::Run(
    const std::vector<datagen::Dataset>& feeds) {
  if (feeds.size() != placements_.size()) {
    return Status::InvalidArgument(
        "got " + std::to_string(feeds.size()) + " feeds for " +
        std::to_string(placements_.size()) + " nodes");
  }

  SimulationReport report;
  std::vector<double> sample;
  for (size_t i = 0; i < placements_.size(); ++i) {
    const NodePlacement& place = placements_[i];
    const datagen::Dataset& feed = feeds[i];
    SensorNode node(place.id, feed.num_signals(), chunk_len_,
                    encoder_options_);
    NodeReport nr;
    nr.id = place.id;

    sample.resize(feed.num_signals());
    for (size_t t = 0; t < feed.length(); ++t) {
      for (size_t s = 0; s < feed.num_signals(); ++s) {
        sample[s] = feed.values(s, t);
      }
      auto emitted = node.AddSamples(sample);
      if (!emitted.ok()) return emitted.status();
      if (!emitted->has_value()) continue;

      const core::Transmission& tx = **emitted;
      const size_t values = tx.ValueCount();
      nr.values_sent += values;
      nr.values_raw += feed.num_signals() * chunk_len_;
      // Hop-by-hop delivery with retransmission on loss: every attempt
      // pays one hop of radio energy.
      for (size_t hop = 0; hop < place.hops_to_base; ++hop) {
        size_t attempts = 1;
        while (link_.loss_probability > 0.0 &&
               link_rng_.NextDouble() < link_.loss_probability) {
          if (++attempts > link_.max_attempts) {
            return Status::DataLoss(
                "frame undeliverable after " +
                std::to_string(link_.max_attempts) + " attempts");
          }
        }
        nr.retransmissions += attempts - 1;
        for (size_t a = 0; a < attempts; ++a) {
          energy_.ChargeTransmission(values, 1, &nr.energy);
        }
      }
      nr.raw_energy_nj += energy_.RawTransmissionNj(
          feed.num_signals() * chunk_len_, place.hops_to_base);
      SBR_RETURN_IF_ERROR(station_.Receive(place.id, tx));
    }
    nr.transmissions = node.transmissions();

    // Score the reconstructed history against the truth.
    if (nr.transmissions > 0) {
      auto history = station_.History(place.id);
      if (!history.ok()) return history.status();
      const size_t covered = (*history)->history_len();
      for (size_t s = 0; s < feed.num_signals(); ++s) {
        auto approx = (*history)->QueryRange(s, 0, covered);
        if (!approx.ok()) return approx.status();
        std::vector<double> truth(covered);
        for (size_t t = 0; t < covered; ++t) truth[t] = feed.values(s, t);
        nr.sse += SumSquaredError(truth, *approx);
      }
    }

    report.total_values_sent += nr.values_sent;
    report.total_values_raw += nr.values_raw;
    report.total_energy_nj += nr.energy.total_nj();
    report.total_raw_energy_nj += nr.raw_energy_nj;
    report.total_sse += nr.sse;
    report.nodes.push_back(nr);
  }
  return report;
}

}  // namespace sbr::net
