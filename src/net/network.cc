#include "net/network.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace sbr::net {
namespace {

FaultOptions ToFaultOptions(const LinkOptions& link) {
  FaultOptions f;
  f.drop_probability = link.loss_probability;
  f.duplicate_probability = link.duplicate_probability;
  f.reorder_probability = link.reorder_probability;
  f.bit_flip_probability = link.bit_flip_probability;
  f.seed = link.seed;
  return f;
}

EngineOptions ToEngineOptions(const LinkOptions& link) {
  EngineOptions e;
  e.max_attempts = link.max_attempts;
  e.max_resync_rounds = link.max_resync_rounds;
  e.resync_enabled = link.resync_enabled;
  e.strict_accept = false;
  e.emit_obs = true;
  return e;
}

}  // namespace

NetworkSim::NetworkSim(std::vector<NodePlacement> placements,
                       core::EncoderOptions encoder_options,
                       size_t chunk_len, EnergyParams energy,
                       LinkOptions link)
    : placements_(std::move(placements)),
      encoder_options_(std::move(encoder_options)),
      chunk_len_(chunk_len),
      link_(link),
      station_(encoder_options_.m_base, "", link.reorder_window),
      engine_(&station_, EnergyModel(energy), ToEngineOptions(link)) {}

NetworkSim::NetworkSim(Topology topology,
                       std::vector<NodePlacement> placements,
                       core::EncoderOptions encoder_options,
                       size_t chunk_len, EnergyParams energy,
                       LinkOptions link)
    : placements_(std::move(placements)),
      topology_(std::move(topology)),
      has_topology_(true),
      encoder_options_(std::move(encoder_options)),
      chunk_len_(chunk_len),
      link_(link),
      station_(encoder_options_.m_base, "", link.reorder_window),
      engine_(&station_, EnergyModel(energy), ToEngineOptions(link)) {}

void NetworkSim::EnableQueryService(size_t probe_every_chunks) {
  storage::QueryServiceOptions opts;
  opts.m_base = encoder_options_.m_base;
  query_service_ = std::make_unique<storage::QueryService>(opts);
  probe_every_chunks_ = probe_every_chunks == 0 ? 1 : probe_every_chunks;
  station_.AttachQueryService(query_service_.get());
}

Status NetworkSim::RunNode(size_t index, const datagen::Dataset& feed,
                           NodeReport* nr_out, RelayCharges* charges) {
  SBR_OBS_SPAN(node_span, "net.node");
  const NodePlacement& place = placements_[index];
  SensorNode node(place.id, feed.num_signals(), chunk_len_,
                  encoder_options_);
  node.SetEnergyBudget(link_.node_energy_budget_nj,
                       link_.retry_energy_fraction);
  NodeReport& nr = *nr_out;
  nr.id = place.id;

  // Build the uplink route. With a topology it is the tree's real path —
  // hop h is transmitted by the h-th node on the way up (the origin at
  // h = 0, then its ancestors); otherwise it is the legacy private chain
  // with the origin paying every hop. Either way the fault processes stay
  // salted per (origin id, hop index), so a depth-1 star draws exactly the
  // legacy constructor's deterministic streams. Charge targets resolve
  // here, once: hops the origin transmits point into its own report, hops
  // a relay transmits point into this origin's private relay-charge row
  // (merged origin-major after the parallel section).
  std::vector<size_t> tx;
  if (has_topology_) {
    tx = topology_.path(index);
  } else {
    const size_t legacy_hops =
        place.hops_to_base == 0 ? 1 : place.hops_to_base;
    tx.assign(legacy_hops, index);
  }
  const size_t num_hops = tx.size();
  std::vector<FaultChannel> channels;
  channels.reserve(num_hops);
  EngineRoute route;
  route.hops.reserve(num_hops);
  for (size_t h = 0; h < num_hops; ++h) {
    channels.emplace_back(ToFaultOptions(link_),
                          (static_cast<uint64_t>(place.id) << 16) | h);
    EngineHop hop;
    hop.channel = &channels[h];
    hop.node = tx[h];
    if (tx[h] == index) {
      hop.account = &nr.energy;
      hop.charged_values = &nr.charged_values;
      hop.forwarded_copies = nullptr;
    } else {
      hop.account = &charges->energy[index][tx[h]];
      hop.charged_values = &charges->values[index][tx[h]];
      hop.forwarded_copies = &charges->copies[index][tx[h]];
    }
    route.hops.push_back(hop);
  }

  DeliverySink sink;
  sink.node = &node;
  sink.energy = &nr.energy;
  sink.retransmissions = &nr.retransmissions;
  sink.backoff_slots = &nr.backoff_slots;
  sink.retries_shed = &nr.retries_shed;
  sink.frames_abandoned = &nr.frames_abandoned;
  sink.corrupt_frames = &nr.corrupt_frames_detected;
  sink.values_sent = &nr.values_sent;
  sink.malformed_relayed = &nr.malformed_relayed;

  std::vector<double> sample(feed.num_signals());
  size_t chunks_resolved = 0;
  for (size_t t = 0; t < feed.length(); ++t) {
    for (size_t s = 0; s < feed.num_signals(); ++s) {
      sample[s] = feed.values(s, t);
    }
    auto emitted = node.AddSamples(sample);
    if (!emitted.ok()) return emitted.status();
    if (!emitted->has_value()) continue;

    nr.values_raw += feed.num_signals() * chunk_len_;
    nr.raw_energy_nj += engine_.energy().RawTransmissionNj(
        feed.num_signals() * chunk_len_, num_hops);
    SBR_RETURN_IF_ERROR(engine_.ResolveChunk(**emitted, &route, sink));

    // Mid-round read-only probe: a concurrent reader hitting this node's
    // published snapshot while other nodes are still ingesting. Answers
    // feed only obs metrics and the service's own counters — never the
    // report — so the digest is identical with the service detached.
    if (query_service_ != nullptr &&
        ++chunks_resolved % probe_every_chunks_ == 0) {
      SBR_OBS_COUNT("net.sim.query_probes", 1);
      auto snap = query_service_->Snapshot(place.id);
      if (snap != nullptr && snap->compressed.history_len() > 0) {
        const size_t len = snap->compressed.history_len();
        (void)query_service_->Aggregate(place.id, 0, 0, len);
        (void)query_service_->Point(place.id, 0, len - 1);
      }
    }
  }

  // Trailing losses still deserve a gap report: resync once more if the
  // node knows of chunks the station has not accounted for.
  SBR_RETURN_IF_ERROR(engine_.DrainResyncs(&route, sink));

  // Drain frames still held inside reordering hops (residual copies pay
  // for the hops they have left to travel).
  SBR_RETURN_IF_ERROR(engine_.FlushRoute(&route, sink));

  nr.transmissions = node.transmissions();
  nr.resyncs_triggered = node.resyncs();
  nr.degraded_batches = node.degraded_batches();
  nr.chunks_lost = node.lost_chunks();

  // Score the reconstructed history against the truth, chunk by chunk;
  // chunks recorded as DataLoss gaps are excluded (their loss is already
  // reported explicitly, not smeared into the error figure). Only the map
  // lookups need the station lock: after this node's last frame, no other
  // node touches this sensor's per-sensor state, so the history reads run
  // unlocked.
  const storage::HistoryStore* history = nullptr;
  {
    std::lock_guard<std::mutex> lock(engine_.station_mutex());
    nr.duplicates_suppressed =
        station_.stats(place.id).duplicates_suppressed;
    if (station_.HasSensor(place.id)) {
      auto h = station_.History(place.id);
      if (!h.ok()) return h.status();
      history = *h;
    }
  }
  if (history != nullptr) {
    const storage::HistoryStore& h = *history;
    std::vector<double> truth(h.chunk_len());
    for (size_t c = 0; c < h.num_chunks(); ++c) {
      if (h.IsGap(c)) continue;
      const size_t t0 = c * h.chunk_len();
      if (t0 + h.chunk_len() > feed.length()) break;
      for (size_t s = 0; s < feed.num_signals(); ++s) {
        auto approx = h.QueryRange(s, t0, t0 + h.chunk_len());
        if (!approx.ok()) return approx.status();
        for (size_t k = 0; k < h.chunk_len(); ++k) {
          truth[k] = feed.values(s, t0 + k);
        }
        nr.sse += SumSquaredError(truth, *approx);
      }
    }
  }
  return Status::Ok();
}

StatusOr<SimulationReport> NetworkSim::Run(
    const std::vector<datagen::Dataset>& feeds) {
  if (feeds.size() != placements_.size()) {
    return Status::InvalidArgument(
        "got " + std::to_string(feeds.size()) + " feeds for " +
        std::to_string(placements_.size()) + " nodes");
  }
  if (has_topology_ && topology_.num_nodes() != placements_.size()) {
    return Status::InvalidArgument(
        "topology has " + std::to_string(topology_.num_nodes()) +
        " nodes for " + std::to_string(placements_.size()) + " placements");
  }

  // Nodes are mutually independent (own encoder, fault channels, energy
  // account; station serialized behind the engine's mutex), so the
  // per-node simulations fan out over the pool. Each node writes its own
  // report slot; relay charges accumulate per origin (row i is private to
  // node i's simulation) and MergeRelayCharges folds them origin-major, so
  // the report is bitwise identical at any thread count.
  const size_t threads = std::max<size_t>(encoder_options_.threads, 1);
  const size_t n = placements_.size();
  std::vector<NodeReport> reports(n);
  std::vector<Status> statuses(n, Status::Ok());
  RelayCharges charges;
  if (has_topology_) charges.Reset(n);
  util::ParallelFor(threads, n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      statuses[i] = RunNode(i, feeds[i], &reports[i],
                            has_topology_ ? &charges : nullptr);
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  SimEngine::MergeRelayCharges(charges, &reports);
  return SimEngine::BuildReport(std::move(reports));
}

}  // namespace sbr::net
