#include "net/fault_channel.h"

#include "obs/metrics.h"

namespace sbr::net {
namespace {

// SplitMix64 finalizer: decorrelates seed+salt combinations.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultChannel::FaultChannel(const FaultOptions& options, uint64_t salt)
    : options_(options), rng_(Mix(options.seed ^ Mix(salt))) {}

void FaultChannel::MaybeFlipBit(std::vector<uint8_t>* bytes) {
  if (bytes->empty() || options_.bit_flip_probability <= 0.0 ||
      rng_.NextDouble() >= options_.bit_flip_probability) {
    return;
  }
  const size_t pos = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(bytes->size()) - 1));
  (*bytes)[pos] ^= static_cast<uint8_t>(1u << rng_.UniformInt(0, 7));
  ++counters_.bit_flipped;
  SBR_OBS_COUNT("net.fault.bit_flipped", 1);
}

std::vector<std::vector<uint8_t>> FaultChannel::Transmit(
    std::vector<uint8_t> bytes) {
  ++counters_.transmitted;
  SBR_OBS_COUNT("net.fault.transmitted", 1);
  // A frame held by an earlier Transmit exits on this call, after the
  // current frame — that is what makes it arrive out of order.
  std::optional<std::vector<uint8_t>> release = std::move(held_);
  held_.reset();

  std::vector<std::vector<uint8_t>> out;
  if (options_.drop_probability > 0.0 &&
      rng_.NextDouble() < options_.drop_probability) {
    ++counters_.dropped;
    SBR_OBS_COUNT("net.fault.dropped", 1);
  } else {
    const bool duplicate =
        options_.duplicate_probability > 0.0 &&
        rng_.NextDouble() < options_.duplicate_probability;
    if (duplicate) {
      ++counters_.duplicated;
      SBR_OBS_COUNT("net.fault.duplicated", 1);
      std::vector<uint8_t> copy = bytes;
      MaybeFlipBit(&copy);
      out.push_back(std::move(copy));
    }
    MaybeFlipBit(&bytes);
    if (options_.reorder_probability > 0.0 &&
        rng_.NextDouble() < options_.reorder_probability) {
      ++counters_.reordered;
      SBR_OBS_COUNT("net.fault.reordered", 1);
      held_ = std::move(bytes);
    } else {
      out.push_back(std::move(bytes));
    }
  }

  if (release.has_value()) {
    out.push_back(std::move(*release));
  }
  counters_.delivered += out.size();
  return out;
}

std::vector<std::vector<uint8_t>> FaultChannel::Flush() {
  std::vector<std::vector<uint8_t>> out;
  if (held_.has_value()) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  counters_.delivered += out.size();
  return out;
}

}  // namespace sbr::net
