#include "net/chaos_sim.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/rng.h"
#include "util/serialize.h"

namespace sbr::net {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return FnvMix(h, bits);
}

/// Deterministic synthetic chunk for (seed, node, round): a smooth
/// per-signal waveform plus seeded noise. Stateless per round, so a
/// crash-restarted harness position regenerates nothing — each round's
/// chunk exists exactly once.
void GenerateChunk(uint64_t data_seed, uint32_t node_id, size_t round,
                   size_t num_signals, size_t chunk_len, size_t t,
                   Rng* rng, std::span<double> sample) {
  const double phase = static_cast<double>(round * chunk_len + t);
  for (size_t s = 0; s < num_signals; ++s) {
    sample[s] = 10.0 * std::sin(0.05 * phase + static_cast<double>(s)) +
                0.5 * static_cast<double>(s) + 0.1 * rng->Gaussian();
  }
  (void)data_seed;
  (void)node_id;
}

Rng ChunkRng(uint64_t data_seed, uint32_t node_id, size_t round) {
  return Rng(data_seed ^ (uint64_t{node_id} * 0x9e3779b97f4a7c15ull) ^
             (uint64_t{round} * 0xbf58476d1ce4e5b9ull));
}

/// Applies an accepted snapshot to a history with the same timeline
/// reconciliation the station performs, so shadow and station agree on
/// where every post-snapshot chunk lands.
Status ReconcileSnapshot(storage::HistoryStore* history,
                         const core::BaseSnapshot& snap) {
  const uint64_t len = history->num_chunks();
  const uint64_t target =
      snap.timeline_chunks > 0 ? std::max<uint64_t>(snap.timeline_chunks, len)
                               : len + snap.missing_chunks;
  if (target > len) history->MarkGap(static_cast<size_t>(target - len));
  return history->ApplySnapshot(snap);
}

}  // namespace

uint64_t ChaosReport::Digest() const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, rounds);
  h = FnvMix(h, events_scheduled);
  h = FnvMix(h, events_applied);
  h = FnvMix(h, events_skipped);
  h = FnvMix(h, station_restarts);
  h = FnvMix(h, log_tears);
  for (const ChaosNodeReport& n : nodes) {
    h = FnvMix(h, n.id);
    h = FnvMix(h, n.fed);
    h = FnvMix(h, n.delivered);
    h = FnvMix(h, n.lost);
    h = FnvMix(h, n.crashes);
    h = FnvMix(h, n.clean_restarts);
    h = FnvMix(h, n.watchdog_restarts);
    h = FnvMix(h, n.pressure_toggles);
    h = FnvMix(h, n.backoff_slots);
    h = FnvMix(h, n.depth);
    h = FnvMix(h, n.relay_crashes);
    h = FnvMix(h, n.partitioned_rounds);
    h = FnvMix(h, n.retransmissions);
    h = FnvMix(h, n.retries_shed);
    h = FnvMix(h, n.forwarded_copies);
    h = FnvMix(h, n.charged_values);
    h = FnvMixDouble(h, n.energy.total_nj());
    h = FnvMix(h, n.station_chunks);
    h = FnvMix(h, n.station_gaps);
    h = FnvMix(h, n.history_digest);
  }
  h = FnvMix(h, violations.size());
  return h;
}

ChaosSim::ChaosSim(ChaosOptions options) : options_(std::move(options)) {}

Status ChaosSim::SetUp() {
  if (options_.log_dir.empty()) {
    return Status::InvalidArgument("chaos sim requires a log_dir");
  }
  std::error_code ec;
  fs::create_directories(options_.log_dir, ec);
  // The reorder window is protocol-test territory; the chaos layer owns
  // timeline alignment and runs the link strictly in-order.
  options_.link.reorder_probability = 0.0;
  options_.faults.rounds = options_.rounds;
  options_.faults.node_ids.clear();

  // Routing tree: node index i carries sensor id i + 1. Relays become
  // eligible for kRelayCrash; a star has none, so its fault schedule (and
  // the whole run) stays byte-identical to the pre-topology harness.
  TopologyOptions topo;
  topo.shape = options_.topology;
  topo.num_nodes = options_.num_nodes;
  topo.seed = options_.topology_seed;
  topology_ = Topology::Build(topo);
  options_.faults.relay_ids.clear();
  for (size_t relay : topology_.Relays()) {
    options_.faults.relay_ids.push_back(static_cast<uint32_t>(relay + 1));
  }

  nodes_.reserve(options_.num_nodes);
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    options_.faults.node_ids.push_back(id);
    // Every run starts cold: only the sim's own files are wiped.
    fs::remove(options_.log_dir + "/sensor_" + std::to_string(id) + ".log",
               ec);
    const std::string ckpt_path =
        options_.log_dir + "/node_" + std::to_string(id) + ".ckpt";
    fs::remove(ckpt_path, ec);

    NodeCtx ctx(options_.encoder.m_base);
    ctx.id = id;
    ctx.report.id = id;
    ctx.report.depth = topology_.depth(i);
    ctx.ckpt_path = ckpt_path;
    ctx.node = std::make_unique<SensorNode>(
        id, options_.num_signals, options_.chunk_len, options_.encoder);
    ctx.node->SetEnergyBudget(options_.node_energy_budget_nj,
                              options_.retry_energy_fraction);
    auto opened = storage::ChunkLog::Open(ckpt_path);
    if (!opened.ok()) return opened.status();
    ctx.ckpt = std::move(opened).value();
    // Double-commit the boot checkpoint (A/B slots): a torn tail can
    // destroy at most the last record, so one boot image always survives
    // and crash recovery never faces an empty log.
    const std::vector<uint8_t> boot = ctx.node->SaveCheckpoint();
    SBR_RETURN_IF_ERROR(ctx.ckpt.AppendCheckpoint(boot));
    SBR_RETURN_IF_ERROR(ctx.ckpt.AppendCheckpoint(boot));
    ctx.channel = FaultChannel(options_.link,
                               uint64_t{id} * 0x100000001b3ull + 0x5A);
    nodes_.push_back(std::move(ctx));
  }

  // Routes are built only after every NodeCtx exists: hop h of node i's
  // uplink points straight at the h-th path node's edge channel and report
  // row. Those addresses survive restarts (only ctx.node is replaced), so
  // each route is resolved exactly once.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeCtx& ctx = nodes_[i];
    const std::vector<size_t>& path = topology_.path(i);
    ctx.route.hops.reserve(path.size());
    for (size_t h = 0; h < path.size(); ++h) {
      NodeCtx& hop = nodes_[path[h]];
      EngineHop eh;
      eh.channel = &hop.channel;
      eh.account = &hop.report.energy;
      eh.charged_values = &hop.report.charged_values;
      eh.forwarded_copies = h == 0 ? nullptr : &hop.report.forwarded_copies;
      eh.node = path[h];
      ctx.route.hops.push_back(eh);
    }
  }

  station_ = std::make_unique<BaseStation>(
      options_.encoder.m_base, options_.log_dir, options_.reorder_window,
      /*persist_protocol_state=*/true);

  // The engine under the chaos configuration: strict acceptance (the
  // shadow history must record exactly what the station ingested),
  // obs-silent (the harness is an oracle, not a workload), lifecycle
  // policy plugged in for partitions and shadow feeding.
  hooks_.sim = this;
  EngineOptions eopts;
  eopts.max_attempts = options_.max_attempts;
  eopts.max_resync_rounds = options_.max_resync_rounds;
  eopts.resync_enabled = true;
  eopts.strict_accept = true;
  eopts.emit_obs = false;
  engine_ = std::make_unique<SimEngine>(
      station_.get(), EnergyModel(options_.energy), eopts, &hooks_);
  return Status::Ok();
}

bool ChaosSim::Lifecycle::HopDown(size_t node) {
  // The relay-partition rule: a forwarding hop inside its outage window
  // (crash, stall, relay crash) is dark — copies reaching it vanish.
  return sim->round_ < sim->nodes_[node].stall_until;
}

Status ChaosSim::Lifecycle::OnFrameAccepted(const core::Frame& frame,
                                            const EngineRoute& route) {
  NodeCtx* ctx = &sim->nodes_[frame.sensor_id - 1];
  // I8: nothing may cross a downed ancestor. An accept here means the
  // partition leaked a frame through a dead relay.
  for (size_t h = 1; h < route.hops.size(); ++h) {
    const NodeCtx& hop = sim->nodes_[route.hops[h].node];
    if (sim->IsDown(hop)) {
      sim->report_.violations.push_back(
          "node " + std::to_string(ctx->id) +
          ": frame accepted while ancestor node " + std::to_string(hop.id) +
          " was down (I8)");
    }
  }
  return sim->ShadowAccept(ctx, frame);
}

DeliverySink ChaosSim::SinkFor(NodeCtx* ctx) {
  DeliverySink sink;
  sink.node = ctx->node.get();
  // The budget check reads the full account — including relay charges from
  // other nodes' traffic — matching what a real mote's battery sees.
  sink.energy = &ctx->report.energy;
  sink.retransmissions = &ctx->report.retransmissions;
  sink.backoff_slots = &ctx->report.backoff_slots;
  sink.retries_shed = &ctx->report.retries_shed;
  sink.chunks_delivered = &ctx->report.delivered;
  sink.chunks_lost = &ctx->report.lost;
  sink.malformed_relayed = &ctx->report.malformed_relayed;
  return sink;
}

Status ChaosSim::ShadowAccept(NodeCtx* ctx, const core::Frame& frame) {
  BinaryReader reader(frame.payload);
  if (frame.type == core::FrameType::kSnapshot) {
    auto snap = core::BaseSnapshot::Deserialize(&reader);
    if (!snap.ok()) return snap.status();
    return ReconcileSnapshot(&ctx->shadow, *snap);
  }
  auto t = core::Transmission::Deserialize(&reader);
  if (!t.ok()) return t.status();
  return ctx->shadow.Ingest(*t);
}

Status ChaosSim::ResolveChunk(NodeCtx* ctx, size_t round) {
  // Sample one chunk's worth of the node's synthetic feed.
  Rng rng = ChunkRng(options_.data_seed, ctx->id, round);
  std::vector<double> sample(options_.num_signals);
  std::optional<core::Transmission> tx;
  for (size_t t = 0; t < options_.chunk_len; ++t) {
    GenerateChunk(options_.data_seed, ctx->id, round, options_.num_signals,
                  options_.chunk_len, t, &rng, sample);
    auto emitted = ctx->node->AddSamples(sample);
    if (!emitted.ok()) return emitted.status();
    if (emitted->has_value()) tx = std::move(**emitted);
  }
  if (!tx.has_value()) {
    return Status::FailedPrecondition(
        "chunk_len samples did not fill the node buffer");
  }
  ++ctx->report.fed;

  // The engine drives the chunk to a terminal outcome — pending-resync
  // drain, primary delivery, snapshot + self-contained recovery, or the
  // DataLoss write-off — counting delivered/lost through the sink.
  SBR_RETURN_IF_ERROR(engine_->ResolveChunk(*tx, &ctx->route, SinkFor(ctx)));

  // Chunk-boundary checkpoint: the durable state a crash will restore.
  return ctx->ckpt.AppendCheckpoint(ctx->node->SaveCheckpoint());
}

Status ChaosSim::CrashRestartNode(NodeCtx* ctx) {
  // RAM is gone; the checkpoint log on disk is the only surviving state
  // (and recovery may truncate or quarantine parts of it).
  auto reopened = storage::ChunkLog::Open(ctx->ckpt_path);
  if (!reopened.ok()) return reopened.status();
  ctx->ckpt = std::move(reopened).value();

  std::vector<uint8_t> blob;
  const size_t idx = ctx->ckpt.LastCheckpointIndex();
  if (idx == storage::ChunkLog::kNoCheckpoint) {
    // Every checkpoint destroyed (bounded to pathological tear chains by
    // the A/B boot commit): boot factory-fresh, but still through the
    // crash path so seq/epoch take their reserves and a resync precedes
    // any data.
    SensorNode pristine(ctx->id, options_.num_signals, options_.chunk_len,
                        options_.encoder);
    blob = pristine.SaveCheckpoint();
  } else {
    auto read = ctx->ckpt.ReadCheckpoint(idx);
    if (!read.ok()) return read.status();
    blob = std::move(read).value();
  }
  ctx->node = std::make_unique<SensorNode>(
      ctx->id, options_.num_signals, options_.chunk_len, options_.encoder);
  ctx->node->SetEnergyBudget(options_.node_energy_budget_nj,
                             options_.retry_energy_fraction);
  SBR_RETURN_IF_ERROR(ctx->node->RestoreCheckpoint(
      blob, SensorNode::RestartMode::kCrash));
  // The checkpoint may predate the latest resolutions: conservatively
  // write off every chunk it cannot account for. If the station actually
  // holds some of them, the snapshot reconciliation takes max(timeline,
  // station length), so the write-off never shrinks real data into gaps.
  const size_t accounted =
      ctx->node->delivered_chunks() + ctx->node->lost_chunks();
  if (ctx->report.fed > accounted) {
    ctx->node->RecordLostChunks(ctx->report.fed - accounted);
  }
  // Re-commit immediately: the next tear must never face a log whose only
  // checkpoint is the record it is about to destroy.
  return ctx->ckpt.AppendCheckpoint(ctx->node->SaveCheckpoint());
}

Status ChaosSim::CleanRestartNode(NodeCtx* ctx) {
  const std::vector<uint8_t> blob = ctx->node->SaveCheckpoint();
  SBR_RETURN_IF_ERROR(ctx->ckpt.AppendCheckpoint(blob));
  ctx->node = std::make_unique<SensorNode>(
      ctx->id, options_.num_signals, options_.chunk_len, options_.encoder);
  ctx->node->SetEnergyBudget(options_.node_energy_budget_nj,
                             options_.retry_energy_fraction);
  return ctx->node->RestoreCheckpoint(
      blob, SensorNode::RestartMode::kCleanShutdown);
}

Status ChaosSim::RestartStation() {
  station_ = std::make_unique<BaseStation>(
      options_.encoder.m_base, options_.log_dir, options_.reorder_window,
      /*persist_protocol_state=*/true);
  engine_->set_station(station_.get());
  ++report_.station_restarts;
  return Status::Ok();
}

StatusOr<bool> ChaosSim::TearLog(const std::string& path,
                                 const storage::ChunkLog& view,
                                 TearMode mode,
                                 storage::RecordType flip_target) {
  if (view.empty()) return false;
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;

  if (mode == TearMode::kHalfWrite) {
    // A record whose framing landed but whose payload did not: the length
    // prefix claims more bytes than follow.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::DataLoss("cannot append tear to " + path);
    const uint8_t garbage[] = {0x40, 0x00, 0x00, 0x00, 0x00, 0xAA, 0xBB};
    out.write(reinterpret_cast<const char*>(garbage), sizeof(garbage));
    return true;
  }

  if (mode == TearMode::kFlipByte) {
    // Corrupt a settled record's payload mid-log; CRC catches it on the
    // next Open and recovery quarantines it.
    size_t target = view.size();
    for (size_t i = view.size(); i-- > 0;) {
      if (view.record_type(i) == flip_target) {
        target = i;
        break;
      }
    }
    if (target < view.size()) {
      const storage::ChunkLog::DiskSpan span = view.RecordDiskSpan(target);
      if (span.length > 9) {
        const size_t pos = span.offset + 9;  // first payload byte
        std::fstream io(path,
                        std::ios::binary | std::ios::in | std::ios::out);
        if (!io) return Status::DataLoss("cannot open " + path);
        io.seekg(static_cast<std::streamoff>(pos));
        char byte = 0;
        io.get(byte);
        io.seekp(static_cast<std::streamoff>(pos));
        io.put(static_cast<char>(byte ^ 0x55));
        return true;
      }
    }
    // No record of the requested type: fall through to a tail truncation.
  }

  const storage::ChunkLog::DiskSpan span =
      view.RecordDiskSpan(view.size() - 1);
  const size_t cut = span.offset + span.length / 2;
  fs::resize_file(path, cut, ec);
  if (ec) return Status::DataLoss("cannot truncate " + path);
  return true;
}

Status ChaosSim::ApplyEvent(const LifecycleEvent& e, size_t round) {
  NodeCtx* ctx = nullptr;
  if (e.fault != LifecycleFault::kStationRestart) {
    for (NodeCtx& n : nodes_) {
      if (n.id == e.node_id) ctx = &n;
    }
    if (ctx == nullptr) {
      ++report_.events_skipped;
      return Status::Ok();
    }
    // A node that is down (stalled) cannot take further faults.
    if (round < ctx->stall_until) {
      ++report_.events_skipped;
      return Status::Ok();
    }
  }

  switch (e.fault) {
    case LifecycleFault::kNodeCrash:
      SBR_RETURN_IF_ERROR(CrashRestartNode(ctx));
      ++ctx->report.crashes;
      // The crash costs the node its round: a dead sensor samples nothing.
      ctx->stall_until = std::max(ctx->stall_until, round + 1);
      break;
    case LifecycleFault::kNodeCleanRestart:
      // An orderly reboot checkpoints first and resumes within the round.
      SBR_RETURN_IF_ERROR(CleanRestartNode(ctx));
      ++ctx->report.clean_restarts;
      break;
    case LifecycleFault::kStationRestart:
      SBR_RETURN_IF_ERROR(RestartStation());
      break;
    case LifecycleFault::kPowerLoss: {
      if (e.tear_target == TearTarget::kStationLog) {
        // Power loss at the base: the active per-sensor log record is
        // damaged and the station reboots into log recovery.
        if (station_->HasSensor(ctx->id)) {
          auto log = station_->Log(ctx->id);
          if (!log.ok()) return log.status();
          auto torn = TearLog(
              options_.log_dir + "/sensor_" + std::to_string(ctx->id) +
                  ".log",
              **log, e.tear_mode, storage::RecordType::kTransmission);
          if (!torn.ok()) return torn.status();
          if (*torn) {
            ++report_.log_tears;
            any_station_tear_ = true;
          }
        }
        SBR_RETURN_IF_ERROR(RestartStation());
      } else {
        // Power loss at the node: the checkpoint being written is damaged
        // and the node crash-restarts from whatever survives.
        auto torn = TearLog(ctx->ckpt_path, ctx->ckpt, e.tear_mode,
                            storage::RecordType::kCheckpoint);
        if (!torn.ok()) return torn.status();
        if (*torn) ++report_.log_tears;
        SBR_RETURN_IF_ERROR(CrashRestartNode(ctx));
        ++ctx->report.crashes;
        ctx->stall_until = std::max(ctx->stall_until, round + 1);
      }
      break;
    }
    case LifecycleFault::kNodeStall:
      ctx->stall_until = std::max(ctx->stall_until, round + e.duration);
      ctx->watchdog_pending = true;
      break;
    case LifecycleFault::kMemoryPressure:
      ctx->node->SetMemoryPressure(!ctx->node->memory_pressure());
      ++ctx->report.pressure_toggles;
      break;
    case LifecycleFault::kRelayCrash:
      // The relay's process dies like a node crash, but the outage spans
      // `duration` rounds: while dark it neither samples nor forwards, so
      // its whole subtree is partitioned (Deliver drops descendant copies
      // at the dead hop). Once the route heals, queued descendants come
      // back through the usual snapshot resync.
      SBR_RETURN_IF_ERROR(CrashRestartNode(ctx));
      ++ctx->report.relay_crashes;
      ctx->stall_until = std::max(
          ctx->stall_until, round + std::max<size_t>(e.duration, 1));
      break;
  }
  ++report_.events_applied;
  return Status::Ok();
}

Status ChaosSim::RunRound(size_t round) {
  for (NodeCtx& ctx : nodes_) {
    if (round >= ctx.stall_until && ctx.watchdog_pending) {
      // The stall window elapsed without the node reporting in: the
      // watchdog power-cycles it. The reboot consumes this round too.
      ctx.watchdog_pending = false;
      SBR_RETURN_IF_ERROR(CrashRestartNode(&ctx));
      ++ctx.report.watchdog_restarts;
      ctx.stall_until = std::max(ctx.stall_until, round + 1);
    }
    if (round < ctx.stall_until) {
      ++ctx.report.stall_rounds;
      continue;
    }
    // A live node behind a downed ancestor is partitioned: it still
    // samples and transmits (paying hop-0 energy), but nothing crosses
    // the dead relay, so this round's chunk resolves through the
    // abandonment path and resyncs once the route heals.
    const std::vector<size_t>& path = topology_.path(ctx.id - 1);
    for (size_t h = 1; h < path.size(); ++h) {
      if (IsDown(nodes_[path[h]])) {
        ++ctx.report.partitioned_rounds;
        break;
      }
    }
    SBR_RETURN_IF_ERROR(ResolveChunk(&ctx, round));
  }
  return Status::Ok();
}

Status ChaosSim::Finalize() {
  for (NodeCtx& ctx : nodes_) {
    if (ctx.report.fed == 0) continue;
    // Drain pending loss reports over the (still faulty) channel first.
    SBR_RETURN_IF_ERROR(engine_->DrainResyncs(&ctx.route, SinkFor(&ctx)));
    // Guaranteed convergence: a direct, channel-bypassing handshake, as
    // if the operator walked the last hop. Each attempt opens a fresh
    // epoch, so acceptance is reached within a bounded number of tries.
    bool accepted = false;
    for (size_t tries = 0; tries < 8 && !accepted; ++tries) {
      core::Frame frame = ctx.node->BuildSnapshotFrame();
      BinaryWriter writer;
      frame.Serialize(&writer);
      auto ack = station_->ReceiveBytes(writer.buffer());
      if (!ack.ok()) return ack.status();
      if (ack->type == AckType::kAccept && ack->sensor_id == ctx.id &&
          ack->seq == frame.seq) {
        SBR_RETURN_IF_ERROR(ShadowAccept(&ctx, frame));
        ctx.node->MarkSnapshotDelivered();
        ctx.node->set_needs_resync(false);
        accepted = true;
      }
    }
    if (!accepted) {
      report_.violations.push_back(
          "finalize: node " + std::to_string(ctx.id) +
          " could not re-establish sync over a clean channel");
    }
  }
  return Status::Ok();
}

void ChaosSim::CheckInvariants() {
  for (NodeCtx& ctx : nodes_) {
    ChaosNodeReport& nr = ctx.report;
    const std::string who = "node " + std::to_string(ctx.id) + ": ";
    auto violate = [&](const std::string& what) {
      report_.violations.push_back(who + what);
    };

    // I3: every fed chunk reached a terminal state.
    if (nr.delivered + nr.lost != nr.fed) {
      violate("accounting: delivered " + std::to_string(nr.delivered) +
              " + lost " + std::to_string(nr.lost) + " != fed " +
              std::to_string(nr.fed));
    }

    // I9: the energy account reconciles against the closed-form cost of
    // exactly the values charged plus the backoff idle-listening. The
    // tolerance only absorbs summation-order ulps under fractional
    // EnergyParams; the defaults are integer-valued and match exactly.
    EnergyAccount expect;
    engine_->energy().ChargeTransmission(nr.charged_values, 1, &expect);
    engine_->energy().ChargeBackoff(nr.backoff_slots, &expect);
    const double scale = std::max(1.0, expect.total_nj());
    if (std::abs(expect.total_nj() - nr.energy.total_nj()) >
        1e-6 * scale) {
      violate("energy: account " + std::to_string(nr.energy.total_nj()) +
              " nJ diverges from the closed form " +
              std::to_string(expect.total_nj()) + " nJ (I9)");
    }
    if (nr.fed == 0) continue;

    if (!station_->HasSensor(ctx.id)) {
      violate("station never heard from a node that fed chunks");
      continue;
    }
    auto history = station_->History(ctx.id);
    if (!history.ok()) {
      violate("history lookup failed: " + history.status().ToString());
      continue;
    }
    const storage::HistoryStore& h = **history;
    nr.station_chunks = h.num_chunks();
    nr.station_gaps = h.num_gaps();

    // I2: the timeline converged to exactly the chunks fed.
    if (h.num_chunks() != nr.fed) {
      violate("timeline: station holds " + std::to_string(h.num_chunks()) +
              " chunks, fed " + std::to_string(nr.fed));
    }
    if (ctx.shadow.num_chunks() != nr.fed) {
      violate("shadow timeline: " + std::to_string(ctx.shadow.num_chunks()) +
              " chunks, fed " + std::to_string(nr.fed));
    }

    // I4: data survives unless a fault explicitly destroyed it.
    const size_t station_data = h.num_chunks() - h.num_gaps();
    if (!any_station_tear_ && station_data != nr.delivered) {
      violate("retention: station holds " + std::to_string(station_data) +
              " data chunks, delivered " + std::to_string(nr.delivered) +
              " (no station-log tears occurred)");
    }
    if (station_data > nr.delivered) {
      violate("phantom data: station holds " + std::to_string(station_data) +
              " data chunks but only " + std::to_string(nr.delivered) +
              " were delivered");
    }

    // I1: no silent corruption, chunk by chunk, bit by bit.
    uint64_t digest = kFnvOffset;
    const size_t n = std::min(h.num_chunks(), ctx.shadow.num_chunks());
    for (size_t c = 0; c < n; ++c) {
      const bool station_gap = h.IsGap(c);
      const bool shadow_gap = ctx.shadow.IsGap(c);
      digest = FnvMix(digest, station_gap ? 1 : 0);
      if (shadow_gap && !station_gap) {
        violate("chunk " + std::to_string(c) +
                ": station serves data for a chunk written off as lost");
        continue;
      }
      if (station_gap) continue;
      auto got = h.Chunk(c);
      auto want = ctx.shadow.Chunk(c);
      if (!got.ok() || !want.ok()) {
        violate("chunk " + std::to_string(c) + ": unreadable");
        continue;
      }
      if (got->rows() != want->rows() || got->cols() != want->cols()) {
        violate("chunk " + std::to_string(c) + ": geometry mismatch");
        continue;
      }
      const size_t count = got->rows() * got->cols();
      const double* a = got->data().data();
      const double* b = want->data().data();
      bool equal = true;
      for (size_t k = 0; k < count; ++k) {
        if (!std::isfinite(a[k])) {
          violate("chunk " + std::to_string(c) + ": non-finite value");
          equal = false;
          break;
        }
        if (std::memcmp(&a[k], &b[k], sizeof(double)) != 0) {
          equal = false;
          break;
        }
        digest = FnvMixDouble(digest, a[k]);
      }
      if (!equal) {
        violate("chunk " + std::to_string(c) +
                ": station bytes diverge from the accepted transmission");
      }
    }
    nr.history_digest = digest;
  }

  // I7: the whole schedule was consumed, every event applied or
  // explicitly skipped.
  if (report_.events_applied + report_.events_skipped !=
      report_.events_scheduled) {
    report_.violations.push_back(
        "schedule: applied " + std::to_string(report_.events_applied) +
        " + skipped " + std::to_string(report_.events_skipped) +
        " != scheduled " + std::to_string(report_.events_scheduled));
  }
}

StatusOr<ChaosReport> ChaosSim::Run() {
  SBR_RETURN_IF_ERROR(SetUp());
  FaultScheduler scheduler(options_.faults);
  report_.rounds = options_.rounds;
  report_.events_scheduled = scheduler.total_events();

  const std::vector<LifecycleEvent>& events = scheduler.events();
  size_t next_event = 0;
  for (size_t round = 0; round < options_.rounds; ++round) {
    round_ = round;
    while (next_event < events.size() && events[next_event].round == round) {
      SBR_RETURN_IF_ERROR(ApplyEvent(events[next_event], round));
      ++next_event;
    }
    SBR_RETURN_IF_ERROR(RunRound(round));
  }
  // Every outage expires inside the fault window, so Finalize's resyncs
  // run over fully healed routes.
  round_ = options_.rounds;
  SBR_RETURN_IF_ERROR(Finalize());
  CheckInvariants();

  for (NodeCtx& ctx : nodes_) {
    report_.total_fed += ctx.report.fed;
    report_.total_delivered += ctx.report.delivered;
    report_.total_lost += ctx.report.lost;
    report_.nodes.push_back(ctx.report);
  }
  return std::move(report_);
}

}  // namespace sbr::net
