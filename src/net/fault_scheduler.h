// FaultScheduler: a deterministic, seeded generator of node-lifecycle
// fault schedules for the chaos simulation. Where FaultChannel models the
// *link* misbehaving (drop/duplicate/reorder/bit-flip per frame), the
// scheduler models the *processes* misbehaving: sensor nodes crash and
// restart from their last checkpoint, the base station restarts and
// reloads its logs, power loss tears the record a ChunkLog was writing,
// nodes hang until a watchdog power-cycles them, and memory pressure
// forces the encoder into its low-memory base construction.
//
// A schedule is a pure function of its options (seed included): the same
// options replay the same events in the same rounds, which is what lets a
// failing chaos run be reproduced from nothing but its seed.
#ifndef SBR_NET_FAULT_SCHEDULER_H_
#define SBR_NET_FAULT_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbr::net {

/// Process-level fault kinds the chaos layer injects.
enum class LifecycleFault : uint8_t {
  kNodeCrash = 0,       ///< node dies; restarts from its last checkpoint
  kNodeCleanRestart,    ///< node checkpoints, shuts down, restarts
  kStationRestart,      ///< base station restarts and reloads its logs
  kPowerLoss,           ///< power cut mid-write: a log record is torn
  kNodeStall,           ///< node hangs; the watchdog power-cycles it later
  kMemoryPressure,      ///< toggles the encoder's low-memory degraded mode
  kRelayCrash,          ///< a relay dies, partitioning its whole subtree
                        ///< until it restarts (tree topologies only)
};
inline constexpr size_t kNumLifecycleFaults = 7;

/// How a power-loss event damages the active log.
enum class TearMode : uint8_t {
  kTruncate = 0,   ///< the tail of the last record vanishes
  kHalfWrite,      ///< a record's framing lands but its payload does not
  kFlipByte,       ///< a payload byte of a settled record is corrupted
};

/// Whose log the power loss hits.
enum class TearTarget : uint8_t {
  kStationLog = 0,     ///< the station's per-sensor chunk log
  kNodeCheckpoint,     ///< the node's own checkpoint log (node also crashes)
};

/// One scheduled fault.
struct LifecycleEvent {
  size_t round = 0;       ///< lockstep round the event fires at
  LifecycleFault fault = LifecycleFault::kNodeCrash;
  uint32_t node_id = 0;   ///< victim node (ignored for kStationRestart)
  size_t duration = 0;    ///< kNodeStall: rounds of silence before watchdog
  TearMode tear_mode = TearMode::kTruncate;      ///< kPowerLoss only
  TearTarget tear_target = TearTarget::kStationLog;  ///< kPowerLoss only
};

/// Schedule shape. Probabilities are per round (and per node for the
/// node-scoped faults), evaluated independently from the seeded stream.
struct FaultScheduleOptions {
  size_t rounds = 0;               ///< total lockstep rounds of the run
  std::vector<uint32_t> node_ids;  ///< nodes eligible as victims
  uint64_t seed = 1;
  /// No events are scheduled in the last `fault_free_tail` rounds, so
  /// every run ends with a convergence window in which the protocol can
  /// settle back to a fully reconciled, byte-identical history.
  size_t fault_free_tail = 4;
  double node_crash_probability = 0.03;
  double clean_restart_probability = 0.02;
  double station_restart_probability = 0.02;
  double power_loss_probability = 0.02;
  double stall_probability = 0.02;
  double memory_pressure_probability = 0.03;
  size_t max_stall_rounds = 3;
  /// Relay-crash faults (tree topologies). Empty `relay_ids` — every star
  /// run — draws nothing from the stream, so star schedules stay
  /// byte-identical to schedules built before relays existed.
  std::vector<uint32_t> relay_ids;  ///< nodes that relay for a subtree
  double relay_crash_probability = 0.0;
  size_t max_relay_down_rounds = 2;  ///< outage length per relay crash
};

/// Deterministic fault schedule: built once, replayed read-only.
class FaultScheduler {
 public:
  explicit FaultScheduler(const FaultScheduleOptions& options);

  /// All events in firing order (round-major, stable within a round).
  const std::vector<LifecycleEvent>& events() const { return events_; }

  /// Number of scheduled events of one kind.
  size_t count(LifecycleFault fault) const {
    return counts_[static_cast<size_t>(fault)];
  }
  size_t total_events() const { return events_.size(); }

 private:
  std::vector<LifecycleEvent> events_;
  size_t counts_[kNumLifecycleFaults] = {};
};

}  // namespace sbr::net

#endif  // SBR_NET_FAULT_SCHEDULER_H_
