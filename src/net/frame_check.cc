#include "net/frame_check.h"

namespace sbr::net {

StatusOr<core::Frame> CheckFrameEnvelope(std::span<const uint8_t> bytes) {
  return core::Frame::Parse(bytes);
}

bool FrameEnvelopeOk(std::span<const uint8_t> bytes) {
  return CheckFrameEnvelope(bytes).ok();
}

}  // namespace sbr::net
