#ifndef SBR_NET_FRAME_CHECK_H_
#define SBR_NET_FRAME_CHECK_H_

#include <cstdint>
#include <span>

#include "core/transmission.h"
#include "util/status.h"

namespace sbr::net {

/// The single frame CRC/envelope classification shared by every hop.
///
/// Relays classifying a forwarded copy and `BaseStation::ReceiveBytes`
/// validating an arriving frame both route through this check, so a
/// malformed frame gets the identical verdict at every point in the
/// network. Wraps `core::Frame::Parse` (magic, header bounds, CRC32).
StatusOr<core::Frame> CheckFrameEnvelope(std::span<const uint8_t> bytes);

/// Convenience predicate for call sites that only classify (relay
/// forwarding) and never consume the parsed frame.
bool FrameEnvelopeOk(std::span<const uint8_t> bytes);

}  // namespace sbr::net

#endif  // SBR_NET_FRAME_CHECK_H_
