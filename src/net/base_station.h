// BaseStation: receives transmissions from many sensors, appends each to
// the sensor's chunk log and maintains a queryable decoded history per
// sensor (paper Figure 1: one log file per sensor, plus the base-signal
// updates folded into the same stream).
//
// On-air frames pass through the fault-tolerant receive protocol first:
// CRC validation, duplicate suppression, a bounded reorder window, and
// epoch tracking. A detected gap or epoch mismatch is surfaced as an
// explicit DataLoss gap plus a resync request — a frame whose base-signal
// lineage is broken is never decoded into silent garbage.
#ifndef SBR_NET_BASE_STATION_H_
#define SBR_NET_BASE_STATION_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/transmission.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "util/status.h"

namespace sbr::storage {
class QueryService;
}  // namespace sbr::storage

namespace sbr::net {

/// Typed receiver verdict for one frame.
enum class AckType : uint8_t {
  kAccept = 0,     ///< ingested (data decoded / snapshot applied)
  kDuplicate = 1,  ///< already seen; suppressed
  kBuffered = 2,   ///< ahead of the expected seq; held in the reorder window
  kCorrupt = 3,    ///< CRC/parse failure; retransmit
  kDesync = 4,     ///< gap or epoch mismatch; resync required
};

/// The ACK/NACK returned to the sender for every received frame.
struct FrameAck {
  AckType type = AckType::kAccept;
  uint32_t sensor_id = 0;
  uint64_t seq = 0;
  uint32_t epoch = 0;  ///< receiver's current epoch
  /// Set on kDesync: the sensor must ship a base-signal snapshot (new
  /// epoch) before any further data frame can be accepted.
  bool resync_requested = false;
};

/// Per-sensor receive-protocol counters.
struct ProtocolStats {
  size_t frames_accepted = 0;
  size_t corrupt_frames = 0;  ///< station-wide on the aggregate (see below)
  size_t duplicates_suppressed = 0;
  size_t buffered_out_of_order = 0;
  size_t gap_chunks = 0;  ///< chunks recorded as DataLoss gaps
  size_t resync_requests = 0;
  size_t snapshots_applied = 0;
  size_t degraded_batches = 0;  ///< self-contained (no-base) chunks ingested
  size_t stale_frames_rejected = 0;
};

/// The sink node of the network.
class BaseStation {
 public:
  /// `m_base` must match the sensors' encoder configuration. When
  /// `log_dir` is non-empty, one durable log file per sensor is kept under
  /// it ("sensor_<id>.log"); otherwise logs are in-memory.
  /// `reorder_window` bounds how many frames ahead of the expected
  /// sequence number are buffered before a gap is declared.
  /// With `persist_protocol_state` the receive state machine (expected
  /// seq, epoch, counters) is checkpointed into each sensor's log after
  /// every record-appending transition and restored on the next Open, so
  /// a restarted station resumes the protocol instead of treating every
  /// sensor as brand new. Off by default: trusted-path (`Receive`) users
  /// keep byte-identical logs with no checkpoint records interleaved.
  explicit BaseStation(size_t m_base, std::string log_dir = "",
                       size_t reorder_window = 8,
                       bool persist_protocol_state = false);

  /// Ingests one transmission from `sensor_id`, bypassing the frame
  /// protocol (trusted local path; no sequence/epoch tracking).
  Status Receive(uint32_t sensor_id, const core::Transmission& t);

  /// Ingests one on-air frame (the serialized byte form) and returns the
  /// typed ACK/NACK. Always returns a clean ack for malformed input —
  /// corruption is a protocol event, not an internal error.
  StatusOr<FrameAck> ReceiveBytes(std::span<const uint8_t> bytes);

  /// Per-sensor protocol counters (zeroes if the sensor is unknown).
  /// `corrupt_frames` is only meaningful on total_stats(): a frame that
  /// fails its CRC cannot be attributed to a sensor.
  ProtocolStats stats(uint32_t sensor_id) const;
  /// Aggregate over all sensors plus unattributable corrupt frames.
  const ProtocolStats& total_stats() const { return total_; }

  /// Sensors heard from so far.
  size_t num_sensors() const { return sensors_.size(); }
  bool HasSensor(uint32_t sensor_id) const {
    return sensors_.count(sensor_id) > 0;
  }

  /// Decoded history of a sensor; NotFound if never heard from.
  StatusOr<const storage::HistoryStore*> History(uint32_t sensor_id) const;

  /// The raw log of a sensor; NotFound if never heard from.
  StatusOr<const storage::ChunkLog*> Log(uint32_t sensor_id) const;

  /// Attaches a concurrent query front-end: every accepted ingest, gap
  /// declaration and resync snapshot — including the log replay of sensors
  /// first heard from after the attach — is mirrored into `service`, which
  /// publishes an immutable epoch snapshot per mutation for concurrent
  /// readers. Not owned; must outlive the station. Pass nullptr to detach.
  void AttachQueryService(storage::QueryService* service) {
    query_service_ = service;
  }
  storage::QueryService* query_service() const { return query_service_; }

 private:
  struct PerSensor {
    storage::ChunkLog log;
    storage::HistoryStore history;
    // Receive-protocol state.
    uint64_t expected_seq = 0;
    uint32_t epoch = 0;
    bool awaiting_resync = false;
    std::map<uint64_t, core::Frame> pending;  ///< bounded reorder window
    ProtocolStats stats;
    uint32_t id = 0;
  };

  StatusOr<PerSensor*> GetOrCreate(uint32_t sensor_id);
  StatusOr<FrameAck> HandleFrame(core::Frame frame);
  /// Decodes and stores one in-order data frame's transmission.
  Status IngestData(PerSensor* s, const core::Transmission& t);
  /// Records `chunks` DataLoss gaps in history and log.
  Status DeclareGap(PerSensor* s, size_t chunks);
  /// Appends a protocol-state checkpoint record (persist mode only).
  Status AppendProtocolCheckpoint(PerSensor* s);
  /// Restores protocol state from the log's last checkpoint, replaying any
  /// records appended after it (persist mode only; checkpoint-less legacy
  /// logs keep the fresh-sensor defaults).
  Status RestoreProtocolState(PerSensor* s);
  /// Mirrors one accepted transmission into the attached query service
  /// (no-op without one). A service-side rejection becomes a service-side
  /// gap so the two timelines never drift apart.
  void ForwardToQueryService(uint32_t sensor_id, const core::Transmission& t);
  /// Replays a recovered log into the attached query service so a sensor
  /// restored from disk is immediately queryable.
  Status ReplayIntoQueryService(uint32_t sensor_id,
                                const storage::ChunkLog& log);

  size_t m_base_;
  std::string log_dir_;
  size_t reorder_window_;
  bool persist_protocol_state_;
  std::map<uint32_t, PerSensor> sensors_;
  ProtocolStats total_;
  storage::QueryService* query_service_ = nullptr;
};

}  // namespace sbr::net

#endif  // SBR_NET_BASE_STATION_H_
