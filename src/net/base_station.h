// BaseStation: receives transmissions from many sensors, appends each to
// the sensor's chunk log and maintains a queryable decoded history per
// sensor (paper Figure 1: one log file per sensor, plus the base-signal
// updates folded into the same stream).
#ifndef SBR_NET_BASE_STATION_H_
#define SBR_NET_BASE_STATION_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/transmission.h"
#include "storage/chunk_log.h"
#include "storage/history_store.h"
#include "util/status.h"

namespace sbr::net {

/// The sink node of the network.
class BaseStation {
 public:
  /// `m_base` must match the sensors' encoder configuration. When
  /// `log_dir` is non-empty, one durable log file per sensor is kept under
  /// it ("sensor_<id>.log"); otherwise logs are in-memory.
  explicit BaseStation(size_t m_base, std::string log_dir = "");

  /// Ingests one transmission from `sensor_id`.
  Status Receive(uint32_t sensor_id, const core::Transmission& t);

  /// Ingests a serialized transmission (the on-air byte form).
  Status ReceiveBytes(uint32_t sensor_id, std::span<const uint8_t> bytes);

  /// Sensors heard from so far.
  size_t num_sensors() const { return sensors_.size(); }
  bool HasSensor(uint32_t sensor_id) const {
    return sensors_.count(sensor_id) > 0;
  }

  /// Decoded history of a sensor; NotFound if never heard from.
  StatusOr<const storage::HistoryStore*> History(uint32_t sensor_id) const;

  /// The raw log of a sensor; NotFound if never heard from.
  StatusOr<const storage::ChunkLog*> Log(uint32_t sensor_id) const;

 private:
  struct PerSensor {
    storage::ChunkLog log;
    storage::HistoryStore history;
  };

  StatusOr<PerSensor*> GetOrCreate(uint32_t sensor_id);

  size_t m_base_;
  std::string log_dir_;
  std::map<uint32_t, PerSensor> sensors_;
};

}  // namespace sbr::net

#endif  // SBR_NET_BASE_STATION_H_
