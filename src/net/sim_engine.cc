#include "net/sim_engine.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "net/frame_check.h"
#include "obs/metrics.h"
#include "util/serialize.h"

namespace sbr::net {
namespace {

/// Gauge rounding that tolerates the NaN sentinel (and any other
/// non-finite figure): llround on a NaN is undefined behaviour, and the
/// registry view is a dashboard, so non-finite rounds to 0.
int64_t RoundGauge(double v) {
  return std::isfinite(v) ? static_cast<int64_t>(std::llround(v)) : 0;
}

/// The null lifecycle policy NetworkSim runs under.
LifecycleHooks* NullHooks() {
  static LifecycleHooks hooks;
  return &hooks;
}

}  // namespace

double SimulationReport::CompressionFactor() const {
  return total_values_sent == 0
             ? 0.0
             : static_cast<double>(total_values_raw) /
                   static_cast<double>(total_values_sent);
}

double SimulationReport::EnergySavingFactor() const {
  // A run that spent nothing has no meaningful saving factor; 0.0 would
  // claim "no saving" for the cheapest run possible. NaN is the documented
  // sentinel (see sim_engine.h).
  return total_energy_nj == 0.0 ? std::numeric_limits<double>::quiet_NaN()
                                : total_raw_energy_nj / total_energy_nj;
}

void SimulationReport::PublishMetrics(obs::MetricsRegistry* registry) const {
  if (!obs::Enabled() || registry == nullptr) return;
  // Dynamic names, so the cached-reference macros do not apply; this runs
  // once per report, far from any hot path. Doubles (energy, sse) are
  // rounded through the non-finite-safe RoundGauge — the registry view is
  // a gauge dashboard, the report struct remains the exact figure.
  auto set = [registry](const std::string& name, int64_t v) {
    registry->GetGauge(name).Set(v);
  };
  set("sim.values_sent", static_cast<int64_t>(total_values_sent));
  set("sim.values_raw", static_cast<int64_t>(total_values_raw));
  set("sim.energy_nj", RoundGauge(total_energy_nj));
  set("sim.raw_energy_nj", RoundGauge(total_raw_energy_nj));
  set("sim.sse", RoundGauge(total_sse));
  // x1000 fixed-point so the dashboard keeps sub-integer saving factors;
  // the NaN sentinel (nothing spent) rounds to 0 rather than tripping UB.
  set("sim.energy_saving_x1000", RoundGauge(EnergySavingFactor() * 1000.0));
  set("sim.chunks_lost", static_cast<int64_t>(total_chunks_lost));
  set("sim.corrupt_frames", static_cast<int64_t>(total_corrupt_frames));
  set("sim.duplicates_suppressed",
      static_cast<int64_t>(total_duplicates_suppressed));
  set("sim.resyncs", static_cast<int64_t>(total_resyncs));
  set("sim.degraded_batches", static_cast<int64_t>(total_degraded_batches));
  set("sim.nodes", static_cast<int64_t>(nodes.size()));
  for (const NodeReport& nr : nodes) {
    const std::string p = "node." + std::to_string(nr.id) + ".";
    set(p + "tx_values", static_cast<int64_t>(nr.values_sent));
    set(p + "raw_values", static_cast<int64_t>(nr.values_raw));
    set(p + "retries", static_cast<int64_t>(nr.retransmissions));
    set(p + "energy_nj", RoundGauge(nr.energy.total_nj()));
    set(p + "chunks_lost", static_cast<int64_t>(nr.chunks_lost));
    set(p + "corrupt_frames",
        static_cast<int64_t>(nr.corrupt_frames_detected));
    set(p + "resyncs", static_cast<int64_t>(nr.resyncs_triggered));
    set(p + "forwarded_copies", static_cast<int64_t>(nr.forwarded_copies));
    set(p + "sse", RoundGauge(nr.sse));
  }
}

void RelayCharges::Reset(size_t n) {
  energy.assign(n, std::vector<EnergyAccount>(n));
  copies.assign(n, std::vector<size_t>(n, 0));
  values.assign(n, std::vector<size_t>(n, 0));
}

SimEngine::SimEngine(BaseStation* station, EnergyModel energy,
                     EngineOptions options, LifecycleHooks* hooks)
    : station_(station),
      energy_(energy),
      options_(options),
      hooks_(hooks != nullptr ? hooks : NullHooks()) {}

StatusOr<SimEngine::DeliveryOutcome> SimEngine::DeliverFrame(
    const core::Frame& frame, size_t value_count, EngineRoute* route,
    const DeliverySink& sink) {
  BinaryWriter writer;
  frame.Serialize(&writer);
  const std::vector<uint8_t>& wire = writer.buffer();
  if (options_.emit_obs) {
    SBR_OBS_COUNT("net.tx.frames", 1);
    SBR_OBS_COUNT("net.tx.bytes", wire.size());
    SBR_OBS_HIST("net.tx.frame_bytes", wire.size());
  }

  // Stop-and-wait with end-to-end acknowledgement: each attempt pushes one
  // fresh copy through every hop's fault process; retries back off
  // exponentially and are charged to the origin's energy account.
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (!sink.node->RetryAllowed(sink.energy->total_nj())) {
        // Past the energy-aware retry budget: shed the retry rather than
        // the next sensing round. The frame falls through to abandonment
        // and the loss surfaces through the usual resync/gap machinery.
        ++*sink.retries_shed;
        if (options_.emit_obs) SBR_OBS_COUNT("net.tx.retries_shed", 1);
        break;
      }
      ++*sink.retransmissions;
      if (options_.emit_obs) SBR_OBS_COUNT("net.tx.retries", 1);
      const size_t slots = sink.node->NextBackoffSlots(attempt);
      *sink.backoff_slots += slots;
      energy_.ChargeBackoff(slots, sink.energy);
    }
    std::vector<std::vector<uint8_t>> copies;
    copies.push_back(wire);
    for (size_t h = 0; h < route->hops.size() && !copies.empty(); ++h) {
      EngineHop& hop = route->hops[h];
      if (h > 0 && hooks_->HopDown(hop.node)) {
        // Partition: the relay is dark, so copies reaching it vanish and
        // its dead radio transmits (and is charged) nothing. The origin
        // already paid for the hops the copies did cross.
        copies.clear();
        break;
      }
      std::vector<std::vector<uint8_t>> next;
      for (auto& copy : copies) {
        // Forwarding hops classify each arriving copy with the same
        // envelope check the station applies — a malformed frame gets the
        // identical verdict at every hop — but never drop: enforcement
        // stays at the station, so relayed delivery and energy are
        // untouched by the classification.
        if (h > 0 && sink.malformed_relayed != nullptr &&
            !FrameEnvelopeOk(copy)) {
          ++*sink.malformed_relayed;
          if (options_.emit_obs) SBR_OBS_COUNT("net.relay.malformed", 1);
        }
        // Every copy entering a hop pays one hop of radio energy, whether
        // or not the hop delivers it — charged to whichever node transmits
        // the hop: the origin for hop 0 (and every hop of a legacy private
        // chain), the forwarding relay otherwise.
        energy_.ChargeTransmission(value_count, 1, hop.account);
        *hop.charged_values += value_count;
        if (hop.forwarded_copies != nullptr) ++*hop.forwarded_copies;
        auto out = hop.channel->Transmit(std::move(copy));
        for (auto& o : out) next.push_back(std::move(o));
      }
      copies = std::move(next);
    }

    bool accepted = false;
    bool desync = false;
    for (auto& copy : copies) {
      auto ack = StationReceive(copy, sink.corrupt_frames);
      if (!ack.ok()) return ack.status();
      // Only a CRC-clean ack for this frame's identity settles its fate;
      // acks for held frames released from earlier transmits, and corrupt
      // NACKs (which carry no trustworthy identity), do not.
      if (ack->type == AckType::kCorrupt) continue;
      if (ack->sensor_id != frame.sensor_id || ack->seq != frame.seq) {
        continue;
      }
      switch (ack->type) {
        case AckType::kAccept:
          accepted = true;
          break;
        case AckType::kDuplicate:  // an earlier copy already made it
        case AckType::kBuffered:   // held in the reorder window: delivered
          // Under strict acceptance (ChaosSim) neither settles the frame:
          // the shadow history must record exactly what the station
          // ingested, and these acks carry no ingested payload.
          if (!options_.strict_accept) accepted = true;
          break;
        case AckType::kDesync:
          desync = true;
          break;
        default:
          break;
      }
    }
    if (accepted) {
      SBR_RETURN_IF_ERROR(hooks_->OnFrameAccepted(frame, *route));
      return DeliveryOutcome::kAccepted;
    }
    // Retrying the same frame cannot cure a desync; the caller must resync.
    if (desync) {
      if (options_.emit_obs) SBR_OBS_COUNT("net.tx.desyncs", 1);
      return DeliveryOutcome::kDesync;
    }
  }
  if (sink.frames_abandoned != nullptr) ++*sink.frames_abandoned;
  if (options_.emit_obs) SBR_OBS_COUNT("net.tx.abandoned", 1);
  return DeliveryOutcome::kAbandoned;
}

StatusOr<bool> SimEngine::TryResync(bool recover_batch, EngineRoute* route,
                                    const DeliverySink& sink) {
  SensorNode* node = sink.node;
  // The snapshot opens a new epoch and carries the node's report of chunks
  // lost for good, which the station turns into explicit DataLoss gaps.
  core::Frame snap = node->BuildSnapshotFrame();
  const size_t snap_values = BytesToValues(snap.payload.size());
  if (sink.values_sent != nullptr) *sink.values_sent += snap_values;
  auto delivered = DeliverFrame(
      snap, OnAirValues(energy_.params(), snap_values), route, sink);
  if (!delivered.ok()) return delivered.status();
  if (*delivered != DeliveryOutcome::kAccepted) return false;
  node->MarkSnapshotDelivered();
  node->set_needs_resync(false);
  if (!recover_batch) return true;

  // Ship the affected batch re-encoded self-contained: plain linear
  // models, no base-signal references, decodable regardless of how much
  // base state the station missed.
  auto degraded = node->EncodeSelfContained();
  if (!degraded.ok()) return degraded.status();
  const size_t values = degraded->ValueCount();
  core::Frame frame = node->MakeDataFrame(*degraded);
  if (sink.values_sent != nullptr) *sink.values_sent += values;
  auto outcome = DeliverFrame(frame, OnAirValues(energy_.params(), values),
                              route, sink);
  if (!outcome.ok()) return outcome.status();
  if (*outcome == DeliveryOutcome::kAccepted) {
    node->MarkChunkDelivered();
    if (sink.chunks_delivered != nullptr) ++*sink.chunks_delivered;
    return true;
  }
  if (*outcome == DeliveryOutcome::kDesync) node->set_needs_resync(true);
  return false;
}

Status SimEngine::ResolveChunk(const core::Transmission& tx,
                               EngineRoute* route,
                               const DeliverySink& sink) {
  SensorNode* node = sink.node;
  // A pending resync (desynchronized station, lost chunks not yet
  // reported, crash recovery) must be resolved first — the gap report
  // travels in the snapshot and keeps the station's timeline aligned.
  if (options_.resync_enabled && node->needs_resync()) {
    for (size_t round = 0;
         round < options_.max_resync_rounds && node->needs_resync();
         ++round) {
      auto ok = TryResync(/*recover_batch=*/false, route, sink);
      if (!ok.ok()) return ok.status();
    }
    if (node->needs_resync()) {
      // Still desynchronized: this chunk cannot reach the station in a
      // decodable form. It joins the next successful snapshot's report.
      node->RecordLostChunk();
      if (sink.chunks_lost != nullptr) ++*sink.chunks_lost;
      return Status::Ok();
    }
  }

  const size_t values = tx.ValueCount();
  core::Frame frame = node->MakeDataFrame(tx);
  if (sink.values_sent != nullptr) *sink.values_sent += values;
  auto outcome = DeliverFrame(frame, OnAirValues(energy_.params(), values),
                              route, sink);
  if (!outcome.ok()) return outcome.status();
  if (*outcome == DeliveryOutcome::kAccepted) {
    node->MarkChunkDelivered();
    if (sink.chunks_delivered != nullptr) ++*sink.chunks_delivered;
    return Status::Ok();
  }

  if (options_.resync_enabled) {
    for (size_t round = 0; round < options_.max_resync_rounds; ++round) {
      auto recovered = TryResync(/*recover_batch=*/true, route, sink);
      if (!recovered.ok()) return recovered.status();
      if (*recovered) return Status::Ok();
    }
  }
  // The chunk is gone for good. Record it loudly; with resync enabled the
  // loss surfaces as a DataLoss gap via the next snapshot, and with resync
  // disabled the station's own gap declaration covers it.
  node->RecordLostChunk();
  if (sink.chunks_lost != nullptr) ++*sink.chunks_lost;
  return Status::Ok();
}

Status SimEngine::DrainResyncs(EngineRoute* route,
                               const DeliverySink& sink) {
  if (!options_.resync_enabled) return Status::Ok();
  for (size_t round = 0;
       round < options_.max_resync_rounds && sink.node->needs_resync();
       ++round) {
    auto ok = TryResync(/*recover_batch=*/false, route, sink);
    if (!ok.ok()) return ok.status();
  }
  return Status::Ok();
}

Status SimEngine::FlushRoute(EngineRoute* route, const DeliverySink& sink) {
  const size_t num_hops = route->hops.size();
  for (size_t h = 0; h < num_hops; ++h) {
    std::vector<std::vector<uint8_t>> copies = route->hops[h].channel->Flush();
    for (size_t g = h + 1; g < num_hops && !copies.empty(); ++g) {
      EngineHop& hop = route->hops[g];
      std::vector<std::vector<uint8_t>> next;
      for (auto& copy : copies) {
        const size_t flush_values = BytesToValues(copy.size());
        energy_.ChargeTransmission(flush_values, 1, hop.account);
        *hop.charged_values += flush_values;
        if (hop.forwarded_copies != nullptr) ++*hop.forwarded_copies;
        auto out = hop.channel->Transmit(std::move(copy));
        for (auto& o : out) next.push_back(std::move(o));
      }
      copies = std::move(next);
    }
    for (auto& copy : copies) {
      auto ack = StationReceive(copy, sink.corrupt_frames);
      if (!ack.ok()) return ack.status();
    }
  }
  return Status::Ok();
}

StatusOr<FrameAck> SimEngine::StationReceive(std::span<const uint8_t> bytes,
                                             size_t* corrupt_out) {
  std::lock_guard<std::mutex> lock(station_mu_);
  const size_t corrupt_before = station_->total_stats().corrupt_frames;
  auto ack = station_->ReceiveBytes(bytes);
  if (corrupt_out != nullptr) {
    *corrupt_out += station_->total_stats().corrupt_frames - corrupt_before;
  }
  return ack;
}

void SimEngine::MergeRelayCharges(const RelayCharges& charges,
                                  std::vector<NodeReport>* reports) {
  if (charges.empty()) return;  // legacy star runs accumulate no relay rows
  const size_t n = reports->size();
  for (size_t origin = 0; origin < n; ++origin) {
    for (size_t relay = 0; relay < n; ++relay) {
      const EnergyAccount& a = charges.energy[origin][relay];
      NodeReport& rr = (*reports)[relay];
      rr.energy.tx_nj += a.tx_nj;
      rr.energy.rx_nj += a.rx_nj;
      rr.energy.overhear_nj += a.overhear_nj;
      rr.energy.cpu_nj += a.cpu_nj;
      rr.energy.backoff_nj += a.backoff_nj;
      rr.forwarded_copies += charges.copies[origin][relay];
      rr.charged_values += charges.values[origin][relay];
    }
  }
}

SimulationReport SimEngine::BuildReport(std::vector<NodeReport> reports) {
  SimulationReport report;
  for (NodeReport& nr : reports) {
    report.total_values_sent += nr.values_sent;
    report.total_values_raw += nr.values_raw;
    report.total_energy_nj += nr.energy.total_nj();
    report.total_raw_energy_nj += nr.raw_energy_nj;
    report.total_sse += nr.sse;
    report.total_chunks_lost += nr.chunks_lost;
    report.total_corrupt_frames += nr.corrupt_frames_detected;
    report.total_duplicates_suppressed += nr.duplicates_suppressed;
    report.total_resyncs += nr.resyncs_triggered;
    report.total_degraded_batches += nr.degraded_batches;
    report.nodes.push_back(std::move(nr));
  }
  return report;
}

}  // namespace sbr::net
