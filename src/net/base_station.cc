#include "net/base_station.h"

#include <algorithm>

#include "net/frame_check.h"
#include "obs/metrics.h"
#include "storage/query_service.h"

namespace sbr::net {
namespace {

// Station protocol-checkpoint blob format version.
constexpr uint8_t kStationCheckpointVersion = 1;

void AddStats(const ProtocolStats& from, ProtocolStats* to) {
  to->frames_accepted += from.frames_accepted;
  to->corrupt_frames += from.corrupt_frames;
  to->duplicates_suppressed += from.duplicates_suppressed;
  to->buffered_out_of_order += from.buffered_out_of_order;
  to->gap_chunks += from.gap_chunks;
  to->resync_requests += from.resync_requests;
  to->snapshots_applied += from.snapshots_applied;
  to->degraded_batches += from.degraded_batches;
  to->stale_frames_rejected += from.stale_frames_rejected;
}

}  // namespace

BaseStation::BaseStation(size_t m_base, std::string log_dir,
                         size_t reorder_window, bool persist_protocol_state)
    : m_base_(m_base),
      log_dir_(std::move(log_dir)),
      reorder_window_(reorder_window == 0 ? 1 : reorder_window),
      persist_protocol_state_(persist_protocol_state) {}

StatusOr<BaseStation::PerSensor*> BaseStation::GetOrCreate(
    uint32_t sensor_id) {
  auto it = sensors_.find(sensor_id);
  if (it != sensors_.end()) return &it->second;

  storage::ChunkLog log;
  if (!log_dir_.empty()) {
    auto opened = storage::ChunkLog::Open(
        log_dir_ + "/sensor_" + std::to_string(sensor_id) + ".log");
    if (!opened.ok()) return opened.status();
    log = std::move(opened).value();
  }
  // Replay any recovered records so the history matches the log.
  auto history = log.empty()
                     ? StatusOr<storage::HistoryStore>(
                           storage::HistoryStore(m_base_))
                     : storage::HistoryStore::FromLog(log, m_base_);
  if (!history.ok()) return history.status();
  auto [pos, inserted] = sensors_.emplace(
      sensor_id, PerSensor{std::move(log), std::move(history).value()});
  (void)inserted;
  PerSensor* s = &pos->second;
  s->id = sensor_id;
  if (persist_protocol_state_ && !s->log.empty()) {
    SBR_RETURN_IF_ERROR(RestoreProtocolState(s));
  }
  if (query_service_ != nullptr && !s->log.empty()) {
    SBR_RETURN_IF_ERROR(ReplayIntoQueryService(sensor_id, s->log));
  }
  return s;
}

void BaseStation::ForwardToQueryService(uint32_t sensor_id,
                                        const core::Transmission& t) {
  if (query_service_ == nullptr) return;
  if (!query_service_->Ingest(sensor_id, t).ok()) {
    // The station's own history accepted this record, so a service-side
    // rejection is an internal disagreement; keep the two chunk timelines
    // aligned with an explicit service-side gap and count the event.
    (void)query_service_->MarkGap(sensor_id, 1);
    SBR_OBS_COUNT("net.station.query_forward_gaps", 1);
  }
}

Status BaseStation::ReplayIntoQueryService(uint32_t sensor_id,
                                           const storage::ChunkLog& log) {
  return storage::ReplayLog(log, sensor_id, query_service_);
}

Status BaseStation::AppendProtocolCheckpoint(PerSensor* s) {
  if (!persist_protocol_state_) return Status::Ok();
  BinaryWriter writer;
  writer.PutU8(kStationCheckpointVersion);
  writer.PutU64(s->expected_seq);
  writer.PutU32(s->epoch);
  writer.PutU8(s->awaiting_resync ? 1 : 0);
  writer.PutU64(s->stats.frames_accepted);
  writer.PutU64(s->stats.duplicates_suppressed);
  writer.PutU64(s->stats.buffered_out_of_order);
  writer.PutU64(s->stats.gap_chunks);
  writer.PutU64(s->stats.resync_requests);
  writer.PutU64(s->stats.snapshots_applied);
  writer.PutU64(s->stats.degraded_batches);
  writer.PutU64(s->stats.stale_frames_rejected);
  SBR_OBS_COUNT("net.station.checkpoints", 1);
  return s->log.AppendCheckpoint(writer.TakeBuffer());
}

Status BaseStation::RestoreProtocolState(PerSensor* s) {
  const size_t checkpoint = s->log.LastCheckpointIndex();
  size_t replay_from = 0;
  if (checkpoint != storage::ChunkLog::kNoCheckpoint) {
    auto blob = s->log.ReadCheckpoint(checkpoint);
    if (!blob.ok()) return blob.status();
    BinaryReader reader(*blob);
    uint8_t version = 0, awaiting = 0;
    SBR_RETURN_IF_ERROR(reader.GetU8(&version));
    if (version != kStationCheckpointVersion) {
      return Status::DataLoss("unsupported station checkpoint version " +
                              std::to_string(version));
    }
    SBR_RETURN_IF_ERROR(reader.GetU64(&s->expected_seq));
    SBR_RETURN_IF_ERROR(reader.GetU32(&s->epoch));
    SBR_RETURN_IF_ERROR(reader.GetU8(&awaiting));
    s->awaiting_resync = awaiting != 0;
    ProtocolStats& st = s->stats;
    uint64_t v = 0;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.frames_accepted = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.duplicates_suppressed = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.buffered_out_of_order = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.gap_chunks = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.resync_requests = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.snapshots_applied = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.degraded_batches = v;
    SBR_RETURN_IF_ERROR(reader.GetU64(&v)); st.stale_frames_rejected = v;
    replay_from = checkpoint + 1;
  }
  // Roll the state machine forward over whatever landed in the log after
  // the checkpoint (crash between an append and its checkpoint, or log
  // recovery rewriting the tail). Sequence numbers advance with each
  // surviving transmission; anything that signals lost or re-anchored
  // state forces a resync handshake before new data is trusted.
  for (size_t i = replay_from; i < s->log.size(); ++i) {
    switch (s->log.record_type(i)) {
      case storage::RecordType::kTransmission: {
        auto t = s->log.Read(i);
        if (!t.ok()) return t.status();
        ++s->expected_seq;
        ++s->stats.frames_accepted;
        if (t->base_kind == core::BaseKind::kNone) {
          ++s->stats.degraded_batches;
        }
        break;
      }
      case storage::RecordType::kGap: {
        auto chunks = s->log.ReadGap(i);
        if (!chunks.ok()) return chunks.status();
        s->stats.gap_chunks += *chunks;
        s->awaiting_resync = true;
        break;
      }
      case storage::RecordType::kSnapshot:
        // The snapshot's frame header (seq, epoch) was not persisted with
        // it, so the post-restart epoch cannot be trusted: demand a fresh
        // resync instead of guessing.
        ++s->stats.snapshots_applied;
        s->awaiting_resync = true;
        break;
      case storage::RecordType::kCheckpoint:
        break;  // older checkpoint, superseded
    }
  }
  // Recovery that dropped, rewrote or de-anchored anything means the
  // decoder replay no longer mirrors the sensor's base signal and the
  // frontier may be stale: no data is trusted until a snapshot handshake.
  if (s->log.dropped_records() > 0 || s->log.quarantined_records() > 0 ||
      s->log.recovered_lineage_broken()) {
    s->awaiting_resync = true;
  }
  // The per-sensor counters re-enter the station-wide aggregate so the
  // totals keep reconciling after a restart.
  AddStats(s->stats, &total_);
  SBR_OBS_COUNT("net.station.recoveries", 1);
  return Status::Ok();
}

Status BaseStation::Receive(uint32_t sensor_id, const core::Transmission& t) {
  auto sensor = GetOrCreate(sensor_id);
  if (!sensor.ok()) return sensor.status();
  SBR_RETURN_IF_ERROR((*sensor)->log.Append(t));
  SBR_RETURN_IF_ERROR((*sensor)->history.Ingest(t));
  ForwardToQueryService(sensor_id, t);
  return Status::Ok();
}

Status BaseStation::IngestData(PerSensor* s, const core::Transmission& t) {
  SBR_RETURN_IF_ERROR(s->log.Append(t));
  SBR_RETURN_IF_ERROR(s->history.Ingest(t));
  ForwardToQueryService(s->id, t);
  ++s->stats.frames_accepted;
  ++total_.frames_accepted;
  if (t.base_kind == core::BaseKind::kNone) {
    ++s->stats.degraded_batches;
    ++total_.degraded_batches;
  }
  return Status::Ok();
}

Status BaseStation::DeclareGap(PerSensor* s, size_t chunks) {
  if (chunks == 0) return Status::Ok();
  SBR_RETURN_IF_ERROR(s->log.AppendGap(static_cast<uint32_t>(chunks)));
  s->history.MarkGap(chunks);
  if (query_service_ != nullptr) {
    (void)query_service_->MarkGap(s->id, chunks);
  }
  s->stats.gap_chunks += chunks;
  total_.gap_chunks += chunks;
  return Status::Ok();
}

StatusOr<FrameAck> BaseStation::ReceiveBytes(
    std::span<const uint8_t> bytes) {
  SBR_OBS_COUNT("net.rx.frames", 1);
  SBR_OBS_COUNT("net.rx.bytes", bytes.size());
  // The shared envelope check (frame_check.h) — the same classification a
  // relay applies on the forwarding path, so a malformed frame gets the
  // identical verdict at every hop.
  auto frame = CheckFrameEnvelope(bytes);
  if (!frame.ok()) {
    // Corruption is detected, counted and NACKed — never decoded. The
    // sensor id cannot be trusted on a frame that failed its CRC, so the
    // count lives on the aggregate only.
    ++total_.corrupt_frames;
    SBR_OBS_COUNT("net.rx.corrupt", 1);
    FrameAck ack;
    ack.type = AckType::kCorrupt;
    return ack;
  }
  auto ack = HandleFrame(std::move(*frame));
  // One attribution point for the ack outcome, rather than a counter per
  // return path inside the state machine.
  if (ack.ok()) {
    switch (ack->type) {
      case AckType::kAccept:
        SBR_OBS_COUNT("net.rx.accepted", 1);
        break;
      case AckType::kDuplicate:
        SBR_OBS_COUNT("net.rx.duplicates", 1);
        break;
      case AckType::kBuffered:
        SBR_OBS_COUNT("net.rx.buffered", 1);
        break;
      case AckType::kDesync:
        SBR_OBS_COUNT("net.rx.desync", 1);
        break;
      case AckType::kCorrupt:
        SBR_OBS_COUNT("net.rx.corrupt_payload", 1);
        break;
    }
  }
  return ack;
}

StatusOr<FrameAck> BaseStation::HandleFrame(core::Frame frame) {
  auto sensor = GetOrCreate(frame.sensor_id);
  if (!sensor.ok()) return sensor.status();
  PerSensor* s = *sensor;

  FrameAck ack;
  ack.sensor_id = frame.sensor_id;
  ack.seq = frame.seq;
  ack.epoch = s->epoch;

  // Duplicate suppression: anything at or behind the frontier, or already
  // sitting in the reorder window, was seen before.
  if (frame.seq < s->expected_seq || s->pending.count(frame.seq) > 0) {
    ++s->stats.duplicates_suppressed;
    ++total_.duplicates_suppressed;
    ack.type = AckType::kDuplicate;
    return ack;
  }

  if (frame.type == core::FrameType::kSnapshot) {
    BinaryReader reader(frame.payload);
    auto snap = core::BaseSnapshot::Deserialize(&reader);
    if (!snap.ok() || !reader.AtEnd()) {
      ++total_.corrupt_frames;
      ack.type = AckType::kCorrupt;
      return ack;
    }
    if (frame.epoch <= s->epoch && !(s->epoch == 0 && !s->awaiting_resync &&
                                     s->stats.snapshots_applied == 0)) {
      // A replayed snapshot from an epoch we already left behind.
      ++s->stats.duplicates_suppressed;
      ++total_.duplicates_suppressed;
      ack.type = AckType::kDuplicate;
      return ack;
    }
    // The snapshot re-establishes a common base signal and reconciles the
    // timeline. A sensor that tracks deliveries reports its authoritative
    // resolved-chunk count (timeline_chunks), which also covers records
    // this station lost to power failure or log corruption; the shortfall
    // becomes explicit gaps. Sensors without delivery tracking report the
    // incremental lost-for-good count instead — the two schemes are not
    // summed, because the incremental count may include chunks a stale
    // (crash-recovered) sensor checkpoint already reported once.
    // Anything buffered under the old epoch is undecodable and discarded.
    const uint64_t len = s->history.num_chunks();
    const uint64_t target =
        snap->timeline_chunks > 0
            ? std::max<uint64_t>(snap->timeline_chunks, len)
            : len + snap->missing_chunks;
    SBR_RETURN_IF_ERROR(
        DeclareGap(s, target > len ? static_cast<size_t>(target - len) : 0));
    SBR_RETURN_IF_ERROR(s->history.ApplySnapshot(*snap));
    SBR_RETURN_IF_ERROR(s->log.AppendSnapshot(*snap));
    if (query_service_ != nullptr &&
        !query_service_->ApplySnapshot(s->id, *snap).ok()) {
      SBR_OBS_COUNT("net.station.query_forward_snapshot_rejects", 1);
    }
    s->stats.stale_frames_rejected += s->pending.size();
    total_.stale_frames_rejected += s->pending.size();
    s->pending.clear();
    s->epoch = frame.epoch;
    s->expected_seq = frame.seq + 1;
    s->awaiting_resync = false;
    ++s->stats.snapshots_applied;
    ++total_.snapshots_applied;
    ++s->stats.frames_accepted;
    ++total_.frames_accepted;
    SBR_RETURN_IF_ERROR(AppendProtocolCheckpoint(s));
    ack.type = AckType::kAccept;
    ack.epoch = s->epoch;
    return ack;
  }

  // Data frame.
  if (s->awaiting_resync || frame.epoch != s->epoch) {
    // The frame's base-signal lineage is broken: decoding it would produce
    // silent garbage, so it is rejected with an explicit resync request.
    ++s->stats.stale_frames_rejected;
    total_.stale_frames_rejected += 1;
    ++s->stats.resync_requests;
    ++total_.resync_requests;
    ack.type = AckType::kDesync;
    ack.resync_requested = true;
    return ack;
  }

  if (frame.seq == s->expected_seq) {
    BinaryReader reader(frame.payload);
    auto t = core::Transmission::Deserialize(&reader);
    if (!t.ok() || !reader.AtEnd()) {
      ++total_.corrupt_frames;
      ack.type = AckType::kCorrupt;
      return ack;
    }
    if (Status ingest = IngestData(s, *t); !ingest.ok()) {
      // CRC-clean but undecodable (e.g. geometry drift): the stream state
      // is no longer trustworthy — request a resync rather than guessing.
      s->awaiting_resync = true;
      ++s->stats.resync_requests;
      ++total_.resync_requests;
      ack.type = AckType::kDesync;
      ack.resync_requested = true;
      return ack;
    }
    s->expected_seq = frame.seq + 1;
    // Drain the reorder window while it continues the sequence.
    while (!s->pending.empty()) {
      auto next = s->pending.begin();
      if (next->first != s->expected_seq) break;
      core::Frame held = std::move(next->second);
      s->pending.erase(next);
      BinaryReader held_reader(held.payload);
      auto held_t = core::Transmission::Deserialize(&held_reader);
      if (!held_t.ok() || !held_reader.AtEnd()) {
        ++total_.corrupt_frames;
        break;
      }
      if (!IngestData(s, *held_t).ok()) {
        s->awaiting_resync = true;
        break;
      }
      s->expected_seq = held.seq + 1;
    }
    SBR_RETURN_IF_ERROR(AppendProtocolCheckpoint(s));
    ack.type = AckType::kAccept;
    return ack;
  }

  // frame.seq > expected: a hole precedes this frame.
  if (frame.seq - s->expected_seq <= reorder_window_ &&
      s->pending.size() < reorder_window_) {
    s->pending.emplace(frame.seq, std::move(frame));
    ++s->stats.buffered_out_of_order;
    ++total_.buffered_out_of_order;
    ack.type = AckType::kBuffered;
    return ack;
  }

  // The hole is too old to ever fill: the missing frames carried
  // base-signal updates this one may depend on, so it cannot be decoded.
  // How many chunks the hole really cost is NOT derivable from sequence
  // numbers alone (retries, snapshots and control frames consume seqs
  // too); the gap is deferred to the resync handshake, whose snapshot
  // carries the sensor's own loss accounting and re-aligns the frontier.
  s->stats.stale_frames_rejected += s->pending.size() + 1;
  total_.stale_frames_rejected += s->pending.size() + 1;
  s->pending.clear();
  s->awaiting_resync = true;
  ++s->stats.resync_requests;
  ++total_.resync_requests;
  ack.type = AckType::kDesync;
  ack.resync_requested = true;
  return ack;
}

ProtocolStats BaseStation::stats(uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  return it == sensors_.end() ? ProtocolStats() : it->second.stats;
}

StatusOr<const storage::HistoryStore*> BaseStation::History(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.history;
}

StatusOr<const storage::ChunkLog*> BaseStation::Log(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.log;
}

}  // namespace sbr::net
