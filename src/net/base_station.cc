#include "net/base_station.h"

#include "obs/metrics.h"

namespace sbr::net {
namespace {

void AddStats(const ProtocolStats& from, ProtocolStats* to) {
  to->frames_accepted += from.frames_accepted;
  to->corrupt_frames += from.corrupt_frames;
  to->duplicates_suppressed += from.duplicates_suppressed;
  to->buffered_out_of_order += from.buffered_out_of_order;
  to->gap_chunks += from.gap_chunks;
  to->resync_requests += from.resync_requests;
  to->snapshots_applied += from.snapshots_applied;
  to->degraded_batches += from.degraded_batches;
  to->stale_frames_rejected += from.stale_frames_rejected;
}

}  // namespace

BaseStation::BaseStation(size_t m_base, std::string log_dir,
                         size_t reorder_window)
    : m_base_(m_base),
      log_dir_(std::move(log_dir)),
      reorder_window_(reorder_window == 0 ? 1 : reorder_window) {}

StatusOr<BaseStation::PerSensor*> BaseStation::GetOrCreate(
    uint32_t sensor_id) {
  auto it = sensors_.find(sensor_id);
  if (it != sensors_.end()) return &it->second;

  storage::ChunkLog log;
  if (!log_dir_.empty()) {
    auto opened = storage::ChunkLog::Open(
        log_dir_ + "/sensor_" + std::to_string(sensor_id) + ".log");
    if (!opened.ok()) return opened.status();
    log = std::move(opened).value();
  }
  // Replay any recovered records so the history matches the log.
  auto history = log.empty()
                     ? StatusOr<storage::HistoryStore>(
                           storage::HistoryStore(m_base_))
                     : storage::HistoryStore::FromLog(log, m_base_);
  if (!history.ok()) return history.status();
  auto [pos, inserted] = sensors_.emplace(
      sensor_id, PerSensor{std::move(log), std::move(history).value()});
  (void)inserted;
  return &pos->second;
}

Status BaseStation::Receive(uint32_t sensor_id, const core::Transmission& t) {
  auto sensor = GetOrCreate(sensor_id);
  if (!sensor.ok()) return sensor.status();
  SBR_RETURN_IF_ERROR((*sensor)->log.Append(t));
  return (*sensor)->history.Ingest(t);
}

Status BaseStation::IngestData(PerSensor* s, const core::Transmission& t) {
  SBR_RETURN_IF_ERROR(s->log.Append(t));
  SBR_RETURN_IF_ERROR(s->history.Ingest(t));
  ++s->stats.frames_accepted;
  ++total_.frames_accepted;
  if (t.base_kind == core::BaseKind::kNone) {
    ++s->stats.degraded_batches;
    ++total_.degraded_batches;
  }
  return Status::Ok();
}

Status BaseStation::DeclareGap(PerSensor* s, size_t chunks) {
  if (chunks == 0) return Status::Ok();
  SBR_RETURN_IF_ERROR(s->log.AppendGap(static_cast<uint32_t>(chunks)));
  s->history.MarkGap(chunks);
  s->stats.gap_chunks += chunks;
  total_.gap_chunks += chunks;
  return Status::Ok();
}

StatusOr<FrameAck> BaseStation::ReceiveBytes(
    std::span<const uint8_t> bytes) {
  SBR_OBS_COUNT("net.rx.frames", 1);
  SBR_OBS_COUNT("net.rx.bytes", bytes.size());
  auto frame = core::Frame::Parse(bytes);
  if (!frame.ok()) {
    // Corruption is detected, counted and NACKed — never decoded. The
    // sensor id cannot be trusted on a frame that failed its CRC, so the
    // count lives on the aggregate only.
    ++total_.corrupt_frames;
    SBR_OBS_COUNT("net.rx.corrupt", 1);
    FrameAck ack;
    ack.type = AckType::kCorrupt;
    return ack;
  }
  auto ack = HandleFrame(std::move(*frame));
  // One attribution point for the ack outcome, rather than a counter per
  // return path inside the state machine.
  if (ack.ok()) {
    switch (ack->type) {
      case AckType::kAccept:
        SBR_OBS_COUNT("net.rx.accepted", 1);
        break;
      case AckType::kDuplicate:
        SBR_OBS_COUNT("net.rx.duplicates", 1);
        break;
      case AckType::kBuffered:
        SBR_OBS_COUNT("net.rx.buffered", 1);
        break;
      case AckType::kDesync:
        SBR_OBS_COUNT("net.rx.desync", 1);
        break;
      case AckType::kCorrupt:
        SBR_OBS_COUNT("net.rx.corrupt_payload", 1);
        break;
    }
  }
  return ack;
}

StatusOr<FrameAck> BaseStation::HandleFrame(core::Frame frame) {
  auto sensor = GetOrCreate(frame.sensor_id);
  if (!sensor.ok()) return sensor.status();
  PerSensor* s = *sensor;

  FrameAck ack;
  ack.sensor_id = frame.sensor_id;
  ack.seq = frame.seq;
  ack.epoch = s->epoch;

  // Duplicate suppression: anything at or behind the frontier, or already
  // sitting in the reorder window, was seen before.
  if (frame.seq < s->expected_seq || s->pending.count(frame.seq) > 0) {
    ++s->stats.duplicates_suppressed;
    ++total_.duplicates_suppressed;
    ack.type = AckType::kDuplicate;
    return ack;
  }

  if (frame.type == core::FrameType::kSnapshot) {
    BinaryReader reader(frame.payload);
    auto snap = core::BaseSnapshot::Deserialize(&reader);
    if (!snap.ok() || !reader.AtEnd()) {
      ++total_.corrupt_frames;
      ack.type = AckType::kCorrupt;
      return ack;
    }
    if (frame.epoch <= s->epoch && !(s->epoch == 0 && !s->awaiting_resync &&
                                     s->stats.snapshots_applied == 0)) {
      // A replayed snapshot from an epoch we already left behind.
      ++s->stats.duplicates_suppressed;
      ++total_.duplicates_suppressed;
      ack.type = AckType::kDuplicate;
      return ack;
    }
    // The snapshot re-establishes a common base signal. Chunks the sensor
    // reports as lost for good become explicit gaps; anything buffered
    // under the old epoch is undecodable and is discarded.
    SBR_RETURN_IF_ERROR(DeclareGap(s, snap->missing_chunks));
    SBR_RETURN_IF_ERROR(s->history.ApplySnapshot(*snap));
    SBR_RETURN_IF_ERROR(s->log.AppendSnapshot(*snap));
    s->stats.stale_frames_rejected += s->pending.size();
    total_.stale_frames_rejected += s->pending.size();
    s->pending.clear();
    s->epoch = frame.epoch;
    s->expected_seq = frame.seq + 1;
    s->awaiting_resync = false;
    ++s->stats.snapshots_applied;
    ++total_.snapshots_applied;
    ++s->stats.frames_accepted;
    ++total_.frames_accepted;
    ack.type = AckType::kAccept;
    ack.epoch = s->epoch;
    return ack;
  }

  // Data frame.
  if (s->awaiting_resync || frame.epoch != s->epoch) {
    // The frame's base-signal lineage is broken: decoding it would produce
    // silent garbage, so it is rejected with an explicit resync request.
    ++s->stats.stale_frames_rejected;
    total_.stale_frames_rejected += 1;
    ++s->stats.resync_requests;
    ++total_.resync_requests;
    ack.type = AckType::kDesync;
    ack.resync_requested = true;
    return ack;
  }

  if (frame.seq == s->expected_seq) {
    BinaryReader reader(frame.payload);
    auto t = core::Transmission::Deserialize(&reader);
    if (!t.ok() || !reader.AtEnd()) {
      ++total_.corrupt_frames;
      ack.type = AckType::kCorrupt;
      return ack;
    }
    if (Status ingest = IngestData(s, *t); !ingest.ok()) {
      // CRC-clean but undecodable (e.g. geometry drift): the stream state
      // is no longer trustworthy — request a resync rather than guessing.
      s->awaiting_resync = true;
      ++s->stats.resync_requests;
      ++total_.resync_requests;
      ack.type = AckType::kDesync;
      ack.resync_requested = true;
      return ack;
    }
    s->expected_seq = frame.seq + 1;
    // Drain the reorder window while it continues the sequence.
    while (!s->pending.empty()) {
      auto next = s->pending.begin();
      if (next->first != s->expected_seq) break;
      core::Frame held = std::move(next->second);
      s->pending.erase(next);
      BinaryReader held_reader(held.payload);
      auto held_t = core::Transmission::Deserialize(&held_reader);
      if (!held_t.ok() || !held_reader.AtEnd()) {
        ++total_.corrupt_frames;
        break;
      }
      if (!IngestData(s, *held_t).ok()) {
        s->awaiting_resync = true;
        break;
      }
      s->expected_seq = held.seq + 1;
    }
    ack.type = AckType::kAccept;
    return ack;
  }

  // frame.seq > expected: a hole precedes this frame.
  if (frame.seq - s->expected_seq <= reorder_window_ &&
      s->pending.size() < reorder_window_) {
    s->pending.emplace(frame.seq, std::move(frame));
    ++s->stats.buffered_out_of_order;
    ++total_.buffered_out_of_order;
    ack.type = AckType::kBuffered;
    return ack;
  }

  // The hole is too old to ever fill: everything from the expected seq
  // through this frame is lost or undecodable (the missing frames carried
  // base-signal updates the later ones depend on). Declare the gap loudly
  // and demand a resync.
  const size_t lost = frame.seq - s->expected_seq + 1;
  SBR_RETURN_IF_ERROR(DeclareGap(s, lost));
  s->stats.stale_frames_rejected += s->pending.size();
  total_.stale_frames_rejected += s->pending.size();
  s->pending.clear();
  s->expected_seq = frame.seq + 1;
  s->awaiting_resync = true;
  ++s->stats.resync_requests;
  ++total_.resync_requests;
  ack.type = AckType::kDesync;
  ack.resync_requested = true;
  return ack;
}

ProtocolStats BaseStation::stats(uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  return it == sensors_.end() ? ProtocolStats() : it->second.stats;
}

StatusOr<const storage::HistoryStore*> BaseStation::History(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.history;
}

StatusOr<const storage::ChunkLog*> BaseStation::Log(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.log;
}

}  // namespace sbr::net
