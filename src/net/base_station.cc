#include "net/base_station.h"

namespace sbr::net {

BaseStation::BaseStation(size_t m_base, std::string log_dir)
    : m_base_(m_base), log_dir_(std::move(log_dir)) {}

StatusOr<BaseStation::PerSensor*> BaseStation::GetOrCreate(
    uint32_t sensor_id) {
  auto it = sensors_.find(sensor_id);
  if (it != sensors_.end()) return &it->second;

  storage::ChunkLog log;
  if (!log_dir_.empty()) {
    auto opened = storage::ChunkLog::Open(
        log_dir_ + "/sensor_" + std::to_string(sensor_id) + ".log");
    if (!opened.ok()) return opened.status();
    log = std::move(opened).value();
  }
  // Replay any recovered records so the history matches the log.
  auto history = log.empty()
                     ? StatusOr<storage::HistoryStore>(
                           storage::HistoryStore(m_base_))
                     : storage::HistoryStore::FromLog(log, m_base_);
  if (!history.ok()) return history.status();
  auto [pos, inserted] = sensors_.emplace(
      sensor_id, PerSensor{std::move(log), std::move(history).value()});
  (void)inserted;
  return &pos->second;
}

Status BaseStation::Receive(uint32_t sensor_id, const core::Transmission& t) {
  auto sensor = GetOrCreate(sensor_id);
  if (!sensor.ok()) return sensor.status();
  SBR_RETURN_IF_ERROR((*sensor)->log.Append(t));
  return (*sensor)->history.Ingest(t);
}

Status BaseStation::ReceiveBytes(uint32_t sensor_id,
                                 std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  auto t = core::Transmission::Deserialize(&reader);
  if (!t.ok()) return t.status();
  return Receive(sensor_id, *t);
}

StatusOr<const storage::HistoryStore*> BaseStation::History(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.history;
}

StatusOr<const storage::ChunkLog*> BaseStation::Log(
    uint32_t sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("sensor " + std::to_string(sensor_id));
  }
  return &it->second.log;
}

}  // namespace sbr::net
