// Radio energy model for the sensor-network simulation, parameterized from
// the figures the paper cites: on a Berkeley MICA mote, transmitting one
// bit costs about as much energy as 1,000 CPU instructions, and every
// transmitted message is also received (and paid for) by each node within
// radio range along a multi-hop route.
#ifndef SBR_NET_ENERGY_H_
#define SBR_NET_ENERGY_H_

#include <cstddef>

namespace sbr {
class Rng;
}  // namespace sbr

namespace sbr::net {

/// Radio/CPU energy parameters. Defaults approximate a MICA-class mote.
struct EnergyParams {
  double bits_per_value = 32.0;      ///< transmitted values are 32-bit
  double tx_nj_per_bit = 720.0;      ///< transmit energy per bit (nJ)
  double rx_nj_per_bit = 360.0;      ///< receive energy per bit (nJ)
  double cpu_nj_per_instruction = 0.72;  ///< ~1000 instructions per tx bit
  /// Average number of non-addressee neighbors that overhear (and pay rx
  /// for) each broadcast hop.
  double overhear_neighbors = 2.0;
  /// Energy of one exponential-backoff slot while waiting to retransmit
  /// (radio idle-listening for the retry window; MICA-class idle draw).
  double backoff_nj_per_slot = 40.0;
};

/// Accumulated energy cost, in nanojoules, broken down by component.
struct EnergyAccount {
  double tx_nj = 0.0;
  double rx_nj = 0.0;
  double overhear_nj = 0.0;
  double cpu_nj = 0.0;
  double backoff_nj = 0.0;

  double total_nj() const {
    return tx_nj + rx_nj + overhear_nj + cpu_nj + backoff_nj;
  }
  double total_mj() const { return total_nj() * 1e-6; }
};

/// On-air size of a frame in paper-style "values" (32-bit words): the
/// payload's semantic value count plus the fixed frame header. NetworkSim
/// and ChaosSim both charge radio energy through this, so their energy
/// reports stay comparable by construction.
size_t OnAirValues(const EnergyParams& params, size_t payload_values);

/// 32-bit words in an opaque payload (snapshots, flushed residual copies).
size_t BytesToValues(size_t bytes);

/// Retransmit backoff for `attempt` (0-based), in slots: exponential base
/// (capped at 2^10) with jitter drawn from `jitter` uniformly over the
/// upper half of the window, so simultaneously restarted nodes do not
/// produce synchronized retry storms. Attempt 0 (and 1) returns 1 slot
/// without consuming a draw — callers that never retry leave their jitter
/// stream untouched. This is the one backoff formula both simulators
/// charge through (SensorNode::NextBackoffSlots delegates here).
size_t BackoffSlots(size_t attempt, Rng* jitter);

/// Stateless calculator charging an EnergyAccount for network events.
class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = EnergyParams())
      : params_(params) {}

  const EnergyParams& params() const { return params_; }

  /// Charges the transmission of `values` values over `hops` hops: every
  /// hop pays tx at the sender, rx at the receiver, plus overhearing.
  void ChargeTransmission(size_t values, size_t hops,
                          EnergyAccount* account) const;

  /// Charges `instructions` CPU instructions (the encoder's compute).
  void ChargeCpu(double instructions, EnergyAccount* account) const;

  /// Charges `slots` exponential-backoff slots spent between retransmission
  /// attempts of the fault-tolerant protocol.
  void ChargeBackoff(size_t slots, EnergyAccount* account) const;

  /// Energy of sending `values` raw (uncompressed) values over `hops`
  /// hops; the baseline the simulation compares against.
  double RawTransmissionNj(size_t values, size_t hops) const;

 private:
  EnergyParams params_;
};

}  // namespace sbr::net

#endif  // SBR_NET_ENERGY_H_
