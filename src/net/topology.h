// Topology: the routing tree of the sensor network. The paper's SBR
// protocol assumes sensors reach the base station over multi-hop routes;
// this class makes the route structure explicit — parent pointers toward
// the base station, per-node depth, and uplink paths — so relay nodes can
// forward frames hop-by-hop, pay the radio energy for every copy they
// relay, and partition their whole subtree when they crash.
//
// Construction is a pure function of (shape, num_nodes, seed): the same
// options always build the same tree, which is what lets a failing chaos
// run on a random topology be reproduced from nothing but its seed.
#ifndef SBR_NET_TOPOLOGY_H_
#define SBR_NET_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sbr::net {

/// Supported routing-tree shapes over `num_nodes` sensors (node indices
/// 0..n-1; the base station is the implicit root of every tree).
enum class TopologyShape : uint8_t {
  kStar = 0,  ///< every node one hop from the base; no relays (the legacy
              ///< NetworkSim model, kept byte-identical)
  kChain,     ///< node 0 adjacent to the base, node i relays for node i+1
  kBinary,    ///< heap-shaped binary tree rooted at node 0
  kRandom,    ///< seeded random recursive tree (possibly a forest: each
              ///< node attaches to an earlier node or to the base)
};

/// Shape name for reports and CLI flags ("star", "chain", ...).
const char* ToString(TopologyShape shape);

/// Parses a shape name; InvalidArgument on anything unrecognized.
StatusOr<TopologyShape> ParseTopologyShape(std::string_view name);

/// Deterministic construction knobs.
struct TopologyOptions {
  TopologyShape shape = TopologyShape::kStar;
  size_t num_nodes = 0;
  uint64_t seed = 1;  ///< consumed by kRandom only
};

/// An immutable routing tree. Node indices are dense 0..num_nodes()-1 and
/// it is the caller's job to map them onto sensor ids.
class Topology {
 public:
  /// parent() value meaning "the uplink exits straight into the base".
  static constexpr size_t kBase = static_cast<size_t>(-1);

  Topology() = default;
  static Topology Build(const TopologyOptions& options);

  TopologyShape shape() const { return shape_; }
  uint64_t seed() const { return seed_; }
  size_t num_nodes() const { return parent_.size(); }

  /// Next hop toward the base station, or kBase for base-adjacent nodes.
  size_t parent(size_t node) const { return parent_[node]; }

  /// Edges between `node` and the base station (always >= 1).
  size_t depth(size_t node) const { return depth_[node]; }
  size_t max_depth() const { return max_depth_; }

  /// Direct children (nodes whose uplink enters this node).
  const std::vector<size_t>& children(size_t node) const {
    return children_[node];
  }

  /// True if any other node routes through this one.
  bool is_relay(size_t node) const { return !children_[node].empty(); }

  /// Uplink route: path(i)[0] == i, path(i)[h+1] == parent(path(i)[h]);
  /// the final element is base-adjacent, so path(i).size() == depth(i)
  /// and hop h of a frame from node i is transmitted by path(i)[h].
  const std::vector<size_t>& path(size_t node) const { return path_[node]; }

  /// All relay node indices, ascending.
  std::vector<size_t> Relays() const;

  /// Strict descendants of `node` (every node whose uplink path crosses
  /// it), ascending.
  std::vector<size_t> Descendants(size_t node) const;

  /// True if `ancestor` lies strictly on `node`'s path to the base.
  bool IsAncestor(size_t ancestor, size_t node) const;

 private:
  TopologyShape shape_ = TopologyShape::kStar;
  uint64_t seed_ = 1;
  size_t max_depth_ = 0;
  std::vector<size_t> parent_;
  std::vector<size_t> depth_;
  std::vector<std::vector<size_t>> children_;
  std::vector<std::vector<size_t>> path_;
};

}  // namespace sbr::net

#endif  // SBR_NET_TOPOLOGY_H_
