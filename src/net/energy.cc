#include "net/energy.h"

#include <cmath>

#include "core/transmission.h"

namespace sbr::net {

size_t OnAirValues(const EnergyParams& params, size_t payload_values) {
  const size_t header = static_cast<size_t>(std::ceil(
      core::Frame::kHeaderBytes * 8.0 / params.bits_per_value));
  return payload_values + header;
}

size_t BytesToValues(size_t bytes) { return (bytes + 3) / 4; }

void EnergyModel::ChargeTransmission(size_t values, size_t hops,
                                     EnergyAccount* account) const {
  const double bits = static_cast<double>(values) * params_.bits_per_value;
  const double h = static_cast<double>(hops);
  account->tx_nj += bits * params_.tx_nj_per_bit * h;
  account->rx_nj += bits * params_.rx_nj_per_bit * h;
  account->overhear_nj +=
      bits * params_.rx_nj_per_bit * params_.overhear_neighbors * h;
}

void EnergyModel::ChargeCpu(double instructions,
                            EnergyAccount* account) const {
  account->cpu_nj += instructions * params_.cpu_nj_per_instruction;
}

void EnergyModel::ChargeBackoff(size_t slots,
                                EnergyAccount* account) const {
  account->backoff_nj +=
      static_cast<double>(slots) * params_.backoff_nj_per_slot;
}

double EnergyModel::RawTransmissionNj(size_t values, size_t hops) const {
  const double bits = static_cast<double>(values) * params_.bits_per_value;
  const double h = static_cast<double>(hops);
  return bits * h *
         (params_.tx_nj_per_bit +
          params_.rx_nj_per_bit * (1.0 + params_.overhear_neighbors));
}

}  // namespace sbr::net
