#include "net/energy.h"

#include <algorithm>
#include <cmath>

#include "core/transmission.h"
#include "util/rng.h"

namespace sbr::net {

size_t OnAirValues(const EnergyParams& params, size_t payload_values) {
  const size_t header = static_cast<size_t>(std::ceil(
      core::Frame::kHeaderBytes * 8.0 / params.bits_per_value));
  return payload_values + header;
}

size_t BytesToValues(size_t bytes) { return (bytes + 3) / 4; }

size_t BackoffSlots(size_t attempt, Rng* jitter) {
  const size_t base = size_t{1} << std::min<size_t>(attempt, 10);
  // base <= 1 returns without touching the jitter stream: the stream must
  // advance exactly once per real backoff window or replay breaks.
  if (base <= 1) return 1;
  // Jitter over the upper half of the exponential window: the mean stays
  // ~3/4 of the deterministic schedule while any two nodes' retry trains
  // decorrelate after the first collision.
  const size_t half = base / 2;
  return half + static_cast<size_t>(
                    jitter->UniformInt(0, static_cast<int64_t>(half)));
}

void EnergyModel::ChargeTransmission(size_t values, size_t hops,
                                     EnergyAccount* account) const {
  const double bits = static_cast<double>(values) * params_.bits_per_value;
  const double h = static_cast<double>(hops);
  account->tx_nj += bits * params_.tx_nj_per_bit * h;
  account->rx_nj += bits * params_.rx_nj_per_bit * h;
  account->overhear_nj +=
      bits * params_.rx_nj_per_bit * params_.overhear_neighbors * h;
}

void EnergyModel::ChargeCpu(double instructions,
                            EnergyAccount* account) const {
  account->cpu_nj += instructions * params_.cpu_nj_per_instruction;
}

void EnergyModel::ChargeBackoff(size_t slots,
                                EnergyAccount* account) const {
  account->backoff_nj +=
      static_cast<double>(slots) * params_.backoff_nj_per_slot;
}

double EnergyModel::RawTransmissionNj(size_t values, size_t hops) const {
  const double bits = static_cast<double>(values) * params_.bits_per_value;
  const double h = static_cast<double>(hops);
  return bits * h *
         (params_.tx_nj_per_bit +
          params_.rx_nj_per_bit * (1.0 + params_.overhear_neighbors));
}

}  // namespace sbr::net
