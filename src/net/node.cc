#include "net/node.h"

namespace sbr::net {

SensorNode::SensorNode(uint32_t id, size_t num_signals, size_t chunk_len,
                       core::EncoderOptions encoder_options)
    : id_(id),
      num_signals_(num_signals),
      chunk_len_(chunk_len),
      buffer_(num_signals * chunk_len, 0.0),
      encoder_(std::move(encoder_options), &workspace_) {}

StatusOr<std::optional<core::Transmission>> SensorNode::AddSamples(
    std::span<const double> sample_per_signal) {
  if (sample_per_signal.size() != num_signals_) {
    return Status::InvalidArgument(
        "expected " + std::to_string(num_signals_) + " samples, got " +
        std::to_string(sample_per_signal.size()));
  }
  for (size_t s = 0; s < num_signals_; ++s) {
    buffer_[s * chunk_len_ + filled_] = sample_per_signal[s];
  }
  ++filled_;
  if (filled_ < chunk_len_) {
    return std::optional<core::Transmission>();
  }
  filled_ = 0;
  auto t = encoder_.EncodeChunk(buffer_, num_signals_);
  if (!t.ok()) return t.status();
  // Keep the raw batch around: if this transmission's frame is lost, the
  // batch is re-encoded self-contained instead of being silently dropped.
  last_batch_ = buffer_;
  has_last_batch_ = true;
  ++transmissions_;
  return std::optional<core::Transmission>(std::move(t).value());
}

core::Frame SensorNode::MakeDataFrame(const core::Transmission& t) {
  return core::MakeDataFrame(id_, seq_++, epoch_, t);
}

StatusOr<core::Transmission> SensorNode::EncodeSelfContained() {
  if (!has_last_batch_) {
    return Status::FailedPrecondition("no batch has been encoded yet");
  }
  core::EncoderOptions opts = encoder_.options();
  opts.base_strategy = core::BaseStrategy::kNone;
  opts.base_provider = nullptr;
  opts.update_base = false;
  core::SbrEncoder standalone(std::move(opts), &degraded_workspace_);
  auto t = standalone.EncodeChunk(last_batch_, num_signals_);
  if (!t.ok()) return t.status();
  ++degraded_batches_;
  return t;
}

core::Frame SensorNode::BuildSnapshotFrame() {
  ++epoch_;
  ++resyncs_;
  core::BaseSnapshot snap;
  snap.missing_chunks = static_cast<uint32_t>(unreported_lost_);
  snap.w = static_cast<uint32_t>(encoder_.w());
  const core::BaseSignal& base = encoder_.base_signal();
  switch (encoder_.options().base_strategy) {
    case core::BaseStrategy::kDctFixed:
      snap.base_kind = core::BaseKind::kDctFixed;
      break;
    case core::BaseStrategy::kNone:
      snap.base_kind = core::BaseKind::kNone;
      break;
    default:
      snap.base_kind = core::BaseKind::kStored;
      break;
  }
  if (snap.base_kind == core::BaseKind::kStored && base.w() > 0) {
    std::span<const double> flat = base.values();
    snap.slots.reserve(base.used_slots());
    for (size_t slot = 0; slot < base.used_slots(); ++slot) {
      core::BaseUpdate bu;
      bu.slot = static_cast<uint32_t>(slot);
      bu.values.assign(flat.begin() + slot * base.w(),
                       flat.begin() + (slot + 1) * base.w());
      snap.slots.push_back(std::move(bu));
    }
  }
  return core::MakeSnapshotFrame(id_, seq_++, epoch_, snap);
}

void SensorNode::RecordLostChunk() {
  ++unreported_lost_;
  ++lost_chunks_;
  needs_resync_ = true;
}

}  // namespace sbr::net
