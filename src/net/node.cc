#include "net/node.h"

namespace sbr::net {

SensorNode::SensorNode(uint32_t id, size_t num_signals, size_t chunk_len,
                       core::EncoderOptions encoder_options)
    : id_(id),
      num_signals_(num_signals),
      chunk_len_(chunk_len),
      buffer_(num_signals * chunk_len, 0.0),
      encoder_(std::move(encoder_options)) {}

StatusOr<std::optional<core::Transmission>> SensorNode::AddSamples(
    std::span<const double> sample_per_signal) {
  if (sample_per_signal.size() != num_signals_) {
    return Status::InvalidArgument(
        "expected " + std::to_string(num_signals_) + " samples, got " +
        std::to_string(sample_per_signal.size()));
  }
  for (size_t s = 0; s < num_signals_; ++s) {
    buffer_[s * chunk_len_ + filled_] = sample_per_signal[s];
  }
  ++filled_;
  if (filled_ < chunk_len_) {
    return std::optional<core::Transmission>();
  }
  filled_ = 0;
  auto t = encoder_.EncodeChunk(buffer_, num_signals_);
  if (!t.ok()) return t.status();
  ++transmissions_;
  return std::optional<core::Transmission>(std::move(t).value());
}

}  // namespace sbr::net
