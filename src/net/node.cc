#include "net/node.h"

#include <algorithm>

#include "net/energy.h"
#include "util/serialize.h"

namespace sbr::net {
namespace {

// Node-checkpoint blob format version (see SaveCheckpoint).
constexpr uint8_t kCheckpointVersion = 1;

}  // namespace

SensorNode::SensorNode(uint32_t id, size_t num_signals, size_t chunk_len,
                       core::EncoderOptions encoder_options)
    : id_(id),
      num_signals_(num_signals),
      chunk_len_(chunk_len),
      buffer_(num_signals * chunk_len, 0.0),
      encoder_(std::move(encoder_options), &workspace_),
      backoff_rng_(0x6a09e667f3bcc909ull ^ (uint64_t{id} * 0x100000001b3ull)) {
}

StatusOr<std::optional<core::Transmission>> SensorNode::AddSamples(
    std::span<const double> sample_per_signal) {
  if (sample_per_signal.size() != num_signals_) {
    return Status::InvalidArgument(
        "expected " + std::to_string(num_signals_) + " samples, got " +
        std::to_string(sample_per_signal.size()));
  }
  for (size_t s = 0; s < num_signals_; ++s) {
    buffer_[s * chunk_len_ + filled_] = sample_per_signal[s];
  }
  ++filled_;
  if (filled_ < chunk_len_) {
    return std::optional<core::Transmission>();
  }
  filled_ = 0;
  auto t = encoder_.EncodeChunk(buffer_, num_signals_);
  if (!t.ok()) return t.status();
  // Keep the raw batch around: if this transmission's frame is lost, the
  // batch is re-encoded self-contained instead of being silently dropped.
  last_batch_ = buffer_;
  has_last_batch_ = true;
  ++transmissions_;
  return std::optional<core::Transmission>(std::move(t).value());
}

core::Frame SensorNode::MakeDataFrame(const core::Transmission& t) {
  return core::MakeDataFrame(id_, seq_++, epoch_, t);
}

StatusOr<core::Transmission> SensorNode::EncodeSelfContained() {
  if (!has_last_batch_) {
    return Status::FailedPrecondition("no batch has been encoded yet");
  }
  core::EncoderOptions opts = encoder_.options();
  opts.base_strategy = core::BaseStrategy::kNone;
  opts.base_provider = nullptr;
  opts.update_base = false;
  core::SbrEncoder standalone(std::move(opts), &degraded_workspace_);
  auto t = standalone.EncodeChunk(last_batch_, num_signals_);
  if (!t.ok()) return t.status();
  ++degraded_batches_;
  return t;
}

core::Frame SensorNode::BuildSnapshotFrame() {
  ++epoch_;
  ++resyncs_;
  core::BaseSnapshot snap;
  snap.missing_chunks = static_cast<uint32_t>(unreported_lost_);
  snap.w = static_cast<uint32_t>(encoder_.w());
  const core::BaseSignal& base = encoder_.base_signal();
  switch (encoder_.options().base_strategy) {
    case core::BaseStrategy::kDctFixed:
      snap.base_kind = core::BaseKind::kDctFixed;
      break;
    case core::BaseStrategy::kNone:
      snap.base_kind = core::BaseKind::kNone;
      break;
    default:
      snap.base_kind = core::BaseKind::kStored;
      break;
  }
  snap.timeline_chunks = delivered_chunks_ + lost_chunks_;
  if (snap.base_kind == core::BaseKind::kStored && base.w() > 0) {
    std::span<const double> flat = base.values();
    snap.slots.reserve(base.used_slots());
    for (size_t slot = 0; slot < base.used_slots(); ++slot) {
      core::BaseUpdate bu;
      bu.slot = static_cast<uint32_t>(slot);
      bu.values.assign(flat.begin() + slot * base.w(),
                       flat.begin() + (slot + 1) * base.w());
      snap.slots.push_back(std::move(bu));
    }
  }
  return core::MakeSnapshotFrame(id_, seq_++, epoch_, snap);
}

void SensorNode::RecordLostChunk() {
  ++unreported_lost_;
  ++lost_chunks_;
  needs_resync_ = true;
}

void SensorNode::RecordLostChunks(size_t n) {
  if (n == 0) return;
  unreported_lost_ += n;
  lost_chunks_ += n;
  needs_resync_ = true;
}

size_t SensorNode::NextBackoffSlots(size_t attempt) {
  return BackoffSlots(attempt, &backoff_rng_);
}

void SensorNode::SetMemoryPressure(bool on) {
  if (on == memory_pressure_) return;
  const auto want = on ? core::BaseStrategy::kGetBaseLowMem
                       : core::BaseStrategy::kGetBase;
  if (!encoder_.SetBaseStrategy(want).ok()) return;  // non-stored base
  memory_pressure_ = on;
  ++pressure_transitions_;
}

std::vector<uint8_t> SensorNode::SaveCheckpoint() const {
  BinaryWriter writer;
  writer.PutU8(kCheckpointVersion);
  writer.PutU64(seq_);
  writer.PutU32(epoch_);
  writer.PutU64(unreported_lost_);
  writer.PutU64(lost_chunks_);
  writer.PutU64(delivered_chunks_);
  writer.PutU64(transmissions_);
  writer.PutU64(resyncs_);
  writer.PutU64(degraded_batches_);
  writer.PutU8(needs_resync_ ? 1 : 0);
  writer.PutU8(memory_pressure_ ? 1 : 0);
  encoder_.SaveState(&writer);
  return writer.TakeBuffer();
}

Status SensorNode::RestoreCheckpoint(std::span<const uint8_t> blob,
                                     RestartMode mode) {
  BinaryReader reader(blob);
  uint8_t version = 0;
  SBR_RETURN_IF_ERROR(reader.GetU8(&version));
  if (version != kCheckpointVersion) {
    return Status::DataLoss("unsupported node checkpoint version " +
                            std::to_string(version));
  }
  uint64_t seq = 0, unreported = 0, lost = 0, delivered = 0;
  uint64_t transmissions = 0, resyncs = 0, degraded = 0;
  uint32_t epoch = 0;
  uint8_t needs_resync = 0, pressure = 0;
  SBR_RETURN_IF_ERROR(reader.GetU64(&seq));
  SBR_RETURN_IF_ERROR(reader.GetU32(&epoch));
  SBR_RETURN_IF_ERROR(reader.GetU64(&unreported));
  SBR_RETURN_IF_ERROR(reader.GetU64(&lost));
  SBR_RETURN_IF_ERROR(reader.GetU64(&delivered));
  SBR_RETURN_IF_ERROR(reader.GetU64(&transmissions));
  SBR_RETURN_IF_ERROR(reader.GetU64(&resyncs));
  SBR_RETURN_IF_ERROR(reader.GetU64(&degraded));
  SBR_RETURN_IF_ERROR(reader.GetU8(&needs_resync));
  SBR_RETURN_IF_ERROR(reader.GetU8(&pressure));
  SBR_RETURN_IF_ERROR(encoder_.RestoreState(&reader));
  seq_ = seq;
  epoch_ = epoch;
  unreported_lost_ = unreported;
  lost_chunks_ = lost;
  delivered_chunks_ = delivered;
  transmissions_ = transmissions;
  resyncs_ = resyncs;
  degraded_batches_ = degraded;
  needs_resync_ = needs_resync != 0;
  memory_pressure_ = pressure != 0;
  filled_ = 0;
  has_last_batch_ = false;
  last_batch_.clear();
  if (mode == RestartMode::kCrash) {
    // The checkpoint may predate frames that already reached the station:
    // reserve sequence headroom so nothing replayed lands inside the
    // duplicate-suppression window, and epoch headroom so the recovery
    // snapshot outranks any resync the station saw after the checkpoint.
    seq_ += kSeqReserve;
    epoch_ += kEpochReserve;
    needs_resync_ = true;
  }
  return Status::Ok();
}

}  // namespace sbr::net
