// FaultChannel: a deterministic, seeded model of one unreliable radio hop.
// Each frame pushed through the channel can be dropped, duplicated, held
// back and delivered after the next frame (reordering), or have a random
// bit flipped — at independently configurable rates. Composing one channel
// per hop turns the idealized NetworkSim link into a faithful lossy path
// whose faults the transmission protocol must survive, and whose behaviour
// is bit-reproducible from the seed.
#ifndef SBR_NET_FAULT_CHANNEL_H_
#define SBR_NET_FAULT_CHANNEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace sbr::net {

/// Per-hop fault rates. All probabilities are evaluated independently per
/// frame from the channel's own seeded stream.
struct FaultOptions {
  double drop_probability = 0.0;       ///< frame vanishes on this hop
  double duplicate_probability = 0.0;  ///< frame delivered twice
  double reorder_probability = 0.0;    ///< frame held, delivered after next
  double bit_flip_probability = 0.0;   ///< one random bit flipped
  uint64_t seed = 17;
};

/// What the channel did, for reports and determinism checks.
struct FaultCounters {
  size_t transmitted = 0;  ///< frames pushed in
  size_t delivered = 0;    ///< frame copies that exited the hop
  size_t dropped = 0;
  size_t duplicated = 0;
  size_t reordered = 0;
  size_t bit_flipped = 0;
};

/// One unreliable hop.
class FaultChannel {
 public:
  FaultChannel() = default;
  /// `salt` decorrelates the fault stream of each hop/node sharing a seed.
  FaultChannel(const FaultOptions& options, uint64_t salt);

  /// Pushes one serialized frame through the hop. Returns the frame copies
  /// exiting now, in delivery order: a held (reordered) frame from an
  /// earlier Transmit is appended after the current one.
  std::vector<std::vector<uint8_t>> Transmit(std::vector<uint8_t> bytes);

  /// Delivers any held frame (end of simulation / link teardown).
  std::vector<std::vector<uint8_t>> Flush();

  const FaultCounters& counters() const { return counters_; }

 private:
  void MaybeFlipBit(std::vector<uint8_t>* bytes);

  FaultOptions options_;
  Rng rng_;
  std::optional<std::vector<uint8_t>> held_;
  FaultCounters counters_;
};

}  // namespace sbr::net

#endif  // SBR_NET_FAULT_CHANNEL_H_
