// Metrics registry: counters, gauges and fixed-bucket histograms behind a
// name-keyed registry. The write path is lock-free — counters and
// histograms shard their cells per thread (a stable thread index modulo
// kMaxShards) and writers touch only their own cache-line-padded shard
// with relaxed atomics; readers merge the shards on demand
// (merge-on-read), so a snapshot taken mid-run is a sum of per-shard
// values each of which is individually consistent.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and
// is expected to happen once per call site — hot paths cache the returned
// reference in a function-local static via the SBR_OBS_* macros below.
#ifndef SBR_OBS_METRICS_H_
#define SBR_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace sbr::obs {

/// Shard count: writers land on shard (thread-registration-order %
/// kMaxShards). Collisions between threads are correct (atomics), merely
/// contended; 16 covers the encoder's supported thread counts.
inline constexpr size_t kMaxShards = 16;

namespace internal {

inline std::atomic<size_t> g_shard_counter{0};

/// Stable per-thread shard index, assigned on a thread's first write.
inline size_t ThisThreadShard() {
  thread_local const size_t idx =
      g_shard_counter.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return idx;
}

struct alignas(64) U64Cell {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

/// Monotone event counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[internal::ThisThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merge-on-read: the sum over every thread shard.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::U64Cell shards_[kMaxShards];
};

/// Point-in-time level (queue depth, buffer occupancy). A single atomic —
/// gauges are set, not accumulated, so sharding would lose the semantics.
/// Tracks the maximum level ever set alongside the current value.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  void Add(int64_t delta) {
    Set(value_.load(std::memory_order_relaxed) + delta);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed power-of-two buckets: bucket 0 holds the value 0, bucket i >= 1
/// holds [2^(i-1), 2^i). One layout serves both latency (ns/us) and size
/// (bytes/values) distributions; kNumBuckets covers up to 2^46 (~20 hours
/// in microseconds, ~64 TiB in bytes).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 48;

  static size_t BucketIndex(uint64_t value) {
    const size_t w = static_cast<size_t>(std::bit_width(value));
    return w < kNumBuckets ? w : kNumBuckets - 1;
  }
  /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  void Record(uint64_t value) {
    Shard& s = shards_[internal::ThisThreadShard()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  /// Merged bucket populations (size kNumBuckets).
  std::vector<uint64_t> Buckets() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kMaxShards];
};

/// One merged metric in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  /// Counter value, gauge current value, or histogram observation count.
  int64_t value = 0;
  /// Gauge max, or histogram sum; 0 for counters.
  int64_t aux = 0;
  /// Histogram buckets with trailing zero buckets trimmed; empty otherwise.
  std::vector<uint64_t> buckets;
};

/// A merged, name-sorted view of the registry at one instant.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// nullptr when the name is absent.
  const MetricValue* Find(std::string_view name) const;
  /// Counter/gauge value (histogram count) by name; 0 when absent.
  int64_t ValueOf(std::string_view name) const;

  /// {"metrics":[{"name":...,"type":"counter","value":N}, ...]}
  std::string ToJson() const;
  /// Header "name,type,value,aux" + one row per metric.
  std::string ToCsv() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation macro records into.
  static MetricsRegistry& Global();

  /// Finds or creates. The returned reference is stable for the registry's
  /// lifetime (hot paths cache it in a function-local static).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registration survives; references
  /// stay valid). Tests isolate themselves with this.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records elapsed microseconds into a histogram on destruction; inert
/// when the runtime gate is off at construction.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(const char* histogram_name);
  ~ScopedHistTimer();
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace sbr::obs

// ------------------------------------------------- instrumentation macros
// Every hot-path site goes through these: compiled out entirely at
// SBR_OBS=0, a relaxed load + branch when disabled at runtime, and a
// cached-reference shard write when enabled. The `name` must be a literal
// (each site caches its metric in a function-local static).
#if SBR_OBS

#define SBR_OBS_COUNT(name, delta)                                       \
  do {                                                                   \
    if (::sbr::obs::Enabled()) {                                         \
      static ::sbr::obs::Counter& sbr_obs_counter_ =                     \
          ::sbr::obs::MetricsRegistry::Global().GetCounter(name);        \
      sbr_obs_counter_.Add(delta);                                       \
    }                                                                    \
  } while (0)

#define SBR_OBS_GAUGE_SET(name, value)                                   \
  do {                                                                   \
    if (::sbr::obs::Enabled()) {                                         \
      static ::sbr::obs::Gauge& sbr_obs_gauge_ =                         \
          ::sbr::obs::MetricsRegistry::Global().GetGauge(name);          \
      sbr_obs_gauge_.Set(value);                                         \
    }                                                                    \
  } while (0)

#define SBR_OBS_HIST(name, value)                                        \
  do {                                                                   \
    if (::sbr::obs::Enabled()) {                                         \
      static ::sbr::obs::Histogram& sbr_obs_hist_ =                      \
          ::sbr::obs::MetricsRegistry::Global().GetHistogram(name);      \
      sbr_obs_hist_.Record(value);                                       \
    }                                                                    \
  } while (0)

#define SBR_OBS_TIMER(var, name) ::sbr::obs::ScopedHistTimer var(name)

#else  // !SBR_OBS

#define SBR_OBS_COUNT(name, delta) \
  do {                             \
  } while (0)
#define SBR_OBS_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)
#define SBR_OBS_HIST(name, value) \
  do {                            \
  } while (0)
#define SBR_OBS_TIMER(var, name)

#endif  // SBR_OBS

#endif  // SBR_OBS_METRICS_H_
