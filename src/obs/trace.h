// RAII trace spans with per-thread buffers. A ScopedSpan marks one timed
// stage (encode.chunk, encode.search, pool.chunk, ...); spans nest — each
// records its depth on the owning thread's span stack — and completed
// spans land in a per-thread buffer that the TraceCollector merges on
// export. Recording takes the owning thread's otherwise-uncontended
// buffer mutex only when observability is enabled; disabled spans cost a
// relaxed load and a branch (or nothing at all when SBR_OBS=0, via the
// SBR_OBS_SPAN macro).
//
// Exports: chrome://tracing "complete event" JSON (load in a Chromium
// browser or https://ui.perfetto.dev) and a flat CSV.
#ifndef SBR_OBS_TRACE_H_
#define SBR_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace sbr::obs {

/// One completed span. `name` must point at a string literal (the macro
/// contract), so events are POD and the buffers never own strings.
struct SpanEvent {
  const char* name = nullptr;
  /// Logical thread id: the order threads first recorded a span.
  uint32_t tid = 0;
  /// Nesting depth at the span's start (0 = top level on its thread).
  uint32_t depth = 0;
  /// Per-thread completion index: within one tid, events are totally
  /// ordered by seq (children complete before their parents).
  uint64_t seq = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

/// Per-stage aggregate over a set of span events.
struct StageAggregate {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

class TraceCollector {
 public:
  /// The process-wide collector every ScopedSpan records into.
  static TraceCollector& Global();

  /// Moves every buffered event out, merged and ordered by (tid, seq).
  std::vector<SpanEvent> Drain();

  /// Drops buffered events without returning them.
  void Clear() { (void)Drain(); }

  /// Events dropped because a thread buffer hit its cap.
  uint64_t dropped() const;

  // -- export helpers (pure functions of the event list) --

  /// chrome://tracing JSON: {"traceEvents":[{"ph":"X",...}]}.
  static std::string ToChromeJson(const std::vector<SpanEvent>& events);
  /// Flat CSV: name,tid,depth,seq,start_us,duration_us.
  static std::string ToCsv(const std::vector<SpanEvent>& events);
  /// Sums duration by span name; name-sorted (deterministic layout).
  static std::vector<StageAggregate> Aggregate(
      const std::vector<SpanEvent>& events);

 private:
  friend class ScopedSpan;

  /// One thread's recording state. Owned by the collector (threads may
  /// exit before export); the mutex serializes the owner's appends
  /// against a concurrent Drain.
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<SpanEvent> events;
    uint32_t tid = 0;
    uint32_t depth = 0;   // touched only by the owning thread
    uint64_t seq = 0;     // guarded by mu
    uint64_t dropped = 0; // guarded by mu
  };

  /// Bounds each thread's buffer; beyond it events are counted as dropped
  /// so a forgotten Drain cannot grow without bound.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

  ThreadBuffer* BufferForThisThread();

  std::mutex mu_;  // guards buffers_ (registration and Drain)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Constructed inert when the runtime gate is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
#if SBR_OBS
    if (Enabled()) Begin(name);
#else
    (void)name;
#endif
  }
  ~ScopedSpan() {
    if (buffer_ != nullptr) End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  TraceCollector::ThreadBuffer* buffer_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace sbr::obs

#if SBR_OBS
#define SBR_OBS_SPAN(var, name) ::sbr::obs::ScopedSpan var(name)
#else
#define SBR_OBS_SPAN(var, name)
#endif

#endif  // SBR_OBS_TRACE_H_
