// Combined stage-report export: one JSON + one CSV artifact carrying the
// merged metrics snapshot and the per-stage span aggregation. This is the
// format the benches (bench_table2, bench_network, bench_parallel) emit
// and the observability tests assert the schema of — keep the two in
// sync with DESIGN.md §5f.
//
// JSON schema:
//   {"metrics":[{"name","type","value","aux",("buckets")}...],
//    "stages":[{"name","count","total_us","avg_us"}...]}
// CSV schema (flat, one artifact for both sections):
//   kind,name,value,aux       -- kind in {counter,gauge,histogram}
//   kind,name,count,total_us  -- kind == stage
#ifndef SBR_OBS_EXPORT_H_
#define SBR_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sbr::obs {

/// Renders the combined report.
std::string StageReportJson(const MetricsSnapshot& metrics,
                            const std::vector<StageAggregate>& stages);
std::string StageReportCsv(const MetricsSnapshot& metrics,
                           const std::vector<StageAggregate>& stages);

/// Snapshots the global registry, drains the global trace collector and
/// writes <path_prefix>.json and <path_prefix>.csv. Returns false on I/O
/// failure. The drain consumes the buffered spans (a second call reports
/// only events recorded in between).
bool WriteStageReport(const std::string& path_prefix);

}  // namespace sbr::obs

#endif  // SBR_OBS_EXPORT_H_
